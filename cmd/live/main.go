// Command live deploys a registered system as a real concurrent
// deployment — N transport nodes, each hosting one replica process on
// wall-clock timers, exchanging messages over an in-process ("chan") or
// loopback-TCP ("tcp") carrier — and drives timed client load against
// it with the online consistency monitor attached. Violation witnesses
// stream to stdout as the monitor forms them; the run ends with a
// throughput/latency summary and the finalized SC/EC verdicts.
//
// This is the deployment-side counterpart of cmd/scenarios: the same
// oracle, selector and validity predicate a system registers for
// simulation, re-hosted on real goroutines and real sockets, checked by
// the same streaming monitor. A benign run must hold every BT-ADT
// property; -check turns that into an exit code for CI.
//
// Usage:
//
//	live [-transport chan|tcp] [-system bitcoin] [-n 4] [-duration 2s | -appends N]
//	     [-clients 2] [-rate R] [-spray] [-k K] [-seed S]
//	     [-crash NODE] [-durable] [-crash-after D] [-downtime D]
//	     [-check] [-v]
//
// -crash schedules one crash of the given node during the load phase;
// -durable restarts it from a snapshot (otherwise amnesia) and the
// summary reports the anti-entropy rejoin counters. -check exits
// non-zero on any violated property, a non-convergent deployment, a
// monitor failure, or a leaked goroutine after teardown.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"repro/btsim"
	_ "repro/btsim/systems"
	"repro/internal/consistency"
)

func main() {
	carrier := flag.String("transport", "chan", `carrier: "chan" (in-process) or "tcp" (loopback sockets)`)
	system := flag.String("system", "bitcoin", "registered system to deploy")
	n := flag.Int("n", 4, "node count")
	duration := flag.Duration("duration", 0, "load phase wall-time bound (default 2s when -appends is unset)")
	appends := flag.Int64("appends", 0, "load phase granted-append bound (0 = duration-bounded)")
	clients := flag.Int("clients", 2, "concurrent load-generator clients")
	rate := flag.Float64("rate", 0, "per-client target appends/sec (0 = closed loop)")
	spray := flag.Bool("spray", false, "round-robin appends across nodes instead of the single-writer default")
	k := flag.Int("k", 0, "also report k-Fork Coherence at this k (0 = off)")
	seed := flag.Uint64("seed", 1, "oracle seed")
	crash := flag.Int("crash", -1, "crash this node during the load (-1 = no crash)")
	durable := flag.Bool("durable", false, "restart the crashed node from a snapshot instead of amnesia")
	crashAfter := flag.Duration("crash-after", 200*time.Millisecond, "delay from load start to the crash")
	downtime := flag.Duration("downtime", 300*time.Millisecond, "crash window length")
	check := flag.Bool("check", false, "exit non-zero on violation, non-convergence, monitor error, or goroutine leak")
	verbose := flag.Bool("v", false, "print full verdicts and the metrics summary")
	flag.Parse()

	if *duration == 0 && *appends == 0 {
		*duration = 2 * time.Second
	}

	opts := []btsim.Option{
		btsim.WithN(*n),
		btsim.WithSeed(*seed),
		btsim.WithLive(*carrier),
		btsim.WithLoad(*clients, *rate),
		btsim.WithLiveWitness(func(w consistency.Witness) {
			fmt.Println("WITNESS", w)
		}),
	}
	if *duration > 0 {
		opts = append(opts, btsim.WithLiveDuration(*duration))
	}
	if *appends > 0 {
		opts = append(opts, btsim.WithLiveAppends(*appends))
	}
	if *spray {
		opts = append(opts, btsim.WithLiveSpray())
	}
	if *k > 0 {
		opts = append(opts, btsim.WithLiveK(*k))
	}
	if *crash >= 0 {
		opts = append(opts, btsim.WithLiveCrash(btsim.LiveCrash{
			Node:     *crash,
			After:    *crashAfter,
			Downtime: *downtime,
			Durable:  *durable,
		}))
	}

	// Goroutine-leak baseline: everything the deployment spawns (node
	// loops, TCP accept/read/write loops, the monitor consumer, load
	// clients) must be gone after teardown.
	base := runtime.NumGoroutine()

	res, err := btsim.Run(*system, opts...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "live:", err)
		os.Exit(1)
	}
	lr := res.Live

	fmt.Printf("%s over %s  n=%d  clients=%d  seed=%d\n",
		lr.System, lr.Transport, lr.N, *clients, *seed)
	fmt.Printf("load    %s elapsed, %s settle, converged=%v\n",
		lr.Elapsed.Round(time.Millisecond), lr.Settle.Round(time.Millisecond), lr.Converged)
	fmt.Printf("appends %d granted / %d attempts  (%.0f/s sustained)\n",
		lr.AppendsOK, lr.Attempts, lr.AppendsPerSec)
	fmt.Printf("reads   %d  (%.0f/s)\n", lr.Reads, lr.ReadsPerSec)
	fmt.Printf("latency append p50=%dµs p99=%dµs   read p50=%dµs p99=%dµs\n",
		lr.AppendLatUS.Quantile(0.5), lr.AppendLatUS.Quantile(0.99),
		lr.ReadLatUS.Quantile(0.5), lr.ReadLatUS.Quantile(0.99))
	fmt.Printf("carrier %d sent / %d delivered", lr.Sent, lr.Delivered)
	if lr.DroppedDown > 0 {
		fmt.Printf("  (%d dropped at crashed nodes)", lr.DroppedDown)
	}
	fmt.Println()
	ms := lr.MonitorStats
	fmt.Printf("monitor %d ops consumed (%d reads, %d appends), %d retained, %d live witnesses\n",
		ms.Ops, ms.Reads, ms.Appends, ms.Retained, lr.LiveWitnesses)
	if rs := lr.Recovery; rs != nil {
		mode := "amnesia"
		if rs.DurableRestores > 0 {
			mode = "durable"
		}
		fmt.Printf("recovery %d crash / %d restart (%s), %d solicits (%d retries), %d blocks resynced\n",
			rs.Crashes, rs.Restarts, mode, rs.Solicits, rs.Retries, rs.ResyncBlocks)
	}

	violated := lr.Violated()
	fmt.Printf("SC %s   EC %s", verdictMark(lr.SC.OK), verdictMark(lr.EC.OK))
	if lr.KFork != nil {
		fmt.Printf("   %s %s", lr.KFork.Property, verdictMark(lr.KFork.OK))
	}
	fmt.Println()
	if len(violated) > 0 {
		fmt.Println("violated:", violated)
	}
	if lr.MonitorErr != nil {
		fmt.Fprintln(os.Stderr, "live: monitor failed mid-run:", lr.MonitorErr)
	}

	if *verbose {
		fmt.Println()
		fmt.Println(lr.SC)
		fmt.Println(lr.EC)
		if lr.Metrics != nil {
			fmt.Println("metrics:")
			for k, v := range lr.Metrics.Summary() {
				fmt.Printf("  %-32s %d\n", k, v)
			}
		}
	}

	leaked := leakCheck(base)
	if leaked > 0 {
		fmt.Fprintf(os.Stderr, "live: %d goroutine(s) leaked after teardown\n", leaked)
	}

	if *check {
		bad := len(violated) > 0 || !lr.Converged || lr.MonitorErr != nil || leaked > 0
		if lr.AppendsOK == 0 {
			fmt.Fprintln(os.Stderr, "live: no appends granted")
			bad = true
		}
		if bad {
			os.Exit(1)
		}
	}
}

func verdictMark(ok bool) string {
	if ok {
		return "holds"
	}
	return "VIOLATED"
}

// leakCheck waits (with grace) for the goroutine count to return to the
// pre-run baseline; the scheduler needs a moment to reap loops that
// just had their queues closed.
func leakCheck(base int) int {
	deadline := time.Now().Add(2 * time.Second)
	for {
		runtime.GC()
		extra := runtime.NumGoroutine() - base
		if extra <= 0 || time.Now().After(deadline) {
			if extra < 0 {
				extra = 0
			}
			return extra
		}
		time.Sleep(20 * time.Millisecond)
	}
}
