// Command bench runs the tracked benchmark suite (internal/benchsuite)
// with -benchmem semantics, emits a BENCH_<date>.json snapshot, and
// compares it against the most recent previous snapshot in the same
// directory — the repository's recorded performance trajectory.
//
// Usage:
//
//	go run ./cmd/bench [-dir .] [-count 1] [-filter substring] [-label note]
//
// A CI step (or a release ritual) runs it after performance-relevant
// changes; the committed BENCH_*.json files make regressions diffable.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
	"time"

	"repro/internal/benchsuite"
)

// Entry is one benchmark measurement.
type Entry struct {
	Name        string  `json:"name"`
	Iterations  int     `json:"iterations"`
	NsPerOp     float64 `json:"ns_op"`
	BytesPerOp  int64   `json:"b_op"`
	AllocsPerOp int64   `json:"allocs_op"`
}

// Snapshot is the schema of a BENCH_<date>.json file.
type Snapshot struct {
	Date      string  `json:"date"` // RFC 3339
	Label     string  `json:"label,omitempty"`
	GoVersion string  `json:"go_version"`
	GOOS      string  `json:"goos"`
	GOARCH    string  `json:"goarch"`
	Entries   []Entry `json:"entries"`
}

func main() {
	dir := flag.String("dir", ".", "directory for BENCH_<date>.json snapshots")
	count := flag.Int("count", 1, "benchmark iterations per case (benchtime <count>x)")
	filter := flag.String("filter", "", "run only cases whose name contains this substring")
	label := flag.String("label", "", "free-form note stored in the snapshot")
	flag.Parse()

	snap := Snapshot{
		Date:      time.Now().UTC().Format(time.RFC3339),
		Label:     *label,
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
	}
	for _, c := range benchsuite.Cases() {
		if *filter != "" && !strings.Contains(c.Name, *filter) {
			continue
		}
		n := *count
		var before, after runtime.MemStats
		runtime.GC()
		runtime.ReadMemStats(&before)
		start := time.Now()
		for i := 0; i < n; i++ {
			if err := c.Run(); err != nil {
				fmt.Fprintln(os.Stderr, "bench:", err)
				os.Exit(1)
			}
		}
		elapsed := time.Since(start)
		runtime.ReadMemStats(&after)
		e := Entry{
			Name:        c.Name,
			Iterations:  n,
			NsPerOp:     float64(elapsed.Nanoseconds()) / float64(n),
			BytesPerOp:  int64(after.TotalAlloc-before.TotalAlloc) / int64(n),
			AllocsPerOp: int64(after.Mallocs-before.Mallocs) / int64(n),
		}
		snap.Entries = append(snap.Entries, e)
		fmt.Printf("%-24s %14.0f ns/op %12d B/op %10d allocs/op\n",
			e.Name, e.NsPerOp, e.BytesPerOp, e.AllocsPerOp)
	}
	if len(snap.Entries) == 0 {
		fmt.Fprintln(os.Stderr, "bench: no cases matched")
		os.Exit(1)
	}

	out := filepath.Join(*dir, "BENCH_"+time.Now().UTC().Format("2006-01-02")+".json")
	prev, prevName := latestSnapshot(*dir, out)
	data, err := json.MarshalIndent(&snap, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "bench:", err)
		os.Exit(1)
	}
	if err := os.WriteFile(out, append(data, '\n'), 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "bench:", err)
		os.Exit(1)
	}
	fmt.Printf("\nwrote %s\n", out)

	if prev == nil {
		fmt.Println("no previous snapshot to compare against")
		return
	}
	fmt.Printf("\nvs %s (%s):\n", prevName, prev.Date)
	byName := make(map[string]Entry, len(prev.Entries))
	for _, e := range prev.Entries {
		byName[e.Name] = e
	}
	for _, e := range snap.Entries {
		p, ok := byName[e.Name]
		if !ok {
			fmt.Printf("%-24s (new)\n", e.Name)
			continue
		}
		fmt.Printf("%-24s time %+7.1f%%   allocs %+7.1f%%\n",
			e.Name, delta(e.NsPerOp, p.NsPerOp), delta(float64(e.AllocsPerOp), float64(p.AllocsPerOp)))
	}
}

func delta(now, before float64) float64 {
	if before == 0 {
		return 0
	}
	return (now - before) / before * 100
}

// latestSnapshot loads the BENCH_*.json in dir with the newest internal
// date, excluding the output path itself.
func latestSnapshot(dir, exclude string) (*Snapshot, string) {
	matches, err := filepath.Glob(filepath.Join(dir, "BENCH_*.json"))
	if err != nil {
		return nil, ""
	}
	sort.Strings(matches)
	var best *Snapshot
	var bestName string
	for _, m := range matches {
		if sameFile(m, exclude) {
			continue
		}
		data, err := os.ReadFile(m)
		if err != nil {
			continue
		}
		var s Snapshot
		if json.Unmarshal(data, &s) != nil {
			continue
		}
		if best == nil || s.Date > best.Date {
			cp := s
			best, bestName = &cp, filepath.Base(m)
		}
	}
	return best, bestName
}

func sameFile(a, b string) bool {
	aa, err1 := filepath.Abs(a)
	bb, err2 := filepath.Abs(b)
	return err1 == nil && err2 == nil && aa == bb
}
