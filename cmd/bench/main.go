// Command bench runs the tracked benchmark suite (internal/benchsuite)
// with -benchmem semantics, emits a BENCH_<date>.json snapshot, and
// compares it against the most recent previous snapshot in the same
// directory — the repository's recorded performance trajectory.
//
// Usage:
//
//	go run ./cmd/bench [-dir .] [-out name.json] [-count 1] [-filter substring] [-label note] [-compare]
//	                   [-fail-over pct] [-cpuprofile cpu.pprof] [-memprofile mem.pprof]
//
// -fail-over turns the vs-previous comparison into a CI gate: when any
// case's wall time regresses more than the given percentage against the
// most recent snapshot, the command exits non-zero after printing the
// offending cases.
//
// Besides wall time and cumulative allocations, every entry records its
// peak live heap (sampled concurrently during the run): the batch and
// -stream entries execute identical workloads, so -compare (on by
// default) renders the batch-vs-stream trade directly — wall time next
// to peak resident memory — which is how ablation #10's numbers are
// produced.
//
// The -met entries run the identical workload with the deterministic
// metrics layer attached: their wall delta against the bare sibling is
// the measured instrumentation overhead, and their metric summary is
// embedded in the snapshot entry (Entry.Metrics). -cpuprofile and
// -memprofile write pprof profiles of the suite run (see SCALING.md's
// profiling workflow).
//
// A CI step (or a release ritual) runs it after performance-relevant
// changes; the committed BENCH_*.json files make regressions diffable.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/benchsuite"
)

// Entry is one benchmark measurement.
type Entry struct {
	Name        string  `json:"name"`
	Iterations  int     `json:"iterations"`
	NsPerOp     float64 `json:"ns_op"`
	BytesPerOp  int64   `json:"b_op"`
	AllocsPerOp int64   `json:"allocs_op"`
	// PeakBytes is the maximum live heap (HeapAlloc) sampled while the
	// case ran — the resident-memory high-water mark. Old snapshots
	// predate the field and read back as 0.
	PeakBytes int64 `json:"peak_b,omitempty"`
	// Shards is the scheduler shard count the case ran under (absent or
	// 1 = the serial scheduler). The name already carries an -s<k>
	// suffix for sharded cases; the field makes the knob machine-readable
	// so snapshot consumers don't parse names.
	Shards int `json:"shards,omitempty"`
	// Metrics is the deterministic metric summary of an instrumented
	// (-met) case's last iteration — counters, protocol stats and
	// timings from the run's metrics.Snapshot. Absent on bare cases.
	Metrics map[string]int64 `json:"metrics,omitempty"`
}

// Snapshot is the schema of a BENCH_<date>.json file.
type Snapshot struct {
	Date      string  `json:"date"` // RFC 3339
	Label     string  `json:"label,omitempty"`
	GoVersion string  `json:"go_version"`
	GOOS      string  `json:"goos"`
	GOARCH    string  `json:"goarch"`
	Entries   []Entry `json:"entries"`
}

// samplePeak polls the live heap until stop is closed and reports the
// high-water mark through peak. 2ms sampling is coarse against
// individual spikes but faithful for the sustained plateaus the
// pipeline workloads produce.
func samplePeak(stop <-chan struct{}, done *sync.WaitGroup, peak *int64) {
	defer done.Done()
	read := func() {
		var ms runtime.MemStats
		runtime.ReadMemStats(&ms)
		if int64(ms.HeapAlloc) > *peak {
			*peak = int64(ms.HeapAlloc)
		}
	}
	read()
	tick := time.NewTicker(2 * time.Millisecond)
	defer tick.Stop()
	for {
		select {
		case <-stop:
			read()
			return
		case <-tick.C:
			read()
		}
	}
}

func main() {
	dir := flag.String("dir", ".", "directory for BENCH_<date>.json snapshots")
	outName := flag.String("out", "", "snapshot file name (default BENCH_<date>.json); relative to -dir")
	count := flag.Int("count", 1, "benchmark iterations per case (benchtime <count>x)")
	filter := flag.String("filter", "", "run only cases whose name contains this substring")
	label := flag.String("label", "", "free-form note stored in the snapshot")
	compare := flag.Bool("compare", true, "report batch-vs-stream pairs: wall time alongside peak memory")
	failOver := flag.Float64("fail-over", 0, "exit non-zero when any case's wall time regresses more than this percentage vs the previous snapshot (0 = disabled)")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile of the whole suite run to this file")
	memprofile := flag.String("memprofile", "", "write a heap profile (after the last case) to this file")
	flag.Parse()

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "bench:", err)
			os.Exit(1)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "bench:", err)
			os.Exit(1)
		}
		defer pprof.StopCPUProfile()
	}
	if *memprofile != "" {
		defer func() {
			f, err := os.Create(*memprofile)
			if err != nil {
				fmt.Fprintln(os.Stderr, "bench:", err)
				return
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "bench:", err)
			}
		}()
	}

	snap := Snapshot{
		Date:      time.Now().UTC().Format(time.RFC3339),
		Label:     *label,
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
	}
	for _, c := range benchsuite.Cases() {
		if *filter != "" && !strings.Contains(c.Name, *filter) {
			continue
		}
		n := *count
		var before, after runtime.MemStats
		runtime.GC()
		runtime.ReadMemStats(&before)
		var peak int64
		stop := make(chan struct{})
		var done sync.WaitGroup
		done.Add(1)
		go samplePeak(stop, &done, &peak)
		start := time.Now()
		for i := 0; i < n; i++ {
			if err := c.Run(); err != nil {
				fmt.Fprintln(os.Stderr, "bench:", err)
				os.Exit(1)
			}
		}
		elapsed := time.Since(start)
		close(stop)
		done.Wait()
		runtime.ReadMemStats(&after)
		e := Entry{
			Name:        c.Name,
			Iterations:  n,
			NsPerOp:     float64(elapsed.Nanoseconds()) / float64(n),
			BytesPerOp:  int64(after.TotalAlloc-before.TotalAlloc) / int64(n),
			AllocsPerOp: int64(after.Mallocs-before.Mallocs) / int64(n),
			PeakBytes:   peak,
			Shards:      c.Shards,
		}
		if c.Metrics != nil {
			e.Metrics = c.Metrics()
		}
		snap.Entries = append(snap.Entries, e)
		fmt.Printf("%-32s %14.0f ns/op %12d B/op %10d allocs/op %10s peak\n",
			e.Name, e.NsPerOp, e.BytesPerOp, e.AllocsPerOp, mb(e.PeakBytes))
	}
	if len(snap.Entries) == 0 {
		fmt.Fprintln(os.Stderr, "bench: no cases matched")
		os.Exit(1)
	}

	name := *outName
	if name == "" {
		name = "BENCH_" + time.Now().UTC().Format("2006-01-02") + ".json"
	}
	out := filepath.Join(*dir, name)
	prev, prevName := latestSnapshot(*dir, out)
	data, err := json.MarshalIndent(&snap, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "bench:", err)
		os.Exit(1)
	}
	if err := os.WriteFile(out, append(data, '\n'), 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "bench:", err)
		os.Exit(1)
	}
	fmt.Printf("\nwrote %s\n", out)

	if *compare {
		comparePairs(snap.Entries)
		compareMetered(snap.Entries)
	}

	if prev == nil {
		fmt.Println("no previous snapshot to compare against")
		return
	}
	fmt.Printf("\nvs %s (%s):\n", prevName, prev.Date)
	byName := make(map[string]Entry, len(prev.Entries))
	for _, e := range prev.Entries {
		byName[e.Name] = e
	}
	var regressed []string
	current := make(map[string]bool, len(snap.Entries))
	for _, e := range snap.Entries {
		current[e.Name] = true
		p, ok := byName[e.Name]
		if !ok {
			fmt.Printf("%-32s (new)\n", e.Name)
			continue
		}
		d := delta(e.NsPerOp, p.NsPerOp)
		line := fmt.Sprintf("%-32s time %+7.1f%%   allocs %+7.1f%%",
			e.Name, d, delta(float64(e.AllocsPerOp), float64(p.AllocsPerOp)))
		if e.PeakBytes > 0 && p.PeakBytes > 0 {
			line += fmt.Sprintf("   peak %+7.1f%%", delta(float64(e.PeakBytes), float64(p.PeakBytes)))
		}
		if *failOver > 0 && d > *failOver {
			line += "   ** REGRESSION **"
			regressed = append(regressed, fmt.Sprintf("%s (%+.1f%% > %+.1f%%)", e.Name, d, *failOver))
		}
		fmt.Println(line)
	}
	// Entries present only in the previous snapshot were formerly
	// dropped without a trace, making a shrinking suite look like a
	// clean comparison. Report them in the previous snapshot's order.
	for _, p := range prev.Entries {
		if !current[p.Name] {
			fmt.Printf("%-32s (removed; was %s)\n", p.Name, dur(p.NsPerOp))
		}
	}
	// The -fail-over gate: a CI step runs `bench -fail-over 20` after
	// performance-relevant changes and fails the build on a wall-time
	// regression beyond the threshold.
	if len(regressed) > 0 {
		fmt.Fprintf(os.Stderr, "\nbench: %d case(s) regressed beyond the -fail-over threshold:\n", len(regressed))
		for _, r := range regressed {
			fmt.Fprintln(os.Stderr, "  "+r)
		}
		os.Exit(1)
	}
}

// comparePairs renders the batch-vs-stream table: for every "<name>"
// with a "<name>-stream" sibling in the snapshot, the two entries ran
// the identical workload — one retaining and batch-classifying the full
// history, one checking online in drop mode — so their wall-time and
// peak-memory ratio is the measured cost/benefit of the streaming
// refactor.
func comparePairs(entries []Entry) {
	byName := make(map[string]Entry, len(entries))
	for _, e := range entries {
		byName[e.Name] = e
	}
	var lines []string
	for _, e := range entries {
		s, ok := byName[e.Name+"-stream"]
		if !ok {
			continue
		}
		line := fmt.Sprintf("%-32s time %s → %s (%+.1f%%)",
			e.Name, dur(e.NsPerOp), dur(s.NsPerOp), delta(s.NsPerOp, e.NsPerOp))
		if e.PeakBytes > 0 && s.PeakBytes > 0 {
			line += fmt.Sprintf("   peak %s → %s (%.1fx less)",
				mb(e.PeakBytes), mb(s.PeakBytes), float64(e.PeakBytes)/float64(s.PeakBytes))
		}
		lines = append(lines, line)
	}
	if len(lines) == 0 {
		return
	}
	fmt.Println("\nbatch vs stream (identical workloads):")
	for _, l := range lines {
		fmt.Println("  " + l)
	}
}

// compareMetered renders the bare-vs-instrumented table: for every
// "<name>" with a "<name>-met" sibling the two entries ran the
// identical workload, one with the metrics layer attached — the wall
// delta is the measured instrumentation overhead (DESIGN.md ablation
// #13) — and the metered entry's deterministic metrics (merge-stall
// share of wall time, delivery counts) print alongside.
func compareMetered(entries []Entry) {
	byName := make(map[string]Entry, len(entries))
	for _, e := range entries {
		byName[e.Name] = e
	}
	var lines []string
	for _, e := range entries {
		m, ok := byName[e.Name+"-met"]
		if !ok {
			continue
		}
		line := fmt.Sprintf("%-32s time %s → %s (%+.1f%% instrumented)",
			e.Name, dur(e.NsPerOp), dur(m.NsPerOp), delta(m.NsPerOp, e.NsPerOp))
		if stall, ok := m.Metrics["timing:merge.stall.ns"]; ok && m.NsPerOp > 0 {
			line += fmt.Sprintf("   merge-stall %.1f%%", float64(stall)/m.NsPerOp*100)
		}
		if peak, ok := m.Metrics["hist.ops.peak"]; ok {
			line += fmt.Sprintf("   ops %d", peak)
		}
		if peak, ok := m.Metrics["mon.retained.peak"]; ok {
			line += fmt.Sprintf("   mon-peak %d", peak)
		}
		lines = append(lines, line)
	}
	if len(lines) == 0 {
		return
	}
	fmt.Println("\nbare vs instrumented (identical workloads):")
	for _, l := range lines {
		fmt.Println("  " + l)
	}
}

func mb(b int64) string {
	return fmt.Sprintf("%.1f MB", float64(b)/1e6)
}

func dur(ns float64) string {
	return time.Duration(ns).Round(time.Millisecond).String()
}

func delta(now, before float64) float64 {
	if before == 0 {
		return 0
	}
	return (now - before) / before * 100
}

// latestSnapshot loads the BENCH_*.json in dir with the newest internal
// date, excluding the output path itself.
func latestSnapshot(dir, exclude string) (*Snapshot, string) {
	matches, err := filepath.Glob(filepath.Join(dir, "BENCH_*.json"))
	if err != nil {
		return nil, ""
	}
	sort.Strings(matches)
	var best *Snapshot
	var bestName string
	for _, m := range matches {
		if sameFile(m, exclude) {
			continue
		}
		data, err := os.ReadFile(m)
		if err != nil {
			continue
		}
		var s Snapshot
		if json.Unmarshal(data, &s) != nil {
			continue
		}
		if best == nil || s.Date > best.Date {
			cp := s
			best, bestName = &cp, filepath.Base(m)
		}
	}
	return best, bestName
}

func sameFile(a, b string) bool {
	aa, err1 := filepath.Abs(a)
	bb, err2 := filepath.Abs(b)
	return err1 == nil && err2 == nil && aa == bb
}
