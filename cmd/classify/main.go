// Command classify regenerates Table 1 of the paper: it runs all seven
// blockchain-system simulators, classifies each recorded history against
// the BT consistency criteria and the k-fork coherence of its oracle,
// and prints the measured mapping next to the paper's claim.
//
// Usage:
//
//	classify [-seed N] [-seeds K]
//
// With -seeds K > 1 the classification is repeated over K consecutive
// seeds and a stability summary is printed (how often each row matched).
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/experiments"
)

func main() {
	seed := flag.Uint64("seed", 42, "base seed")
	seeds := flag.Int("seeds", 1, "number of consecutive seeds to classify")
	flag.Parse()

	if *seeds <= 1 {
		res := experiments.Table1(*seed)
		fmt.Print(res)
		if !res.OK {
			os.Exit(1)
		}
		return
	}

	matches := map[string]int{}
	var order []string
	fails := 0
	for s := 0; s < *seeds; s++ {
		res := experiments.Table1(*seed + uint64(s))
		if !res.OK {
			fails++
		}
		for _, line := range res.Lines {
			fields := strings.Fields(line)
			if len(fields) < 2 || fields[0] == "System" || fields[0] == "oracle" {
				continue
			}
			sys := fields[0]
			if _, seen := matches[sys]; !seen {
				order = append(order, sys)
			}
			if strings.HasSuffix(line, "true") {
				matches[sys]++
			}
		}
	}
	fmt.Printf("Table 1 stability over %d seeds (base %d):\n", *seeds, *seed)
	for _, sys := range order {
		fmt.Printf("  %-12s matched %d/%d\n", sys, matches[sys], *seeds)
	}
	if fails > 0 {
		fmt.Printf("%d seed(s) had mismatching tables\n", fails)
		os.Exit(1)
	}
}
