// Command classify regenerates Table 1 of the paper: it runs every
// system registered with the public btsim registry, classifies each
// recorded history against the BT consistency criteria and the k-fork
// coherence of its oracle, and prints the measured mapping next to the
// paper's claim.
//
// Usage:
//
//	classify [-seed N] [-seeds K] [-system name] [-stream] [-adversary strategy]
//
// With -system, only that registered system is run and classified (any
// entry of btsim.Names()). With -seeds K > 1 the classification is
// repeated over K consecutive seeds and a stability summary is printed
// (how often each row matched). With -stream the run is checked by the
// online consistency monitor instead of batch Classify: violation
// witnesses print incrementally as they form, followed by the finalized
// verdicts; -adversary (selfish, withhold, equivocate) makes witnesses
// actually appear.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/btsim"
	_ "repro/btsim/systems"
	"repro/internal/consistency"
	"repro/internal/experiments"
)

func main() {
	seed := flag.Uint64("seed", 42, "base seed")
	seeds := flag.Int("seeds", 1, "number of consecutive seeds to classify")
	system := flag.String("system", "", "classify a single registered system by name")
	stream := flag.Bool("stream", false, "check online: print witnesses incrementally as they form")
	adv := flag.String("adversary", "", "adversarial strategy for -stream runs (selfish, withhold, equivocate)")
	flag.Parse()

	if *stream {
		names := btsim.Names()
		if *system != "" {
			names = []string{*system}
		}
		fails := 0
		for _, name := range names {
			if !classifyStream(name, *seed, *adv) {
				fails++
			}
		}
		if fails > 0 {
			os.Exit(1)
		}
		return
	}

	if *system != "" {
		classifyOne(*system, *seed, *seeds)
		return
	}

	if *seeds <= 1 {
		res := experiments.Table1(*seed)
		fmt.Print(res)
		if !res.OK {
			os.Exit(1)
		}
		return
	}

	matches := map[string]int{}
	var order []string
	fails := 0
	for s := 0; s < *seeds; s++ {
		res := experiments.Table1(*seed + uint64(s))
		if !res.OK {
			fails++
		}
		for _, line := range res.Lines {
			fields := strings.Fields(line)
			if len(fields) < 2 || fields[0] == "System" || fields[0] == "oracle" {
				continue
			}
			sys := fields[0]
			if _, seen := matches[sys]; !seen {
				order = append(order, sys)
			}
			if strings.HasSuffix(line, "true") {
				matches[sys]++
			}
		}
	}
	fmt.Printf("Table 1 stability over %d seeds (base %d):\n", *seeds, *seed)
	for _, sys := range order {
		fmt.Printf("  %-12s matched %d/%d\n", sys, matches[sys], *seeds)
	}
	if fails > 0 {
		fmt.Printf("%d seed(s) had mismatching tables\n", fails)
		os.Exit(1)
	}
}

// classifyStream runs one system with the online monitor attached,
// printing each violation witness the moment it forms and the finalized
// streaming verdicts afterwards. Returns whether the run was usable.
func classifyStream(name string, seed uint64, adv string) bool {
	sys, err := btsim.Get(name)
	if err != nil {
		fmt.Fprintln(os.Stderr, "classify:", err)
		os.Exit(2)
	}
	info := sys.Info()
	fmt.Printf("=== %s (Θ %s, paper: %s) — streaming check, seed %d ===\n",
		info.Name, info.Oracle, info.Criterion, seed)
	opts := []btsim.Option{
		btsim.WithSeed(seed),
		btsim.WithMonitor(func(w consistency.Witness) {
			fmt.Printf("  [live] %-20s %s\n", w.Property, w.Detail)
		}),
	}
	if k := info.K; k > 0 {
		opts = append(opts, btsim.WithMonitorK(k))
	}
	if adv != "" {
		opts = append(opts,
			btsim.WithN(4), btsim.WithMerits(1, 1, 1, 2),
			btsim.WithAdversary(btsim.Adversary{Strategy: adv}))
	}
	res, err := sys.Run(btsim.NewConfig(opts...))
	if err != nil {
		fmt.Fprintln(os.Stderr, "classify:", err)
		os.Exit(2)
	}
	st := res.Stream
	fmt.Printf("  finalized: SC=%v%v EC=%v%v", st.SC.OK, st.SC.Failing(), st.EC.OK, st.EC.Failing())
	if st.KFork != nil {
		fmt.Printf(" %s=%v", st.KFork.Property, st.KFork.OK)
	}
	fmt.Printf("  (%d ops checked, %d live witnesses, %d records retained)\n",
		st.Ops, st.LiveCount, st.Stats.Retained)
	return true
}

// classifyOne runs and classifies a single registered system across the
// requested seeds.
func classifyOne(name string, base uint64, seeds int) {
	if seeds < 1 {
		seeds = 1
	}
	fmt.Printf("%-12s %-10s %-10s %-7s %-6s %-6s %-10s %s\n",
		"System", "Θ paper", "Θ meas.", "forkMax", "SC", "EC", "paper", "match")
	fails := 0
	for s := 0; s < seeds; s++ {
		row, err := experiments.ClassifyOne(name, base+uint64(s))
		if err != nil {
			fmt.Fprintln(os.Stderr, "classify:", err)
			os.Exit(2)
		}
		fmt.Printf("%-12s %-10s %-10s %-7d %-6v %-6v %-10s %v\n",
			row.System, row.OracleClaim, row.OracleMeasured, row.ForkMax,
			row.SCHolds, row.ECHolds, row.PaperCriterion, row.Match)
		if !row.Match {
			fails++
		}
	}
	if fails > 0 {
		fmt.Printf("%d/%d seed(s) did not reproduce the paper's row\n", fails, seeds)
		os.Exit(1)
	}
}
