// Command classify regenerates Table 1 of the paper: it runs every
// system registered with the public btsim registry, classifies each
// recorded history against the BT consistency criteria and the k-fork
// coherence of its oracle, and prints the measured mapping next to the
// paper's claim.
//
// Usage:
//
//	classify [-seed N] [-seeds K] [-system name]
//
// With -system, only that registered system is run and classified (any
// entry of btsim.Names()). With -seeds K > 1 the classification is
// repeated over K consecutive seeds and a stability summary is printed
// (how often each row matched).
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/experiments"
)

func main() {
	seed := flag.Uint64("seed", 42, "base seed")
	seeds := flag.Int("seeds", 1, "number of consecutive seeds to classify")
	system := flag.String("system", "", "classify a single registered system by name")
	flag.Parse()

	if *system != "" {
		classifyOne(*system, *seed, *seeds)
		return
	}

	if *seeds <= 1 {
		res := experiments.Table1(*seed)
		fmt.Print(res)
		if !res.OK {
			os.Exit(1)
		}
		return
	}

	matches := map[string]int{}
	var order []string
	fails := 0
	for s := 0; s < *seeds; s++ {
		res := experiments.Table1(*seed + uint64(s))
		if !res.OK {
			fails++
		}
		for _, line := range res.Lines {
			fields := strings.Fields(line)
			if len(fields) < 2 || fields[0] == "System" || fields[0] == "oracle" {
				continue
			}
			sys := fields[0]
			if _, seen := matches[sys]; !seen {
				order = append(order, sys)
			}
			if strings.HasSuffix(line, "true") {
				matches[sys]++
			}
		}
	}
	fmt.Printf("Table 1 stability over %d seeds (base %d):\n", *seeds, *seed)
	for _, sys := range order {
		fmt.Printf("  %-12s matched %d/%d\n", sys, matches[sys], *seeds)
	}
	if fails > 0 {
		fmt.Printf("%d seed(s) had mismatching tables\n", fails)
		os.Exit(1)
	}
}

// classifyOne runs and classifies a single registered system across the
// requested seeds.
func classifyOne(name string, base uint64, seeds int) {
	if seeds < 1 {
		seeds = 1
	}
	fmt.Printf("%-12s %-10s %-10s %-7s %-6s %-6s %-10s %s\n",
		"System", "Θ paper", "Θ meas.", "forkMax", "SC", "EC", "paper", "match")
	fails := 0
	for s := 0; s < seeds; s++ {
		row, err := experiments.ClassifyOne(name, base+uint64(s))
		if err != nil {
			fmt.Fprintln(os.Stderr, "classify:", err)
			os.Exit(2)
		}
		fmt.Printf("%-12s %-10s %-10s %-7d %-6v %-6v %-10s %v\n",
			row.System, row.OracleClaim, row.OracleMeasured, row.ForkMax,
			row.SCHolds, row.ECHolds, row.PaperCriterion, row.Match)
		if !row.Match {
			fails++
		}
	}
	if fails > 0 {
		fmt.Printf("%d/%d seed(s) did not reproduce the paper's row\n", fails, seeds)
		os.Exit(1)
	}
}
