// Command historyviz renders recorded concurrent histories in the style
// of the paper's Figures 2–4: per-process timelines of read() operations
// with the returned blockchains, plus the BlockTree and the criterion
// verdicts. It can render the three built-in paper histories or a fresh
// protocol run.
//
// Usage:
//
//	historyviz [-seed N] [fig2|fig3|fig4|bitcoin|fabric]
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"repro/internal/consistency"
	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/history"
	"repro/internal/protocols"
	"repro/internal/protocols/bitcoin"
	"repro/internal/protocols/fabric"
)

func main() {
	seed := flag.Uint64("seed", 42, "seed")
	flag.Parse()
	which := "fig3"
	if flag.NArg() > 0 {
		which = flag.Arg(0)
	}

	switch which {
	case "fig2", "fig3", "fig4":
		e := experiments.ByID(which)
		res := e.Run(*seed)
		fmt.Print(res)
	case "bitcoin":
		cfg := bitcoin.Config{}
		cfg.N = 3
		cfg.Rounds = 60
		cfg.Seed = *seed
		cfg.ReadEvery = 10
		cfg.Difficulty = 6
		render(bitcoin.Run(cfg))
		return
	case "fabric":
		cfg := fabric.Config{}
		cfg.N = 3
		cfg.Rounds = 20
		cfg.Seed = *seed
		cfg.ReadEvery = 10
		render(fabric.Run(cfg))
		return
	default:
		fmt.Fprintf(os.Stderr, "historyviz: unknown target %q (fig2|fig3|fig4|bitcoin|fabric)\n", which)
		os.Exit(2)
	}
}

// render draws the per-process read timelines and the final tree.
func render(res *protocols.Result) {
	fmt.Printf("=== %s — %s, f = %s ===\n", res.System, res.History, res.Selector.Name())

	byProc := map[int][]*history.Op{}
	for _, r := range res.History.Reads() {
		byProc[r.Proc] = append(byProc[r.Proc], r)
	}
	var procs []int
	for p := range byProc {
		procs = append(procs, p)
	}
	sort.Ints(procs)
	for _, p := range procs {
		var sb strings.Builder
		fmt.Fprintf(&sb, "p%d │", p)
		for _, r := range byProc[p] {
			fmt.Fprintf(&sb, " [l=%d %s]", r.Chain().Height(), headShort(r.Chain()))
		}
		fmt.Println(sb.String())
	}

	fmt.Println("\nfinal BlockTree (replica 0):")
	drawTree(res.Trees[0], core.GenesisID, "")

	chk := consistency.NewChecker(res.Score, core.WellFormed{})
	sc, ec := chk.Classify(res.History)
	fmt.Println()
	fmt.Println(sc)
	fmt.Println(ec)
}

func headShort(c core.Chain) string {
	if h := c.Head(); h != nil {
		return h.ID.Short()
	}
	return "∅"
}

func drawTree(t *core.Tree, id core.BlockID, indent string) {
	b := t.Block(id)
	label := "b0"
	if !b.IsGenesis() {
		label = fmt.Sprintf("%s (h=%d by p%d)", id.Short(), b.Height, b.Creator)
	}
	fmt.Printf("%s%s\n", indent, label)
	for _, ch := range t.Children(id) {
		drawTree(t, ch, indent+"  ")
	}
}
