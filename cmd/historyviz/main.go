// Command historyviz renders recorded concurrent histories in the style
// of the paper's Figures 2–4: per-process timelines of read() operations
// with the returned blockchains, plus the BlockTree, the criterion
// verdicts with their counterexample witnesses, and — for adversarial
// runs — the fault timeline (drops, partition cuts/heals, withheld and
// released blocks). It can render the three built-in paper histories, a
// fresh protocol run, or any scenario of the adversarial catalogue
// (e.g. "bitcoin/selfish", "fabric/equivocate"; see cmd/scenarios).
//
// Usage:
//
//	historyviz [-seed N] [fig2|fig3|fig4|bitcoin|fabric|<scenario-name>]
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"repro/internal/consistency"
	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/history"
	"repro/internal/protocols"
	"repro/internal/protocols/bitcoin"
	"repro/internal/protocols/fabric"
	"repro/internal/scenario"
)

func main() {
	seed := flag.Uint64("seed", 42, "seed")
	flag.Parse()
	which := "fig3"
	if flag.NArg() > 0 {
		which = flag.Arg(0)
	}

	switch which {
	case "fig2", "fig3", "fig4":
		e := experiments.ByID(which)
		res := e.Run(*seed)
		fmt.Print(res)
	case "bitcoin":
		cfg := bitcoin.Config{}
		cfg.N = 3
		cfg.Rounds = 60
		cfg.Seed = *seed
		cfg.ReadEvery = 10
		cfg.Difficulty = 6
		render(bitcoin.Run(cfg))
		return
	case "fabric":
		cfg := fabric.Config{}
		cfg.N = 3
		cfg.Rounds = 20
		cfg.Seed = *seed
		cfg.ReadEvery = 10
		render(fabric.Run(cfg))
		return
	default:
		if spec := scenario.ByName(which); spec != nil {
			var o *scenario.Outcome
			if *seed != 42 {
				o = spec.Run(*seed)
			} else {
				o = spec.Run(0) // pinned catalogue seed
			}
			fmt.Printf("scenario %s (seed %d, digest %s): %s\n\n", spec.Name, o.Seed, o.Digest, spec.Note)
			render(o.Res)
			return
		}
		fmt.Fprintf(os.Stderr, "historyviz: unknown target %q (fig2|fig3|fig4|bitcoin|fabric|<scenario>)\n", which)
		fmt.Fprintln(os.Stderr, "scenarios:")
		for _, s := range scenario.Catalogue() {
			fmt.Fprintf(os.Stderr, "  %s\n", s.Name)
		}
		os.Exit(2)
	}
}

// render draws the per-process read timelines and the final tree.
func render(res *protocols.Result) {
	fmt.Printf("=== %s — %s, f = %s ===\n", res.System, res.History, res.Selector.Name())

	byProc := map[int][]*history.Op{}
	for _, r := range res.History.Reads() {
		byProc[r.Proc] = append(byProc[r.Proc], r)
	}
	var procs []int
	for p := range byProc {
		procs = append(procs, p)
	}
	sort.Ints(procs)
	for _, p := range procs {
		var sb strings.Builder
		fmt.Fprintf(&sb, "p%d │", p)
		for _, r := range byProc[p] {
			fmt.Fprintf(&sb, " [l=%d %s]", r.Chain().Height(), headShort(r.Chain()))
		}
		fmt.Println(sb.String())
	}

	renderFaults(res)

	fmt.Println("\nfinal BlockTree (replica 0):")
	drawTree(res.Trees[0], core.GenesisID, "")

	chk := consistency.NewChecker(res.Score, core.WellFormed{})
	sc, ec := chk.Classify(res.History)
	fmt.Println()
	fmt.Println(sc)
	fmt.Println(ec)
	for _, w := range append(sc.Witnesses(), ec.Witnesses()...) {
		fmt.Println("  witness:", w)
	}
}

// renderFaults draws the fault timeline: partition cuts/heals and the
// adversary's withhold/release/equivocate decisions as individual
// events, with the (potentially numerous) per-message drop/defer events
// summarized into counts.
func renderFaults(res *protocols.Result) {
	if len(res.FaultEvents) == 0 {
		return
	}
	perMsg := map[string]int{}
	var timeline []string
	for _, e := range res.FaultEvents {
		switch e.Kind {
		case "drop", "defer", "partloss":
			perMsg[e.Kind]++
		default:
			timeline = append(timeline, e.String())
		}
	}
	fmt.Printf("\nfaults │ adversary=%s", res.AdversaryName)
	for _, k := range []string{"drop", "defer", "partloss"} {
		if perMsg[k] > 0 {
			fmt.Printf(" %s×%d", k, perMsg[k])
		}
	}
	fmt.Println()
	const maxShown = 24
	for i, line := range timeline {
		if i >= maxShown {
			fmt.Printf("       │ … %d more events\n", len(timeline)-i)
			break
		}
		fmt.Printf("       │ %s\n", line)
	}
}

func headShort(c core.Chain) string {
	if h := c.Head(); h != nil {
		return h.ID.Short()
	}
	return "∅"
}

func drawTree(t *core.Tree, id core.BlockID, indent string) {
	b := t.Block(id)
	label := "b0"
	if !b.IsGenesis() {
		label = fmt.Sprintf("%s (h=%d by p%d)", id.Short(), b.Height, b.Creator)
	}
	fmt.Printf("%s%s\n", indent, label)
	for _, ch := range t.Children(id) {
		drawTree(t, ch, indent+"  ")
	}
}
