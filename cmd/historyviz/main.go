// Command historyviz renders recorded concurrent histories in the style
// of the paper's Figures 2–4: per-process timelines of read() operations
// with the returned blockchains, plus the BlockTree, the criterion
// verdicts with their counterexample witnesses, and — for adversarial
// runs — the fault timeline (drops, partition cuts/heals, crash and
// restart marks, withheld and released blocks). It can render the three built-in paper histories, a
// fresh demo run of any system registered with the public btsim
// registry ("bitcoin", "byzcoin", "fabric", ...), or any scenario of
// the adversarial catalogue (e.g. "bitcoin/selfish",
// "fabric/equivocate"; see cmd/scenarios -list).
//
// Usage:
//
//	historyviz [-seed N] [fig2|fig3|fig4|<system-name>|<scenario-name>]
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"repro/btsim"
	"repro/internal/consistency"
	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/history"
	"repro/internal/scenario"
)

func main() {
	seed := flag.Uint64("seed", 42, "seed")
	flag.Parse()
	which := "fig3"
	if flag.NArg() > 0 {
		which = flag.Arg(0)
	}

	switch which {
	case "fig2", "fig3", "fig4":
		e := experiments.ByID(which)
		res := e.Run(*seed)
		fmt.Print(res)
	default:
		if spec := scenario.ByName(which); spec != nil {
			runSeed := uint64(0) // pinned catalogue seed
			if *seed != 42 {
				runSeed = *seed
			}
			o, err := spec.Run(runSeed)
			if err != nil {
				fmt.Fprintln(os.Stderr, "historyviz:", err)
				os.Exit(2)
			}
			fmt.Printf("scenario %s (seed %d, digest %s): %s\n\n", spec.Name, o.Seed, o.Digest, spec.Note)
			render(o.Res)
			return
		}
		if sys, ok := btsim.Lookup(which); ok {
			render(demoRun(sys, *seed))
			return
		}
		fmt.Fprintf(os.Stderr, "historyviz: unknown target %q (fig2|fig3|fig4|<system>|<scenario>)\n", which)
		fmt.Fprintln(os.Stderr, "systems:")
		for _, name := range btsim.Names() {
			fmt.Fprintf(os.Stderr, "  %s\n", name)
		}
		fmt.Fprintln(os.Stderr, "scenarios:")
		for _, s := range scenario.Catalogue() {
			fmt.Fprintf(os.Stderr, "  %s\n", s.Name)
		}
		os.Exit(2)
	}
}

// demoRun produces a small render-friendly run of a registered system:
// few processes, short horizon, PoW difficulty tuned so the tree shows
// visible (transient) forks.
func demoRun(sys btsim.System, seed uint64) *btsim.Result {
	opts := []btsim.Option{btsim.WithSeed(seed), btsim.WithReadEvery(10)}
	if sys.Info().K == 0 {
		opts = append(opts, btsim.WithN(3), btsim.WithRounds(60), btsim.WithDifficulty(6))
	} else {
		opts = append(opts, btsim.WithN(4), btsim.WithRounds(20))
	}
	res, err := sys.Run(btsim.NewConfig(opts...))
	if err != nil {
		fmt.Fprintln(os.Stderr, "historyviz:", err)
		os.Exit(2)
	}
	return res
}

// render draws the per-process read timelines and the final tree.
func render(res *btsim.Result) {
	fmt.Printf("=== %s — %s, f = %s ===\n", res.System, res.History, res.Selector.Name())

	byProc := map[int][]*history.Op{}
	for _, r := range res.History.Reads() {
		byProc[r.Proc] = append(byProc[r.Proc], r)
	}
	var procs []int
	for p := range byProc {
		procs = append(procs, p)
	}
	sort.Ints(procs)
	for _, p := range procs {
		var sb strings.Builder
		fmt.Fprintf(&sb, "p%d │", p)
		for _, r := range byProc[p] {
			fmt.Fprintf(&sb, " [l=%d %s]", r.Chain().Height(), headShort(r.Chain()))
		}
		fmt.Println(sb.String())
	}

	renderFaults(res)

	fmt.Println("\nfinal BlockTree (replica 0):")
	drawTree(res.Trees[0], core.GenesisID, "")

	chk := consistency.NewChecker(res.Score, core.WellFormed{})
	sc, ec := chk.Classify(res.History)
	fmt.Println()
	fmt.Println(sc)
	fmt.Println(ec)
	for _, w := range append(sc.Witnesses(), ec.Witnesses()...) {
		fmt.Println("  witness:", w)
	}
}

// renderFaults draws the fault timeline: partition cuts/heals,
// crash/restart marks and the adversary's withhold/release/equivocate
// decisions as individual events, with the (potentially numerous)
// per-message drop/defer/partloss/crashloss events summarized into
// counts.
func renderFaults(res *btsim.Result) {
	if len(res.FaultEvents) == 0 {
		return
	}
	perMsg := map[string]int{}
	var timeline []string
	for _, e := range res.FaultEvents {
		switch e.Kind {
		case "drop", "defer", "partloss", "crashloss":
			perMsg[e.Kind]++
		default:
			// includes "cut"/"heal" and the crash–recovery marks
			// ("crash", "restart"), which carry no From/To pair.
			timeline = append(timeline, e.String())
		}
	}
	fmt.Printf("\nfaults │ adversary=%s", res.AdversaryName)
	for _, k := range []string{"drop", "defer", "partloss", "crashloss"} {
		if perMsg[k] > 0 {
			fmt.Printf(" %s×%d", k, perMsg[k])
		}
	}
	fmt.Println()
	const maxShown = 24
	for i, line := range timeline {
		if i >= maxShown {
			fmt.Printf("       │ … %d more events\n", len(timeline)-i)
			break
		}
		fmt.Printf("       │ %s\n", line)
	}
}

func headShort(c core.Chain) string {
	if h := c.Head(); h != nil {
		return h.ID.Short()
	}
	return "∅"
}

func drawTree(t *core.Tree, id core.BlockID, indent string) {
	b := t.Block(id)
	label := "b0"
	if !b.IsGenesis() {
		label = fmt.Sprintf("%s (h=%d by p%d)", id.Short(), b.Height, b.Creator)
	}
	fmt.Printf("%s%s\n", indent, label)
	for _, ch := range t.Children(id) {
		drawTree(t, ch, indent+"  ")
	}
}
