// Command btadt runs the paper-reproduction experiments: every figure
// and table of "Blockchain Abstract Data Type" regenerated as program
// output.
//
// Usage:
//
//	btadt [-seed N] [-list] [id ...]
//
// With no ids, every experiment runs in paper order. Use -list to see
// the available ids.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/experiments"
)

func main() {
	seed := flag.Uint64("seed", 42, "seed for all pseudorandomness")
	list := flag.Bool("list", false, "list experiment ids and exit")
	flag.Parse()

	if *list {
		for _, e := range experiments.All() {
			fmt.Printf("%-8s %s\n", e.ID, e.Name)
		}
		return
	}

	ids := flag.Args()
	var toRun []experiments.Experiment
	if len(ids) == 0 {
		toRun = experiments.All()
	} else {
		for _, id := range ids {
			e := experiments.ByID(id)
			if e == nil {
				fmt.Fprintf(os.Stderr, "btadt: unknown experiment %q (try -list)\n", id)
				os.Exit(2)
			}
			toRun = append(toRun, *e)
		}
	}

	failed := 0
	for _, e := range toRun {
		res := e.Run(*seed)
		fmt.Print(res)
		fmt.Println()
		if !res.OK {
			failed++
		}
	}
	if failed > 0 {
		fmt.Fprintf(os.Stderr, "btadt: %d experiment(s) did not reproduce\n", failed)
		os.Exit(1)
	}
}
