// Command trace runs one registered system under the deterministic
// observability layer (btsim.WithMetrics + WithTrace) and renders the
// resulting virtual-time trace: raw Chrome trace-event JSON for
// Perfetto / chrome://tracing, JSON-lines for ad-hoc tooling, or an
// ASCII view with per-shard event lanes and the monitor-state timeline
// sampled from the metric series. Because the trace is sampled by
// scheduler sequence number against virtual time, re-running the same
// (system, seed, flags) reproduces the same stream byte for byte.
//
// Usage:
//
//	trace [-system name] [-n N] [-rounds R] [-seed S] [-shards K]
//	      [-difficulty D] [-read-every E] [-drop nth,to] [-monitor]
//	      [-sample S] [-limit L] [-format chrome|jsonl] [-o file]
//	      [-lanes] [-check file]
//
// -lanes renders the ASCII lane view instead of the raw trace; -check
// skips the run entirely and validates an existing Chrome trace-event
// JSON file (the CI trace-smoke step), exiting non-zero if it does not
// parse or is empty.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"

	"repro/btsim"
	"repro/internal/trace"

	_ "repro/btsim/systems"
)

func main() {
	system := flag.String("system", "bitcoin", "registered system to run (see cmd/scenarios -list)")
	n := flag.Int("n", 8, "replica count")
	rounds := flag.Int("rounds", 150, "simulated rounds")
	seed := flag.Uint64("seed", 1, "deterministic seed")
	shards := flag.Int("shards", 1, "scheduler shard count (trace is identical for any value)")
	difficulty := flag.Float64("difficulty", 5, "PoW difficulty (PoW systems)")
	readEvery := flag.Int64("read-every", 15, "issue a read every this many virtual-time units")
	drop := flag.String("drop", "", `drop every nth message to a replica, as "nth,to"`)
	monitor := flag.Bool("monitor", false, "attach the online consistency monitor (adds mon.* series and witness events)")
	sample := flag.Int64("sample", 1, "keep one in S common events (rare kinds always kept)")
	limit := flag.Int("limit", 0, "cap retained events (0 = library default)")
	format := flag.String("format", "chrome", `output format: "chrome" (Perfetto-loadable) or "jsonl"`)
	out := flag.String("o", "", "write the trace here instead of stdout")
	lanes := flag.Bool("lanes", false, "render ASCII per-shard lanes and the monitor-state timeline instead of the raw trace")
	check := flag.String("check", "", "validate an existing Chrome trace-event JSON file and exit")
	flag.Parse()

	if *check != "" {
		os.Exit(runCheck(*check))
	}
	if *format != "chrome" && *format != "jsonl" {
		fatalf("unknown -format %q (known: chrome, jsonl)", *format)
	}

	opts := []btsim.Option{
		btsim.WithN(*n), btsim.WithRounds(*rounds), btsim.WithSeed(*seed),
		btsim.WithReadEvery(*readEvery), btsim.WithDifficulty(*difficulty),
		btsim.WithMetrics(),
	}
	if *shards > 1 {
		opts = append(opts, btsim.WithShards(*shards))
	}
	if *drop != "" {
		var nth, to int
		if _, err := fmt.Sscanf(*drop, "%d,%d", &nth, &to); err != nil {
			fatalf("bad -drop %q (want \"nth,to\"): %v", *drop, err)
		}
		opts = append(opts, btsim.WithDropNth(nth, to))
	}
	if *monitor {
		opts = append(opts, btsim.WithMonitor(nil))
	}

	// The run always traces into a buffer; -lanes needs the parseable
	// JSON-lines form, raw output honors -format.
	var buf bytes.Buffer
	topts := btsim.TraceOptions{SampleEvery: *sample, Limit: *limit, JSONL: *lanes || *format == "jsonl"}
	opts = append(opts, btsim.WithTrace(&buf, topts))

	res, err := btsim.Run(*system, opts...)
	if err != nil {
		fatalf("%v", err)
	}

	w := io.Writer(os.Stdout)
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatalf("%v", err)
		}
		defer f.Close()
		w = f
	}

	if *lanes {
		events, err := trace.ParseJSONL(&buf)
		if err != nil {
			fatalf("parsing own trace: %v", err)
		}
		renderLanes(w, res, events)
		return
	}
	if _, err := io.Copy(w, &buf); err != nil {
		fatalf("%v", err)
	}
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "trace: "+format+"\n", args...)
	os.Exit(2)
}

// laneWidth is the number of virtual-time buckets in the ASCII view.
const laneWidth = 64

// density maps a per-bucket count (scaled against the busiest bucket)
// to a glyph; index 0 is "empty".
var density = []byte(" .:-=+*#%@")

// renderLanes prints the ASCII trace view: one lane per scheduler
// shard (bucketed event density over virtual time), a marker lane for
// the rare kinds, and the monitor-state timeline from the sampled
// metric series.
func renderLanes(w io.Writer, res *btsim.Result, events []trace.Event) {
	if len(events) == 0 {
		fmt.Fprintln(w, "trace: no events retained")
		return
	}
	vtMax := int64(1)
	for _, ev := range events {
		if ev.VT > vtMax {
			vtMax = ev.VT
		}
	}
	bucket := func(vt int64) int {
		b := int(vt * laneWidth / (vtMax + 1))
		if b >= laneWidth {
			b = laneWidth - 1
		}
		return b
	}

	// Per-shard density lanes. Serial-context events (sends, timers,
	// witnesses) carry no shard; they get the scheduler lane.
	shardOf := func(ev trace.Event) int {
		if ev.Kind == trace.KDeliver || ev.Kind == trace.KEpoch || ev.Kind == trace.KStall {
			return ev.Shard
		}
		return -1
	}
	counts := map[int][]int{}
	kinds := map[trace.Kind]int{}
	for _, ev := range events {
		s := shardOf(ev)
		if counts[s] == nil {
			counts[s] = make([]int, laneWidth)
		}
		counts[s][bucket(ev.VT)]++
		kinds[ev.Kind]++
	}
	var shardIDs []int
	for s := range counts {
		shardIDs = append(shardIDs, s)
	}
	sort.Ints(shardIDs)

	fmt.Fprintf(w, "virtual time 0..%d across %d columns (each column ≈ %d vt units)\n\n",
		vtMax, laneWidth, (vtMax+laneWidth)/laneWidth)
	for _, s := range shardIDs {
		label := "scheduler"
		if s >= 0 {
			label = fmt.Sprintf("shard %d", s)
		}
		peak := 1
		for _, c := range counts[s] {
			if c > peak {
				peak = c
			}
		}
		lane := make([]byte, laneWidth)
		for i, c := range counts[s] {
			idx := 0
			if c > 0 {
				idx = 1 + c*(len(density)-2)/peak
			}
			lane[i] = density[idx]
		}
		fmt.Fprintf(w, "%-13s |%s| peak %d/col\n", label, lane, peak)
	}

	// Rare-event marker lane: one glyph per kind, last writer wins
	// within a bucket.
	marks := map[trace.Kind]byte{
		trace.KFault: 'F', trace.KCrash: 'C', trace.KRestart: 'R',
		trace.KEpoch: 'E', trace.KStall: 'S', trace.KWitness: 'W',
	}
	lane := bytes.Repeat([]byte{' '}, laneWidth)
	any := false
	for _, ev := range events {
		if g, ok := marks[ev.Kind]; ok {
			lane[bucket(ev.VT)] = g
			any = true
		}
	}
	if any {
		fmt.Fprintf(w, "%-13s |%s| F=fault C=crash R=restart E=epoch S=stall W=witness\n", "events", lane)
	}

	// Monitor-state timeline (or scheduler queue depth when the online
	// monitor is not attached) from the snapshot's sampled series.
	if res.Metrics != nil {
		for _, col := range []string{"mon.retained", "mon.witnesses", "sim.queue"} {
			renderSeriesLane(w, res, col, vtMax, bucket)
		}
	}

	fmt.Fprintln(w)
	var names []string
	for k := range kinds {
		names = append(names, k.String())
	}
	sort.Strings(names)
	for _, name := range names {
		k, _ := trace.KindFromString(name)
		fmt.Fprintf(w, "%-8s %6d\n", name, kinds[k])
	}
	fmt.Fprintf(w, "%-8s %6d   digest %s  metrics %s\n", "total", len(events), res.Digest(), res.Metrics.Digest())
}

// renderSeriesLane prints one metric column as a density lane, scaled
// against its own peak. Missing columns are silently skipped.
func renderSeriesLane(w io.Writer, res *btsim.Result, col string, vtMax int64, bucket func(int64) int) {
	idx := -1
	for i, c := range res.Metrics.Series.Cols {
		if c == col {
			idx = i
		}
	}
	if idx < 0 {
		return
	}
	vals := make([]int64, laneWidth)
	seen := make([]bool, laneWidth)
	var peak int64 = 1
	for _, row := range res.Metrics.Series.Rows {
		b := bucket(row.VT)
		v := row.Vals[idx]
		if !seen[b] || v > vals[b] {
			vals[b] = v
			seen[b] = true
		}
		if v > peak {
			peak = v
		}
	}
	lane := make([]byte, laneWidth)
	last := int64(0)
	for i := range lane {
		v := last
		if seen[i] {
			v = vals[i]
			last = v
		}
		idx := 0
		if v > 0 {
			idx = 1 + int(v*int64(len(density)-2)/peak)
		}
		lane[i] = density[idx]
	}
	fmt.Fprintf(w, "%-13s |%s| peak %d\n", col, lane, peak)
}

// runCheck validates a Chrome trace-event JSON file: it must parse,
// contain at least one event, and carry the metadata + duration phases
// the exporter always writes. Used by the CI trace-smoke step.
func runCheck(path string) int {
	data, err := os.ReadFile(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, "trace:", err)
		return 2
	}
	var f struct {
		TraceEvents []struct {
			Name string `json:"name"`
			Ph   string `json:"ph"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(data, &f); err != nil {
		fmt.Fprintf(os.Stderr, "trace: %s does not parse as Chrome trace-event JSON: %v\n", path, err)
		return 1
	}
	if len(f.TraceEvents) == 0 {
		fmt.Fprintf(os.Stderr, "trace: %s has no traceEvents\n", path)
		return 1
	}
	phases := map[string]int{}
	faults := 0
	for _, ev := range f.TraceEvents {
		phases[ev.Ph]++
		if strings.HasPrefix(ev.Name, "fault") {
			faults++
		}
	}
	var keys []string
	for ph := range phases {
		keys = append(keys, ph)
	}
	sort.Strings(keys)
	fmt.Printf("%s: %d events ok —", path, len(f.TraceEvents))
	for _, ph := range keys {
		fmt.Printf(" ph=%s:%d", ph, phases[ph])
	}
	if faults > 0 {
		fmt.Printf(" faults:%d", faults)
	}
	fmt.Println()
	if phases["M"] == 0 || phases["X"] == 0 {
		fmt.Fprintf(os.Stderr, "trace: %s is missing expected phases (need M metadata and X durations)\n", path)
		return 1
	}
	return 0
}
