// Command scenarios runs the curated adversarial scenario catalogue
// (internal/scenario) and emits the violation matrix: one row per
// (system, adversary, fault schedule) with the measured SC/EC/k-fork
// verdicts and the first counterexample witness of every violated
// property. The matrix is the two-sided evidence for the paper's
// hierarchy: benign baselines hold, and each predicted-breakable
// criterion is broken by a concrete measured execution.
//
// Usage:
//
//	scenarios [-only substr] [-seed N] [-sweep K] [-workers W] [-v] [-check]
//
// -seed overrides every pinned seed; -sweep K re-runs each scenario at K
// consecutive seeds (parallel, first concurrent path in the repo) and
// reports how often each property broke; -check exits non-zero when a
// scenario fails to measure a violation the paper predicts (CI smoke).
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/scenario"
)

func main() {
	only := flag.String("only", "", "run only scenarios whose name contains this substring")
	seed := flag.Uint64("seed", 0, "override the pinned per-scenario seeds (0 keeps them)")
	sweep := flag.Int("sweep", 0, "additionally sweep each scenario across K consecutive seeds")
	workers := flag.Int("workers", 4, "parallel runs during -sweep")
	verbose := flag.Bool("v", false, "print every witness and the fault-event log")
	check := flag.Bool("check", false, "exit 1 if a predicted violation goes unmeasured")
	flag.Parse()

	var outs []*scenario.Outcome
	failed := false
	for _, spec := range scenario.Catalogue() {
		if *only != "" && !strings.Contains(spec.Name, *only) {
			continue
		}
		o := spec.Run(*seed)
		outs = append(outs, o)
		if missing := o.MissingExpected(); len(missing) > 0 {
			failed = true
			fmt.Fprintf(os.Stderr, "scenarios: %s did not measure predicted violation(s) %v\n", spec.Name, missing)
		}
	}
	if len(outs) == 0 {
		fmt.Fprintln(os.Stderr, "scenarios: no scenario matched")
		os.Exit(2)
	}

	fmt.Print(scenario.Matrix(outs))
	fmt.Println()
	for _, o := range outs {
		fmt.Printf("%-26s seed=%-6d digest=%s  %s\n", o.Spec.Name, o.Seed, o.Digest, o.Spec.Note)
	}

	if *verbose {
		for _, o := range outs {
			if len(o.Violated) == 0 && len(o.Res.FaultEvents) == 0 {
				continue
			}
			fmt.Printf("\n=== %s ===\n", o.Spec.Name)
			for _, name := range o.Violated {
				if w, ok := o.Witnesses[name]; ok {
					fmt.Println("  witness:", w)
				}
			}
			if len(o.Res.FaultEvents) > 0 {
				fmt.Printf("  fault events (%d):\n", len(o.Res.FaultEvents))
				for i, e := range o.Res.FaultEvents {
					if i >= 20 {
						fmt.Printf("    … %d more\n", len(o.Res.FaultEvents)-i)
						break
					}
					fmt.Println("   ", e)
				}
			}
		}
	}

	if *sweep > 0 {
		fmt.Printf("\nsweep (%d seeds each, %d workers):\n", *sweep, *workers)
		for _, o := range outs {
			seeds := make([]uint64, *sweep)
			for i := range seeds {
				seeds[i] = o.Seed + uint64(i)
			}
			res := scenario.Sweep(o.Spec, seeds, *workers)
			fmt.Printf("%-26s %s\n", o.Spec.Name, scenario.SweepSummary(res))
		}
	}

	if *check && failed {
		os.Exit(1)
	}
}
