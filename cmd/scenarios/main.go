// Command scenarios runs the curated adversarial scenario catalogue
// (internal/scenario) and emits the violation matrix: one row per
// (system, adversary, fault schedule) with the measured SC/EC/k-fork
// verdicts and the first counterexample witness of every violated
// property. The matrix is the two-sided evidence for the paper's
// hierarchy: benign baselines hold, and each predicted-breakable
// criterion is broken by a concrete measured execution.
//
// Scenario dispatch goes through the public btsim registry, so every
// registered system is scenario-able; -list shows both the catalogue
// and the registry.
//
// Usage:
//
//	scenarios [-list] [-only substr] [-seed N] [-sweep K] [-workers W] [-v] [-check] [-stream] [-json]
//	          [-long full|smoke] [-cpuprofile cpu.pprof] [-memprofile mem.pprof]
//
// -list prints the catalogue and the registered systems; -seed
// overrides every pinned seed; -sweep K re-runs each scenario at K
// consecutive seeds (parallel) and reports how often each property
// broke; -check exits non-zero when a scenario fails to measure a
// violation the paper predicts (CI smoke); -stream checks every
// scenario with the online consistency monitor and exits non-zero if
// any outcome diverges from batch Classify; -json emits the matrix as
// machine-readable JSON (one object per run, with per-property
// verdicts and witnesses) instead of the rendered tables; -long runs the
// streaming-only ≥1M-op scenario ("smoke" is the scaled CI variant);
// -cpuprofile/-memprofile write pprof profiles of the whole invocation
// (see SCALING.md's profiling workflow).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"

	"repro/btsim"
	"repro/internal/consistency"
	"repro/internal/scenario"
)

func main() {
	list := flag.Bool("list", false, "list the catalogue and the registered systems, then exit")
	only := flag.String("only", "", "run only scenarios whose name contains this substring")
	seed := flag.Uint64("seed", 0, "override the pinned per-scenario seeds (0 keeps them)")
	sweep := flag.Int("sweep", 0, "additionally sweep each scenario across K consecutive seeds")
	workers := flag.Int("workers", 4, "parallel runs during -sweep")
	verbose := flag.Bool("v", false, "print every witness and the fault-event log")
	check := flag.Bool("check", false, "exit 1 if a predicted violation goes unmeasured")
	jsonOut := flag.Bool("json", false, "emit the violation matrix as JSON instead of the rendered tables")
	stream := flag.Bool("stream", false, "check with the online monitor and diff every outcome against batch Classify")
	long := flag.String("long", "", `run the streaming-only long-run scenario: "full" (≥1M ops) or "smoke" (CI scale)`)
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile of the invocation to this file")
	memprofile := flag.String("memprofile", "", "write a heap profile (at exit) to this file")
	flag.Parse()

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "scenarios:", err)
			os.Exit(2)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "scenarios:", err)
			os.Exit(2)
		}
		defer pprof.StopCPUProfile()
	}
	if *memprofile != "" {
		defer func() {
			f, err := os.Create(*memprofile)
			if err != nil {
				fmt.Fprintln(os.Stderr, "scenarios:", err)
				return
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "scenarios:", err)
			}
		}()
	}

	if *list {
		printList()
		return
	}
	if *long != "" {
		runLong(*long)
		return
	}

	var outs []*scenario.Outcome
	failed := false
	for _, spec := range scenario.Catalogue() {
		if *only != "" && !strings.Contains(spec.Name, *only) {
			continue
		}
		o, err := spec.Run(*seed)
		if err != nil {
			fmt.Fprintln(os.Stderr, "scenarios:", err)
			os.Exit(2)
		}
		if *stream {
			so, err := spec.RunStream(*seed)
			if err != nil {
				fmt.Fprintln(os.Stderr, "scenarios:", err)
				os.Exit(2)
			}
			if so.Digest != o.Digest || fmt.Sprint(so.Violated) != fmt.Sprint(o.Violated) {
				fmt.Fprintf(os.Stderr, "scenarios: %s: streaming diverges from batch (digest %s vs %s, violated %v vs %v)\n",
					spec.Name, so.Digest, o.Digest, so.Violated, o.Violated)
				os.Exit(2)
			}
			o = so // identical by construction; report the streamed one
		}
		outs = append(outs, o)
		if missing := o.MissingExpected(); len(missing) > 0 {
			failed = true
			fmt.Fprintf(os.Stderr, "scenarios: %s did not measure predicted violation(s) %v\n", spec.Name, missing)
		}
	}
	if len(outs) == 0 {
		fmt.Fprintln(os.Stderr, "scenarios: no scenario matched")
		os.Exit(2)
	}

	if *jsonOut {
		if err := writeJSON(os.Stdout, outs); err != nil {
			fmt.Fprintln(os.Stderr, "scenarios:", err)
			os.Exit(2)
		}
		if *check && failed {
			os.Exit(1)
		}
		return
	}

	fmt.Print(scenario.Matrix(outs))
	fmt.Println()
	for _, o := range outs {
		fmt.Printf("%-26s seed=%-6d digest=%s  %s\n", o.Spec.Name, o.Seed, o.Digest, o.Spec.Note)
	}

	if *verbose {
		for _, o := range outs {
			if len(o.Violated) == 0 && len(o.Res.FaultEvents) == 0 {
				continue
			}
			fmt.Printf("\n=== %s ===\n", o.Spec.Name)
			for _, name := range o.Violated {
				if w, ok := o.Witnesses[name]; ok {
					fmt.Println("  witness:", w)
				}
			}
			if len(o.Res.FaultEvents) > 0 {
				fmt.Printf("  fault events (%d):\n", len(o.Res.FaultEvents))
				for i, e := range o.Res.FaultEvents {
					if i >= 20 {
						fmt.Printf("    … %d more\n", len(o.Res.FaultEvents)-i)
						break
					}
					fmt.Println("   ", e)
				}
			}
		}
	}

	if *sweep > 0 {
		fmt.Printf("\nsweep (%d seeds each, %d workers):\n", *sweep, *workers)
		for _, o := range outs {
			seeds := make([]uint64, *sweep)
			for i := range seeds {
				seeds[i] = o.Seed + uint64(i)
			}
			res, err := scenario.Sweep(o.Spec, seeds, *workers)
			if err != nil {
				fmt.Fprintln(os.Stderr, "scenarios:", err)
				os.Exit(2)
			}
			fmt.Printf("%-26s %s\n", o.Spec.Name, scenario.SweepSummary(res))
		}
	}

	if *check && failed {
		os.Exit(1)
	}
}

// jsonOutcome is the machine-readable row of the violation matrix: one
// object per (system, adversary, fault schedule) run, with per-property
// verdicts under each criterion and the first witness of every violated
// property. The shape is stable for dashboards and CI diffing.
type jsonOutcome struct {
	Name         string            `json:"name"`
	System       string            `json:"system"`
	Adversary    string            `json:"adversary"`
	Seed         uint64            `json:"seed"`
	Digest       string            `json:"digest"`
	Note         string            `json:"note,omitempty"`
	ExpectBroken []string          `json:"expect_broken,omitempty"`
	SCOK         bool              `json:"sc_ok"`
	ECOK         bool              `json:"ec_ok"`
	Properties   []jsonProperty    `json:"properties"`
	KFork        *jsonProperty     `json:"k_fork,omitempty"`
	Violated     []string          `json:"violated,omitempty"`
	Missing      []string          `json:"missing_expected,omitempty"`
	Witnesses    map[string]string `json:"witnesses,omitempty"`
}

// jsonProperty is one property verdict with the criterion it was
// checked under and the number of atomic facts examined.
type jsonProperty struct {
	Criterion string `json:"criterion"`
	Property  string `json:"property"`
	OK        bool   `json:"ok"`
	Checked   int    `json:"checked"`
}

func writeJSON(w io.Writer, outs []*scenario.Outcome) error {
	rows := make([]jsonOutcome, 0, len(outs))
	for _, o := range outs {
		row := jsonOutcome{
			Name:         o.Spec.Name,
			System:       o.Spec.System,
			Adversary:    o.Res.AdversaryName,
			Seed:         o.Seed,
			Digest:       o.Digest,
			Note:         o.Spec.Note,
			ExpectBroken: o.Spec.ExpectBroken,
			SCOK:         o.SC.OK,
			ECOK:         o.EC.OK,
			Violated:     o.Violated,
			Missing:      o.MissingExpected(),
		}
		for _, pair := range []struct {
			crit    string
			reports []*consistency.Report
		}{{"SC", o.SC.Reports}, {"EC", o.EC.Reports}} {
			for _, rep := range pair.reports {
				row.Properties = append(row.Properties, jsonProperty{
					Criterion: pair.crit,
					Property:  rep.Property,
					OK:        rep.OK,
					Checked:   rep.Checked,
				})
			}
		}
		if o.KFork != nil {
			row.KFork = &jsonProperty{
				Criterion: "k-fork",
				Property:  o.KFork.Property,
				OK:        o.KFork.OK,
				Checked:   o.KFork.Checked,
			}
		}
		if len(o.Witnesses) > 0 {
			row.Witnesses = make(map[string]string, len(o.Witnesses))
			for prop, wit := range o.Witnesses {
				row.Witnesses[prop] = wit.Detail
			}
		}
		rows = append(rows, row)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rows)
}

// runLong executes the streaming-only long-run scenario — the ≥1M-op
// execution no batch classification could hold in memory — and prints
// its bounded-memory evidence.
func runLong(mode string) {
	var spec scenario.LongRunSpec
	switch mode {
	case "full":
		spec = scenario.DefaultLongRun()
	case "smoke":
		spec = scenario.SmokeLongRun()
	default:
		fmt.Fprintf(os.Stderr, "scenarios: unknown -long mode %q (known: full, smoke)\n", mode)
		os.Exit(2)
	}
	o, err := spec.Run()
	if err != nil {
		fmt.Fprintln(os.Stderr, "scenarios:", err)
		os.Exit(2)
	}
	fmt.Println(o)
	fmt.Printf("  SC: %v  EC: %v\n", o.SC.OK, o.EC.OK)
	if len(o.Violated) > 0 {
		os.Exit(1)
	}
}

// printList renders the catalogue and the btsim registry: what can run,
// and what it runs on.
func printList() {
	fmt.Println("registered systems (btsim registry — any name is scenario-able):")
	for _, sys := range btsim.Systems() {
		info := sys.Info()
		fmt.Printf("  %-11s §%-4s %-16s %-10s %s\n",
			info.Name, info.Section, info.Oracle, info.Criterion, info.Synopsis)
	}
	fmt.Println("\ncurated catalogue:")
	for _, s := range scenario.Catalogue() {
		expect := "baseline"
		if len(s.ExpectBroken) > 0 {
			expect = "breaks " + strings.Join(s.ExpectBroken, ",")
		}
		fmt.Printf("  %-26s %-11s %-34s %s\n", s.Name, s.System, expect, s.Note)
	}
}
