package repro

import (
	"fmt"
	"hash/fnv"
	"io"
	"testing"

	"repro/internal/benchsuite"
	"repro/internal/consistency"
	"repro/internal/protocols"
	"repro/internal/protocols/bitcoin"
	"repro/internal/protocols/ethereum"
	"repro/internal/simnet"
)

// pipelineDigest folds a full protocol run — every recorded operation
// (with its returned chain), every communication event, every replica's
// final tree and both checker verdicts — into one hash. The golden
// values below were captured before the pipeline performance pass
// (closure-heap scheduler, copied chain reads, multi-pass checkers) and
// pin that the rewritten pipeline replays byte-identical histories and
// verdicts for fixed seeds.
func pipelineDigest(res *protocols.Result) string {
	h := fnv.New64a()
	io.WriteString(h, res.History.String())
	for _, op := range res.History.Ops {
		io.WriteString(h, op.String())
	}
	for _, e := range res.History.Comm {
		io.WriteString(h, e.String())
	}
	for _, t := range res.Trees {
		for _, b := range t.Blocks() {
			io.WriteString(h, string(b.ID))
			io.WriteString(h, string(b.Parent))
		}
	}
	chk := consistency.NewChecker(res.Score, nil)
	sc, ec := chk.Classify(res.History)
	fmt.Fprintf(h, "SC=%v%v EC=%v%v", sc.OK, sc.Failing(), ec.OK, ec.Failing())
	return fmt.Sprintf("%016x", h.Sum64())
}

// TestPipelineDeterminismPinned replays fixed-seed runs across every
// layer the performance pass touches — PoW flooding over FIFO links,
// message loss via DropNth, GHOST selection (subtree-weight index) —
// and compares against digests recorded from the pre-rewrite pipeline.
func TestPipelineDeterminismPinned(t *testing.T) {
	runs := []struct {
		name string
		want string
		run  func() *protocols.Result
	}{
		{"bitcoin-seed1", "6e285a33a4969092", func() *protocols.Result {
			cfg := bitcoin.Config{}
			cfg.N = 4
			cfg.Rounds = 120
			cfg.Seed = 1
			cfg.ReadEvery = 15
			cfg.Difficulty = 5
			return bitcoin.Run(cfg)
		}},
		{"bitcoin-drop-seed9", "3a874a69fa33c8b7", func() *protocols.Result {
			cfg := bitcoin.Config{}
			cfg.N = 4
			cfg.Rounds = 120
			cfg.Seed = 9
			cfg.ReadEvery = 15
			cfg.Difficulty = 5
			cfg.DropRule = simnet.DropNth(3, simnet.DropToProcess(2))
			return bitcoin.Run(cfg)
		}},
		{"ethereum-seed7", "20447fd3bd895c9b", func() *protocols.Result {
			cfg := ethereum.Config{Difficulty: 4}
			cfg.N = 4
			cfg.Rounds = 60
			cfg.Seed = 7
			cfg.ReadEvery = 10
			return ethereum.Run(cfg)
		}},
	}
	for _, r := range runs {
		t.Run(r.name, func(t *testing.T) {
			got := pipelineDigest(r.run())
			if got != r.want {
				t.Fatalf("pipeline digest changed: got %s, want %s (fixed-seed histories/trees/verdicts must be identical)", got, r.want)
			}
		})
	}
}

// TestSimScaleDeterminismPinned pins the benchmark workload itself: the
// block/read/comm counts and verdicts of a small SimScale run must not
// drift across the scheduler and history-interning rewrites.
func TestSimScaleDeterminismPinned(t *testing.T) {
	got := benchsuite.RunSimScale(benchsuite.ScaleConfig{N: 8, Blocks: 300, Seed: 5})
	want := benchsuite.ScaleStats{Blocks: 300, Reads: 72, CommEvts: 5100, MaxHeight: 106, SCOK: false, ECOK: true}
	if got != want {
		t.Fatalf("SimScale drifted:\n got %+v\nwant %+v", got, want)
	}
}
