package repro

import (
	"fmt"
	"hash/fnv"
	"io"
	"testing"

	"repro/btsim"
	"repro/internal/benchsuite"
	"repro/internal/consistency"
	"repro/internal/scenario"
)

// pipelineDigest folds a full protocol run — every recorded operation
// (with its returned chain), every communication event, every replica's
// final tree and both checker verdicts — into one hash. The golden
// values below were captured before the pipeline performance pass
// (closure-heap scheduler, copied chain reads, multi-pass checkers) and
// pin that the rewritten pipeline replays byte-identical histories and
// verdicts for fixed seeds. Since the btsim API redesign the runs go
// through the public registry + functional options, so the same pinned
// values also prove the option-based dispatch is behavior-preserving
// against the original per-protocol config structs.
func pipelineDigest(res *btsim.Result) string {
	h := fnv.New64a()
	res.DigestInto(h)
	chk := consistency.NewChecker(res.Score, nil)
	sc, ec := chk.Classify(res.History)
	fmt.Fprintf(h, "SC=%v%v EC=%v%v", sc.OK, sc.Failing(), ec.OK, ec.Failing())
	return fmt.Sprintf("%016x", h.Sum64())
}

// TestPipelineDeterminismPinned replays fixed-seed runs across every
// layer the performance pass touches — PoW flooding over FIFO links,
// message loss via DropNth, GHOST selection (subtree-weight index) —
// and compares against digests recorded from the pre-rewrite pipeline.
func TestPipelineDeterminismPinned(t *testing.T) {
	runs := []struct {
		name   string
		want   string
		system string
		opts   []btsim.Option
	}{
		{"bitcoin-seed1", "6e285a33a4969092", "bitcoin", []btsim.Option{
			btsim.WithN(4), btsim.WithRounds(120), btsim.WithSeed(1),
			btsim.WithReadEvery(15), btsim.WithDifficulty(5),
		}},
		{"bitcoin-drop-seed9", "3a874a69fa33c8b7", "bitcoin", []btsim.Option{
			btsim.WithN(4), btsim.WithRounds(120), btsim.WithSeed(9),
			btsim.WithReadEvery(15), btsim.WithDifficulty(5),
			btsim.WithDropNth(3, 2),
		}},
		{"ethereum-seed7", "20447fd3bd895c9b", "ethereum", []btsim.Option{
			btsim.WithN(4), btsim.WithRounds(60), btsim.WithSeed(7),
			btsim.WithReadEvery(10), btsim.WithDifficulty(4),
		}},
	}
	for _, r := range runs {
		t.Run(r.name, func(t *testing.T) {
			res, err := btsim.Run(r.system, r.opts...)
			if err != nil {
				t.Fatal(err)
			}
			if got := pipelineDigest(res); got != r.want {
				t.Fatalf("pipeline digest changed: got %s, want %s (fixed-seed histories/trees/verdicts must be identical)", got, r.want)
			}
		})
		// The same pinned values must hold with the observability layer
		// attached: metrics and tracing are read-only with respect to
		// the simulation, so they cannot move a single event.
		t.Run(r.name+"-instrumented", func(t *testing.T) {
			opts := append(append([]btsim.Option{}, r.opts...),
				btsim.WithMetrics(),
				btsim.WithTrace(io.Discard, btsim.TraceOptions{SampleEvery: 4}))
			res, err := btsim.Run(r.system, opts...)
			if err != nil {
				t.Fatal(err)
			}
			if got := pipelineDigest(res); got != r.want {
				t.Fatalf("instrumented pipeline digest changed: got %s, want %s (metrics/trace must be digest-neutral)", got, r.want)
			}
		})
	}
}

// TestSimScaleDeterminismPinned pins the benchmark workload itself: the
// block/read/comm counts and verdicts of a small SimScale run must not
// drift across the scheduler and history-interning rewrites.
func TestSimScaleDeterminismPinned(t *testing.T) {
	got := benchsuite.RunSimScale(benchsuite.ScaleConfig{N: 8, Blocks: 300, Seed: 5})
	want := benchsuite.ScaleStats{Blocks: 300, Reads: 72, CommEvts: 5100, MaxHeight: 106, SCOK: false, ECOK: true}
	if got != want {
		t.Fatalf("SimScale drifted:\n got %+v\nwant %+v", got, want)
	}
	// The adversarial variant: partition windows + an equivocator. The
	// fault-schedule routing, withholding and forgery must replay
	// exactly too.
	gotAdv := benchsuite.RunSimScaleAdversarial(benchsuite.ScaleConfig{N: 8, Blocks: 300, Seed: 5})
	wantAdv := benchsuite.ScaleStats{Blocks: 337, Reads: 70, CommEvts: 5729, MaxHeight: 93, SCOK: false, ECOK: true}
	if gotAdv != wantAdv {
		t.Fatalf("adversarial SimScale drifted:\n got %+v\nwant %+v", gotAdv, wantAdv)
	}
	// The streaming variant runs the identical workload through the
	// online monitor in drop mode: same blocks, same reads, same comm
	// events, same verdicts — with no retained history at all.
	gotStream := benchsuite.RunSimScaleStream(benchsuite.ScaleConfig{N: 8, Blocks: 300, Seed: 5})
	if gotStream != want {
		t.Fatalf("streaming SimScale diverged from batch:\n got %+v\nwant %+v", gotStream, want)
	}
	// The metered variant attaches the metrics layer to the identical
	// workload: same stats (instrumentation is observational), and the
	// snapshot must be identical across shard counts.
	gotMet, snap := benchsuite.RunSimScaleMetered(benchsuite.ScaleConfig{N: 8, Blocks: 300, Seed: 5})
	if gotMet != want {
		t.Fatalf("metered SimScale diverged from bare:\n got %+v\nwant %+v", gotMet, want)
	}
	_, snapSharded := benchsuite.RunSimScaleMetered(benchsuite.ScaleConfig{N: 8, Blocks: 300, Seed: 5, Shards: 4})
	if snap.Digest() != snapSharded.Digest() {
		t.Fatalf("metric snapshot digest differs across shard counts: serial %s, sharded %s",
			snap.Digest(), snapSharded.Digest())
	}
}

// TestScenarioDigestsPinned pins the replay digest of every catalogue
// scenario: each adversarial execution — fault schedules, withheld and
// released branches, forged siblings, and the verdicts measured on the
// resulting histories — must replay byte-identically from its seed.
// The digest folds every operation (with its returned chain), every
// communication event, every replica tree, the fault-event log and the
// criterion verdicts (scenario.Digest).
func TestScenarioDigestsPinned(t *testing.T) {
	want := map[string]string{
		"bitcoin/benign":           "7e7efa79e80e836e",
		"fabric/benign":            "e3cc195680f21dd9",
		"byzcoin/benign":           "8bbf59235ba8fdae",
		"algorand/benign":          "1aebd9dadd5c20df",
		"peercensus/benign":        "3a928d600ef20058",
		"redbelly/benign":          "e4fc2580e66b9980",
		"bitcoin/selfish":          "2e1e57c2bd2922ae",
		"bitcoin/withhold-release": "ef743d0e60bb2517",
		"bitcoin/partition-heal":   "810b840ea7957262",
		"bitcoin/partition-noheal": "1d7aa61e2e4da285",
		"bitcoin/eclipse":          "d3082e19daeaf734",
		"bitcoin/churn":            "70b1748a305da816",
		"bitcoin/crashstop":        "5cf9c33ab25ea14d",
		"bitcoin/crash-durable":    "57986243b62b4e3a",
		"bitcoin/crash-amnesia":    "c38059b18e609f9a",
		"ethereum/forkflood":       "b21a721fd18bf5fa",
		"fabric/equivocate":        "b6f94a45a7e46d66",
	}
	specs := scenario.Catalogue()
	if len(specs) != len(want) {
		t.Fatalf("catalogue has %d scenarios, digests pinned for %d — pin the new ones", len(specs), len(want))
	}
	for _, spec := range specs {
		spec := spec
		t.Run(spec.Name, func(t *testing.T) {
			w, ok := want[spec.Name]
			if !ok {
				t.Fatalf("no pinned digest for %s", spec.Name)
			}
			if got := spec.MustRun(0).Digest; got != w {
				t.Fatalf("digest changed: got %s, want %s (adversarial runs must replay byte-identically)", got, w)
			}
		})
	}
}
