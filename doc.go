// Package repro is an executable reproduction of "Blockchain Abstract
// Data Type" (Anceaume, Del Pozzo, Ludinard, Potop-Butucaru,
// Tucci-Piergiovanni — SPAA 2019, arXiv:1802.09877).
//
// The library lives under internal/ (see README.md for the map); the
// runnable entry points are:
//
//	cmd/btadt       — regenerate every figure/table of the paper
//	cmd/classify    — regenerate Table 1 with cross-seed stability
//	cmd/historyviz  — render histories and BlockTrees as ASCII
//	examples/...    — quickstart, powsim, consortium, consensusnumber,
//	                  hierarchy
//
// The root package holds only the benchmark harness (bench_test.go):
// one testing.B benchmark per paper artifact plus the ablation benches
// documented in DESIGN.md.
package repro
