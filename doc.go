// Package repro is an executable reproduction of "Blockchain Abstract
// Data Type" (Anceaume, Del Pozzo, Ludinard, Potop-Butucaru,
// Tucci-Piergiovanni — SPAA 2019, arXiv:1802.09877).
//
// The public API is the btsim package: a registry of self-registering
// protocol systems (the seven of Section 5) behind one System
// interface, functional run options, and checked, replayable results.
// Import repro/btsim (plus repro/btsim/systems for the built-in
// registrations); the implementation lives under internal/ (see
// README.md for the map). The runnable entry points are:
//
//	cmd/btadt       — regenerate every figure/table of the paper
//	cmd/classify    — regenerate Table 1 (-system for one registered system)
//	cmd/scenarios   — adversarial catalogue + violation matrix (-list)
//	cmd/historyviz  — render histories, BlockTrees and fault timelines
//	examples/...    — quickstart, powsim, consortium, consensusnumber,
//	                  hierarchy (written against repro/btsim only)
//
// The root package holds only the benchmark harness (bench_test.go)
// and the cross-layer pinned tests: pipeline/scenario replay digests
// (determinism_test.go) and the examples' public-API import boundary
// (boundary_test.go).
package repro
