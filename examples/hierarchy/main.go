// hierarchy: walk the refinement hierarchy of Sections 3.4 and 4.4.
//
// This example drives the same append/read workload against
// R(BT-ADT, Θ) objects of increasing oracle strength — Θ_F,k=1, Θ_F,k=2
// and Θ_P — and classifies each recorded history, making Figure 8's
// inclusions and Figure 14's message-passing cutoff (Theorem 4.8)
// concrete. It finishes with the two executable impossibility/necessity
// witnesses.
//
// Run with: go run ./examples/hierarchy
package main

import (
	"fmt"

	"repro/internal/consistency"
	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/history"
	"repro/internal/oracle"
	"repro/internal/refine"
)

func drive(k int, seed uint64) (*history.History, *refine.BT) {
	rec := history.NewRecorder(2, nil)
	bt := refine.New(refine.Config{
		Oracle:   oracle.NewFrugal(k, nil, core.WellFormed{}, seed),
		Recorder: rec,
	})
	for i := 0; i < 10; i++ {
		bt.Append(i%2, 0.6, i, []byte{byte(i)})
		if i%2 == 1 {
			bt.Read(0)
			bt.Read(1)
		}
	}
	return rec.Snapshot(), bt
}

func main() {
	fmt.Println("--- Figure 8: the hierarchy, drawn ---")
	nodes, edges := refine.Hierarchy(2)
	for _, e := range edges {
		fmt.Printf("  %-28s ⊆ %-28s (%s)\n", e.From.Name(), e.To.Name(), e.Theorem)
	}
	fmt.Println("\n--- the same workload under three oracle strengths ---")
	chk := consistency.NewChecker(core.LengthScore{}, core.WellFormed{})
	for _, k := range []int{1, 2, oracle.Unbounded} {
		h, bt := drive(k, 99)
		sc, ec := chk.Classify(h)
		name := fmt.Sprintf("ΘF,k=%d", k)
		if k == oracle.Unbounded {
			name = "ΘP"
		}
		fmt.Printf("  %-8s tree=%v  %s  %s  %s\n",
			name, bt.Tree(), sc, ec, chk.KForkCoherence(h, 1))
	}

	fmt.Println("\n--- Figure 14: what message passing forbids ---")
	for _, n := range nodes {
		tag := "implementable"
		if !n.Feasible {
			tag = "IMPOSSIBLE (Theorem 4.8)"
		}
		fmt.Printf("  %-28s %s\n", n.Name(), tag)
	}

	fmt.Println("\n--- executable witnesses ---")
	fmt.Print(experiments.Theorem48(99))
	fmt.Println()
	fmt.Print(experiments.TheoremLRC(99))
}
