// hierarchy: the refinement hierarchy of Sections 3.4 and 4.4, measured
// across every registered system.
//
// The paper orders R(BT-ADT, Θ) objects by oracle strength — the frugal
// ΘF,k=1 gives Strong Consistency, the prodigal ΘP only Eventual
// Consistency (Figure 8), and message passing cannot do better than the
// fork bound allows (Theorem 4.8 / Figure 14). This example makes the
// hierarchy empirical through the public btsim API: every registered
// system runs benignly, and the measured verdicts arrange themselves
// exactly along the claimed oracle split — the frugal family satisfies
// SC and 1-fork coherence, the prodigal family only EC.
//
// Run with: go run ./examples/hierarchy
package main

import (
	"fmt"
	"log"

	"repro/btsim"
	_ "repro/btsim/systems"
)

func main() {
	fmt.Println("--- the hierarchy, measured: one benign run per registered system ---")
	fmt.Printf("%-11s %-16s %-10s │ %-4s %-4s %-4s %-7s match\n",
		"system", "Θ claimed", "criterion", "SC", "EC", "1FC", "forkMax")

	type placed struct {
		name    string
		k       int
		scOK    bool
		matched bool
	}
	var rows []placed
	for _, sys := range btsim.Systems() {
		info := sys.Info()
		opts := []btsim.Option{btsim.WithN(4), btsim.WithSeed(99)}
		if info.K == 0 {
			// The prodigal family needs a dense read schedule to
			// witness its transient fork window.
			opts = append(opts, btsim.WithRounds(200), btsim.WithReadEvery(4), btsim.WithDifficulty(5))
		} else {
			opts = append(opts, btsim.WithRounds(25), btsim.WithReadEvery(10))
		}
		res, err := sys.Run(btsim.NewConfig(opts...))
		if err != nil {
			log.Fatal(err)
		}
		sc, ec := res.Check()
		k1 := res.KFork(1)
		match := false
		switch info.Criterion {
		case "SC", "SC w.h.p.":
			match = sc.OK && ec.OK && k1.OK
		case "EC":
			match = ec.OK
		}
		fmt.Printf("%-11s %-16s %-10s │ %-4s %-4s %-4s %-7d %v\n",
			info.Name, info.Oracle, info.Criterion,
			mark(sc.OK), mark(ec.OK), mark(k1.OK), res.MeasuredForkMax, match)
		rows = append(rows, placed{info.Name, info.K, sc.OK, match})
	}

	fmt.Println("\n--- what the split shows (Figure 8 / Figure 14) ---")
	for _, r := range rows {
		switch {
		case r.k >= 1 && r.scOK:
			fmt.Printf("  %-11s ΘF,k=1 family: one token per height ⇒ Strong Prefix attainable\n", r.name)
		case r.k == 0 && !r.scOK:
			fmt.Printf("  %-11s ΘP family: unbounded forks ⇒ Strong Prefix impossible (Thm 4.8), EC remains\n", r.name)
		default:
			fmt.Printf("  %-11s fork window unwitnessed at this seed (claims still hold)\n", r.name)
		}
	}
	fmt.Println("\nevery inclusion of the paper's hierarchy is a measured fact above:")
	fmt.Println("  SC ⊂ EC (the frugal rows satisfy both), and no ΘP row reaches SC.")
}

func mark(ok bool) string {
	if ok {
		return "✓"
	}
	return "✗"
}
