// consensusnumber: the synchronization-power results of Section 4.1,
// live.
//
// Three constructions run with real goroutines:
//
//   - Figure 10 / Theorem 4.1: Compare&Swap implemented from the
//     consumeToken object with k = 1 — racing goroutines, exactly one
//     winner, every loser observes the winner;
//   - Figure 11 / Theorem 4.2: protocol A — wait-free Consensus from
//     the frugal oracle Θ_F,k=1 (consensus number ∞);
//   - Figure 12 / Theorem 4.3: the prodigal oracle's consumeToken from
//     a wait-free atomic snapshot (consensus number 1) — all writers
//     succeed, no agreement ever emerges from the object itself.
//
// Run with: go run ./examples/consensusnumber
package main

import (
	"fmt"
	"sync"

	"repro/internal/concur"
	"repro/internal/core"
	"repro/internal/oracle"
)

func main() {
	const n = 8

	fmt.Println("--- Figure 10: CAS from consumeToken (k=1) ---")
	ct := &concur.CTk1{}
	var wg sync.WaitGroup
	results := make([]string, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			b := core.NewBlock(core.GenesisID, 1, i, i, []byte{byte(i)}).
				WithToken(oracle.TokenName(core.GenesisID))
			if old := concur.CASFromCT(ct, b); old == nil {
				results[i] = fmt.Sprintf("p%d: swap SUCCEEDED (installed %s)", i, b.ID.Short())
			} else {
				results[i] = fmt.Sprintf("p%d: swap lost, observed %s", i, old[0].ID.Short())
			}
		}(i)
	}
	wg.Wait()
	for _, r := range results {
		fmt.Println(" ", r)
	}

	fmt.Println("\n--- Figure 11: protocol A — consensus from ΘF,k=1 ---")
	orc := oracle.NewFrugal(1, nil, core.WellFormed{}, 99)
	cons, err := concur.NewOracleConsensus(orc, 0.5)
	if err != nil {
		panic(err)
	}
	decisions := make([]*core.Block, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			decisions[i], _ = cons.Propose(i, []byte(fmt.Sprintf("value-%d", i)))
		}(i)
	}
	wg.Wait()
	for i, d := range decisions {
		fmt.Printf("  p%d decided %s (proposed by p%d)\n", i, d.ID.Short(), d.Creator)
	}
	agree := true
	for i := 1; i < n; i++ {
		if decisions[i].ID != decisions[0].ID {
			agree = false
		}
	}
	fmt.Println("  agreement:", agree, "— the k=1 K[b0] set is the decision register")

	fmt.Println("\n--- Figure 12: ΘP consumeToken from an atomic snapshot ---")
	sct := concur.NewSnapshotCT(n)
	views := make([]int, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			b := core.NewBlock(core.GenesisID, 1, i, 1000+i, []byte{byte(i)}).
				WithToken(oracle.TokenName(core.GenesisID))
			views[i] = len(sct.ConsumeToken(i, b))
		}(i)
	}
	wg.Wait()
	fmt.Printf("  every writer's scan size: %v\n", views)
	fmt.Printf("  final |K[b0]| = %d — unbounded consumption: no winner, no consensus\n",
		len(sct.K(core.GenesisID)))
	fmt.Println("  (that is why ΘP has consensus number 1 and cannot give Strong Prefix)")
}
