// consensusnumber: the synchronization-power results of Section 4.1,
// observed at the system level.
//
// The paper proves the frugal oracle ΘF,k=1 has consensus number ∞ —
// its consumeToken is a decision register, so one block wins each
// height (Theorems 4.1/4.2, Figures 10–11) — while the prodigal ΘP has
// consensus number 1: every writer's token is consumed, no agreement
// ever emerges from the object itself (Theorem 4.3, Figure 12). This
// example measures both consequences through the public btsim API:
//
//   - every ΘF,k=1 system commits exactly one block per height — the
//     history is 1-fork coherent and each height has a unique winner;
//   - the ΘP systems consume concurrent tokens freely — the measured
//     fork degree exceeds 1, and no per-height agreement exists.
//
// (cmd/btadt fig9–fig12 run the shared-memory constructions themselves,
// with racing goroutines, for the object-level version of this story.)
//
// Run with: go run ./examples/consensusnumber
package main

import (
	"fmt"
	"log"

	"repro/btsim"
	_ "repro/btsim/systems"
)

func main() {
	fmt.Println("--- consensus from consumeToken: one winner per height, or none ---")
	for _, sys := range btsim.Systems() {
		info := sys.Info()
		opts := []btsim.Option{btsim.WithN(4), btsim.WithSeed(99)}
		if info.K == 0 {
			opts = append(opts, btsim.WithRounds(200), btsim.WithReadEvery(4), btsim.WithDifficulty(4))
		} else {
			opts = append(opts, btsim.WithRounds(25), btsim.WithReadEvery(10))
		}
		res, err := sys.Run(btsim.NewConfig(opts...))
		if err != nil {
			log.Fatal(err)
		}

		// Agreement per height, measured on a replica's final tree: a
		// system solves height-by-height consensus iff no height of the
		// selected structure ever held two competing blocks.
		k1 := res.KFork(1)
		heights := map[int]int{} // height → number of distinct blocks
		maxWidth := 0
		for _, tree := range res.Trees[:1] {
			for _, b := range tree.Blocks() {
				if b.IsGenesis() {
					continue
				}
				heights[b.Height]++
				if heights[b.Height] > maxWidth {
					maxWidth = heights[b.Height]
				}
			}
		}
		agreement := k1.OK && maxWidth <= 1

		verdict := "consensus per height (cons. number ∞ behaviour)"
		if !agreement {
			verdict = fmt.Sprintf("no agreement: up to %d blocks per height (cons. number 1 behaviour)", maxWidth)
		}
		fmt.Printf("  %-11s %-16s 1-fork-coherent=%v  %s\n",
			info.Name, info.Oracle, k1.OK, verdict)

		// The claimed oracle family must predict the measurement.
		if (info.K >= 1) != agreement {
			fmt.Printf("  %-11s ^ MISMATCH: claimed %s\n", "", info.Oracle)
		}
	}

	fmt.Println("\n--- why ---")
	fmt.Println("  ΘF,k=1: consumeToken accepts one token per block — a decision register;")
	fmt.Println("          racing proposers all observe the same winner (Figure 10/11).")
	fmt.Println("  ΘP:     consumeToken accepts every valid token — an atomic snapshot")
	fmt.Println("          suffices to implement it, so it cannot solve consensus (Figure 12),")
	fmt.Println("          and the measured fork degree shows the concurrent winners.")
}
