// consortium: a strongly consistent permissioned chain end to end.
//
// This example runs the Hyperledger-Fabric-style simulator of Section
// 5.7 — endorsement, sequencer-based total-order broadcast, block cut by
// size or elapsed time — and the Red-Belly-style consortium chain of
// Section 5.6, then verifies what Table 1 claims for both: a frugal
// oracle with k = 1 (no forks, 1-fork-coherent histories) and BT Strong
// Consistency.
//
// Run with: go run ./examples/consortium
package main

import (
	"fmt"

	"repro/internal/consistency"
	"repro/internal/core"
	"repro/internal/protocols/fabric"
	"repro/internal/protocols/redbelly"
)

func main() {
	fmt.Println("--- Hyperledger Fabric style: ordering service + block cutting ---")
	fcfg := fabric.Config{}
	fcfg.N = 4
	fcfg.Rounds = 60
	fcfg.Seed = 11
	fcfg.ReadEvery = 8
	fcfg.MaxTxPerBlock = 5
	fcfg.MaxBatchDelay = 15
	fres := fabric.Run(fcfg)
	fmt.Println(fres)
	fmt.Printf("pipeline: %d submitted → %d endorsements → %d ordered → %d blocks (%d size-cut, %d time-cut)\n",
		fres.Stats["submitted"], fres.Stats["endorsements"], fres.Stats["ordered"],
		fres.Stats["blocks"], fres.Stats["cut_size"], fres.Stats["cut_time"])

	chk := consistency.NewChecker(fres.Score, core.WellFormed{})
	sc, ec := chk.Classify(fres.History)
	fmt.Println(sc)
	fmt.Println(ec)
	fmt.Println(chk.KForkCoherence(fres.History, 1))

	// Inspect one block's transaction batch.
	chain := fres.Selector.Select(fres.Trees[0])
	if chain.Height() > 0 {
		txs, _ := core.DecodeTxs(chain.Block(1).Payload)
		fmt.Printf("block 1 carries %d transactions\n", len(txs))
	}

	fmt.Println("\n--- Red Belly style: consortium M, Byzantine consensus per block ---")
	rcfg := redbelly.Config{}
	rcfg.N = 6
	rcfg.Rounds = 15
	rcfg.Seed = 11
	rcfg.ReadEvery = 10
	rcfg.M = 4
	rres := redbelly.Run(rcfg)
	fmt.Println(rres)
	rchk := consistency.NewChecker(rres.Score, core.WellFormed{})
	rsc, rec := rchk.Classify(rres.History)
	fmt.Println(rsc)
	fmt.Println(rec)
	rchain := rres.Selector.Select(rres.Trees[5]) // a read-only member's replica
	creators := map[int]int{}
	for _, b := range rchain {
		if !b.IsGenesis() {
			creators[b.Creator]++
		}
	}
	fmt.Printf("blocks per consortium member (of %d members): %v\n", rcfg.M, creators)
}
