// consortium: two strongly consistent permissioned chains end to end.
//
// This example runs the Hyperledger-Fabric-style simulator of Section
// 5.7 — endorsement, sequencer-based total-order broadcast, block cut by
// size or elapsed time — and the Red-Belly-style consortium chain of
// Section 5.6 through the public btsim API, then verifies what Table 1
// claims for both: a frugal oracle with k = 1 (no forks,
// 1-fork-coherent histories) and BT Strong Consistency.
//
// Run with: go run ./examples/consortium
package main

import (
	"fmt"
	"log"

	"repro/btsim"
	_ "repro/btsim/systems"
)

func main() {
	fmt.Println("--- Hyperledger Fabric style: ordering service + block cutting ---")
	fres, err := btsim.Run("fabric",
		btsim.WithN(4), btsim.WithRounds(60), btsim.WithSeed(11), btsim.WithReadEvery(8))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(fres)
	fmt.Printf("pipeline: %d submitted → %d endorsements → %d ordered → %d blocks (%d size-cut, %d time-cut)\n",
		fres.Stats["submitted"], fres.Stats["endorsements"], fres.Stats["ordered"],
		fres.Stats["blocks"], fres.Stats["cut_size"], fres.Stats["cut_time"])

	sc, ec := fres.Check()
	fmt.Println(sc)
	fmt.Println(ec)
	fmt.Println(fres.KFork(1))

	// Inspect one block's transaction batch (payloads are the encoded
	// ordered batches the orderer cut).
	if chain := fres.Chain(0); chain.Height() > 0 {
		fmt.Printf("block 1 carries a %d-byte ordered batch\n", len(chain.Block(1).Payload))
	}

	fmt.Println("\n--- Red Belly style: consortium M, Byzantine consensus per block ---")
	rres, err := btsim.Run("redbelly",
		btsim.WithN(6), btsim.WithRounds(15), btsim.WithSeed(11), btsim.WithReadEvery(10))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(rres)
	rsc, rec := rres.Check()
	fmt.Println(rsc)
	fmt.Println(rec)
	rchain := rres.Chain(5) // a read-only member's replica
	creators := map[int]int{}
	for _, b := range rchain {
		if !b.IsGenesis() {
			creators[b.Creator]++
		}
	}
	fmt.Printf("blocks per consortium member (of %d members): %v\n",
		rres.Stats["consortium"], creators)
}
