// powsim: a Bitcoin-style proof-of-work network end to end.
//
// This example runs the Section 5.1 simulator — PoW mining weighted by
// hashing power (the prodigal oracle Θ_P), flooding over a synchronous
// network, longest-chain selection — then classifies the recorded
// history: BT Eventual Consistency should hold while BT Strong
// Consistency is violated by the transient forks (Table 1's Bitcoin
// row). It also demonstrates Theorem 4.6/4.7: re-running the identical
// workload with one update message dropped breaks Eventual Consistency.
//
// Run with: go run ./examples/powsim
package main

import (
	"fmt"

	"repro/internal/consistency"
	"repro/internal/core"
	"repro/internal/protocols/bitcoin"
	"repro/internal/simnet"
	"repro/internal/tape"
)

func main() {
	cfg := bitcoin.Config{}
	cfg.N = 5
	cfg.Rounds = 300
	cfg.Seed = 7
	cfg.ReadEvery = 5
	cfg.Difficulty = 8
	cfg.Delta = 3
	// Skewed hashing power: p0 owns half the network.
	cfg.Merits = []tape.Merit{4, 1, 1, 1, 1}

	res := bitcoin.Run(cfg)
	fmt.Println(res)
	fmt.Println("blocks mined:", res.Stats["mined"],
		"— getToken calls:", res.Stats["getToken"])

	chk := consistency.NewChecker(res.Score, core.WellFormed{})
	sc, ec := chk.Classify(res.History)
	fmt.Println(sc, "  ←  transient forks make reads incomparable")
	fmt.Println(ec, "  ←  but every divergence resolves")
	fmt.Println(consistency.UpdateAgreement(res.History, res.Creators))

	// The chain share of the dominant miner tracks its merit.
	chain := res.Selector.Select(res.Trees[0])
	byCreator := map[int]int{}
	for _, b := range chain {
		if !b.IsGenesis() {
			byCreator[b.Creator]++
		}
	}
	fmt.Println("\nchain length:", chain.Height())
	for p := 0; p < cfg.N; p++ {
		fmt.Printf("  p%d mined %d of the selected chain\n", p, byCreator[p])
	}

	// Theorem 4.6/4.7: one lost update message breaks EC.
	fmt.Println("\n--- same workload, one message to p3 dropped ---")
	lossy := cfg
	lossy.Merits = []tape.Merit{1, 0, 0, 0, 0} // linear chain: the drop is load-bearing
	lossy.DropRule = simnet.DropNth(0, simnet.DropToProcess(3))
	res2 := bitcoin.Run(lossy)
	_, ec2 := consistency.NewChecker(res2.Score, core.WellFormed{}).Classify(res2.History)
	fmt.Println(ec2)
	fmt.Println(consistency.UpdateAgreement(res2.History, res2.Creators))
	fmt.Println("final heights per replica:", res2.FinalHeights(),
		"  ← p3 is stuck behind the missing block")
}
