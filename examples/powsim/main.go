// powsim: a Bitcoin-style proof-of-work network end to end.
//
// This example runs the Section 5.1 simulator through the public btsim
// API — PoW mining weighted by hashing power (the prodigal oracle Θ_P),
// flooding over a synchronous network, longest-chain selection — then
// checks the recorded history: BT Eventual Consistency should hold
// while BT Strong Consistency is violated by the transient forks
// (Table 1's Bitcoin row). It also demonstrates Theorem 4.6/4.7:
// re-running the identical workload with one update message dropped
// breaks Eventual Consistency.
//
// Run with: go run ./examples/powsim
package main

import (
	"fmt"
	"log"

	"repro/btsim"
	_ "repro/btsim/systems"
)

func main() {
	const n = 5
	base := []btsim.Option{
		btsim.WithN(n),
		btsim.WithRounds(300),
		btsim.WithSeed(7),
		btsim.WithReadEvery(5),
		btsim.WithDifficulty(8),
		btsim.WithDelta(3),
		// Skewed hashing power: p0 owns half the network.
		btsim.WithMerits(4, 1, 1, 1, 1),
	}

	res, err := btsim.Run("bitcoin", base...)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(res)
	fmt.Println("blocks mined:", res.Stats["mined"],
		"— getToken calls:", res.Stats["getToken"])

	sc, ec := res.Check()
	fmt.Println(sc, "  ←  transient forks make reads incomparable")
	fmt.Println(ec, "  ←  but every divergence resolves")
	fmt.Println(res.UpdateAgreement())

	// The chain share of the dominant miner tracks its merit.
	chain := res.Chain(0)
	byCreator := map[int]int{}
	for _, b := range chain {
		if !b.IsGenesis() {
			byCreator[b.Creator]++
		}
	}
	fmt.Println("\nchain length:", chain.Height())
	for p := 0; p < n; p++ {
		fmt.Printf("  p%d mined %d of the selected chain\n", p, byCreator[p])
	}

	// Theorem 4.6/4.7: one lost update message breaks EC.
	fmt.Println("\n--- same workload, one message to p3 dropped ---")
	res2, err := btsim.Run("bitcoin", append(base,
		btsim.WithMerits(1, 0, 0, 0, 0), // linear chain: the drop is load-bearing
		btsim.WithDropNth(0, 3),
	)...)
	if err != nil {
		log.Fatal(err)
	}
	_, ec2 := res2.Check()
	fmt.Println(ec2)
	fmt.Println(res2.UpdateAgreement())
	fmt.Println("final heights per replica:", res2.FinalHeights(),
		"  ← p3 is stuck behind the missing block")
}
