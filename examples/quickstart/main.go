// Quickstart: the public btsim API in five minutes.
//
// The paper's seven blockchain systems are instances of one abstraction
// — a BlockTree ADT refined by a token oracle — and btsim exposes them
// behind one interface:
//
//  1. import repro/btsim/systems for side effects and every system of
//     Section 5 self-registers; btsim.Systems() lists them with the
//     oracle family and consistency criterion the paper claims;
//  2. run any of them by name with functional options (btsim.Run);
//  3. watch progress with an observer, then check the recorded history
//     against the BT Strong/Eventual Consistency criteria and replay
//     the run byte-identically from its digest.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro/btsim"
	_ "repro/btsim/systems" // self-registration: the Section 5 seven
)

func main() {
	fmt.Println("--- the registry: every system of Section 5, one interface ---")
	for _, sys := range btsim.Systems() {
		info := sys.Info()
		fmt.Printf("  §%-4s %-11s %-16s %-10s %s\n",
			info.Section, info.Name, info.Oracle, info.Criterion, info.Synopsis)
	}

	fmt.Println("\n--- one run: Bitcoin, 300 PoW rounds, an observer watching ---")
	progress := 0
	res, err := btsim.Run("bitcoin",
		btsim.WithN(4),
		btsim.WithRounds(300),
		btsim.WithSeed(42),
		btsim.WithReadEvery(6),
		btsim.WithDifficulty(10),
		btsim.WithObserver(func(p btsim.Progress) bool {
			if p.Round%100 == 0 {
				fmt.Printf("  t=%-4d round %d/%d\n", p.Now, p.Round, p.Rounds)
			}
			progress++
			return true // false would stop block production early
		}),
	)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  observer saw %d rounds\n", progress)
	fmt.Println(" ", res)
	fmt.Println("  blocks mined:", res.Stats["mined"], "— getToken calls:", res.Stats["getToken"])

	fmt.Println("\n--- the measured verdicts (the registry's claims are checked, not trusted) ---")
	sc, ec := res.Check()
	fmt.Println(" ", sc, " ←  transient forks make reads incomparable")
	fmt.Println(" ", ec, " ←  but every divergence resolves (the paper's Bitcoin row)")
	fmt.Printf("  claimed: oracle %s, criterion %s; measured fork degree %d\n",
		res.Info.Oracle, res.Info.Criterion, res.MeasuredForkMax)

	fmt.Println("\n--- determinism: the same (system, options, seed) replays byte-identically ---")
	again, err := btsim.Run("bitcoin",
		btsim.WithN(4), btsim.WithRounds(300), btsim.WithSeed(42),
		btsim.WithReadEvery(6), btsim.WithDifficulty(10))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  digest %s replayed as %s — identical: %v\n",
		res.Digest(), again.Digest(), res.Digest() == again.Digest())

	fmt.Println("\n--- errors name their options: btsim.Run(\"dogecoin\") ---")
	if _, err := btsim.Run("dogecoin"); err != nil {
		fmt.Println(" ", err)
	}
}
