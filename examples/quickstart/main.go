// Quickstart: the BlockTree ADT in five minutes.
//
// This example walks the paper's core objects end to end:
//
//  1. build a BlockTree and append blocks through the refined
//     append() — getToken*/consumeToken against a frugal token oracle
//     (Definition 3.7);
//  2. read the selected chain ({b0}⌢f(bt)) and watch it grow;
//  3. record every operation into a concurrent history and check the
//     BT Strong Consistency and BT Eventual Consistency criteria
//     (Definitions 3.2–3.4).
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"

	"repro/internal/consistency"
	"repro/internal/core"
	"repro/internal/history"
	"repro/internal/oracle"
	"repro/internal/refine"
)

func main() {
	// A frugal oracle with k = 1: at most one token per block, so the
	// tree can never fork (Theorem 3.2 with k = 1).
	orc := oracle.NewFrugal(1, nil, core.WellFormed{}, 2024)

	// The refined BlockTree, recording a two-process history.
	rec := history.NewRecorder(2, nil)
	bt := refine.New(refine.Config{
		Oracle:   orc,
		Selector: core.LongestChain{},
		Recorder: rec,
	})

	fmt.Println("initial read:", bt.Read(0))

	// Two processes alternate appends; each append mines a token for
	// the current head of the selected chain and consumes it.
	for i := 0; i < 6; i++ {
		proc := i % 2
		payload := core.EncodeTxs([]core.Tx{{From: 0, To: uint32(proc + 1), Amount: 50}})
		b, ok := bt.Append(proc, 0.5, i, payload)
		fmt.Printf("p%d append round %d: ok=%v block=%v\n", proc, i, ok, b)
		fmt.Printf("p%d read: %v\n", proc, bt.Read(proc))
	}

	tree := bt.Tree()
	fmt.Println("\nfinal tree:", tree)
	fmt.Println("fork degree:", tree.MaxForkDegree(), "(k=1 ⇒ always a chain)")

	// Check the recorded history against both consistency criteria.
	h := rec.Snapshot()
	chk := consistency.NewChecker(core.LengthScore{}, core.WellFormed{})
	sc, ec := chk.Classify(h)
	fmt.Println("\nhistory:", h)
	fmt.Println(sc)
	fmt.Println(ec)
	fmt.Println(chk.KForkCoherence(h, 1))

	// The ledger state at the head of the chain.
	chain := bt.Read(0)
	ledger, err := core.Replay(chain)
	if err != nil {
		fmt.Println("ledger replay failed:", err)
		return
	}
	fmt.Printf("\nledger balances: p1=%d p2=%d\n", ledger.Balance(1), ledger.Balance(2))
}
