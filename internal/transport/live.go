package transport

import (
	"fmt"
	"time"

	"repro/internal/consistency"
	"repro/internal/core"
	"repro/internal/history"
	"repro/internal/metrics"
	"repro/internal/replica"
	"repro/internal/tape"
)

// Profile is how one registered system produces blocks in a live
// deployment: the selector/score/predicate triple its replicas run,
// the paper row it claims, and the oracle-backed mint that turns an
// append attempt into a block (or a lost lottery). Each protocol
// package exports a LiveProfile constructor building this from its
// simulation config, so the live path reuses the exact oracle, scores
// and validity the simulated path measures.
type Profile struct {
	System         string
	Selector       core.Selector
	Score          core.Score
	Predicate      core.Predicate
	OracleClaim    string
	PaperCriterion string
	// Sequencer routes every append through node 0 — the
	// ordering-service shape of the frugal k=1 family (Fabric's
	// orderer, the BFT-chain leader, Algorand's per-height proposer
	// collapse onto the one node that may consume the height token).
	Sequencer bool
	// Mint runs the oracle lottery for an append attempt at proc on
	// parent; seq is a globally unique attempt number (the live
	// equivalent of the mining round). nil means the lottery was lost:
	// the attempt failed before any operation began, so nothing is
	// recorded — exactly a getToken miss in the simulators.
	Mint func(proc int, parent *core.Block, seq int) *core.Block
}

// CrashSpec schedules one crash/restart during the load phase — the
// live counterpart of a simnet.CrashWindow.
type CrashSpec struct {
	// Node to crash. In sequencer profiles (and the default
	// single-writer load policy) node 0 is the writer; crashing a
	// reader exercises rejoin without halting the load.
	Node int
	// After is the delay from load start to the crash; Downtime is the
	// crash window length.
	After    time.Duration
	Downtime time.Duration
	// Durable selects snapshot/restore recovery; false means amnesia.
	Durable bool
}

// LiveConfig parameterizes a deployment run.
type LiveConfig struct {
	// Transport names the carrier: "chan" (default) or "tcp".
	Transport string
	// N is the node count; Seed drives the oracle and load shuffling;
	// Merits are the normalized α_p column (nil = uniform).
	N      int
	Seed   uint64
	Merits []tape.Merit
	// Addrs are carrier addresses (tcp; empty = loopback auto-ports).
	Addrs []string

	// Clients is the number of concurrent load generators (default 2).
	Clients int
	// Rate is the per-client target append rate per second; 0 means
	// closed-loop (each client submits as soon as the last completes).
	Rate float64
	// Duration bounds the load phase in wall time; MaxAppends bounds
	// it in granted appends. The phase ends at whichever comes first;
	// at least one must be set.
	Duration   time.Duration
	MaxAppends int64
	// ReadsPerAppend is how many reads each client issues, rotating
	// across nodes, after every append attempt (default 2).
	ReadsPerAppend int
	// Spray round-robins append attempts across all nodes instead of
	// the default single-writer policy (node 0). Spraying a prodigal
	// system creates real fork pressure: concurrent miners extend
	// concurrent parents, so StrongPrefix may genuinely break — the
	// same reason the paper classifies those systems EC, not SC.
	Spray bool

	// Crash, when set, schedules one crash/restart during the load.
	Crash *CrashSpec

	// K, when > 0, adds the k-Fork Coherence report to the result.
	K int
	// OnWitness streams every live violation witness as the monitor
	// forms it (called from the monitor consumer goroutine).
	OnWitness func(consistency.Witness)
	// AsyncBuf is the monitor queue bound (0 = history default).
	AsyncBuf int

	// AEPeriod is the anti-entropy advertise interval (default 250ms).
	AEPeriod time.Duration
	// SettleTimeout caps the post-load convergence wait (default 10s).
	SettleTimeout time.Duration
}

func (c *LiveConfig) norm() error {
	if c.N <= 0 {
		c.N = 4
	}
	if c.Clients <= 0 {
		c.Clients = 2
	}
	if c.ReadsPerAppend < 0 {
		c.ReadsPerAppend = 0
	} else if c.ReadsPerAppend == 0 {
		c.ReadsPerAppend = 2
	}
	if c.Duration <= 0 && c.MaxAppends <= 0 {
		return fmt.Errorf("transport: live run needs a Duration or a MaxAppends budget")
	}
	if c.AEPeriod <= 0 {
		c.AEPeriod = 250 * time.Millisecond
	}
	if c.SettleTimeout <= 0 {
		c.SettleTimeout = 10 * time.Second
	}
	if c.Crash != nil {
		if c.Crash.Node < 0 || c.Crash.Node >= c.N {
			return fmt.Errorf("transport: crash node %d out of range [0,%d)", c.Crash.Node, c.N)
		}
		if c.Crash.After <= 0 {
			c.Crash.After = 200 * time.Millisecond
		}
		if c.Crash.Downtime <= 0 {
			c.Crash.Downtime = 300 * time.Millisecond
		}
	}
	return nil
}

// LiveResult is what a deployment run measures: sustained throughput,
// client-observed latency quantiles, the online monitor's verdicts,
// and the raw material (history, trees, creators) the batch checkers
// and renderers consume — so everything that works on a simulated
// result works on a live one.
type LiveResult struct {
	System    string
	Transport string
	N         int

	// Elapsed is the measured load-phase wall time; Settle the
	// post-load convergence wait.
	Elapsed time.Duration
	Settle  time.Duration

	// Attempts counts append submissions; AppendsOK the granted ones
	// (attempts minus lost lotteries minus submissions at a crashed
	// node); Reads the completed read operations.
	Attempts  int64
	AppendsOK int64
	Reads     int64
	// AppendsPerSec / ReadsPerSec are sustained over Elapsed.
	AppendsPerSec float64
	ReadsPerSec   float64

	// AppendLatUS / ReadLatUS are client-observed operation latencies
	// in microseconds (submit → response through the node event loop).
	AppendLatUS metrics.HistSnapshot
	ReadLatUS   metrics.HistSnapshot
	// Metrics is the live registry snapshot (counters, histograms,
	// wall-clock timing section).
	Metrics *metrics.Snapshot

	// SC/EC are the online monitor's finalized verdicts; KFork is the
	// optional k-fork coherence report; LiveWitnesses counts witnesses
	// streamed while the run was still going.
	SC, EC        *consistency.Verdict
	KFork         *consistency.Report
	LiveWitnesses int
	MonitorStats  consistency.MonitorStats
	// MonitorErr is non-nil when the online monitor's consumer failed
	// mid-run (AsyncSink panic recovery); the verdicts are then not
	// trustworthy.
	MonitorErr error

	// Recovery carries the crash/rejoin counters when a CrashSpec ran.
	Recovery *replica.RecoveryStats

	// Sent/Delivered are carrier frame counters; DroppedDown counts
	// deliveries dropped at crashed nodes; Converged reports whether
	// every replica reached the same tree size before SettleTimeout.
	Sent, Delivered int64
	DroppedDown     int64
	Converged       bool

	// History, Trees, Creators mirror a protocols.Result's evidence.
	History  *history.History
	Trees    []*core.Tree
	Creators map[core.BlockID]int
}

// Violated lists the property names any verdict reports broken.
func (r *LiveResult) Violated() []string {
	var out []string
	seen := map[string]bool{}
	for _, v := range []*consistency.Verdict{r.SC, r.EC} {
		if v == nil {
			continue
		}
		for _, rep := range v.Reports {
			if !rep.OK && !seen[rep.Property] {
				seen[rep.Property] = true
				out = append(out, rep.Property)
			}
		}
	}
	if r.KFork != nil && !r.KFork.OK {
		out = append(out, r.KFork.Property)
	}
	return out
}

// statser is the carrier-side counter pair both carriers expose.
type statser interface {
	Stats() (sent, delivered int64)
}

// Run deploys N nodes of the profiled system over the configured
// carrier, drives the client load with the online monitor attached,
// waits for convergence, and finalizes.
func Run(cfg LiveConfig, prof Profile) (*LiveResult, error) {
	if err := cfg.norm(); err != nil {
		return nil, err
	}
	roster := NewRoster(cfg.N, cfg.Merits, cfg.Addrs)
	tr, err := New(cfg.Transport, roster)
	if err != nil {
		return nil, err
	}

	start := time.Now()
	clock := func() int64 { return time.Since(start).Microseconds() }

	// The shared recorder is the sequencing collector: every node
	// records into it, its mutex totally orders the op feed, and the
	// AsyncSink replays that order into the monitor off the hot path.
	rec := history.NewRecorder(cfg.N, clock)
	reg := replica.NewRegistry()
	mon := consistency.NewMonitor(consistency.MonitorConfig{
		Procs:     cfg.N,
		Score:     prof.Score,
		P:         prof.Predicate,
		K:         cfg.K,
		Table:     rec.Table(),
		OnWitness: cfg.OnWitness,
	})
	async := history.NewAsyncSink(mon, cfg.AsyncBuf)
	rec.SetSink(async)

	mreg := metrics.New(0)
	mreg.SetClock(clock)
	latBounds := []int64{2, 5, 10, 20, 50, 100, 200, 500, 1000, 2000,
		5000, 10000, 20000, 50000, 100000, 200000, 500000, 1000000,
		2000000, 5000000}
	appendHist := mreg.Histogram("live.append.us", latBounds...)
	readHist := mreg.Histogram("live.read.us", latBounds...)
	cAttempts := mreg.Counter("live.append.attempts")
	cGrants := mreg.Counter("live.append.granted")
	cReads := mreg.Counter("live.reads")

	// Build the nodes: listen, host a process, install repair
	// handlers, dial the mesh, then start the event loops.
	nodes := make([]*Node, cfg.N)
	for i := 0; i < cfg.N; i++ {
		n, err := NewNode(i, tr)
		if err != nil {
			tr.Close()
			return nil, err
		}
		proc := replica.NewProcess(i, n, prof.Selector, rec, reg)
		if prof.Predicate != nil {
			proc.P = prof.Predicate
		}
		proc.InstallAntiEntropy()
		n.Proc = proc
		nodes[i] = n
	}
	for i := range nodes {
		if err := tr.Dial(i); err != nil {
			tr.Close()
			return nil, err
		}
	}
	for _, n := range nodes {
		n.Start()
		scheduleAdvertise(n, cfg.AEPeriod)
	}

	// Load phase, with the optional crash/restart riding alongside.
	lg := newLoadGen(cfg, prof, nodes, loadInstruments{
		appendHist: appendHist, readHist: readHist,
	})
	var recovery *replica.RecoveryStats
	var crashDone chan struct{}
	if cfg.Crash != nil {
		recovery = &replica.RecoveryStats{}
		crashDone = make(chan struct{})
		go runCrash(cfg.Crash, nodes[cfg.Crash.Node], recovery, crashDone)
	}
	loadStart := time.Now()
	lg.run()
	elapsed := time.Since(loadStart)
	if crashDone != nil {
		// The window may outlast a short load phase; rejoin must
		// complete before convergence is meaningful.
		select {
		case <-crashDone:
		case <-time.After(cfg.SettleTimeout + cfg.Crash.After + cfg.Crash.Downtime):
			return nil, fmt.Errorf("transport: crash/restart did not complete")
		}
	}

	// Settle: every replica at the same tree size, all inboxes empty,
	// nothing in flight — twice in a row.
	settleStart := time.Now()
	converged := settle(nodes, tr, cfg.SettleTimeout)
	settleDur := time.Since(settleStart)

	// Final convergent reads (two rounds, as the simulators take).
	for round := 0; round < 2; round++ {
		for _, n := range nodes {
			n.Do(func() { n.Proc.Read() })
		}
	}

	// Teardown: stop the loops (cancelling wall-clock timers), close
	// the carrier, then drain the monitor queue.
	for _, n := range nodes {
		n.Stop()
	}
	tr.Close()
	monErr := async.Drain()
	for _, op := range rec.PendingOps() {
		mon.OpPending(op)
	}
	sc, ec := mon.Finalize()

	res := &LiveResult{
		System:    prof.System,
		Transport: tr.Name(),
		N:         cfg.N,
		Elapsed:   elapsed,
		Settle:    settleDur,
		SC:        sc,
		EC:        ec,
		Converged: converged,
		Recovery:  recovery,
		History:   rec.Snapshot(),
		Creators:  reg.Creators(),
	}
	if cfg.K > 0 {
		res.KFork = mon.KForkReport(cfg.K)
	}
	res.LiveWitnesses = mon.LiveWitnesses()
	res.MonitorStats = mon.Stats()
	res.MonitorErr = monErr
	res.Attempts, res.AppendsOK, res.Reads = lg.totals()
	cAttempts.Add(res.Attempts)
	cGrants.Add(res.AppendsOK)
	cReads.Add(res.Reads)
	if s := elapsed.Seconds(); s > 0 {
		res.AppendsPerSec = float64(res.AppendsOK) / s
		res.ReadsPerSec = float64(res.Reads) / s
	}
	if st, ok := tr.(statser); ok {
		res.Sent, res.Delivered = st.Stats()
	}
	for _, n := range nodes {
		res.DroppedDown += n.droppedDown
		res.Trees = append(res.Trees, n.Proc.Tree().Clone())
	}
	mreg.AddTiming("live.elapsed.us", elapsed.Microseconds())
	mreg.AddTiming("live.settle.us", settleDur.Microseconds())
	high, blocked, _ := async.QueueStats()
	mreg.AddTiming("live.monitor.queue.highwater", int64(high))
	mreg.AddTiming("live.monitor.queue.blocked", blocked)
	res.Metrics = mreg.Snapshot()
	for _, h := range res.Metrics.Hists {
		switch h.Name {
		case "live.append.us":
			res.AppendLatUS = h
		case "live.read.us":
			res.ReadLatUS = h
		}
	}
	return res, nil
}

// scheduleAdvertise drives the periodic anti-entropy inventory round
// on the node's own wall-clock timer (the live stand-in for
// Group.EnableAntiEntropy's virtual-time schedule).
func scheduleAdvertise(n *Node, period time.Duration) {
	var tick func()
	tick = func() {
		n.Proc.Advertise() // no-op while crashed
		n.After(period, tick)
	}
	n.After(period, tick)
}

// runCrash executes one crash window against a node: snapshot (when
// durable) + down, wait, restore/reset + up, then catch up through
// anti-entropy solicits with doubling wall-clock backoff, mirroring
// Group.catchUp.
func runCrash(spec *CrashSpec, n *Node, stats *replica.RecoveryStats, done chan struct{}) {
	time.Sleep(spec.After)
	stats.Crashes++
	snap := n.crash(spec.Durable)
	time.Sleep(spec.Downtime)
	stats.Restarts++
	n.restart(snap)
	var lenAtRestart int
	n.Do(func() {
		if spec.Durable && snap != nil {
			stats.DurableRestores++
		} else {
			stats.AmnesiaResets++
		}
		lenAtRestart = n.Proc.TreeLen()
	})

	// Catch-up with bounded retries; completion closes done.
	const maxRetries = 3
	var attempt func(k int, backoff time.Duration)
	attempt = func(k int, backoff time.Duration) {
		var lenAtSolicit int
		n.Do(func() {
			stats.Solicits++
			if k > 0 {
				stats.Retries++
			}
			lenAtSolicit = n.Proc.TreeLen()
			n.Proc.SolicitSync()
		})
		n.After(backoff, func() {
			progressed := n.Proc.TreeLen() > lenAtSolicit && n.Proc.PendingCount() == 0
			if progressed || k+1 >= maxRetries {
				stats.ResyncBlocks += n.Proc.TreeLen() - lenAtRestart
				close(done)
				return
			}
			go attempt(k+1, backoff*2)
		})
	}
	attempt(0, 100*time.Millisecond)
}

// settle polls until every node reports the same tree size with empty
// inboxes and an idle carrier, twice in a row, or the timeout passes.
func settle(nodes []*Node, tr Transport, timeout time.Duration) bool {
	deadline := time.Now().Add(timeout)
	stable := 0
	for time.Now().Before(deadline) {
		if deploymentQuiesced(nodes, tr) {
			stable++
			if stable >= 2 {
				return true
			}
		} else {
			stable = 0
		}
		time.Sleep(20 * time.Millisecond)
	}
	return false
}

// deploymentQuiesced reports one idle-and-converged observation.
func deploymentQuiesced(nodes []*Node, tr Transport) bool {
	if st, ok := tr.(statser); ok {
		sent, delivered := st.Stats()
		if sent != delivered {
			return false
		}
	}
	size := -1
	for _, n := range nodes {
		if n.q.depth() > 0 {
			return false
		}
		var l int
		if !n.Do(func() { l = n.Proc.TreeLen() }) {
			return false
		}
		if size == -1 {
			size = l
		} else if l != size {
			return false
		}
	}
	return true
}
