package transport

import (
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/replica"
	"repro/internal/simnet"
)

// event is one unit of work for a node's event loop: either a
// transport delivery (isMsg) or a closure (client operation, timer
// callback, crash/restart control).
type event struct {
	msg   Message
	fn    func()
	isMsg bool
}

// Node hosts one replica.Process as an actor: a single event-loop
// goroutine owns the process, and every touch — message delivery,
// client append/read, wall-clock timer, crash control — is an event
// executed serially by that loop. Node implements replica.Net, so the
// Process floods and repairs through the live Transport with the same
// code paths the simulator drives.
type Node struct {
	ID   int
	Proc *replica.Process

	tr Transport
	q  *queue[event]
	wg sync.WaitGroup

	// handlers are the process's registered delivery handlers
	// (replica + anti-entropy). Registered at setup, before the loop
	// starts; read-only afterwards.
	handlers []simnet.Handler

	// down is the live crash flag: while set, inbound deliveries are
	// dropped and the process neither sends nor operates (replica.Net
	// Down plumbs it into every Process guard).
	down atomic.Bool

	// droppedDown counts deliveries dropped while crashed (loop-only).
	droppedDown int64

	// timers tracks pending wall-clock callbacks so Stop can cancel
	// them (a fired timer merely enqueues; the loop runs it).
	timersMu sync.Mutex
	timers   map[*time.Timer]struct{}
	stopped  bool
}

// NewNode creates node id over the carrier and registers its delivery
// callback. The caller then builds the replica.Process over the node
// (NewProcess registers the handler through AddShardSafeHandler),
// dials, and calls Start.
func NewNode(id int, tr Transport) (*Node, error) {
	n := &Node{ID: id, tr: tr, q: newQueue[event](), timers: make(map[*time.Timer]struct{})}
	if err := tr.Listen(id, n.deliver); err != nil {
		return nil, err
	}
	return n, nil
}

// deliver enqueues a carrier delivery (called from carrier goroutines
// or peer node loops; non-blocking).
func (n *Node) deliver(m Message) { n.q.push(event{msg: m, isMsg: true}) }

// Start launches the event loop. Call after every handler is
// registered and the carrier is dialed.
func (n *Node) Start() {
	n.wg.Add(1)
	go n.loop()
}

// Stop cancels pending timers, closes the inbox and waits for the
// loop to drain what was already queued.
func (n *Node) Stop() {
	n.timersMu.Lock()
	n.stopped = true
	for t := range n.timers {
		t.Stop()
	}
	n.timers = nil
	n.timersMu.Unlock()
	n.q.close()
	n.wg.Wait()
}

func (n *Node) loop() {
	defer n.wg.Done()
	for {
		e, ok := n.q.pop()
		if !ok {
			return
		}
		if e.isMsg {
			if n.down.Load() {
				n.droppedDown++ // deliveries to a crashed node are lost
				continue
			}
			for _, h := range n.handlers {
				h(e.msg)
			}
			continue
		}
		e.fn()
	}
}

// Do executes fn on the node's event loop and waits for it — the
// synchronous entry point client load and deployment control use. It
// reports false (without running fn) when the node has stopped.
func (n *Node) Do(fn func()) bool {
	done := make(chan struct{})
	if !n.q.push(event{fn: func() { defer close(done); fn() }}) {
		return false
	}
	<-done
	return true
}

// After schedules fn to run on the event loop d from now. The timer is
// cancelled by Stop; a callback racing Stop finds the queue closed and
// is dropped.
func (n *Node) After(d time.Duration, fn func()) {
	n.timersMu.Lock()
	if n.stopped {
		n.timersMu.Unlock()
		return
	}
	var t *time.Timer
	t = time.AfterFunc(d, func() {
		n.timersMu.Lock()
		delete(n.timers, t)
		n.timersMu.Unlock()
		n.q.push(event{fn: fn})
	})
	n.timers[t] = struct{}{}
	n.timersMu.Unlock()
}

// --- replica.Net ---

// AddShardSafeHandler registers a delivery handler. The shard-safety
// contract maps onto the actor model directly: the handler touches
// only this node's process, and the single event loop serializes it.
func (n *Node) AddShardSafeHandler(_ int, h simnet.Handler) {
	n.handlers = append(n.handlers, h)
}

// Send forwards a point-to-point message; a crashed node sends
// nothing (defense in depth — Process guards on Down first).
func (n *Node) Send(from, to int, payload any) {
	if n.down.Load() {
		return
	}
	_ = n.tr.Send(from, to, payload)
}

// Broadcast floods to every node, loopback included (the recorded
// receive of one's own send is LRC Validity, as in simnet).
func (n *Node) Broadcast(from int, payload any) {
	if n.down.Load() {
		return
	}
	_ = n.tr.Broadcast(from, payload)
}

// Down reports the live crash flag.
func (n *Node) Down(int) bool { return n.down.Load() }

// --- crash / restart (deployment control; see live.go) ---

// crash opens a crash window on the node's loop: the process stops
// operating and inbound deliveries are dropped. When durable, the
// replica state is snapshotted first (crash-consistent: the loop is
// between events). Returns the snapshot (nil under amnesia).
func (n *Node) crash(durable bool) *replica.Snapshot {
	var snap *replica.Snapshot
	n.Do(func() {
		if durable {
			snap = n.Proc.Snapshot()
		}
		n.down.Store(true)
	})
	return snap
}

// restart closes the crash window: restore the snapshot (durable) or
// reset to genesis (amnesia), then rejoin. Catch-up runs through the
// anti-entropy layer with wall-clock retry backoff (live.go).
func (n *Node) restart(snap *replica.Snapshot) {
	n.Do(func() {
		if snap != nil {
			n.Proc.Restore(snap)
		} else {
			n.Proc.Reset()
		}
		n.down.Store(false)
	})
}
