package transport

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
)

// tcpNet carries frames over real TCP on loopback: one connection per
// ordered node pair (from → to), a dedicated writer goroutine per
// connection draining an unbounded send queue, and a reader goroutine
// per inbound connection decoding frames into the receiver's callback.
// Per-peer FIFO holds end to end: single queue → single writer →
// single TCP stream → single reader. Loopback (self) delivery skips
// the socket and invokes the local callback directly, as chanNet does.
type tcpNet struct {
	n     int
	addrs []string // resolved listen addresses, indexed by node

	mu     sync.Mutex
	recv   []func(Message)
	ln     []net.Listener
	out    [][]*sendLink // out[from][to]; nil diagonal
	closed bool

	wg        sync.WaitGroup
	sent      atomic.Int64
	delivered atomic.Int64
}

// sendLink is one outbound connection and its writer queue.
type sendLink struct {
	q    *queue[[]byte]
	conn net.Conn
}

// newTCPNet builds the carrier for the roster. Empty peer addresses
// mean "127.0.0.1:0" — a kernel-assigned loopback port, resolved at
// Listen time (the usual case for single-host deployments and tests).
func newTCPNet(roster *Roster) (*tcpNet, error) {
	n := roster.N()
	t := &tcpNet{
		n:     n,
		addrs: make([]string, n),
		recv:  make([]func(Message), n),
		ln:    make([]net.Listener, n),
		out:   make([][]*sendLink, n),
	}
	for i, p := range roster.Peers {
		t.addrs[i] = p.Addr
		if t.addrs[i] == "" {
			t.addrs[i] = "127.0.0.1:0"
		}
		t.out[i] = make([]*sendLink, n)
	}
	return t, nil
}

func (t *tcpNet) Name() string { return "tcp" }

// Listen binds node id's listener and starts its accept loop. The
// resolved address (kernel-assigned port) replaces the ":0" request so
// later Dials find it.
func (t *tcpNet) Listen(id int, recv func(Message)) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if id < 0 || id >= t.n {
		return fmt.Errorf("transport: listen on unknown node %d", id)
	}
	ln, err := net.Listen("tcp", t.addrs[id])
	if err != nil {
		return fmt.Errorf("transport: listen %s: %w", t.addrs[id], err)
	}
	t.addrs[id] = ln.Addr().String()
	t.ln[id] = ln
	t.recv[id] = recv
	t.wg.Add(1)
	go t.acceptLoop(id, ln)
	return nil
}

func (t *tcpNet) acceptLoop(id int, ln net.Listener) {
	defer t.wg.Done()
	for {
		conn, err := ln.Accept()
		if err != nil {
			return // listener closed
		}
		t.wg.Add(1)
		go t.readLoop(id, conn)
	}
}

// readLoop decodes the peer handshake then frames until the connection
// drops.
func (t *tcpNet) readLoop(id int, conn net.Conn) {
	defer t.wg.Done()
	defer conn.Close()
	r := bufio.NewReader(conn)
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return
	}
	from := int(binary.LittleEndian.Uint32(hdr[:]))
	if from < 0 || from >= t.n {
		return
	}
	for {
		if _, err := io.ReadFull(r, hdr[:]); err != nil {
			return
		}
		size := binary.LittleEndian.Uint32(hdr[:])
		if size == 0 || size > maxFrame {
			return
		}
		body := make([]byte, size)
		if _, err := io.ReadFull(r, body); err != nil {
			return
		}
		payload, err := DecodePayload(body)
		if err != nil {
			return
		}
		t.delivered.Add(1)
		t.recv[id](Message{From: from, To: id, Payload: payload})
	}
}

// Dial connects node id to every peer and starts the writer
// goroutines. Every node must have Listened first.
func (t *tcpNet) Dial(id int) error {
	for to := 0; to < t.n; to++ {
		if to == id {
			continue // loopback is delivered locally in Send
		}
		t.mu.Lock()
		addr := t.addrs[to]
		t.mu.Unlock()
		conn, err := net.Dial("tcp", addr)
		if err != nil {
			return fmt.Errorf("transport: dial node %d (%s): %w", to, addr, err)
		}
		var hdr [4]byte
		binary.LittleEndian.PutUint32(hdr[:], uint32(id))
		if _, err := conn.Write(hdr[:]); err != nil {
			conn.Close()
			return fmt.Errorf("transport: handshake to node %d: %w", to, err)
		}
		link := &sendLink{q: newQueue[[]byte](), conn: conn}
		t.mu.Lock()
		t.out[id][to] = link
		t.mu.Unlock()
		t.wg.Add(1)
		go t.writeLoop(link)
	}
	return nil
}

// writeLoop drains one link's queue onto its connection. Frames are
// pre-encoded by Send, so the loop is a pure byte pump.
func (t *tcpNet) writeLoop(link *sendLink) {
	defer t.wg.Done()
	w := bufio.NewWriter(link.conn)
	for {
		frame, ok := link.q.pop()
		if !ok {
			return
		}
		// Coalesce: flush only when the queue runs dry, so bursts of
		// small frames share syscalls.
		if _, err := w.Write(frame); err != nil {
			return
		}
		if link.q.depth() == 0 {
			if err := w.Flush(); err != nil {
				return
			}
		}
	}
}

// Send encodes the payload into a frame and queues it on the (from,
// to) link; self-sends deliver locally without touching a socket.
func (t *tcpNet) Send(from, to int, payload any) error {
	if to < 0 || to >= t.n {
		return fmt.Errorf("transport: send to unknown node %d", to)
	}
	t.sent.Add(1)
	if to == from {
		t.delivered.Add(1)
		t.recv[to](Message{From: from, To: to, Payload: payload})
		return nil
	}
	buf := make([]byte, 4, 64)
	buf, err := AppendPayload(buf, payload)
	if err != nil {
		return err
	}
	binary.LittleEndian.PutUint32(buf[:4], uint32(len(buf)-4))
	t.mu.Lock()
	link := t.out[from][to]
	closed := t.closed
	t.mu.Unlock()
	if closed {
		return fmt.Errorf("transport: send on closed carrier")
	}
	if link == nil {
		return fmt.Errorf("transport: node %d has not dialed node %d", from, to)
	}
	link.q.push(buf)
	return nil
}

func (t *tcpNet) Broadcast(from int, payload any) error {
	for to := 0; to < t.n; to++ {
		if err := t.Send(from, to, payload); err != nil {
			return err
		}
	}
	return nil
}

// Close shuts listeners and connections down and waits for every
// carrier goroutine. Undelivered queued frames are dropped — callers
// quiesce the load before closing.
func (t *tcpNet) Close() error {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return nil
	}
	t.closed = true
	for _, ln := range t.ln {
		if ln != nil {
			ln.Close()
		}
	}
	for _, row := range t.out {
		for _, link := range row {
			if link != nil {
				link.q.close()
				link.conn.Close()
			}
		}
	}
	t.mu.Unlock()
	t.wg.Wait()
	return nil
}

// Stats reports (sent, delivered) frame counters.
func (t *tcpNet) Stats() (sent, delivered int64) {
	return t.sent.Load(), t.delivered.Load()
}
