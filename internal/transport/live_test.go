package transport

import (
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/oracle"
)

// testProfile is a minimal prodigal system for driver tests: identity
// merit mapping with merit 1, so every mint is granted.
func testProfile() Profile {
	orc := oracle.NewProdigal(nil, core.WellFormed{}, 0x11fe)
	return Profile{
		System:         "TestChain",
		Selector:       core.LongestChain{},
		Score:          core.LengthScore{},
		Predicate:      core.WellFormed{},
		OracleClaim:    "ΘP",
		PaperCriterion: "EC",
		Mint: func(proc int, parent *core.Block, seq int) *core.Block {
			b, ok := orc.GetToken(1, parent, proc, seq, nil)
			if !ok {
				return nil
			}
			if _, consumed := orc.ConsumeToken(b); !consumed {
				return nil
			}
			return b
		},
	}
}

func TestLiveRunBenign(t *testing.T) {
	res, err := Run(LiveConfig{
		Transport:  "chan",
		N:          4,
		Seed:       7,
		MaxAppends: 30,
		Clients:    2,
	}, testProfile())
	if err != nil {
		t.Fatal(err)
	}
	if res.AppendsOK < 30 {
		t.Fatalf("granted %d appends, want >= 30", res.AppendsOK)
	}
	if !res.Converged {
		t.Fatal("deployment did not converge before the settle timeout")
	}
	if res.MonitorErr != nil {
		t.Fatalf("monitor consumer failed: %v", res.MonitorErr)
	}
	if v := res.Violated(); len(v) != 0 {
		t.Fatalf("benign single-writer run violated %v\nSC: %v\nEC: %v", v, res.SC, res.EC)
	}
	if res.LiveWitnesses != 0 {
		t.Fatalf("benign run streamed %d witnesses", res.LiveWitnesses)
	}
	if len(res.Trees) != 4 {
		t.Fatalf("got %d trees", len(res.Trees))
	}
	want := res.Trees[0].Len()
	for i, tree := range res.Trees {
		if tree.Len() != want {
			t.Fatalf("tree %d has %d blocks, tree 0 has %d", i, tree.Len(), want)
		}
	}
	if res.History == nil || len(res.History.Ops) == 0 {
		t.Fatal("no operations recorded")
	}
}

func TestLiveRunCrashDurableRejoins(t *testing.T) {
	res, err := Run(LiveConfig{
		Transport: "chan",
		N:         4,
		Seed:      11,
		Duration:  700 * time.Millisecond,
		Clients:   2,
		Crash: &CrashSpec{
			Node:     2, // a reader: the writer keeps appending past it
			After:    100 * time.Millisecond,
			Downtime: 200 * time.Millisecond,
			Durable:  true,
		},
	}, testProfile())
	if err != nil {
		t.Fatal(err)
	}
	rs := res.Recovery
	if rs == nil {
		t.Fatal("no recovery stats on a crash run")
	}
	if rs.Crashes != 1 || rs.Restarts != 1 || rs.DurableRestores != 1 {
		t.Fatalf("recovery counters off: %+v", rs)
	}
	if rs.Solicits == 0 {
		t.Fatalf("restarted node never solicited catch-up: %+v", rs)
	}
	if !res.Converged {
		t.Fatal("crashed node did not reconverge")
	}
	if v := res.Violated(); len(v) != 0 {
		t.Fatalf("crash+durable-restart violated %v\nSC: %v\nEC: %v", v, res.SC, res.EC)
	}
	want := res.Trees[0].Len()
	for i, tree := range res.Trees {
		if tree.Len() != want {
			t.Fatalf("tree %d has %d blocks after rejoin, tree 0 has %d", i, tree.Len(), want)
		}
	}
}

func TestLiveRunNeedsABound(t *testing.T) {
	if _, err := Run(LiveConfig{Transport: "chan", N: 2}, testProfile()); err == nil {
		t.Fatal("unbounded live run accepted")
	}
}

func TestLiveRunTCP(t *testing.T) {
	res, err := Run(LiveConfig{
		Transport:  "tcp",
		N:          3,
		Seed:       3,
		MaxAppends: 10,
	}, testProfile())
	if err != nil {
		t.Fatal(err)
	}
	if res.Transport != "tcp" {
		t.Fatalf("transport %q", res.Transport)
	}
	if res.AppendsOK < 10 || !res.Converged {
		t.Fatalf("tcp run: appends=%d converged=%v", res.AppendsOK, res.Converged)
	}
	if v := res.Violated(); len(v) != 0 {
		t.Fatalf("tcp benign run violated %v", v)
	}
}
