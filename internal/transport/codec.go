package transport

import (
	"encoding/binary"
	"fmt"

	"repro/internal/core"
	"repro/internal/replica"
)

// The tcpNet wire format. Every frame is a 4-byte little-endian length
// followed by a body of
//
//	kind byte | kind-specific fields
//
// with strings as uvarint length + bytes and integers as zigzag
// varints — the same manual, reflection-free codec style as the block
// payload encoding (core.EncodeTxs): no gob/json, no per-field
// allocations on encode beyond the frame buffer itself.
const (
	frameUpdate byte = 1 // replica.UpdateMsg: one block
	frameInv    byte = 2 // replica.InvMsg: leaf inventory
	frameReq    byte = 3 // replica.ReqMsg: block request
	frameSync   byte = 4 // replica.SyncMsg: catch-up solicit
)

// maxFrame bounds a decoded frame body (defense against a corrupt
// length prefix on a real socket).
const maxFrame = 1 << 24

// appendString encodes s as uvarint length + bytes.
func appendString(b []byte, s string) []byte {
	b = binary.AppendUvarint(b, uint64(len(s)))
	return append(b, s...)
}

// appendInt zigzag-encodes v.
func appendInt(b []byte, v int) []byte {
	return binary.AppendVarint(b, int64(v))
}

// appendBytes encodes p as uvarint length + bytes.
func appendBytes(b []byte, p []byte) []byte {
	b = binary.AppendUvarint(b, uint64(len(p)))
	return append(b, p...)
}

// AppendPayload encodes one carrier payload onto buf (no length
// prefix; the frame writer adds it). Unknown payload types error —
// the live replica stack only speaks update/inv/req/sync.
func AppendPayload(buf []byte, payload any) ([]byte, error) {
	switch m := payload.(type) {
	case replica.UpdateMsg:
		buf = append(buf, frameUpdate)
		return appendBlock(buf, m.Block), nil
	case replica.InvMsg:
		buf = append(buf, frameInv)
		buf = binary.AppendUvarint(buf, uint64(len(m.Leaves)))
		for _, id := range m.Leaves {
			buf = appendString(buf, string(id))
		}
		return buf, nil
	case replica.ReqMsg:
		buf = append(buf, frameReq)
		return appendString(buf, string(m.ID)), nil
	case replica.SyncMsg:
		return append(buf, frameSync), nil
	default:
		return nil, fmt.Errorf("transport: cannot encode payload %T", payload)
	}
}

// appendBlock encodes every identity-bearing field of a block. Weight
// and Token ride along so re-weighted and token-stamped blocks survive
// the wire byte-exactly (the k-fork checker groups by Token).
func appendBlock(buf []byte, b *core.Block) []byte {
	buf = appendString(buf, string(b.ID))
	buf = appendString(buf, string(b.Parent))
	buf = appendInt(buf, b.Height)
	buf = appendInt(buf, b.Creator)
	buf = appendInt(buf, b.Round)
	buf = appendInt(buf, b.Weight)
	buf = appendBytes(buf, b.Payload)
	buf = appendString(buf, string(b.Token))
	return buf
}

// decoder walks a frame body.
type decoder struct {
	b   []byte
	off int
	err error
}

func (d *decoder) fail(what string) {
	if d.err == nil {
		d.err = fmt.Errorf("transport: truncated frame at %s (offset %d of %d)", what, d.off, len(d.b))
	}
}

func (d *decoder) uvarint(what string) uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.b[d.off:])
	if n <= 0 {
		d.fail(what)
		return 0
	}
	d.off += n
	return v
}

func (d *decoder) varint(what string) int64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Varint(d.b[d.off:])
	if n <= 0 {
		d.fail(what)
		return 0
	}
	d.off += n
	return v
}

func (d *decoder) str(what string) string {
	n := d.uvarint(what)
	if d.err != nil {
		return ""
	}
	if uint64(len(d.b)-d.off) < n {
		d.fail(what)
		return ""
	}
	s := string(d.b[d.off : d.off+int(n)])
	d.off += int(n)
	return s
}

func (d *decoder) bytes(what string) []byte {
	n := d.uvarint(what)
	if d.err != nil {
		return nil
	}
	if uint64(len(d.b)-d.off) < n {
		d.fail(what)
		return nil
	}
	if n == 0 {
		return nil
	}
	p := make([]byte, n)
	copy(p, d.b[d.off:])
	d.off += int(n)
	return p
}

// DecodePayload decodes one frame body back into the carrier payload.
// Round-tripping is the identity for every payload AppendPayload
// accepts (FuzzFrameCodec pins this).
func DecodePayload(body []byte) (any, error) {
	if len(body) == 0 {
		return nil, fmt.Errorf("transport: empty frame")
	}
	d := &decoder{b: body, off: 1}
	switch body[0] {
	case frameUpdate:
		b := decodeBlock(d)
		if d.err != nil {
			return nil, d.err
		}
		return replica.UpdateMsg{Parent: b.Parent, Block: b}, nil
	case frameInv:
		n := d.uvarint("inv count")
		if n > uint64(len(body)) { // each leaf costs ≥1 byte
			return nil, fmt.Errorf("transport: inventory count %d exceeds frame", n)
		}
		msg := replica.InvMsg{}
		for i := uint64(0); i < n && d.err == nil; i++ {
			msg.Leaves = append(msg.Leaves, core.BlockID(d.str("inv leaf")))
		}
		if d.err != nil {
			return nil, d.err
		}
		return msg, nil
	case frameReq:
		id := d.str("req id")
		if d.err != nil {
			return nil, d.err
		}
		return replica.ReqMsg{ID: core.BlockID(id)}, nil
	case frameSync:
		return replica.SyncMsg{}, nil
	default:
		return nil, fmt.Errorf("transport: unknown frame kind %d", body[0])
	}
}

func decodeBlock(d *decoder) *core.Block {
	b := &core.Block{}
	b.ID = core.BlockID(d.str("block id"))
	b.Parent = core.BlockID(d.str("block parent"))
	b.Height = int(d.varint("block height"))
	b.Creator = int(d.varint("block creator"))
	b.Round = int(d.varint("block round"))
	b.Weight = int(d.varint("block weight"))
	b.Payload = d.bytes("block payload")
	b.Token = d.str("block token")
	return b
}
