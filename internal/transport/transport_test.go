package transport

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/replica"
)

func TestQueueFIFOAndClose(t *testing.T) {
	q := newQueue[int]()
	for i := 0; i < 1000; i++ {
		if !q.push(i) {
			t.Fatalf("push %d rejected before close", i)
		}
	}
	for i := 0; i < 1000; i++ {
		v, ok := q.pop()
		if !ok || v != i {
			t.Fatalf("pop %d: got (%d, %v)", i, v, ok)
		}
	}
	q.push(42)
	q.close()
	if q.push(43) {
		t.Fatal("push accepted after close")
	}
	if v, ok := q.pop(); !ok || v != 42 {
		t.Fatalf("close dropped the queued element: (%d, %v)", v, ok)
	}
	if _, ok := q.pop(); ok {
		t.Fatal("pop succeeded on a drained closed queue")
	}
}

// carrierFIFO drives n0 → n1 with a burst of distinguishable frames and
// asserts per-pair FIFO delivery end to end.
func carrierFIFO(t *testing.T, name string) {
	t.Helper()
	const total = 500
	roster := NewRoster(2, nil, nil)
	tr, err := New(name, roster)
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()

	var mu sync.Mutex
	var got []core.BlockID
	done := make(chan struct{})
	if err := tr.Listen(0, func(Message) {}); err != nil {
		t.Fatal(err)
	}
	err = tr.Listen(1, func(m Message) {
		req, ok := m.Payload.(replica.ReqMsg)
		if !ok {
			t.Errorf("unexpected payload %T", m.Payload)
			return
		}
		mu.Lock()
		got = append(got, req.ID)
		if len(got) == total {
			close(done)
		}
		mu.Unlock()
	})
	if err != nil {
		t.Fatal(err)
	}
	for id := 0; id < 2; id++ {
		if err := tr.Dial(id); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < total; i++ {
		if err := tr.Send(0, 1, replica.ReqMsg{ID: core.BlockID(fmt.Sprintf("b%d", i))}); err != nil {
			t.Fatal(err)
		}
	}
	<-done
	mu.Lock()
	defer mu.Unlock()
	for i, id := range got {
		if want := core.BlockID(fmt.Sprintf("b%d", i)); id != want {
			t.Fatalf("delivery %d: got %s, want %s (FIFO broken)", i, id, want)
		}
	}
}

func TestChanNetFIFO(t *testing.T) { carrierFIFO(t, "chan") }
func TestTCPNetFIFO(t *testing.T)  { carrierFIFO(t, "tcp") }

// TestTCPNetRoundTrip sends a full update (block payload) both ways over
// real sockets and checks content fidelity plus the Stats counters.
func TestTCPNetRoundTrip(t *testing.T) {
	roster := NewRoster(2, nil, nil)
	tr, err := New("tcp", roster)
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()

	blk := core.NewBlock("b0", 1, 1, 7, []byte{9, 8, 7}).WithToken("tok(b0)")
	recv := make([]chan replica.UpdateMsg, 2)
	for id := 0; id < 2; id++ {
		id := id
		recv[id] = make(chan replica.UpdateMsg, 1)
		err := tr.Listen(id, func(m Message) {
			if up, ok := m.Payload.(replica.UpdateMsg); ok {
				recv[id] <- up
			}
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	for id := 0; id < 2; id++ {
		if err := tr.Dial(id); err != nil {
			t.Fatal(err)
		}
	}
	if err := tr.Send(0, 1, replica.UpdateMsg{Parent: blk.Parent, Block: blk}); err != nil {
		t.Fatal(err)
	}
	if err := tr.Send(1, 0, replica.UpdateMsg{Parent: blk.Parent, Block: blk}); err != nil {
		t.Fatal(err)
	}
	for id := 0; id < 2; id++ {
		up := <-recv[id]
		if up.Block.ID != blk.ID || up.Block.Token != blk.Token ||
			up.Block.Height != blk.Height || string(up.Block.Payload) != string(blk.Payload) {
			t.Fatalf("node %d: block mangled in transit: %+v", id, up.Block)
		}
	}
	if sent, delivered := tr.(*tcpNet).Stats(); sent != 2 || delivered != 2 {
		t.Fatalf("stats: sent=%d delivered=%d, want 2/2", sent, delivered)
	}
}

func TestNewRejectsUnknownCarrier(t *testing.T) {
	if _, err := New("smoke-signals", NewRoster(2, nil, nil)); err == nil {
		t.Fatal("unknown carrier accepted")
	}
}
