// Package transport runs the replicated BlockTree as a *live*
// deployment: N transport.Nodes, each hosting one replica.Process,
// exchanging update/anti-entropy messages over a real carrier instead
// of the deterministic simnet scheduler. Two carriers are provided —
// chanNet (in-process, per-node queues; the fast default) and tcpNet
// (length-prefixed frames over loopback TCP; see tcp.go) — behind one
// Transport interface, in the conode spirit: the same Process code
// runs identically under simulation and deployment, and the streaming
// consistency.Monitor checks the live history online through the same
// history.Sink plumbing the simulators use.
//
// Concurrency model: each Node is an actor. One event-loop goroutine
// owns the (deliberately not thread-safe) replica.Process; transport
// deliveries, client operations, and wall-clock timers are enqueued as
// events and executed serially by that loop. All nodes share one
// history.Recorder — its mutex makes it the sequencing collector that
// totally orders the ops the online monitor consumes.
package transport

import (
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/simnet"
	"repro/internal/tape"
)

// Message is one inter-node message in flight. It reuses the simnet
// envelope so replica handlers (simnet.Handler) run unchanged on live
// carriers.
type Message = simnet.Message

// Transport carries messages between the n nodes of a deployment with
// per-peer FIFO ordering: messages sent from a to b are delivered to b
// in send order (interleaving across senders is unconstrained). This
// is the "reliable FIFO channel" assumption of the paper's Section 5
// mappings, which the orphan-buffer bound and anti-entropy segment
// repair rely on.
type Transport interface {
	// Listen registers node id's delivery callback. recv must be
	// non-blocking (Nodes enqueue into an unbounded inbox); it may be
	// invoked from carrier goroutines.
	Listen(id int, recv func(Message)) error
	// Dial establishes id's outbound links to every peer. Call after
	// every node has Listened.
	Dial(id int) error
	// Send queues payload from one node to another (loopback included:
	// from == to delivers back to the sender, matching simnet).
	Send(from, to int, payload any) error
	// Broadcast sends payload from id to every node, itself included
	// (the loopback receive is how LRC Validity is recorded).
	Broadcast(from int, payload any) error
	// Close tears every link down and stops carrier goroutines.
	Close() error
	// Name identifies the carrier ("chan", "tcp") in results.
	Name() string
}

// Roster is the deployment's membership: one entry per node, replacing
// the simnet topology. Addr is carrier-specific ("" for chanNet,
// "host:port" for tcpNet); Merit is the node's α_p exactly as in the
// simulated runs.
type Roster struct {
	Peers []Peer
}

// Peer is one roster entry.
type Peer struct {
	ID    int
	Addr  string
	Merit tape.Merit
}

// NewRoster builds an n-node roster with the given normalized merits
// (nil means uniform) and optional addresses.
func NewRoster(n int, merits []tape.Merit, addrs []string) *Roster {
	r := &Roster{}
	for i := 0; i < n; i++ {
		p := Peer{ID: i, Merit: tape.Merit(1 / float64(n))}
		if i < len(merits) {
			p.Merit = merits[i]
		}
		if i < len(addrs) {
			p.Addr = addrs[i]
		}
		r.Peers = append(r.Peers, p)
	}
	return r
}

// N reports the roster size.
func (r *Roster) N() int { return len(r.Peers) }

// Merits returns the per-node merit column.
func (r *Roster) Merits() []tape.Merit {
	out := make([]tape.Merit, len(r.Peers))
	for i, p := range r.Peers {
		out[i] = p.Merit
	}
	return out
}

// New builds the named carrier for an n-node roster: "chan" (default
// when empty) or "tcp".
func New(name string, roster *Roster) (Transport, error) {
	switch name {
	case "", "chan":
		return newChanNet(roster.N()), nil
	case "tcp":
		return newTCPNet(roster)
	default:
		return nil, fmt.Errorf("transport: unknown carrier %q (known: chan, tcp)", name)
	}
}

// chanNet is the in-process carrier: Send looks up the receiver's
// callback and invokes it directly. FIFO per peer holds because each
// node's sends happen serially on its event loop, and the receiving
// callback is a mutex-guarded enqueue. No carrier goroutines exist —
// all concurrency lives in the node event loops.
type chanNet struct {
	mu        sync.RWMutex
	recv      []func(Message)
	closed    bool
	sent      atomic.Int64
	delivered atomic.Int64
}

func newChanNet(n int) *chanNet {
	return &chanNet{recv: make([]func(Message), n)}
}

func (c *chanNet) Name() string { return "chan" }

func (c *chanNet) Listen(id int, recv func(Message)) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if id < 0 || id >= len(c.recv) {
		return fmt.Errorf("transport: listen on unknown node %d", id)
	}
	c.recv[id] = recv
	return nil
}

func (c *chanNet) Dial(int) error { return nil }

func (c *chanNet) Send(from, to int, payload any) error {
	c.mu.RLock()
	defer c.mu.RUnlock()
	if c.closed {
		return fmt.Errorf("transport: send on closed carrier")
	}
	if to < 0 || to >= len(c.recv) {
		return fmt.Errorf("transport: send to unknown node %d", to)
	}
	fn := c.recv[to]
	if fn == nil {
		return fmt.Errorf("transport: node %d is not listening", to)
	}
	c.sent.Add(1)
	fn(Message{From: from, To: to, Payload: payload})
	c.delivered.Add(1)
	return nil
}

func (c *chanNet) Broadcast(from int, payload any) error {
	for to := range c.recv {
		if err := c.Send(from, to, payload); err != nil {
			return err
		}
	}
	return nil
}

func (c *chanNet) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.closed = true
	return nil
}

// Stats reports (sent, delivered) counters.
func (c *chanNet) Stats() (sent, delivered int64) {
	return c.sent.Load(), c.delivered.Load()
}

// queue is an unbounded MPSC FIFO. Unbounded is a correctness choice,
// not laziness: with bounded inboxes two node loops can deadlock
// sending into each other's full queues (the classic bounded-buffer
// cycle); unbounded queues keep Send non-blocking so the flood graph
// can never cycle-wait. Memory stays bounded in practice by the
// in-flight load. Node inboxes and TCP writer queues both build on it.
type queue[T any] struct {
	mu     sync.Mutex
	cond   *sync.Cond
	items  []T
	head   int
	closed bool
}

func newQueue[T any]() *queue[T] {
	q := &queue[T]{}
	q.cond = sync.NewCond(&q.mu)
	return q
}

// push enqueues e; returns false after close.
func (q *queue[T]) push(e T) bool {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		return false
	}
	q.items = append(q.items, e)
	q.cond.Signal()
	return true
}

// pop dequeues the next item, blocking until one arrives or the queue
// closes; ok is false only when the queue is closed and empty.
func (q *queue[T]) pop() (T, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	for q.head >= len(q.items) && !q.closed {
		q.cond.Wait()
	}
	if q.head >= len(q.items) {
		var zero T
		return zero, false
	}
	e := q.items[q.head]
	var zero T
	q.items[q.head] = zero // release references
	q.head++
	if q.head > 256 && q.head*2 >= len(q.items) {
		q.items = append(q.items[:0], q.items[q.head:]...)
		q.head = 0
	}
	return e, true
}

// close wakes the consumer; queued items still drain.
func (q *queue[T]) close() {
	q.mu.Lock()
	q.closed = true
	q.cond.Broadcast()
	q.mu.Unlock()
}

// depth reports the current queue length (diagnostics).
func (q *queue[T]) depth() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return len(q.items) - q.head
}
