package transport

import (
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/metrics"
)

// loadGen drives the client side of a deployment: Clients goroutines
// issuing append attempts and reads against the roster. Appends route
// to node 0 by default (the single-writer policy that keeps benign
// runs linear — and is mandatory for sequencer profiles); Spray
// round-robins them for genuine fork pressure. Each attempt is a
// synchronous Node.Do round trip, so the measured latency covers the
// full submit → event-loop → oracle → append/record path a client of
// the real system would observe.
type loadGen struct {
	cfg   LiveConfig
	prof  Profile
	nodes []*Node
	inst  loadInstruments

	// seq is the global attempt counter: unique per attempt, it is
	// the "round" the oracle hashes into block identity.
	seq atomic.Int64
	// granted counts successful appends toward the MaxAppends budget.
	granted atomic.Int64
	// attempts / reads are cross-client tallies.
	attempts atomic.Int64
	reads    atomic.Int64

	stop chan struct{}
	once sync.Once
}

// loadInstruments carries the mutex-guarded latency histograms the
// clients observe into.
type loadInstruments struct {
	appendHist *metrics.Histogram
	readHist   *metrics.Histogram
}

func newLoadGen(cfg LiveConfig, prof Profile, nodes []*Node, inst loadInstruments) *loadGen {
	return &loadGen{cfg: cfg, prof: prof, nodes: nodes, inst: inst, stop: make(chan struct{})}
}

// run drives the load phase to its Duration/MaxAppends bound and
// joins every client before returning.
func (g *loadGen) run() {
	var timer *time.Timer
	if g.cfg.Duration > 0 {
		timer = time.AfterFunc(g.cfg.Duration, g.halt)
		defer timer.Stop()
	}
	var wg sync.WaitGroup
	for c := 0; c < g.cfg.Clients; c++ {
		wg.Add(1)
		go func(client int) {
			defer wg.Done()
			g.client(client)
		}(c)
	}
	wg.Wait()
}

func (g *loadGen) halt() { g.once.Do(func() { close(g.stop) }) }

func (g *loadGen) halted() bool {
	select {
	case <-g.stop:
		return true
	default:
		return false
	}
}

// client is one generator loop: an append attempt, then
// ReadsPerAppend reads rotating across the roster, optionally paced
// to the target rate.
func (g *loadGen) client(client int) {
	var pacer *time.Ticker
	if g.cfg.Rate > 0 {
		pacer = time.NewTicker(time.Duration(float64(time.Second) / g.cfg.Rate))
		defer pacer.Stop()
	}
	readAt := client // rotate read targets, staggered per client
	for !g.halted() {
		if pacer != nil {
			select {
			case <-pacer.C:
			case <-g.stop:
				return
			}
		}
		seq := g.seq.Add(1)
		target := g.appendTarget(seq)
		if g.submitAppend(target, int(seq)) {
			if n := g.granted.Add(1); g.cfg.MaxAppends > 0 && n >= g.cfg.MaxAppends {
				g.halt()
			}
		}
		for r := 0; r < g.cfg.ReadsPerAppend && !g.halted(); r++ {
			readAt = (readAt + 1) % len(g.nodes)
			g.submitRead(g.nodes[readAt])
		}
	}
}

// appendTarget picks the node an attempt routes to. Sequencer
// profiles pin node 0 regardless of policy: only the ordering node
// may consume height tokens.
func (g *loadGen) appendTarget(seq int64) *Node {
	if g.prof.Sequencer || !g.cfg.Spray {
		return g.nodes[0]
	}
	return g.nodes[int(seq)%len(g.nodes)]
}

// submitAppend runs one oracle-backed append attempt on the target's
// event loop and reports whether a block was granted and appended.
func (g *loadGen) submitAppend(n *Node, seq int) bool {
	g.attempts.Add(1)
	t0 := time.Now()
	ok := false
	alive := n.Do(func() {
		if n.Proc.Down() {
			return // a crashed node accepts no operations
		}
		parent := n.Proc.SelectedHead()
		b := g.prof.Mint(n.ID, parent, seq)
		if b == nil {
			return // lottery lost: no operation recorded
		}
		ok = n.Proc.AppendLocal(b)
	})
	g.inst.appendHist.Observe(time.Since(t0).Microseconds())
	return alive && ok
}

// submitRead runs one read on the node's event loop (nil result at a
// crashed node; not counted).
func (g *loadGen) submitRead(n *Node) {
	t0 := time.Now()
	done := false
	n.Do(func() { done = n.Proc.Read() != nil })
	g.inst.readHist.Observe(time.Since(t0).Microseconds())
	if done {
		g.reads.Add(1)
	}
}

// totals reports (attempts, granted appends, completed reads).
func (g *loadGen) totals() (attempts, granted, reads int64) {
	return g.attempts.Load(), g.granted.Load(), g.reads.Load()
}
