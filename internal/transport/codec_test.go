package transport

import (
	"reflect"
	"testing"

	"repro/internal/core"
	"repro/internal/replica"
)

func testBlock() *core.Block {
	b := core.NewBlock("b12", 3, 2, 17, []byte{1, 2, 3, 4})
	return b.WithToken("tok(b12)")
}

func roundTrip(t *testing.T, payload any) any {
	t.Helper()
	buf, err := AppendPayload(nil, payload)
	if err != nil {
		t.Fatalf("encode %T: %v", payload, err)
	}
	out, err := DecodePayload(buf)
	if err != nil {
		t.Fatalf("decode %T: %v", payload, err)
	}
	return out
}

func TestCodecRoundTripUpdate(t *testing.T) {
	in := replica.UpdateMsg{Parent: "b12", Block: testBlock()}
	out, ok := roundTrip(t, in).(replica.UpdateMsg)
	if !ok {
		t.Fatalf("decoded wrong type")
	}
	if !reflect.DeepEqual(in.Block, out.Block) || in.Parent != out.Parent {
		t.Fatalf("update round trip: %+v != %+v", in, out)
	}
}

func TestCodecRoundTripInv(t *testing.T) {
	in := replica.InvMsg{Leaves: []core.BlockID{"b1", "b2", "b3"}}
	out := roundTrip(t, in).(replica.InvMsg)
	if !reflect.DeepEqual(in, out) {
		t.Fatalf("inv round trip: %+v != %+v", in, out)
	}
	// An empty inventory survives too.
	empty := roundTrip(t, replica.InvMsg{}).(replica.InvMsg)
	if len(empty.Leaves) != 0 {
		t.Fatalf("empty inv decoded leaves: %+v", empty)
	}
}

func TestCodecRoundTripReqAndSync(t *testing.T) {
	req := roundTrip(t, replica.ReqMsg{ID: "b7"}).(replica.ReqMsg)
	if req.ID != "b7" {
		t.Fatalf("req round trip: %+v", req)
	}
	if _, ok := roundTrip(t, replica.SyncMsg{}).(replica.SyncMsg); !ok {
		t.Fatalf("sync round trip lost its type")
	}
}

func TestCodecRejectsUnknownPayload(t *testing.T) {
	if _, err := AppendPayload(nil, 42); err == nil {
		t.Fatal("encoding an int should fail")
	}
	if _, err := DecodePayload([]byte{99, 0}); err == nil {
		t.Fatal("unknown frame kind should fail")
	}
	if _, err := DecodePayload(nil); err == nil {
		t.Fatal("empty frame should fail")
	}
}

func TestCodecTruncationFails(t *testing.T) {
	buf, err := AppendPayload(nil, replica.UpdateMsg{Parent: "b12", Block: testBlock()})
	if err != nil {
		t.Fatal(err)
	}
	for cut := 1; cut < len(buf); cut++ {
		if _, err := DecodePayload(buf[:cut]); err == nil {
			t.Fatalf("truncated frame of %d/%d bytes decoded", cut, len(buf))
		}
	}
}

// FuzzFrameCodec pins two invariants of the wire format: DecodePayload
// never panics on arbitrary bytes, and decode∘encode is the identity on
// every payload that decodes — re-encoding a decoded payload and
// decoding again yields the same payload. (Byte-identity of the frames
// themselves is not claimed: varint decoding accepts non-minimal
// encodings that re-encode canonically.)
func FuzzFrameCodec(f *testing.F) {
	seedPayloads := []any{
		replica.UpdateMsg{Parent: "b12", Block: testBlock()},
		replica.InvMsg{Leaves: []core.BlockID{"b1", "b2"}},
		replica.ReqMsg{ID: "b7"},
		replica.SyncMsg{},
	}
	for _, p := range seedPayloads {
		buf, err := AppendPayload(nil, p)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(buf)
	}
	f.Add([]byte{frameInv, 0xff, 0xff, 0xff, 0x7f})
	f.Fuzz(func(t *testing.T, data []byte) {
		payload, err := DecodePayload(data)
		if err != nil {
			return // invalid frames just error
		}
		re, err := AppendPayload(nil, payload)
		if err != nil {
			t.Fatalf("decoded payload %T does not re-encode: %v", payload, err)
		}
		again, err := DecodePayload(re)
		if err != nil {
			t.Fatalf("re-encoded frame does not decode: %v", err)
		}
		if !reflect.DeepEqual(payload, again) {
			t.Fatalf("decode∘encode not identity:\nfirst:  %#v\nsecond: %#v", payload, again)
		}
	})
}
