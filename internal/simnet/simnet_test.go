package simnet

import (
	"testing"
	"testing/quick"
)

func TestSimOrdering(t *testing.T) {
	s := NewSim(1)
	var got []int
	s.Schedule(5, func() { got = append(got, 3) })
	s.Schedule(1, func() { got = append(got, 1) })
	s.Schedule(3, func() { got = append(got, 2) })
	s.RunUntilIdle()
	if len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Fatalf("order %v", got)
	}
	if s.Now() != 5 {
		t.Fatalf("clock %d", s.Now())
	}
}

func TestSimFIFOAmongSameTime(t *testing.T) {
	s := NewSim(1)
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		s.Schedule(7, func() { got = append(got, i) })
	}
	s.RunUntilIdle()
	for i, v := range got {
		if v != i {
			t.Fatalf("same-time events reordered: %v", got)
		}
	}
}

func TestSimRunUntil(t *testing.T) {
	s := NewSim(1)
	ran := 0
	s.Schedule(5, func() { ran++ })
	s.Schedule(10, func() { ran++ })
	n := s.Run(7)
	if n != 1 || ran != 1 {
		t.Fatalf("Run(7) executed %d", ran)
	}
	if s.Now() != 7 {
		t.Fatalf("clock %d after Run(7)", s.Now())
	}
	if s.Pending() != 1 {
		t.Fatalf("pending %d", s.Pending())
	}
	s.RunUntilIdle()
	if ran != 2 || s.Steps() != 2 {
		t.Fatalf("final ran=%d steps=%d", ran, s.Steps())
	}
}

func TestSimNestedScheduling(t *testing.T) {
	s := NewSim(1)
	depth := 0
	var rec func()
	rec = func() {
		depth++
		if depth < 5 {
			s.Schedule(1, rec)
		}
	}
	s.Schedule(1, rec)
	s.RunUntilIdle()
	if depth != 5 {
		t.Fatalf("depth %d", depth)
	}
	if s.Now() != 5 {
		t.Fatalf("time %d", s.Now())
	}
}

func TestSimNegativeDelayClamped(t *testing.T) {
	s := NewSim(1)
	fired := false
	s.Schedule(3, func() {
		s.Schedule(-10, func() { fired = true })
	})
	s.RunUntilIdle()
	if !fired || s.Now() != 3 {
		t.Fatalf("fired=%v now=%d", fired, s.Now())
	}
}

func TestSimAt(t *testing.T) {
	s := NewSim(1)
	var at int64
	s.At(9, func() { at = s.Now() })
	s.RunUntilIdle()
	if at != 9 {
		t.Fatalf("At fired at %d", at)
	}
}

func TestDelayModels(t *testing.T) {
	rng := NewSim(3).RNG()
	sync5 := Synchronous{Delta: 5}
	for i := 0; i < 1000; i++ {
		d := sync5.Delay(rng, 0, 0, 1)
		if d < 1 || d > 5 {
			t.Fatalf("sync delay %d out of [1,5]", d)
		}
	}
	ps := PartialSynchrony{GST: 100, DeltaBefore: 50, DeltaAfter: 4}
	sawBig := false
	for i := 0; i < 1000; i++ {
		if ps.Delay(rng, 0, 0, 1) > 4 {
			sawBig = true
		}
	}
	if !sawBig {
		t.Fatal("pre-GST delays never exceeded the post-GST bound")
	}
	for i := 0; i < 1000; i++ {
		if d := ps.Delay(rng, 200, 0, 1); d < 1 || d > 4 {
			t.Fatalf("post-GST delay %d out of [1,4]", d)
		}
	}
	as := Asynchronous{P: 0.5}
	total := int64(0)
	for i := 0; i < 1000; i++ {
		total += as.Delay(rng, 0, 0, 1)
	}
	mean := float64(total) / 1000
	if mean < 1.5 || mean > 2.5 { // 1 + (1-p)/p = 2
		t.Fatalf("async mean delay %v, want ≈ 2", mean)
	}
}

func TestDelayModelNames(t *testing.T) {
	for _, m := range []DelayModel{Synchronous{5}, PartialSynchrony{10, 50, 5}, Asynchronous{0.2}} {
		if m.Name() == "" {
			t.Fatal("empty delay model name")
		}
	}
}

func TestNetworkDelivery(t *testing.T) {
	s := NewSim(5)
	nw := NewNetwork(s, 3, Synchronous{Delta: 4})
	var got []Message
	for i := 0; i < 3; i++ {
		nw.AddHandler(i, func(m Message) { got = append(got, m) })
	}
	nw.Send(0, 1, "hello")
	s.RunUntilIdle()
	if len(got) != 1 || got[0].From != 0 || got[0].To != 1 || got[0].Payload != "hello" {
		t.Fatalf("delivery %v", got)
	}
	sent, delivered, dropped := nw.Stats()
	if sent != 1 || delivered != 1 || dropped != 0 {
		t.Fatalf("stats %d/%d/%d", sent, delivered, dropped)
	}
}

func TestBroadcastIncludesSelfImmediately(t *testing.T) {
	s := NewSim(5)
	nw := NewNetwork(s, 3, Synchronous{Delta: 9})
	times := map[int]int64{}
	for i := 0; i < 3; i++ {
		i := i
		nw.AddHandler(i, func(Message) { times[i] = s.Now() })
	}
	s.Schedule(10, func() { nw.Broadcast(1, "x") })
	s.RunUntilIdle()
	if len(times) != 3 {
		t.Fatalf("delivered to %d of 3", len(times))
	}
	if times[1] != 10 {
		t.Fatalf("loopback at %d, want 10", times[1])
	}
	for p, tm := range times {
		if tm > 19 {
			t.Fatalf("delivery to %d at %d exceeds δ", p, tm)
		}
	}
}

func TestMultipleHandlersAllSee(t *testing.T) {
	s := NewSim(1)
	nw := NewNetwork(s, 1, nil)
	a, b := 0, 0
	nw.AddHandler(0, func(Message) { a++ })
	nw.AddHandler(0, func(Message) { b++ })
	nw.Send(0, 0, 1)
	s.RunUntilIdle()
	if a != 1 || b != 1 {
		t.Fatalf("handlers saw %d/%d", a, b)
	}
}

func TestDropRules(t *testing.T) {
	s := NewSim(7)
	nw := NewNetwork(s, 3, nil)
	var got []Message
	for i := 0; i < 3; i++ {
		nw.AddHandler(i, func(m Message) { got = append(got, m) })
	}
	nw.SetDrop(DropToProcess(2))
	nw.Send(0, 1, "a")
	nw.Send(0, 2, "b")
	nw.Send(1, 2, "c")
	s.RunUntilIdle()
	if len(got) != 1 || got[0].Payload != "a" {
		t.Fatalf("got %v", got)
	}
	_, _, dropped := nw.Stats()
	if dropped != 2 {
		t.Fatalf("dropped %d", dropped)
	}
}

func TestDropNth(t *testing.T) {
	rule := DropNth(1, DropToProcess(2))
	msgs := []Message{
		{From: 0, To: 2}, // 0th to p2: kept
		{From: 0, To: 1}, // not matching
		{From: 1, To: 2}, // 1st to p2: dropped
		{From: 0, To: 2}, // 2nd: kept
	}
	want := []bool{false, false, true, false}
	for i, m := range msgs {
		if rule(m) != want[i] {
			t.Fatalf("msg %d: drop=%v want %v", i, rule(m), want[i])
		}
	}
}

func TestDropNthDefaultsToAll(t *testing.T) {
	rule := DropNth(0, nil)
	if !rule(Message{}) {
		t.Fatal("0th message kept")
	}
	if rule(Message{}) {
		t.Fatal("1st message dropped")
	}
}

func TestDropFromProcess(t *testing.T) {
	rule := DropFromProcess(1)
	if !rule(Message{From: 1, To: 0}) || rule(Message{From: 0, To: 1}) {
		t.Fatal("DropFromProcess wrong")
	}
}

func TestLoopbackNeverDropped(t *testing.T) {
	s := NewSim(7)
	nw := NewNetwork(s, 2, nil)
	got := 0
	nw.AddHandler(0, func(Message) { got++ })
	nw.SetDrop(func(Message) bool { return true })
	nw.Send(0, 0, "self")
	s.RunUntilIdle()
	if got != 1 {
		t.Fatal("loopback dropped")
	}
}

func TestSetDropRandomDeterministic(t *testing.T) {
	run := func() int {
		s := NewSim(11)
		nw := NewNetwork(s, 2, nil)
		n := 0
		nw.AddHandler(1, func(Message) { n++ })
		nw.SetDropRandom(0.5)
		for i := 0; i < 100; i++ {
			nw.Send(0, 1, i)
		}
		s.RunUntilIdle()
		return n
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("random drops not reproducible: %d vs %d", a, b)
	}
	if a == 0 || a == 100 {
		t.Fatalf("drop rate degenerate: %d/100 delivered", a)
	}
}

func TestSendToUnknownPanics(t *testing.T) {
	s := NewSim(1)
	nw := NewNetwork(s, 2, nil)
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	nw.Send(0, 5, "x")
}

// Property: simulations are deterministic — the same seed yields the
// same event count and final clock for a randomized broadcast workload.
func TestQuickSimDeterminism(t *testing.T) {
	run := func(seed uint64) (int, int64) {
		s := NewSim(seed)
		nw := NewNetwork(s, 4, Synchronous{Delta: 6})
		count := 0
		for i := 0; i < 4; i++ {
			nw.AddHandler(i, func(Message) { count++ })
		}
		for i := 0; i < 20; i++ {
			from := i % 4
			s.Schedule(int64(i), func() { nw.Broadcast(from, i) })
		}
		s.RunUntilIdle()
		return count, s.Now()
	}
	f := func(seed uint64) bool {
		c1, t1 := run(seed)
		c2, t2 := run(seed)
		return c1 == c2 && t1 == t2 && c1 == 80
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestFIFOPreservesLinkOrder(t *testing.T) {
	s := NewSim(41)
	nw := NewNetwork(s, 2, Synchronous{Delta: 50}) // huge spread: reordering likely
	nw.SetFIFO(true)
	var got []int
	nw.AddHandler(1, func(m Message) { got = append(got, m.Payload.(int)) })
	for i := 0; i < 50; i++ {
		nw.Send(0, 1, i)
	}
	s.RunUntilIdle()
	if len(got) != 50 {
		t.Fatalf("delivered %d", len(got))
	}
	for i, v := range got {
		if v != i {
			t.Fatalf("FIFO violated at %d: %v", i, got[:i+1])
		}
	}
}

func TestNonFIFOCanReorder(t *testing.T) {
	s := NewSim(41)
	nw := NewNetwork(s, 2, Synchronous{Delta: 50})
	var got []int
	nw.AddHandler(1, func(m Message) { got = append(got, m.Payload.(int)) })
	for i := 0; i < 50; i++ {
		nw.Send(0, 1, i)
	}
	s.RunUntilIdle()
	reordered := false
	for i := 1; i < len(got); i++ {
		if got[i] < got[i-1] {
			reordered = true
		}
	}
	if !reordered {
		t.Skip("no reordering sampled at this seed (expected with Δ=50)")
	}
}

func TestFIFOIndependentLinks(t *testing.T) {
	// FIFO is per link: traffic on (0→1) must not delay (2→1).
	s := NewSim(43)
	nw := NewNetwork(s, 3, Synchronous{Delta: 40})
	nw.SetFIFO(true)
	var from2 []int64
	nw.AddHandler(1, func(m Message) {
		if m.From == 2 {
			from2 = append(from2, s.Now())
		}
	})
	for i := 0; i < 30; i++ {
		nw.Send(0, 1, i)
	}
	nw.Send(2, 1, 999)
	s.RunUntilIdle()
	if len(from2) != 1 {
		t.Fatalf("link 2→1 delivered %d", len(from2))
	}
	if from2[0] > 41 {
		t.Fatalf("independent link delayed to %d by foreign traffic", from2[0])
	}
}
