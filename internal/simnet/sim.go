// Package simnet is the message-passing substrate of Sections 4.2–4.3: a
// deterministic discrete-event simulator of an n-process system with
// configurable communication timing (synchronous with bound δ, partially
// synchronous with a global stabilization time, asynchronous), message
// loss injection, and Byzantine process support. Protocol simulators
// (internal/protocols) and the replicated BlockTree (internal/replica)
// run on top of it; the send/receive/update events they record are what
// the Update Agreement and LRC checkers examine.
//
// Time is virtual: a global fictional clock that processes cannot read
// (only the simulator harness schedules with it), exactly as the paper's
// model prescribes.
package simnet

import (
	"fmt"

	"repro/internal/tape"
)

// eventKind tags the payload of a scheduled event.
type eventKind uint8

const (
	// evTimer runs an arbitrary callback (harness scheduling).
	evTimer eventKind = iota
	// evDeliver delivers a message on a network (the hot path): the
	// payload is carried inline so Send/Broadcast allocate nothing.
	evDeliver
)

// event is one scheduled occurrence, stored by value in the heap. The
// payload is a tagged union: a timer callback or a message delivery.
// Keeping events flat (no per-event heap node, no delivery closure)
// is what makes the scheduler allocation-free on the message path —
// the pre-rewrite scheduler allocated a heap node plus a capturing
// closure per message (DESIGN.md ablation #6).
type event struct {
	time int64
	seq  int64 // tiebreaker: FIFO among same-time events
	kind eventKind
	fn   func()   // evTimer payload
	nw   *Network // evDeliver payload
	msg  Message  // evDeliver payload
}

// before is the scheduling order: virtual time, then submission order.
// (time, seq) is a total order — seq is unique — so the execution
// sequence is independent of heap internals.
func (e *event) before(o *event) bool {
	if e.time != o.time {
		return e.time < o.time
	}
	return e.seq < o.seq
}

// Sim is the discrete-event scheduler. It is single-threaded: callbacks
// run sequentially in virtual-time order, which makes every run
// reproducible from its seed.
type Sim struct {
	now     int64
	seq     int64
	pq      []event // binary min-heap ordered by (time, seq)
	rng     *tape.RNG
	stepped int
}

// NewSim creates a simulator whose randomness derives from seed.
func NewSim(seed uint64) *Sim {
	return &Sim{rng: tape.NewRNG(seed)}
}

// Now returns the current virtual time.
func (s *Sim) Now() int64 { return s.now }

// RNG returns the simulator's deterministic random stream.
func (s *Sim) RNG() *tape.RNG { return s.rng }

// Steps returns how many events have been executed.
func (s *Sim) Steps() int { return s.stepped }

// push inserts e into the heap (manual sift-up: no interface boxing,
// no per-event allocation beyond amortized slice growth).
func (s *Sim) push(e event) {
	s.pq = append(s.pq, e)
	i := len(s.pq) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !s.pq[i].before(&s.pq[parent]) {
			break
		}
		s.pq[i], s.pq[parent] = s.pq[parent], s.pq[i]
		i = parent
	}
}

// pop removes and returns the earliest event.
func (s *Sim) pop() event {
	top := s.pq[0]
	n := len(s.pq) - 1
	s.pq[0] = s.pq[n]
	s.pq[n] = event{} // release fn/nw/payload references
	s.pq = s.pq[:n]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		if l >= n {
			break
		}
		min := l
		if r < n && s.pq[r].before(&s.pq[l]) {
			min = r
		}
		if !s.pq[min].before(&s.pq[i]) {
			break
		}
		s.pq[i], s.pq[min] = s.pq[min], s.pq[i]
		i = min
	}
	return top
}

// schedule enqueues e after delay virtual-time units.
func (s *Sim) schedule(delay int64, e event) {
	if delay < 0 {
		delay = 0
	}
	s.seq++
	e.time = s.now + delay
	e.seq = s.seq
	s.push(e)
}

// Schedule runs fn after delay virtual time units (delay 0 runs at the
// current time, after already-queued same-time events).
func (s *Sim) Schedule(delay int64, fn func()) {
	s.schedule(delay, event{kind: evTimer, fn: fn})
}

// At schedules fn at absolute virtual time t (clamped to now).
func (s *Sim) At(t int64, fn func()) {
	d := t - s.now
	s.Schedule(d, fn)
}

// step pops and executes the earliest event.
func (s *Sim) step() {
	e := s.pop()
	s.now = e.time
	if e.kind == evDeliver {
		e.nw.deliver(e.msg)
	} else {
		e.fn()
	}
	s.stepped++
}

// Run executes events until the queue empties or the next event is later
// than until. It returns the number of events executed.
func (s *Sim) Run(until int64) int {
	n := 0
	for len(s.pq) > 0 && s.pq[0].time <= until {
		s.step()
		n++
	}
	if s.now < until {
		s.now = until
	}
	return n
}

// RunUntilIdle drains the event queue completely (the queue must be
// finite: every protocol run is bounded by construction).
func (s *Sim) RunUntilIdle() int {
	n := 0
	for len(s.pq) > 0 {
		s.step()
		n++
	}
	return n
}

// Pending returns the number of queued events.
func (s *Sim) Pending() int { return len(s.pq) }

// DelayModel decides the delivery delay of each message, defining the
// synchrony assumption of Section 4.2.
type DelayModel interface {
	// Delay returns the virtual-time delivery delay for a message
	// sent at time now from process from to process to.
	Delay(rng *tape.RNG, now int64, from, to int) int64
	Name() string
}

// Synchronous delivers every message within Delta: "messages sent by
// correct processes at time t are delivered by time t + δ". Delays are
// uniform in [1, Delta].
type Synchronous struct{ Delta int64 }

// Delay implements DelayModel.
func (m Synchronous) Delay(rng *tape.RNG, _ int64, _, _ int) int64 {
	if m.Delta <= 1 {
		return 1
	}
	return 1 + int64(rng.Intn(int(m.Delta)))
}

// Name returns e.g. "sync(δ=5)".
func (m Synchronous) Name() string { return fmt.Sprintf("sync(δ=%d)", m.Delta) }

// PartialSynchrony is the weakly synchronous model: before the (a priori
// unknown) global stabilization time GST, delays are uniform in
// [1, DeltaBefore]; from GST on, within DeltaAfter.
type PartialSynchrony struct {
	GST         int64
	DeltaBefore int64
	DeltaAfter  int64
}

// Delay implements DelayModel.
func (m PartialSynchrony) Delay(rng *tape.RNG, now int64, _, _ int) int64 {
	d := m.DeltaAfter
	if now < m.GST {
		d = m.DeltaBefore
	}
	if d <= 1 {
		return 1
	}
	return 1 + int64(rng.Intn(int(d)))
}

// Name returns e.g. "psync(GST=100,δ=5)".
func (m PartialSynchrony) Name() string {
	return fmt.Sprintf("psync(GST=%d,δ=%d)", m.GST, m.DeltaAfter)
}

// Asynchronous has no delivery bound: delays follow a geometric
// distribution with parameter P (mean 1/P), so any finite bound is
// exceeded with positive probability. P must be in (0, 1].
type Asynchronous struct{ P float64 }

// Delay implements DelayModel.
func (m Asynchronous) Delay(rng *tape.RNG, _ int64, _, _ int) int64 {
	p := m.P
	if p <= 0 || p > 1 {
		p = 0.2
	}
	return 1 + int64(rng.Geometric(p))
}

// Name returns e.g. "async(p=0.2)".
func (m Asynchronous) Name() string { return fmt.Sprintf("async(p=%g)", m.P) }
