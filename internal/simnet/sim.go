// Package simnet is the message-passing substrate of Sections 4.2–4.3: a
// deterministic discrete-event simulator of an n-process system with
// configurable communication timing (synchronous with bound δ, partially
// synchronous with a global stabilization time, asynchronous), message
// loss injection, and Byzantine process support. Protocol simulators
// (internal/protocols) and the replicated BlockTree (internal/replica)
// run on top of it; the send/receive/update events they record are what
// the Update Agreement and LRC checkers examine.
//
// Time is virtual: a global fictional clock that processes cannot read
// (only the simulator harness schedules with it), exactly as the paper's
// model prescribes.
package simnet

import (
	"container/heap"
	"fmt"

	"repro/internal/tape"
)

// event is one scheduled callback.
type event struct {
	time int64
	seq  int64 // tiebreaker: FIFO among same-time events
	fn   func()
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].time != h[j].time {
		return h[i].time < h[j].time
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(*event)) }
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return e
}

// Sim is the discrete-event scheduler. It is single-threaded: callbacks
// run sequentially in virtual-time order, which makes every run
// reproducible from its seed.
type Sim struct {
	now     int64
	seq     int64
	pq      eventHeap
	rng     *tape.RNG
	stepped int
}

// NewSim creates a simulator whose randomness derives from seed.
func NewSim(seed uint64) *Sim {
	return &Sim{rng: tape.NewRNG(seed)}
}

// Now returns the current virtual time.
func (s *Sim) Now() int64 { return s.now }

// RNG returns the simulator's deterministic random stream.
func (s *Sim) RNG() *tape.RNG { return s.rng }

// Steps returns how many events have been executed.
func (s *Sim) Steps() int { return s.stepped }

// Schedule runs fn after delay virtual time units (delay 0 runs at the
// current time, after already-queued same-time events).
func (s *Sim) Schedule(delay int64, fn func()) {
	if delay < 0 {
		delay = 0
	}
	s.seq++
	heap.Push(&s.pq, &event{time: s.now + delay, seq: s.seq, fn: fn})
}

// At schedules fn at absolute virtual time t (clamped to now).
func (s *Sim) At(t int64, fn func()) {
	d := t - s.now
	s.Schedule(d, fn)
}

// Run executes events until the queue empties or the next event is later
// than until. It returns the number of events executed.
func (s *Sim) Run(until int64) int {
	n := 0
	for len(s.pq) > 0 && s.pq[0].time <= until {
		e := heap.Pop(&s.pq).(*event)
		s.now = e.time
		e.fn()
		s.stepped++
		n++
	}
	if s.now < until {
		s.now = until
	}
	return n
}

// RunUntilIdle drains the event queue completely (the queue must be
// finite: every protocol run is bounded by construction).
func (s *Sim) RunUntilIdle() int {
	n := 0
	for len(s.pq) > 0 {
		e := heap.Pop(&s.pq).(*event)
		s.now = e.time
		e.fn()
		s.stepped++
		n++
	}
	return n
}

// Pending returns the number of queued events.
func (s *Sim) Pending() int { return len(s.pq) }

// DelayModel decides the delivery delay of each message, defining the
// synchrony assumption of Section 4.2.
type DelayModel interface {
	// Delay returns the virtual-time delivery delay for a message
	// sent at time now from process from to process to.
	Delay(rng *tape.RNG, now int64, from, to int) int64
	Name() string
}

// Synchronous delivers every message within Delta: "messages sent by
// correct processes at time t are delivered by time t + δ". Delays are
// uniform in [1, Delta].
type Synchronous struct{ Delta int64 }

// Delay implements DelayModel.
func (m Synchronous) Delay(rng *tape.RNG, _ int64, _, _ int) int64 {
	if m.Delta <= 1 {
		return 1
	}
	return 1 + int64(rng.Intn(int(m.Delta)))
}

// Name returns e.g. "sync(δ=5)".
func (m Synchronous) Name() string { return fmt.Sprintf("sync(δ=%d)", m.Delta) }

// PartialSynchrony is the weakly synchronous model: before the (a priori
// unknown) global stabilization time GST, delays are uniform in
// [1, DeltaBefore]; from GST on, within DeltaAfter.
type PartialSynchrony struct {
	GST         int64
	DeltaBefore int64
	DeltaAfter  int64
}

// Delay implements DelayModel.
func (m PartialSynchrony) Delay(rng *tape.RNG, now int64, _, _ int) int64 {
	d := m.DeltaAfter
	if now < m.GST {
		d = m.DeltaBefore
	}
	if d <= 1 {
		return 1
	}
	return 1 + int64(rng.Intn(int(d)))
}

// Name returns e.g. "psync(GST=100,δ=5)".
func (m PartialSynchrony) Name() string {
	return fmt.Sprintf("psync(GST=%d,δ=%d)", m.GST, m.DeltaAfter)
}

// Asynchronous has no delivery bound: delays follow a geometric
// distribution with parameter P (mean 1/P), so any finite bound is
// exceeded with positive probability. P must be in (0, 1].
type Asynchronous struct{ P float64 }

// Delay implements DelayModel.
func (m Asynchronous) Delay(rng *tape.RNG, _ int64, _, _ int) int64 {
	p := m.P
	if p <= 0 || p > 1 {
		p = 0.2
	}
	return 1 + int64(rng.Geometric(p))
}

// Name returns e.g. "async(p=0.2)".
func (m Asynchronous) Name() string { return fmt.Sprintf("async(p=%g)", m.P) }
