// Package simnet is the message-passing substrate of Sections 4.2–4.3: a
// deterministic discrete-event simulator of an n-process system with
// configurable communication timing (synchronous with bound δ, partially
// synchronous with a global stabilization time, asynchronous), message
// loss injection, and Byzantine process support. Protocol simulators
// (internal/protocols) and the replicated BlockTree (internal/replica)
// run on top of it; the send/receive/update events they record are what
// the Update Agreement and LRC checkers examine.
//
// Time is virtual: a global fictional clock that processes cannot read
// (only the simulator harness schedules with it), exactly as the paper's
// model prescribes.
package simnet

import (
	"fmt"

	"repro/internal/metrics"
	"repro/internal/tape"
	"repro/internal/trace"
)

// eventKind tags the payload of a scheduled event.
type eventKind uint8

const (
	// evTimer runs an arbitrary callback (harness scheduling).
	evTimer eventKind = iota
	// evDeliver delivers a message on a network (the hot path): the
	// payload is carried inline so Send/Broadcast allocate nothing.
	evDeliver
)

// event is one scheduled occurrence, stored by value in the heap. The
// payload is a tagged union: a timer callback or a message delivery.
// Keeping events flat (no per-event heap node, no delivery closure)
// is what makes the scheduler allocation-free on the message path —
// the pre-rewrite scheduler allocated a heap node plus a capturing
// closure per message (DESIGN.md ablation #6).
type event struct {
	time int64
	seq  int64 // tiebreaker: FIFO among same-time events
	kind eventKind
	fn   func()   // evTimer payload
	nw   *Network // evDeliver payload
	msg  Message  // evDeliver payload
}

// before is the scheduling order: virtual time, then submission order.
// (time, seq) is a total order — seq is unique — so the execution
// sequence is independent of heap internals.
func (e *event) before(o *event) bool {
	if e.time != o.time {
		return e.time < o.time
	}
	return e.seq < o.seq
}

// Sim is the discrete-event scheduler. By default it is single-threaded:
// callbacks run sequentially in virtual-time order, which makes every
// run reproducible from its seed. A network may enable sharded execution
// (Network.EnableSharding), which processes independent same-timestamp
// deliveries on worker goroutines while preserving the exact sequential
// order of every observable effect (see shard.go).
type Sim struct {
	now     int64
	seq     int64
	pq      []event // binary min-heap ordered by (time, seq)
	rng     *tape.RNG
	stepped int

	// eng, when non-nil, is the sharded execution engine installed by
	// Network.EnableSharding. The zero state (nil) is the plain serial
	// scheduler — the default, and the reference semantics the engine
	// must reproduce byte-for-byte.
	eng *engine

	// metrics/tracer, when non-nil, observe the run (observe.go). Both
	// are strictly passive: they never schedule, draw randomness, or
	// mutate simulation state. curSeq is the sequence number of the
	// event currently executing (or, during barrier commit, the tag of
	// the staged effect being replayed) — it stamps fault trace events
	// identically across shard counts.
	metrics *metrics.Registry
	tracer  *trace.Tracer
	curSeq  int64
}

// NewSim creates a simulator whose randomness derives from seed.
func NewSim(seed uint64) *Sim {
	return &Sim{rng: tape.NewRNG(seed)}
}

// Now returns the current virtual time.
func (s *Sim) Now() int64 { return s.now }

// RNG returns the simulator's deterministic random stream.
func (s *Sim) RNG() *tape.RNG { return s.rng }

// Steps returns how many events have been executed.
func (s *Sim) Steps() int { return s.stepped }

// heapPush inserts e into a (time, seq)-ordered binary min-heap stored
// in a plain slice (manual sift-up: no interface boxing, no per-event
// allocation beyond amortized slice growth). The global queue and the
// per-shard queues of the sharded engine share these two operations.
func heapPush(pq *[]event, e event) {
	h := append(*pq, e)
	i := len(h) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !h[i].before(&h[parent]) {
			break
		}
		h[i], h[parent] = h[parent], h[i]
		i = parent
	}
	*pq = h
}

// heapPop removes and returns the earliest event of a non-empty heap.
func heapPop(pq *[]event) event {
	h := *pq
	top := h[0]
	n := len(h) - 1
	h[0] = h[n]
	h[n] = event{} // release fn/nw/payload references
	h = h[:n]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		if l >= n {
			break
		}
		min := l
		if r < n && h[r].before(&h[l]) {
			min = r
		}
		if !h[min].before(&h[i]) {
			break
		}
		h[i], h[min] = h[min], h[i]
		i = min
	}
	*pq = h
	return top
}

// push routes e to its queue: the owning shard's heap when the sharded
// engine is active and the event is a delivery a shard may process
// concurrently, the global heap otherwise (timers, deliveries to
// processes with order-sensitive handlers, deliveries on non-sharded
// networks).
func (s *Sim) push(e event) {
	if s.eng != nil && e.kind == evDeliver && e.nw == s.eng.nw {
		if sh, ok := s.eng.nw.safeShard(e.msg.To); ok {
			heapPush(&s.eng.heaps[sh], e)
			return
		}
	}
	heapPush(&s.pq, e)
}

// pop removes and returns the earliest event of the global heap.
func (s *Sim) pop() event { return heapPop(&s.pq) }

// schedule enqueues e after delay virtual-time units.
func (s *Sim) schedule(delay int64, e event) {
	if delay < 0 {
		delay = 0
	}
	s.seq++
	e.time = s.now + delay
	e.seq = s.seq
	s.push(e)
}

// Schedule runs fn after delay virtual time units (delay 0 runs at the
// current time, after already-queued same-time events). It must not be
// called from a shard-safe delivery handler (AddShardSafeHandler):
// timer creation is order-sensitive engine state, so handlers that
// schedule must stay on the serial path (plain AddHandler).
func (s *Sim) Schedule(delay int64, fn func()) {
	if s.eng != nil && s.eng.inParallel {
		panic("simnet: Schedule called from a shard-safe handler; register it with AddHandler instead")
	}
	s.schedule(delay, event{kind: evTimer, fn: fn})
}

// At schedules fn at absolute virtual time t (clamped to now).
func (s *Sim) At(t int64, fn func()) {
	d := t - s.now
	s.Schedule(d, fn)
}

// step pops and executes the earliest event.
func (s *Sim) step() {
	e := s.pop()
	s.now = e.time
	s.curSeq = e.seq
	if s.tracer != nil {
		s.traceExec(&e)
	}
	if e.kind == evDeliver {
		e.nw.deliver(e.msg)
	} else {
		e.fn()
	}
	s.stepped++
}

// Run executes events until the queue empties or the next event is later
// than until. It returns the number of events executed.
func (s *Sim) Run(until int64) int {
	if s.eng != nil {
		return s.eng.run(until, true)
	}
	n := 0
	for len(s.pq) > 0 && s.pq[0].time <= until {
		if s.metrics != nil {
			s.metrics.Tick(s.pq[0].time)
		}
		s.step()
		n++
	}
	if s.now < until {
		s.now = until
	}
	if s.metrics != nil {
		s.metrics.Tick(until)
	}
	return n
}

// RunUntilIdle drains the event queue completely (the queue must be
// finite: every protocol run is bounded by construction).
func (s *Sim) RunUntilIdle() int {
	if s.eng != nil {
		return s.eng.run(maxTime, false)
	}
	n := 0
	for len(s.pq) > 0 {
		if s.metrics != nil {
			s.metrics.Tick(s.pq[0].time)
		}
		s.step()
		n++
	}
	return n
}

// Pending returns the number of queued events.
func (s *Sim) Pending() int {
	n := len(s.pq)
	if s.eng != nil {
		for i := range s.eng.heaps {
			n += len(s.eng.heaps[i])
		}
	}
	return n
}

// DelayModel decides the delivery delay of each message, defining the
// synchrony assumption of Section 4.2.
type DelayModel interface {
	// Delay returns the virtual-time delivery delay for a message
	// sent at time now from process from to process to.
	Delay(rng *tape.RNG, now int64, from, to int) int64
	Name() string
}

// Synchronous delivers every message within Delta: "messages sent by
// correct processes at time t are delivered by time t + δ". Delays are
// uniform in [1, Delta].
type Synchronous struct{ Delta int64 }

// Delay implements DelayModel.
func (m Synchronous) Delay(rng *tape.RNG, _ int64, _, _ int) int64 {
	if m.Delta <= 1 {
		return 1
	}
	return 1 + int64(rng.Intn(int(m.Delta)))
}

// Name returns e.g. "sync(δ=5)".
func (m Synchronous) Name() string { return fmt.Sprintf("sync(δ=%d)", m.Delta) }

// PartialSynchrony is the weakly synchronous model: before the (a priori
// unknown) global stabilization time GST, delays are uniform in
// [1, DeltaBefore]; from GST on, within DeltaAfter.
type PartialSynchrony struct {
	GST         int64
	DeltaBefore int64
	DeltaAfter  int64
}

// Delay implements DelayModel.
func (m PartialSynchrony) Delay(rng *tape.RNG, now int64, _, _ int) int64 {
	d := m.DeltaAfter
	if now < m.GST {
		d = m.DeltaBefore
	}
	if d <= 1 {
		return 1
	}
	return 1 + int64(rng.Intn(int(d)))
}

// Name returns e.g. "psync(GST=100,δ=5)".
func (m PartialSynchrony) Name() string {
	return fmt.Sprintf("psync(GST=%d,δ=%d)", m.GST, m.DeltaAfter)
}

// Asynchronous has no delivery bound: delays follow a geometric
// distribution with parameter P (mean 1/P), so any finite bound is
// exceeded with positive probability. P must be in (0, 1].
type Asynchronous struct{ P float64 }

// Delay implements DelayModel.
func (m Asynchronous) Delay(rng *tape.RNG, _ int64, _, _ int) int64 {
	p := m.P
	if p <= 0 || p > 1 {
		p = 0.2
	}
	return 1 + int64(rng.Geometric(p))
}

// Name returns e.g. "async(p=0.2)".
func (m Asynchronous) Name() string { return fmt.Sprintf("async(p=%g)", m.P) }
