package simnet

import (
	"fmt"

	"repro/internal/metrics"
	"repro/internal/trace"
)

// This file wires the scheduler and network into the observability
// layer (internal/metrics, internal/trace). The wiring is strictly
// read-only with respect to simulation state: attaching a registry or
// tracer changes no event order, no RNG draw, no counter the digest
// covers — pinned by the metrics-conformance tests.
//
// Determinism of what is observed:
//
//   - Metric sampling happens at virtual-time boundaries, driven by
//     Tick calls placed before event execution in the serial loop and
//     before each timestamp in the sharded loop. Both place every
//     boundary crossing at the identical event-set state, so sampled
//     series are byte-identical across shard counts.
//   - Trace sampling is keyed on the scheduler sequence number, which
//     the sharded engine reproduces exactly (commit replays staged
//     sends through the serial path). Events from parallel workers are
//     staged per shard and merged by seq at the barrier. The only
//     non-deterministic trace payload is the wall-clock nanosecond
//     field of merge-stall events.

// SetMetrics attaches a metrics registry: the scheduler drives its
// virtual-time sampler and registers its own probes (event-queue depth,
// executed steps). Call before the run starts.
func (s *Sim) SetMetrics(reg *metrics.Registry) {
	s.metrics = reg
	reg.SetClock(s.Now)
	reg.Probe("sim.queue", func() int64 { return int64(s.Pending()) })
	reg.Probe("sim.steps", func() int64 { return int64(s.stepped) })
}

// Metrics returns the attached registry (nil when none).
func (s *Sim) Metrics() *metrics.Registry { return s.metrics }

// SetTrace attaches a tracer. Call after EnableSharding (or before —
// EnableSharding re-sizes the staging areas) and before the run starts.
func (s *Sim) SetTrace(tr *trace.Tracer) {
	s.tracer = tr
	if s.eng != nil {
		tr.SetShards(s.eng.k)
	}
}

// Tracer returns the attached tracer (nil when none).
func (s *Sim) Tracer() *trace.Tracer { return s.tracer }

// traceExec records the execution of an event on the serial path
// (shard −1 renders in the scheduler lane).
func (s *Sim) traceExec(e *event) {
	tr := s.tracer
	if e.kind == evDeliver {
		if tr.Sampled(trace.KDeliver, e.seq) {
			tr.Emit(trace.Event{VT: e.time, Seq: e.seq, Kind: trace.KDeliver, Shard: -1, P: e.msg.To})
		}
	} else if tr.Sampled(trace.KTimer, e.seq) {
		tr.Emit(trace.Event{VT: e.time, Seq: e.seq, Kind: trace.KTimer, Shard: -1, P: -1})
	}
}

// RegisterMetrics registers the network's probes — cumulative send /
// delivery / drop counts (deliveries per virtual second fall out of the
// sampled series) — and, when the sharded engine is installed, its
// per-shard utilization tallies and the snapshot's Sharding section.
func (nw *Network) RegisterMetrics(reg *metrics.Registry) {
	reg.Probe("net.sent", func() int64 { return int64(nw.sent) })
	reg.Probe("net.delivered", func() int64 { return int64(nw.delivered) })
	reg.Probe("net.dropped", func() int64 { return int64(nw.dropped) })
	if eng := nw.eng; eng != nil {
		eng.shardDelivered = make([]int64, eng.k)
		reg.OnSnapshot(func(s *metrics.Snapshot) {
			s.Sharding = &metrics.ShardInfo{
				Shards:    eng.k,
				Batches:   eng.batches,
				Delivered: append([]int64(nil), eng.shardDelivered...),
			}
		})
	}
}

// traceFault records a fault taking effect. Seq is the scheduler
// sequence number of the event whose execution produced the fault
// (identical across shard counts: staged effects replay under their
// spawning tag).
func (nw *Network) traceFault(t int64, kind string, from, to int) {
	nw.sim.tracer.Emit(trace.Event{
		VT: t, Seq: nw.sim.curSeq, Kind: trace.KFault, Shard: -1, P: to,
		Detail: fmt.Sprintf("%s %d->%d", kind, from, to),
	})
}
