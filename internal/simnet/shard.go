package simnet

import (
	"fmt"
	"math"
	"sync"
	"time"

	"repro/internal/trace"
)

// This file implements the sharded execution engine: the scheduler's
// event heap is partitioned by replica group, K worker goroutines
// process intra-shard deliveries of one virtual timestamp concurrently,
// and every order-sensitive side effect is staged and committed at a
// deterministic merge barrier — in exactly the order the serial
// scheduler would have produced it. The digest-pinned test suite is the
// specification: a run with shards=k must be byte-identical to the same
// run with shards=1 (SCALING.md states the full argument).
//
// The partitioning is deterministic (cf. the Bobpp deterministic
// task-partitioning approach): process p belongs to shard p·k/n, a
// fixed contiguous assignment independent of load or thread timing.
//
// Why correctness holds, in one paragraph: two deliveries at the same
// virtual timestamp addressed to different processes cannot observe
// each other — handler state is process-local by the shard-safety
// contract — so executing them concurrently is equivalent to executing
// them in (time, seq) order PROVIDED their shared side effects (message
// sends with their RNG delay draws and sequence assignments, fault-log
// appends, history recording) happen in (time, seq) order. The engine
// guarantees exactly that: during a parallel phase those effects are
// buffered per shard, tagged with the spawning event's globally unique
// sequence number, and replayed at the barrier in tag order through the
// very same code path the serial scheduler uses. Timers and deliveries
// to processes with order-sensitive handlers (plain AddHandler — the
// consensus engines) never enter a shard heap at all: they interleave
// serially between batches under the same (time, seq) rule.

// maxTime is the RunUntilIdle horizon.
const maxTime = math.MaxInt64

// stagedKind tags one deferred side effect.
type stagedKind uint8

const (
	// stSend replays a Network.Send at the barrier (the send's drop
	// decision, RNG delay draw, FIFO/schedule resolution and sequence
	// assignment all happen at commit time, in serial order).
	stSend stagedKind = iota
	// stNote appends a fault event to the network's fault log.
	stNote
)

// stagedItem is one deferred side effect, ordered by the sequence
// number of the delivery event whose handler produced it.
type stagedItem struct {
	tag      int64
	kind     stagedKind
	from, to int
	payload  any
	note     FaultEvent
}

// shardState is the per-shard staging area. During a parallel phase it
// is written by exactly one worker goroutine (the shard's), so no
// locking is needed; the coordinator reads it only after the barrier.
type shardState struct {
	// curTag is the sequence number of the delivery currently being
	// processed by this shard's worker. Network.ShardContext exposes it
	// so the history recorder can tag staged communication events.
	curTag int64
	items  []stagedItem
	pos    int // commit cursor
	// delivered/dropped accumulate this batch's counter increments
	// (summed into the network at the barrier; sums are order-free).
	delivered, dropped int
}

// engine is the sharded scheduler state, owned by one Sim + Network
// pair. It is created by Network.EnableSharding and drives Run /
// RunUntilIdle when installed.
type engine struct {
	sim *Sim
	nw  *Network
	k   int

	// heaps are the per-shard delivery queues; scratch holds the
	// current batch per shard (reused across batches).
	heaps   [][]event
	scratch [][]event
	stages  []shardState

	// inParallel is true while worker goroutines run. It is written by
	// the coordinator strictly before starting workers and after
	// waiting for them, so reads from workers are race-free; it guards
	// Sim.Schedule and routes Send/NoteFault/RecordComm into staging.
	inParallel bool

	// onBarrier hooks run after every batch commit (the history
	// recorder flushes its staged communication events here).
	onBarrier []func()

	// batches counts parallel batches run; shardDelivered, when metrics
	// are attached, tallies staged deliveries per shard across the run
	// (both feed the snapshot's k-specific Sharding section, never the
	// digest-covered core).
	batches        int64
	shardDelivered []int64
}

// newEngine builds the engine for k shards over nw.
func newEngine(nw *Network, k int) *engine {
	return &engine{
		sim:     nw.sim,
		nw:      nw,
		k:       k,
		heaps:   make([][]event, k),
		scratch: make([][]event, k),
		stages:  make([]shardState, k),
	}
}

// nextTime returns the earliest queued timestamp across the global heap
// and every shard heap, and whether any event is queued at all.
func (eng *engine) nextTime() (int64, bool) {
	t := int64(maxTime)
	ok := false
	if len(eng.sim.pq) > 0 {
		t, ok = eng.sim.pq[0].time, true
	}
	for i := range eng.heaps {
		if h := eng.heaps[i]; len(h) > 0 && (!ok || h[0].time < t) {
			t, ok = h[0].time, true
		}
	}
	return t, ok
}

// run is the sharded main loop: advance timestamp by timestamp until
// the horizon, processing each timestamp's events in batches. bump
// mirrors Run's clock semantics (RunUntilIdle does not advance the
// clock past the last event).
func (eng *engine) run(until int64, bump bool) int {
	n := 0
	for {
		t, ok := eng.nextTime()
		if !ok || t > until {
			break
		}
		if eng.sim.metrics != nil {
			eng.sim.metrics.Tick(t)
		}
		// stepped advances per timestamp so the sim.steps probe reads
		// the same value at every sample boundary as the serial loop
		// (boundaries are always crossed between timestamps).
		k := eng.runTimestamp(t)
		eng.sim.stepped += k
		n += k
	}
	if bump && eng.sim.now < until {
		eng.sim.now = until
	}
	if eng.sim.metrics != nil && until != maxTime {
		eng.sim.metrics.Tick(until)
	}
	return n
}

// runTimestamp executes every event at virtual time t, preserving the
// serial (time, seq) execution order observably. Within the timestamp
// it alternates between parallel batches (shard-heap deliveries whose
// sequence numbers all precede the next global event) and single
// serial global events (timers, deliveries to order-sensitive
// handlers). Effects of an event — including delay-0 loopback sends
// landing back at time t — carry later sequence numbers and are picked
// up by a later iteration, exactly as the serial scheduler interleaves
// them.
func (eng *engine) runTimestamp(t int64) int {
	s := eng.sim
	s.now = t
	n := 0
	for {
		// gseq fences the batch: only shard deliveries ordered before
		// the next global event may run concurrently now.
		gseq := int64(math.MaxInt64)
		if len(s.pq) > 0 && s.pq[0].time == t {
			gseq = s.pq[0].seq
		}
		batch := 0
		for sh := range eng.heaps {
			eng.scratch[sh] = eng.scratch[sh][:0]
			h := &eng.heaps[sh]
			for len(*h) > 0 && (*h)[0].time == t && (*h)[0].seq < gseq {
				eng.scratch[sh] = append(eng.scratch[sh], heapPop(h))
				batch++
			}
		}
		if batch > 0 {
			eng.runBatch()
			n += batch
			continue
		}
		if gseq != math.MaxInt64 {
			// No shard delivery precedes the global event: run it
			// serially with immediate effects (the shards=1 path).
			e := heapPop(&s.pq)
			s.curSeq = e.seq
			if s.tracer != nil {
				s.traceExec(&e)
			}
			if e.kind == evDeliver {
				e.nw.deliver(e.msg)
			} else {
				e.fn()
			}
			n++
			continue
		}
		return n
	}
}

// runBatch processes the collected scratch batch: one worker per
// non-empty shard, each delivering its shard's events in sequence
// order with side effects staged, then a barrier committing every
// staged effect in global sequence order. A batch touching only one
// shard still runs on the staging path — the code path must not depend
// on how the batch happened to distribute, only on event order.
func (eng *engine) runBatch() {
	eng.batches++
	tr := eng.sim.tracer
	if tr != nil {
		tr.Emit(trace.Event{VT: eng.sim.now, Seq: eng.batches, Kind: trace.KEpoch, Shard: -1})
	}
	eng.inParallel = true
	var wg sync.WaitGroup
	var panicked any
	var panicMu sync.Mutex
	for sh := range eng.scratch {
		evs := eng.scratch[sh]
		if len(evs) == 0 {
			continue
		}
		wg.Add(1)
		go func(sh int, evs []event) {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					panicMu.Lock()
					if panicked == nil {
						panicked = r
					}
					panicMu.Unlock()
				}
			}()
			st := &eng.stages[sh]
			for i := range evs {
				st.curTag = evs[i].seq
				if tr != nil && tr.Sampled(trace.KDeliver, evs[i].seq) {
					tr.EmitStaged(sh, trace.Event{VT: evs[i].time, Seq: evs[i].seq, Kind: trace.KDeliver, Shard: sh, P: evs[i].msg.To})
				}
				eng.nw.deliverSharded(evs[i].msg, sh, st)
			}
		}(sh, evs)
	}
	// The merge-barrier stall — the coordinator blocked on the slowest
	// worker — is the sharded scheduler's headline overhead; measure it
	// only when someone is looking (wall time is non-deterministic and
	// stays out of the digest-covered sections).
	measure := eng.sim.metrics != nil || tr != nil
	var start time.Time
	if measure {
		start = time.Now()
	}
	wg.Wait()
	eng.inParallel = false
	if panicked != nil {
		panic(panicked)
	}
	if measure {
		stall := int64(time.Since(start))
		if eng.sim.metrics != nil {
			eng.sim.metrics.AddTiming("merge.stall.ns", stall)
		}
		if tr != nil {
			tr.Emit(trace.Event{VT: eng.sim.now, Seq: eng.batches, Kind: trace.KStall, Shard: -1, Wall: stall})
		}
	}
	eng.commit()
}

// commit replays the staged side effects of the finished batch in
// global order: a k-way merge of the per-shard item lists by tag
// (within one shard, items are already in tag-then-program order).
// Staged sends go through the real Send path here, so drop rules, RNG
// delay draws, FIFO bumps and sequence assignment all happen in the
// serial order — the sequence numbers a shards=1 run would assign are
// reproduced exactly, not merely equivalently.
func (eng *engine) commit() {
	for {
		best, bestTag := -1, int64(0)
		for sh := range eng.stages {
			st := &eng.stages[sh]
			if st.pos < len(st.items) {
				if tag := st.items[st.pos].tag; best < 0 || tag < bestTag {
					best, bestTag = sh, tag
				}
			}
		}
		if best < 0 {
			break
		}
		st := &eng.stages[best]
		it := &st.items[st.pos]
		st.pos++
		// Replayed effects execute under their spawning delivery's seq,
		// so fault trace events are stamped as a serial run would.
		eng.sim.curSeq = it.tag
		switch it.kind {
		case stSend:
			eng.nw.sendNow(it.from, it.to, it.payload)
		case stNote:
			eng.nw.faultLog = append(eng.nw.faultLog, it.note)
		}
	}
	for sh := range eng.stages {
		st := &eng.stages[sh]
		eng.nw.delivered += st.delivered
		eng.nw.dropped += st.dropped
		if eng.shardDelivered != nil {
			eng.shardDelivered[sh] += int64(st.delivered)
		}
		for i := range st.items {
			st.items[i] = stagedItem{} // release payload references
		}
		st.items = st.items[:0]
		st.pos, st.delivered, st.dropped = 0, 0, 0
	}
	if tr := eng.sim.tracer; tr != nil {
		tr.Commit()
	}
	for _, hook := range eng.onBarrier {
		hook()
	}
}

// shardOf maps a process to its owning shard: fixed contiguous ranges,
// so neighbouring replicas share a shard and the assignment is
// independent of scheduling.
func (eng *engine) shardOf(p int) int {
	return p * eng.k / eng.nw.n
}

// EnableSharding partitions this network's deliveries across k shards
// processed by worker goroutines (k ≤ 1 is a no-op: the serial
// scheduler). It must be called on at most one network per Sim, after
// the network's handlers are registered and before the run starts.
// Deliveries to processes that registered a plain AddHandler stay on
// the serial path (see AddShardSafeHandler for the safety contract),
// so consensus-style engines are correct — just not accelerated.
//
// Sharded runs are specified to be byte-identical to serial runs:
// every pinned digest must be preserved for any k.
func (nw *Network) EnableSharding(k int) {
	if k > nw.n {
		k = nw.n
	}
	if k <= 1 {
		return
	}
	if nw.sim.eng != nil {
		if nw.sim.eng.nw == nw {
			return
		}
		panic("simnet: EnableSharding on two networks of one Sim")
	}
	eng := newEngine(nw, k)
	nw.eng = eng
	nw.sim.eng = eng
	if tr := nw.sim.tracer; tr != nil {
		tr.SetShards(k)
	}
}

// Shards reports the number of shards in use (1 = serial scheduler).
func (nw *Network) Shards() int {
	if nw.eng == nil {
		return 1
	}
	return nw.eng.k
}

// OnBarrier registers a hook to run after every batch commit, in
// registration order. The history recorder uses it to flush staged
// communication events in global order.
func (nw *Network) OnBarrier(fn func()) {
	if nw.eng == nil {
		panic("simnet: OnBarrier without EnableSharding")
	}
	nw.eng.onBarrier = append(nw.eng.onBarrier, fn)
}

// ShardContext reports, for a process performing work right now,
// whether a parallel phase is active and under which (shard, tag) its
// order-sensitive effects must be staged. The history recorder calls
// it on every RecordComm; outside parallel phases ok is false and the
// caller records directly. The tag is the sequence number of the
// delivery event being handled — the global-order position every
// staged effect of that delivery inherits.
func (nw *Network) ShardContext(p int) (shard int, tag int64, ok bool) {
	eng := nw.eng
	if eng == nil || !eng.inParallel {
		return 0, 0, false
	}
	sh := eng.shardOf(p)
	return sh, eng.stages[sh].curTag, true
}

// safeShard returns the shard owning process p, and whether deliveries
// to p may be processed concurrently (no order-sensitive handler).
func (nw *Network) safeShard(p int) (int, bool) {
	if nw.eng == nil || (p < len(nw.serialOnly) && nw.serialOnly[p]) {
		return 0, false
	}
	return nw.eng.shardOf(p), true
}

// deliverSharded is deliver for the parallel phase: counters and
// crash-loss fault events are staged instead of applied, and handlers
// run under the shard-safety contract.
func (nw *Network) deliverSharded(m Message, sh int, st *shardState) {
	if nw.sched.DownAt(nw.sim.now, m.To) {
		st.dropped++
		if nw.logFaults {
			st.items = append(st.items, stagedItem{
				tag: st.curTag, kind: stNote,
				note: FaultEvent{Time: nw.sim.now, Kind: "crashloss", From: m.From, To: m.To},
			})
		}
		if tr := nw.sim.tracer; tr != nil {
			tr.EmitStaged(sh, trace.Event{
				VT: nw.sim.now, Seq: st.curTag, Kind: trace.KFault, Shard: sh, P: m.To,
				Detail: fmt.Sprintf("crashloss %d->%d", m.From, m.To),
			})
		}
		return
	}
	st.delivered++
	for _, h := range nw.handlers[m.To] {
		h(m)
	}
}

// AddShardSafeHandler registers a delivery handler that the sharded
// engine may run concurrently with handlers of processes in other
// shards. The handler must uphold the shard-safety contract:
//
//   - touch only process-local state (process p's own replica, maps,
//     counters) plus internally synchronized first-writer-wins
//     structures (the history chain table, the creator registry);
//   - send and record only on behalf of its own process (from == p),
//     so staged effects are attributed to the right shard;
//   - never call Sim.Schedule (timer creation is order-sensitive; the
//     engine panics if a shard-safe handler tries).
//
// Handlers that cannot promise this — consensus round engines with
// shared vote state, handlers that schedule timeouts — use the plain
// AddHandler, which pins all of the process's deliveries to the serial
// path. Mixing both on one process is safe: one plain handler makes
// the whole process serial.
func (nw *Network) AddShardSafeHandler(p int, h Handler) {
	nw.handlers[p] = append(nw.handlers[p], h)
}

// markSerialOnly pins process p's deliveries to the serial path, and
// migrates any delivery already queued in a shard heap back to the
// global heap (preserving its (time, seq) position), so AddHandler
// stays correct in any order relative to EnableSharding.
func (nw *Network) markSerialOnly(p int) {
	if nw.serialOnly == nil {
		nw.serialOnly = make([]bool, nw.n)
	}
	nw.serialOnly[p] = true
	if eng := nw.eng; eng != nil {
		sh := eng.shardOf(p)
		h := eng.heaps[sh]
		kept := h[:0]
		var moved []event
		for _, e := range h {
			if e.msg.To == p {
				moved = append(moved, e)
			} else {
				kept = append(kept, e)
			}
		}
		if len(moved) > 0 {
			// Rebuild the shard heap without p's events, then re-push
			// them (with their original time and seq) onto the global
			// heap: the (time, seq) total order is preserved.
			rebuilt := make([]event, 0, len(kept))
			for _, e := range kept {
				heapPush(&rebuilt, e)
			}
			eng.heaps[sh] = rebuilt
			for _, e := range moved {
				heapPush(&nw.sim.pq, e)
			}
		}
	}
}

// String renders the engine state for debugging.
func (eng *engine) String() string {
	q := 0
	for i := range eng.heaps {
		q += len(eng.heaps[i])
	}
	return fmt.Sprintf("engine(k=%d, %d sharded events queued)", eng.k, q)
}
