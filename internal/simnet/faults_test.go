package simnet

import (
	"testing"
)

// collect returns a network of n procs whose deliveries are appended
// (with timestamps) to the returned slice.
func collect(t *testing.T, sim *Sim, n int) (*Network, *[]struct {
	At       int64
	From, To int
}) {
	t.Helper()
	nw := NewNetwork(sim, n, Synchronous{Delta: 1})
	var got []struct {
		At       int64
		From, To int
	}
	for p := 0; p < n; p++ {
		nw.AddHandler(p, func(m Message) {
			got = append(got, struct {
				At       int64
				From, To int
			}{sim.Now(), m.From, m.To})
		})
	}
	return nw, &got
}

func TestPartitionDefersUntilHeal(t *testing.T) {
	sim := NewSim(1)
	nw, got := collect(t, sim, 4)
	nw.RecordFaults(true)
	nw.SetSchedule(NewSchedule(SplitWindow(0, 50, 4, []int{0, 1})))

	sim.Schedule(10, func() {
		nw.Send(0, 2, "cross") // cut: deferred to heal
		nw.Send(0, 1, "same")  // same side: normal delivery
	})
	sim.RunUntilIdle()

	if len(*got) != 2 {
		t.Fatalf("delivered %d messages, want 2", len(*got))
	}
	for _, d := range *got {
		if d.To == 2 && d.At < 50 {
			t.Fatalf("cross-cut message delivered at %d, before heal at 50", d.At)
		}
		if d.To == 1 && d.At >= 50 {
			t.Fatalf("same-side message deferred to %d", d.At)
		}
	}
	evs := nw.FaultEvents()
	kinds := map[string]int{}
	for _, e := range evs {
		kinds[e.Kind]++
	}
	if kinds["cut"] != 1 || kinds["heal"] != 1 || kinds["defer"] != 1 {
		t.Fatalf("fault log %v, want one cut, one heal, one defer", evs)
	}
}

func TestPermanentCutDrops(t *testing.T) {
	sim := NewSim(1)
	nw, got := collect(t, sim, 3)
	nw.SetSchedule(NewSchedule(EclipseWindow(0, NoHeal, 3, 2)))

	sim.Schedule(5, func() {
		nw.Send(0, 2, "lost")
		nw.Send(2, 1, "lost-too")
		nw.Send(0, 1, "ok")
	})
	sim.RunUntilIdle()

	if len(*got) != 1 || (*got)[0].To != 1 {
		t.Fatalf("deliveries %v, want only 0→1", *got)
	}
	_, _, dropped := nw.Stats()
	if dropped != 2 {
		t.Fatalf("dropped = %d, want 2", dropped)
	}
}

func TestGSTShiftFlushesAtGST(t *testing.T) {
	sim := NewSim(7)
	nw, got := collect(t, sim, 2)
	nw.SetSchedule(NewSchedule(GSTShiftWindow(100, 2, []int{0})))

	sim.Schedule(1, func() { nw.Send(0, 1, "pre-GST") })
	sim.Schedule(150, func() { nw.Send(0, 1, "post-GST") })
	sim.RunUntilIdle()

	if len(*got) != 2 {
		t.Fatalf("delivered %d, want 2", len(*got))
	}
	if (*got)[0].At < 100 {
		t.Fatalf("pre-GST message delivered at %d, before GST", (*got)[0].At)
	}
	if (*got)[1].At < 150 || (*got)[1].At > 152 {
		t.Fatalf("post-GST message delivered at %d, want ~151", (*got)[1].At)
	}
}

func TestChainedWindowsDeferThroughBoth(t *testing.T) {
	// Two back-to-back windows both cutting 0|1: a message sent in the
	// first must flush only after the second ends.
	sim := NewSim(3)
	nw, got := collect(t, sim, 2)
	nw.SetSchedule(NewSchedule(
		SplitWindow(0, 20, 2, []int{0}),
		SplitWindow(20, 40, 2, []int{0}),
	))
	sim.Schedule(5, func() { nw.Send(0, 1, "x") })
	sim.RunUntilIdle()
	if len(*got) != 1 || (*got)[0].At < 40 {
		t.Fatalf("delivery %v, want at ≥ 40", *got)
	}
}

// TestFIFOBumpCannotCrossCut is the regression for the FIFO/schedule
// interaction: the per-link no-overtake bump must not push a message
// into an active cut window (the two constraints resolve jointly).
func TestFIFOBumpCannotCrossCut(t *testing.T) {
	sim := NewSim(1)
	nw, got := collect(t, sim, 2)
	nw.SetFIFO(true)
	nw.SetSchedule(NewSchedule(SplitWindow(50, 60, 2, []int{0})))
	// Two same-tick sends with delay 1 both want t=49 (uncut); the
	// second is FIFO-bumped to 50 — inside the cut — and must resolve
	// to the heal at 60.
	sim.Schedule(48, func() {
		nw.Send(0, 1, "first")
		nw.Send(0, 1, "second")
	})
	sim.RunUntilIdle()
	if len(*got) != 2 {
		t.Fatalf("delivered %d, want 2", len(*got))
	}
	for _, d := range *got {
		if nw.Schedule().Cut(d.At, 0, 1) {
			t.Fatalf("delivery at %d is inside the active cut", d.At)
		}
	}
	if (*got)[1].At < 60 {
		t.Fatalf("FIFO-bumped message delivered at %d, before the heal at 60", (*got)[1].At)
	}
}

// FuzzPartitionSchedule checks the two schedule invariants on random
// window sets and messages — with and without per-link FIFO ordering:
// (1) no delivery happens at a time when an active window separates the
// endpoints; (2) every message not crossing a permanent cut is
// eventually delivered (queued messages flush on heal), exactly once.
func FuzzPartitionSchedule(f *testing.F) {
	f.Add(uint64(1), int64(10), int64(30), int64(20), int64(60), uint8(6), uint8(12), true)
	f.Add(uint64(9), int64(0), int64(5), int64(5), int64(9), uint8(3), uint8(40), false)
	f.Add(uint64(42), int64(7), int64(-1), int64(0), int64(0), uint8(4), uint8(25), true)
	f.Fuzz(func(t *testing.T, seed uint64, s1, e1, s2, e2 int64, nprocs, nmsgs uint8, fifo bool) {
		n := int(nprocs%6) + 2
		norm := func(s, e int64) (int64, int64) {
			if s < 0 {
				s = -s
			}
			s %= 80
			if e != NoHeal {
				if e < 0 {
					e = -e
				}
				e = s + e%80
			}
			return s, e
		}
		s1, e1 = norm(s1, e1)
		s2, e2 = norm(s2, e2)
		// Window 1 cuts the lower half away; window 2 eclipses proc 0.
		var left []int
		for p := 0; p < n/2; p++ {
			left = append(left, p)
		}
		sched := NewSchedule(SplitWindow(s1, e1, n, left), EclipseWindow(s2, e2, n, 0))

		sim := NewSim(seed)
		nw := NewNetwork(sim, n, Synchronous{Delta: 2})
		type delivery struct {
			at       int64
			from, to int
			id       int
		}
		var got []delivery
		for p := 0; p < n; p++ {
			p := p
			nw.AddHandler(p, func(m Message) {
				got = append(got, delivery{sim.Now(), m.From, m.To, m.Payload.(int)})
			})
		}
		nw.SetFIFO(fifo)
		nw.SetSchedule(sched)

		type sent struct {
			from, to int
			id       int
		}
		var sends []sent
		rng := sim.RNG().Split()
		m := int(nmsgs%40) + 1
		for i := 0; i < m; i++ {
			at := int64(rng.Intn(120))
			from := rng.Intn(n)
			to := rng.Intn(n)
			if from == to {
				to = (to + 1) % n
			}
			id := i
			sends = append(sends, sent{from, to, id})
			sim.At(at, func() { nw.Send(from, to, id) })
		}
		sim.RunUntilIdle()

		// Invariant 1: no delivery across an active cut.
		for _, d := range got {
			if sched.Cut(d.at, d.from, d.to) {
				t.Fatalf("message %d delivered %d→%d at %d across an active cut", d.id, d.from, d.to, d.at)
			}
		}
		// Invariant 2: exactly the messages that can ever be delivered
		// are delivered, once each.
		seen := map[int]int{}
		for _, d := range got {
			seen[d.id]++
		}
		for _, s := range sends {
			// A message is lost only if DeliveryTime says so for its
			// send; we can't recompute the exact want time (random
			// delay), so check the weaker but exact property: lost
			// messages must cross a permanent cut, delivered ones must
			// appear exactly once.
			switch seen[s.id] {
			case 0:
				permanent := false
				for i := range sched.Windows {
					w := &sched.Windows[i]
					if w.End == NoHeal && w.sideOf(s.from) != w.sideOf(s.to) {
						permanent = true
					}
				}
				if !permanent {
					t.Fatalf("message %d (%d→%d) never delivered though no permanent cut separates the link", s.id, s.from, s.to)
				}
			case 1:
				// ok
			default:
				t.Fatalf("message %d delivered %d times", s.id, seen[s.id])
			}
		}
	})
}
