package simnet

import (
	"fmt"

	"repro/internal/trace"
)

// This file adds the crash–recovery half of the fault model: alongside
// partition windows (faults.go), a schedule can carry CrashWindows that
// take individual processes down for an interval. While a process is
// down, every delivery addressed to it is dropped (logged as a
// "crashloss" fault event) and anything it would send is suppressed —
// harness timers consult Network.Down before acting for a process, so a
// crashed replica neither mines, reads, nor advertises. Recovery fires
// a deterministic restart event at the window end; the replica layer
// hooks OnCrash/OnRestart to snapshot durable state and run catch-up.
//
// Crash semantics differ from partitions on purpose: a partitioned
// message is *deferred* to the heal (the link recovers, the queue
// flushes), while a message to a crashed process is *lost* (the process
// was not there to receive it) — recovery must resynchronize through
// the anti-entropy layer, which is exactly the durable-vs-amnesia
// experiment the catalogue measures.

// CrashWindow takes process Proc down during [Start, End). End ==
// NoHeal means the process never recovers (crash-stop).
type CrashWindow struct {
	Proc       int
	Start, End int64
}

// active reports whether the process is down at time t.
func (w *CrashWindow) active(t int64) bool {
	return t >= w.Start && (w.End == NoHeal || t < w.End)
}

// String renders e.g. "p2 down [30,60)" or "p1 crash-stop @40".
func (w CrashWindow) String() string {
	if w.End == NoHeal {
		return fmt.Sprintf("p%d crash-stop @%d", w.Proc, w.Start)
	}
	return fmt.Sprintf("p%d down [%d,%d)", w.Proc, w.Start, w.End)
}

// Crash builds a crash–recovery window: proc is down during [start, end).
func Crash(proc int, start, end int64) CrashWindow {
	return CrashWindow{Proc: proc, Start: start, End: end}
}

// CrashStop builds a permanent crash: proc goes down at start and never
// recovers.
func CrashStop(proc int, start int64) CrashWindow {
	return CrashWindow{Proc: proc, Start: start, End: NoHeal}
}

// DownAt reports whether process p is crashed at time t.
func (s *Schedule) DownAt(t int64, p int) bool {
	if s == nil {
		return false
	}
	for i := range s.Crashes {
		w := &s.Crashes[i]
		if w.Proc == p && w.active(t) {
			return true
		}
	}
	return false
}

// downBesides reports whether any crash window other than index skip has
// process p down at time t — used to merge overlapping windows so each
// recovery fires exactly one crash/restart pair.
func (s *Schedule) downBesides(t int64, p, skip int) bool {
	for i := range s.Crashes {
		if i == skip {
			continue
		}
		w := &s.Crashes[i]
		if w.Proc == p && w.active(t) {
			return true
		}
	}
	return false
}

// Down reports whether process p is crashed at the current virtual time.
// Harness timers (mining ticks, read ticks, anti-entropy rounds) call
// this before acting for a process: a crashed process runs nothing.
func (nw *Network) Down(p int) bool {
	return nw.sched.DownAt(nw.sim.Now(), p)
}

// OnCrash registers a hook run when a process goes down (at the start of
// each of its crash windows). Hooks run in registration order, before
// any same-time deliveries.
func (nw *Network) OnCrash(fn func(p int)) {
	nw.onCrash = append(nw.onCrash, fn)
}

// OnRestart registers a hook run when a process recovers (at the end of
// each of its crash windows). Hooks run before any same-time deliveries,
// so a restored replica is back before the first post-recovery message.
func (nw *Network) OnRestart(fn func(p int)) {
	nw.onRestart = append(nw.onRestart, fn)
}

// armCrashes schedules the crash/restart hook firings for every crash
// window of s and logs the boundary fault events. Overlapping windows
// for the same process are merged: a boundary inside another active
// window fires nothing, so each continuous down-span yields exactly one
// crash and (unless permanent) exactly one restart.
func (nw *Network) armCrashes(s *Schedule) {
	for i := range s.Crashes {
		i := i
		w := s.Crashes[i]
		if w.End != NoHeal && w.End <= w.Start {
			continue // empty window: never active, no boundary events
		}
		// A crash boundary is real only when the process was up on the
		// previous tick (adjacent windows [a,b)+[b,c) are one span).
		if !s.downBesides(w.Start, w.Proc, i) && !s.DownAt(w.Start-1, w.Proc) {
			if nw.logFaults {
				nw.faultLog = append(nw.faultLog, FaultEvent{Time: w.Start, Kind: "crash", From: -1, To: -1, Detail: fmt.Sprintf("p%d", w.Proc)})
			}
			nw.sim.At(w.Start, func() {
				if nw.sched != s {
					return // schedule was replaced after arming
				}
				if tr := nw.sim.tracer; tr != nil {
					tr.Emit(trace.Event{VT: nw.sim.now, Seq: nw.sim.curSeq, Kind: trace.KCrash, Shard: -1, P: w.Proc})
				}
				for _, fn := range nw.onCrash {
					fn(w.Proc)
				}
			})
		}
		if w.End == NoHeal {
			continue
		}
		if !s.downBesides(w.End, w.Proc, i) {
			if nw.logFaults {
				nw.faultLog = append(nw.faultLog, FaultEvent{Time: w.End, Kind: "restart", From: -1, To: -1, Detail: fmt.Sprintf("p%d", w.Proc)})
			}
			nw.sim.At(w.End, func() {
				if nw.sched != s {
					return
				}
				if tr := nw.sim.tracer; tr != nil {
					tr.Emit(trace.Event{VT: nw.sim.now, Seq: nw.sim.curSeq, Kind: trace.KRestart, Shard: -1, P: w.Proc})
				}
				for _, fn := range nw.onRestart {
					fn(w.Proc)
				}
			})
		}
	}
}
