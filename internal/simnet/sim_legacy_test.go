package simnet

import (
	"container/heap"
	"fmt"
	"testing"

	"repro/internal/tape"
)

// This file preserves the pre-rewrite scheduler — a container/heap of
// per-event pointer nodes whose deliveries were capturing closures — and
// pins the flat value-type event heap against it: for identical schedule
// programs and seeds, the execution order must be byte-identical
// (DESIGN.md ablation #6 measures the cost gap between the two).

// legacyEvent is the old per-event heap node.
type legacyEvent struct {
	time int64
	seq  int64
	fn   func()
}

type legacyHeap []*legacyEvent

func (h legacyHeap) Len() int { return len(h) }
func (h legacyHeap) Less(i, j int) bool {
	if h[i].time != h[j].time {
		return h[i].time < h[j].time
	}
	return h[i].seq < h[j].seq
}
func (h legacyHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *legacyHeap) Push(x any)   { *h = append(*h, x.(*legacyEvent)) }
func (h *legacyHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return e
}

// legacySim is the old closure-based scheduler, verbatim.
type legacySim struct {
	now int64
	seq int64
	pq  legacyHeap
	rng *tape.RNG
}

func newLegacySim(seed uint64) *legacySim { return &legacySim{rng: tape.NewRNG(seed)} }

func (s *legacySim) schedule(delay int64, fn func()) {
	if delay < 0 {
		delay = 0
	}
	s.seq++
	heap.Push(&s.pq, &legacyEvent{time: s.now + delay, seq: s.seq, fn: fn})
}

func (s *legacySim) runUntilIdle() {
	for len(s.pq) > 0 {
		e := heap.Pop(&s.pq).(*legacyEvent)
		s.now = e.time
		e.fn()
	}
}

// legacyNet replays the old Network.Send logic (delivery as a capturing
// closure) over the legacy scheduler, drawing delays from an identical
// RNG stream.
type legacyNet struct {
	sim   *legacySim
	n     int
	delay DelayModel
	drop  DropRule
	fifo  bool
	last  map[[2]int]int64
	trace *[]string
}

func (nw *legacyNet) send(from, to int, payload any) {
	m := Message{From: from, To: to, Payload: payload}
	if from != to && nw.drop(m) {
		return
	}
	var d int64
	if from != to {
		d = nw.delay.Delay(nw.sim.rng, nw.sim.now, from, to)
	}
	if nw.fifo && from != to {
		link := [2]int{from, to}
		at := nw.sim.now + d
		if prev := nw.last[link]; at <= prev {
			at = prev + 1
			d = at - nw.sim.now
		}
		nw.last[link] = at
	}
	nw.sim.schedule(d, func() {
		*nw.trace = append(*nw.trace, fmt.Sprintf("t=%d %d→%d %v", nw.sim.now, m.From, m.To, m.Payload))
	})
}

// schedProgram describes one deterministic message workload: a mix of
// point-to-point sends and broadcasts at varying submission times.
type schedStep struct {
	at       int64
	from, to int // to < 0 means broadcast
	payload  int
}

func buildProgram(seed uint64, n, steps int) []schedStep {
	rng := tape.NewRNG(seed ^ 0x5eed)
	out := make([]schedStep, steps)
	for i := range out {
		st := schedStep{at: int64(rng.Intn(40)), from: rng.Intn(n), payload: i}
		if rng.Intn(4) == 0 {
			st.to = -1
		} else {
			st.to = rng.Intn(n)
		}
		out[i] = st
	}
	return out
}

// runNew drives the production Sim/Network with the program and returns
// the delivery trace.
func runNew(seed uint64, n int, prog []schedStep, fifo bool, mkDrop func() DropRule, model DelayModel) []string {
	var trace []string
	s := NewSim(seed)
	nw := NewNetwork(s, n, model)
	if fifo {
		nw.SetFIFO(true)
	}
	if mkDrop != nil {
		nw.SetDrop(mkDrop())
	}
	for p := 0; p < n; p++ {
		nw.AddHandler(p, func(m Message) {
			trace = append(trace, fmt.Sprintf("t=%d %d→%d %v", s.Now(), m.From, m.To, m.Payload))
		})
	}
	for _, st := range prog {
		st := st
		s.Schedule(st.at, func() {
			if st.to < 0 {
				nw.Broadcast(st.from, st.payload)
			} else {
				nw.Send(st.from, st.to, st.payload)
			}
		})
	}
	s.RunUntilIdle()
	return trace
}

// runLegacy drives the preserved old scheduler+send path with the same
// program and returns its delivery trace.
func runLegacy(seed uint64, n int, prog []schedStep, fifo bool, mkDrop func() DropRule, model DelayModel) []string {
	var trace []string
	s := newLegacySim(seed)
	drop := DropRule(DropNone)
	if mkDrop != nil {
		drop = mkDrop()
	}
	nw := &legacyNet{sim: s, n: n, delay: model, drop: drop, fifo: fifo, last: map[[2]int]int64{}, trace: &trace}
	for _, st := range prog {
		st := st
		s.schedule(st.at, func() {
			if st.to < 0 {
				for to := 0; to < n; to++ {
					nw.send(st.from, to, st.payload)
				}
			} else {
				nw.send(st.from, st.to, st.payload)
			}
		})
	}
	s.runUntilIdle()
	return trace
}

// TestSchedulerDifferentialOrder pins the flat-heap scheduler against
// the legacy closure heap: identical seeds and programs must yield
// byte-identical delivery traces across synchrony models, with and
// without FIFO links.
func TestSchedulerDifferentialOrder(t *testing.T) {
	models := []DelayModel{
		Synchronous{Delta: 1},
		Synchronous{Delta: 7},
		PartialSynchrony{GST: 20, DeltaBefore: 15, DeltaAfter: 2},
		Asynchronous{P: 0.4},
	}
	for seed := uint64(0); seed < 6; seed++ {
		for _, m := range models {
			for _, fifo := range []bool{false, true} {
				prog := buildProgram(seed, 5, 120)
				got := runNew(seed, 5, prog, fifo, nil, m)
				want := runLegacy(seed, 5, prog, fifo, nil, m)
				if len(got) != len(want) {
					t.Fatalf("seed %d %s fifo=%v: %d vs %d deliveries", seed, m.Name(), fifo, len(got), len(want))
				}
				for i := range got {
					if got[i] != want[i] {
						t.Fatalf("seed %d %s fifo=%v: delivery %d diverged:\n new %s\n old %s",
							seed, m.Name(), fifo, i, got[i], want[i])
					}
				}
			}
		}
	}
}

// TestSchedulerDifferentialWithDrops pins DropNth/DropToProcess under
// the new event heap: the dropped message set and the surviving
// delivery order must match the legacy scheduler exactly.
func TestSchedulerDifferentialWithDrops(t *testing.T) {
	rules := []struct {
		name string
		mk   func() DropRule
	}{
		{"DropToProcess(2)", func() DropRule { return DropToProcess(2) }},
		{"DropFromProcess(1)", func() DropRule { return DropFromProcess(1) }},
		{"DropNth(0,to2)", func() DropRule { return DropNth(0, DropToProcess(2)) }},
		{"DropNth(7,all)", func() DropRule { return DropNth(7, nil) }},
	}
	for seed := uint64(0); seed < 4; seed++ {
		for _, r := range rules {
			for _, fifo := range []bool{false, true} {
				prog := buildProgram(seed, 4, 80)
				got := runNew(seed, 4, prog, fifo, r.mk, Synchronous{Delta: 5})
				want := runLegacy(seed, 4, prog, fifo, r.mk, Synchronous{Delta: 5})
				if fmt.Sprint(got) != fmt.Sprint(want) {
					t.Fatalf("seed %d rule %s fifo=%v: traces diverged\n new %v\n old %v",
						seed, r.name, fifo, got, want)
				}
			}
		}
	}
}

// TestFIFOLinkOrderUnderFlatHeap floods one link with same-time sends
// and checks per-link FIFO order survives the flat-heap rewrite even
// when the delay model would reorder aggressively.
func TestFIFOLinkOrderUnderFlatHeap(t *testing.T) {
	s := NewSim(97)
	nw := NewNetwork(s, 3, Asynchronous{P: 0.15}) // heavy-tailed delays
	nw.SetFIFO(true)
	var got []int
	nw.AddHandler(1, func(m Message) {
		if m.From == 0 {
			got = append(got, m.Payload.(int))
		}
	})
	for burst := 0; burst < 5; burst++ {
		b := burst
		s.Schedule(int64(10*b), func() {
			for i := 0; i < 20; i++ {
				nw.Send(0, 1, b*20+i)
			}
		})
	}
	s.RunUntilIdle()
	if len(got) != 100 {
		t.Fatalf("delivered %d of 100", len(got))
	}
	for i, v := range got {
		if v != i {
			t.Fatalf("FIFO violated at position %d: got %d (%v...)", i, v, got[:i+1])
		}
	}
}

// TestDropNthExactUnderFlood checks that DropNth drops exactly its
// target under a broadcast flood on the new heap: every other matching
// message is delivered.
func TestDropNthExactUnderFlood(t *testing.T) {
	s := NewSim(13)
	nw := NewNetwork(s, 4, Synchronous{Delta: 3})
	nw.SetDrop(DropNth(2, DropToProcess(3)))
	var to3 []int
	nw.AddHandler(3, func(m Message) { to3 = append(to3, m.Payload.(int)) })
	for i := 0; i < 3; i++ {
		nw.AddHandler(i, func(Message) {})
	}
	for i := 0; i < 6; i++ {
		i := i
		s.Schedule(int64(i+1), func() { nw.Broadcast(0, i) })
	}
	s.RunUntilIdle()
	// Broadcast i sends one message to p3 per round (plus loopback-free
	// others): the 2nd (0-based) matching one — payload 2 — is dropped.
	if len(to3) != 5 {
		t.Fatalf("p3 received %d messages, want 5: %v", len(to3), to3)
	}
	for _, v := range to3 {
		if v == 2 {
			t.Fatalf("payload 2 should have been dropped: %v", to3)
		}
	}
	_, _, dropped := nw.Stats()
	if dropped != 1 {
		t.Fatalf("dropped %d, want 1", dropped)
	}
}

// BenchmarkSchedulerFlood measures the scheduler cost per flooded
// message, flat value-type heap vs. the legacy closure heap (DESIGN.md
// ablation #6).
func BenchmarkSchedulerFlood(b *testing.B) {
	const n = 8
	b.Run("flat-heap", func(b *testing.B) {
		b.ReportAllocs()
		s := NewSim(1)
		nw := NewNetwork(s, n, Synchronous{Delta: 3})
		for p := 0; p < n; p++ {
			nw.AddHandler(p, func(Message) {})
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			nw.Broadcast(i%n, i)
			if s.Pending() > 4096 {
				s.RunUntilIdle()
			}
		}
		s.RunUntilIdle()
	})
	b.Run("legacy-closure-heap", func(b *testing.B) {
		b.ReportAllocs()
		s := newLegacySim(1)
		sink := 0
		deliver := func(m Message) { sink += m.To }
		send := func(from, to int, payload any) {
			m := Message{From: from, To: to, Payload: payload}
			var d int64
			if from != to {
				d = Synchronous{Delta: 3}.Delay(s.rng, s.now, from, to)
			}
			s.schedule(d, func() { deliver(m) })
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for to := 0; to < n; to++ {
				send(i%n, to, i)
			}
			if len(s.pq) > 4096 {
				s.runUntilIdle()
			}
		}
		s.runUntilIdle()
	})
}
