package simnet

import (
	"fmt"
	"sort"
	"strings"
)

// NoHeal marks a partition window that never heals: messages across the
// cut are lost, not deferred.
const NoHeal int64 = -1

// Window is one partition interval [Start, End): from virtual time Start
// up to (excluding) End, processes assigned to different sides cannot
// exchange messages. End == NoHeal means the cut is permanent.
//
// Side[p] is the side index of process p; processes with equal side
// values communicate normally. A process outside the slice is on side 0.
type Window struct {
	Start, End int64
	Side       []int
}

// active reports whether the window is in force at time t.
func (w *Window) active(t int64) bool {
	return t >= w.Start && (w.End == NoHeal || t < w.End)
}

// cuts reports whether the window separates processes a and b at time t.
func (w *Window) cuts(t int64, a, b int) bool {
	return w.active(t) && w.sideOf(a) != w.sideOf(b)
}

func (w *Window) sideOf(p int) int {
	if p < 0 || p >= len(w.Side) {
		return 0
	}
	return w.Side[p]
}

// sides renders the side assignment compactly, e.g. "{0 1}|{2 3}".
func (w *Window) sides() string {
	groups := map[int][]int{}
	max := 0
	for p, s := range w.Side {
		groups[s] = append(groups[s], p)
		if s > max {
			max = s
		}
	}
	var parts []string
	for s := 0; s <= max; s++ {
		if len(groups[s]) == 0 {
			continue
		}
		elems := make([]string, len(groups[s]))
		for i, p := range groups[s] {
			elems[i] = fmt.Sprint(p)
		}
		parts = append(parts, "{"+strings.Join(elems, " ")+"}")
	}
	return strings.Join(parts, "|")
}

// SplitWindow builds a window cutting the processes in left away from the
// remaining n-left processes during [start, end).
func SplitWindow(start, end int64, n int, left []int) Window {
	side := make([]int, n)
	for i := range side {
		side[i] = 1
	}
	for _, p := range left {
		if p >= 0 && p < n {
			side[p] = 0
		}
	}
	return Window{Start: start, End: end, Side: side}
}

// EclipseWindow isolates process victim from everyone else during
// [start, end) — the eclipse-attack cut (both directions).
func EclipseWindow(start, end int64, n, victim int) Window {
	return SplitWindow(start, end, n, []int{victim})
}

// GSTShiftWindow models a delayed global stabilization time as a
// partition: the system is split until gst, whole afterwards. Deferred
// messages flush at gst, exactly the "messages sent before GST arrive
// after GST" reading of partial synchrony.
func GSTShiftWindow(gst int64, n int, left []int) Window {
	return SplitWindow(0, gst, n, left)
}

// Schedule is a deterministic fault schedule: a set of partition windows
// and crash windows applied to a network. Message semantics follow real
// partitions rather than silent loss: a message crossing an active cut
// is *deferred* to the earliest time at which no window separates its
// endpoints (the heal flush), and dropped only when no such time exists
// (a NoHeal window). Crash windows (crash.go) lose messages instead:
// deliveries to a down process are dropped, and the process recovers by
// resynchronizing, not by a queue flush.
type Schedule struct {
	Windows []Window
	Crashes []CrashWindow
}

// NewSchedule builds a schedule from windows.
func NewSchedule(windows ...Window) *Schedule {
	return &Schedule{Windows: windows}
}

// DeliveryTime resolves the earliest delivery time ≥ want at which the
// link from→to is uncut. ok=false means the message can never be
// delivered (an active NoHeal window separates the endpoints).
//
// The loop terminates: each deferral moves want to a window's End, and
// with finitely many windows the running maximum End is reached after at
// most len(Windows) deferrals.
func (s *Schedule) DeliveryTime(want int64, from, to int) (at int64, ok bool) {
	if s == nil {
		return want, true
	}
	for iter := 0; iter <= len(s.Windows); iter++ {
		deferred := false
		for i := range s.Windows {
			w := &s.Windows[i]
			if !w.cuts(want, from, to) {
				continue
			}
			if w.End == NoHeal {
				return 0, false
			}
			want = w.End
			deferred = true
		}
		if !deferred {
			return want, true
		}
	}
	return want, true
}

// Cut reports whether any window separates from and to at time t.
func (s *Schedule) Cut(t int64, from, to int) bool {
	if s == nil {
		return false
	}
	for i := range s.Windows {
		if s.Windows[i].cuts(t, from, to) {
			return true
		}
	}
	return false
}

// FaultEvent is one fault-injection occurrence, recorded for timeline
// rendering (cmd/historyviz) and scenario reports. Kinds:
//
//	"cut"      — a partition window opens (From/To are -1)
//	"heal"     — a partition window closes (From/To are -1)
//	"defer"    — a message was held back by an active cut until Detail
//	"partloss" — a message was lost to a permanent cut
//	"drop"     — a message was lost to the drop rule
//	"withhold" — an adversary withheld a block (recorded via NoteFault)
//	"release"  — an adversary released withheld blocks (NoteFault)
//	"crash"    — a process went down (From/To are -1, Detail "pN")
//	"restart"  — a crashed process recovered (From/To are -1)
//	"crashloss"— a message was lost because its endpoint was down
type FaultEvent struct {
	Time     int64
	Kind     string
	From, To int
	Detail   string
}

// String renders e.g. "@12 defer 0→3 until 40" or "@5 cut {0 1}|{2 3}".
func (e FaultEvent) String() string {
	if e.From < 0 && e.To < 0 {
		return fmt.Sprintf("@%d %s %s", e.Time, e.Kind, e.Detail)
	}
	if e.Detail == "" {
		return fmt.Sprintf("@%d %s %d→%d", e.Time, e.Kind, e.From, e.To)
	}
	return fmt.Sprintf("@%d %s %d→%d %s", e.Time, e.Kind, e.From, e.To, e.Detail)
}

// SetSchedule installs a fault schedule on the network (nil removes it).
// When fault recording is on, the schedule's cut/heal and crash/restart
// boundaries are logged immediately so renderers can draw the spans.
// Crash windows additionally arm the deterministic crash/restart hook
// firings (crash.go); schedules without crash windows leave the event
// queue untouched.
func (nw *Network) SetSchedule(s *Schedule) {
	nw.sched = s
	if s == nil {
		return
	}
	if nw.logFaults {
		for i := range s.Windows {
			w := &s.Windows[i]
			nw.faultLog = append(nw.faultLog, FaultEvent{Time: w.Start, Kind: "cut", From: -1, To: -1, Detail: w.sides()})
			if w.End != NoHeal {
				nw.faultLog = append(nw.faultLog, FaultEvent{Time: w.End, Kind: "heal", From: -1, To: -1, Detail: w.sides()})
			}
		}
	}
	if len(s.Crashes) > 0 {
		nw.armCrashes(s)
	}
}

// Schedule returns the installed fault schedule (nil when none).
func (nw *Network) Schedule() *Schedule { return nw.sched }

// RecordFaults enables (or disables) the fault-event log. Enable before
// SetSchedule so the cut/heal boundary events are captured.
func (nw *Network) RecordFaults(on bool) { nw.logFaults = on }

// NoteFault appends an externally observed fault event (adversarial
// strategies record their withhold/release decisions here). During a
// sharded parallel phase the event is staged under the acting process
// (e.From) and committed at the barrier in global order — FaultEvents
// sorts stably by time, so the recording order of same-time events is
// digest-relevant and must match the serial run's.
func (nw *Network) NoteFault(e FaultEvent) {
	if !nw.logFaults {
		return
	}
	if eng := nw.eng; eng != nil && eng.inParallel {
		st := &eng.stages[eng.shardOf(e.From)]
		st.items = append(st.items, stagedItem{tag: st.curTag, kind: stNote, note: e})
		return
	}
	nw.faultLog = append(nw.faultLog, e)
}

// FaultEvents returns the recorded fault events sorted by time (stable:
// recording order breaks ties).
func (nw *Network) FaultEvents() []FaultEvent {
	out := make([]FaultEvent, len(nw.faultLog))
	copy(out, nw.faultLog)
	sort.SliceStable(out, func(i, j int) bool { return out[i].Time < out[j].Time })
	return out
}
