package simnet

import (
	"fmt"

	"repro/internal/trace"
)

// Message is one point-to-point message in flight.
type Message struct {
	From, To int
	Payload  any
}

// DropRule decides whether a message is lost. Returning true drops the
// message silently (it is still counted). Used to build the Theorem
// 4.6/4.7 experiments: dropping even a single update message from a
// correct process breaks Eventual Prefix.
type DropRule func(m Message) bool

// DropNone loses nothing.
func DropNone(Message) bool { return false }

// DropToProcess drops every message addressed to the given process —
// the partitioned-receiver scenario of Lemma 4.5.
func DropToProcess(p int) DropRule {
	return func(m Message) bool { return m.To == p }
}

// DropFromProcess drops every message sent by the given process — the
// silent-sender scenario of Lemma 4.4 (R1 violated from the outside).
func DropFromProcess(p int) DropRule {
	return func(m Message) bool { return m.From == p }
}

// DropNth drops exactly the n-th message (0-based) that matches the
// inner rule; all means every message matches. This builds the paper's
// "even only one message dropped" minimal counterexamples.
func DropNth(n int, inner DropRule) DropRule {
	count := 0
	if inner == nil {
		inner = func(Message) bool { return true }
	}
	return func(m Message) bool {
		if !inner(m) {
			return false
		}
		hit := count == n
		count++
		return hit
	}
}

// Handler receives delivered messages at a process.
type Handler func(m Message)

// Network connects n processes over a Sim with a DelayModel and an
// optional DropRule. Sends are recorded and delivery is scheduled as a
// simulator event; a process's handler runs at delivery time.
type Network struct {
	sim      *Sim
	n        int
	delay    DelayModel
	drop     DropRule
	handlers [][]Handler

	// fifo, when enabled, makes every (from, to) link order-preserving
	// (the "reliable FIFO authenticated channels" of the paper's
	// Bitcoin/Ethereum mappings): a message never overtakes an earlier
	// one on the same link. lastOut tracks the latest scheduled
	// delivery time per link, as a flat n×n array indexed from·n+to —
	// the per-send map lookup was a top profile entry at N ≥ 256, and
	// the array is written only on the serial path (sends are staged
	// during parallel phases), so it needs no lock.
	fifo    bool
	lastOut []int64

	// sched, when set, is the deterministic partition/fault schedule:
	// messages crossing an active cut are deferred to the heal time (or
	// lost under a permanent cut). faultLog records fault events when
	// logFaults is on (see faults.go).
	sched     *Schedule
	faultLog  []FaultEvent
	logFaults bool

	// onCrash/onRestart run when a crash window opens or closes
	// (crash.go); the replica layer hooks durable snapshot/restore and
	// catch-up here.
	onCrash   []func(p int)
	onRestart []func(p int)

	// eng is the sharded execution engine when EnableSharding was
	// called (shard.go); serialOnly[p] pins process p's deliveries to
	// the serial path because a plain AddHandler was registered for it.
	eng        *engine
	serialOnly []bool

	sent, delivered, dropped int
}

// NewNetwork builds a network of n processes over sim.
func NewNetwork(sim *Sim, n int, delay DelayModel) *Network {
	if delay == nil {
		delay = Synchronous{Delta: 1}
	}
	return &Network{sim: sim, n: n, delay: delay, drop: DropNone, handlers: make([][]Handler, n)}
}

// N returns the number of processes.
func (nw *Network) N() int { return nw.n }

// Sim returns the underlying simulator.
func (nw *Network) Sim() *Sim { return nw.sim }

// AddHandler registers a delivery handler for process p. Multiple layers
// (replica updates, consensus rounds) each register one; every handler
// sees every delivered message and dispatches on the payload type.
//
// A handler registered this way may do anything — touch shared state,
// schedule timers — so under a sharded scheduler (EnableSharding) all
// of p's deliveries run on the serial path. Handlers that uphold the
// shard-safety contract register with AddShardSafeHandler instead and
// are eligible for concurrent processing.
func (nw *Network) AddHandler(p int, h Handler) {
	nw.handlers[p] = append(nw.handlers[p], h)
	nw.markSerialOnly(p)
}

// SetDrop installs a drop rule (nil restores DropNone).
func (nw *Network) SetDrop(r DropRule) {
	if r == nil {
		r = DropNone
	}
	nw.drop = r
}

// SetDropRandom installs i.i.d. loss with probability p from the
// network's deterministic RNG.
func (nw *Network) SetDropRandom(p float64) {
	rng := nw.sim.RNG().Split()
	nw.drop = func(Message) bool { return rng.Bernoulli(p) }
}

// SetFIFO enables (or disables) per-link FIFO delivery.
func (nw *Network) SetFIFO(on bool) {
	nw.fifo = on
	if on && nw.lastOut == nil {
		nw.lastOut = make([]int64, nw.n*nw.n)
	}
}

// Send transmits payload from from to to. Loopback (from == to) is
// delivered with delay 0 — a process always receives its own broadcast,
// which is how the LRC Validity property is realized.
//
// During a sharded parallel phase the send is staged: the engine
// replays it at the batch barrier in global event order, where the
// drop decision, delay draw and sequence assignment happen exactly as
// a serial run would have made them (shard.go).
func (nw *Network) Send(from, to int, payload any) {
	if eng := nw.eng; eng != nil && eng.inParallel {
		st := &eng.stages[eng.shardOf(from)]
		st.items = append(st.items, stagedItem{tag: st.curTag, kind: stSend, from: from, to: to, payload: payload})
		return
	}
	nw.sendNow(from, to, payload)
}

// sendNow is the real send path: serial contexts call it directly via
// Send, and the barrier commit calls it when replaying staged sends.
func (nw *Network) sendNow(from, to int, payload any) {
	if to < 0 || to >= nw.n {
		panic(fmt.Sprintf("simnet: send to unknown process %d", to))
	}
	m := Message{From: from, To: to, Payload: payload}
	nw.sent++
	if nw.sched.DownAt(nw.sim.Now(), from) {
		// A crashed process sends nothing. Timers are suppressed at the
		// harness layer, so this is defense in depth for late callbacks.
		nw.dropped++
		if nw.logFaults {
			nw.faultLog = append(nw.faultLog, FaultEvent{Time: nw.sim.Now(), Kind: "crashloss", From: from, To: to})
		}
		if nw.sim.tracer != nil {
			nw.traceFault(nw.sim.Now(), "crashloss", from, to)
		}
		return
	}
	if from != to && nw.drop(m) {
		nw.dropped++
		if nw.logFaults {
			nw.faultLog = append(nw.faultLog, FaultEvent{Time: nw.sim.Now(), Kind: "drop", From: from, To: to})
		}
		if nw.sim.tracer != nil {
			nw.traceFault(nw.sim.Now(), "drop", from, to)
		}
		return
	}
	var d int64
	if from != to {
		d = nw.delay.Delay(nw.sim.rng, nw.sim.Now(), from, to)
	}
	if from != to && (nw.sched != nil || nw.fifo) {
		// Resolve the delivery time against the fault schedule and the
		// FIFO no-overtake rule together: a FIFO bump can push the
		// message back inside a later cut window (and a heal-time flush
		// can collide with the link's last scheduled delivery), so the
		// two constraints iterate to a fixed point. Each schedule
		// deferral jumps to a window end and each FIFO bump moves
		// forward past lastOut, so the loop terminates after at most
		// one pass per window.
		now := nw.sim.Now()
		at := now + d
		link := from*nw.n + to
		for {
			if nw.sched != nil {
				resolved, ok := nw.sched.DeliveryTime(at, from, to)
				if !ok {
					nw.dropped++
					if nw.logFaults {
						nw.faultLog = append(nw.faultLog, FaultEvent{Time: now, Kind: "partloss", From: from, To: to})
					}
					if nw.sim.tracer != nil {
						nw.traceFault(now, "partloss", from, to)
					}
					return
				}
				if resolved != at {
					at = resolved
					continue
				}
			}
			if nw.fifo {
				if prev := nw.lastOut[link]; at <= prev {
					at = prev + 1
					continue
				}
			}
			break
		}
		if nw.logFaults && nw.sched != nil && nw.sched.Cut(now+d, from, to) {
			nw.faultLog = append(nw.faultLog, FaultEvent{
				Time: now, Kind: "defer", From: from, To: to,
				Detail: fmt.Sprintf("until %d", at),
			})
			if nw.sim.tracer != nil {
				nw.traceFault(now, "defer", from, to)
			}
		}
		if nw.fifo {
			nw.lastOut[link] = at
		}
		d = at - now
	}
	// Flat delivery event: the message rides in the heap entry itself,
	// so the hot send path performs no closure or node allocation.
	nw.sim.schedule(d, event{kind: evDeliver, nw: nw, msg: m})
	if tr := nw.sim.tracer; tr != nil && tr.Sampled(trace.KSend, nw.sim.seq) {
		tr.Emit(trace.Event{
			VT: nw.sim.now, Seq: nw.sim.seq, Kind: trace.KSend, Shard: -1, P: from,
			Detail: fmt.Sprintf("->%d", to),
		})
	}
}

// deliver runs the delivery of m at its destination (called by the
// scheduler when the corresponding event fires). A message reaching a
// crashed process is lost — unlike a partition, a crash does not defer:
// the process must resynchronize after recovery.
func (nw *Network) deliver(m Message) {
	if nw.sched.DownAt(nw.sim.Now(), m.To) {
		nw.dropped++
		if nw.logFaults {
			nw.faultLog = append(nw.faultLog, FaultEvent{Time: nw.sim.Now(), Kind: "crashloss", From: m.From, To: m.To})
		}
		if nw.sim.tracer != nil {
			nw.traceFault(nw.sim.Now(), "crashloss", m.From, m.To)
		}
		return
	}
	nw.delivered++
	for _, h := range nw.handlers[m.To] {
		h(m)
	}
}

// Broadcast sends payload from from to every process, itself included
// (best-effort flooding; reliability properties are what the checkers
// measure, not what the primitive promises).
func (nw *Network) Broadcast(from int, payload any) {
	for to := 0; to < nw.n; to++ {
		nw.Send(from, to, payload)
	}
}

// Stats returns (sent, delivered, dropped) counters.
func (nw *Network) Stats() (sent, delivered, dropped int) {
	return nw.sent, nw.delivered, nw.dropped
}

// DelayName reports the synchrony model in use.
func (nw *Network) DelayName() string { return nw.delay.Name() }
