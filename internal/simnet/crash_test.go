package simnet

import (
	"testing"
)

func TestCrashDropsDeliveriesWhileDown(t *testing.T) {
	sim := NewSim(1)
	nw, got := collect(t, sim, 3)
	nw.RecordFaults(true)
	nw.SetSchedule(&Schedule{Crashes: []CrashWindow{Crash(2, 10, 40)}})

	sim.Schedule(5, func() { nw.Send(0, 2, "before") })  // delivers ≤ 6 < 10
	sim.Schedule(20, func() { nw.Send(0, 2, "during") }) // lost
	sim.Schedule(20, func() { nw.Send(2, 0, "from-down") })
	sim.Schedule(50, func() { nw.Send(1, 2, "after") }) // delivers
	sim.RunUntilIdle()

	if len(*got) != 2 {
		t.Fatalf("delivered %d messages, want 2 (before+after): %v", len(*got), *got)
	}
	for _, d := range *got {
		if nw.Schedule().DownAt(d.At, d.To) {
			t.Fatalf("delivery to p%d at %d while down", d.To, d.At)
		}
	}
	_, _, dropped := nw.Stats()
	if dropped != 2 {
		t.Fatalf("dropped = %d, want 2", dropped)
	}
	kinds := map[string]int{}
	for _, e := range nw.FaultEvents() {
		kinds[e.Kind]++
	}
	if kinds["crash"] != 1 || kinds["restart"] != 1 || kinds["crashloss"] != 2 {
		t.Fatalf("fault log kinds %v, want 1 crash, 1 restart, 2 crashloss", kinds)
	}
}

func TestCrashStopNeverRestarts(t *testing.T) {
	sim := NewSim(2)
	nw, got := collect(t, sim, 2)
	nw.RecordFaults(true)
	nw.SetSchedule(&Schedule{Crashes: []CrashWindow{CrashStop(1, 15)}})

	var crashes, restarts []int64
	nw.OnCrash(func(p int) { crashes = append(crashes, sim.Now()) })
	nw.OnRestart(func(p int) { restarts = append(restarts, sim.Now()) })

	sim.Schedule(30, func() { nw.Send(0, 1, "lost") })
	sim.Run(200)

	if len(*got) != 0 {
		t.Fatalf("deliveries to a crash-stopped process: %v", *got)
	}
	if len(crashes) != 1 || crashes[0] != 15 {
		t.Fatalf("crash firings %v, want one at 15", crashes)
	}
	if len(restarts) != 0 {
		t.Fatalf("restart fired for a crash-stop: %v", restarts)
	}
	if !nw.Down(1) {
		t.Fatal("process 1 should still be down at end of run")
	}
}

// TestCrashHooksFireBeforeSameTimeDeliveries pins the boundary order: a
// restart hook scheduled at t runs before messages delivered at t, so a
// restored replica is back before its first post-recovery message.
func TestCrashHooksFireBeforeSameTimeDeliveries(t *testing.T) {
	sim := NewSim(3)
	nw := NewNetwork(sim, 2, Synchronous{Delta: 1})
	var order []string
	nw.AddHandler(1, func(m Message) { order = append(order, "deliver") })
	nw.SetSchedule(&Schedule{Crashes: []CrashWindow{Crash(1, 10, 21)}})
	nw.OnRestart(func(p int) { order = append(order, "restart") })

	sim.Schedule(20, func() { nw.Send(0, 1, "x") }) // delivers at 21 == restart time
	sim.RunUntilIdle()

	if len(order) != 2 || order[0] != "restart" || order[1] != "deliver" {
		t.Fatalf("order = %v, want [restart deliver]", order)
	}
}

// TestOverlappingCrashWindowsMerge verifies that overlapping and
// adjacent windows for the same process act as one continuous down-span:
// exactly one crash and one restart fire.
func TestOverlappingCrashWindowsMerge(t *testing.T) {
	sim := NewSim(4)
	nw := NewNetwork(sim, 2, Synchronous{Delta: 1})
	var crashes, restarts int
	nw.OnCrash(func(int) { crashes++ })
	nw.OnRestart(func(int) { restarts++ })
	nw.SetSchedule(&Schedule{Crashes: []CrashWindow{
		Crash(0, 10, 30),
		Crash(0, 20, 40), // overlaps the first
		Crash(0, 40, 50), // adjacent to the second
	}})
	sim.RunUntilIdle()
	if crashes != 1 || restarts != 1 {
		t.Fatalf("crashes=%d restarts=%d, want 1 and 1", crashes, restarts)
	}
	if nw.Schedule().DownAt(25, 0) != true || nw.Schedule().DownAt(50, 0) != false {
		t.Fatal("DownAt disagrees with the merged span [10,50)")
	}
}

// FuzzCrashSchedule mirrors FuzzPartitionSchedule for the crash model:
// (1) no delivery ever reaches a process while it is down, and nothing a
// down process sends escapes; (2) each continuous down-span fires
// exactly one crash and — unless permanent — exactly one restart, with
// Down(p) false right after the restart hook (timers resume); (3) every
// message whose endpoints are both up at send and delivery time is
// delivered exactly once.
func FuzzCrashSchedule(f *testing.F) {
	f.Add(uint64(1), int64(10), int64(30), int64(20), int64(60), uint8(6), uint8(12), true)
	f.Add(uint64(9), int64(0), int64(5), int64(5), int64(9), uint8(3), uint8(40), false)
	f.Add(uint64(42), int64(7), int64(-1), int64(0), int64(0), uint8(4), uint8(25), true)
	f.Fuzz(func(t *testing.T, seed uint64, s1, e1, s2, e2 int64, nprocs, nmsgs uint8, fifo bool) {
		n := int(nprocs%6) + 2
		norm := func(s, e int64) (int64, int64) {
			if s < 0 {
				s = -s
			}
			s %= 80
			if e != NoHeal {
				if e < 0 {
					e = -e
				}
				e = s + e%80
			}
			return s, e
		}
		s1, e1 = norm(s1, e1)
		s2, e2 = norm(s2, e2)
		// Two windows on overlapping processes: proc 0 and proc n-1 when
		// distinct, both on proc 0 when n is small — exercising the
		// overlap-merge logic.
		p2 := (n - 1) % n
		sched := &Schedule{Crashes: []CrashWindow{
			Crash(0, s1, e1),
			Crash(p2, s2, e2),
		}}

		sim := NewSim(seed)
		nw := NewNetwork(sim, n, Synchronous{Delta: 2})
		type delivery struct {
			at       int64
			from, to int
			id       int
		}
		var got []delivery
		for p := 0; p < n; p++ {
			nw.AddHandler(p, func(m Message) {
				got = append(got, delivery{sim.Now(), m.From, m.To, m.Payload.(int)})
			})
		}
		nw.SetFIFO(fifo)

		type firing struct {
			at   int64
			proc int
		}
		var crashes, restarts []firing
		nw.OnCrash(func(p int) {
			crashes = append(crashes, firing{sim.Now(), p})
			if !nw.Down(p) {
				t.Fatalf("crash hook for p%d at %d but Down reports up", p, sim.Now())
			}
		})
		nw.OnRestart(func(p int) {
			restarts = append(restarts, firing{sim.Now(), p})
			if nw.Down(p) {
				t.Fatalf("restart hook for p%d at %d but Down still reports down", p, sim.Now())
			}
		})
		nw.SetSchedule(sched)

		type sent struct {
			at       int64
			from, to int
			id       int
		}
		var sends []sent
		rng := sim.RNG().Split()
		m := int(nmsgs%40) + 1
		for i := 0; i < m; i++ {
			at := int64(rng.Intn(120))
			from := rng.Intn(n)
			to := rng.Intn(n)
			if from == to {
				to = (to + 1) % n
			}
			id := i
			sends = append(sends, sent{at, from, to, id})
			sim.At(at, func() { nw.Send(from, to, id) })
		}
		sim.RunUntilIdle()

		// Invariant 1: no delivery to (or surviving send from) a down
		// process.
		for _, d := range got {
			if sched.DownAt(d.at, d.to) {
				t.Fatalf("message %d delivered to crashed p%d at %d", d.id, d.to, d.at)
			}
		}
		bySend := map[int]sent{}
		for _, s := range sends {
			bySend[s.id] = s
		}
		for _, d := range got {
			if s := bySend[d.id]; sched.DownAt(s.at, s.from) {
				t.Fatalf("message %d sent by crashed p%d at %d was delivered", d.id, s.from, s.at)
			}
		}

		// Invariant 2: exactly one crash per continuous down-span and
		// exactly one restart per recovery. Count spans per process from
		// the schedule itself.
		spanCount := func(p int) (downs, ups int) {
			wasDown := false
			const horizon = 400
			for tt := int64(0); tt < horizon; tt++ {
				down := sched.DownAt(tt, p)
				if down && !wasDown {
					downs++
				}
				if !down && wasDown {
					ups++
				}
				wasDown = down
			}
			return
		}
		for p := 0; p < n; p++ {
			wantDown, wantUp := spanCount(p)
			gotDown, gotUp := 0, 0
			for _, c := range crashes {
				if c.proc == p {
					gotDown++
				}
			}
			for _, r := range restarts {
				if r.proc == p {
					gotUp++
				}
			}
			if gotDown != wantDown || gotUp != wantUp {
				t.Fatalf("p%d: %d crashes / %d restarts fired, schedule has %d down-spans / %d recoveries (%v)",
					p, gotDown, gotUp, wantDown, wantUp, sched.Crashes)
			}
		}

		// Invariant 3: a message between endpoints that are up at send
		// time is delivered exactly once unless the destination was down
		// at its (delay-dependent) delivery time; deliveries never
		// duplicate.
		seen := map[int]int{}
		for _, d := range got {
			seen[d.id]++
		}
		for _, s := range sends {
			if seen[s.id] > 1 {
				t.Fatalf("message %d delivered %d times", s.id, seen[s.id])
			}
			if seen[s.id] == 0 {
				// Must be explained by a crash at one endpoint: sender
				// down at send, or destination down somewhere in the
				// possible delivery range (FIFO bumps can extend it, so
				// only the crash-free case is asserted).
				senderDown := sched.DownAt(s.at, s.from)
				destEverDown := len(sched.Crashes) > 0 &&
					(sched.Crashes[0].Proc == s.to || sched.Crashes[1].Proc == s.to)
				if !senderDown && !destEverDown {
					t.Fatalf("message %d (%d→%d @%d) lost with no crash on either endpoint", s.id, s.from, s.to, s.at)
				}
			}
		}
	})
}
