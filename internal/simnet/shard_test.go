package simnet

import (
	"fmt"
	"testing"
)

// shardOutcome is everything a run observably produces: per-process
// delivery traces (the only order a process can see), the fault log,
// the network counters and the executed step count. A sharded run is
// specified to reproduce the serial run's outcome byte for byte.
type shardOutcome struct {
	traces  [][]string
	faults  []string
	sent    int
	deliv   int
	dropped int
	steps   int
}

// cascadeMsg is the traced payload: id identifies the originating seed
// send, hop counts the forwarding cascade.
type cascadeMsg struct {
	id, hop int
}

// runCascade executes a deterministic cascading-flood workload under
// the given shard count: seed timers inject messages (serial-path
// sends), every shard-safe handler traces its deliveries, forwards the
// cascade to the next process (staged sends during parallel phases —
// including delay-0 loopbacks) and notes a fault event every third
// receipt (staged fault-log appends). Faults and crashes cut across
// the shard boundaries: the split separates the lower half (shards 0..)
// from the rest, and the crash windows take out one process per half.
func runCascade(seed uint64, n, shards, hops, seeds int, fifo bool, sched *Schedule) shardOutcome {
	sim := NewSim(seed)
	nw := NewNetwork(sim, n, Synchronous{Delta: 2})
	nw.SetFIFO(fifo)
	nw.RecordFaults(true)
	if sched != nil {
		nw.SetSchedule(sched)
	}

	traces := make([][]string, n)
	for p := 0; p < n; p++ {
		p := p
		count := 0
		nw.AddShardSafeHandler(p, func(m Message) {
			msg := m.Payload.(cascadeMsg)
			traces[p] = append(traces[p], fmt.Sprintf("t%d %d→%d id%d hop%d", sim.Now(), m.From, m.To, msg.id, msg.hop))
			count++
			if count%3 == 0 {
				nw.NoteFault(FaultEvent{Time: sim.Now(), Kind: "mark", From: p, To: -1, Detail: fmt.Sprintf("recv%d", count)})
			}
			if msg.hop < hops {
				next := (p + 1) % n
				if msg.hop%2 == 1 {
					next = p // loopback leg: delay-0 self delivery
				}
				nw.Send(p, next, cascadeMsg{id: msg.id, hop: msg.hop + 1})
			}
		})
	}
	nw.EnableSharding(shards)

	rng := sim.RNG().Split()
	for i := 0; i < seeds; i++ {
		at := int64(rng.Intn(40))
		from := rng.Intn(n)
		to := rng.Intn(n)
		id := i
		sim.At(at, func() { nw.Send(from, to, cascadeMsg{id: id}) })
	}
	steps := sim.RunUntilIdle()

	var faults []string
	for _, e := range nw.FaultEvents() {
		faults = append(faults, fmt.Sprintf("%d %s %d→%d %s", e.Time, e.Kind, e.From, e.To, e.Detail))
	}
	sent, deliv, dropped := nw.Stats()
	return shardOutcome{traces: traces, faults: faults, sent: sent, deliv: deliv, dropped: dropped, steps: steps}
}

// diffOutcome fails the test on the first observable divergence between
// the serial and sharded outcomes.
func diffOutcome(t *testing.T, serial, sharded shardOutcome, k int) {
	t.Helper()
	for p := range serial.traces {
		a, b := serial.traces[p], sharded.traces[p]
		if len(a) != len(b) {
			t.Fatalf("shards=%d: proc %d saw %d deliveries, serial saw %d\nserial: %v\nsharded: %v", k, p, len(b), len(a), a, b)
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("shards=%d: proc %d delivery %d diverged: serial %q, sharded %q", k, p, i, a[i], b[i])
			}
		}
	}
	if len(serial.faults) != len(sharded.faults) {
		t.Fatalf("shards=%d: fault log length %d, serial %d\nserial: %v\nsharded: %v",
			k, len(sharded.faults), len(serial.faults), serial.faults, sharded.faults)
	}
	for i := range serial.faults {
		if serial.faults[i] != sharded.faults[i] {
			t.Fatalf("shards=%d: fault log entry %d diverged: serial %q, sharded %q", k, i, serial.faults[i], sharded.faults[i])
		}
	}
	if serial.sent != sharded.sent || serial.deliv != sharded.deliv || serial.dropped != sharded.dropped {
		t.Fatalf("shards=%d: counters (sent %d, delivered %d, dropped %d), serial (%d, %d, %d)",
			k, sharded.sent, sharded.deliv, sharded.dropped, serial.sent, serial.deliv, serial.dropped)
	}
	if serial.steps != sharded.steps {
		t.Fatalf("shards=%d: %d steps executed, serial %d", k, sharded.steps, serial.steps)
	}
}

// cascadeSchedule builds the fault+crash schedule the cascade tests
// share: a healed split of the lower half, an eclipse of process 1, and
// two crash windows (one per split side) so every staged code path —
// deferral, partition loss, crash loss — crosses a shard boundary.
func cascadeSchedule(n int, s1, e1, s2, e2 int64) *Schedule {
	var left []int
	for p := 0; p < n/2; p++ {
		left = append(left, p)
	}
	sched := NewSchedule(SplitWindow(s1, e1, n, left), EclipseWindow(s2, e2, n, 1%n))
	sched.Crashes = []CrashWindow{Crash(0, s1, s1+18), Crash(n-1, s2, s2+12)}
	return sched
}

// TestShardedEqualsSerialCascade pins the core determinism claim on a
// deterministic workload: for every shard count, the sharded scheduler
// reproduces the serial run's per-process traces, fault log, counters
// and step count exactly — under FIFO links, partition windows and
// crash windows all crossing shard boundaries.
func TestShardedEqualsSerialCascade(t *testing.T) {
	const n = 8
	for _, fifo := range []bool{false, true} {
		sched := cascadeSchedule(n, 10, 25, 18, 33)
		serial := runCascade(7, n, 1, 4, 12, fifo, sched)
		if serial.deliv == 0 || serial.dropped == 0 {
			t.Fatalf("workload too tame: delivered %d, dropped %d — want both nonzero", serial.deliv, serial.dropped)
		}
		for _, k := range []int{2, 3, 4, 8} {
			sharded := runCascade(7, n, k, 4, 12, fifo, cascadeSchedule(n, 10, 25, 18, 33))
			diffOutcome(t, serial, sharded, k)
		}
	}
}

// TestShardSafeSchedulePanics pins the contract violation: a shard-safe
// handler calling Sim.Schedule during a parallel phase must panic
// (timer creation is order-sensitive engine state).
func TestShardSafeSchedulePanics(t *testing.T) {
	sim := NewSim(1)
	nw := NewNetwork(sim, 4, Synchronous{Delta: 1})
	panicked := false
	nw.AddShardSafeHandler(2, func(m Message) {
		defer func() {
			if recover() != nil {
				panicked = true
			}
		}()
		sim.Schedule(1, func() {})
	})
	nw.EnableSharding(2)
	sim.At(1, func() { nw.Send(0, 2, "x") })
	sim.RunUntilIdle()
	if !panicked {
		t.Fatal("Schedule from a shard-safe handler did not panic")
	}
}

// TestLateAddHandlerMigratesQueuedDeliveries pins the serial-only
// migration: a plain AddHandler registered mid-run (while deliveries to
// that process sit in a shard heap) moves them to the global heap with
// their (time, seq) positions intact — nothing is lost or reordered.
func TestLateAddHandlerMigratesQueuedDeliveries(t *testing.T) {
	sim := NewSim(3)
	nw := NewNetwork(sim, 4, Synchronous{Delta: 5})
	var got []string
	for p := 0; p < 4; p++ {
		p := p
		nw.AddShardSafeHandler(p, func(m Message) {
			got = append(got, fmt.Sprintf("safe t%d →%d %v", sim.Now(), m.To, m.Payload))
		})
	}
	nw.EnableSharding(2)
	// Seed deliveries to proc 3 that will still be queued at t=1.
	sim.At(0, func() {
		nw.Send(0, 3, "a")
		nw.Send(1, 3, "b")
	})
	// Mid-run, from a (serial) timer: pin proc 3 to the serial path.
	// Note: got gains a second writer only after this point, and proc
	// 3's deliveries now run serially, so the appends stay race-free.
	sim.At(1, func() {
		nw.AddHandler(3, func(m Message) {
			got = append(got, fmt.Sprintf("plain t%d →%d %v", sim.Now(), m.To, m.Payload))
		})
	})
	sim.RunUntilIdle()
	// Both deliveries arrive, each seen by both handlers (safe first —
	// registration order), in send order under the synchronous delays.
	want := 4
	if len(got) != want {
		t.Fatalf("saw %d handler invocations, want %d: %v", len(got), want, got)
	}
	for i := 0; i+1 < len(got); i += 2 {
		if got[i][:4] != "safe" || got[i+1][:5] != "plain" {
			t.Fatalf("handler order diverged at %d: %v", i, got)
		}
	}
}

// TestEnableShardingClamps pins the edge cases: k above n clamps to n,
// and k ≤ 1 leaves the serial scheduler (Shards reports 1).
func TestEnableShardingClamps(t *testing.T) {
	sim := NewSim(1)
	nw := NewNetwork(sim, 3, Synchronous{Delta: 1})
	nw.EnableSharding(0)
	if nw.Shards() != 1 {
		t.Fatalf("Shards() = %d after EnableSharding(0), want 1", nw.Shards())
	}
	nw.EnableSharding(64)
	if nw.Shards() != 3 {
		t.Fatalf("Shards() = %d after EnableSharding(64) on n=3, want 3", nw.Shards())
	}
}

// FuzzShardMerge fuzzes the merge-barrier invariants across random
// workloads, shard counts, fault windows and crash windows:
//
//  1. no event is processed out of global virtual-time order — each
//     process's delivery trace must match the serial run's exactly;
//  2. cross-shard sends are delivered exactly once — counters and
//     per-process traces must match the serial run's;
//  3. fault and crash windows are respected across shard boundaries —
//     the fault log (cuts, heals, deferrals, losses, handler notes)
//     must match the serial run's entry for entry, and no delivery may
//     land across an active cut or at a crashed process.
func FuzzShardMerge(f *testing.F) {
	f.Add(uint64(1), int64(10), int64(30), int64(20), int64(60), uint8(6), uint8(3), uint8(12), true)
	f.Add(uint64(9), int64(0), int64(5), int64(5), int64(9), uint8(3), uint8(2), uint8(24), false)
	f.Add(uint64(42), int64(7), int64(-1), int64(0), int64(0), uint8(9), uint8(4), uint8(8), true)
	f.Fuzz(func(t *testing.T, seed uint64, s1, e1, s2, e2 int64, nprocs, shards, nmsgs uint8, fifo bool) {
		n := int(nprocs%8) + 2
		k := int(shards%6) + 2
		seeds := int(nmsgs%24) + 1
		norm := func(s, e int64) (int64, int64) {
			if s < 0 {
				s = -s
			}
			s %= 60
			if e != NoHeal {
				if e < 0 {
					e = -e
				}
				e = s + e%60
			}
			return s, e
		}
		s1, e1 = norm(s1, e1)
		s2, e2 = norm(s2, e2)

		mk := func() *Schedule { return cascadeSchedule(n, s1, e1, s2, e2) }
		serial := runCascade(seed, n, 1, 3, seeds, fifo, mk())
		sharded := runCascade(seed, n, k, 3, seeds, fifo, mk())
		diffOutcome(t, serial, sharded, k)

		// Direct window invariants on the sharded run (independent of
		// the serial reference): replay the trace against the schedule.
		sched := mk()
		for p, trace := range sharded.traces {
			last := int64(-1)
			for _, line := range trace {
				var at int64
				var from, to, id, hop int
				if _, err := fmt.Sscanf(line, "t%d %d→%d id%d hop%d", &at, &from, &to, &id, &hop); err != nil {
					t.Fatalf("unparsable trace line %q: %v", line, err)
				}
				if at < last {
					t.Fatalf("proc %d saw time regress (%d after %d): %v", p, at, last, trace)
				}
				last = at
				if sched.Cut(at, from, to) {
					t.Fatalf("delivery %q crossed an active cut", line)
				}
				if sched.DownAt(at, to) {
					t.Fatalf("delivery %q reached a crashed process", line)
				}
			}
		}
	})
}
