package replica

import (
	"testing"

	"repro/internal/core"
	"repro/internal/simnet"
)

func TestPredicateRejectsForgedBlocks(t *testing.T) {
	sim := simnet.NewSim(1)
	g := NewGroup(sim, 3, simnet.Synchronous{Delta: 2}, core.LongestChain{})
	g.SetPredicate(core.WellFormed{})

	honest := mkBlock(core.Genesis(), 0, 1)
	forged := mkBlock(core.Genesis(), 2, 2)
	forged.Payload = []byte("tampered after hashing")

	sim.Schedule(1, func() {
		g.Procs[0].AppendLocal(honest)
		g.Net.Broadcast(2, UpdateMsg{Parent: forged.Parent, Block: forged})
	})
	sim.RunUntilIdle()

	for p, proc := range g.Procs[:2] {
		if proc.Tree().Has(forged.ID) {
			t.Fatalf("replica %d accepted a forged block", p)
		}
		if !proc.Tree().Has(honest.ID) {
			t.Fatalf("replica %d missing the honest block", p)
		}
		if proc.RejectedCount() == 0 {
			t.Fatalf("replica %d rejected nothing", p)
		}
	}
}

func TestPredicateIgnoresTokenStamp(t *testing.T) {
	// Oracle-validated blocks carry a Token field that is not part of
	// the content hash; the replica predicate must not reject them.
	sim := simnet.NewSim(2)
	g := NewGroup(sim, 2, nil, core.LongestChain{})
	g.SetPredicate(core.WellFormed{})
	b := mkBlock(core.Genesis(), 0, 1).WithToken("tkn(b0)")
	sim.Schedule(1, func() {
		if !g.Procs[0].AppendLocal(b) {
			t.Error("token-stamped block rejected locally")
		}
	})
	sim.RunUntilIdle()
	if !g.Procs[1].Tree().Has(b.ID) {
		t.Fatal("token-stamped block rejected remotely")
	}
}

func TestDefaultPredicateAcceptsAnything(t *testing.T) {
	sim := simnet.NewSim(3)
	g := NewGroup(sim, 2, nil, core.LongestChain{})
	forged := mkBlock(core.Genesis(), 0, 1)
	forged.Payload = []byte("whatever")
	sim.Schedule(1, func() { g.Procs[0].AppendLocal(forged) })
	sim.RunUntilIdle()
	if !g.Procs[1].Tree().Has(forged.ID) {
		t.Fatal("default predicate rejected a block")
	}
	if g.Procs[1].RejectedCount() != 0 {
		t.Fatal("default predicate counted rejections")
	}
}
