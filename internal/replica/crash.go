package replica

import (
	"sort"

	"repro/internal/core"
	"repro/internal/simnet"
)

// This file implements the crash–recovery half of the fault model at
// the replica layer. The network (internal/simnet) takes processes down
// and up on a deterministic schedule; here each process gains a durable
// snapshot of its replica state and a catch-up procedure that runs on
// restart. Two recovery disciplines are modeled:
//
//   - durable: the replica persists its block tree and pending buffer
//     at crash time, restores them on restart, and only has to fetch
//     the blocks it missed while down;
//   - amnesia: the replica rejoins from genesis and must resynchronize
//     the whole tree.
//
// Either way, catch-up rides the anti-entropy layer (antientropy.go): a
// restarted replica solicits inventories from its peers, requests the
// blocks it is missing, and peers resend whole chain segments
// root-first. Solicits retry with doubling backoff a bounded number of
// times, covering inventory replies lost to concurrent partitions or
// further crashes. The durable-vs-amnesia split in recovery traffic and
// consistency violations is what the scenario catalogue measures.

// Snapshot is the durable state of a Process: everything needed to
// restore the replica exactly as it was at crash time. Block pointers
// are shared (blocks are immutable).
type Snapshot struct {
	// Blocks are the attached blocks in (height, ID) order — parents
	// always precede children — genesis excluded.
	Blocks []*core.Block
	// Pending are the buffered orphans (parent not yet arrived), in
	// deterministic (missing-parent, ID) order.
	Pending []*core.Block
	// Rejected is the invalid-block counter.
	Rejected int
	// Mute preserves the withholding flag across the crash.
	Mute bool
}

// Snapshot captures the process's replica state. The caller owns the
// result; it is not affected by later process activity.
func (p *Process) Snapshot() *Snapshot {
	s := &Snapshot{Rejected: p.rejected, Mute: p.Mute}
	for _, b := range p.tree.Blocks() {
		if !b.IsGenesis() {
			s.Blocks = append(s.Blocks, b)
		}
	}
	parents := make([]core.BlockID, 0, len(p.pending))
	for parent := range p.pending {
		parents = append(parents, parent)
	}
	sort.Slice(parents, func(i, j int) bool { return parents[i] < parents[j] })
	for _, parent := range parents {
		kids := append([]*core.Block(nil), p.pending[parent]...)
		sort.Slice(kids, func(i, j int) bool { return kids[i].ID < kids[j].ID })
		s.Pending = append(s.Pending, kids...)
	}
	return s
}

// Restore replaces the process's replica state with the snapshot — the
// durable-recovery path. No history events are recorded: restoring from
// local storage is not communication, and the update events for these
// blocks were already recorded when they first arrived.
func (p *Process) Restore(s *Snapshot) {
	p.reset()
	for _, b := range s.Blocks {
		if p.tree.Attach(b) == nil {
			p.seen[b.ID] = true
		}
	}
	for _, b := range s.Pending {
		if !p.pendingHas[b.ID] {
			p.pendingHas[b.ID] = true
			p.pending[b.Parent] = append(p.pending[b.Parent], b)
			p.pendingN++
		}
	}
	p.rejected = s.Rejected
	p.Mute = s.Mute
}

// Reset discards the replica state down to genesis — the amnesia
// (non-durable) recovery path. The rejected counter survives as a
// cumulative diagnostic.
func (p *Process) Reset() { p.reset() }

func (p *Process) reset() {
	p.tree = core.NewTree()
	p.pending = make(map[core.BlockID][]*core.Block)
	p.pendingHas = make(map[core.BlockID]bool)
	p.seen = make(map[core.BlockID]bool)
	p.pendingN = 0
}

// Down reports whether this process is currently crashed. Harness
// timers call it before acting for the process.
func (p *Process) Down() bool { return p.nw.Down(p.ID) }

// CrashPlan configures Group.EnableCrashRecovery.
type CrashPlan struct {
	// Durable selects snapshot/restore recovery; false means amnesia.
	Durable bool
	// RetryAfter is the initial catch-up backoff: after each solicit
	// the replica waits this long, doubling per attempt, before
	// checking progress and re-soliciting. Default 8.
	RetryAfter int64
	// MaxRetries bounds the re-solicits per recovery. Default 3.
	MaxRetries int
}

// RecoveryStats counts crash–recovery activity across a run.
type RecoveryStats struct {
	Crashes         int // crash windows opened
	Restarts        int // recoveries fired
	DurableRestores int // restarts that restored a snapshot
	AmnesiaResets   int // restarts that rejoined from genesis
	Solicits        int // catch-up inventory solicits (incl. retries)
	Retries         int // solicits after the first per recovery
	ResyncBlocks    int // blocks (re)fetched between restart and catch-up end
}

// EnableCrashRecovery wires the group's replicas to the network's crash
// schedule: on crash a durable replica snapshots its state; on restart
// it restores (or resets, when amnesia) and catches up via the
// anti-entropy layer with bounded retry/backoff. Returns the live stats
// (also kept on g.Recovery). Anti-entropy message handlers are
// installed idempotently, so combining with EnableAntiEntropy is safe.
func (g *Group) EnableCrashRecovery(sim *simnet.Sim, plan CrashPlan) *RecoveryStats {
	if plan.RetryAfter <= 0 {
		plan.RetryAfter = 8
	}
	if plan.MaxRetries <= 0 {
		plan.MaxRetries = 3
	}
	stats := &RecoveryStats{}
	g.Recovery = stats
	for _, p := range g.Procs {
		p.installAntiEntropy()
	}
	snaps := make(map[int]*Snapshot)
	g.Net.OnCrash(func(id int) {
		stats.Crashes++
		if plan.Durable {
			snaps[id] = g.Procs[id].Snapshot()
		}
	})
	g.Net.OnRestart(func(id int) {
		stats.Restarts++
		p := g.Procs[id]
		if plan.Durable {
			if s := snaps[id]; s != nil {
				p.Restore(s)
				stats.DurableRestores++
			}
		} else {
			p.Reset()
			stats.AmnesiaResets++
		}
		g.catchUp(sim, p, plan, stats, 0, plan.RetryAfter, p.tree.Len())
	})
	return stats
}

// catchUp solicits peer inventories for a restarted replica and checks
// progress after a backoff, re-soliciting (with the backoff doubled) up
// to plan.MaxRetries times. Catch-up ends when the replica has no
// orphans left and made progress since the last solicit, or when the
// retries are exhausted; the blocks gained since restart are then added
// to stats.ResyncBlocks.
func (g *Group) catchUp(sim *simnet.Sim, p *Process, plan CrashPlan, stats *RecoveryStats, attempt int, backoff int64, lenAtRestart int) {
	if p.Down() {
		return // crashed again before this attempt; the next restart re-enters
	}
	stats.Solicits++
	if attempt > 0 {
		stats.Retries++
	}
	lenAtSolicit := p.tree.Len()
	p.nw.Broadcast(p.ID, SyncMsg{})
	sim.Schedule(backoff, func() {
		if p.Down() {
			return
		}
		progressed := p.tree.Len() > lenAtSolicit && p.PendingCount() == 0
		if progressed || attempt+1 >= plan.MaxRetries {
			stats.ResyncBlocks += p.tree.Len() - lenAtRestart
			return
		}
		g.catchUp(sim, p, plan, stats, attempt+1, backoff*2, lenAtRestart)
	})
}
