package replica

import (
	"testing"

	"repro/internal/consistency"
	"repro/internal/core"
	"repro/internal/history"
	"repro/internal/simnet"
)

func mkBlock(parent *core.Block, creator, round int) *core.Block {
	return core.NewBlock(parent.ID, parent.Height+1, creator, round, []byte{byte(round)})
}

func TestAppendLocalFloodsAndConverges(t *testing.T) {
	sim := simnet.NewSim(1)
	g := NewGroup(sim, 4, simnet.Synchronous{Delta: 3}, core.LongestChain{})
	b := mkBlock(core.Genesis(), 0, 1)
	sim.Schedule(1, func() { g.Procs[0].AppendLocal(b) })
	sim.RunUntilIdle()
	for p, proc := range g.Procs {
		if !proc.Tree().Has(b.ID) {
			t.Fatalf("process %d missing the block", p)
		}
	}
	h := g.History()
	if got := len(h.CommOf(history.EvSend)); got != 1 {
		t.Fatalf("%d sends", got)
	}
	if got := len(h.CommOf(history.EvReceive)); got != 4 {
		t.Fatalf("%d receives (loopback included)", got)
	}
	if got := len(h.CommOf(history.EvUpdate)); got != 4 {
		t.Fatalf("%d updates", got)
	}
}

func TestOutOfOrderDeliveryBuffered(t *testing.T) {
	// Child may arrive before parent under a wide delay spread; the
	// pending buffer must hold it and flush on the parent's arrival.
	sim := simnet.NewSim(7)
	g := NewGroup(sim, 3, simnet.Synchronous{Delta: 10}, core.LongestChain{})
	b1 := mkBlock(core.Genesis(), 0, 1)
	b2 := mkBlock(b1, 0, 2)
	b3 := mkBlock(b2, 0, 3)
	sim.Schedule(1, func() {
		g.Procs[0].AppendLocal(b1)
		g.Procs[0].AppendLocal(b2)
		g.Procs[0].AppendLocal(b3)
	})
	sim.RunUntilIdle()
	for p, proc := range g.Procs {
		if proc.Tree().Len() != 4 {
			t.Fatalf("process %d has %d blocks", p, proc.Tree().Len())
		}
		if proc.PendingCount() != 0 {
			t.Fatalf("process %d still buffering", p)
		}
	}
}

func TestAppendLocalRecordsAppendOp(t *testing.T) {
	sim := simnet.NewSim(2)
	g := NewGroup(sim, 2, nil, core.LongestChain{})
	b := mkBlock(core.Genesis(), 1, 1)
	ok := false
	sim.Schedule(1, func() { ok = g.Procs[1].AppendLocal(b) })
	sim.RunUntilIdle()
	if !ok {
		t.Fatal("append failed")
	}
	h := g.History()
	aps := h.SuccessfulAppends()
	if len(aps) != 1 || aps[0].Proc != 1 || aps[0].Block.ID != b.ID {
		t.Fatalf("append op wrong: %v", aps)
	}
	if g.Reg.Creators()[b.ID] != 1 {
		t.Fatal("creator registry wrong")
	}
}

func TestDuplicateAppendRejected(t *testing.T) {
	sim := simnet.NewSim(3)
	g := NewGroup(sim, 2, nil, core.LongestChain{})
	b := mkBlock(core.Genesis(), 0, 1)
	var first, second bool
	sim.Schedule(1, func() {
		first = g.Procs[0].AppendLocal(b)
		second = g.Procs[0].AppendLocal(b)
	})
	sim.RunUntilIdle()
	if !first || second {
		t.Fatalf("first=%v second=%v", first, second)
	}
	// Only one send despite the duplicate attempt.
	if got := len(g.History().CommOf(history.EvSend)); got != 1 {
		t.Fatalf("%d sends", got)
	}
}

func TestReadRecordsOperation(t *testing.T) {
	sim := simnet.NewSim(4)
	g := NewGroup(sim, 2, nil, core.LongestChain{})
	b := mkBlock(core.Genesis(), 0, 1)
	sim.Schedule(1, func() { g.Procs[0].AppendLocal(b) })
	sim.Schedule(50, func() {
		op := g.Procs[1].Read()
		if op.ChainLen != 2 {
			t.Errorf("read recorded chain length %d", op.ChainLen)
		}
	})
	sim.RunUntilIdle()
	reads := g.History().Reads()
	if len(reads) != 1 || reads[0].Proc != 1 || reads[0].Chain().Height() != 1 {
		t.Fatalf("read op wrong: %v", reads)
	}
}

func TestConcurrentForksBothRetained(t *testing.T) {
	sim := simnet.NewSim(5)
	g := NewGroup(sim, 2, simnet.Synchronous{Delta: 5}, core.LongestChain{})
	b1 := mkBlock(core.Genesis(), 0, 1)
	b2 := mkBlock(core.Genesis(), 1, 2)
	sim.Schedule(1, func() {
		g.Procs[0].AppendLocal(b1)
		g.Procs[1].AppendLocal(b2)
	})
	sim.RunUntilIdle()
	for p, proc := range g.Procs {
		tr := proc.Tree()
		if !tr.Has(b1.ID) || !tr.Has(b2.ID) {
			t.Fatalf("process %d missing a fork branch", p)
		}
		if tr.ForkCount(core.GenesisID) != 2 {
			t.Fatalf("process %d fork count %d", p, tr.ForkCount(core.GenesisID))
		}
	}
	// Deterministic selectors agree across replicas once converged.
	c0 := g.Procs[0].F.Select(g.Procs[0].Tree())
	c1 := g.Procs[1].F.Select(g.Procs[1].Tree())
	if !c0.Equal(c1) {
		t.Fatal("converged replicas select different chains")
	}
}

func TestDeliverCommittedDoesNotRebroadcast(t *testing.T) {
	sim := simnet.NewSim(6)
	g := NewGroup(sim, 2, nil, core.SingleChain{})
	b := mkBlock(core.Genesis(), 0, 1)
	sim.Schedule(1, func() {
		if !g.Procs[1].DeliverCommitted(b) {
			t.Error("deliver failed")
		}
	})
	sim.RunUntilIdle()
	h := g.History()
	if len(h.CommOf(history.EvSend)) != 0 {
		t.Fatal("DeliverCommitted broadcast something")
	}
	if len(h.CommOf(history.EvUpdate)) != 1 {
		t.Fatal("update event missing")
	}
	if !g.Procs[1].Tree().Has(b.ID) {
		t.Fatal("block not attached")
	}
}

func TestOnCommitHook(t *testing.T) {
	sim := simnet.NewSim(7)
	g := NewGroup(sim, 2, nil, core.LongestChain{})
	var committed []*core.Block
	g.Procs[1].OnCommit = func(b *core.Block) { committed = append(committed, b) }
	b := mkBlock(core.Genesis(), 0, 1)
	sim.Schedule(1, func() { g.Procs[0].AppendLocal(b) })
	sim.RunUntilIdle()
	if len(committed) != 1 || committed[0].ID != b.ID {
		t.Fatalf("hook saw %v", committed)
	}
}

func TestDropToProcessLeavesItStuck(t *testing.T) {
	sim := simnet.NewSim(8)
	g := NewGroup(sim, 3, simnet.Synchronous{Delta: 2}, core.LongestChain{})
	g.Net.SetDrop(simnet.DropToProcess(2))
	b1 := mkBlock(core.Genesis(), 0, 1)
	b2 := mkBlock(b1, 0, 2)
	sim.Schedule(1, func() { g.Procs[0].AppendLocal(b1) })
	sim.Schedule(10, func() { g.Procs[0].AppendLocal(b2) })
	sim.RunUntilIdle()
	if g.Procs[2].Tree().Len() != 1 {
		t.Fatal("partitioned process received blocks")
	}
	if g.Procs[1].Tree().Len() != 3 {
		t.Fatal("connected process missed blocks")
	}
	// Update Agreement must be violated (R3).
	rep := consistency.UpdateAgreement(g.History(), g.Reg.Creators())
	if rep.OK {
		t.Fatal("partition not detected by Update Agreement")
	}
}

func TestLosslessRunSatisfiesUpdateAgreementAndLRC(t *testing.T) {
	sim := simnet.NewSim(9)
	g := NewGroup(sim, 4, simnet.Synchronous{Delta: 4}, core.LongestChain{})
	parent := core.Genesis()
	for i := 0; i < 6; i++ {
		b := mkBlock(parent, i%4, i)
		parent = b
		p := i % 4
		tt := int64(i*10 + 1)
		sim.Schedule(tt, func() { g.Procs[p].AppendLocal(b) })
	}
	sim.RunUntilIdle()
	h := g.History()
	if rep := consistency.UpdateAgreement(h, g.Reg.Creators()); !rep.OK {
		t.Fatalf("update agreement: %v", rep.Violations)
	}
	if rep := consistency.LRC(h); !rep.OK {
		t.Fatalf("LRC: %v", rep.Violations)
	}
}

func TestRegistryFirstWriterWins(t *testing.T) {
	r := NewRegistry()
	r.Record("x", 1)
	r.Record("x", 2)
	if r.Creators()["x"] != 1 {
		t.Fatal("registry overwrote first creator")
	}
}
