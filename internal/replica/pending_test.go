package replica

import (
	"testing"

	"repro/internal/core"
	"repro/internal/history"
	"repro/internal/simnet"
)

// TestPendingBufferDedup pins the orphan-buffer deduplication: flood
// re-deliveries of a block whose parent has not arrived must buffer it
// once, not once per delivery.
func TestPendingBufferDedup(t *testing.T) {
	sim := simnet.NewSim(3)
	g := NewGroup(sim, 2, simnet.Synchronous{Delta: 1}, core.LongestChain{})
	p := g.Procs[1]

	b1 := core.NewBlock(core.GenesisID, 1, 0, 1, []byte{1})
	b2 := core.NewBlock(b1.ID, 2, 0, 2, []byte{2})

	// Five re-deliveries of the orphan b2 (parent b1 missing).
	for i := 0; i < 5; i++ {
		p.applyUpdate(b2, false)
	}
	if got := p.PendingCount(); got != 1 {
		t.Fatalf("orphan buffered %d times, want 1", got)
	}
	// Parent arrives: the orphan flushes exactly once.
	if !p.applyUpdate(b1, false) {
		t.Fatal("parent attach failed")
	}
	if p.PendingCount() != 0 {
		t.Fatalf("pending not drained: %d", p.PendingCount())
	}
	if p.Tree().Len() != 3 {
		t.Fatalf("tree has %d blocks, want 3", p.Tree().Len())
	}
	// Exactly one update event per block at this process.
	updates := 0
	for _, e := range g.Rec.Snapshot().Comm {
		if e.Kind == history.EvUpdate && e.Proc == 1 {
			updates++
		}
	}
	if updates != 2 {
		t.Fatalf("recorded %d update events, want 2", updates)
	}
}

// TestDeepChainIterativeFlush delivers a 30000-deep chain segment in
// reverse (every block before its parent): the entire segment buffers as
// orphans and must flush iteratively when the first block arrives — the
// recursive flush this replaces consumed a stack frame per block.
func TestDeepChainIterativeFlush(t *testing.T) {
	const depth = 30000
	sim := simnet.NewSim(7)
	g := NewGroup(sim, 1, nil, core.LongestChain{})
	p := g.Procs[0]

	chain := make([]*core.Block, depth)
	parent := core.Genesis()
	for i := range chain {
		chain[i] = core.NewBlock(parent.ID, parent.Height+1, 0, i, nil)
		parent = chain[i]
	}
	// Reverse delivery: everything orphans.
	for i := depth - 1; i > 0; i-- {
		p.applyUpdate(chain[i], false)
	}
	if got := p.PendingCount(); got != depth-1 {
		t.Fatalf("buffered %d orphans, want %d", got, depth-1)
	}
	// The missing root block arrives: the whole segment flushes.
	if !p.applyUpdate(chain[0], false) {
		t.Fatal("root attach failed")
	}
	if p.PendingCount() != 0 {
		t.Fatalf("pending not drained: %d", p.PendingCount())
	}
	if got := p.Tree().Height(); got != depth {
		t.Fatalf("tree height %d, want %d", got, depth)
	}
}

// TestFlushPreservesDepthFirstOrder pins the flush order of the
// iterative worklist against the old recursion: a child's own buffered
// descendants flush before the child's next sibling.
func TestFlushPreservesDepthFirstOrder(t *testing.T) {
	sim := simnet.NewSim(11)
	g := NewGroup(sim, 1, nil, core.LongestChain{})
	p := g.Procs[0]

	root := core.NewBlock(core.GenesisID, 1, 0, 1, []byte{1})
	c1 := core.NewBlock(root.ID, 2, 0, 2, []byte{2})
	c2 := core.NewBlock(root.ID, 2, 0, 3, []byte{3})
	gc1 := core.NewBlock(c1.ID, 3, 0, 4, []byte{4})
	gc2 := core.NewBlock(c2.ID, 3, 0, 5, []byte{5})

	// Buffer in sibling order c1, c2, then their children.
	for _, b := range []*core.Block{c1, c2, gc1, gc2} {
		p.applyUpdate(b, false)
	}
	p.applyUpdate(root, false)

	var order []core.BlockID
	for _, e := range g.Rec.Snapshot().Comm {
		if e.Kind == history.EvUpdate {
			order = append(order, e.Block)
		}
	}
	want := []core.BlockID{root.ID, c1.ID, gc1.ID, c2.ID, gc2.ID}
	if len(order) != len(want) {
		t.Fatalf("recorded %d updates, want %d", len(order), len(want))
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("update order[%d] = %s, want %s (depth-first)", i, order[i].Short(), want[i].Short())
		}
	}
}
