package replica

import "repro/internal/metrics"

// RegisterMetrics instruments the replica layer. Per-process counters
// (flood broadcasts, orphan bufferings, duplicate flood deliveries,
// anti-entropy repair requests) use CounterVec slots mutated only by
// the owning process, upholding the shard-safety contract; gauges
// (orphan-buffer size, rejected blocks, attached blocks) are probes
// evaluated at serial sample points. Counts are identical across shard
// counts because every increment is driven by the same deterministic
// event sequence.
func (g *Group) RegisterMetrics(reg *metrics.Registry) {
	n := len(g.Procs)
	flood := reg.CounterVec("replica.floods", n)
	orph := reg.CounterVec("replica.orphanBuffered", n)
	dup := reg.CounterVec("replica.dupDeliveries", n)
	aereq := reg.CounterVec("replica.aeRequests", n)
	for _, p := range g.Procs {
		p.mFlood, p.mOrphan, p.mDup, p.mAEReq = flood, orph, dup, aereq
	}
	reg.Probe("replica.orphans", func() int64 {
		var s int64
		for _, p := range g.Procs {
			s += int64(p.pendingN)
		}
		return s
	})
	reg.Probe("replica.rejected", func() int64 {
		var s int64
		for _, p := range g.Procs {
			s += int64(p.rejected)
		}
		return s
	})
	reg.Probe("replica.blocks", func() int64 {
		var s int64
		for _, p := range g.Procs {
			s += int64(p.tree.Len())
		}
		return s
	})
	if rs := g.Recovery; rs != nil {
		reg.Probe("recovery.solicits", func() int64 { return int64(rs.Solicits) })
		reg.Probe("recovery.resyncBlocks", func() int64 { return int64(rs.ResyncBlocks) })
	}
}
