package replica

import (
	"testing"

	"repro/internal/consistency"
	"repro/internal/core"
	"repro/internal/simnet"
)

// transientDrop drops messages matching inner only while now < until.
func transientDrop(sim *simnet.Sim, until int64, inner simnet.DropRule) simnet.DropRule {
	return func(m simnet.Message) bool {
		return sim.Now() < until && inner(m)
	}
}

func TestAntiEntropyHealsPartition(t *testing.T) {
	sim := simnet.NewSim(1)
	g := NewGroup(sim, 4, simnet.Synchronous{Delta: 2}, core.LongestChain{})
	g.SetPredicate(core.WellFormed{})
	// Process 3 is partitioned off for the first 60 time units.
	g.Net.SetDrop(transientDrop(sim, 60, simnet.DropToProcess(3)))

	parent := core.Genesis()
	for i := 0; i < 8; i++ {
		b := mkBlock(parent, 0, i)
		parent = b
		tt := int64(i*7 + 1)
		sim.Schedule(tt, func() { g.Procs[0].AppendLocal(b) })
	}
	// Anti-entropy every 20 units for 10 rounds (well past healing).
	g.EnableAntiEntropy(sim, 20, 10)
	sim.RunUntilIdle()

	if got := g.Procs[3].Tree().Len(); got != 9 {
		t.Fatalf("partitioned replica repaired to %d blocks, want 9", got)
	}
	if g.Procs[3].PendingCount() != 0 {
		t.Fatal("orphans left after repair")
	}
}

func TestWithoutAntiEntropyPartitionIsPermanent(t *testing.T) {
	sim := simnet.NewSim(1)
	g := NewGroup(sim, 4, simnet.Synchronous{Delta: 2}, core.LongestChain{})
	g.Net.SetDrop(transientDrop(sim, 60, simnet.DropToProcess(3)))
	parent := core.Genesis()
	for i := 0; i < 8; i++ {
		b := mkBlock(parent, 0, i)
		parent = b
		tt := int64(i*7 + 1)
		sim.Schedule(tt, func() { g.Procs[0].AppendLocal(b) })
	}
	sim.RunUntilIdle()
	// All appends happened before the partition healed: without
	// repair, process 3 never recovers the lost blocks.
	if got := g.Procs[3].Tree().Len(); got != 1 {
		t.Fatalf("replica has %d blocks without repair, want 1", got)
	}
}

func TestAntiEntropyRestoresEventualConsistency(t *testing.T) {
	run := func(repair bool) *consistency.Verdict {
		sim := simnet.NewSim(5)
		g := NewGroup(sim, 3, simnet.Synchronous{Delta: 2}, core.LongestChain{})
		g.SetPredicate(core.WellFormed{})
		g.Net.SetDrop(transientDrop(sim, 40, simnet.DropToProcess(2)))

		parent := core.Genesis()
		for i := 0; i < 6; i++ {
			b := mkBlock(parent, 0, i)
			parent = b
			tt := int64(i*6 + 1)
			sim.Schedule(tt, func() { g.Procs[0].AppendLocal(b) })
			sim.Schedule(tt+2, func() {
				for _, p := range g.Procs {
					p.Read()
				}
			})
		}
		if repair {
			g.EnableAntiEntropy(sim, 15, 8)
		}
		sim.RunUntilIdle()
		for _, p := range g.Procs {
			p.Read()
		}
		for _, p := range g.Procs {
			p.Read()
		}
		chk := consistency.NewChecker(core.LengthScore{}, core.WellFormed{})
		_, ec := chk.Classify(g.History())
		return ec
	}
	if ec := run(false); ec.OK {
		t.Fatal("EC held through an unrepaired partition")
	}
	if ec := run(true); !ec.OK {
		t.Fatalf("EC still violated with anti-entropy: %v", ec.Failing())
	}
}

func TestAntiEntropyIdleIsCheap(t *testing.T) {
	// With nothing missing, inventory rounds generate no update
	// traffic (only the inv broadcasts themselves).
	sim := simnet.NewSim(9)
	g := NewGroup(sim, 3, simnet.Synchronous{Delta: 2}, core.LongestChain{})
	b := mkBlock(core.Genesis(), 0, 1)
	sim.Schedule(1, func() { g.Procs[0].AppendLocal(b) })
	sim.Run(20) // flood settles
	sentBefore, _, _ := g.Net.Stats()
	g.EnableAntiEntropy(sim, 10, 3)
	sim.RunUntilIdle()
	sentAfter, _, _ := g.Net.Stats()
	// 3 rounds × 3 processes × 3 destinations = 27 inv messages, and
	// nothing else.
	if extra := sentAfter - sentBefore; extra != 27 {
		t.Fatalf("idle anti-entropy sent %d messages, want 27", extra)
	}
}

func TestAntiEntropyRandomLossSoak(t *testing.T) {
	// 10% i.i.d. loss on every link, continuous appends, repair on:
	// all replicas converge to the full tree.
	sim := simnet.NewSim(13)
	g := NewGroup(sim, 4, simnet.Synchronous{Delta: 2}, core.LongestChain{})
	g.SetPredicate(core.WellFormed{})
	g.Net.SetDropRandom(0.10)

	for i := 0; i < 20; i++ {
		p := i % 4
		round := i
		tt := int64(i*9 + 1)
		sim.Schedule(tt, func() {
			head := g.Procs[p].SelectedHead()
			b := core.NewBlock(head.ID, head.Height+1, p, round, []byte{byte(round)})
			g.Procs[p].AppendLocal(b)
		})
	}
	g.EnableAntiEntropy(sim, 12, 40)
	sim.RunUntilIdle()

	want := g.Procs[0].Tree().Len()
	for _, p := range g.Procs {
		if p.Tree().Len() != want {
			t.Fatalf("replica %d has %d blocks, replica 0 has %d — no convergence under loss",
				p.ID, p.Tree().Len(), want)
		}
		if p.PendingCount() != 0 {
			t.Fatalf("replica %d still has orphans", p.ID)
		}
	}
}
