// Package replica implements the replicated-object view of Section 4.2:
// the BlockTree is a shared object replicated at each process; bt_i is
// the local copy at process i; histories are made of read and append
// operations plus the send, receive and update events through which
// replicas converge. The generic update implementation follows the
// paper: when process i locally produces a valid block b_i it performs
// update_i(b_g, b_i) and send_i(b_g, b_i); when process j receives
// (b_g, b_i) it performs update_j(b_g, b_i) on its replica bt_j.
package replica

import (
	"sync"

	"repro/internal/core"
	"repro/internal/history"
	"repro/internal/metrics"
	"repro/internal/simnet"
)

// UpdateMsg is the payload flooded for an update: block b chained under
// parent b_g.
type UpdateMsg struct {
	Parent core.BlockID
	Block  *core.Block
}

// Registry tracks block creators across the whole run (the ID → creator
// map the Update Agreement checker consumes) and deduplicates flooding.
type Registry struct {
	mu      sync.Mutex
	creator map[core.BlockID]int
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{creator: make(map[core.BlockID]int)}
}

// Record notes that block id was created by proc (first writer wins).
func (r *Registry) Record(id core.BlockID, proc int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.creator[id]; !ok {
		r.creator[id] = proc
	}
}

// Creators returns a copy of the ID → creator map.
func (r *Registry) Creators() map[core.BlockID]int {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make(map[core.BlockID]int, len(r.creator))
	for k, v := range r.creator {
		out[k] = v
	}
	return out
}

// Process is one replica: a process id, its local BlockTree copy, the
// selection function, and the plumbing to the network and the history
// recorder.
type Process struct {
	ID  int
	F   core.Selector
	Rec *history.Recorder
	Reg *Registry

	// P validates incoming blocks before they are applied to the
	// local replica — the replica-side half of "only valid blocks can
	// be appended": a Byzantine flooder cannot corrupt a correct
	// replica with forged blocks. Defaults to AlwaysValid.
	P core.Predicate

	nw   Net
	tree *core.Tree

	// rejected counts invalid blocks dropped by P.
	rejected int

	// pending buffers blocks whose parent has not arrived yet
	// (out-of-order delivery); keyed by the missing parent.
	pending map[core.BlockID][]*core.Block
	// pendingHas marks the buffered block IDs, so flood re-deliveries
	// of an orphan cannot inflate the buffer with duplicates.
	pendingHas map[core.BlockID]bool
	// seen deduplicates update messages (flooding re-delivers).
	seen map[core.BlockID]bool

	// OnCommit, if set, runs after a block is attached locally
	// (protocol layers hook their bookkeeping here).
	OnCommit func(b *core.Block)

	// aeInstalled marks the anti-entropy handler as registered, so
	// EnableAntiEntropy and EnableCrashRecovery can both install it
	// without double-processing inventories.
	aeInstalled bool

	// Mute, when true, suppresses the send half of AppendLocal: the
	// block is applied and recorded locally (update event, append op)
	// but never flooded — the withholding primitive adversarial
	// strategies (selfish mining, block withholding) are built on.
	// Publish releases a withheld block later.
	Mute bool

	// pendingN tracks the orphan-buffer size incrementally so the
	// metrics probe does not walk the pending map at every sample.
	pendingN int

	// Metric slots (nil when metrics are off; see Group.RegisterMetrics).
	// Each is mutated only under this process's ID — the shard-safety
	// contract that makes the counts order-free.
	mFlood, mOrphan, mDup, mAEReq *metrics.CounterVec
}

// NewProcess creates replica id over network nw — a *simnet.Network in
// simulation, a transport.Node in live deployments. The handler for the
// process is installed on the network; protocol layers that need their
// own messages should multiplex through SetAuxHandler.
func NewProcess(id int, nw Net, f core.Selector, rec *history.Recorder, reg *Registry) *Process {
	if f == nil {
		f = core.LongestChain{}
	}
	p := &Process{
		ID:         id,
		F:          f,
		Rec:        rec,
		Reg:        reg,
		P:          core.AlwaysValid{},
		nw:         nw,
		tree:       core.NewTree(),
		pending:    make(map[core.BlockID][]*core.Block),
		pendingHas: make(map[core.BlockID]bool),
		seen:       make(map[core.BlockID]bool),
	}
	// The replica handler upholds the shard-safety contract: onMessage
	// touches only this process's state (tree, seen/pending maps),
	// records and sends only as itself, and never schedules — so a
	// sharded scheduler may run replicas of different shards
	// concurrently (simnet.AddShardSafeHandler).
	nw.AddShardSafeHandler(id, p.onMessage)
	return p
}

// Tree returns the live local replica (single-threaded simulator: the
// caller must not mutate it).
func (p *Process) Tree() *core.Tree { return p.tree }

// Read performs the BT-ADT read() on the local replica, recording the
// operation as an interned (head, length) handle: the selector's
// head-only fast path picks the head and no O(height) chain is copied.
// The recorded op materializes its chain lazily (op.Chain()) from the
// recorder's shared chain table when a checker or renderer asks.
func (p *Process) Read() *history.Op {
	if p.Down() {
		return nil // a crashed process performs no operations
	}
	op := p.Rec.InvokeRead(p.ID)
	head := core.HeadOf(p.F, p.tree)
	p.Rec.RespondReadHead(op, head)
	return op
}

// SelectedHead returns the head of f(bt_i) without recording a read —
// protocol layers use it to pick the parent to mine on. It takes the
// selector's head-only fast path, so no chain is materialized.
func (p *Process) SelectedHead() *core.Block {
	return core.HeadOf(p.F, p.tree)
}

// AppendLocal performs the local half of a successful refined append at
// this process: update_i(b_g, b_i) followed by send_i(b_g, b_i)
// (flooded). It records the append operation and the update/send events.
// The block must already be validated (token stamped by the oracle or
// committed by consensus).
func (p *Process) AppendLocal(b *core.Block) bool {
	if p.Down() {
		return false // a crashed process mines and appends nothing
	}
	op := p.Rec.InvokeAppend(p.ID, b)
	ok := p.applyUpdate(b, true)
	p.Rec.RespondAppend(op, ok, b)
	if ok {
		p.Reg.Record(b.ID, p.ID)
		if !p.Mute {
			p.Rec.RecordComm(history.EvSend, p.ID, b.Parent, b.ID)
			if p.mFlood != nil {
				p.mFlood.Inc(p.ID)
			}
			p.nw.Broadcast(p.ID, UpdateMsg{Parent: b.Parent, Block: b})
		}
	}
	return ok
}

// Publish floods a block that was applied locally while Mute was set:
// the deferred send_i(b_g, b_i) of a withhold-and-release strategy. The
// block must already be in the local replica; publishing an unknown
// block is a no-op so strategies cannot desynchronize the R1 invariant.
func (p *Process) Publish(b *core.Block) bool {
	if b == nil || !p.tree.Has(b.ID) || p.Down() {
		return false
	}
	p.Rec.RecordComm(history.EvSend, p.ID, b.Parent, b.ID)
	if p.mFlood != nil {
		p.mFlood.Inc(p.ID)
	}
	p.nw.Broadcast(p.ID, UpdateMsg{Parent: b.Parent, Block: b})
	return true
}

// DeliverCommitted applies an externally committed block (consensus
// output) at this process as an update without re-broadcasting — used by
// the k=1 protocol family whose dissemination is the consensus round
// itself. The receive event is recorded by the consensus layer.
func (p *Process) DeliverCommitted(b *core.Block) bool {
	return p.applyUpdate(b, false)
}

// applyUpdate inserts b into the local replica, recording the update
// event, then flushes any buffered descendants that were waiting for
// it; local marks whether this is the creator's own update (R1 path)
// or a remote one (R2 path requires a prior receive, recorded by
// onMessage).
func (p *Process) applyUpdate(b *core.Block, local bool) bool {
	_ = local
	if !p.applyOne(b) {
		return false
	}
	// Iterative depth-first flush of the buffered orphans: the old
	// recursive flush could exhaust the stack when a deep chain
	// segment arrived parent-last. Explicit frames preserve the
	// recursion's exact event order (a child's own descendants flush
	// before its next sibling).
	type frame struct {
		kids []*core.Block
		i    int
	}
	stack := []frame{{kids: p.takePending(b.ID)}}
	for len(stack) > 0 {
		f := &stack[len(stack)-1]
		if f.i >= len(f.kids) {
			stack = stack[:len(stack)-1]
			continue
		}
		child := f.kids[f.i]
		f.i++
		if p.applyOne(child) {
			stack = append(stack, frame{kids: p.takePending(child.ID)})
		}
	}
	return true
}

// applyOne validates and attaches a single block, recording the update
// event. It reports whether the block was newly attached; blocks whose
// parent is missing are buffered (deduplicated) for the flush above.
func (p *Process) applyOne(b *core.Block) bool {
	if p.seen[b.ID] {
		return false
	}
	// Token stamps are oracle metadata, not block content: strip
	// before applying a content predicate such as WellFormed (tokenless
	// blocks — the flood hot path — validate in place, no copy).
	vb := b
	if b.Token != "" {
		nb := *b
		nb.Token = ""
		vb = &nb
	}
	if !p.P.Valid(vb) {
		p.rejected++
		return false
	}
	if !p.tree.Has(b.Parent) {
		// Parent not yet delivered: buffer once; the update event
		// will be recorded when the parent arrives.
		if !p.pendingHas[b.ID] {
			p.pendingHas[b.ID] = true
			p.pending[b.Parent] = append(p.pending[b.Parent], b)
			p.pendingN++
			if p.mOrphan != nil {
				p.mOrphan.Inc(p.ID)
			}
		}
		return false
	}
	if err := p.tree.Attach(b); err != nil {
		return false
	}
	p.seen[b.ID] = true
	p.Rec.InternBlock(b)
	p.Rec.RecordComm(history.EvUpdate, p.ID, b.Parent, b.ID)
	if p.OnCommit != nil {
		p.OnCommit(b)
	}
	return true
}

// takePending removes and returns the blocks buffered under parent id.
func (p *Process) takePending(id core.BlockID) []*core.Block {
	kids := p.pending[id]
	if len(kids) == 0 {
		return nil
	}
	delete(p.pending, id)
	for _, k := range kids {
		delete(p.pendingHas, k.ID)
	}
	p.pendingN -= len(kids)
	return kids
}

// onMessage handles network delivery: record receive_j(b_g, b_i), then
// update_j(b_g, b_i).
func (p *Process) onMessage(m simnet.Message) {
	um, ok := m.Payload.(UpdateMsg)
	if !ok {
		return
	}
	if p.seen[um.Block.ID] && m.From != p.ID {
		// Duplicate delivery via flooding: receive recorded once.
		if p.mDup != nil {
			p.mDup.Inc(p.ID)
		}
		return
	}
	p.Rec.RecordComm(history.EvReceive, p.ID, um.Parent, um.Block.ID)
	if m.From == p.ID {
		// Loopback delivery of our own send: the update was already
		// applied in AppendLocal; only the receive event matters
		// (LRC Validity).
		return
	}
	p.applyUpdate(um.Block, false)
}

// RejectedCount reports how many invalid blocks the predicate P dropped.
func (p *Process) RejectedCount() int { return p.rejected }

// PendingCount reports how many blocks are buffered waiting for parents
// (diagnostics; should be 0 at the end of a loss-free run).
func (p *Process) PendingCount() int { return p.pendingN }

// Group is a convenience bundle: n replicas over one network with a
// shared recorder and registry.
type Group struct {
	Procs []*Process
	Rec   *history.Recorder
	Reg   *Registry
	Net   *simnet.Network

	// Recovery holds the crash–recovery counters once
	// EnableCrashRecovery has been called (nil otherwise).
	Recovery *RecoveryStats
}

// NewGroup builds n replicas over sim with the given delay model and
// selector.
func NewGroup(sim *simnet.Sim, n int, delay simnet.DelayModel, f core.Selector) *Group {
	nw := simnet.NewNetwork(sim, n, delay)
	rec := history.NewRecorder(n, sim.Now)
	reg := NewRegistry()
	g := &Group{Rec: rec, Reg: reg, Net: nw}
	for i := 0; i < n; i++ {
		g.Procs = append(g.Procs, NewProcess(i, nw, f, rec, reg))
	}
	return g
}

// EnableSharding runs the group's network on a sharded scheduler with
// k worker shards (k ≤ 1 is a no-op). It wires the three pieces that
// must agree for sharded runs to stay byte-identical to serial ones:
// the simnet engine (per-shard heaps, staged sends, merge barrier),
// the recorder's staged communication events, and the barrier hook
// flushing them in global order. Call it after the group is built and
// before the run starts; protocol layers that register order-sensitive
// handlers (plain AddHandler) remain correct — their processes simply
// stay on the serial path.
func (g *Group) EnableSharding(k int) {
	g.Net.EnableSharding(k)
	if g.Net.Shards() <= 1 {
		return
	}
	g.Rec.SetShardContext(g.Net.Shards(), g.Net.ShardContext)
	g.Net.OnBarrier(g.Rec.CommitStagedComms)
}

// History snapshots the recorded history.
func (g *Group) History() *history.History { return g.Rec.Snapshot() }

// SetPredicate installs the validity predicate P at every replica.
func (g *Group) SetPredicate(p core.Predicate) {
	for _, proc := range g.Procs {
		proc.P = p
	}
}
