package replica

import (
	"repro/internal/core"
	"repro/internal/simnet"
)

// This file adds an anti-entropy (inventory/repair) layer to the
// replicated BlockTree: processes periodically advertise the leaves of
// their local tree; a receiver that is missing an advertised block — or
// that buffered a block whose parent never arrived — requests it, and
// any process holding the block re-sends it point-to-point.
//
// In the paper's terms this is a constructive implementation of the
// Light Reliable Communication abstraction (Definition 4.4) on top of
// fair-lossy channels: Theorems 4.6/4.7 prove LRC is *necessary* for BT
// Eventual Consistency; anti-entropy is the standard way real systems
// (Bitcoin's inv/getdata, gossip protocols) make it *sufficient* in the
// presence of transient loss. The ExtensionAntiEntropy experiment shows
// a transiently partitioned replica catching up once repair runs, while
// the same loss pattern without repair leaves Eventual Consistency
// broken forever.

// InvMsg advertises the sender's current leaves.
type InvMsg struct {
	Leaves []core.BlockID
}

// ReqMsg asks the receiver to re-send a block by ID.
type ReqMsg struct {
	ID core.BlockID
}

// SyncMsg solicits an immediate inventory reply — the catch-up opener a
// restarted replica broadcasts (crash.go) instead of waiting for the
// next periodic advertise round.
type SyncMsg struct{}

// EnableAntiEntropy starts the inventory/repair loop at every process of
// the group: each process broadcasts its leaves every period time units,
// `rounds` times. Message handlers for inv/req are installed
// immediately.
func (g *Group) EnableAntiEntropy(sim *simnet.Sim, period int64, rounds int) {
	for _, p := range g.Procs {
		p.installAntiEntropy()
	}
	for r := 1; r <= rounds; r++ {
		at := int64(r) * period
		sim.Schedule(at, func() {
			for _, p := range g.Procs {
				p.advertise()
			}
		})
	}
}

// installAntiEntropy registers the inv/req/sync handler for the process
// (idempotent: a second install is a no-op).
func (p *Process) installAntiEntropy() {
	if p.aeInstalled {
		return
	}
	p.aeInstalled = true
	// Shard-safe: the inv/req/sync handlers read and repair only this
	// process's tree and reply as themselves (catch-up *timers* are
	// scheduled from crash/restart hooks, which run serially).
	p.nw.AddShardSafeHandler(p.ID, func(m simnet.Message) {
		switch msg := m.Payload.(type) {
		case InvMsg:
			p.onInventory(m.From, msg)
		case ReqMsg:
			p.onRequest(m.From, msg)
		case SyncMsg:
			p.onSolicit(m.From)
		}
	})
}

// advertise broadcasts the process's current leaves. A crashed process
// advertises nothing (its periodic timer is suppressed).
func (p *Process) advertise() {
	if p.Down() {
		return
	}
	leaves := p.tree.Leaves()
	if len(leaves) == 0 {
		return
	}
	p.nw.Broadcast(p.ID, InvMsg{Leaves: leaves})
}

// onSolicit answers a catch-up solicit with a point-to-point inventory
// of this process's leaves; the requester then pulls what it is missing
// through the ordinary inv/req repair path.
func (p *Process) onSolicit(from int) {
	if from == p.ID {
		return
	}
	p.nw.Send(p.ID, from, InvMsg{Leaves: p.tree.Leaves()})
}

// onInventory requests every advertised block this process does not hold
// (missing ancestors are fetched transitively as the repaired blocks
// arrive and their parents turn out to be unknown).
func (p *Process) onInventory(from int, msg InvMsg) {
	if from == p.ID {
		return
	}
	for _, id := range msg.Leaves {
		if !p.tree.Has(id) {
			if p.mAEReq != nil {
				p.mAEReq.Inc(p.ID)
			}
			p.nw.Send(p.ID, from, ReqMsg{ID: id})
		}
	}
	// Also repair the buffered orphans: their parents are missing.
	for parent := range p.pending {
		if !p.tree.Has(parent) {
			if p.mAEReq != nil {
				p.mAEReq.Inc(p.ID)
			}
			p.nw.Send(p.ID, from, ReqMsg{ID: parent})
		}
	}
}

// onRequest re-sends a held block — and its ancestors, root-first, so a
// requester that missed a whole chain segment repairs in one round (the
// block-locator behaviour of real chain sync). The re-sends use the
// ordinary UpdateMsg path, so the receiver records the receive/update
// events the Update Agreement checker looks for.
func (p *Process) onRequest(from int, msg ReqMsg) {
	if from == p.ID || !p.tree.Has(msg.ID) {
		return
	}
	for _, b := range p.tree.ChainTo(msg.ID) {
		if b.IsGenesis() {
			continue
		}
		p.nw.Send(p.ID, from, UpdateMsg{Parent: b.Parent, Block: b})
	}
}
