package replica

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/simnet"
)

// treeDump flattens a tree to a canonical string for equality checks.
func treeDump(t *core.Tree) string {
	var b strings.Builder
	for _, blk := range t.Blocks() {
		fmt.Fprintf(&b, "%s<-%s;", blk.ID.Short(), blk.Parent.Short())
	}
	return b.String()
}

// snapshotDump renders a snapshot's pending buffer for equality checks.
func pendingDump(p *Process) string {
	var b strings.Builder
	for _, blk := range p.Snapshot().Pending {
		fmt.Fprintf(&b, "%s<-%s;", blk.ID.Short(), blk.Parent.Short())
	}
	return b.String()
}

// crashRig builds a 3-proc group where proc 0 appends a block every 5
// ticks for `rounds` rounds, proc 2 crashes during [30, 60), and crash
// recovery runs with the given durability.
func crashRig(t *testing.T, durable bool, rounds int) (*simnet.Sim, *Group, map[string]string) {
	t.Helper()
	sim := simnet.NewSim(11)
	g := NewGroup(sim, 3, simnet.Synchronous{Delta: 2}, core.LongestChain{})
	g.SetPredicate(core.WellFormed{})
	g.Net.RecordFaults(true)
	g.Net.SetSchedule(&simnet.Schedule{Crashes: []simnet.CrashWindow{simnet.Crash(2, 30, 60)}})
	g.EnableCrashRecovery(sim, CrashPlan{Durable: durable})

	parent := core.Genesis()
	for i := 0; i < rounds; i++ {
		b := mkBlock(parent, 0, i)
		parent = b
		sim.Schedule(int64(i*5+1), func() { g.Procs[0].AppendLocal(b) })
	}

	// Probes around the crash boundaries, registered after
	// EnableCrashRecovery so they observe the post-snapshot /
	// post-restore state.
	probes := map[string]string{}
	g.Net.OnCrash(func(p int) { probes["atCrash"] = treeDump(g.Procs[p].Tree()) })
	g.Net.OnRestart(func(p int) { probes["atRestart"] = treeDump(g.Procs[p].Tree()) })
	return sim, g, probes
}

func TestDurableRestoreEqualsPreCrashTree(t *testing.T) {
	sim, g, probes := crashRig(t, true, 16)
	sim.RunUntilIdle()

	if probes["atCrash"] == "" || probes["atRestart"] == "" {
		t.Fatal("crash/restart probes did not fire")
	}
	if probes["atRestart"] != probes["atCrash"] {
		t.Fatalf("durable restore differs from pre-crash tree:\npre:  %s\npost: %s",
			probes["atCrash"], probes["atRestart"])
	}
	// Catch-up must still converge the replica with the rest.
	if got, want := treeDump(g.Procs[2].Tree()), treeDump(g.Procs[0].Tree()); got != want {
		t.Fatalf("recovered replica did not converge:\np0: %s\np2: %s", want, got)
	}
	st := g.Recovery
	if st.Crashes != 1 || st.Restarts != 1 || st.DurableRestores != 1 || st.AmnesiaResets != 0 {
		t.Fatalf("recovery stats %+v, want one durable crash/restart", st)
	}
}

func TestAmnesiaRejoinsFromGenesisAndResyncs(t *testing.T) {
	sim, g, probes := crashRig(t, false, 16)
	sim.RunUntilIdle()

	// Amnesia restart begins from a bare genesis tree.
	if want := treeDump(core.NewTree()); probes["atRestart"] != want {
		t.Fatalf("amnesia restart tree = %s, want bare genesis", probes["atRestart"])
	}
	if got, want := treeDump(g.Procs[2].Tree()), treeDump(g.Procs[0].Tree()); got != want {
		t.Fatalf("amnesia replica did not resync:\np0: %s\np2: %s", want, got)
	}
	st := g.Recovery
	if st.AmnesiaResets != 1 || st.DurableRestores != 0 {
		t.Fatalf("recovery stats %+v, want one amnesia reset", st)
	}
}

func TestDurableResyncCheaperThanAmnesia(t *testing.T) {
	simD, gD, _ := crashRig(t, true, 16)
	simD.RunUntilIdle()
	simA, gA, _ := crashRig(t, false, 16)
	simA.RunUntilIdle()
	if gA.Recovery.ResyncBlocks <= gD.Recovery.ResyncBlocks {
		t.Fatalf("amnesia resynced %d blocks, durable %d — amnesia should cost strictly more",
			gA.Recovery.ResyncBlocks, gD.Recovery.ResyncBlocks)
	}
}

func TestCrashStopReplicaStaysDown(t *testing.T) {
	sim := simnet.NewSim(7)
	g := NewGroup(sim, 3, simnet.Synchronous{Delta: 2}, core.LongestChain{})
	g.Net.SetSchedule(&simnet.Schedule{Crashes: []simnet.CrashWindow{simnet.CrashStop(1, 20)}})
	g.EnableCrashRecovery(sim, CrashPlan{Durable: true})

	parent := core.Genesis()
	for i := 0; i < 10; i++ {
		b := mkBlock(parent, 0, i)
		parent = b
		sim.Schedule(int64(i*5+1), func() { g.Procs[0].AppendLocal(b) })
	}
	sim.Run(200)

	if g.Recovery.Restarts != 0 {
		t.Fatalf("crash-stop fired %d restarts", g.Recovery.Restarts)
	}
	if !g.Procs[1].Down() {
		t.Fatal("crash-stopped replica reports up")
	}
	if g.Procs[1].Read() != nil {
		t.Fatal("crash-stopped replica served a read")
	}
	if g.Procs[1].AppendLocal(mkBlock(parent, 1, 99)) {
		t.Fatal("crash-stopped replica accepted an append")
	}
	// Its tree froze at the crash: only blocks delivered before t=20.
	if got, all := g.Procs[1].Tree().Len(), g.Procs[0].Tree().Len(); got >= all {
		t.Fatalf("crash-stopped tree has %d blocks, all %d — should have missed the tail", got, all)
	}
}

// TestCatchUpRetriesWhenInventoryLost drops every inv reply to the
// recovering process until well past the first backoff: the first
// solicit goes unanswered and the bounded retry must re-solicit and
// eventually converge.
func TestCatchUpRetriesWhenInventoryLost(t *testing.T) {
	sim := simnet.NewSim(3)
	g := NewGroup(sim, 3, simnet.Synchronous{Delta: 2}, core.LongestChain{})
	g.SetPredicate(core.WellFormed{})
	g.Net.SetSchedule(&simnet.Schedule{Crashes: []simnet.CrashWindow{simnet.Crash(2, 10, 40)}})
	// Drop inv replies to p2 until t=50 (past restart at 40 and the
	// first backoff window), so the initial solicit is wasted.
	g.Net.SetDrop(func(m simnet.Message) bool {
		if _, ok := m.Payload.(InvMsg); !ok {
			return false
		}
		return m.To == 2 && sim.Now() < 50
	})
	g.EnableCrashRecovery(sim, CrashPlan{Durable: false, RetryAfter: 8, MaxRetries: 4})

	parent := core.Genesis()
	for i := 0; i < 6; i++ {
		b := mkBlock(parent, 0, i)
		parent = b
		sim.Schedule(int64(i*4+1), func() { g.Procs[0].AppendLocal(b) })
	}
	sim.RunUntilIdle()

	if g.Recovery.Retries == 0 {
		t.Fatalf("no retries recorded (stats %+v) though the first solicit was unanswered", g.Recovery)
	}
	if got, want := treeDump(g.Procs[2].Tree()), treeDump(g.Procs[0].Tree()); got != want {
		t.Fatalf("retrying catch-up did not converge:\np0: %s\np2: %s", want, got)
	}
}

// TestSnapshotRoundTripsPending crashes a process while an orphan sits
// in its pending buffer; the durable restore must bring the orphan back
// so the parent's later arrival flushes it.
func TestSnapshotRoundTripsPending(t *testing.T) {
	sim := simnet.NewSim(5)
	g := NewGroup(sim, 2, simnet.Synchronous{Delta: 1}, core.LongestChain{})
	p := g.Procs[0]

	b1 := mkBlock(core.Genesis(), 1, 0)
	b2 := mkBlock(b1, 1, 1)
	// Deliver the child before the parent: b2 is buffered.
	p.applyUpdate(b2, false)
	if p.PendingCount() != 1 {
		t.Fatalf("pending = %d, want 1", p.PendingCount())
	}
	before := pendingDump(p)

	snap := p.Snapshot()
	p.Reset()
	if p.PendingCount() != 0 {
		t.Fatal("reset kept pending blocks")
	}
	p.Restore(snap)
	if got := pendingDump(p); got != before {
		t.Fatalf("pending buffer after restore = %q, want %q", got, before)
	}
	// Parent arrives: the restored orphan must flush.
	p.applyUpdate(b1, false)
	if !p.Tree().Has(b2.ID) || p.PendingCount() != 0 {
		t.Fatalf("orphan did not flush after restore: has=%v pending=%d", p.Tree().Has(b2.ID), p.PendingCount())
	}
}

// FuzzDurableRestore drives a random append/crash schedule and asserts
// the satellite invariant: at every restart of a durable replica, the
// restored tree is byte-identical to the tree at the matching crash.
func FuzzDurableRestore(f *testing.F) {
	f.Add(uint64(1), int64(20), int64(50), uint8(10))
	f.Add(uint64(9), int64(0), int64(35), uint8(25))
	f.Add(uint64(42), int64(60), int64(61), uint8(5))
	f.Fuzz(func(t *testing.T, seed uint64, start, end int64, nblocks uint8) {
		if start < 0 {
			start = -start
		}
		start %= 90
		if end < 0 {
			end = -end
		}
		end = start + 1 + end%90

		sim := simnet.NewSim(seed)
		g := NewGroup(sim, 3, simnet.Synchronous{Delta: 2}, core.LongestChain{})
		g.SetPredicate(core.WellFormed{})
		g.Net.SetSchedule(&simnet.Schedule{Crashes: []simnet.CrashWindow{simnet.Crash(2, start, end)}})
		g.EnableCrashRecovery(sim, CrashPlan{Durable: true})

		var atCrash, atRestart string
		g.Net.OnCrash(func(p int) { atCrash = treeDump(g.Procs[p].Tree()) + "|" + pendingDump(g.Procs[p]) })
		g.Net.OnRestart(func(p int) { atRestart = treeDump(g.Procs[p].Tree()) + "|" + pendingDump(g.Procs[p]) })

		rng := sim.RNG().Split()
		parent := core.Genesis()
		n := int(nblocks%30) + 1
		for i := 0; i < n; i++ {
			creator := rng.Intn(2) // procs 0 and 1 mine; 2 is the crasher
			b := mkBlock(parent, creator, i)
			if rng.Intn(3) > 0 {
				parent = b // sometimes fork instead of extending
			}
			at := int64(rng.Intn(100))
			proc := g.Procs[creator]
			sim.At(at, func() { proc.AppendLocal(b) })
		}
		sim.RunUntilIdle()

		if atCrash == "" {
			t.Fatal("crash probe did not fire")
		}
		if atRestart != atCrash {
			t.Fatalf("durable restore differs from pre-crash state:\npre:  %s\npost: %s", atCrash, atRestart)
		}
	})
}
