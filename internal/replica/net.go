package replica

import "repro/internal/simnet"

// Net is the message-layer contract a Process needs from whatever
// carries its traffic: handler registration, point-to-point send,
// broadcast, and the crash predicate. *simnet.Network satisfies it for
// deterministic simulation; internal/transport provides live
// implementations (in-process channels, TCP) so the same Process code
// runs unchanged as a real concurrent deployment. Implementations must
// deliver messages from one peer in send order (per-peer FIFO is what
// the orphan-buffer bound and the anti-entropy segment repair assume).
type Net interface {
	// AddShardSafeHandler registers a delivery handler for process p.
	// The "shard-safe" contract carries over from simnet: the handler
	// touches only process p's state and sends only as p, so carriers
	// may run handlers of different processes concurrently as long as
	// each process's handlers run serially.
	AddShardSafeHandler(p int, h simnet.Handler)
	// Send queues payload from one process to another.
	Send(from, to int, payload any)
	// Broadcast queues payload from p to every other process.
	Broadcast(from int, payload any)
	// Down reports whether process p is currently crashed.
	Down(p int) bool
}

// InstallAntiEntropy registers the inventory/repair (inv/req/sync)
// handlers for this process without scheduling any periodic timers —
// the entry point for live deployments, whose timers are wall-clock
// and owned by the transport layer. Idempotent.
func (p *Process) InstallAntiEntropy() { p.installAntiEntropy() }

// SolicitSync broadcasts a catch-up solicit: every peer answers with a
// point-to-point inventory of its leaves, and this process pulls what
// it is missing through the ordinary inv/req repair path. A restarted
// live node calls this (with transport-level retry backoff) to rejoin.
func (p *Process) SolicitSync() {
	if p.Down() {
		return
	}
	p.nw.Broadcast(p.ID, SyncMsg{})
}

// Advertise broadcasts this process's current leaves — one round of the
// periodic anti-entropy loop, exposed so live deployments can drive it
// from wall-clock tickers.
func (p *Process) Advertise() { p.advertise() }

// TreeLen reports the number of blocks attached to the local replica
// (genesis included) — the progress measure live catch-up polls.
func (p *Process) TreeLen() int { return p.tree.Len() }
