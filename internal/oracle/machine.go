package oracle

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/adt"
	"repro/internal/core"
	"repro/internal/tape"
)

// This file instantiates the Θ-ADT (Definitions 3.5-3.6) as a sequential
// adt.Machine, mirroring the transition system of Figure 6. The abstract
// state ξ = ({tape_α1, tape_α2, ...}, K, k) is modeled as immutable tape
// *positions* over a shared lazily-materialized tape set (popping a tape
// advances its position in the successor state), so Step never mutates
// its argument, as the framework requires.

// ThetaState is the abstract oracle state for the machine instance.
type ThetaState struct {
	// Pos maps each merit to the number of cells popped from its tape.
	Pos map[tape.Merit]int
	// K maps each object (parent block ID) to the validated blocks
	// whose tokens were consumed for it.
	K map[core.BlockID][]*core.Block
	// KBound is k (Unbounded for Θ_P).
	KBound int

	tapes *tape.Set
}

func (s ThetaState) clone() ThetaState {
	ns := ThetaState{
		Pos:    make(map[tape.Merit]int, len(s.Pos)),
		K:      make(map[core.BlockID][]*core.Block, len(s.K)),
		KBound: s.KBound,
		tapes:  s.tapes,
	}
	for m, p := range s.Pos {
		ns.Pos[m] = p
	}
	for id, set := range s.K {
		cp := make([]*core.Block, len(set))
		copy(cp, set)
		ns.K[id] = cp
	}
	return ns
}

// GetTokenInput is the input symbol getToken(obj_h, obj_ℓ) invoked by a
// process with merit Merit: gain a token to chain a block with the given
// payload to Parent.
type GetTokenInput struct {
	Merit   tape.Merit
	Parent  *core.Block
	Creator int
	Round   int
	Payload []byte
}

// Op returns "getToken".
func (g GetTokenInput) Op() string { return "getToken" }

// Key distinguishes getToken symbols by merit and target object.
func (g GetTokenInput) Key() string {
	return fmt.Sprintf("getToken(α=%g,%s)", float64(g.Merit), g.Parent.ID.Short())
}

// ConsumeTokenInput is the input symbol consumeToken(obj^{tkn_h}_ℓ).
type ConsumeTokenInput struct{ Block *core.Block }

// Op returns "consumeToken".
func (c ConsumeTokenInput) Op() string { return "consumeToken" }

// Key distinguishes consumeToken symbols by the validated block.
func (c ConsumeTokenInput) Key() string {
	return fmt.Sprintf("consumeToken(%s)", c.Block.ID.Short())
}

// TokenOutput is the output of getToken: the validated block, or ⊥.
type TokenOutput struct{ Block *core.Block }

// Encode renders the validated block ID or "⊥".
func (t TokenOutput) Encode() string {
	if t.Block == nil {
		return "⊥"
	}
	return "obj^tkn:" + string(t.Block.ID.Short())
}

// KSetOutput is the output of consumeToken: get(K, h).
type KSetOutput struct{ Set []*core.Block }

// Encode renders the K[h] contents as a sorted ID set.
func (k KSetOutput) Encode() string {
	ids := make([]string, len(k.Set))
	for i, b := range k.Set {
		ids[i] = b.ID.Short()
	}
	sort.Strings(ids)
	return "{" + strings.Join(ids, ",") + "}"
}

// NewThetaMachine builds the Θ_F,k machine (Θ_P with k = Unbounded) over
// tapes seeded with seed and validity predicate P (nil means well-formed
// modulo token stamping).
func NewThetaMachine(k int, m tape.Mapping, p core.Predicate, seed uint64) *adt.Machine[ThetaState] {
	if k < 1 {
		panic("oracle: k must be >= 1")
	}
	if p == nil {
		p = core.WellFormed{}
	}
	tapes := tape.NewSet(m, seed)
	valid := func(b *core.Block) bool {
		nb := *b
		nb.Token = ""
		return p.Valid(&nb)
	}
	return &adt.Machine[ThetaState]{
		Name: fmt.Sprintf("Θ-ADT(k=%d)", k),
		Initial: func() ThetaState {
			return ThetaState{
				Pos:    make(map[tape.Merit]int),
				K:      make(map[core.BlockID][]*core.Block),
				KBound: k,
				tapes:  tapes,
			}
		},
		Step: func(st ThetaState, in adt.Input) (ThetaState, adt.Output) {
			switch sym := in.(type) {
			case GetTokenInput:
				ns := st.clone()
				pos := st.Pos[sym.Merit]
				cell := st.tapes.Tape(sym.Merit).Peek(pos)
				ns.Pos[sym.Merit] = pos + 1
				if cell != tape.Token || sym.Parent == nil {
					return ns, TokenOutput{}
				}
				b := core.NewBlock(sym.Parent.ID, sym.Parent.Height+1, sym.Creator, sym.Round, sym.Payload)
				b = b.WithToken(TokenName(sym.Parent.ID))
				if !valid(b) {
					return ns, TokenOutput{}
				}
				return ns, TokenOutput{Block: b}
			case ConsumeTokenInput:
				b := sym.Block
				if b == nil || b.Token != TokenName(b.Parent) || !valid(b) {
					return st, KSetOutput{Set: st.K[blockParent(b)]}
				}
				set := st.K[b.Parent]
				for _, prev := range set {
					if prev.ID == b.ID {
						return st, KSetOutput{Set: set}
					}
				}
				if len(set) >= st.KBound {
					return st, KSetOutput{Set: set}
				}
				ns := st.clone()
				ns.K[b.Parent] = append(ns.K[b.Parent], b)
				return ns, KSetOutput{Set: ns.K[b.Parent]}
			default:
				panic(fmt.Sprintf("oracle: Θ-ADT does not accept input %T", in))
			}
		},
		Equal: func(a, b ThetaState) bool {
			if len(a.Pos) != len(b.Pos) || len(a.K) != len(b.K) {
				return false
			}
			for m, p := range a.Pos {
				if b.Pos[m] != p {
					return false
				}
			}
			for id, set := range a.K {
				other := b.K[id]
				if len(other) != len(set) {
					return false
				}
				for i := range set {
					if set[i].ID != other[i].ID {
						return false
					}
				}
			}
			return true
		},
	}
}

func blockParent(b *core.Block) core.BlockID {
	if b == nil {
		return ""
	}
	return b.Parent
}
