package oracle

import (
	"sync"
	"testing"
	"testing/quick"

	"repro/internal/core"
	"repro/internal/tape"
)

func TestTokenName(t *testing.T) {
	if TokenName("abc") != "tkn(abc)" {
		t.Fatalf("token name %q", TokenName("abc"))
	}
}

func TestGetTokenGrantsValidatedBlock(t *testing.T) {
	o := NewProdigal(nil, core.WellFormed{}, 1)
	g := core.Genesis()
	b, attempts := MineToken(o, 0.5, g, 3, 7, []byte("x"), 0)
	if b == nil {
		t.Fatal("no token in 2^20 attempts at p=0.5")
	}
	if attempts < 1 {
		t.Fatal("attempt count wrong")
	}
	if b.Parent != g.ID || b.Height != 1 || b.Creator != 3 || b.Round != 7 {
		t.Fatalf("validated block wrong: %+v", b)
	}
	if b.Token != TokenName(g.ID) {
		t.Fatalf("token %q", b.Token)
	}
}

func TestGetTokenRespectsMeritZero(t *testing.T) {
	o := NewProdigal(nil, core.WellFormed{}, 1)
	g := core.Genesis()
	for i := 0; i < 100; i++ {
		if _, ok := o.GetToken(0, g, 0, i, nil); ok {
			t.Fatal("merit-0 process got a token")
		}
	}
}

func TestGetTokenNilParent(t *testing.T) {
	o := NewProdigal(nil, core.AlwaysValid{}, 1)
	if _, ok := o.GetToken(1, nil, 0, 0, nil); ok {
		t.Fatal("token granted for nil parent")
	}
}

func TestGetTokenRejectsInvalidPredicate(t *testing.T) {
	o := NewProdigal(nil, core.RejectAll{}, 1)
	g := core.Genesis()
	for i := 0; i < 64; i++ {
		if _, ok := o.GetToken(1, g, 0, i, nil); ok {
			t.Fatal("oracle validated a block with P(b)=false")
		}
	}
}

func TestConsumeTokenFrugalBound(t *testing.T) {
	o := NewFrugal(2, nil, core.WellFormed{}, 3)
	g := core.Genesis()
	consumed := 0
	for i := 0; i < 64; i++ {
		b, ok := o.GetToken(0.9, g, i, i, []byte{byte(i)})
		if !ok {
			continue
		}
		if _, ok := o.ConsumeToken(b); ok {
			consumed++
		}
	}
	if consumed != 2 {
		t.Fatalf("consumed %d tokens for one object at k=2", consumed)
	}
	if got := len(o.K(g.ID)); got != 2 {
		t.Fatalf("|K[b0]| = %d", got)
	}
}

func TestConsumeTokenIdempotentPerBlock(t *testing.T) {
	o := NewFrugal(4, nil, core.WellFormed{}, 5)
	g := core.Genesis()
	b, _ := MineToken(o, 0.9, g, 0, 0, []byte("once"), 0)
	if _, ok := o.ConsumeToken(b); !ok {
		t.Fatal("first consume failed")
	}
	if _, ok := o.ConsumeToken(b); ok {
		t.Fatal("a token was consumed twice")
	}
	if got := len(o.K(g.ID)); got != 1 {
		t.Fatalf("|K| = %d after double consume", got)
	}
}

func TestConsumeTokenRejectsForgery(t *testing.T) {
	o := NewFrugal(4, nil, core.WellFormed{}, 7)
	g := core.Genesis()
	// No token at all.
	plain := core.NewBlock(g.ID, 1, 0, 0, nil)
	if _, ok := o.ConsumeToken(plain); ok {
		t.Fatal("tokenless block consumed")
	}
	// Token for a different object.
	wrong := plain.WithToken(TokenName("elsewhere"))
	if _, ok := o.ConsumeToken(wrong); ok {
		t.Fatal("mismatched token consumed")
	}
	// Tampered content under WellFormed.
	forged := plain.WithToken(TokenName(g.ID))
	forged.Payload = []byte("tampered")
	if _, ok := o.ConsumeToken(forged); ok {
		t.Fatal("tampered block consumed")
	}
	if _, ok := o.ConsumeToken(nil); ok {
		t.Fatal("nil consumed")
	}
}

func TestProdigalUnbounded(t *testing.T) {
	o := NewProdigal(nil, core.WellFormed{}, 11)
	g := core.Genesis()
	consumed := 0
	for i := 0; i < 200; i++ {
		if b, ok := o.GetToken(0.9, g, i, i, []byte{byte(i)}); ok {
			if _, ok2 := o.ConsumeToken(b); ok2 {
				consumed++
			}
		}
	}
	if consumed < 150 {
		t.Fatalf("prodigal consumed only %d/200", consumed)
	}
	if o.MaxForks() != Unbounded || o.Name() != "ΘP" {
		t.Fatalf("prodigal identity wrong: %d %s", o.MaxForks(), o.Name())
	}
}

func TestFrugalName(t *testing.T) {
	if got := NewFrugal(3, nil, nil, 0).Name(); got != "ΘF,k=3" {
		t.Fatalf("name %q", got)
	}
}

func TestNewFrugalPanicsOnBadK(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("k=0 accepted")
		}
	}()
	NewFrugal(0, nil, nil, 0)
}

func TestStats(t *testing.T) {
	o := NewFrugal(1, nil, core.WellFormed{}, 13)
	g := core.Genesis()
	b, attempts := MineToken(o, 0.5, g, 0, 0, nil, 0)
	o.ConsumeToken(b)
	o.ConsumeToken(b) // rejected
	gets, grants, consumed, rejected := o.Stats()
	if gets != attempts || grants != 1 || consumed != 1 || rejected != 1 {
		t.Fatalf("stats %d/%d/%d/%d (attempts %d)", gets, grants, consumed, rejected, attempts)
	}
}

func TestOracleConcurrentSafety(t *testing.T) {
	o := NewFrugal(1, nil, core.WellFormed{}, 17)
	g := core.Genesis()
	var wg sync.WaitGroup
	wins := make([]bool, 8)
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			b, _ := MineToken(o, 0.5, g, i, i, []byte{byte(i)}, 0)
			if b == nil {
				return
			}
			_, ok := o.ConsumeToken(b)
			wins[i] = ok
		}(i)
	}
	wg.Wait()
	n := 0
	for _, w := range wins {
		if w {
			n++
		}
	}
	if n != 1 {
		t.Fatalf("%d winners at k=1", n)
	}
}

func TestMachineMatchesObject(t *testing.T) {
	// The sequential machine and the concurrent object, driven with
	// the same seed and the same operation sequence, must agree on
	// every output.
	const seed = 23
	obj := NewFrugal(2, nil, core.AlwaysValid{}, seed)
	m := NewThetaMachine(2, nil, core.AlwaysValid{}, seed)
	g := core.Genesis()
	st := m.Initial()

	for i := 0; i < 40; i++ {
		in := GetTokenInput{Merit: 0.5, Parent: g, Creator: 1, Round: i, Payload: []byte{byte(i)}}
		var out any
		st, out = m.Step(st, in)
		mb := out.(TokenOutput).Block
		ob, ook := obj.GetToken(0.5, g, 1, i, []byte{byte(i)})
		if (mb == nil) != !ook {
			t.Fatalf("step %d: machine granted=%v object granted=%v", i, mb != nil, ook)
		}
		if mb != nil && ob != nil && mb.ID != ob.ID {
			t.Fatalf("step %d: machine block %s, object block %s", i, mb.ID.Short(), ob.ID.Short())
		}
		if mb != nil {
			cin := ConsumeTokenInput{Block: mb}
			var cout any
			st, cout = m.Step(st, cin)
			mset := cout.(KSetOutput).Set
			oset, _ := obj.ConsumeToken(ob)
			if len(mset) != len(oset) {
				t.Fatalf("step %d: K sizes %d vs %d", i, len(mset), len(oset))
			}
		}
	}
}

func TestMachineStepPure(t *testing.T) {
	m := NewThetaMachine(1, nil, core.AlwaysValid{}, 29)
	g := core.Genesis()
	st := m.Initial()
	in := GetTokenInput{Merit: 1, Parent: g, Creator: 0, Round: 0, Payload: nil}
	next, out := m.Step(st, in)
	if len(st.Pos) != 0 {
		t.Fatal("Step mutated input state positions")
	}
	if next.Pos[1] != 1 {
		t.Fatal("successor state did not advance the tape")
	}
	b := out.(TokenOutput).Block
	if b == nil {
		t.Fatal("p=1 tape denied a token")
	}
	// Consuming on the original state must still see an empty K.
	_, out2 := m.Step(st, ConsumeTokenInput{Block: b})
	if got := out2.(KSetOutput); len(got.Set) != 1 {
		t.Fatalf("consume on fresh state: K=%s", got.Encode())
	}
}

func TestMachineConsumeBounds(t *testing.T) {
	m := NewThetaMachine(1, nil, core.AlwaysValid{}, 31)
	g := core.Genesis()
	st := m.Initial()
	var blocks []*core.Block
	for i := 0; len(blocks) < 2 && i < 64; i++ {
		var out any
		st, out = m.Step(st, GetTokenInput{Merit: 0.8, Parent: g, Creator: i, Round: i, Payload: []byte{byte(i)}})
		if b := out.(TokenOutput).Block; b != nil {
			blocks = append(blocks, b)
		}
	}
	if len(blocks) < 2 {
		t.Fatal("not enough tokens granted")
	}
	var out any
	st, out = m.Step(st, ConsumeTokenInput{Block: blocks[0]})
	if len(out.(KSetOutput).Set) != 1 {
		t.Fatal("first consume failed")
	}
	st, out = m.Step(st, ConsumeTokenInput{Block: blocks[1]})
	if len(out.(KSetOutput).Set) != 1 {
		t.Fatal("k=1 exceeded by machine")
	}
	_ = st
}

// Property: over any getToken/consumeToken schedule at k, the number of
// consumed tokens per object never exceeds k (Theorem 3.2 sampled).
func TestQuickKForkSafety(t *testing.T) {
	f := func(kRaw uint8, seed uint64, schedule []bool) bool {
		k := int(kRaw%4) + 1
		o := NewFrugal(k, nil, core.AlwaysValid{}, seed)
		g := core.Genesis()
		var pending []*core.Block
		for i, get := range schedule {
			if get || len(pending) == 0 {
				if b, ok := o.GetToken(0.7, g, i, i, []byte{byte(i)}); ok {
					pending = append(pending, b)
				}
			} else {
				b := pending[0]
				pending = pending[1:]
				o.ConsumeToken(b)
			}
			if len(o.K(g.ID)) > k {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

// Property: tapes make grant frequency track the mapped merit.
func TestGrantFrequencyTracksMerit(t *testing.T) {
	o := NewProdigal(tape.DifficultyMapping(2), core.AlwaysValid{}, 41)
	g := core.Genesis()
	grants := 0
	const n = 5000
	for i := 0; i < n; i++ {
		if _, ok := o.GetToken(0.5, g, 0, i, nil); ok {
			grants++
		}
	}
	got := float64(grants) / n
	if got < 0.22 || got > 0.28 { // 0.5/2 = 0.25 ± noise
		t.Fatalf("grant frequency %v, want ≈ 0.25", got)
	}
}
