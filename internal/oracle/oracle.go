// Package oracle implements the Token Oracle Θ-ADT of Section 3.2: the
// prodigal oracle Θ_P and the frugal oracle Θ_F,k. The oracle is the
// only generator of valid blocks: a process obtains the right to chain a
// new block b_ℓ to b_h by gaining a token tkn_h via getToken, and the
// block enters the BlockTree when the token is consumed via consumeToken.
// The frugal oracle consumes at most k tokens per object, bounding the
// number of forks from any block (k-Fork Coherence, Theorem 3.2); the
// prodigal oracle is the k = ∞ special case (Definition 3.6).
package oracle

import (
	"fmt"
	"sync"

	"repro/internal/core"
	"repro/internal/tape"
)

// Unbounded is the k of the prodigal oracle (no bound on consumed
// tokens per object).
const Unbounded = int(^uint(0) >> 1) // max int

// TokenName renders the token tkn_h for object (block) h; it is stamped
// into validated blocks so that the k-Fork Coherence checker can group
// successful appends by token.
func TokenName(parent core.BlockID) string {
	return "tkn(" + string(parent) + ")"
}

// Oracle is the Θ-ADT object interface shared by Θ_P and Θ_F,k. The
// implementation is safe for concurrent use: consumeToken is atomic,
// which is exactly the synchronization power the paper analyzes in
// Section 4.1.
type Oracle interface {
	// GetToken attempts to gain a token to chain a new block to
	// parent on behalf of a process with the given merit α. The
	// oracle pops one cell of the merit's tape; if the cell is tkn
	// and the resulting block satisfies P, it returns the validated
	// block b^{tkn_h}_ℓ (chained to parent, stamped with the token)
	// and true. Otherwise it returns nil and false.
	GetToken(m tape.Merit, parent *core.Block, creator, round int, payload []byte) (*core.Block, bool)
	// ConsumeToken consumes the token carried by the validated block:
	// if fewer than k tokens have been consumed for the block's
	// parent, b is added to K[h]. Per the ADT's δ it always returns
	// the (copy of the) current contents of K[h]; the boolean reports
	// whether this call inserted b.
	ConsumeToken(b *core.Block) ([]*core.Block, bool)
	// K returns a copy of the consumed-token set for object h.
	K(parent core.BlockID) []*core.Block
	// MaxForks returns k (Unbounded for Θ_P).
	MaxForks() int
	// Name identifies the oracle, e.g. "ΘP" or "ΘF,k=1".
	Name() string
}

// Frugal is Θ_F,k: at most k tokens consumed per object. Its zero value
// is unusable; construct with NewFrugal or NewProdigal.
type Frugal struct {
	mu    sync.Mutex
	k     int
	tapes *tape.Set
	p     core.Predicate
	ks    map[core.BlockID][]*core.Block
	// stats
	getCalls, grants, consumed, rejected int
}

var _ Oracle = (*Frugal)(nil)

// NewFrugal builds Θ_F,k with the given fork bound, merit mapping m (nil
// means identity), validity predicate P (nil means well-formed) and seed
// for the pseudorandom tapes.
func NewFrugal(k int, m tape.Mapping, p core.Predicate, seed uint64) *Frugal {
	if k < 1 {
		panic("oracle: k must be >= 1")
	}
	if p == nil {
		p = core.WellFormed{}
	}
	return &Frugal{
		k:     k,
		tapes: tape.NewSet(m, seed),
		p:     p,
		ks:    make(map[core.BlockID][]*core.Block),
	}
}

// NewProdigal builds Θ_P = Θ_F,∞ (Definition 3.6).
func NewProdigal(m tape.Mapping, p core.Predicate, seed uint64) *Frugal {
	return NewFrugal(Unbounded, m, p, seed)
}

// GetToken implements Oracle.
func (o *Frugal) GetToken(m tape.Merit, parent *core.Block, creator, round int, payload []byte) (*core.Block, bool) {
	o.mu.Lock()
	defer o.mu.Unlock()
	o.getCalls++
	cell := o.tapes.Tape(m).Pop()
	if cell != tape.Token {
		return nil, false
	}
	if parent == nil {
		return nil, false
	}
	b := core.NewBlock(parent.ID, parent.Height+1, creator, round, payload)
	b = b.WithToken(TokenName(parent.ID))
	if !o.validLocked(b) {
		return nil, false
	}
	o.grants++
	return b, true
}

// validLocked checks P, treating token-stamped blocks as the oracle's
// own products: the WellFormed hash check is applied to the block with
// the token field cleared, because the token is oracle metadata, not
// block content.
func (o *Frugal) validLocked(b *core.Block) bool {
	nb := *b
	nb.Token = ""
	return o.p.Valid(&nb)
}

// ConsumeToken implements Oracle.
func (o *Frugal) ConsumeToken(b *core.Block) ([]*core.Block, bool) {
	o.mu.Lock()
	defer o.mu.Unlock()
	if b == nil || b.Token == "" || b.Token != TokenName(b.Parent) || !o.validLocked(b) {
		o.rejected++
		return o.kLocked(b), false
	}
	set := o.ks[b.Parent]
	for _, prev := range set {
		if prev.ID == b.ID {
			// A token is consumed at most once: re-consuming
			// the same validated block is a no-op failure.
			o.rejected++
			return o.kLocked(b), false
		}
	}
	if len(set) >= o.k {
		o.rejected++
		return o.kLocked(b), false
	}
	o.ks[b.Parent] = append(set, b)
	o.consumed++
	return o.kLocked(b), true
}

func (o *Frugal) kLocked(b *core.Block) []*core.Block {
	if b == nil {
		return nil
	}
	set := o.ks[b.Parent]
	out := make([]*core.Block, len(set))
	copy(out, set)
	return out
}

// K implements Oracle.
func (o *Frugal) K(parent core.BlockID) []*core.Block {
	o.mu.Lock()
	defer o.mu.Unlock()
	set := o.ks[parent]
	out := make([]*core.Block, len(set))
	copy(out, set)
	return out
}

// MaxForks implements Oracle.
func (o *Frugal) MaxForks() int { return o.k }

// Name implements Oracle.
func (o *Frugal) Name() string {
	if o.k == Unbounded {
		return "ΘP"
	}
	return fmt.Sprintf("ΘF,k=%d", o.k)
}

// Stats reports (getToken calls, grants, consumed, rejected) counters for
// experiment reports.
func (o *Frugal) Stats() (gets, grants, consumed, rejected int) {
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.getCalls, o.grants, o.consumed, o.rejected
}

// MineToken loops getToken until the oracle grants a token — the
// τ_b ∘ τ_a* refinement step of Definition 3.7 in which getToken is
// repeated "as long as it returns a token". maxAttempts bounds the loop
// for finite executions (0 means 2^20 attempts); the second return value
// reports how many getToken calls were made.
func MineToken(o Oracle, m tape.Merit, parent *core.Block, creator, round int, payload []byte, maxAttempts int) (*core.Block, int) {
	if maxAttempts <= 0 {
		maxAttempts = 1 << 20
	}
	for i := 1; i <= maxAttempts; i++ {
		if b, ok := o.GetToken(m, parent, creator, round, payload); ok {
			return b, i
		}
	}
	return nil, maxAttempts
}
