package protocols

import "repro/internal/transport"

// RunLive executes the profiled system as a live deployment — N
// concurrent nodes over a real carrier, client load, online monitor —
// and lowers the outcome into the same Result shape every simulator
// returns, so the classifier, renderers and scenario layers work on a
// live run unchanged. The companion LiveResult carries what only a
// deployment measures: throughput, latency quantiles, the finalized
// online verdicts and the carrier counters.
//
// N, Seed and the normalized merit column come from cfg (the common
// knob set); cfg.Live supplies the deployment shape (carrier, load,
// crash schedule).
func RunLive(cfg Config, prof transport.Profile) (*Result, *transport.LiveResult, error) {
	merits := cfg.Norm()
	var lc transport.LiveConfig
	if cfg.Live != nil {
		lc = *cfg.Live
	}
	lc.N = cfg.N
	lc.Seed = cfg.Seed
	lc.Merits = merits

	lr, err := transport.Run(lc, prof)
	if err != nil {
		return nil, nil, err
	}

	res := &Result{
		System:         lr.System,
		History:        lr.History,
		Creators:       lr.Creators,
		Trees:          lr.Trees,
		Selector:       prof.Selector,
		Score:          prof.Score,
		OracleClaim:    prof.OracleClaim,
		PaperCriterion: prof.PaperCriterion,
		AdversaryName:  "—",
		Stats: map[string]int{
			"liveAttempts": int(lr.Attempts),
			"liveAppends":  int(lr.AppendsOK),
			"liveReads":    int(lr.Reads),
		},
	}
	res.ExportRecovery(lr.Recovery)
	res.ComputeForkMax()
	return res, lr, nil
}
