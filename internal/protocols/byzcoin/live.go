package byzcoin

import (
	"repro/internal/protocols/bftchain"
	"repro/internal/transport"
)

// LiveProfile reuses the shared BFT-chain live profile under ByzCoin's
// name (the PoW leader election is a simulation-time concern; live, the
// height token consumed at the sequencer is the PBFT commit).
func LiveProfile(cfg Config) transport.Profile {
	return bftchain.LiveProfile(bftchain.Config{
		Config: cfg.Config, System: "ByzCoin", Delta: cfg.Delta, Timeout: cfg.Timeout,
	})
}
