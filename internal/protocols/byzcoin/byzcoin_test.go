package byzcoin

import (
	"testing"

	"repro/internal/consensus"
	"repro/internal/consistency"
	"repro/internal/core"
	"repro/internal/tape"
)

func defaultCfg(seed uint64) Config {
	var c Config
	c.N = 4
	c.Rounds = 15
	c.Seed = seed
	c.ReadEvery = 10
	return c
}

func TestStronglyConsistentForkFree(t *testing.T) {
	for _, seed := range []uint64{1, 2} {
		res := Run(defaultCfg(seed))
		if res.System != "ByzCoin" || res.OracleClaim != "ΘF,k=1" {
			t.Fatalf("identity: %+v", res)
		}
		if res.MeasuredForkMax > 1 {
			t.Fatalf("seed %d: forked", seed)
		}
		chk := consistency.NewChecker(res.Score, core.WellFormed{})
		sc, ec := chk.Classify(res.History)
		if !sc.OK || !ec.OK {
			t.Fatalf("seed %d: %s / %s", seed, sc, ec)
		}
	}
}

func TestPoWWinnersLead(t *testing.T) {
	// With all hashing power at process 2, every key block must be
	// authored by process 2.
	cfg := defaultCfg(3)
	cfg.Rounds = 8
	cfg.Merits = []tape.Merit{0, 0, 1, 0}
	res := Run(cfg)
	c := res.Selector.Select(res.Trees[0])
	if c.Height() != 8 {
		t.Fatalf("height %d", c.Height())
	}
	for _, b := range c {
		if !b.IsGenesis() && b.Creator != 2 {
			t.Fatalf("block by %d despite p2 holding all power", b.Creator)
		}
	}
}

func TestByzantineLeaderDoesNotForkChain(t *testing.T) {
	cfg := defaultCfg(4)
	cfg.Rounds = 6
	cfg.Behaviors = map[int]consensus.Behavior{1: consensus.EquivocatingLeader}
	res := Run(cfg)
	if res.MeasuredForkMax > 1 {
		t.Fatal("equivocation forked the committed chain")
	}
	chk := consistency.NewChecker(res.Score, core.WellFormed{})
	if sc, _ := chk.Classify(res.History); !sc.OK {
		t.Fatalf("SC lost under equivocation: %v", sc.Failing())
	}
}

func TestProgressWithCrashedFollower(t *testing.T) {
	cfg := defaultCfg(5)
	cfg.Rounds = 6
	cfg.Behaviors = map[int]consensus.Behavior{3: consensus.Crashed}
	res := Run(cfg)
	if res.Selector.Select(res.Trees[0]).Height() != 6 {
		t.Fatal("chain stalled with one crashed follower")
	}
}
