// Package byzcoin simulates the ByzCoin mapping of Section 5.3: block
// creation is separated from transaction validation — a proof-of-work
// lottery elects the key-block proposer (the getToken operation), and a
// PBFT variant commits exactly one key block per height (the
// consumeToken, a frugal oracle with k = 1). The committee is formed by
// the recent miners; the leader of each height is the PoW winner. Under
// the semi-synchronous assumption the system implements a strongly
// consistent BlockTree.
package byzcoin

import (
	"repro/internal/consensus"
	"repro/internal/protocols"
	"repro/internal/protocols/bftchain"
	"repro/internal/tape"
)

// Config extends the common knobs.
type Config struct {
	protocols.Config
	// Delta / Timeout as in bftchain.
	Delta, Timeout int64
	// Behaviors injects Byzantine behaviors.
	Behaviors map[int]consensus.Behavior
}

// Run executes the simulation.
func Run(cfg Config) *protocols.Result {
	merits := cfg.Norm()
	// PoW winner per height: a seeded lottery weighted by hashing
	// power — ByzCoin's key-block mining race. The winner leads the
	// PBFT commit of its key block; on view change the lead falls
	// back to rotation (the real system re-mines).
	lottery := tape.NewRNG(cfg.Seed ^ 0xb42c014)
	winners := make([]int, cfg.Rounds+1)
	for h := range winners {
		x := lottery.Float64()
		acc := 0.0
		winners[h] = cfg.N - 1
		for i, m := range merits {
			acc += float64(m)
			if x < acc {
				winners[h] = i
				break
			}
		}
	}
	res := bftchain.Run(bftchain.Config{
		Config:    cfg.Config,
		System:    "ByzCoin",
		Delta:     cfg.Delta,
		Timeout:   cfg.Timeout,
		Behaviors: cfg.Behaviors,
		LeaderFn: func(height, view int) int {
			return (winners[height%len(winners)] + view) % cfg.N
		},
	})
	res.System = "ByzCoin"
	return res
}
