package byzcoin

import "repro/btsim"

func init() {
	btsim.Register(btsim.NewSystem(btsim.Info{
		Name:      "byzcoin",
		Section:   "5.3",
		Oracle:    "ΘF,k=1",
		K:         1,
		Criterion: "SC",
		Synopsis:  "PoW-elected leader, PBFT commit of one key block per height",
	}, func(cfg btsim.Config) (*btsim.Result, error) {
		c := Config{Delta: cfg.Delta}
		c.Config = cfg.Base()
		return &btsim.Result{Result: Run(c)}, nil
	}))
}
