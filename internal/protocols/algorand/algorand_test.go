package algorand

import (
	"testing"

	"repro/internal/consistency"
	"repro/internal/core"
	"repro/internal/tape"
)

func defaultCfg(seed uint64) Config {
	var c Config
	c.N = 5
	c.Rounds = 25
	c.Seed = seed
	c.ReadEvery = 10
	return c
}

func TestRoundsCommitBlocks(t *testing.T) {
	res := Run(defaultCfg(1))
	if res.Stats["proposals"] == 0 || res.Stats["committed"] == 0 {
		t.Fatalf("stats %v", res.Stats)
	}
	hs := res.FinalHeights()
	if hs[0] != hs[len(hs)-1] {
		t.Fatalf("replicas diverge: %v", hs)
	}
	if hs[0] == 0 {
		t.Fatal("no blocks committed")
	}
}

func TestForkFreeByDefault(t *testing.T) {
	for _, seed := range []uint64{1, 2, 3} {
		res := Run(defaultCfg(seed))
		if res.MeasuredForkMax > 1 {
			t.Fatalf("seed %d: fork degree %d with ForkProb=0", seed, res.MeasuredForkMax)
		}
		chk := consistency.NewChecker(res.Score, core.WellFormed{})
		sc, _ := chk.Classify(res.History)
		if !sc.OK {
			t.Fatalf("seed %d: SC violated: %v", seed, sc.Failing())
		}
		if rep := chk.KForkCoherence(res.History, 1); !rep.OK {
			t.Fatalf("seed %d: k=1 coherence: %v", seed, rep.Violations)
		}
	}
}

func TestInflatedForkProbabilityWitnessesFork(t *testing.T) {
	// The "w.h.p." caveat of Table 1: with the BA* failure probability
	// inflated, forks appear and 1-fork coherence breaks.
	cfg := defaultCfg(4)
	cfg.Rounds = 60
	cfg.ForkProb = 0.4
	res := Run(cfg)
	if res.Stats["forkEvents"] == 0 {
		t.Skip("no fork event sampled at this seed")
	}
	if res.MeasuredForkMax <= 1 {
		t.Fatal("fork events produced no tree fork")
	}
	chk := consistency.NewChecker(res.Score, core.WellFormed{})
	if rep := chk.KForkCoherence(res.History, 1); rep.OK {
		t.Fatal("1-fork coherence survived BA* forks")
	}
}

func TestStakeWeightedProposers(t *testing.T) {
	cfg := defaultCfg(5)
	cfg.Rounds = 80
	cfg.Merits = []tape.Merit{10, 1, 1, 1, 1} // p0 holds ~71% of stake
	res := Run(cfg)
	chain := res.Selector.Select(res.Trees[0])
	rich := 0
	for _, b := range chain {
		if b.Creator == 0 {
			rich++
		}
	}
	if chain.Height() == 0 {
		t.Fatal("empty chain")
	}
	share := float64(rich) / float64(chain.Height())
	if share < 0.45 {
		t.Fatalf("richest staker proposed only %.0f%%", share*100)
	}
}

func TestCommitteeSizeDefault(t *testing.T) {
	cfg := defaultCfg(6)
	cfg.CommitteeSize = 0
	res := Run(cfg) // must not panic and must make progress
	if res.FinalHeights()[0] == 0 {
		t.Fatal("no progress with default committee")
	}
}

func TestDeterminism(t *testing.T) {
	a, b := Run(defaultCfg(7)), Run(defaultCfg(7))
	if a.Stats["committed"] != b.Stats["committed"] {
		t.Fatal("nondeterministic commits")
	}
}
