// Package algorand simulates the Algorand mapping of Section 5.4:
// cryptographic sortition implements getToken — a stake-weighted lottery
// selects a committee and gives its highest-priority member the right to
// propose the round's block — and a BA*-style Byzantine agreement
// implements consumeToken, committing that block when the committee
// reaches a two-thirds vote. BA* may fork with (very small) probability
// when the network misbehaves (Theorem 2 of the Algorand paper bounds it
// by 10⁻⁷); the simulator exposes that probability as a knob, so the
// default run classifies as a frugal oracle with k = 1 — "SC w.h.p." —
// while a run with an inflated fork probability exhibits the residual
// fork the paper's caveat is about.
package algorand

import (
	"repro/internal/core"
	"repro/internal/oracle"
	"repro/internal/protocols"
	"repro/internal/replica"
	"repro/internal/simnet"
	"repro/internal/tape"
)

// Config extends the common knobs.
type Config struct {
	protocols.Config
	// CommitteeSize is the sortition committee size (0 means
	// max(3, N/2)).
	CommitteeSize int
	// ForkProb is the per-round probability of a BA* fork (default 0;
	// the real system's bound is ~1e-7).
	ForkProb float64
	// Delta is the synchronous delay bound (Algorand assumes strong
	// synchrony for liveness).
	Delta int64
}

// proposal is the proposer's block broadcast; vote is a committee vote.
type (
	proposal struct {
		Round int
		Block *core.Block
	}
	vote struct {
		Round int
		ID    core.BlockID
		Voter int
	}
)

// Run executes the simulation.
func Run(cfg Config) *protocols.Result {
	merits := cfg.Norm()
	if cfg.CommitteeSize <= 0 {
		cfg.CommitteeSize = cfg.N/2 + 1
		if cfg.CommitteeSize < 3 {
			cfg.CommitteeSize = 3
		}
	}
	if cfg.Delta <= 0 {
		cfg.Delta = 2
	}

	sim := simnet.NewSim(cfg.Seed)
	group := replica.NewGroup(sim, cfg.N, simnet.Synchronous{Delta: cfg.Delta}, core.LongestChain{})
	cfg.BindStream(group.Rec, core.LengthScore{})
	cfg.ApplyNet(group.Net)
	cfg.ApplySharding(group)
	cfg.ApplyObservability(sim, group)
	group.SetPredicate(core.WellFormed{})
	orc := oracle.NewFrugal(1, func(a tape.Merit) float64 {
		if a <= 0 {
			return 0
		}
		return 0.9 // sortition succeeds quickly for the selected proposer
	}, core.WellFormed{}, cfg.Seed^0xa16042ad)

	stats := map[string]int{}
	sortRNG := tape.NewRNG(cfg.Seed ^ 0x50421710)

	// Per-round state, reset in each round closure.
	type roundState struct {
		votes     map[core.BlockID]map[int]bool
		committee map[int]bool
		block     map[core.BlockID]*core.Block
		committed bool
	}
	rounds := make(map[int]*roundState)
	stateOf := func(r int) *roundState {
		st, ok := rounds[r]
		if !ok {
			st = &roundState{
				votes:     make(map[core.BlockID]map[int]bool),
				committee: make(map[int]bool),
				block:     make(map[core.BlockID]*core.Block),
			}
			rounds[r] = st
		}
		return st
	}
	threshold := 2*cfg.CommitteeSize/3 + 1

	// Message handling: proposals trigger committee votes; a vote
	// quorum commits (the consumeToken succeeding).
	for i := 0; i < cfg.N; i++ {
		id := i
		group.Net.AddHandler(id, func(m simnet.Message) {
			switch msg := m.Payload.(type) {
			case proposal:
				st := stateOf(msg.Round)
				st.block[msg.Block.ID] = msg.Block
				if st.committee[id] {
					group.Net.Broadcast(id, vote{Round: msg.Round, ID: msg.Block.ID, Voter: id})
				}
			case vote:
				st := stateOf(msg.Round)
				if !st.committee[msg.Voter] {
					return
				}
				if st.votes[msg.ID] == nil {
					st.votes[msg.ID] = make(map[int]bool)
				}
				st.votes[msg.ID][msg.Voter] = true
				if len(st.votes[msg.ID]) >= threshold && !st.committed {
					st.committed = true
					b := st.block[msg.ID]
					if b == nil {
						return
					}
					stats["committed"]++
					if _, ok := orc.ConsumeToken(b); ok {
						stats["consumed"]++
					}
					// The creator disseminates the committed
					// block through the replica layer (flood);
					// every other process receives and updates.
					group.Procs[b.Creator].AppendLocal(b)
				}
			}
		})
	}

	// weightedPick selects a process by stake.
	weightedPick := func() int {
		x := sortRNG.Float64()
		acc := 0.0
		for i, m := range merits {
			acc += float64(m)
			if x < acc {
				return i
			}
		}
		return cfg.N - 1
	}

	roundLen := cfg.Delta*6 + 2
	for r := 0; r < cfg.Rounds; r++ {
		round := r
		sim.Schedule(int64(round)*roundLen+1, func() {
			if !cfg.Tick(round, sim.Now()) {
				return
			}
			st := stateOf(round)
			// Sortition: committee members weighted by stake,
			// the first pick is the highest-priority proposer.
			proposer := weightedPick()
			st.committee[proposer] = true
			for len(st.committee) < cfg.CommitteeSize {
				st.committee[weightedPick()] = true
			}
			head := group.Procs[proposer].SelectedHead()
			b, _ := oracle.MineToken(orc, merits[proposer], head, proposer, round, protocols.CoinbasePayload(proposer, round), 1<<10)
			if b == nil {
				return
			}
			stats["proposals"]++
			group.Net.Broadcast(proposer, proposal{Round: round, Block: b})

			// BA* residual fork: with probability ForkProb a
			// second proposal survives agreement — two tokens
			// effectively consumed for the same parent.
			if cfg.ForkProb > 0 && sortRNG.Bernoulli(cfg.ForkProb) {
				alt := weightedPick()
				if alt == proposer {
					alt = (proposer + 1) % cfg.N
				}
				b2 := core.NewBlock(head.ID, head.Height+1, alt, round, protocols.CoinbasePayload(alt, round))
				b2 = b2.WithToken(oracle.TokenName(head.ID))
				stats["forkEvents"]++
				group.Procs[alt].AppendLocal(b2)
			}
		})
	}

	// Periodic reads.
	end := int64(cfg.Rounds) * roundLen
	for t := cfg.ReadEvery; t <= end; t += cfg.ReadEvery {
		tt := t
		sim.Schedule(tt, func() {
			for _, p := range group.Procs {
				p.Read()
			}
		})
	}

	sim.RunUntilIdle()
	for _, p := range group.Procs {
		p.Read()
	}
	for _, p := range group.Procs {
		p.Read()
	}

	res := &protocols.Result{
		System:         "Algorand",
		History:        group.History(),
		Creators:       group.Reg.Creators(),
		Selector:       core.LongestChain{},
		Score:          core.LengthScore{},
		OracleClaim:    "ΘF,k=1 (w.h.p.)",
		PaperCriterion: "SC w.h.p.",
		Stats:          stats,
		FaultEvents:    group.Net.FaultEvents(),
		AdversaryName:  cfg.Adversary.Name(),
	}
	for _, p := range group.Procs {
		res.Trees = append(res.Trees, p.Tree().Clone())
	}
	res.ComputeForkMax()
	return res
}
