package algorand

import (
	"repro/btsim"
	"repro/internal/protocols"
)

func init() {
	btsim.Register(btsim.NewSystem(btsim.Info{
		Name:      "algorand",
		Section:   "5.4",
		Oracle:    "ΘF,k=1 (w.h.p.)",
		K:         1,
		Criterion: "SC w.h.p.",
		Synopsis:  "stake-weighted sortition, BA* committee agreement per round",
	}, func(cfg btsim.Config) (*btsim.Result, error) {
		c := Config{Delta: cfg.Delta}
		c.Config = cfg.Base()
		if c.Live != nil {
			res, lr, err := protocols.RunLive(c.Config, LiveProfile(c))
			if err != nil {
				return nil, err
			}
			return &btsim.Result{Result: res, Live: lr}, nil
		}
		return &btsim.Result{Result: Run(c)}, nil
	}))
}
