package algorand

import "repro/btsim"

func init() {
	btsim.Register(btsim.NewSystem(btsim.Info{
		Name:      "algorand",
		Section:   "5.4",
		Oracle:    "ΘF,k=1 (w.h.p.)",
		K:         1,
		Criterion: "SC w.h.p.",
		Synopsis:  "stake-weighted sortition, BA* committee agreement per round",
	}, func(cfg btsim.Config) (*btsim.Result, error) {
		c := Config{Delta: cfg.Delta}
		c.Config = cfg.Base()
		return &btsim.Result{Result: Run(c)}, nil
	}))
}
