package algorand

import (
	"repro/internal/core"
	"repro/internal/oracle"
	"repro/internal/protocols"
	"repro/internal/tape"
	"repro/internal/transport"
)

// LiveProfile builds the live-deployment profile: the per-height BA*
// agreement collapses onto the sequencer policy (only the proposer of
// the height consumes its token), sortition is the frugal oracle's
// lottery, and MineToken retries a lost draw as the real proposer
// re-runs sortition.
func LiveProfile(cfg Config) transport.Profile {
	merits := cfg.Norm()
	orc := oracle.NewFrugal(1, func(a tape.Merit) float64 {
		if a <= 0 {
			return 0
		}
		return 0.9 // sortition succeeds quickly for the selected proposer
	}, core.WellFormed{}, cfg.Seed^0xa16042ad)
	return transport.Profile{
		System:         "Algorand",
		Selector:       core.LongestChain{},
		Score:          core.LengthScore{},
		Predicate:      core.WellFormed{},
		OracleClaim:    "ΘF,k=1 (w.h.p.)",
		PaperCriterion: "SC w.h.p.",
		Sequencer:      true,
		Mint: func(proc int, parent *core.Block, seq int) *core.Block {
			b, _ := oracle.MineToken(orc, merits[proc], parent, proc, parent.Height,
				protocols.CoinbasePayload(proc, seq), 1<<10)
			if b == nil {
				return nil
			}
			if _, consumed := orc.ConsumeToken(b); !consumed {
				return nil
			}
			return b
		},
	}
}
