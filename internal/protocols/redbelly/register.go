package redbelly

import "repro/btsim"

func init() {
	btsim.Register(btsim.NewSystem(btsim.Info{
		Name:      "redbelly",
		Section:   "5.6",
		Oracle:    "ΘF,k=1",
		K:         1,
		Criterion: "SC",
		Synopsis:  "consortium proposers, Byzantine consensus decides each height",
	}, func(cfg btsim.Config) (*btsim.Result, error) {
		c := Config{Delta: cfg.Delta}
		c.Config = cfg.Base()
		return &btsim.Result{Result: Run(c)}, nil
	}))
}
