package redbelly

import (
	"testing"

	"repro/internal/consistency"
	"repro/internal/core"
)

func defaultCfg(seed uint64) Config {
	var c Config
	c.N = 5
	c.Rounds = 12
	c.Seed = seed
	c.ReadEvery = 10
	c.M = 3
	return c
}

func TestConsortiumOnlyAppends(t *testing.T) {
	res := Run(defaultCfg(1))
	c := res.Selector.Select(res.Trees[0])
	if c.Height() != 12 {
		t.Fatalf("height %d", c.Height())
	}
	for _, b := range c {
		if !b.IsGenesis() && b.Creator >= 3 {
			t.Fatalf("non-consortium process %d appended", b.Creator)
		}
	}
	if res.Stats["consortium"] != 3 {
		t.Fatalf("consortium stat %d", res.Stats["consortium"])
	}
}

func TestUniqueBlockchain(t *testing.T) {
	res := Run(defaultCfg(2))
	for p, tr := range res.Trees {
		if tr.MaxForkDegree() > 1 {
			t.Fatalf("replica %d forked — Red Belly must hold a unique chain", p)
		}
	}
	if res.Selector.Name() != "single" {
		t.Fatalf("selector %s, want the trivial projection", res.Selector.Name())
	}
}

func TestStronglyConsistent(t *testing.T) {
	res := Run(defaultCfg(3))
	chk := consistency.NewChecker(res.Score, core.WellFormed{})
	sc, ec := chk.Classify(res.History)
	if !sc.OK || !ec.OK {
		t.Fatalf("%s / %s", sc, ec)
	}
}

func TestEveryoneReads(t *testing.T) {
	// Non-members cannot append but must read the same chain.
	res := Run(defaultCfg(4))
	reads := res.History.Reads()
	readers := map[int]bool{}
	for _, r := range reads {
		readers[r.Proc] = true
	}
	for p := 0; p < 5; p++ {
		if !readers[p] {
			t.Fatalf("process %d never read", p)
		}
	}
}

func TestDefaultM(t *testing.T) {
	var c Config
	c.N = 4
	c.Rounds = 4
	c.Seed = 5
	res := Run(c)
	if res.Stats["consortium"] != 3 { // N/2+1
		t.Fatalf("default consortium %d", res.Stats["consortium"])
	}
}
