package redbelly

import (
	"repro/internal/protocols/bftchain"
	"repro/internal/tape"
	"repro/internal/transport"
)

// LiveProfile reuses the shared BFT-chain live profile under Red
// Belly's name, keeping the consortium merit rule: only members of M
// (the first M processes) may obtain tokens; the sequencer, node 0, is
// always a member.
func LiveProfile(cfg Config) transport.Profile {
	cfg.Norm()
	if cfg.M <= 0 || cfg.M > cfg.N {
		cfg.M = cfg.N/2 + 1
	}
	m := cfg.M
	return bftchain.LiveProfile(bftchain.Config{
		Config: cfg.Config, System: "RedBelly", Delta: cfg.Delta, Timeout: cfg.Timeout,
		MeritOf: func(proc int) tape.Merit {
			if proc < m {
				return tape.Merit(1 / float64(m))
			}
			return 0
		},
	})
}
