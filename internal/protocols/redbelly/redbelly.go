// Package redbelly simulates the Red Belly mapping of Section 5.6: a
// consortium blockchain in which only a predefined subset M ⊆ V may
// append (merit 1/|M| inside M, 0 outside), every process may read, and
// a Byzantine consensus run by all of V decides the unique block per
// height (consumeToken returns true for the uniquely decided block — a
// frugal oracle with k = 1). The BlockTree contains a unique blockchain,
// so the selection function is the trivial projection.
package redbelly

import (
	"repro/internal/consensus"
	"repro/internal/protocols"
	"repro/internal/protocols/bftchain"
	"repro/internal/tape"
)

// Config extends the common knobs.
type Config struct {
	protocols.Config
	// M is the number of consortium members (processes 0..M-1 may
	// propose; the rest are read-only). 0 means N/2+1.
	M              int
	Delta, Timeout int64
	Behaviors      map[int]consensus.Behavior
}

// Run executes the simulation.
func Run(cfg Config) *protocols.Result {
	if cfg.M <= 0 || cfg.M > cfg.N {
		cfg.M = cfg.N/2 + 1
	}
	m := cfg.M
	res := bftchain.Run(bftchain.Config{
		Config:    cfg.Config,
		System:    "RedBelly",
		Delta:     cfg.Delta,
		Timeout:   cfg.Timeout,
		Behaviors: cfg.Behaviors,
		// Leaders rotate within the consortium M only.
		LeaderFn: func(height, view int) int {
			return (height + view) % m
		},
		// Merit: 1/|M| for members, 0 outside — non-members cannot
		// obtain tokens and therefore never propose (Section 5.6).
		MeritOf: func(proc int) tape.Merit {
			if proc < m {
				return tape.Merit(1 / float64(m))
			}
			return 0
		},
	})
	res.System = "RedBelly"
	res.Stats["consortium"] = m
	return res
}
