// Package ethereum simulates the Ethereum mapping of Section 5.2:
// proof-of-work with a memory-hard-flavoured merit (the framework sees
// only the normalized α_p), flooding of valid blocks, a prodigal oracle
// (no bound on consumed tokens), and the GHOST selection function —
// the greedy heaviest-observed-subtree rule of Sompolinsky & Zohar —
// instead of the longest chain. Block times are faster than Bitcoin's
// (lower difficulty), producing more natural forks, which is exactly the
// regime GHOST was designed for. The system satisfies BT Eventual
// Consistency (Kiayias & Panagiotakos showed common prefix + chain
// growth for GHOST under synchrony).
package ethereum

import (
	"repro/internal/core"
	"repro/internal/oracle"
	"repro/internal/protocols"
	"repro/internal/replica"
	"repro/internal/simnet"
	"repro/internal/tape"
)

// Config extends the common knobs with Ethereum-specific ones.
type Config struct {
	protocols.Config
	// Difficulty divides the per-tick success probability; Ethereum's
	// default here is lower than Bitcoin's (faster blocks).
	Difficulty float64
	// Delta is the synchronous delay bound.
	Delta int64
	// DropRule optionally injects message loss.
	DropRule simnet.DropRule
}

// Run executes the simulation.
func Run(cfg Config) *protocols.Result {
	merits := cfg.Norm()
	if cfg.Difficulty <= 0 {
		cfg.Difficulty = 3 // faster blocks than Bitcoin → more forks
	}
	if cfg.Delta <= 0 {
		cfg.Delta = 3
	}

	sim := simnet.NewSim(cfg.Seed)
	group := replica.NewGroup(sim, cfg.N, simnet.Synchronous{Delta: cfg.Delta}, core.GHOST{})
	cfg.BindStream(group.Rec, core.LengthScore{})
	if cfg.DropRule != nil {
		group.Net.SetDrop(cfg.DropRule)
	}
	group.Net.SetFIFO(true) // reliable FIFO channels (Section 5.1/5.2)
	cfg.ApplyNet(group.Net)
	recovery := cfg.ApplyCrashes(sim, group)
	cfg.ApplySharding(group)
	cfg.ApplyObservability(sim, group)
	group.SetPredicate(core.WellFormed{})
	orc := oracle.NewProdigal(tape.DifficultyMapping(cfg.Difficulty), core.WellFormed{}, cfg.Seed^0xe7e12e)

	stats := map[string]int{}

	// Adversarial wiring (shared with Bitcoin's): fork flooding is the
	// interesting strategy against GHOST — forged siblings inflate a
	// subtree's weight, dragging correct replicas between branches.
	adv := cfg.WireAdversary(group)

	for round := 0; round < cfg.Rounds; round++ {
		r := round
		sim.Schedule(int64(round+1), func() {
			if !cfg.Tick(r, sim.Now()) {
				return
			}
			for i, p := range group.Procs {
				i, p := i, p
				adv.MineTick(p, func(parent *core.Block) *core.Block {
					b, ok := orc.GetToken(merits[i], parent, p.ID, r, protocols.CoinbasePayload(p.ID, r))
					if !ok {
						return nil
					}
					if _, consumed := orc.ConsumeToken(b); !consumed {
						return nil
					}
					stats["mined"]++
					return b
				})
			}
		})
	}

	for t := cfg.ReadEvery; t <= int64(cfg.Rounds); t += cfg.ReadEvery {
		tt := t
		sim.Schedule(tt, func() {
			for _, p := range group.Procs {
				p.Read()
			}
		})
	}

	sim.Run(int64(cfg.Rounds))
	sim.RunUntilIdle()
	if adv.FinishRun() {
		sim.RunUntilIdle()
	}
	for _, p := range group.Procs {
		p.Read()
	}
	for _, p := range group.Procs {
		p.Read()
	}

	res := &protocols.Result{
		System:         "Ethereum",
		History:        group.History(),
		Creators:       group.Reg.Creators(),
		Selector:       core.GHOST{},
		Score:          core.LengthScore{},
		OracleClaim:    "ΘP",
		PaperCriterion: "EC",
		Stats:          stats,
		FaultEvents:    group.Net.FaultEvents(),
		AdversaryName:  cfg.Adversary.Name(),
	}
	adv.ExportStats(stats)
	res.ExportRecovery(recovery)
	for _, p := range group.Procs {
		res.Trees = append(res.Trees, p.Tree().Clone())
	}
	res.ComputeForkMax()
	gets, grants, consumed, rejected := orc.Stats()
	stats["getToken"] = gets
	stats["grants"] = grants
	stats["consumed"] = consumed
	stats["rejected"] = rejected
	return res
}
