package ethereum

import (
	"testing"

	"repro/internal/consistency"
	"repro/internal/core"
)

func defaultCfg(seed uint64) Config {
	var c Config
	c.N = 4
	c.Rounds = 200
	c.Seed = seed
	c.ReadEvery = 4
	c.Difficulty = 4
	return c
}

func TestRunUsesGHOST(t *testing.T) {
	res := Run(defaultCfg(1))
	if res.Selector.Name() != "ghost" {
		t.Fatalf("selector %s", res.Selector.Name())
	}
	if res.Stats["mined"] == 0 {
		t.Fatal("no blocks mined")
	}
	if res.System != "Ethereum" || res.OracleClaim != "ΘP" {
		t.Fatalf("identity wrong: %+v", res)
	}
}

func TestFasterBlocksProduceForks(t *testing.T) {
	// With difficulty 4 across 200 rounds and δ=3, concurrent mining
	// is frequent: the prodigal oracle must have been exercised (some
	// block has more than one child on at least one seed).
	forks := 0
	for _, seed := range []uint64{1, 2, 3, 4} {
		res := Run(defaultCfg(seed))
		if res.MeasuredForkMax > 1 {
			forks++
		}
	}
	if forks == 0 {
		t.Fatal("no forks across four seeds — prodigal behaviour unwitnessed")
	}
}

func TestEventuallyConsistent(t *testing.T) {
	for _, seed := range []uint64{1, 2, 3} {
		res := Run(defaultCfg(seed))
		chk := consistency.NewChecker(res.Score, core.WellFormed{})
		_, ec := chk.Classify(res.History)
		if !ec.OK {
			t.Fatalf("seed %d: EC violated: %v", seed, ec.Failing())
		}
	}
}

func TestReplicasConvergeUnderGHOST(t *testing.T) {
	res := Run(defaultCfg(5))
	c0 := res.Selector.Select(res.Trees[0])
	for p := 1; p < len(res.Trees); p++ {
		cp := res.Selector.Select(res.Trees[p])
		if !c0.Equal(cp) {
			t.Fatalf("replica %d selects a different chain", p)
		}
	}
}

func TestGHOSTAndLongestCanDisagree(t *testing.T) {
	// Ablation hook: on at least one seed the GHOST chain differs
	// from the longest chain over the same final tree — the fork
	// choice rule matters (DESIGN.md ablation #1).
	disagree := false
	for _, seed := range []uint64{1, 2, 3, 4, 5, 6, 7, 8} {
		res := Run(defaultCfg(seed))
		tr := res.Trees[0]
		g := core.GHOST{}.Select(tr)
		l := core.LongestChain{}.Select(tr)
		if !g.Equal(l) {
			disagree = true
			break
		}
	}
	// GHOST ≠ longest requires a heavy shallow subtree; it is
	// seed-dependent, so only warn when unwitnessed.
	if !disagree {
		t.Log("GHOST agreed with longest chain on all seeds (no heavy uncle subtree this run)")
	}
}

func TestUpdateAgreement(t *testing.T) {
	res := Run(defaultCfg(6))
	if rep := consistency.UpdateAgreement(res.History, res.Creators); !rep.OK {
		t.Fatalf("update agreement: %v", rep.Violations)
	}
}

func TestDeterminism(t *testing.T) {
	a, b := Run(defaultCfg(9)), Run(defaultCfg(9))
	if a.Stats["mined"] != b.Stats["mined"] || a.MeasuredForkMax != b.MeasuredForkMax {
		t.Fatal("nondeterministic run")
	}
}
