package ethereum

import (
	"repro/internal/core"
	"repro/internal/oracle"
	"repro/internal/protocols"
	"repro/internal/tape"
	"repro/internal/transport"
)

// LiveProfile builds the live-deployment profile: fast-block prodigal
// PoW with GHOST heaviest-subtree selection, as the simulator runs.
func LiveProfile(cfg Config) transport.Profile {
	merits := cfg.Norm()
	if cfg.Difficulty <= 0 {
		cfg.Difficulty = 3
	}
	orc := oracle.NewProdigal(tape.DifficultyMapping(cfg.Difficulty), core.WellFormed{}, cfg.Seed^0xe7e12e)
	return transport.Profile{
		System:         "Ethereum",
		Selector:       core.GHOST{},
		Score:          core.LengthScore{},
		Predicate:      core.WellFormed{},
		OracleClaim:    "ΘP",
		PaperCriterion: "EC",
		Mint: func(proc int, parent *core.Block, seq int) *core.Block {
			b, ok := orc.GetToken(merits[proc], parent, proc, seq, protocols.CoinbasePayload(proc, seq))
			if !ok {
				return nil
			}
			if _, consumed := orc.ConsumeToken(b); !consumed {
				return nil
			}
			return b
		},
	}
}
