package ethereum

import (
	"repro/btsim"
	"repro/internal/protocols"
)

func init() {
	btsim.Register(btsim.NewSystem(btsim.Info{
		Name:      "ethereum",
		Section:   "5.2",
		Oracle:    "ΘP",
		K:         0,
		Criterion: "EC",
		Synopsis:  "fast-block PoW, flooding, GHOST heaviest-subtree selection",
	}, func(cfg btsim.Config) (*btsim.Result, error) {
		c := Config{Difficulty: cfg.Difficulty, Delta: cfg.Delta, DropRule: cfg.DropRule()}
		c.Config = cfg.Base()
		if c.Live != nil {
			res, lr, err := protocols.RunLive(c.Config, LiveProfile(c))
			if err != nil {
				return nil, err
			}
			return &btsim.Result{Result: res, Live: lr}, nil
		}
		return &btsim.Result{Result: Run(c)}, nil
	}))
}
