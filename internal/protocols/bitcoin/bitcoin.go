// Package bitcoin simulates the Bitcoin mapping of Section 5.1:
// permissionless proof-of-work block creation (the getToken operation is
// the PoW lottery, weighted by each process's normalized hashing power
// α_p), flooding of valid blocks over reliable FIFO channels, a
// consumeToken that accepts every valid block (no bound on consumed
// tokens — the prodigal oracle Θ_P), and the selection function f
// returning the longest chain. Per the paper (and Garay et al.'s
// backbone analysis), under synchrony the system satisfies BT Eventual
// Consistency but not BT Strong Consistency.
package bitcoin

import (
	"repro/internal/core"
	"repro/internal/oracle"
	"repro/internal/protocols"
	"repro/internal/replica"
	"repro/internal/simnet"
	"repro/internal/tape"
)

// Config extends the common knobs with Bitcoin-specific ones.
type Config struct {
	protocols.Config
	// Difficulty divides every per-tick success probability; higher
	// difficulty means rarer blocks and fewer natural forks.
	Difficulty float64
	// Delta is the synchronous network delay bound δ.
	Delta int64
	// DropRule optionally injects message loss (Theorem 4.6/4.7
	// experiments). Nil means lossless.
	DropRule simnet.DropRule
	// RetargetEvery, when > 0, enables difficulty adjustment: after
	// every RetargetEvery mined blocks the difficulty is rescaled so
	// the observed inter-block spacing approaches TargetSpacing
	// ticks (clamped to a 4× move per epoch, like the real rule).
	// In oracle terms a retarget swaps in a fresh Θ_P whose merit
	// mapping reflects the new difficulty — the mapping m ∈ M is an
	// oracle parameter, so changing it means changing oracles.
	RetargetEvery int
	// TargetSpacing is the desired ticks-per-block under retargeting
	// (0 means 4).
	TargetSpacing int64
}

// Run executes the simulation and returns the recorded result.
func Run(cfg Config) *protocols.Result {
	merits := cfg.Norm()
	if cfg.Difficulty <= 0 {
		cfg.Difficulty = 8
	}
	if cfg.Delta <= 0 {
		cfg.Delta = 3
	}

	sim := simnet.NewSim(cfg.Seed)
	group := replica.NewGroup(sim, cfg.N, simnet.Synchronous{Delta: cfg.Delta}, core.LongestChain{})
	cfg.BindStream(group.Rec, core.LengthScore{})
	if cfg.DropRule != nil {
		group.Net.SetDrop(cfg.DropRule)
	}
	group.Net.SetFIFO(true) // reliable FIFO channels (Section 5.1/5.2)
	cfg.ApplyNet(group.Net)
	recovery := cfg.ApplyCrashes(sim, group)
	cfg.ApplySharding(group)
	cfg.ApplyObservability(sim, group)
	group.SetPredicate(core.WellFormed{})

	// Adversarial wiring: one process may run a selfish-mining /
	// withholding / equivocation strategy; its reads are excluded from
	// the criteria (it is Byzantine), and what the checkers then measure
	// is the damage inflicted on the correct processes.
	adv := cfg.WireAdversary(group)
	if cfg.TargetSpacing <= 0 {
		cfg.TargetSpacing = 4
	}
	difficulty := cfg.Difficulty
	orc := oracle.NewProdigal(tape.DifficultyMapping(difficulty), core.WellFormed{}, cfg.Seed^0xb17c011)

	stats := map[string]int{}
	totalGets, totalGrants, totalConsumed, totalRejected := 0, 0, 0, 0

	// Difficulty retargeting state.
	blocksInEpoch := 0
	epochStart := int64(0)
	epochSeed := cfg.Seed ^ 0xb17c011
	retarget := func(now int64) {
		elapsed := now - epochStart
		if elapsed < 1 {
			elapsed = 1
		}
		actual := float64(elapsed) / float64(cfg.RetargetEvery)
		factor := float64(cfg.TargetSpacing) / actual
		// Real Bitcoin clamps each retarget to a 4× move.
		if factor > 4 {
			factor = 4
		}
		if factor < 0.25 {
			factor = 0.25
		}
		// Spacing below target means blocks come too fast: raise
		// the difficulty by the same factor the spacing fell short.
		difficulty *= factor
		if difficulty < 1 {
			difficulty = 1
		}
		g, gr, c, rj := orc.Stats()
		totalGets += g
		totalGrants += gr
		totalConsumed += c
		totalRejected += rj
		epochSeed++
		orc = oracle.NewProdigal(tape.DifficultyMapping(difficulty), core.WellFormed{}, epochSeed)
		stats["retargets"]++
		blocksInEpoch = 0
		epochStart = now
	}

	// Mining: one getToken attempt per process per tick. A granted
	// token is consumed immediately and the block is appended locally
	// then flooded (update_i + send_i).
	for round := 0; round < cfg.Rounds; round++ {
		r := round
		sim.Schedule(int64(round+1), func() {
			if !cfg.Tick(r, sim.Now()) {
				return
			}
			for i, p := range group.Procs {
				i, p := i, p
				adv.MineTick(p, func(parent *core.Block) *core.Block {
					b, ok := orc.GetToken(merits[i], parent, p.ID, r, protocols.CoinbasePayload(p.ID, r))
					if !ok {
						return nil
					}
					if _, consumed := orc.ConsumeToken(b); !consumed {
						return nil
					}
					stats["mined"]++
					// Epoch accounting lives in the mint so honest and
					// adversarial blocks count toward the retarget alike.
					if cfg.RetargetEvery > 0 {
						blocksInEpoch++
						if blocksInEpoch >= cfg.RetargetEvery {
							retarget(sim.Now())
						}
					}
					return b
				})
			}
		})
	}

	// Periodic reads at every process.
	for t := cfg.ReadEvery; t <= int64(cfg.Rounds); t += cfg.ReadEvery {
		tt := t
		sim.Schedule(tt, func() {
			for _, p := range group.Procs {
				p.Read()
			}
		})
	}

	sim.Run(int64(cfg.Rounds))
	// Drain in-flight messages, then take the final convergent reads.
	sim.RunUntilIdle()
	if adv.FinishRun() {
		// Late release: let the withheld branch propagate before the
		// final read batch — one maximal reorg.
		sim.RunUntilIdle()
	}
	for _, p := range group.Procs {
		p.Read()
	}
	for _, p := range group.Procs {
		p.Read()
	}

	res := &protocols.Result{
		System:         "Bitcoin",
		History:        group.History(),
		Creators:       group.Reg.Creators(),
		Selector:       core.LongestChain{},
		Score:          core.LengthScore{},
		OracleClaim:    "ΘP",
		PaperCriterion: "EC",
		Stats:          stats,
		FaultEvents:    group.Net.FaultEvents(),
		AdversaryName:  cfg.Adversary.Name(),
	}
	adv.ExportStats(stats)
	res.ExportRecovery(recovery)
	for _, p := range group.Procs {
		res.Trees = append(res.Trees, p.Tree().Clone())
	}
	res.ComputeForkMax()
	gets, grants, consumed, rejected := orc.Stats()
	stats["getToken"] = totalGets + gets
	stats["grants"] = totalGrants + grants
	stats["consumed"] = totalConsumed + consumed
	stats["rejected"] = totalRejected + rejected
	stats["finalDifficultyPct"] = int(difficulty * 100)
	return res
}
