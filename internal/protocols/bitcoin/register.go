package bitcoin

import (
	"repro/btsim"
	"repro/internal/protocols"
)

// The package registers itself with the public btsim registry: import
// repro/btsim/systems (or this package) for side effects and the system
// is reachable by name from scenarios, experiments and the cmd tools.
func init() {
	btsim.Register(btsim.NewSystem(btsim.Info{
		Name:      "bitcoin",
		Section:   "5.1",
		Oracle:    "ΘP",
		K:         0,
		Criterion: "EC",
		Synopsis:  "permissionless PoW, flooding, longest-chain selection",
	}, func(cfg btsim.Config) (*btsim.Result, error) {
		c := Config{Difficulty: cfg.Difficulty, Delta: cfg.Delta, DropRule: cfg.DropRule()}
		c.Config = cfg.Base()
		if c.Live != nil {
			res, lr, err := protocols.RunLive(c.Config, LiveProfile(c))
			if err != nil {
				return nil, err
			}
			return &btsim.Result{Result: res, Live: lr}, nil
		}
		return &btsim.Result{Result: Run(c)}, nil
	}))
}
