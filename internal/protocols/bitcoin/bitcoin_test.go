package bitcoin

import (
	"testing"

	"repro/internal/consistency"
	"repro/internal/core"
	"repro/internal/simnet"
	"repro/internal/tape"
)

func defaultCfg(seed uint64) Config {
	var c Config
	c.N = 4
	c.Rounds = 150
	c.Seed = seed
	c.ReadEvery = 5
	c.Difficulty = 8
	return c
}

func TestRunProducesBlocks(t *testing.T) {
	res := Run(defaultCfg(1))
	if res.Stats["mined"] == 0 {
		t.Fatal("no blocks mined")
	}
	if res.System != "Bitcoin" || res.OracleClaim != "ΘP" || res.PaperCriterion != "EC" {
		t.Fatalf("result identity wrong: %+v", res)
	}
	if len(res.Trees) != 4 {
		t.Fatalf("%d trees", len(res.Trees))
	}
}

func TestReplicasConverge(t *testing.T) {
	res := Run(defaultCfg(2))
	hs := res.FinalHeights()
	if hs[0] != hs[len(hs)-1] {
		t.Fatalf("replicas did not converge: %v", hs)
	}
	// Every replica holds every mined block (lossless flooding).
	n := res.Trees[0].Len()
	for _, tr := range res.Trees {
		if tr.Len() != n {
			t.Fatalf("tree sizes differ: %d vs %d", tr.Len(), n)
		}
	}
}

func TestEventuallyConsistent(t *testing.T) {
	for _, seed := range []uint64{1, 2, 3} {
		res := Run(defaultCfg(seed))
		chk := consistency.NewChecker(res.Score, core.WellFormed{})
		_, ec := chk.Classify(res.History)
		if !ec.OK {
			t.Fatalf("seed %d: EC violated: %v", seed, ec.Failing())
		}
	}
}

func TestUpdateAgreementHolds(t *testing.T) {
	res := Run(defaultCfg(4))
	rep := consistency.UpdateAgreement(res.History, res.Creators)
	if !rep.OK {
		t.Fatalf("update agreement: %v", rep.Violations)
	}
	if rep := consistency.LRC(res.History); !rep.OK {
		t.Fatalf("LRC: %v", rep.Violations)
	}
}

func TestBlockValidityUnderLedgerPredicate(t *testing.T) {
	res := Run(defaultCfg(5))
	chk := consistency.NewChecker(res.Score, core.LedgerPredicate{})
	if rep := chk.BlockValidity(res.History); !rep.OK {
		t.Fatalf("ledger-valid blocks rejected: %v", rep.Violations)
	}
}

func TestDeterministicAcrossRuns(t *testing.T) {
	a := Run(defaultCfg(7))
	b := Run(defaultCfg(7))
	if a.Stats["mined"] != b.Stats["mined"] {
		t.Fatal("same seed, different mining outcome")
	}
	ca := a.Selector.Select(a.Trees[0])
	cb := b.Selector.Select(b.Trees[0])
	if !ca.Equal(cb) {
		t.Fatal("same seed, different final chain")
	}
}

func TestHashingPowerSkewsBlockShare(t *testing.T) {
	cfg := defaultCfg(8)
	cfg.Rounds = 400
	cfg.Merits = []tape.Merit{8, 1, 1, 1} // process 0 has ~73% of power
	res := Run(cfg)
	chain := res.Selector.Select(res.Trees[0])
	mine := 0
	for _, b := range chain {
		if b.Creator == 0 {
			mine++
		}
	}
	share := float64(mine) / float64(chain.Height())
	if share < 0.5 {
		t.Fatalf("dominant miner produced only %.0f%% of the chain", share*100)
	}
}

func TestDroppedUpdateBreaksAgreement(t *testing.T) {
	cfg := defaultCfg(9)
	cfg.Merits = []tape.Merit{1, 0, 0, 0}
	cfg.DropRule = simnet.DropNth(0, simnet.DropToProcess(3))
	res := Run(cfg)
	if rep := consistency.UpdateAgreement(res.History, res.Creators); rep.OK {
		t.Fatal("dropped update not detected")
	}
	chk := consistency.NewChecker(res.Score, core.WellFormed{})
	_, ec := chk.Classify(res.History)
	if ec.OK {
		t.Fatal("EC held despite the load-bearing dropped update")
	}
}

func TestStatsExposed(t *testing.T) {
	res := Run(defaultCfg(10))
	for _, key := range []string{"mined", "getToken", "grants", "consumed"} {
		if _, ok := res.Stats[key]; !ok {
			t.Errorf("missing stat %q", key)
		}
	}
	if res.Stats["grants"] < res.Stats["consumed"] {
		t.Fatal("more consumed than granted")
	}
}
