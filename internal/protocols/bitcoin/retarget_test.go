package bitcoin

import (
	"testing"

	"repro/internal/consistency"
	"repro/internal/core"
)

func TestRetargetRaisesTooEasyDifficulty(t *testing.T) {
	// Start absurdly easy (difficulty 1 ⇒ ~1 block per process per
	// tick): retargeting must push the difficulty up.
	cfg := defaultCfg(21)
	cfg.Rounds = 400
	cfg.Difficulty = 1
	cfg.RetargetEvery = 20
	cfg.TargetSpacing = 8
	res := Run(cfg)
	if res.Stats["retargets"] == 0 {
		t.Fatalf("no retargets happened: %v", res.Stats)
	}
	if res.Stats["finalDifficultyPct"] <= 100 {
		t.Fatalf("difficulty did not rise from 1: final %d%%", res.Stats["finalDifficultyPct"])
	}
}

func TestRetargetLowersTooHardDifficulty(t *testing.T) {
	cfg := defaultCfg(22)
	cfg.Rounds = 600
	cfg.Difficulty = 60 // far too hard for spacing 4
	cfg.RetargetEvery = 5
	cfg.TargetSpacing = 4
	res := Run(cfg)
	if res.Stats["retargets"] == 0 {
		t.Skip("too few blocks to retarget at this seed")
	}
	if res.Stats["finalDifficultyPct"] >= 6000 {
		t.Fatalf("difficulty did not fall from 60: final %d%%", res.Stats["finalDifficultyPct"])
	}
}

func TestRetargetSpacingConverges(t *testing.T) {
	cfg := defaultCfg(23)
	cfg.Rounds = 1200
	cfg.Difficulty = 1
	cfg.RetargetEvery = 25
	cfg.TargetSpacing = 10
	res := Run(cfg)
	chain := res.Selector.Select(res.Trees[0])
	if chain.Height() < 40 {
		t.Fatalf("chain too short to measure spacing: %d", chain.Height())
	}
	// Average spacing over the last half of the chain must be within
	// 2× of the target (the first epochs are the adjustment phase).
	half := chain.Height() / 2
	first := chain.Block(half)
	last := chain.Head()
	spacing := float64(last.Round-first.Round) / float64(last.Height-first.Height)
	if spacing < float64(cfg.TargetSpacing)/2 || spacing > float64(cfg.TargetSpacing)*2 {
		t.Fatalf("late-chain spacing %.1f ticks, target %d", spacing, cfg.TargetSpacing)
	}
}

func TestRetargetPreservesEventualConsistency(t *testing.T) {
	cfg := defaultCfg(24)
	cfg.Rounds = 400
	cfg.Difficulty = 2
	cfg.RetargetEvery = 15
	res := Run(cfg)
	chk := consistency.NewChecker(res.Score, core.WellFormed{})
	_, ec := chk.Classify(res.History)
	if !ec.OK {
		t.Fatalf("EC violated under retargeting: %v", ec.Failing())
	}
	if rep := consistency.UpdateAgreement(res.History, res.Creators); !rep.OK {
		t.Fatalf("update agreement under retargeting: %v", rep.Violations)
	}
}
