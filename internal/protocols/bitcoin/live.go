package bitcoin

import (
	"repro/internal/core"
	"repro/internal/oracle"
	"repro/internal/protocols"
	"repro/internal/tape"
	"repro/internal/transport"
)

// LiveProfile builds the live-deployment profile: the same prodigal
// PoW oracle, longest-chain selection and validity predicate the
// simulator runs, with the globally unique attempt sequence standing in
// for the mining round. The oracle is mutex-guarded, so concurrent
// mints from sprayed append targets are safe.
func LiveProfile(cfg Config) transport.Profile {
	merits := cfg.Norm()
	if cfg.Difficulty <= 0 {
		cfg.Difficulty = 8
	}
	orc := oracle.NewProdigal(tape.DifficultyMapping(cfg.Difficulty), core.WellFormed{}, cfg.Seed^0xb17c011)
	return transport.Profile{
		System:         "Bitcoin",
		Selector:       core.LongestChain{},
		Score:          core.LengthScore{},
		Predicate:      core.WellFormed{},
		OracleClaim:    "ΘP",
		PaperCriterion: "EC",
		Mint: func(proc int, parent *core.Block, seq int) *core.Block {
			b, ok := orc.GetToken(merits[proc], parent, proc, seq, protocols.CoinbasePayload(proc, seq))
			if !ok {
				return nil
			}
			if _, consumed := orc.ConsumeToken(b); !consumed {
				return nil
			}
			return b
		},
	}
}
