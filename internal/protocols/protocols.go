// Package protocols defines the shared harness for the blockchain-system
// simulators of Section 5 (Bitcoin, Ethereum, ByzCoin, Algorand,
// PeerCensus, Red Belly, Hyperledger Fabric). Each simulator runs a
// deterministic discrete-event execution on internal/simnet, producing a
// recorded history plus the per-process replica trees; the classifier in
// internal/experiments then derives the system's Table 1 row — which
// oracle it implements (measured fork degree) and which consistency
// criterion its histories satisfy — instead of asserting it.
package protocols

import (
	"fmt"
	"sort"

	"repro/internal/core"
	"repro/internal/history"
	"repro/internal/tape"
)

// Config is the common knob set. Protocol-specific knobs live in each
// sub-package's own config embedding this one.
type Config struct {
	// N is the number of processes.
	N int
	// Rounds is the number of protocol rounds (ticks / heights).
	Rounds int
	// Seed drives all randomness.
	Seed uint64
	// ReadEvery schedules a read() at every process each ReadEvery
	// virtual-time units (0 means 10).
	ReadEvery int64
	// Merits are the α_p values (hashing power / stake); nil means
	// uniform 1/N.
	Merits []tape.Merit
}

// Norm fills defaults and returns the per-process merits normalized so
// that Σ α_p = 1 (the convention every Section 5 mapping states).
func (c *Config) Norm() []tape.Merit {
	if c.N <= 0 {
		c.N = 4
	}
	if c.Rounds <= 0 {
		c.Rounds = 50
	}
	if c.ReadEvery <= 0 {
		c.ReadEvery = 10
	}
	m := c.Merits
	if len(m) == 0 {
		m = make([]tape.Merit, c.N)
		for i := range m {
			m[i] = 1
		}
	}
	var sum float64
	for _, a := range m {
		sum += float64(a)
	}
	out := make([]tape.Merit, c.N)
	for i := range out {
		if i < len(m) && sum > 0 {
			out[i] = tape.Merit(float64(m[i]) / sum)
		} else {
			out[i] = tape.Merit(1 / float64(c.N))
		}
	}
	return out
}

// Result is what every protocol run returns.
type Result struct {
	// System names the protocol ("Bitcoin", ...).
	System string
	// History is the recorded concurrent history.
	History *history.History
	// Creators maps block ID → creating process (for Update
	// Agreement checks).
	Creators map[core.BlockID]int
	// Trees are the final per-process replicas.
	Trees []*core.Tree
	// Selector and Score are the f and score the system uses, which
	// the classifier must use too.
	Selector core.Selector
	Score    core.Score
	// OracleClaim is the oracle the protocol *should* map to per the
	// paper ("ΘP", "ΘF,k=1"); MeasuredForkMax is the observed maximal
	// fork degree across replicas, the empirical check of the claim.
	OracleClaim     string
	MeasuredForkMax int
	// PaperCriterion is Table 1's expected consistency class ("EC",
	// "SC", "SC w.h.p.").
	PaperCriterion string
	// Stats carries protocol-specific counters for reports.
	Stats map[string]int
}

// ComputeForkMax fills MeasuredForkMax from the replica trees.
func (r *Result) ComputeForkMax() {
	max := 0
	for _, t := range r.Trees {
		if d := t.MaxForkDegree(); d > max {
			max = d
		}
	}
	r.MeasuredForkMax = max
}

// FinalHeights returns the sorted final selected-chain heights across
// replicas (diagnostics: convergence means the spread is small).
func (r *Result) FinalHeights() []int {
	out := make([]int, 0, len(r.Trees))
	for _, t := range r.Trees {
		out = append(out, core.HeadOf(r.Selector, t).Height)
	}
	sort.Ints(out)
	return out
}

// String summarizes the run.
func (r *Result) String() string {
	return fmt.Sprintf("%s: %s, forks≤%d, heights=%v",
		r.System, r.History, r.MeasuredForkMax, r.FinalHeights())
}

// CoinbasePayload builds the toy-ledger payload every simulator uses for
// its blocks: a coinbase transaction minting 50 units to the creator
// plus a transfer spending part of it, so the ledger predicate has real
// work to do.
func CoinbasePayload(creator int, round int) []byte {
	txs := []core.Tx{
		{From: 0, To: uint32(creator + 1), Amount: 50},
	}
	if round%3 == 0 {
		txs = append(txs, core.Tx{From: 0, To: uint32(creator%7 + 1), Amount: uint32(round%17 + 1)})
	}
	return core.EncodeTxs(txs)
}
