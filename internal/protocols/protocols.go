// Package protocols defines the shared harness for the blockchain-system
// simulators of Section 5 (Bitcoin, Ethereum, ByzCoin, Algorand,
// PeerCensus, Red Belly, Hyperledger Fabric). Each simulator runs a
// deterministic discrete-event execution on internal/simnet, producing a
// recorded history plus the per-process replica trees; the classifier in
// internal/experiments then derives the system's Table 1 row — which
// oracle it implements (measured fork degree) and which consistency
// criterion its histories satisfy — instead of asserting it.
package protocols

import (
	"fmt"
	"sort"

	"repro/internal/adversary"
	"repro/internal/core"
	"repro/internal/history"
	"repro/internal/metrics"
	"repro/internal/replica"
	"repro/internal/simnet"
	"repro/internal/tape"
	"repro/internal/trace"
	"repro/internal/transport"
)

// Config is the common knob set. Protocol-specific knobs live in each
// sub-package's own config embedding this one.
type Config struct {
	// N is the number of processes.
	N int
	// Rounds is the number of protocol rounds (ticks / heights).
	Rounds int
	// Seed drives all randomness.
	Seed uint64
	// ReadEvery schedules a read() at every process each ReadEvery
	// virtual-time units (0 means 10).
	ReadEvery int64
	// Merits are the α_p values (hashing power / stake); nil means
	// uniform 1/N.
	Merits []tape.Merit
	// Faults optionally installs a deterministic partition/fault
	// schedule on the run's network (see simnet.Schedule): messages
	// crossing an active cut are deferred to the heal time, or lost
	// under a permanent cut. Nil means a fault-free network.
	Faults *simnet.Schedule
	// RecordFaults enables the network fault-event log, surfaced in
	// Result.FaultEvents (implied when Faults, Crashes or an adversary
	// is set).
	RecordFaults bool
	// Crashes optionally takes individual processes down on a
	// deterministic schedule (see simnet.CrashWindow): deliveries to a
	// down process are lost, it neither mines nor reads, and at the
	// window end it restarts and catches up through the anti-entropy
	// layer. Nil means no crashes.
	Crashes []simnet.CrashWindow
	// Durable selects the recovery discipline when Crashes is set: a
	// durable replica restores its snapshotted tree on restart and only
	// fetches what it missed; otherwise it rejoins from genesis
	// (amnesia) and must resynchronize everything.
	Durable bool
	// Adversary configures a process-level adversarial strategy
	// (selfish mining, equivocation, withholding). The zero value is
	// benign. Protocol simulators that support adversaries wire it;
	// the others ignore it.
	Adversary adversary.Config
	// Observer, when set, is invoked once per protocol round (tick /
	// height) before the round's block production; returning false
	// stops further production (the run still drains in-flight
	// messages and takes its final reads). The public btsim layer
	// wires per-round progress/early-stop callbacks through it.
	Observer func(round int, now int64) bool
	// Stream, when set, is invoked once right after the run's replica
	// group (and with it the Recorder) is built, before any operation
	// is recorded — the attachment point for streaming history sinks
	// and online consistency monitors (history.Sink). The score is the
	// one the run's batch classification uses, so a monitor can match
	// it. Runners invoke it through BindStream.
	Stream func(rec *history.Recorder, score core.Score)
	// Shards runs the simulation on a sharded scheduler with that many
	// worker shards (simnet.EnableSharding). 0 or 1 is the serial
	// scheduler — today's exact behavior; any value is specified to
	// produce a byte-identical history and digest, so this is purely a
	// wall-clock knob. Runners wire it through ApplySharding.
	Shards int
	// Metrics, when set, is the registry every layer of the run hangs
	// its deterministic counters and virtual-time-sampled gauges on.
	// Attaching it never changes the run's digest. Runners wire it
	// through ApplyObservability.
	Metrics *metrics.Registry
	// Trace, when set, collects structured scheduler events (sends,
	// deliveries, timers, faults, crashes, shard epochs, merge stalls)
	// with deterministic sequence-number sampling. Runners wire it
	// through ApplyObservability.
	Trace *trace.Tracer
	// Live, when set, switches the run from a deterministic simulation
	// to a real concurrent deployment over internal/transport: N nodes
	// on wall-clock timers, concurrent client load, and an online
	// consistency monitor attached over the shared recorder. Register
	// adapters dispatch to RunLive instead of their simulator when it
	// is set. N, Seed and Merits are taken from this Config, not from
	// the LiveConfig.
	Live *transport.LiveConfig

	// halted latches a false Observer return so every later round is
	// skipped without consulting the observer again.
	halted bool
}

// BindStream invokes the Stream hook (nil-safe). Every protocol runner
// calls it immediately after building its replica group, so sinks see
// the whole recorded history from the first operation.
func (c *Config) BindStream(rec *history.Recorder, score core.Score) {
	if c.Stream != nil {
		c.Stream(rec, score)
	}
}

// Tick reports whether the run should produce blocks for this round:
// it invokes the Observer (if any) and latches a false return. Every
// protocol runner calls it at the top of its per-round work.
func (c *Config) Tick(round int, now int64) bool {
	if c.halted {
		return false
	}
	if c.Observer != nil && !c.Observer(round, now) {
		c.halted = true
		return false
	}
	return true
}

// ApplyNet installs the common fault knobs on a run's network. Every
// protocol simulator calls it right after building its replica group.
// Partition windows and crash windows merge into one schedule; the
// caller's Faults schedule is never mutated.
func (c *Config) ApplyNet(nw *simnet.Network) {
	if c.RecordFaults || c.Faults != nil || c.Adversary.Active() || len(c.Crashes) > 0 {
		nw.RecordFaults(true)
	}
	sched := c.Faults
	if len(c.Crashes) > 0 {
		s := &simnet.Schedule{Crashes: c.Crashes}
		if c.Faults != nil {
			s.Windows = c.Faults.Windows
		}
		sched = s
	}
	if sched != nil {
		nw.SetSchedule(sched)
	}
}

// ApplySharding enables the sharded scheduler on the run's replica
// group when Config.Shards > 1. Every protocol runner calls it after
// the group is fully built (all handlers registered) and before the
// run starts; k ≤ 1 leaves the serial scheduler untouched.
func (c *Config) ApplySharding(group *replica.Group) {
	if c.Shards > 1 {
		group.EnableSharding(c.Shards)
	}
}

// ApplyObservability installs the run's metrics registry and event
// tracer on the simulator, network, replica group and recorder (all
// nil-safe). Every protocol runner calls it after ApplySharding — so
// the sharded engine, when enabled, is in place for per-shard staging —
// and before the run starts.
func (c *Config) ApplyObservability(sim *simnet.Sim, group *replica.Group) {
	if c.Trace != nil {
		sim.SetTrace(c.Trace)
	}
	if c.Metrics != nil {
		sim.SetMetrics(c.Metrics)
		group.Net.RegisterMetrics(c.Metrics)
		group.RegisterMetrics(c.Metrics)
		group.Rec.RegisterMetrics(c.Metrics)
	}
}

// ApplyCrashes wires crash recovery for the run's replica group (called
// after ApplyNet, which armed the crash schedule). Returns nil when no
// crashes are configured.
func (c *Config) ApplyCrashes(sim *simnet.Sim, group *replica.Group) *replica.RecoveryStats {
	if len(c.Crashes) == 0 {
		return nil
	}
	return group.EnableCrashRecovery(sim, replica.CrashPlan{Durable: c.Durable})
}

// AdversaryWiring is the per-run strategy state shared by the mining
// protocols (Bitcoin, Ethereum): the resolved adversarial process and
// the strategy objects driving it. The zero/benign wiring dispatches
// every process down the honest path.
type AdversaryWiring struct {
	cfg     adversary.Config
	ID      int // adversarial process id (-1 when benign)
	Selfish *adversary.SelfishMiner
	Equiv   *adversary.Equivocator
}

// WireAdversary builds the configured strategy over the run's replica
// group (benign configs produce inert wiring).
func (c *Config) WireAdversary(group *replica.Group) *AdversaryWiring {
	w := &AdversaryWiring{cfg: c.Adversary, ID: -1}
	if !c.Adversary.Active() {
		return w
	}
	w.ID = c.Adversary.ProcID(c.N)
	adv := group.Procs[w.ID]
	switch c.Adversary.Strategy {
	case adversary.Selfish, adversary.Withhold:
		w.Selfish = adversary.NewSelfishMiner(adv, group.Net, c.Adversary)
	case adversary.Equivocate:
		w.Equiv = adversary.NewEquivocator(adv, group.Net, c.Adversary)
	}
	return w
}

// MineTick runs process p's mining tick under the configured strategy:
// the selfish miner steps on its private tip, the equivocator floods
// forged siblings of its mined block, and every other process appends
// honestly. mint runs the oracle lottery (getToken + consumeToken) on
// the chosen parent — protocol bookkeeping (mined counters, difficulty
// retarget epochs) lives inside mint, so it is identical on the honest
// and adversarial paths.
func (w *AdversaryWiring) MineTick(p *replica.Process, mint adversary.Mint) {
	if p.Down() {
		return // a crashed process does not even run the lottery
	}
	if w.Selfish != nil && p.ID == w.ID {
		w.Selfish.Step(mint)
		return
	}
	b := mint(p.SelectedHead())
	if b == nil {
		return
	}
	if w.Equiv != nil && p.ID == w.ID {
		w.Equiv.FloodSiblings(b)
		return
	}
	p.AppendLocal(b)
}

// FinishRun flushes a withholding adversary's private branch (the
// Withhold strategy or ReleaseAtEnd) after the last round. It reports
// whether a branch was published, in which case the caller must drain
// the simulator again before the final reads.
func (w *AdversaryWiring) FinishRun() bool {
	if w.Selfish == nil || !(w.cfg.ReleaseAtEnd || w.cfg.Strategy == adversary.Withhold) {
		return false
	}
	w.Selfish.Flush()
	return true
}

// ExportStats copies the strategy counters into the run's stats map.
func (w *AdversaryWiring) ExportStats(stats map[string]int) {
	if w.Selfish != nil {
		stats["withheld"] = w.Selfish.Withheld
		stats["releases"] = w.Selfish.Releases
		stats["abandoned"] = w.Selfish.Abandoned
	}
	if w.Equiv != nil {
		stats["forged"] = w.Equiv.Forged
	}
}

// Norm fills defaults and returns the per-process merits normalized so
// that Σ α_p = 1 (the convention every Section 5 mapping states).
func (c *Config) Norm() []tape.Merit {
	if c.N <= 0 {
		c.N = 4
	}
	if c.Rounds <= 0 {
		c.Rounds = 50
	}
	if c.ReadEvery <= 0 {
		c.ReadEvery = 10
	}
	m := c.Merits
	if len(m) == 0 {
		m = make([]tape.Merit, c.N)
		for i := range m {
			m[i] = 1
		}
	}
	var sum float64
	for _, a := range m {
		sum += float64(a)
	}
	out := make([]tape.Merit, c.N)
	for i := range out {
		if i < len(m) && sum > 0 {
			out[i] = tape.Merit(float64(m[i]) / sum)
		} else {
			out[i] = tape.Merit(1 / float64(c.N))
		}
	}
	return out
}

// Result is what every protocol run returns.
type Result struct {
	// System names the protocol ("Bitcoin", ...).
	System string
	// History is the recorded concurrent history.
	History *history.History
	// Creators maps block ID → creating process (for Update
	// Agreement checks).
	Creators map[core.BlockID]int
	// Trees are the final per-process replicas.
	Trees []*core.Tree
	// Selector and Score are the f and score the system uses, which
	// the classifier must use too.
	Selector core.Selector
	Score    core.Score
	// OracleClaim is the oracle the protocol *should* map to per the
	// paper ("ΘP", "ΘF,k=1"); MeasuredForkMax is the observed maximal
	// fork degree across replicas, the empirical check of the claim.
	OracleClaim     string
	MeasuredForkMax int
	// PaperCriterion is Table 1's expected consistency class ("EC",
	// "SC", "SC w.h.p.").
	PaperCriterion string
	// Stats carries protocol-specific counters for reports.
	Stats map[string]int
	// FaultEvents is the run's recorded fault/adversary event log
	// (drops, partition cuts and heals, withhold/release decisions);
	// empty on benign runs without RecordFaults.
	FaultEvents []simnet.FaultEvent
	// AdversaryName labels the adversarial strategy of the run ("—"
	// when benign), for scenario matrices.
	AdversaryName string
	// Recovery carries the crash–recovery counters when the run had a
	// crash schedule (nil otherwise).
	Recovery *replica.RecoveryStats
}

// ExportRecovery folds the recovery counters into the stats map and
// records them on the result (nil-safe; called by crash-aware runners).
func (r *Result) ExportRecovery(rs *replica.RecoveryStats) {
	if rs == nil {
		return
	}
	r.Recovery = rs
	r.Stats["crashes"] = rs.Crashes
	r.Stats["restarts"] = rs.Restarts
	r.Stats["durableRestores"] = rs.DurableRestores
	r.Stats["amnesiaResets"] = rs.AmnesiaResets
	r.Stats["resyncBlocks"] = rs.ResyncBlocks
	r.Stats["solicits"] = rs.Solicits
	r.Stats["solicitRetries"] = rs.Retries
}

// ComputeForkMax fills MeasuredForkMax from the replica trees.
func (r *Result) ComputeForkMax() {
	max := 0
	for _, t := range r.Trees {
		if d := t.MaxForkDegree(); d > max {
			max = d
		}
	}
	r.MeasuredForkMax = max
}

// FinalHeights returns the sorted final selected-chain heights across
// replicas (diagnostics: convergence means the spread is small).
func (r *Result) FinalHeights() []int {
	out := make([]int, 0, len(r.Trees))
	for _, t := range r.Trees {
		out = append(out, core.HeadOf(r.Selector, t).Height)
	}
	sort.Ints(out)
	return out
}

// String summarizes the run.
func (r *Result) String() string {
	return fmt.Sprintf("%s: %s, forks≤%d, heights=%v",
		r.System, r.History, r.MeasuredForkMax, r.FinalHeights())
}

// CoinbasePayload builds the toy-ledger payload every simulator uses for
// its blocks: a coinbase transaction minting 50 units to the creator
// plus a transfer spending part of it, so the ledger predicate has real
// work to do.
func CoinbasePayload(creator int, round int) []byte {
	txs := []core.Tx{
		{From: 0, To: uint32(creator + 1), Amount: 50},
	}
	if round%3 == 0 {
		txs = append(txs, core.Tx{From: 0, To: uint32(creator%7 + 1), Amount: uint32(round%17 + 1)})
	}
	return core.EncodeTxs(txs)
}
