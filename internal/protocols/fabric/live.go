package fabric

import (
	"repro/internal/core"
	"repro/internal/oracle"
	"repro/internal/protocols"
	"repro/internal/tape"
	"repro/internal/transport"
)

// LiveProfile builds the live-deployment profile: the ordering service
// collapses onto the sequencer policy (every append routes through node
// 0, the orderer), and each cut consumes the unique height token of the
// frugal oracle with k = 1 — one block per height, a single chain.
func LiveProfile(cfg Config) transport.Profile {
	cfg.Norm()
	orc := oracle.NewFrugal(1, func(tape.Merit) float64 { return 1 }, core.WellFormed{}, cfg.Seed^0xfab21c)
	return transport.Profile{
		System:         "Hyperledger",
		Selector:       core.SingleChain{},
		Score:          core.LengthScore{},
		Predicate:      core.WellFormed{},
		OracleClaim:    "ΘF,k=1",
		PaperCriterion: "SC",
		Sequencer:      true,
		Mint: func(proc int, parent *core.Block, seq int) *core.Block {
			b, ok := orc.GetToken(1, parent, proc, parent.Height, protocols.CoinbasePayload(proc, seq))
			if !ok {
				return nil
			}
			if _, consumed := orc.ConsumeToken(b); !consumed {
				return nil
			}
			return b
		},
	}
}
