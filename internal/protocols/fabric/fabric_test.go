package fabric

import (
	"testing"

	"repro/internal/consistency"
	"repro/internal/core"
)

func defaultCfg(seed uint64) Config {
	var c Config
	c.N = 4
	c.Rounds = 40 // 40 client submissions
	c.Seed = seed
	c.ReadEvery = 10
	return c
}

func TestBlocksCutAndDelivered(t *testing.T) {
	res := Run(defaultCfg(1))
	if res.Stats["blocks"] == 0 {
		t.Fatalf("no blocks cut: %v", res.Stats)
	}
	if res.Stats["submitted"] == 0 || res.Stats["endorsements"] == 0 || res.Stats["ordered"] == 0 {
		t.Fatalf("pipeline stats empty: %v", res.Stats)
	}
	hs := res.FinalHeights()
	if hs[0] != hs[len(hs)-1] || hs[0] == 0 {
		t.Fatalf("heights %v", hs)
	}
}

func TestBothStopConditionsFire(t *testing.T) {
	// Size condition: rapid submissions fill blocks of MaxTxPerBlock.
	fast := defaultCfg(2)
	fast.TxInterval = 1
	fast.MaxTxPerBlock = 3
	fast.MaxBatchDelay = 500
	resFast := Run(fast)
	if resFast.Stats["cut_size"] == 0 {
		t.Fatalf("size stop condition never fired: %v", resFast.Stats)
	}

	// Time condition: sparse submissions age out of the batch window.
	slow := defaultCfg(3)
	slow.TxInterval = 20
	slow.MaxTxPerBlock = 100
	slow.MaxBatchDelay = 5
	resSlow := Run(slow)
	if resSlow.Stats["cut_time"] == 0 {
		t.Fatalf("time stop condition never fired: %v", resSlow.Stats)
	}
}

func TestForkFreeStrongConsistency(t *testing.T) {
	for _, seed := range []uint64{1, 2} {
		res := Run(defaultCfg(seed))
		if res.MeasuredForkMax > 1 {
			t.Fatalf("seed %d: ordering service forked", seed)
		}
		chk := consistency.NewChecker(res.Score, core.WellFormed{})
		sc, ec := chk.Classify(res.History)
		if !sc.OK || !ec.OK {
			t.Fatalf("seed %d: %s / %s", seed, sc, ec)
		}
		if rep := chk.KForkCoherence(res.History, 1); !rep.OK {
			t.Fatalf("seed %d: k=1: %v", seed, rep.Violations)
		}
	}
}

func TestAllBlocksByOrderer(t *testing.T) {
	res := Run(defaultCfg(4))
	c := res.Selector.Select(res.Trees[0])
	for _, b := range c {
		if !b.IsGenesis() && b.Creator != 0 {
			t.Fatalf("block by %d, want the ordering service (0)", b.Creator)
		}
	}
}

func TestBlockPayloadsAreTxBatches(t *testing.T) {
	res := Run(defaultCfg(5))
	c := res.Selector.Select(res.Trees[1])
	for _, b := range c {
		if b.IsGenesis() {
			continue
		}
		txs, err := core.DecodeTxs(b.Payload)
		if err != nil {
			t.Fatalf("block %s payload: %v", b.ID.Short(), err)
		}
		if len(txs) == 0 {
			t.Fatalf("block %s empty", b.ID.Short())
		}
	}
}

func TestDeterminism(t *testing.T) {
	a, b := Run(defaultCfg(6)), Run(defaultCfg(6))
	if a.Stats["blocks"] != b.Stats["blocks"] || a.Stats["ordered"] != b.Stats["ordered"] {
		t.Fatal("nondeterministic run")
	}
}
