// Package fabric simulates the Hyperledger Fabric mapping of Section
// 5.7: a permissioned system where transactions are executed by a set of
// endorsers, ordered by a total-order-broadcast ordering service (a
// sequencer here), and cut into blocks when a stop condition is met —
// either a maximal number of transactions per block or a maximal elapsed
// time since the first transaction of the batch, exactly the two stop
// conditions the paper lists. A unique token per height is consumed (the
// leader-cut block), so Fabric maps to the frugal oracle with k = 1 and
// implements a strongly consistent BlockTree.
package fabric

import (
	"repro/internal/adversary"
	"repro/internal/consensus"
	"repro/internal/core"
	"repro/internal/oracle"
	"repro/internal/protocols"
	"repro/internal/replica"
	"repro/internal/simnet"
	"repro/internal/tape"
)

// Config extends the common knobs.
type Config struct {
	protocols.Config
	// Endorsers is the number of endorsing peers (first E processes);
	// a transaction needs a majority of endorsements. 0 means N/2+1.
	Endorsers int
	// MaxTxPerBlock is the block-cut size condition (0 means 4).
	MaxTxPerBlock int
	// MaxBatchDelay is the block-cut time condition: the maximal
	// elapsed virtual time since the first transaction of the batch
	// (0 means 12).
	MaxBatchDelay int64
	// Delta is the network delay bound.
	Delta int64
	// TxInterval is the virtual time between client submissions
	// (0 means 3).
	TxInterval int64
}

// Message types of the endorsement flow.
type (
	endorseReq struct {
		Tx     core.Tx
		Client int
		Seq    int
	}
	endorseAck struct {
		Client int
		Seq    int
	}
)

// Run executes the simulation.
func Run(cfg Config) *protocols.Result {
	cfg.Norm()
	if cfg.Endorsers <= 0 || cfg.Endorsers > cfg.N {
		cfg.Endorsers = cfg.N/2 + 1
	}
	if cfg.MaxTxPerBlock <= 0 {
		cfg.MaxTxPerBlock = 4
	}
	if cfg.MaxBatchDelay <= 0 {
		cfg.MaxBatchDelay = 12
	}
	if cfg.Delta <= 0 {
		cfg.Delta = 2
	}
	if cfg.TxInterval <= 0 {
		cfg.TxInterval = 3
	}

	sim := simnet.NewSim(cfg.Seed)
	group := replica.NewGroup(sim, cfg.N, simnet.Synchronous{Delta: cfg.Delta}, core.SingleChain{})
	cfg.BindStream(group.Rec, core.LengthScore{})
	cfg.ApplyNet(group.Net)
	cfg.ApplySharding(group)
	cfg.ApplyObservability(sim, group)
	group.SetPredicate(core.WellFormed{})
	orc := oracle.NewFrugal(1, func(tape.Merit) float64 { return 1 }, core.WellFormed{}, cfg.Seed^0xfab21c)
	tob := consensus.NewTOB(group.Net, 0) // process 0 is the ordering service

	stats := map[string]int{}
	orderer := 0

	// Adversarial wiring: an equivocating ordering service. Fabric's
	// whole claim to the frugal oracle Θ_F,k=1 rests on the orderer
	// cutting ONE block per height; a Byzantine orderer that signs two
	// conflicting blocks for the same height (reusing the height's
	// token) is exactly the attack the k-Fork Coherence checker was
	// built to measure.
	var equiv *adversary.Equivocator
	if cfg.Adversary.Strategy == adversary.Equivocate {
		advID := cfg.Adversary.ProcID(cfg.N)
		if advID != orderer {
			advID = orderer // only the orderer can equivocate on cuts
		}
		equiv = adversary.NewEquivocator(group.Procs[advID], group.Net, cfg.Adversary)
	}
	need := cfg.Endorsers/2 + 1

	// Endorsement bookkeeping at each client: acks per submitted tx.
	acks := make([]map[int]int, cfg.N)
	sent := make([]map[int]bool, cfg.N)
	for i := range acks {
		acks[i] = make(map[int]int)
		sent[i] = make(map[int]bool)
	}

	// Batch state at the orderer.
	var (
		batch      []core.Tx
		batchStart int64
		height     int
	)
	cut := func(reason string) {
		if len(batch) == 0 {
			return
		}
		stats["blocks"]++
		stats["cut_"+reason]++
		parent := group.Procs[orderer].SelectedHead()
		payload := core.EncodeTxs(batch)
		b, ok := orc.GetToken(1, parent, orderer, height, payload)
		if !ok || b == nil {
			return
		}
		if _, consumed := orc.ConsumeToken(b); consumed {
			stats["consumed"]++
			if equiv != nil {
				equiv.FloodSiblings(b)
			} else {
				group.Procs[orderer].AppendLocal(b)
			}
		}
		height++
		batch = nil
	}

	// The per-process handlers: endorsers answer endorsement
	// requests; clients count acks and forward endorsed txs to the
	// ordering service; the orderer batches delivered txs.
	for i := 0; i < cfg.N; i++ {
		id := i
		group.Net.AddHandler(id, func(m simnet.Message) {
			switch msg := m.Payload.(type) {
			case endorseReq:
				if id < cfg.Endorsers {
					stats["endorsements"]++
					group.Net.Send(id, msg.Client, endorseAck{Client: msg.Client, Seq: msg.Seq})
				}
			case endorseAck:
				if id != msg.Client || sent[id][msg.Seq] {
					return
				}
				acks[id][msg.Seq]++
				if acks[id][msg.Seq] >= need {
					sent[id][msg.Seq] = true
					stats["ordered"]++
					tx := core.Tx{From: 0, To: uint32(id + 1), Amount: uint32(msg.Seq%97 + 1)}
					tob.Broadcast(id, tx)
				}
			}
		})
	}

	// The ordering service delivers txs in total order; the orderer
	// process batches them and cuts blocks by size or elapsed time.
	tob.OnDeliver = func(proc, seq int, payload any) {
		if proc != orderer {
			return
		}
		tx, ok := payload.(core.Tx)
		if !ok {
			return
		}
		if len(batch) == 0 {
			batchStart = sim.Now()
			// Arm the time-based stop condition for this batch.
			start := batchStart
			sim.Schedule(cfg.MaxBatchDelay, func() {
				if len(batch) > 0 && batchStart == start && sim.Now()-batchStart >= cfg.MaxBatchDelay {
					cut("time")
				}
			})
		}
		batch = append(batch, tx)
		if len(batch) >= cfg.MaxTxPerBlock {
			cut("size")
		}
	}

	// Clients submit transactions periodically.
	seq := 0
	for t := int64(1); t <= int64(cfg.Rounds)*cfg.TxInterval; t += cfg.TxInterval {
		tt := t
		s := seq
		sim.Schedule(tt, func() {
			if !cfg.Tick(s, sim.Now()) {
				return
			}
			client := int(tt) % cfg.N
			stats["submitted"]++
			req := endorseReq{Tx: core.Tx{From: 0, To: uint32(client + 1), Amount: 1}, Client: client, Seq: s}
			for e := 0; e < cfg.Endorsers; e++ {
				group.Net.Send(client, e, req)
			}
		})
		seq++
	}

	// Periodic reads.
	end := int64(cfg.Rounds)*cfg.TxInterval + cfg.MaxBatchDelay*2
	for t := cfg.ReadEvery; t <= end; t += cfg.ReadEvery {
		tt := t
		sim.Schedule(tt, func() {
			for _, p := range group.Procs {
				p.Read()
			}
		})
	}

	sim.RunUntilIdle()
	cut("final")
	sim.RunUntilIdle()
	for _, p := range group.Procs {
		p.Read()
	}
	for _, p := range group.Procs {
		p.Read()
	}

	res := &protocols.Result{
		System:         "Hyperledger",
		History:        group.History(),
		Creators:       group.Reg.Creators(),
		Selector:       core.SingleChain{},
		Score:          core.LengthScore{},
		OracleClaim:    "ΘF,k=1",
		PaperCriterion: "SC",
		Stats:          stats,
		FaultEvents:    group.Net.FaultEvents(),
		AdversaryName:  cfg.Adversary.Name(),
	}
	if equiv != nil {
		stats["forged"] = equiv.Forged
	}
	for _, p := range group.Procs {
		res.Trees = append(res.Trees, p.Tree().Clone())
	}
	res.ComputeForkMax()
	return res
}
