package fabric

import "repro/btsim"

func init() {
	btsim.Register(btsim.NewSystem(btsim.Info{
		Name:      "fabric",
		Section:   "5.7",
		Oracle:    "ΘF,k=1",
		K:         1,
		Criterion: "SC",
		Synopsis:  "permissioned: endorsement, ordering service, block cutting",
	}, func(cfg btsim.Config) (*btsim.Result, error) {
		c := Config{Delta: cfg.Delta}
		c.Config = cfg.Base()
		return &btsim.Result{Result: Run(c)}, nil
	}))
}
