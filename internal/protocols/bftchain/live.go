package bftchain

import (
	"repro/internal/core"
	"repro/internal/oracle"
	"repro/internal/protocols"
	"repro/internal/tape"
	"repro/internal/transport"
)

// LiveProfile builds the live-deployment profile shared by the BFT
// chain family (ByzCoin, PeerCensus, Red Belly): the per-height PBFT
// decision collapses onto the sequencer policy — every append routes
// through node 0, whose consumed height token is the consensus decision
// — and the frugal oracle with k = 1 admits exactly one block per
// height, as in the simulator.
func LiveProfile(cfg Config) transport.Profile {
	merits := cfg.Norm()
	if cfg.System == "" {
		cfg.System = "BFTChain"
	}
	meritOf := cfg.MeritOf
	if meritOf == nil {
		meritOf = func(p int) tape.Merit { return merits[p] }
	}
	orc := oracle.NewFrugal(1, func(a tape.Merit) float64 {
		if a <= 0 {
			return 0
		}
		return 0.5
	}, core.WellFormed{}, cfg.Seed^0xbf7c4a11)
	return transport.Profile{
		System:         cfg.System,
		Selector:       core.SingleChain{},
		Score:          core.LengthScore{},
		Predicate:      core.WellFormed{},
		OracleClaim:    "ΘF,k=1",
		PaperCriterion: "SC",
		Sequencer:      true,
		Mint: func(proc int, parent *core.Block, seq int) *core.Block {
			m := meritOf(proc)
			if m <= 0 {
				return nil // not allowed to propose (outside M)
			}
			b, _ := oracle.MineToken(orc, m, parent, proc, parent.Height,
				protocols.CoinbasePayload(proc, seq), 1<<12)
			if b == nil {
				return nil
			}
			if _, consumed := orc.ConsumeToken(b); !consumed {
				return nil
			}
			return b
		},
	}
}
