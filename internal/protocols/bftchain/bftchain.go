// Package bftchain is the shared harness for the strongly consistent
// protocol family of Section 5 — ByzCoin (§5.3), PeerCensus (§5.5) and
// Red Belly (§5.6): a chain of PBFT instances, one per height, in which
// the leader's proposal is a block validated by the frugal oracle with
// k = 1, the consensus decision is the consumeToken (exactly one block
// per height enters the tree), and the decided block is disseminated by
// flooding through the replicated-BlockTree layer. The three systems
// differ in who leads each height and who is allowed to propose, which
// is what the hooks parameterize.
package bftchain

import (
	"repro/internal/consensus"
	"repro/internal/core"
	"repro/internal/oracle"
	"repro/internal/protocols"
	"repro/internal/replica"
	"repro/internal/simnet"
	"repro/internal/tape"
)

// Config parameterizes one BFT-chain run.
type Config struct {
	protocols.Config
	// System names the protocol for the result.
	System string
	// Delta is the synchronous delay bound δ.
	Delta int64
	// Timeout is the PBFT view-change timeout.
	Timeout int64
	// LeaderFn picks the leader per (height, view); nil = round-robin.
	LeaderFn func(height, view int) int
	// Behaviors injects faults per process.
	Behaviors map[int]consensus.Behavior
	// MeritOf returns the proposing merit of a process; nil = common
	// normalized merit. Red Belly sets 0 outside the consortium.
	MeritOf func(proc int) tape.Merit
	// OnHeightDecided, if set, observes each locally decided height
	// (used by PeerCensus to track the committee).
	OnHeightDecided func(proc, height int, b *core.Block)
}

// Run executes Rounds heights of the BFT chain.
func Run(cfg Config) *protocols.Result {
	merits := cfg.Norm()
	if cfg.Delta <= 0 {
		cfg.Delta = 3
	}
	if cfg.Timeout <= 0 {
		cfg.Timeout = 40
	}
	if cfg.System == "" {
		cfg.System = "BFTChain"
	}
	meritOf := cfg.MeritOf
	if meritOf == nil {
		meritOf = func(p int) tape.Merit { return merits[p] }
	}

	sim := simnet.NewSim(cfg.Seed)
	group := replica.NewGroup(sim, cfg.N, simnet.Synchronous{Delta: cfg.Delta}, core.SingleChain{})
	cfg.BindStream(group.Rec, core.LengthScore{})
	cfg.ApplyNet(group.Net)
	cfg.ApplySharding(group)
	cfg.ApplyObservability(sim, group)
	group.SetPredicate(core.WellFormed{})
	// The frugal oracle with k = 1: getToken validates proposals (the
	// PoW/Sortition/endorsement step of the real systems), the
	// consensus decision consumes the single token per height. A high
	// effective probability keeps proposal mining short: validation
	// cost is not what these systems' consistency depends on.
	orc := oracle.NewFrugal(1, func(a tape.Merit) float64 {
		if a <= 0 {
			return 0
		}
		return 0.5
	}, core.WellFormed{}, cfg.Seed^0xbf7c4a11)

	stats := map[string]int{}
	consumedAt := make(map[int]bool) // height → token consumed

	// engStart is assigned after the engine exists; the OnDecide
	// closure below captures the variable, not the value, so the
	// cycle engine → OnDecide → Start(engine) is well-defined.
	// Single-threaded simulator: no races.
	var engStart func(h int)

	eng, err := consensus.NewEngine(group.Net, consensus.Config{
		N:         cfg.N,
		Timeout:   cfg.Timeout,
		Behaviors: cfg.Behaviors,
		LeaderFn:  cfg.LeaderFn,
		Propose: func(proc, height int) *core.Block {
			m := meritOf(proc)
			if m <= 0 {
				return nil // not allowed to propose (outside M)
			}
			parent := group.Procs[proc].SelectedHead()
			b, attempts := oracle.MineToken(orc, m, parent, proc, height, protocols.CoinbasePayload(proc, height), 1<<12)
			stats["mineAttempts"] += attempts
			return b
		},
		OnDecide: func(proc, height int, b *core.Block) {
			stats["decisions"]++
			if cfg.OnHeightDecided != nil {
				cfg.OnHeightDecided(proc, height, b)
			}
			// The first local decision consumes the token — the
			// consensus IS the consumeToken (Section 5.3/5.6).
			if !consumedAt[height] {
				consumedAt[height] = true
				if _, ok := orc.ConsumeToken(b); ok {
					stats["consumed"]++
				}
			}
			// The creator floods the decided block through the
			// replica layer (update + send; replicas record
			// receive + update).
			if proc == b.Creator {
				group.Procs[proc].AppendLocal(b)
			}
			// The creator's decision also drives the height
			// sequencing: start the next height once the flood
			// has settled.
			if proc == b.Creator && height+1 < cfg.Rounds {
				sim.Schedule(cfg.Delta+1, func() { engStart(height + 1) })
			}
		},
	})
	if err != nil {
		panic(err)
	}

	started := map[int]bool{}
	engStart = func(h int) {
		if started[h] {
			return
		}
		started[h] = true
		if !cfg.Tick(h, sim.Now()) {
			return
		}
		eng.Start(h)
	}
	engStart(0)

	// Periodic reads.
	horizon := int64(cfg.Rounds) * (cfg.Timeout + cfg.Delta*4)
	for t := cfg.ReadEvery; t <= horizon; t += cfg.ReadEvery * 4 {
		tt := t
		sim.Schedule(tt, func() {
			for _, p := range group.Procs {
				p.Read()
			}
		})
	}

	sim.RunUntilIdle()
	for _, p := range group.Procs {
		p.Read()
	}
	for _, p := range group.Procs {
		p.Read()
	}

	res := &protocols.Result{
		System:         cfg.System,
		History:        group.History(),
		Creators:       group.Reg.Creators(),
		Selector:       core.SingleChain{},
		Score:          core.LengthScore{},
		OracleClaim:    "ΘF,k=1",
		PaperCriterion: "SC",
		Stats:          stats,
		FaultEvents:    group.Net.FaultEvents(),
		AdversaryName:  cfg.Adversary.Name(),
	}
	for _, p := range group.Procs {
		res.Trees = append(res.Trees, p.Tree().Clone())
	}
	res.ComputeForkMax()
	gets, grants, consumed, rejected := orc.Stats()
	stats["getToken"] = gets
	stats["grants"] = grants
	stats["oracleConsumed"] = consumed
	stats["oracleRejected"] = rejected
	return res
}
