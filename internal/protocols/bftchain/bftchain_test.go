package bftchain

import (
	"testing"

	"repro/internal/consensus"
	"repro/internal/consistency"
	"repro/internal/core"
	"repro/internal/tape"
)

func defaultCfg(seed uint64) Config {
	var c Config
	c.N = 4
	c.Rounds = 20
	c.Seed = seed
	c.ReadEvery = 10
	c.System = "test-chain"
	return c
}

func TestChainGrowsForkFree(t *testing.T) {
	res := Run(defaultCfg(1))
	if res.MeasuredForkMax > 1 {
		t.Fatalf("fork degree %d under k=1", res.MeasuredForkMax)
	}
	hs := res.FinalHeights()
	if hs[0] != hs[len(hs)-1] {
		t.Fatalf("replicas diverge: %v", hs)
	}
	if hs[0] != 20 {
		t.Fatalf("final height %d, want 20 (one block per round)", hs[0])
	}
}

func TestStronglyConsistent(t *testing.T) {
	for _, seed := range []uint64{1, 2, 3} {
		res := Run(defaultCfg(seed))
		chk := consistency.NewChecker(res.Score, core.WellFormed{})
		sc, ec := chk.Classify(res.History)
		if !sc.OK {
			t.Fatalf("seed %d: SC violated: %v", seed, sc.Failing())
		}
		if !ec.OK {
			t.Fatalf("seed %d: EC violated: %v", seed, ec.Failing())
		}
		if rep := chk.KForkCoherence(res.History, 1); !rep.OK {
			t.Fatalf("seed %d: 1-fork coherence: %v", seed, rep.Violations)
		}
	}
}

func TestCrashedFollowerTolerated(t *testing.T) {
	cfg := defaultCfg(4)
	cfg.Rounds = 8
	cfg.Behaviors = map[int]consensus.Behavior{3: consensus.Crashed}
	res := Run(cfg)
	// The three live replicas reach the full height.
	live := 0
	for p, tr := range res.Trees {
		if p == 3 {
			continue
		}
		if res.Selector.Select(tr).Height() == 8 {
			live++
		}
	}
	if live != 3 {
		t.Fatalf("only %d live replicas completed", live)
	}
}

func TestCrashedLeaderRecoveredByViewChange(t *testing.T) {
	cfg := defaultCfg(5)
	cfg.Rounds = 6
	// Fixed leader policy pointing at a crashed process for height 0,
	// view 0; the view change must rotate past it.
	cfg.Behaviors = map[int]consensus.Behavior{0: consensus.Crashed}
	cfg.LeaderFn = func(h, v int) int { return (h + v) % 4 }
	res := Run(cfg)
	hs := res.FinalHeights()
	if hs[len(hs)-1] != 6 {
		t.Fatalf("chain stalled at %v with a crashed initial leader", hs)
	}
	// Height 0's block must come from the view-1 leader, not p0.
	c := res.Selector.Select(res.Trees[1])
	if c.Block(1).Creator == 0 {
		t.Fatal("crashed leader authored a block")
	}
}

func TestMeritGatekeeping(t *testing.T) {
	cfg := defaultCfg(6)
	cfg.Rounds = 6
	// Only processes 0 and 1 may propose.
	cfg.MeritOf = func(p int) tape.Merit {
		if p < 2 {
			return 0.5
		}
		return 0
	}
	cfg.LeaderFn = func(h, v int) int { return (h + v) % 2 }
	res := Run(cfg)
	c := res.Selector.Select(res.Trees[0])
	for _, b := range c {
		if !b.IsGenesis() && b.Creator >= 2 {
			t.Fatalf("merit-0 process %d authored a block", b.Creator)
		}
	}
	if c.Height() != 6 {
		t.Fatalf("height %d", c.Height())
	}
}

func TestResultMetadata(t *testing.T) {
	res := Run(defaultCfg(7))
	if res.OracleClaim != "ΘF,k=1" || res.PaperCriterion != "SC" {
		t.Fatalf("claims wrong: %+v", res)
	}
	if res.Stats["decisions"] == 0 || res.Stats["consumed"] == 0 {
		t.Fatalf("stats empty: %v", res.Stats)
	}
	// Exactly one token consumed per height.
	if res.Stats["consumed"] != 20 {
		t.Fatalf("consumed %d tokens for 20 heights", res.Stats["consumed"])
	}
}

func TestDeterminism(t *testing.T) {
	a, b := Run(defaultCfg(8)), Run(defaultCfg(8))
	ca := a.Selector.Select(a.Trees[0])
	cb := b.Selector.Select(b.Trees[0])
	if !ca.Equal(cb) {
		t.Fatal("same seed, different chain")
	}
}
