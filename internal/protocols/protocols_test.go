package protocols

import (
	"testing"

	"repro/internal/core"
	"repro/internal/tape"
)

func TestNormDefaults(t *testing.T) {
	c := &Config{}
	m := c.Norm()
	if c.N != 4 || c.Rounds != 50 || c.ReadEvery != 10 {
		t.Fatalf("defaults %+v", c)
	}
	if len(m) != 4 {
		t.Fatalf("merits %v", m)
	}
	var sum float64
	for _, a := range m {
		sum += float64(a)
	}
	if sum < 0.999 || sum > 1.001 {
		t.Fatalf("merits not normalized: %v", m)
	}
}

func TestNormCustomMerits(t *testing.T) {
	c := &Config{N: 3, Merits: []tape.Merit{3, 1, 0}}
	m := c.Norm()
	if m[0] != 0.75 || m[1] != 0.25 || m[2] != 0 {
		t.Fatalf("normalized %v", m)
	}
}

func TestNormShortMeritVector(t *testing.T) {
	c := &Config{N: 4, Merits: []tape.Merit{1, 1}}
	m := c.Norm()
	if len(m) != 4 {
		t.Fatalf("merits %v", m)
	}
	if m[0] != 0.5 || m[1] != 0.5 {
		t.Fatalf("normalized %v", m)
	}
}

func TestCoinbasePayloadDecodes(t *testing.T) {
	for round := 0; round < 10; round++ {
		p := CoinbasePayload(2, round)
		txs, err := core.DecodeTxs(p)
		if err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		if len(txs) == 0 || txs[0].From != 0 || txs[0].To != 3 || txs[0].Amount != 50 {
			t.Fatalf("round %d coinbase wrong: %v", round, txs)
		}
	}
}

func TestResultForkMaxAndHeights(t *testing.T) {
	tr := core.NewTree()
	g := core.Genesis()
	a := core.NewBlock(g.ID, 1, 0, 1, nil)
	b := core.NewBlock(g.ID, 1, 1, 2, nil)
	if err := tr.Attach(a); err != nil {
		t.Fatal(err)
	}
	if err := tr.Attach(b); err != nil {
		t.Fatal(err)
	}
	r := &Result{Trees: []*core.Tree{tr, core.NewTree()}, Selector: core.LongestChain{}}
	r.ComputeForkMax()
	if r.MeasuredForkMax != 2 {
		t.Fatalf("fork max %d", r.MeasuredForkMax)
	}
	hs := r.FinalHeights()
	if len(hs) != 2 || hs[0] != 0 || hs[1] != 1 {
		t.Fatalf("heights %v", hs)
	}
}
