package peercensus

import (
	"repro/internal/protocols/bftchain"
	"repro/internal/transport"
)

// LiveProfile reuses the shared BFT-chain live profile under
// PeerCensus's name (committee anchoring picks leaders in simulation;
// live, the sequencer holds the identity-granting token per height).
func LiveProfile(cfg Config) transport.Profile {
	return bftchain.LiveProfile(bftchain.Config{
		Config: cfg.Config, System: "PeerCensus", Delta: cfg.Delta, Timeout: cfg.Timeout,
	})
}
