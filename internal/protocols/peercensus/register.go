package peercensus

import "repro/btsim"

func init() {
	btsim.Register(btsim.NewSystem(btsim.Info{
		Name:      "peercensus",
		Section:   "5.5",
		Oracle:    "ΘF,k=1",
		K:         1,
		Criterion: "SC",
		Synopsis:  "PoW identities, committee consensus anchored on prior creators",
	}, func(cfg btsim.Config) (*btsim.Result, error) {
		c := Config{Delta: cfg.Delta}
		c.Config = cfg.Base()
		return &btsim.Result{Result: Run(c)}, nil
	}))
}
