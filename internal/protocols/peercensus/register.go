package peercensus

import (
	"repro/btsim"
	"repro/internal/protocols"
)

func init() {
	btsim.Register(btsim.NewSystem(btsim.Info{
		Name:      "peercensus",
		Section:   "5.5",
		Oracle:    "ΘF,k=1",
		K:         1,
		Criterion: "SC",
		Synopsis:  "PoW identities, committee consensus anchored on prior creators",
	}, func(cfg btsim.Config) (*btsim.Result, error) {
		c := Config{Delta: cfg.Delta}
		c.Config = cfg.Base()
		if c.Live != nil {
			res, lr, err := protocols.RunLive(c.Config, LiveProfile(c))
			if err != nil {
				return nil, err
			}
			return &btsim.Result{Result: res, Live: lr}, nil
		}
		return &btsim.Result{Result: Run(c)}, nil
	}))
}
