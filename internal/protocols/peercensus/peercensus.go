// Package peercensus simulates the PeerCensus mapping of Section 5.5:
// Bitcoin-style proof-of-work grants identities (the getToken
// operation), and a dynamic Byzantine-tolerant consensus run by the
// committee of established identities commits a single key block among
// the concurrent candidates (the consumeToken returns true for exactly
// one token — a frugal oracle with k = 1). The leader of each height is
// the creator of the previous key block (the committee tracking of the
// real system), falling back to rotation on view change.
package peercensus

import (
	"repro/internal/consensus"
	"repro/internal/core"
	"repro/internal/protocols"
	"repro/internal/protocols/bftchain"
)

// Config extends the common knobs.
type Config struct {
	protocols.Config
	Delta, Timeout int64
	Behaviors      map[int]consensus.Behavior
}

// Run executes the simulation.
func Run(cfg Config) *protocols.Result {
	// lastCreator[h] is the creator of the decided block at height h;
	// the leader of height h+1 is that creator (committee anchoring).
	lastCreator := map[int]int{}
	res := bftchain.Run(bftchain.Config{
		Config:    cfg.Config,
		System:    "PeerCensus",
		Delta:     cfg.Delta,
		Timeout:   cfg.Timeout,
		Behaviors: cfg.Behaviors,
		LeaderFn: func(height, view int) int {
			base := height // genesis epoch: rotate
			if c, ok := lastCreator[height-1]; ok {
				base = c
			}
			return (base + view) % cfg.N
		},
		OnHeightDecided: func(proc, height int, b *core.Block) {
			if _, ok := lastCreator[height]; !ok {
				lastCreator[height] = b.Creator
			}
		},
	})
	res.System = "PeerCensus"
	return res
}
