package peercensus

import (
	"testing"

	"repro/internal/consensus"
	"repro/internal/consistency"
	"repro/internal/core"
)

func defaultCfg(seed uint64) Config {
	var c Config
	c.N = 4
	c.Rounds = 15
	c.Seed = seed
	c.ReadEvery = 10
	return c
}

func TestStronglyConsistent(t *testing.T) {
	for _, seed := range []uint64{1, 2} {
		res := Run(defaultCfg(seed))
		if res.System != "PeerCensus" {
			t.Fatalf("system %q", res.System)
		}
		if res.MeasuredForkMax > 1 {
			t.Fatalf("seed %d: forked", seed)
		}
		chk := consistency.NewChecker(res.Score, core.WellFormed{})
		sc, ec := chk.Classify(res.History)
		if !sc.OK || !ec.OK {
			t.Fatalf("seed %d: %s / %s", seed, sc, ec)
		}
		if rep := chk.KForkCoherence(res.History, 1); !rep.OK {
			t.Fatalf("seed %d: 1-fork coherence: %v", seed, rep.Violations)
		}
	}
}

func TestCommitteeAnchoring(t *testing.T) {
	// The leader of height h+1 is the creator of height h's block (no
	// view changes in a fault-free run): consecutive blocks share a
	// creator once a leader is established.
	res := Run(defaultCfg(3))
	c := res.Selector.Select(res.Trees[0])
	if c.Height() < 3 {
		t.Fatalf("height %d", c.Height())
	}
	for h := 2; h <= c.Height(); h++ {
		if c.Block(h).Creator != c.Block(h-1).Creator {
			t.Fatalf("height %d creator %d, previous %d — anchoring broken",
				h, c.Block(h).Creator, c.Block(h-1).Creator)
		}
	}
}

func TestFaultToleranceWithCrash(t *testing.T) {
	cfg := defaultCfg(4)
	cfg.Rounds = 6
	cfg.Behaviors = map[int]consensus.Behavior{2: consensus.Crashed}
	res := Run(cfg)
	heights := res.FinalHeights()
	if heights[len(heights)-1] != 6 {
		t.Fatalf("stalled: %v", heights)
	}
}

func TestUpdateAgreement(t *testing.T) {
	res := Run(defaultCfg(5))
	if rep := consistency.UpdateAgreement(res.History, res.Creators); !rep.OK {
		t.Fatalf("update agreement: %v", rep.Violations)
	}
}
