// Package adt implements the abstract-data-type framework of Section 2 of
// the paper: an ADT is a Mealy-machine-like transducer T = ⟨A, B, Z, ξ0,
// τ, δ⟩ (Definition 2.1); operations are elements of Σ = A ∪ (A × B)
// (Definition 2.2); a sequential history is a word accepted by the
// transition system, and the set of all such words is the sequential
// specification L(T) (Definition 2.3).
//
// The framework is generic over the state type; the concrete machines of
// the paper — the BT-ADT (Definition 3.1), the Θ-ADTs (Definitions
// 3.5-3.6) and their refinement (Definition 3.7) — are instances built in
// this package, internal/oracle and internal/refine.
package adt

import "fmt"

// Input is a symbol of the input alphabet A. Because the paper's input
// symbols carry no arguments (each argument combination is a distinct
// symbol), an Input here is an operation name plus its frozen arguments.
type Input interface {
	// Op returns the operation family name ("append", "read",
	// "getToken", "consumeToken").
	Op() string
	// Key returns a canonical encoding distinguishing this symbol from
	// every other symbol of the alphabet (operation + arguments).
	Key() string
}

// Output is a symbol of the output alphabet B.
type Output interface {
	// Encode returns a canonical encoding of the output value, used to
	// compare an observed response against δ(ξ, α).
	Encode() string
}

// Operation is an element of Σ = A ∪ (A × B): an input symbol optionally
// paired with the output it produced (α/β in the paper's notation). An
// Operation with a nil Out represents the bare input symbol α ∈ A.
type Operation[S any] struct {
	In  Input
	Out Output
}

// String renders α or α/β.
func (o Operation[S]) String() string {
	if o.Out == nil {
		return o.In.Key()
	}
	return fmt.Sprintf("%s/%s", o.In.Key(), o.Out.Encode())
}

// Machine is the transducer: the transition function τ : Z × A → Z and
// the output function δ : Z × A → B over abstract states of type S,
// plus the initial state ξ0. Step must not mutate its argument — it
// returns the successor state — so that specifications can be replayed
// and compared structurally.
type Machine[S any] struct {
	// Name identifies the ADT ("BT-ADT", "ΘF-ADT", ...).
	Name string
	// Initial returns a fresh copy of ξ0.
	Initial func() S
	// Step computes (τ(ξ, α), δ(ξ, α)) without mutating ξ.
	Step func(state S, in Input) (next S, out Output)
	// Equal compares two abstract states (used by admissibility
	// replays and property tests). Nil means "don't compare states".
	Equal func(a, b S) bool
}

// Run executes the machine over a word of inputs starting from ξ0,
// returning the visited states ξ1..ξn and the outputs β1..βn.
func (m *Machine[S]) Run(word []Input) (states []S, outs []Output) {
	st := m.Initial()
	states = make([]S, 0, len(word))
	outs = make([]Output, 0, len(word))
	for _, in := range word {
		var out Output
		st, out = m.Step(st, in)
		states = append(states, st)
		outs = append(outs, out)
	}
	return states, outs
}

// Admissible reports whether the sequence of operations σ = (σi) is a
// sequential history of the machine, i.e. belongs to L(T) (Definition
// 2.3): replaying the inputs from ξ0, every recorded output must equal
// the machine's output at that state. Operations with nil Out constrain
// only the state evolution. On failure it returns the index of the first
// offending operation and a diagnostic.
func (m *Machine[S]) Admissible(seq []Operation[S]) (bool, int, string) {
	st := m.Initial()
	for i, op := range seq {
		next, out := m.Step(st, op.In)
		if op.Out != nil {
			want := out.Encode()
			got := op.Out.Encode()
			if want != got {
				return false, i, fmt.Sprintf(
					"%s: op %d (%s): output mismatch: machine produced %q, history recorded %q",
					m.Name, i, op.In.Key(), want, got)
			}
		}
		st = next
	}
	return true, -1, ""
}

// Language enumerates every sequential history of length exactly n over
// the given input alphabet — a finite fragment of L(T). It is meant for
// small alphabets and small n (tests and the Figure 1 experiment); the
// output grows as |A|^n.
func (m *Machine[S]) Language(alphabet []Input, n int) [][]Operation[S] {
	var out [][]Operation[S]
	var rec func(st S, prefix []Operation[S])
	rec = func(st S, prefix []Operation[S]) {
		if len(prefix) == n {
			cp := make([]Operation[S], n)
			copy(cp, prefix)
			out = append(out, cp)
			return
		}
		for _, in := range alphabet {
			next, o := m.Step(st, in)
			rec(next, append(prefix, Operation[S]{In: in, Out: o}))
		}
	}
	rec(m.Initial(), nil)
	return out
}
