package adt

import (
	"testing"

	"repro/internal/core"
)

func appendIn(b *core.Block) Input { return AppendInput{B: b} }

func block(parent core.BlockID, h, round int) *core.Block {
	return core.NewBlock(parent, h, 0, round, []byte{byte(round)})
}

func TestBTMachineReadInitial(t *testing.T) {
	m := NewBTMachine(nil, nil)
	_, outs := m.Run([]Input{ReadInput{}})
	c := outs[0].(ChainOutput).Chain
	if c.Height() != 0 || !c.Head().IsGenesis() {
		t.Fatalf("initial read returned %v, want b0", c)
	}
}

func TestBTMachineAppendGrowsSelectedChain(t *testing.T) {
	m := NewBTMachine(core.LongestChain{}, core.AlwaysValid{})
	word := []Input{
		appendIn(block(core.GenesisID, 1, 1)),
		ReadInput{},
		appendIn(block("", 0, 2)), // unchained block: machine re-chains it
		ReadInput{},
	}
	_, outs := m.Run(word)
	if outs[0].(BoolOutput) != true {
		t.Fatal("first append rejected")
	}
	c1 := outs[1].(ChainOutput).Chain
	c2 := outs[3].(ChainOutput).Chain
	if c1.Height() != 1 || c2.Height() != 2 {
		t.Fatalf("heights %d, %d", c1.Height(), c2.Height())
	}
	if !c1.Prefix(c2) {
		t.Fatal("sequential reads not prefix-ordered")
	}
}

func TestBTMachineRejectsInvalid(t *testing.T) {
	m := NewBTMachine(nil, core.RejectAll{})
	states, outs := m.Run([]Input{appendIn(block(core.GenesisID, 1, 1)), ReadInput{}})
	if outs[0].(BoolOutput) != false {
		t.Fatal("invalid append accepted")
	}
	if states[0].Tree.Len() != 1 {
		t.Fatal("rejected append changed the state")
	}
	if c := outs[1].(ChainOutput).Chain; c.Height() != 0 {
		t.Fatalf("read after rejected append: %v", c)
	}
}

func TestBTMachineStepDoesNotMutate(t *testing.T) {
	m := NewBTMachine(nil, nil)
	st := m.Initial()
	m.Step(st, appendIn(block(core.GenesisID, 1, 1)))
	if st.Tree.Len() != 1 {
		t.Fatal("Step mutated its input state")
	}
}

func TestAdmissibleAcceptsMachineOutputs(t *testing.T) {
	m := NewBTMachine(nil, nil)
	word := []Input{
		appendIn(block(core.GenesisID, 1, 1)),
		ReadInput{},
		ReadInput{},
	}
	_, outs := m.Run(word)
	var seq []Operation[BTState]
	for i := range word {
		seq = append(seq, Operation[BTState]{In: word[i], Out: outs[i]})
	}
	if ok, at, why := m.Admissible(seq); !ok {
		t.Fatalf("machine's own run inadmissible at %d: %s", at, why)
	}
}

func TestAdmissibleRejectsWrongOutput(t *testing.T) {
	m := NewBTMachine(nil, nil)
	b := block(core.GenesisID, 1, 1)
	seq := []Operation[BTState]{
		{In: appendIn(b), Out: BoolOutput(true)},
		// A read claiming the tree is still only b0: wrong.
		{In: ReadInput{}, Out: ChainOutput{Chain: core.GenesisChain()}},
	}
	ok, at, why := m.Admissible(seq)
	if ok {
		t.Fatal("wrong read output accepted")
	}
	if at != 1 || why == "" {
		t.Fatalf("wrong diagnostics: at=%d why=%q", at, why)
	}
}

func TestAdmissibleNilOutputsConstrainOnlyState(t *testing.T) {
	m := NewBTMachine(nil, nil)
	seq := []Operation[BTState]{
		{In: appendIn(block(core.GenesisID, 1, 1))}, // no recorded output
		{In: ReadInput{}},
	}
	if ok, _, why := m.Admissible(seq); !ok {
		t.Fatalf("output-free word rejected: %s", why)
	}
}

func TestLanguageEnumeration(t *testing.T) {
	m := NewBTMachine(nil, nil)
	alphabet := []Input{ReadInput{}, appendIn(block(core.GenesisID, 1, 7))}
	words := m.Language(alphabet, 3)
	if len(words) != 8 { // |A|^n = 2^3
		t.Fatalf("language size %d, want 8", len(words))
	}
	// Every enumerated word must be admissible.
	for _, w := range words {
		if ok, _, why := m.Admissible(w); !ok {
			t.Fatalf("enumerated word inadmissible: %s", why)
		}
	}
}

func TestOperationString(t *testing.T) {
	op := Operation[BTState]{In: ReadInput{}}
	if op.String() != "read()" {
		t.Errorf("bare op string %q", op.String())
	}
	op2 := Operation[BTState]{In: ReadInput{}, Out: BoolOutput(true)}
	if op2.String() != "read()/true" {
		t.Errorf("paired op string %q", op2.String())
	}
}

func TestBTMachineDoubleAppendSameBlock(t *testing.T) {
	// Appending the same block twice: the second append re-chains it
	// under the new head, but its ID collides with the already
	// attached block → the attach fails → append returns false.
	m := NewBTMachine(nil, core.AlwaysValid{})
	b := block(core.GenesisID, 1, 1)
	_, outs := m.Run([]Input{appendIn(b), appendIn(b), ReadInput{}})
	if outs[0].(BoolOutput) != true {
		t.Fatal("first append failed")
	}
	if outs[1].(BoolOutput) != false {
		t.Fatal("duplicate append succeeded")
	}
	if c := outs[2].(ChainOutput).Chain; c.Height() != 1 {
		t.Fatalf("chain height %d after duplicate append", c.Height())
	}
}
