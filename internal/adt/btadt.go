package adt

import (
	"fmt"

	"repro/internal/core"
)

// This file instantiates the BT-ADT of Definition 3.1 as a Machine:
//
//	BT-ADT = ⟨ A = {append(b), read() : b ∈ B},
//	           B = BC ∪ {true,false},
//	           Z = BT × F × (B → {true,false}),
//	           ξ0 = (bt0, f, P), τ, δ ⟩
//
// with
//
//	τ((bt,f,P), append(b)) = ({b0}⌢f(bt)⌢{b}, f, P)  if b ∈ B′, else unchanged
//	τ((bt,f,P), read())    = (bt, f, P)
//	δ((bt,f,P), append(b)) = true iff b ∈ B′
//	δ((bt,f,P), read())    = {b0}⌢f(bt)   (b0 alone on the initial state)
//
// Note the subtlety faithful to the paper: append(b) does NOT attach b to
// an arbitrary node — it extends the *selected* chain f(bt), so even the
// sequential machine grows a tree only through the selected path, and
// forks arise only in the concurrent/replicated setting.

// BTState is the abstract state ξ = (bt, f, P) of the BT-ADT.
type BTState struct {
	Tree *core.Tree
	F    core.Selector
	P    core.Predicate
}

// AppendInput is the input symbol append(b) for a specific block b.
type AppendInput struct{ B *core.Block }

// Op returns "append".
func (a AppendInput) Op() string { return "append" }

// Key distinguishes append(b) symbols by block ID.
func (a AppendInput) Key() string { return fmt.Sprintf("append(%s)", a.B.ID.Short()) }

// ReadInput is the input symbol read().
type ReadInput struct{}

// Op returns "read".
func (ReadInput) Op() string { return "read" }

// Key returns "read()".
func (ReadInput) Key() string { return "read()" }

// BoolOutput is the output alphabet's true/false component.
type BoolOutput bool

// Encode renders "true" or "false".
func (b BoolOutput) Encode() string {
	if b {
		return "true"
	}
	return "false"
}

// ChainOutput is the output alphabet's BC component: a returned
// blockchain.
type ChainOutput struct{ Chain core.Chain }

// Encode renders the chain in concatenation notation; two outputs encode
// equal iff the chains are equal.
func (c ChainOutput) Encode() string { return c.Chain.String() }

// NewBTMachine builds the BT-ADT machine with selection function f and
// validity predicate P (the two parameters of the ADT, frozen into ξ0).
func NewBTMachine(f core.Selector, p core.Predicate) *Machine[BTState] {
	if f == nil {
		f = core.LongestChain{}
	}
	if p == nil {
		p = core.AlwaysValid{}
	}
	return &Machine[BTState]{
		Name: "BT-ADT",
		Initial: func() BTState {
			return BTState{Tree: core.NewTree(), F: f, P: p}
		},
		Step: func(st BTState, in Input) (BTState, Output) {
			switch sym := in.(type) {
			case ReadInput:
				return st, ChainOutput{Chain: st.F.Select(st.Tree)}
			case AppendInput:
				b := sym.B
				if b == nil || !st.P.Valid(b) {
					return st, BoolOutput(false)
				}
				// Head-only fast path: the append needs just the
				// selected head, not the materialized chain.
				head := core.HeadOf(st.F, st.Tree)
				// The appended block must chain to the head
				// of the selected chain: {b0}⌢f(bt)⌢{b}.
				nb := *b
				nb.Parent = head.ID
				nb.Height = head.Height + 1
				// If the block's identity committed to a
				// different parent, re-validate under P after
				// re-chaining; content-hash predicates reject
				// re-chained blocks, which models "the token
				// was for another block".
				if b.Parent != "" && b.Parent != head.ID {
					if !st.P.Valid(&nb) {
						return st, BoolOutput(false)
					}
				}
				nt := st.Tree.Clone()
				if err := nt.Attach(&nb); err != nil {
					return st, BoolOutput(false)
				}
				return BTState{Tree: nt, F: st.F, P: st.P}, BoolOutput(true)
			default:
				panic(fmt.Sprintf("adt: BT-ADT does not accept input %T", in))
			}
		},
		Equal: func(a, b BTState) bool {
			return a.F.Select(a.Tree).Equal(b.F.Select(b.Tree)) && a.Tree.Len() == b.Tree.Len()
		},
	}
}
