// Package experiments regenerates every figure and table of the paper as
// program output: each experiment returns a Result whose Lines are the
// rows/series the paper's artifact shows and whose OK reports whether
// the reproduction exhibits the property the paper claims. The bench
// harness (bench_test.go at the repository root) wraps each experiment
// in a testing.B benchmark; EXPERIMENTS.md records paper-vs-measured.
package experiments

import (
	"fmt"
	"strings"
)

// Result is the outcome of one experiment.
type Result struct {
	// ID is the paper artifact, e.g. "Figure 3" or "Table 1".
	ID string
	// Title describes the artifact.
	Title string
	// Lines is the regenerated content (rows / series / transitions).
	Lines []string
	// OK reports whether the reproduction matches the paper's claim.
	OK bool
	// Notes carries deviations or finitary-reading caveats.
	Notes []string
}

func (r *Result) addf(format string, args ...any) {
	r.Lines = append(r.Lines, fmt.Sprintf(format, args...))
}

func (r *Result) notef(format string, args ...any) {
	r.Notes = append(r.Notes, fmt.Sprintf(format, args...))
}

// String renders the full experiment report.
func (r *Result) String() string {
	var sb strings.Builder
	status := "REPRODUCED"
	if !r.OK {
		status = "MISMATCH"
	}
	fmt.Fprintf(&sb, "== %s — %s [%s]\n", r.ID, r.Title, status)
	for _, l := range r.Lines {
		fmt.Fprintf(&sb, "   %s\n", l)
	}
	for _, n := range r.Notes {
		fmt.Fprintf(&sb, "   note: %s\n", n)
	}
	return sb.String()
}

// Experiment is a named generator.
type Experiment struct {
	ID   string
	Name string
	Run  func(seed uint64) *Result
}

// All returns every experiment in paper order.
func All() []Experiment {
	return []Experiment{
		{"fig1", "BT-ADT transition-system path", Figure1},
		{"fig2", "history satisfying BT Strong Consistency", Figure2},
		{"fig3", "history satisfying EC but not SC", Figure3},
		{"fig4", "history violating both criteria", Figure4},
		{"fig5", "ΘF abstract state (tapes + K array)", Figure5},
		{"fig6", "Θ-ADT transition path", Figure6},
		{"fig7", "refined append() path", Figure7},
		{"fig8", "hierarchy of refinements", Figure8},
		{"fig9", "consumeToken(k=1) vs compare&swap", Figure9},
		{"fig10", "CAS implemented from consumeToken", Figure10},
		{"fig11", "Consensus from ΘF,k=1 (protocol A)", Figure11},
		{"fig12", "ΘP consumeToken from atomic snapshot", Figure12},
		{"fig13", "Update Agreement history", Figure13},
		{"fig14", "hierarchy in message passing (Thm 4.8)", Figure14},
		{"lrc", "LRC necessity: one dropped message breaks EC", TheoremLRC},
		{"thm48", "Strong Prefix impossible with forks", Theorem48},
		{"table1", "mapping of existing systems", Table1},
		// Extensions beyond the paper's artifacts (its flagged open
		// threads; see the file extensions.go).
		{"ext-mpc", "Monotonic Prefix Consistency vs SC/EC", ExtensionMPC},
		{"ext-fairness", "oracle fairness: chain share vs merit", ExtensionFairness},
		{"ext-byz", "Byzantine flood cannot corrupt replicas", ExtensionByzantineFlood},
		{"ext-solve", "Eventual Prefix under sync/psync/async", ExtensionSolvability},
		{"ext-sampling", "read frequency vs observed SC violations", ExtensionSampling},
		{"ext-lrc-impl", "anti-entropy implements LRC over loss", ExtensionAntiEntropy},
	}
}

// ByID returns the experiment with the given id, or nil.
func ByID(id string) *Experiment {
	for _, e := range All() {
		if e.ID == id {
			out := e
			return &out
		}
	}
	return nil
}
