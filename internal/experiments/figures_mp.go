package experiments

import (
	"repro/btsim"
	"repro/internal/consistency"
	"repro/internal/core"
	"repro/internal/history"
	"repro/internal/oracle"
	"repro/internal/replica"
	"repro/internal/simnet"
)

// Figure13 reproduces the Update Agreement history of Figure 13: three
// processes; process i performs send_i(b_g, b) and update_i(b_g, b); j
// and k receive and update. The recorded event pattern must satisfy R1,
// R2, R3 and the LRC properties.
func Figure13(seed uint64) *Result {
	res := &Result{ID: "Figure 13", Title: "Update Agreement history", OK: true}
	sim := simnet.NewSim(seed)
	group := replica.NewGroup(sim, 3, simnet.Synchronous{Delta: 3}, core.LongestChain{})

	b := core.NewBlock(core.GenesisID, 1, 0, 1, []byte("fig13"))
	sim.Schedule(1, func() { group.Procs[0].AppendLocal(b) })
	sim.RunUntilIdle()

	h := group.History()
	for _, e := range h.Comm {
		res.addf("%s", e)
	}
	ua := consistency.UpdateAgreement(h, group.Reg.Creators())
	lrc := consistency.LRC(h)
	res.addf("%s", ua)
	res.addf("%s", lrc)
	if !ua.OK || !lrc.OK {
		res.OK = false
		res.notef("lossless flooding must satisfy Update Agreement and LRC")
	}
	// Structure check: one send by i, a receive at every process, an
	// update at every process.
	if got := len(h.CommOf(history.EvSend)); got != 1 {
		res.OK = false
		res.notef("want 1 send event, got %d", got)
	}
	if got := len(h.CommOf(history.EvReceive)); got != 3 {
		res.OK = false
		res.notef("want 3 receive events, got %d", got)
	}
	if got := len(h.CommOf(history.EvUpdate)); got != 3 {
		res.OK = false
		res.notef("want 3 update events, got %d", got)
	}
	return res
}

// TheoremLRC is the executable content of Lemmas 4.4/4.5 and Theorems
// 4.6/4.7: in a Bitcoin-style run where a single update message from a
// correct process is dropped (the first flood message addressed to
// process 2), the Update Agreement property R3 fails and the history
// violates BT Eventual Consistency; the identical run without the drop
// satisfies both. The run concentrates the hashing power on process 0
// (as in the paper's proof construction, where the adversarial schedule
// makes the lost update load-bearing): the dropped block is then on the
// unique growing chain, so process 2 — whose replica buffers every
// descendant of the missing block — can never adopt any later block.
func TheoremLRC(seed uint64) *Result {
	res := &Result{ID: "Theorem 4.6/4.7", Title: "one dropped message breaks Eventual Prefix", OK: true}

	base := []btsim.Option{
		btsim.WithN(4), btsim.WithRounds(120), btsim.WithSeed(seed),
		btsim.WithReadEvery(15), btsim.WithDifficulty(10),
		btsim.WithMerits(1, 0, 0, 0), // single miner: a linear chain
	}

	clean, err := btsim.Run("bitcoin", base...)
	if err != nil {
		res.OK = false
		res.notef("bitcoin run failed: %v", err)
		return res
	}
	chkClean := consistency.NewChecker(clean.Score, core.WellFormed{})
	ecClean := chkClean.EventualConsistency(clean.History)
	uaClean := clean.UpdateAgreement()
	res.addf("lossless run: %s ; %s", ecClean, uaClean)

	broken, err := btsim.Run("bitcoin", append(base, btsim.WithDropNth(0, 2))...)
	if err != nil {
		res.OK = false
		res.notef("lossy bitcoin run failed: %v", err)
		return res
	}
	chk := consistency.NewChecker(broken.Score, core.WellFormed{})
	ec := chk.EventualConsistency(broken.History)
	ua := broken.UpdateAgreement()
	lrc := consistency.LRC(broken.History)
	res.addf("one message to p2 dropped: %s ; %s ; %s", ec, ua, lrc)
	res.addf("final heights: clean=%v lossy=%v", clean.FinalHeights(), broken.FinalHeights())

	if !ecClean.OK || !uaClean.OK {
		res.OK = false
		res.notef("lossless run must satisfy EC and Update Agreement")
	}
	if ec.OK {
		res.OK = false
		res.notef("lossy run must violate EC (Theorem 4.6)")
	}
	if ua.OK || lrc.OK {
		res.OK = false
		res.notef("lossy run must violate Update Agreement and LRC")
	}
	return res
}

// Theorem48 is the executable content of Theorem 4.8: with any oracle
// allowing forks (here ΘF,k=2), two correct processes that append
// concurrently at time t0 and read before t0+δ return incomparable
// chains — Strong Prefix is violated even in a fault-free synchronous
// run using an LRC-satisfying flood.
func Theorem48(seed uint64) *Result {
	res := &Result{ID: "Theorem 4.8", Title: "Strong Prefix impossible with forks", OK: true}
	const delta = 8
	sim := simnet.NewSim(seed)
	group := replica.NewGroup(sim, 2, simnet.Synchronous{Delta: delta}, core.LongestChain{})

	// Both processes hold a validated block for b0 (a k=2 oracle
	// grants and consumes both tokens) and append at t0 = 1.
	g := core.Genesis()
	mk := func(proc int) *core.Block {
		b := core.NewBlock(g.ID, 1, proc, 1, []byte{byte(proc)})
		return b.WithToken(oracle.TokenName(g.ID))
	}
	b1, b2 := mk(0), mk(1)
	sim.Schedule(1, func() {
		group.Procs[0].AppendLocal(b1)
		group.Procs[1].AppendLocal(b2)
	})
	// Reads strictly before t0 + δ: each process still only sees its
	// own block.
	sim.Schedule(2, func() {
		group.Procs[0].Read()
		group.Procs[1].Read()
	})
	sim.RunUntilIdle()
	// Post-convergence reads (both replicas now hold both blocks and
	// the deterministic selector agrees).
	group.Procs[0].Read()
	group.Procs[1].Read()

	h := group.History()
	chk := consistency.NewChecker(core.LengthScore{}, nil)
	sp := chk.StrongPrefix(h)
	lrc := consistency.LRC(h)
	res.addf("reads at t < t0+δ: p0=%s, p1=%s", h.Reads()[0].Chain(), h.Reads()[1].Chain())
	res.addf("%s", sp)
	res.addf("%s (the channel abstraction is not at fault)", lrc)
	if sp.OK {
		res.OK = false
		res.notef("Strong Prefix must be violated by the concurrent fork")
	}
	if !lrc.OK {
		res.OK = false
		res.notef("LRC must hold — the violation is inherent to forks, not to the channels")
	}
	kf := chk.KForkCoherence(h, 2)
	k1 := chk.KForkCoherence(h, 1)
	res.addf("%s ; %s", kf, k1)
	if !kf.OK || k1.OK {
		res.OK = false
		res.notef("the run is 2-fork coherent but not 1-fork coherent")
	}
	return res
}
