package experiments

import (
	"repro/internal/consistency"
	"repro/internal/core"
	"repro/internal/history"
)

// paperBlocks builds the block universe of Figures 2–4: a straight chain
// c1⌢c2⌢c3⌢c4 for Figure 2 and the two-branch tree of Figures 3–4,
//
//	b0 ── 1 ── 3 ── 5 ── 7
//	  └── 2 ── 4 ── 6 ── 8
//
// with the paper's integer labels mapped to content-hashed blocks
// (labels 7 and 8 extend the figure's branches so the finite prefix has
// a future for every read the checkers quantify over; the paper's
// histories are infinite).
type paperBlocks struct {
	chain  []*core.Block         // c1..c4 (index 0 = c1)
	br     map[int]*core.Block   // 1..6 by paper label
	chains map[string]core.Chain // named chains for readability
}

func buildPaperBlocks() *paperBlocks {
	pb := &paperBlocks{br: map[int]*core.Block{}, chains: map[string]core.Chain{}}
	g := core.Genesis()

	// Figure 2 chain.
	parent := g
	for i := 1; i <= 4; i++ {
		b := core.NewBlock(parent.ID, parent.Height+1, 0, i, []byte{byte(i)})
		pb.chain = append(pb.chain, b)
		parent = b
	}

	// Figures 3-4 branches: odd branch 1-3-5 from b0, even branch
	// 2-4-6 from b0.
	pb.br[1] = core.NewBlock(g.ID, 1, 1, 101, []byte{1})
	pb.br[3] = core.NewBlock(pb.br[1].ID, 2, 1, 103, []byte{3})
	pb.br[5] = core.NewBlock(pb.br[3].ID, 3, 1, 105, []byte{5})
	pb.br[7] = core.NewBlock(pb.br[5].ID, 4, 1, 107, []byte{7})
	pb.br[2] = core.NewBlock(g.ID, 1, 2, 102, []byte{2})
	pb.br[4] = core.NewBlock(pb.br[2].ID, 2, 2, 104, []byte{4})
	pb.br[6] = core.NewBlock(pb.br[4].ID, 3, 2, 106, []byte{6})
	pb.br[8] = core.NewBlock(pb.br[6].ID, 4, 2, 108, []byte{8})

	gc := core.GenesisChain()
	pb.chains["c1"] = gc.Append(pb.chain[0])
	pb.chains["c12"] = pb.chains["c1"].Append(pb.chain[1])
	pb.chains["c123"] = pb.chains["c12"].Append(pb.chain[2])
	pb.chains["c1234"] = pb.chains["c123"].Append(pb.chain[3])
	pb.chains["1"] = gc.Append(pb.br[1])
	pb.chains["13"] = pb.chains["1"].Append(pb.br[3])
	pb.chains["135"] = pb.chains["13"].Append(pb.br[5])
	pb.chains["1357"] = pb.chains["135"].Append(pb.br[7])
	pb.chains["2"] = gc.Append(pb.br[2])
	pb.chains["24"] = pb.chains["2"].Append(pb.br[4])
	pb.chains["246"] = pb.chains["24"].Append(pb.br[6])
	pb.chains["2468"] = pb.chains["246"].Append(pb.br[8])
	return pb
}

// appendAll records successful append operations for every block that
// will appear in reads, so Block Validity has its witnesses.
func appendAll(rec *history.Recorder, blocks ...*core.Block) {
	for _, b := range blocks {
		rec.Append(b.Creator, b, true)
	}
}

// Figure2 builds the Figure 2 history — two processes reading a single
// growing chain — and checks that it satisfies BT Strong Consistency
// (and hence, by Theorem 3.1, BT Eventual Consistency).
func Figure2(seed uint64) *Result {
	_ = seed
	res := &Result{ID: "Figure 2", Title: "history satisfying SC", OK: true}
	pb := buildPaperBlocks()
	rec := history.NewRecorder(2, nil)
	appendAll(rec, pb.chain...)

	// Interleaved reads as in the figure (score = length, f = longest
	// chain): process i sees l=2,3,4; process j sees l=1,2,4.
	rec.Read(1, pb.chains["c1"])   // j: l=1
	rec.Read(0, pb.chains["c12"])  // i: l=2
	rec.Read(1, pb.chains["c12"])  // j: l=2
	rec.Read(0, pb.chains["c123"]) // i: l=3  ← the boxed read, l=3
	rec.Read(1, pb.chains["c1234"])
	rec.Read(0, pb.chains["c1234"])
	h := rec.Snapshot()

	chk := consistency.NewChecker(core.LengthScore{}, nil)
	sc, ec := chk.Classify(h)
	res.addf("history: %s", h)
	for _, r := range sc.Reports {
		res.addf("%s", r)
	}
	res.addf("verdicts: %s ; %s", sc, ec)
	if !sc.OK || !ec.OK {
		res.OK = false
		res.notef("Figure 2 history must satisfy SC and EC")
	}
	return res
}

// Figure3 builds the Figure 3 history — forked tree, processes
// temporarily on different branches, converging to b0⌢1⌢3⌢5 — and
// checks EC holds while SC does not (the separating example of
// Theorem 3.1).
func Figure3(seed uint64) *Result {
	_ = seed
	res := &Result{ID: "Figure 3", Title: "history satisfying EC but not SC", OK: true}
	pb := buildPaperBlocks()
	rec := history.NewRecorder(2, nil)
	appendAll(rec, pb.br[1], pb.br[2], pb.br[3], pb.br[4], pb.br[5], pb.br[7])

	rec.Read(1, pb.chains["1"])    // j: b0⌢1
	rec.Read(0, pb.chains["24"])   // i: b0⌢2⌢4  — incomparable with j's
	rec.Read(1, pb.chains["13"])   // j: b0⌢1⌢3
	rec.Read(0, pb.chains["13"])   // i switches to the odd branch
	rec.Read(1, pb.chains["135"])  // j: l=3
	rec.Read(0, pb.chains["135"])  // i: l=3 — both converge
	rec.Read(1, pb.chains["1357"]) // growth continues on the adopted branch
	rec.Read(0, pb.chains["1357"])
	h := rec.Snapshot()

	chk := consistency.NewChecker(core.LengthScore{}, nil)
	sc, ec := chk.Classify(h)
	res.addf("history: %s", h)
	res.addf("first read at j: %s ; first read at i: %s (incomparable)", pb.chains["1"], pb.chains["24"])
	res.addf("verdicts: %s ; %s", sc, ec)
	for _, r := range sc.Reports {
		res.addf("%s", r)
	}
	if sc.OK {
		res.OK = false
		res.notef("Figure 3 history must violate Strong Prefix")
	}
	if !ec.OK {
		res.OK = false
		res.notef("Figure 3 history must satisfy EC")
	}
	return res
}

// Figure4 builds the Figure 4 history — the two processes stay on
// diverging branches forever — and checks that both criteria fail.
func Figure4(seed uint64) *Result {
	_ = seed
	res := &Result{ID: "Figure 4", Title: "history violating both criteria", OK: true}
	pb := buildPaperBlocks()
	rec := history.NewRecorder(2, nil)
	appendAll(rec, pb.br[1], pb.br[2], pb.br[3], pb.br[4], pb.br[5], pb.br[6], pb.br[7], pb.br[8])

	rec.Read(1, pb.chains["1"])
	rec.Read(0, pb.chains["24"])
	rec.Read(1, pb.chains["13"])
	rec.Read(0, pb.chains["24"])
	rec.Read(1, pb.chains["135"])
	rec.Read(0, pb.chains["246"])  // i stays on the even branch
	rec.Read(1, pb.chains["1357"]) // both branches keep growing (EGT holds)
	rec.Read(0, pb.chains["2468"]) // but they never share a prefix (EP fails)
	h := rec.Snapshot()

	chk := consistency.NewChecker(core.LengthScore{}, nil)
	sc, ec := chk.Classify(h)
	res.addf("history: %s", h)
	res.addf("final reads: i=%s, j=%s (mcps=0)", pb.chains["2468"], pb.chains["1357"])
	res.addf("verdicts: %s ; %s", sc, ec)
	if sc.OK || ec.OK {
		res.OK = false
		res.notef("Figure 4 history must violate both SC and EC")
	}
	if egt := chk.EverGrowingTree(h); !egt.OK {
		res.OK = false
		res.notef("Ever Growing Tree should hold in Figure 4 (both branches keep growing)")
	}
	ep := chk.EventualPrefix(h)
	if ep.OK {
		res.OK = false
		res.notef("Eventual Prefix must be the violated property")
	} else {
		res.addf("%s", ep)
	}
	return res
}
