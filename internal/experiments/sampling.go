package experiments

import (
	"repro/internal/consistency"
	"repro/internal/core"
	"repro/internal/protocols/bitcoin"
)

// ExtensionSampling quantifies an observability effect the Table 1
// methodology depends on: Strong Prefix violations in a proof-of-work
// system only show up if reads actually land inside the transient fork
// windows. The same Bitcoin workload is classified under increasingly
// sparse read schedules; the Eventual Consistency verdict is invariant,
// while the Strong Prefix verdict degrades from "violation witnessed" to
// "no violation observed" — a sampling artifact, not a property change.
// This is why the Table 1 harness reads every 4 ticks.
func ExtensionSampling(seed uint64) *Result {
	res := &Result{ID: "Extension Sampling", Title: "read frequency vs observed SC violations", OK: true}

	witnessedDense := false
	for _, every := range []int64{2, 4, 10, 25, 75} {
		cfg := bitcoin.Config{}
		cfg.N = 4
		cfg.Rounds = 300
		cfg.Seed = seed
		cfg.ReadEvery = every
		cfg.Difficulty = 5
		r := bitcoin.Run(cfg)
		chk := consistency.NewChecker(r.Score, core.WellFormed{})
		sc, ec := chk.Classify(r.History)
		reads := len(r.History.Reads())
		res.addf("read every %3d ticks: %4d reads → %s ; %s (forkMax %d)",
			every, reads, sc, ec, r.MeasuredForkMax)
		if !ec.OK {
			res.OK = false
			res.notef("EC must be invariant under the read schedule (every=%d)", every)
		}
		if every <= 4 && !sc.OK {
			witnessedDense = true
		}
	}
	if !witnessedDense {
		res.OK = false
		res.notef("dense reads failed to witness any Strong Prefix violation")
	}
	res.addf("dense schedules witness the SC violation; sparse ones may miss it — EC never changes")
	return res
}
