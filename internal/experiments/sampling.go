package experiments

import "repro/btsim"

// ExtensionSampling quantifies an observability effect the Table 1
// methodology depends on: Strong Prefix violations in a proof-of-work
// system only show up if reads actually land inside the transient fork
// windows. The same Bitcoin workload is classified under increasingly
// sparse read schedules; the Eventual Consistency verdict is invariant,
// while the Strong Prefix verdict degrades from "violation witnessed" to
// "no violation observed" — a sampling artifact, not a property change.
// This is why the Table 1 harness reads every 4 ticks.
func ExtensionSampling(seed uint64) *Result {
	res := &Result{ID: "Extension Sampling", Title: "read frequency vs observed SC violations", OK: true}

	witnessedDense := false
	for _, every := range []int64{2, 4, 10, 25, 75} {
		r, err := btsim.Run("bitcoin",
			btsim.WithN(4), btsim.WithRounds(300), btsim.WithSeed(seed),
			btsim.WithReadEvery(every), btsim.WithDifficulty(5))
		if err != nil {
			res.OK = false
			res.notef("bitcoin run failed: %v", err)
			return res
		}
		sc, ec := r.Check()
		reads := len(r.History.Reads())
		res.addf("read every %3d ticks: %4d reads → %s ; %s (forkMax %d)",
			every, reads, sc, ec, r.MeasuredForkMax)
		if !ec.OK {
			res.OK = false
			res.notef("EC must be invariant under the read schedule (every=%d)", every)
		}
		if every <= 4 && !sc.OK {
			witnessedDense = true
		}
	}
	if !witnessedDense {
		res.OK = false
		res.notef("dense reads failed to witness any Strong Prefix violation")
	}
	res.addf("dense schedules witness the SC violation; sparse ones may miss it — EC never changes")
	return res
}
