package experiments

import (
	"repro/internal/consistency"
	"repro/internal/core"
	"repro/internal/replica"
	"repro/internal/simnet"
)

// ExtensionAntiEntropy is the constructive counterpart of Theorems
// 4.6/4.7: those theorems prove the Light Reliable Communication
// abstraction necessary for BT Eventual Consistency; this experiment
// shows an inventory/repair (anti-entropy) layer implementing LRC on top
// of transiently lossy channels. The identical workload is run three
// ways: lossless (baseline), transient partition without repair (EC
// broken forever), and transient partition with repair (the partitioned
// replica catches up; EC and LRC restored).
func ExtensionAntiEntropy(seed uint64) *Result {
	res := &Result{ID: "Extension Anti-entropy", Title: "implementing LRC over transient loss", OK: true}

	run := func(partitionUntil int64, repair bool) (*consistency.Verdict, *consistency.Report, []int) {
		sim := simnet.NewSim(seed)
		g := replica.NewGroup(sim, 4, simnet.Synchronous{Delta: 2}, core.LongestChain{})
		g.SetPredicate(core.WellFormed{})
		if partitionUntil > 0 {
			g.Net.SetDrop(func(m simnet.Message) bool {
				return sim.Now() < partitionUntil && m.To == 3
			})
		}
		parent := core.Genesis()
		for i := 0; i < 10; i++ {
			b := core.NewBlock(parent.ID, parent.Height+1, 0, i, []byte{byte(i)})
			parent = b
			tt := int64(i*6 + 1)
			sim.Schedule(tt, func() { g.Procs[0].AppendLocal(b) })
			sim.Schedule(tt+2, func() {
				for _, p := range g.Procs {
					p.Read()
				}
			})
		}
		if repair {
			g.EnableAntiEntropy(sim, 15, 12)
		}
		sim.RunUntilIdle()
		for _, p := range g.Procs {
			p.Read()
		}
		for _, p := range g.Procs {
			p.Read()
		}
		chk := consistency.NewChecker(core.LengthScore{}, core.WellFormed{})
		_, ec := chk.Classify(g.History())
		lrc := consistency.LRC(g.History())
		heights := make([]int, 4)
		for i, p := range g.Procs {
			heights[i] = p.Tree().Len() - 1
		}
		return ec, lrc, heights
	}

	base, baseLRC, hb := run(0, false)
	res.addf("lossless baseline       : %s ; %s ; heights %v", base, baseLRC, hb)
	broken, brokenLRC, hbr := run(45, false)
	res.addf("partition, no repair    : %s ; %s ; heights %v", broken, brokenLRC, hbr)
	healed, healedLRC, hh := run(45, true)
	res.addf("partition + anti-entropy: %s ; %s ; heights %v", healed, healedLRC, hh)

	if !base.OK || !baseLRC.OK {
		res.OK = false
		res.notef("baseline must satisfy EC and LRC")
	}
	if broken.OK || brokenLRC.OK {
		res.OK = false
		res.notef("unrepaired partition must violate EC and LRC (Thm 4.6/4.7)")
	}
	if !healed.OK || !healedLRC.OK {
		res.OK = false
		res.notef("anti-entropy must restore EC and LRC")
	}
	if hh[3] != hh[0] {
		res.OK = false
		res.notef("partitioned replica did not catch up: %v", hh)
	}
	res.addf("anti-entropy implements the LRC abstraction the paper proves necessary")
	return res
}
