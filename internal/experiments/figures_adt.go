package experiments

import (
	"repro/internal/adt"
	"repro/internal/core"
	"repro/internal/oracle"
	"repro/internal/refine"
	"repro/internal/tape"
)

// Figure1 replays the transition-system path of Figure 1: from ξ0,
// append(b1)/true, a rejected append(b3)/false (b3 ∉ B′), read()/b0⌢b1,
// append(b2)/true, read()/b0⌢b1⌢b2 — checking every output against the
// BT-ADT machine (Definition 3.1) and the admissibility of the whole
// word (Definition 2.3).
func Figure1(seed uint64) *Result {
	res := &Result{ID: "Figure 1", Title: "BT-ADT transition-system path", OK: true}
	_ = seed

	// P rejects blocks whose payload starts with 0xFF (the b3 ∉ B′ of
	// the figure).
	p := core.PredicateFunc("figure1", func(b *core.Block) bool {
		return b.IsGenesis() || len(b.Payload) == 0 || b.Payload[0] != 0xFF
	})
	m := adt.NewBTMachine(core.LongestChain{}, p)

	b1 := core.NewBlock(core.GenesisID, 1, 1, 1, []byte{1})
	b3 := core.NewBlock(core.GenesisID, 1, 3, 3, []byte{0xFF})
	b2 := &core.Block{ID: "b2-any", Payload: []byte{2}} // re-chained by append

	word := []adt.Input{
		adt.AppendInput{B: b1},
		adt.AppendInput{B: b3},
		adt.ReadInput{},
		adt.AppendInput{B: b2},
		adt.ReadInput{},
	}
	states, outs := m.Run(word)
	want := []string{"true", "false", "", "true", ""}
	for i, in := range word {
		got := outs[i].Encode()
		res.addf("ξ%d --%s/%s--> ξ%d", i, in.Key(), got, i+1)
		if want[i] != "" && got != want[i] {
			res.OK = false
			res.notef("step %d: output %q, want %q", i, got, want[i])
		}
	}
	// The two reads must return the growing selected chain.
	read1 := outs[2].(adt.ChainOutput).Chain
	read2 := outs[4].(adt.ChainOutput).Chain
	if read1.Height() != 1 || read2.Height() != 2 || !read1.Prefix(read2) {
		res.OK = false
		res.notef("reads do not grow along the selected chain: %s then %s", read1, read2)
	}
	// Replaying the operations as a sequential history must be
	// admissible (the word belongs to L(BT-ADT)).
	var seq []adt.Operation[adt.BTState]
	for i, in := range word {
		seq = append(seq, adt.Operation[adt.BTState]{In: in, Out: outs[i]})
	}
	if ok, at, why := m.Admissible(seq); !ok {
		res.OK = false
		res.notef("word not in L(BT-ADT) at %d: %s", at, why)
	}
	res.addf("final state: %s", states[len(states)-1].Tree)
	res.addf("L(BT-ADT) membership: verified by replay")
	return res
}

// Figure5 renders the ΘF abstract state of Figure 5: the infinite K
// array (empty sets initially, filling as tokens are consumed) and the
// per-merit pseudorandom tapes.
func Figure5(seed uint64) *Result {
	res := &Result{ID: "Figure 5", Title: "ΘF abstract state", OK: true}
	set := tape.NewSet(nil, seed)
	a1, a2 := tape.Merit(0.7), tape.Merit(0.2)
	for _, a := range []tape.Merit{a1, a2} {
		t := set.Tape(a)
		row := make([]string, 10)
		for i := range row {
			row[i] = t.Peek(i).String()
		}
		res.addf("tape_α%g: %v ...", float64(a), row)
	}
	// Consume two tokens through a k=2 frugal oracle and display K.
	orc := oracle.NewFrugal(2, nil, core.AlwaysValid{}, seed)
	g := core.Genesis()
	var consumed int
	for i := 0; i < 64 && consumed < 3; i++ {
		if b, ok := orc.GetToken(a1, g, 1, i, []byte{byte(i)}); ok {
			if _, ok2 := orc.ConsumeToken(b); ok2 {
				consumed++
			}
		}
	}
	k := orc.K(g.ID)
	res.addf("K[b0] after mining: %d elements (k=2 bound)", len(k))
	if len(k) != 2 {
		res.OK = false
		res.notef("frugal k=2 consumed %d tokens for b0, want exactly 2", len(k))
	}
	if consumed != 2 {
		res.OK = false
		res.notef("oracle admitted %d consumes, want 2", consumed)
	}
	return res
}

// Figure6 replays the Θ-ADT transition path of Figure 6 on the machine
// instance: getToken until a token is granted, then consumeToken, with
// every output checked by replay (the word must be in L(Θ-ADT)).
func Figure6(seed uint64) *Result {
	res := &Result{ID: "Figure 6", Title: "Θ-ADT transition path", OK: true}
	m := oracle.NewThetaMachine(2, nil, core.AlwaysValid{}, seed)
	g := core.Genesis()
	in := oracle.GetTokenInput{Merit: 0.5, Parent: g, Creator: 1, Round: 0, Payload: []byte{1}}

	st := m.Initial()
	var out adt.Output
	var seq []adt.Operation[oracle.ThetaState]
	var granted *core.Block
	for i := 0; i < 64; i++ {
		st, out = m.Step(st, in)
		seq = append(seq, adt.Operation[oracle.ThetaState]{In: in, Out: out})
		res.addf("getToken(obj1, objk)/%s", out.Encode())
		if tok, ok := out.(oracle.TokenOutput); ok && tok.Block != nil {
			granted = tok.Block
			break
		}
	}
	if granted == nil {
		res.OK = false
		res.notef("no token granted in 64 attempts (p=0.5)")
		return res
	}
	cin := oracle.ConsumeTokenInput{Block: granted}
	st, out = m.Step(st, cin)
	seq = append(seq, adt.Operation[oracle.ThetaState]{In: cin, Out: out})
	res.addf("consumeToken(obj^tkn1_k)/%s", out.Encode())
	if len(st.K[g.ID]) != 1 {
		res.OK = false
		res.notef("K[b0] has %d elements after consume, want 1", len(st.K[g.ID]))
	}
	if ok, at, why := m.Admissible(seq); !ok {
		res.OK = false
		res.notef("word not in L(Θ-ADT) at %d: %s", at, why)
	}
	res.addf("L(Θ-ADT) membership: verified by replay")
	return res
}

// Figure7 exercises the refined append() of Definition 3.7 / Figure 7:
// an R(BT-ADT, ΘF) object performs append (getToken* ∘ consumeToken ∘
// concatenation, atomically) and read, and the resulting chain must be
// b0⌢b1 with the token recorded.
func Figure7(seed uint64) *Result {
	res := &Result{ID: "Figure 7", Title: "refined append() path", OK: true}
	orc := oracle.NewFrugal(1, nil, core.WellFormed{}, seed)
	bt := refine.New(refine.Config{Oracle: orc})

	before := bt.Read(0)
	res.addf("read()/%s", before)
	b, ok := bt.Append(0, 0.5, 1, []byte("block-k"))
	res.addf("append(b_k)/%v  (validated as %s)", ok, b)
	after := bt.Read(0)
	res.addf("read()/%s", after)

	if !ok || b == nil {
		res.OK = false
		res.notef("refined append failed")
		return res
	}
	if before.Height() != 0 || after.Height() != 1 || after.Head().ID != b.ID {
		res.OK = false
		res.notef("read sequence wrong: %s then %s", before, after)
	}
	if b.Token != oracle.TokenName(core.GenesisID) {
		res.OK = false
		res.notef("validated block does not carry tkn(b0): %q", b.Token)
	}
	if got := len(orc.K(core.GenesisID)); got != 1 {
		res.OK = false
		res.notef("K[b0] has %d elements, want 1", got)
	}
	// A second append on a k=1 oracle must fork-fail at b0 but chain
	// to b1 instead (the selected head moved), so it succeeds there.
	b2, ok2 := bt.Append(1, 0.5, 2, []byte("block-k2"))
	res.addf("append(b_k2)/%v  (chained to %s)", ok2, b2.Parent.Short())
	if !ok2 || b2.Parent != b.ID {
		res.OK = false
		res.notef("second append should extend b1 under k=1")
	}
	return res
}
