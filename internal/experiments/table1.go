package experiments

import (
	"fmt"

	"repro/internal/consistency"
	"repro/internal/core"
	"repro/internal/oracle"
	"repro/internal/protocols"
	"repro/internal/protocols/algorand"
	"repro/internal/protocols/bitcoin"
	"repro/internal/protocols/byzcoin"
	"repro/internal/protocols/ethereum"
	"repro/internal/protocols/fabric"
	"repro/internal/protocols/peercensus"
	"repro/internal/protocols/redbelly"
)

// Row is one classified system of Table 1.
type Row struct {
	System         string
	OracleClaim    string
	OracleMeasured string
	ForkMax        int
	SCHolds        bool
	ECHolds        bool
	PaperCriterion string
	Match          bool
}

// classify derives a system's Table 1 row from its recorded run: the
// measured oracle class (from the k-fork coherence of the history and
// the fork degree of the trees) and the measured consistency criteria.
func classify(r *protocols.Result) Row {
	chk := consistency.NewChecker(r.Score, core.WellFormed{})
	sc, ec := chk.Classify(r.History)
	k1 := chk.KForkCoherence(r.History, 1)

	measured := "ΘP"
	if k1.OK && r.MeasuredForkMax <= 1 {
		measured = "ΘF,k=1"
	}
	row := Row{
		System:         r.System,
		OracleClaim:    r.OracleClaim,
		OracleMeasured: measured,
		ForkMax:        r.MeasuredForkMax,
		SCHolds:        sc.OK,
		ECHolds:        ec.OK,
		PaperCriterion: r.PaperCriterion,
	}
	switch r.PaperCriterion {
	case "SC", "SC w.h.p.":
		row.Match = sc.OK && ec.OK && measured == "ΘF,k=1"
	case "EC":
		// Eventual consistency must hold; the prodigal oracle is
		// expected to exhibit forks (so SC should NOT hold on a
		// fork-bearing run — but a lucky fork-free run is not a
		// mismatch, only unwitnessed).
		row.Match = ec.OK
	}
	return row
}

// RunAll executes all seven system simulators with comparable defaults.
func RunAll(seed uint64) []*protocols.Result {
	common := protocols.Config{N: 4, Rounds: 60, Seed: seed, ReadEvery: 12}
	// PoW systems read frequently so that the transient fork windows
	// (which are what separates EC from SC) are actually observed.
	powCommon := protocols.Config{N: 4, Rounds: 300, Seed: seed, ReadEvery: 4}
	return []*protocols.Result{
		bitcoin.Run(bitcoin.Config{Config: powCommon, Difficulty: 10}),
		ethereum.Run(ethereum.Config{Config: powCommon, Difficulty: 5}),
		algorand.Run(algorand.Config{Config: common}),
		byzcoin.Run(byzcoin.Config{Config: common}),
		peercensus.Run(peercensus.Config{Config: common}),
		redbelly.Run(redbelly.Config{Config: common}),
		fabric.Run(fabric.Config{Config: common}),
	}
}

// Table1 regenerates Table 1: each system is *run*, its history is
// *classified*, and the measured (oracle, criterion) pair is compared to
// the paper's mapping.
func Table1(seed uint64) *Result {
	res := &Result{ID: "Table 1", Title: "mapping of existing systems", OK: true}
	res.addf("%-12s %-10s %-10s %-7s %-6s %-6s %-10s %s",
		"System", "Θ paper", "Θ meas.", "forkMax", "SC", "EC", "paper", "match")
	for _, run := range RunAll(seed) {
		row := classify(run)
		res.addf("%-12s %-10s %-10s %-7d %-6v %-6v %-10s %v",
			row.System, row.OracleClaim, row.OracleMeasured, row.ForkMax,
			row.SCHolds, row.ECHolds, row.PaperCriterion, row.Match)
		if !row.Match {
			res.OK = false
			res.notef("%s does not reproduce its Table 1 row", row.System)
		}
		// The EC family should witness at least one fork across the
		// run (otherwise the prodigal classification is vacuous).
		if row.PaperCriterion == "EC" && row.ForkMax <= 1 {
			res.notef("%s produced no fork this seed; prodigal behaviour unwitnessed", row.System)
		}
	}
	res.addf("oracle key: ΘP = prodigal (unbounded forks), ΘF,k=1 = frugal, no forks (%s)",
		fmt.Sprintf("Unbounded=%d", oracle.Unbounded))
	return res
}
