package experiments

import (
	"fmt"
	"sort"

	"repro/btsim"
	_ "repro/btsim/systems" // register the built-in seven systems
	"repro/internal/oracle"
)

// Row is one classified system of Table 1.
type Row struct {
	System         string
	OracleClaim    string
	OracleMeasured string
	ForkMax        int
	SCHolds        bool
	ECHolds        bool
	PaperCriterion string
	Match          bool
}

// classify derives a system's Table 1 row from its recorded run: the
// measured oracle class (from the k-fork coherence of the history and
// the fork degree of the trees) and the measured consistency criteria.
func classify(r *btsim.Result) Row {
	sc, ec := r.Check()
	k1 := r.KFork(1)

	measured := "ΘP"
	if k1.OK && r.MeasuredForkMax <= 1 {
		measured = "ΘF,k=1"
	}
	row := Row{
		System:         r.System,
		OracleClaim:    r.OracleClaim,
		OracleMeasured: measured,
		ForkMax:        r.MeasuredForkMax,
		SCHolds:        sc.OK,
		ECHolds:        ec.OK,
		PaperCriterion: r.PaperCriterion,
	}
	switch r.PaperCriterion {
	case "SC", "SC w.h.p.":
		row.Match = sc.OK && ec.OK && measured == "ΘF,k=1"
	case "EC":
		// Eventual consistency must hold; the prodigal oracle is
		// expected to exhibit forks (so SC should NOT hold on a
		// fork-bearing run — but a lucky fork-free run is not a
		// mismatch, only unwitnessed).
		row.Match = ec.OK
	}
	return row
}

// table1Order is the presentation order of the classic Table 1 rows;
// systems registered later (not named here) are appended by name.
var table1Order = []string{
	"bitcoin", "ethereum", "algorand", "byzcoin", "peercensus", "redbelly", "fabric",
}

// table1Tuning holds the per-system deviations from the common Table 1
// defaults. The PoW systems run longer and read frequently so that the
// transient fork windows (which are what separates EC from SC) are
// actually observed.
var table1Tuning = map[string][]btsim.Option{
	"bitcoin":  {btsim.WithRounds(300), btsim.WithReadEvery(4), btsim.WithDifficulty(10)},
	"ethereum": {btsim.WithRounds(300), btsim.WithReadEvery(4), btsim.WithDifficulty(5)},
}

// tableSystems returns every registered system in Table 1 presentation
// order, with any system not named in table1Order appended by name —
// a newly registered package shows up in the table automatically.
func tableSystems() []btsim.System {
	named := map[string]bool{}
	var out []btsim.System
	for _, name := range table1Order {
		if sys, ok := btsim.Lookup(name); ok {
			named[name] = true
			out = append(out, sys)
		}
	}
	var extra []btsim.System
	for _, sys := range btsim.Systems() {
		if !named[sys.Name()] {
			extra = append(extra, sys)
		}
	}
	sort.Slice(extra, func(i, j int) bool { return extra[i].Name() < extra[j].Name() })
	return append(out, extra...)
}

// RunBenign executes one registered system under the Table 1 defaults.
func RunBenign(sys btsim.System, seed uint64) (*btsim.Result, error) {
	opts := []btsim.Option{
		btsim.WithN(4), btsim.WithRounds(60), btsim.WithSeed(seed), btsim.WithReadEvery(12),
	}
	opts = append(opts, table1Tuning[sys.Name()]...)
	return sys.Run(btsim.NewConfig(opts...))
}

// RunAll executes every registered system with comparable defaults, in
// Table 1 presentation order.
func RunAll(seed uint64) []*btsim.Result {
	var out []*btsim.Result
	for _, sys := range tableSystems() {
		res, err := RunBenign(sys, seed)
		if err != nil {
			// Registered adapters accept the benign defaults; a failure
			// is a registration bug and must surface in the table.
			panic(fmt.Sprintf("experiments: %s: %v", sys.Name(), err))
		}
		out = append(out, res)
	}
	return out
}

// ClassifyOne runs a single registered system under the Table 1
// defaults and derives its row — cmd/classify -system.
func ClassifyOne(name string, seed uint64) (Row, error) {
	sys, err := btsim.Get(name)
	if err != nil {
		return Row{}, err
	}
	res, err := RunBenign(sys, seed)
	if err != nil {
		return Row{}, err
	}
	return classify(res), nil
}

// Table1 regenerates Table 1: each registered system is *run*, its
// history is *classified*, and the measured (oracle, criterion) pair is
// compared to the paper's mapping. The systems come from the btsim
// registry — adding a package with a btsim.Register call adds its row.
func Table1(seed uint64) *Result {
	res := &Result{ID: "Table 1", Title: "mapping of existing systems", OK: true}
	res.addf("%-12s %-10s %-10s %-7s %-6s %-6s %-10s %s",
		"System", "Θ paper", "Θ meas.", "forkMax", "SC", "EC", "paper", "match")
	for _, run := range RunAll(seed) {
		row := classify(run)
		res.addf("%-12s %-10s %-10s %-7d %-6v %-6v %-10s %v",
			row.System, row.OracleClaim, row.OracleMeasured, row.ForkMax,
			row.SCHolds, row.ECHolds, row.PaperCriterion, row.Match)
		if !row.Match {
			res.OK = false
			res.notef("%s does not reproduce its Table 1 row", row.System)
		}
		// The EC family should witness at least one fork across the
		// run (otherwise the prodigal classification is vacuous).
		if row.PaperCriterion == "EC" && row.ForkMax <= 1 {
			res.notef("%s produced no fork this seed; prodigal behaviour unwitnessed", row.System)
		}
	}
	res.addf("oracle key: ΘP = prodigal (unbounded forks), ΘF,k=1 = frugal, no forks (%s)",
		fmt.Sprintf("Unbounded=%d", oracle.Unbounded))
	return res
}
