package experiments

import (
	"strings"
	"testing"
)

// TestAllExperimentsReproduce is the repository's headline test: every
// figure and table of the paper must regenerate with OK status, across
// several seeds.
func TestAllExperimentsReproduce(t *testing.T) {
	for _, seed := range []uint64{42, 7, 123} {
		for _, e := range All() {
			e := e
			res := e.Run(seed)
			if !res.OK {
				t.Errorf("seed %d: %s (%s) MISMATCH:\n%s", seed, res.ID, e.Name, res)
			}
			if len(res.Lines) == 0 {
				t.Errorf("seed %d: %s produced no output", seed, res.ID)
			}
		}
	}
}

func TestRegistryComplete(t *testing.T) {
	ids := map[string]bool{}
	for _, e := range All() {
		if ids[e.ID] {
			t.Fatalf("duplicate experiment id %q", e.ID)
		}
		ids[e.ID] = true
		if e.Run == nil || e.Name == "" {
			t.Fatalf("experiment %q incomplete", e.ID)
		}
	}
	// One per figure (1-14), Table 1, plus the two theorem witnesses.
	for _, want := range []string{
		"fig1", "fig2", "fig3", "fig4", "fig5", "fig6", "fig7",
		"fig8", "fig9", "fig10", "fig11", "fig12", "fig13", "fig14",
		"lrc", "thm48", "table1",
	} {
		if !ids[want] {
			t.Errorf("experiment %q missing", want)
		}
	}
}

func TestByID(t *testing.T) {
	if ByID("fig3") == nil {
		t.Fatal("fig3 not found")
	}
	if ByID("nope") != nil {
		t.Fatal("unknown id found")
	}
}

func TestResultRendering(t *testing.T) {
	res := Figure2(1)
	s := res.String()
	if !strings.Contains(s, "Figure 2") || !strings.Contains(s, "REPRODUCED") {
		t.Fatalf("render: %s", s)
	}
	bad := &Result{ID: "X", Title: "t"}
	if !strings.Contains(bad.String(), "MISMATCH") {
		t.Fatal("not-OK result must render MISMATCH")
	}
}

func TestTable1RowsCoverAllSystems(t *testing.T) {
	res := Table1(42)
	for _, sys := range []string{"Bitcoin", "Ethereum", "Algorand", "ByzCoin", "PeerCensus", "RedBelly", "Hyperledger"} {
		found := false
		for _, l := range res.Lines {
			if strings.Contains(l, sys) {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("system %s missing from Table 1", sys)
		}
	}
}

func TestTable1SCFamilyClassification(t *testing.T) {
	for _, run := range RunAll(42) {
		row := classify(run)
		switch run.PaperCriterion {
		case "SC", "SC w.h.p.":
			if !row.SCHolds {
				t.Errorf("%s: SC does not hold", run.System)
			}
			if row.OracleMeasured != "ΘF,k=1" {
				t.Errorf("%s: measured oracle %s", run.System, row.OracleMeasured)
			}
		case "EC":
			if !row.ECHolds {
				t.Errorf("%s: EC does not hold", run.System)
			}
		}
	}
}

func TestFigure3SeparatesCriteria(t *testing.T) {
	res := Figure3(1)
	joined := strings.Join(res.Lines, "\n")
	if !strings.Contains(joined, "SC: VIOLATED") || !strings.Contains(joined, "EC: HOLDS") {
		t.Fatalf("Figure 3 verdicts wrong:\n%s", joined)
	}
}

func TestTheorem48WitnessesFork(t *testing.T) {
	res := Theorem48(42)
	joined := strings.Join(res.Lines, "\n")
	if !strings.Contains(joined, "StrongPrefix: VIOLATED") {
		t.Fatalf("no Strong Prefix violation:\n%s", joined)
	}
	if !strings.Contains(joined, "LRC: OK") {
		t.Fatalf("LRC should hold:\n%s", joined)
	}
}
