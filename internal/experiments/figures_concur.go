package experiments

import (
	"fmt"
	"sync"

	"repro/internal/concur"
	"repro/internal/core"
	"repro/internal/oracle"
)

// Figure9 races n goroutines on the consumeToken(k=1) object and on a
// native Compare&Swap, checking they agree operation-for-operation on
// the single-winner semantics of Figure 9: exactly one insert succeeds,
// every later call returns the winner.
func Figure9(seed uint64) *Result {
	res := &Result{ID: "Figure 9", Title: "consumeToken(k=1) vs compare&swap", OK: true}
	const n = 8
	ct := &concur.CTk1{}
	var cas concur.CAS[core.BlockID]

	blocks := make([]*core.Block, n)
	for i := range blocks {
		blocks[i] = core.NewBlock(core.GenesisID, 1, i, int(seed%1000)+i, []byte{byte(i)}).
			WithToken(oracle.TokenName(core.GenesisID))
	}

	var wg sync.WaitGroup
	ctWins := make([]bool, n)
	casWins := make([]bool, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			ret := ct.ConsumeToken(blocks[i])
			ctWins[i] = len(ret) == 1 && ret[0].ID == blocks[i].ID
			prev := cas.CompareAndSwap("", blocks[i].ID)
			casWins[i] = prev == ""
		}(i)
	}
	wg.Wait()

	countCT, countCAS := 0, 0
	for i := 0; i < n; i++ {
		if ctWins[i] {
			countCT++
		}
		if casWins[i] {
			countCAS++
		}
	}
	res.addf("%d goroutines raced; consumeToken winners: %d; CAS winners: %d", n, countCT, countCAS)
	if countCT != 1 || countCAS != 1 {
		res.OK = false
		res.notef("both objects must admit exactly one winner")
	}
	k := ct.K(core.GenesisID)
	res.addf("K[b0] = {%s} (|K|=%d, k=1)", k[0].ID.Short(), len(k))
	if len(k) != 1 {
		res.OK = false
	}
	return res
}

// Figure10 exercises the CAS-from-consumeToken reduction of Figure 10
// (Theorem 4.1): the implemented compare&swap must return {} to exactly
// one concurrent caller and the installed value to everyone else.
func Figure10(seed uint64) *Result {
	res := &Result{ID: "Figure 10", Title: "CAS implemented from consumeToken", OK: true}
	const n = 16
	ct := &concur.CTk1{}
	blocks := make([]*core.Block, n)
	for i := range blocks {
		blocks[i] = core.NewBlock(core.GenesisID, 1, i, int(seed%1000)+i, []byte{byte(i)}).
			WithToken(oracle.TokenName(core.GenesisID))
	}

	returns := make([][]*core.Block, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			returns[i] = concur.CASFromCT(ct, blocks[i])
		}(i)
	}
	wg.Wait()

	winner := ct.K(core.GenesisID)[0]
	succ := 0
	for i := 0; i < n; i++ {
		if returns[i] == nil {
			succ++
			if winner.ID != blocks[i].ID {
				res.OK = false
				res.notef("caller %d saw success but K holds %s", i, winner.ID.Short())
			}
		} else if returns[i][0].ID != winner.ID {
			res.OK = false
			res.notef("caller %d saw %s, want winner %s", i, returns[i][0].ID.Short(), winner.ID.Short())
		}
	}
	res.addf("%d concurrent compare&swap(K[b0], {}, b_i): %d success, %d observed winner", n, succ, n-succ)
	if succ != 1 {
		res.OK = false
		res.notef("exactly one CAS must succeed, got %d", succ)
	}
	return res
}

// Figure11 runs protocol A (consensus from ΘF,k=1, Theorem 4.2) with n
// concurrent proposers and checks Termination, Agreement, Integrity and
// Validity (the decided block satisfies P and carries the oracle's
// token).
func Figure11(seed uint64) *Result {
	res := &Result{ID: "Figure 11", Title: "Consensus from ΘF,k=1 (protocol A)", OK: true}
	const n = 8
	orc := oracle.NewFrugal(1, nil, core.WellFormed{}, seed)
	cons, err := concur.NewOracleConsensus(orc, 0.5)
	if err != nil {
		res.OK = false
		res.notef("%v", err)
		return res
	}

	decided := make([]*core.Block, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			decided[i], errs[i] = cons.Propose(i, []byte(fmt.Sprintf("proposal-%d", i)))
		}(i)
	}
	wg.Wait()

	for i := 0; i < n; i++ {
		if errs[i] != nil {
			res.OK = false
			res.notef("process %d: %v", i, errs[i])
			return res
		}
	}
	first := decided[0]
	agree := true
	for i := 1; i < n; i++ {
		if decided[i].ID != first.ID {
			agree = false
		}
	}
	res.addf("%d processes proposed; all decided %s (creator p%d)", n, first.ID.Short(), first.Creator)
	if !agree {
		res.OK = false
		res.notef("Agreement violated")
	}
	if first.Token != oracle.TokenName(core.GenesisID) {
		res.OK = false
		res.notef("Validity violated: decided block has no genesis token")
	}
	if first.Creator < 0 || first.Creator >= n {
		res.OK = false
		res.notef("decided block from unknown process %d", first.Creator)
	}
	res.addf("Termination, Integrity, Agreement, Validity: verified")
	return res
}

// Figure12 exercises the prodigal consumeToken from an atomic snapshot
// (Figure 12, Theorem 4.3): every one of n concurrent token writes for
// the same object succeeds (k is unbounded) and each returned scan
// contains the caller's own token.
func Figure12(seed uint64) *Result {
	res := &Result{ID: "Figure 12", Title: "ΘP consumeToken from atomic snapshot", OK: true}
	const n = 12
	sct := concur.NewSnapshotCT(n)
	blocks := make([]*core.Block, n)
	for i := range blocks {
		blocks[i] = core.NewBlock(core.GenesisID, 1, i, int(seed%1000)+i, []byte{byte(i)}).
			WithToken(oracle.TokenName(core.GenesisID))
	}

	views := make([][]*core.Block, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			views[i] = sct.ConsumeToken(i, blocks[i])
		}(i)
	}
	wg.Wait()

	for i := 0; i < n; i++ {
		found := false
		for _, b := range views[i] {
			if b.ID == blocks[i].ID {
				found = true
			}
		}
		if !found {
			res.OK = false
			res.notef("scan of writer %d misses its own token", i)
		}
	}
	final := sct.K(core.GenesisID)
	res.addf("%d concurrent consumeToken for b0: final |K| = %d (unbounded)", n, len(final))
	if len(final) != n {
		res.OK = false
		res.notef("prodigal object must retain all %d tokens, has %d", n, len(final))
	}
	res.addf("every scan contained the caller's token: verified")
	return res
}
