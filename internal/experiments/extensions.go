package experiments

import (
	"repro/btsim"
	"repro/internal/consistency"
	"repro/internal/core"
	"repro/internal/replica"
	"repro/internal/simnet"
)

// This file implements the experiments that go beyond the paper's own
// artifacts, covering its explicitly-flagged open threads:
//
//   - ExtensionMPC: the Monotonic Prefix Consistency criterion of the
//     paper's reference [20], positioned against SC and EC on the same
//     protocol runs (the Section 1 remark that [20]'s impossibility
//     applies to Strong Prefix);
//   - ExtensionFairness: the conclusion's "fairness properties for
//     oracles" — the generic merit parameter measured against each
//     process's share of the selected chain;
//   - ExtensionByzantineFlood: the Definition 4.2 restriction made
//     operational — a Byzantine process floods forged blocks and correct
//     replicas (whose update path validates P) stay clean;
//   - ExtensionSolvability: the conclusion's "solvability of Eventual
//     Prefix in message-passing" — the flooding protocol empirically
//     provides EC under all three synchrony models as long as LRC holds.

// ExtensionMPC classifies the PoW and consensus families against MPC.
func ExtensionMPC(seed uint64) *Result {
	res := &Result{ID: "Extension MPC", Title: "Monotonic Prefix Consistency ([20]) vs SC/EC", OK: true}

	bres, err := btsim.Run("bitcoin",
		btsim.WithN(4), btsim.WithRounds(300), btsim.WithSeed(seed),
		btsim.WithReadEvery(4), btsim.WithDifficulty(5))
	if err != nil {
		res.OK = false
		res.notef("bitcoin run failed: %v", err)
		return res
	}
	bmpc := bres.MonotonicPrefix()
	bsc, bec := bres.Check()
	res.addf("Bitcoin : %s ; %s ; %s", bsc, bec, bmpc)

	fres, err := btsim.Run("fabric",
		btsim.WithN(4), btsim.WithRounds(40), btsim.WithSeed(seed),
		btsim.WithReadEvery(8))
	if err != nil {
		res.OK = false
		res.notef("fabric run failed: %v", err)
		return res
	}
	fmpc := fres.MonotonicPrefix()
	fsc, fec := fres.Check()
	res.addf("Fabric  : %s ; %s ; %s", fsc, fec, fmpc)

	// Expected placement: the reorg-prone PoW run violates MPC (it
	// only promises EC); the k=1 chain satisfies MPC (reads only ever
	// extend).
	if bmpc.OK {
		res.notef("Bitcoin run had no observed reorg this seed (MPC unwitnessed)")
	}
	if !fmpc.OK {
		res.OK = false
		res.notef("fork-free chain violated MPC: %v", fmpc.Violations)
	}
	if !bec.OK || !fsc.OK {
		res.OK = false
		res.notef("base classifications regressed")
	}
	res.addf("placement: MPC sits between EC and SC on these runs, as [20] positions it")
	return res
}

// ExtensionFairness measures each miner's share of the selected chain
// against its merit share on a Bitcoin run with skewed hashing power.
func ExtensionFairness(seed uint64) *Result {
	res := &Result{ID: "Extension Fairness", Title: "chain share vs merit share (oracle fairness)", OK: true}
	const n = 4
	r, err := btsim.Run("bitcoin",
		btsim.WithN(n), btsim.WithRounds(600), btsim.WithSeed(seed),
		btsim.WithReadEvery(50), btsim.WithDifficulty(6),
		btsim.WithMerits(4, 2, 1, 1))
	if err != nil {
		res.OK = false
		res.notef("bitcoin run failed: %v", err)
		return res
	}

	chain := r.Chain(0)
	total := chain.Height()
	if total == 0 {
		res.OK = false
		res.notef("empty chain")
		return res
	}
	counts := make([]int, n)
	for _, b := range chain {
		if !b.IsGenesis() {
			counts[b.Creator]++
		}
	}
	meritShare := []float64{0.5, 0.25, 0.125, 0.125}
	maxDev := 0.0
	for p := 0; p < n; p++ {
		share := float64(counts[p]) / float64(total)
		dev := share - meritShare[p]
		if dev < 0 {
			dev = -dev
		}
		if dev > maxDev {
			maxDev = dev
		}
		res.addf("p%d: merit %.3f → chain share %.3f (%d/%d blocks)", p, meritShare[p], share, counts[p], total)
	}
	res.addf("max |share − merit| = %.3f over %d blocks", maxDev, total)
	if maxDev > 0.15 {
		res.OK = false
		res.notef("chain share deviates from merit share by %.3f (> 0.15)", maxDev)
	}
	return res
}

// ExtensionByzantineFlood floods forged blocks (payload tampered after
// hashing) from a Byzantine process; correct replicas must reject every
// one of them, and the history restricted to correct processes must
// still satisfy Block Validity and EC.
func ExtensionByzantineFlood(seed uint64) *Result {
	res := &Result{ID: "Extension Byzantine flood", Title: "forged blocks cannot corrupt correct replicas", OK: true}
	sim := simnet.NewSim(seed)
	g := replica.NewGroup(sim, 4, simnet.Synchronous{Delta: 2}, core.LongestChain{})
	g.SetPredicate(core.WellFormed{})
	g.Rec.MarkFaulty(3)

	// Honest chain growth by p0.
	parent := core.Genesis()
	for i := 0; i < 5; i++ {
		b := core.NewBlock(parent.ID, parent.Height+1, 0, i, []byte{byte(i)})
		parent = b
		tt := int64(i*10 + 1)
		sim.Schedule(tt, func() { g.Procs[0].AppendLocal(b) })
	}
	// Byzantine p3 floods forged blocks: valid-looking IDs with
	// tampered payloads, chained to genesis.
	for i := 0; i < 10; i++ {
		forged := core.NewBlock(core.GenesisID, 1, 3, 1000+i, []byte{byte(i)})
		forged.Payload = []byte("tampered") // ID no longer matches content
		tt := int64(i*5 + 2)
		sim.Schedule(tt, func() {
			g.Net.Broadcast(3, replica.UpdateMsg{Parent: forged.Parent, Block: forged})
		})
	}
	sim.RunUntilIdle()
	for _, p := range g.Procs[:3] {
		p.Read()
	}
	for _, p := range g.Procs[:3] {
		p.Read()
	}

	rejected := 0
	for _, p := range g.Procs[:3] {
		rejected += p.RejectedCount()
		if p.Tree().Len() != 6 { // genesis + 5 honest blocks
			res.OK = false
			res.notef("correct replica %d holds %d blocks, want 6", p.ID, p.Tree().Len())
		}
	}
	res.addf("10 forged blocks flooded; correct replicas rejected %d deliveries", rejected)
	if rejected == 0 {
		res.OK = false
		res.notef("no forged block ever reached a correct replica's filter")
	}

	h := g.History()
	chk := consistency.NewChecker(core.LengthScore{}, core.WellFormed{})
	bv := chk.BlockValidity(h)
	sc, ec := chk.Classify(h)
	res.addf("%s ; %s ; %s", bv, sc, ec)
	if !bv.OK || !ec.OK {
		res.OK = false
		res.notef("correct-process history corrupted by the flood")
	}
	return res
}

// ExtensionSolvability runs the flooding replica protocol under the
// three synchrony models with no loss: Eventual Consistency holds in
// every one, supporting the conjecture that LRC (not timing) is the
// operative requirement for Eventual Prefix — the paper's first listed
// open problem.
func ExtensionSolvability(seed uint64) *Result {
	res := &Result{ID: "Extension Solvability", Title: "Eventual Prefix under sync/psync/async delivery", OK: true}
	models := []simnet.DelayModel{
		simnet.Synchronous{Delta: 3},
		simnet.PartialSynchrony{GST: 60, DeltaBefore: 25, DeltaAfter: 3},
		simnet.Asynchronous{P: 0.25},
	}
	for _, m := range models {
		sim := simnet.NewSim(seed)
		g := replica.NewGroup(sim, 4, m, core.LongestChain{})
		g.SetPredicate(core.WellFormed{})
		// Each process appends on its own selected head on a
		// staggered schedule; forks can and do happen under slow
		// delivery.
		for i := 0; i < 24; i++ {
			p := i % 4
			round := i
			tt := int64(i*7 + 1)
			sim.Schedule(tt, func() {
				head := g.Procs[p].SelectedHead()
				b := core.NewBlock(head.ID, head.Height+1, p, round, []byte{byte(round)})
				g.Procs[p].AppendLocal(b)
			})
			if i%3 == 0 {
				sim.Schedule(tt+2, func() { g.Procs[(p+1)%4].Read() })
			}
		}
		sim.RunUntilIdle()
		for _, p := range g.Procs {
			p.Read()
		}
		for _, p := range g.Procs {
			p.Read()
		}
		h := g.History()
		chk := consistency.NewChecker(core.LengthScore{}, core.WellFormed{})
		_, ec := chk.Classify(h)
		ua := consistency.UpdateAgreement(h, g.Reg.Creators())
		res.addf("%-22s %s ; %s", m.Name(), ec, ua)
		if !ec.OK || !ua.OK {
			res.OK = false
			res.notef("%s: EC or Update Agreement failed without loss", m.Name())
		}
	}
	res.addf("EC holds under all three timing models when no message is lost")
	return res
}
