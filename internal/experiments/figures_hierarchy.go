package experiments

import (
	"repro/internal/consistency"
	"repro/internal/core"
	"repro/internal/history"
	"repro/internal/oracle"
	"repro/internal/refine"
)

// runRefined drives an R(BT-ADT, ΘF,k) object with a deterministic
// workload (interleaved appends by two processes and periodic reads) and
// returns the recorded history. The workload is the generator used by
// the hierarchy experiments: the same operation schedule replayed
// against oracles of different k.
func runRefined(k int, seed uint64, appends int) (*history.History, *refine.BT) {
	rec := history.NewRecorder(2, nil)
	orc := oracle.NewFrugal(k, nil, core.WellFormed{}, seed)
	bt := refine.New(refine.Config{Oracle: orc, Recorder: rec, Selector: core.LongestChain{}})
	for i := 0; i < appends; i++ {
		proc := i % 2
		bt.Append(proc, 0.5, i, []byte{byte(i), byte(i >> 8)})
		if i%2 == 1 {
			bt.Read(0)
			bt.Read(1)
		}
	}
	// No extra trailing reads: the last read pair is the liveness
	// horizon (reads with no future are exempt from Ever Growing
	// Tree; see consistency.Checker).
	return rec.Snapshot(), bt
}

// Figure8 regenerates the hierarchy of Figure 8 and verifies its
// inclusion theorems empirically:
//
//	Thm 3.2  — histories of R(BT, ΘF,k) are k-fork coherent;
//	Thm 3.3  — frugal histories are admissible for the prodigal type;
//	Thm 3.4  — k1 ≤ k2 ⇒ Ĥ(ΘF,k1) ⊆ Ĥ(ΘF,k2) (fork coherence nests);
//	Thm 3.1 / Cor 3.4.1 — every SC history is an EC history.
func Figure8(seed uint64) *Result {
	res := &Result{ID: "Figure 8", Title: "hierarchy of refinements", OK: true}
	nodes, edges := refine.Hierarchy(2)
	for _, e := range edges {
		res.addf("%-28s ⊆ %-28s (%s)", e.From.Name(), e.To.Name(), e.Theorem)
	}
	res.addf("nodes: %d", len(nodes))

	chk := consistency.NewChecker(core.LengthScore{}, core.WellFormed{})

	// Theorem 3.2 / 3.4: k-fork coherence nests across k.
	for _, k := range []int{1, 2, 4} {
		h, bt := runRefined(k, seed, 12)
		kf := chk.KForkCoherence(h, k)
		if !kf.OK {
			res.OK = false
			res.notef("Θ_F,k=%d history not %d-fork coherent: %s", k, k, kf)
		}
		// Nesting: also coherent at every larger bound.
		for _, k2 := range []int{k, k + 1, oracle.Unbounded} {
			if rep := chk.KForkCoherence(h, k2); !rep.OK {
				res.OK = false
				res.notef("Θ_F,k=%d history not %d-fork coherent (Thm 3.4)", k, k2)
			}
		}
		_ = bt
	}

	// Strictness witness: a k=2 oracle admits two consumed tokens for
	// b0 — a history that no k=1 refinement can generate (so the
	// Theorem 3.4 inclusion is strict).
	{
		orc := oracle.NewFrugal(2, nil, core.AlwaysValid{}, seed^0x5712)
		rec2 := history.NewRecorder(2, nil)
		g := core.Genesis()
		for proc := 0; proc < 2; proc++ {
			b, _ := oracle.MineToken(orc, 0.9, g, proc, proc, []byte{byte(proc)}, 256)
			if b != nil {
				if _, ok := orc.ConsumeToken(b); ok {
					rec2.Append(proc, b, true)
				}
			}
		}
		h2 := rec2.Snapshot()
		if rep := chk.KForkCoherence(h2, 2); !rep.OK {
			res.OK = false
			res.notef("two-token history must be 2-fork coherent")
		}
		if rep := chk.KForkCoherence(h2, 1); rep.OK {
			res.OK = false
			res.notef("two-token history must NOT be 1-fork coherent (strictness)")
		}
		res.addf("strictness: Ĥ(ΘF,k=1) ⊊ Ĥ(ΘF,k=2) witnessed by a 2-fork history")
	}

	// Theorem 3.1: every SC history is EC. Sample histories from all
	// oracle strengths; whenever SC holds, EC must hold.
	checkedSC := 0
	for _, k := range []int{1, 2, oracle.Unbounded} {
		h, _ := runRefined(k, seed+uint64(k), 10)
		sc, ec := chk.Classify(h)
		if sc.OK {
			checkedSC++
			if !ec.OK {
				res.OK = false
				res.notef("history with SC but not EC (contradicts Thm 3.1), k=%d", k)
			}
		}
	}
	res.addf("Theorem 3.1 sampled: %d SC histories, all EC", checkedSC)
	res.addf("Theorems 3.2/3.3/3.4 verified on generated histories")
	return res
}

// Figure14 regenerates the message-passing hierarchy of Figure 14: the
// Figure 8 hierarchy with the SC×(fork-allowing oracle) combinations
// grayed out by Theorem 4.8, cross-checked against the Theorem48
// experiment (which exhibits the Strong Prefix violation).
func Figure14(seed uint64) *Result {
	res := &Result{ID: "Figure 14", Title: "hierarchy in message passing", OK: true}
	nodes, _ := refine.Hierarchy(2)
	for _, n := range nodes {
		tag := "implementable"
		if !n.Feasible {
			tag = "IMPOSSIBLE in message passing (Thm 4.8)"
		}
		res.addf("%-28s %s", n.Name(), tag)
	}
	// The infeasible set must be exactly {SC×ΘP, SC×ΘF,k>1}.
	infeasible := 0
	for _, n := range nodes {
		if !n.Feasible {
			infeasible++
			if n.Criterion != "SC" || n.K == 1 {
				res.OK = false
				res.notef("unexpected infeasible node %s", n.Name())
			}
		}
	}
	if infeasible != 2 {
		res.OK = false
		res.notef("want 2 infeasible nodes, got %d", infeasible)
	}
	// Cross-check with the executable impossibility witness.
	t48 := Theorem48(seed)
	if !t48.OK {
		res.OK = false
		res.notef("Theorem 4.8 witness failed")
	}
	res.addf("impossibility witness (Theorem 4.8 experiment): reproduced")
	return res
}
