// Package tape implements the merit-tape abstraction of the Token Oracle
// (Section 3.2, Figure 5 of the paper): for each merit value α the oracle
// state embeds an infinite tape whose cells hold either a token symbol tkn
// or ⊥, forming a pseudorandom Bernoulli sequence with success probability
// p(α). The package also provides the deterministic PRNG that every
// simulation in this repository draws from, so that all experiments are
// reproducible bit-for-bit from a 64-bit seed.
package tape

import "math"

// RNG is a small, fast, deterministic pseudorandom generator based on
// splitmix64. It is intentionally self-contained (no math/rand) so the
// sequence is stable across Go releases, which keeps the recorded
// experiment outputs in EXPERIMENTS.md reproducible.
type RNG struct {
	state uint64
}

// NewRNG returns a generator seeded with seed. Distinct seeds yield
// independent-looking streams; seed 0 is valid.
func NewRNG(seed uint64) *RNG {
	return &RNG{state: seed}
}

// Uint64 returns the next 64 pseudorandom bits.
func (r *RNG) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Intn returns a pseudorandom int in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("tape: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Float64 returns a pseudorandom float64 in [0, 1).
func (r *RNG) Float64() float64 {
	// Use the top 53 bits for a uniformly distributed mantissa.
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Bernoulli reports a pseudorandom trial with success probability p.
func (r *RNG) Bernoulli(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return r.Float64() < p
}

// Perm returns a pseudorandom permutation of [0, n).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Split derives a new independent generator from this one. Splitting is
// how the simulator hands out per-process and per-tape streams without
// the streams interfering with one another.
func (r *RNG) Split() *RNG {
	return NewRNG(r.Uint64())
}

// Geometric returns the number of failures before the first success of a
// Bernoulli(p) sequence (support {0, 1, 2, ...}). Used by tests to check
// tape statistics and by simulators to jump ahead to the next token.
func (r *RNG) Geometric(p float64) int {
	if p >= 1 {
		return 0
	}
	if p <= 0 {
		return math.MaxInt32
	}
	n := 0
	for !r.Bernoulli(p) {
		n++
		if n == math.MaxInt32 {
			return n
		}
	}
	return n
}
