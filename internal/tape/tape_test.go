package tape

import (
	"math"
	"testing"
	"testing/quick"
)

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same-seed RNGs diverged at step %d", i)
		}
	}
}

func TestRNGSeedSensitivity(t *testing.T) {
	a, b := NewRNG(1), NewRNG(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("different seeds produced %d/100 equal outputs", same)
	}
}

func TestRNGFloat64Range(t *testing.T) {
	r := NewRNG(7)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of [0,1): %v", f)
		}
	}
}

func TestRNGIntnRange(t *testing.T) {
	r := NewRNG(9)
	seen := make(map[int]bool)
	for i := 0; i < 1000; i++ {
		v := r.Intn(10)
		if v < 0 || v >= 10 {
			t.Fatalf("Intn(10) out of range: %d", v)
		}
		seen[v] = true
	}
	if len(seen) != 10 {
		t.Fatalf("Intn(10) hit only %d distinct values in 1000 draws", len(seen))
	}
}

func TestRNGIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	NewRNG(1).Intn(0)
}

func TestBernoulliFrequency(t *testing.T) {
	for _, p := range []float64{0.1, 0.5, 0.9} {
		r := NewRNG(uint64(p * 1000))
		hits := 0
		const n = 20000
		for i := 0; i < n; i++ {
			if r.Bernoulli(p) {
				hits++
			}
		}
		got := float64(hits) / n
		if math.Abs(got-p) > 0.02 {
			t.Errorf("Bernoulli(%v) frequency %v, want within 0.02", p, got)
		}
	}
}

func TestBernoulliEdges(t *testing.T) {
	r := NewRNG(3)
	if r.Bernoulli(0) {
		t.Error("Bernoulli(0) returned true")
	}
	if !r.Bernoulli(1) {
		t.Error("Bernoulli(1) returned false")
	}
	if r.Bernoulli(-0.5) {
		t.Error("Bernoulli(-0.5) returned true")
	}
	if !r.Bernoulli(1.5) {
		t.Error("Bernoulli(1.5) returned false")
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := NewRNG(11)
	p := r.Perm(50)
	seen := make([]bool, 50)
	for _, v := range p {
		if v < 0 || v >= 50 || seen[v] {
			t.Fatalf("Perm produced invalid/duplicate element %d", v)
		}
		seen[v] = true
	}
}

func TestGeometricMean(t *testing.T) {
	r := NewRNG(13)
	const p = 0.25
	total := 0
	const n = 20000
	for i := 0; i < n; i++ {
		total += r.Geometric(p)
	}
	mean := float64(total) / n
	want := (1 - p) / p // mean of failures-before-success geometric
	if math.Abs(mean-want) > 0.15 {
		t.Errorf("Geometric(%v) mean %v, want ≈ %v", p, mean, want)
	}
}

func TestSplitIndependence(t *testing.T) {
	r := NewRNG(17)
	s1 := r.Split()
	s2 := r.Split()
	same := 0
	for i := 0; i < 100; i++ {
		if s1.Uint64() == s2.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("split streams coincide in %d/100 draws", same)
	}
}

func TestTapeHeadThenPopAgree(t *testing.T) {
	tp := NewTape(0.5, nil, 99)
	for i := 0; i < 200; i++ {
		h := tp.Head()
		p := tp.Pop()
		if h != p {
			t.Fatalf("cell %d: Head()=%v but Pop()=%v", i, h, p)
		}
	}
	if tp.Position() != 200 {
		t.Fatalf("position %d after 200 pops", tp.Position())
	}
}

func TestTapePeekStable(t *testing.T) {
	tp := NewTape(0.5, nil, 123)
	want := make([]Cell, 50)
	for i := range want {
		want[i] = tp.Peek(i)
	}
	// Peeking again (and out of order) must return identical cells.
	for i := len(want) - 1; i >= 0; i-- {
		if tp.Peek(i) != want[i] {
			t.Fatalf("Peek(%d) changed between calls", i)
		}
	}
	// Popping must consume exactly the peeked prefix.
	for i := range want {
		if got := tp.Pop(); got != want[i] {
			t.Fatalf("Pop %d = %v, want peeked %v", i, got, want[i])
		}
	}
}

func TestTapeDeterministicPerSeed(t *testing.T) {
	a := NewTape(0.3, nil, 5)
	b := NewTape(0.3, nil, 5)
	for i := 0; i < 500; i++ {
		if a.Pop() != b.Pop() {
			t.Fatalf("same-seed tapes diverged at %d", i)
		}
	}
}

func TestTapeProbabilityZeroAndOne(t *testing.T) {
	zero := NewTape(0, nil, 1)
	one := NewTape(1, nil, 1)
	for i := 0; i < 100; i++ {
		if zero.Pop() != Bottom {
			t.Fatal("p=0 tape produced a token")
		}
		if one.Pop() != Token {
			t.Fatal("p=1 tape produced ⊥")
		}
	}
}

func TestTapeTokenFrequencyMatchesMerit(t *testing.T) {
	tp := NewTape(0.2, nil, 77)
	hits := 0
	const n = 20000
	for i := 0; i < n; i++ {
		if tp.Pop() == Token {
			hits++
		}
	}
	got := float64(hits) / n
	if math.Abs(got-0.2) > 0.02 {
		t.Errorf("token frequency %v, want ≈ 0.2", got)
	}
}

func TestDifficultyMapping(t *testing.T) {
	m := DifficultyMapping(4)
	if got := m(0.8); math.Abs(got-0.2) > 1e-12 {
		t.Errorf("DifficultyMapping(4)(0.8) = %v, want 0.2", got)
	}
	if got := m(2.0); got != 0.25 {
		t.Errorf("merit clamped to 1 then divided: got %v, want 0.25", got)
	}
}

func TestDifficultyMappingPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("DifficultyMapping(0) did not panic")
		}
	}()
	DifficultyMapping(0)
}

func TestIdentityMappingClamps(t *testing.T) {
	if IdentityMapping(-1) != 0 {
		t.Error("negative merit not clamped to 0")
	}
	if IdentityMapping(2) != 1 {
		t.Error("merit > 1 not clamped to 1")
	}
	if IdentityMapping(0.4) != 0.4 {
		t.Error("identity not preserved in range")
	}
}

func TestSetReturnsSameTape(t *testing.T) {
	s := NewSet(nil, 42)
	t1 := s.Tape(0.5)
	t1.Pop()
	t2 := s.Tape(0.5)
	if t1 != t2 {
		t.Fatal("Set returned a different tape for the same merit")
	}
	if t2.Position() != 1 {
		t.Fatal("tape state not shared through the set")
	}
}

func TestSetMeritsOrder(t *testing.T) {
	s := NewSet(nil, 42)
	s.Tape(0.3)
	s.Tape(0.1)
	s.Tape(0.3) // no duplicate registration
	m := s.Merits()
	if len(m) != 2 || m[0] != 0.3 || m[1] != 0.1 {
		t.Fatalf("Merits() = %v, want [0.3 0.1]", m)
	}
	if s.Len() != 2 {
		t.Fatalf("Len() = %d, want 2", s.Len())
	}
}

func TestSetReproducibleAccessPattern(t *testing.T) {
	build := func() []Cell {
		s := NewSet(nil, 7)
		var out []Cell
		for i := 0; i < 50; i++ {
			out = append(out, s.Tape(0.4).Pop())
			out = append(out, s.Tape(0.6).Pop())
		}
		return out
	}
	a, b := build(), build()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("set sequences diverged at %d", i)
		}
	}
}

// Property: for any seed, the first n cells seen via Peek equal the first
// n cells seen via Pop on an identically constructed tape.
func TestQuickPeekPopEquivalence(t *testing.T) {
	f := func(seed uint64, nRaw uint8) bool {
		n := int(nRaw%64) + 1
		peeker := NewTape(0.5, nil, seed)
		popper := NewTape(0.5, nil, seed)
		for i := 0; i < n; i++ {
			if peeker.Peek(i) != popper.Pop() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: Geometric(p) for p=1 is always 0.
func TestQuickGeometricCertainty(t *testing.T) {
	f := func(seed uint64) bool {
		return NewRNG(seed).Geometric(1) == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
