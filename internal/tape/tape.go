package tape

import "fmt"

// Cell is one symbol of a merit tape: either Token (the string "tkn" in
// the paper's alphabet) or Bottom (⊥).
type Cell uint8

// The two symbols of the tape alphabet {tkn, ⊥}.
const (
	Bottom Cell = iota // ⊥: the getToken attempt fails
	Token              // tkn: the oracle grants a token
)

// String renders the symbol as in the paper's figures.
func (c Cell) String() string {
	if c == Token {
		return "tkn"
	}
	return "⊥"
}

// Merit is the α parameter of the paper: a rational value characterizing
// an invoking process (e.g. its hashing power in Bitcoin, its stake in
// Algorand). The oracle — not the process — knows the merit.
type Merit float64

// Mapping is the paper's m ∈ M: a function from merits to token
// probabilities. The canonical mapping is the identity on [0,1] (merit
// is already a normalized probability); protocol simulators may supply
// their own, e.g. to model difficulty adjustment.
type Mapping func(Merit) float64

// IdentityMapping treats the merit itself as the per-cell token
// probability, clamped to [0,1].
func IdentityMapping(a Merit) float64 {
	p := float64(a)
	if p < 0 {
		return 0
	}
	if p > 1 {
		return 1
	}
	return p
}

// DifficultyMapping returns a Mapping that scales merit by 1/difficulty,
// modelling proof-of-work difficulty: higher difficulty lowers every
// process's per-step success probability proportionally.
func DifficultyMapping(difficulty float64) Mapping {
	if difficulty <= 0 {
		panic("tape: non-positive difficulty")
	}
	return func(a Merit) float64 {
		return IdentityMapping(a) / difficulty
	}
}

// Tape is one infinite pseudorandom tape tape_α of Figure 5, materialized
// lazily: cells are generated on demand from a deterministic stream, and a
// cursor tracks how many cells have been popped. head() and pop() follow
// the paper's definitions: head returns the first unconsumed cell, pop
// consumes it.
type Tape struct {
	merit  Merit
	prob   float64
	rng    *RNG
	cursor int // number of cells popped so far
	// lookahead holds generated-but-not-popped cells so that Head
	// followed by Pop observes the same cell, as the ADT requires.
	lookahead []Cell
}

// NewTape creates the tape for merit α under mapping m, seeded
// deterministically from seed. Two tapes built with the same arguments
// are identical cell-for-cell.
func NewTape(a Merit, m Mapping, seed uint64) *Tape {
	if m == nil {
		m = IdentityMapping
	}
	return &Tape{merit: a, prob: m(a), rng: NewRNG(seed)}
}

// Merit returns the α this tape belongs to.
func (t *Tape) Merit() Merit { return t.merit }

// Prob returns the per-cell token probability p(α).
func (t *Tape) Prob() float64 { return t.prob }

// Position returns how many cells have been popped so far.
func (t *Tape) Position() int { return t.cursor }

func (t *Tape) generate() Cell {
	if t.rng.Bernoulli(t.prob) {
		return Token
	}
	return Bottom
}

// Head returns the first unconsumed cell without consuming it
// (the paper's head function).
func (t *Tape) Head() Cell {
	if len(t.lookahead) == 0 {
		t.lookahead = append(t.lookahead, t.generate())
	}
	return t.lookahead[0]
}

// Pop consumes and returns the first unconsumed cell
// (the paper's pop function).
func (t *Tape) Pop() Cell {
	c := t.Head()
	t.lookahead = t.lookahead[1:]
	t.cursor++
	return c
}

// Peek returns cell i (0-based, relative to the current cursor) without
// consuming anything. It extends the lookahead as needed. Peek(0) is Head.
func (t *Tape) Peek(i int) Cell {
	if i < 0 {
		panic("tape: negative Peek index")
	}
	for len(t.lookahead) <= i {
		t.lookahead = append(t.lookahead, t.generate())
	}
	return t.lookahead[i]
}

// String summarizes the tape for diagnostics, e.g. "tape(α=0.25 pos=3)".
func (t *Tape) String() string {
	return fmt.Sprintf("tape(α=%g pos=%d)", float64(t.merit), t.cursor)
}

// Set is the oracle-state collection of tapes, one per merit, all derived
// from one master seed (the infinite set of tapes in Figure 5). Tapes are
// created lazily on first access; the per-tape seed is a deterministic
// function of the master seed and the merit's registration order, so a
// Set is reproducible given the same access pattern.
type Set struct {
	mapping Mapping
	master  *RNG
	tapes   map[Merit]*Tape
	order   []Merit
}

// NewSet creates an empty tape set under mapping m (nil means identity),
// seeded with seed.
func NewSet(m Mapping, seed uint64) *Set {
	if m == nil {
		m = IdentityMapping
	}
	return &Set{mapping: m, master: NewRNG(seed), tapes: make(map[Merit]*Tape)}
}

// Tape returns the tape for merit α, creating it on first use.
func (s *Set) Tape(a Merit) *Tape {
	if t, ok := s.tapes[a]; ok {
		return t
	}
	t := NewTape(a, s.mapping, s.master.Uint64())
	s.tapes[a] = t
	s.order = append(s.order, a)
	return t
}

// Merits returns the merits registered so far, in first-use order.
func (s *Set) Merits() []Merit {
	out := make([]Merit, len(s.order))
	copy(out, s.order)
	return out
}

// Len returns the number of materialized tapes.
func (s *Set) Len() int { return len(s.tapes) }
