package concur

import (
	"sync"
	"testing"
	"testing/quick"

	"repro/internal/core"
	"repro/internal/oracle"
)

func TestRegisterZeroValue(t *testing.T) {
	var r Register[int]
	if r.Read() != 0 {
		t.Fatal("zero register not zero")
	}
	r.Write(7)
	if r.Read() != 7 {
		t.Fatal("write lost")
	}
}

func TestRegisterConcurrent(t *testing.T) {
	var r Register[int]
	var wg sync.WaitGroup
	for i := 1; i <= 16; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			r.Write(i)
			_ = r.Read()
		}(i)
	}
	wg.Wait()
	if v := r.Read(); v < 1 || v > 16 {
		t.Fatalf("final value %d not among writes", v)
	}
}

func TestCASSemantics(t *testing.T) {
	var c CAS[string]
	if prev := c.CompareAndSwap("", "a"); prev != "" {
		t.Fatalf("first CAS returned %q", prev)
	}
	if prev := c.CompareAndSwap("", "b"); prev != "a" {
		t.Fatalf("losing CAS returned %q, want a", prev)
	}
	if prev := c.CompareAndSwap("a", "c"); prev != "a" {
		t.Fatalf("matching CAS returned %q", prev)
	}
	if got := c.Read(); got != "c" {
		t.Fatalf("final %q", got)
	}
}

func TestCASSingleWinner(t *testing.T) {
	var c CAS[int]
	var wg sync.WaitGroup
	wins := make([]bool, 32)
	for i := 0; i < 32; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			wins[i] = c.CompareAndSwap(0, i+1) == 0
		}(i)
	}
	wg.Wait()
	n := 0
	for _, w := range wins {
		if w {
			n++
		}
	}
	if n != 1 {
		t.Fatalf("%d winners", n)
	}
}

func TestSnapshotSequential(t *testing.T) {
	s := NewSnapshot[int](3)
	if got := s.Scan(); len(got) != 3 || got[0] != 0 {
		t.Fatalf("initial scan %v", got)
	}
	s.Update(0, 10)
	s.Update(2, 30)
	got := s.Scan()
	if got[0] != 10 || got[1] != 0 || got[2] != 30 {
		t.Fatalf("scan %v", got)
	}
	if s.N() != 3 {
		t.Fatalf("N %d", s.N())
	}
}

// TestSnapshotMonotoneViews: with writers writing strictly increasing
// values, every scanned view must be componentwise monotone over time at
// each scanner (a consequence of linearizability of scans).
func TestSnapshotMonotoneViews(t *testing.T) {
	const writers = 4
	const perWriter = 200
	s := NewSnapshot[int](writers)
	var wg sync.WaitGroup
	stop := make(chan struct{})

	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for v := 1; v <= perWriter; v++ {
				s.Update(w, v)
			}
		}(w)
	}

	scanErr := make(chan string, 4)
	var swg sync.WaitGroup
	for r := 0; r < 4; r++ {
		swg.Add(1)
		go func() {
			defer swg.Done()
			prev := make([]int, writers)
			for {
				select {
				case <-stop:
					return
				default:
				}
				view := s.Scan()
				for i := range view {
					if view[i] < prev[i] {
						scanErr <- "view regressed"
						return
					}
					prev[i] = view[i]
				}
			}
		}()
	}
	wg.Wait()
	close(stop)
	swg.Wait()
	select {
	case msg := <-scanErr:
		t.Fatal(msg)
	default:
	}
	final := s.Scan()
	for i, v := range final {
		if v != perWriter {
			t.Fatalf("writer %d final %d", i, v)
		}
	}
}

func genesisBlock(i int) *core.Block {
	b := core.NewBlock(core.GenesisID, 1, i, i, []byte{byte(i)})
	return b.WithToken(oracle.TokenName(core.GenesisID))
}

func TestCTk1SingleConsume(t *testing.T) {
	ct := &CTk1{}
	b0, b1 := genesisBlock(0), genesisBlock(1)
	ret := ct.ConsumeToken(b0)
	if len(ret) != 1 || ret[0].ID != b0.ID {
		t.Fatalf("first consume returned %v", ret)
	}
	ret = ct.ConsumeToken(b1)
	if len(ret) != 1 || ret[0].ID != b0.ID {
		t.Fatalf("second consume returned %v, want first winner", ret)
	}
}

func TestCTk1RejectsBadToken(t *testing.T) {
	ct := &CTk1{}
	plain := core.NewBlock(core.GenesisID, 1, 0, 0, nil) // no token
	if got := ct.ConsumeToken(plain); got != nil {
		t.Fatalf("tokenless consume returned %v", got)
	}
	if got := ct.ConsumeToken(nil); got != nil {
		t.Fatalf("nil consume returned %v", got)
	}
	if got := ct.K(core.GenesisID); got != nil {
		t.Fatalf("K nonempty: %v", got)
	}
}

func TestCTk1PerObjectIndependence(t *testing.T) {
	ct := &CTk1{}
	b := genesisBlock(0)
	ct.ConsumeToken(b)
	// A different object (parent b) has its own empty K.
	child := core.NewBlock(b.ID, 2, 1, 1, nil).WithToken(oracle.TokenName(b.ID))
	ret := ct.ConsumeToken(child)
	if len(ret) != 1 || ret[0].ID != child.ID {
		t.Fatalf("independent object affected: %v", ret)
	}
}

func TestCASFromCTSemantics(t *testing.T) {
	ct := &CTk1{}
	b0, b1 := genesisBlock(0), genesisBlock(1)
	if old := CASFromCT(ct, b0); old != nil {
		t.Fatalf("first CAS returned %v, want nil (empty)", old)
	}
	old := CASFromCT(ct, b1)
	if len(old) != 1 || old[0].ID != b0.ID {
		t.Fatalf("second CAS returned %v, want the winner", old)
	}
}

func TestSnapshotCTUnbounded(t *testing.T) {
	s := NewSnapshotCT(8)
	for i := 0; i < 8; i++ {
		view := s.ConsumeToken(i, genesisBlock(i))
		if len(view) != i+1 {
			t.Fatalf("after %d consumes view has %d tokens", i+1, len(view))
		}
	}
	if got := len(s.K(core.GenesisID)); got != 8 {
		t.Fatalf("|K| = %d", got)
	}
}

func TestSnapshotCTBounds(t *testing.T) {
	s := NewSnapshotCT(2)
	if got := s.ConsumeToken(5, genesisBlock(0)); got != nil {
		t.Fatalf("out-of-range writer accepted: %v", got)
	}
	if got := s.ConsumeToken(0, nil); got != nil {
		t.Fatalf("nil block accepted: %v", got)
	}
}

func runConsensus(t *testing.T, c Consensus, n int) []*core.Block {
	t.Helper()
	decided := make([]*core.Block, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			b, err := c.Propose(i, []byte{byte(i)})
			if err != nil {
				t.Errorf("process %d: %v", i, err)
				return
			}
			decided[i] = b
		}(i)
	}
	wg.Wait()
	return decided
}

func assertAgreement(t *testing.T, decided []*core.Block, n int) {
	t.Helper()
	if decided[0] == nil {
		t.Fatal("no decision")
	}
	for i := 1; i < len(decided); i++ {
		if decided[i] == nil || decided[i].ID != decided[0].ID {
			t.Fatalf("disagreement: %v vs %v", decided[i], decided[0])
		}
	}
	if decided[0].Creator < 0 || decided[0].Creator >= n {
		t.Fatalf("decided value from nobody: creator %d", decided[0].Creator)
	}
}

func TestOracleConsensus(t *testing.T) {
	orc := oracle.NewFrugal(1, nil, core.WellFormed{}, 99)
	c, err := NewOracleConsensus(orc, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	decided := runConsensus(t, c, 8)
	assertAgreement(t, decided, 8)
}

func TestOracleConsensusRequiresK1(t *testing.T) {
	orc := oracle.NewFrugal(2, nil, nil, 1)
	if _, err := NewOracleConsensus(orc, 0.5); err == nil {
		t.Fatal("k=2 oracle accepted for protocol A")
	}
}

func TestCASConsensus(t *testing.T) {
	decided := runConsensus(t, NewCASConsensus(), 8)
	assertAgreement(t, decided, 8)
}

func TestCTConsensus(t *testing.T) {
	decided := runConsensus(t, NewCTConsensus(), 8)
	assertAgreement(t, decided, 8)
}

func TestConsensusSingleProposer(t *testing.T) {
	// Degenerate case: one proposer decides its own value (Validity).
	for _, c := range []Consensus{NewCASConsensus(), NewCTConsensus()} {
		b, err := c.Propose(0, []byte("solo"))
		if err != nil {
			t.Fatal(err)
		}
		if b.Creator != 0 {
			t.Fatalf("solo proposer decided foreign value from %d", b.Creator)
		}
	}
}

// Property: repeated CAS-consensus rounds always decide exactly one of
// the proposed values (validity), for any proposer count.
func TestQuickConsensusValidity(t *testing.T) {
	f := func(nRaw uint8) bool {
		n := int(nRaw%6) + 1
		c := NewCTConsensus()
		decided := make([]*core.Block, n)
		var wg sync.WaitGroup
		for i := 0; i < n; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				decided[i], _ = c.Propose(i, []byte{byte(i)})
			}(i)
		}
		wg.Wait()
		for i := 1; i < n; i++ {
			if decided[i] == nil || decided[i].ID != decided[0].ID {
				return false
			}
		}
		return decided[0] != nil && decided[0].Creator >= 0 && decided[0].Creator < n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
