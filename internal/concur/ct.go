package concur

import (
	"sync"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/oracle"
)

// CTk1 is the consumeToken object of Figure 9 for the frugal oracle with
// k = 1: per object h, the set K[h] holds at most one validated block;
// consumeToken(b^{tkn_h}_ℓ) inserts b iff K[h] is empty and the token is
// well-formed, and always returns the contents of K[h] at the end of the
// operation. Linearizability of the insert is delegated to a hardware
// CAS, which is legitimate: the paper's point (Theorem 4.1) is that this
// object and CAS are interimplementable.
type CTk1 struct {
	slots sync.Map // core.BlockID → *atomic.Pointer[core.Block]
}

func (c *CTk1) slot(h core.BlockID) *atomic.Pointer[core.Block] {
	if v, ok := c.slots.Load(h); ok {
		return v.(*atomic.Pointer[core.Block])
	}
	v, _ := c.slots.LoadOrStore(h, new(atomic.Pointer[core.Block]))
	return v.(*atomic.Pointer[core.Block])
}

// ConsumeToken implements Figure 9's left column. The returned slice is
// the contents of K[h] when the operation completed: empty only if the
// token was malformed and K[h] still empty.
func (c *CTk1) ConsumeToken(b *core.Block) []*core.Block {
	if b == nil {
		return nil
	}
	slot := c.slot(b.Parent)
	if b.Token == oracle.TokenName(b.Parent) {
		slot.CompareAndSwap(nil, b)
	}
	if cur := slot.Load(); cur != nil {
		return []*core.Block{cur}
	}
	return nil
}

// K returns the current contents of K[h].
func (c *CTk1) K(h core.BlockID) []*core.Block {
	if cur := c.slot(h).Load(); cur != nil {
		return []*core.Block{cur}
	}
	return nil
}

// CASFromCT implements Figure 10: compare&swap(K[h], {}, b^{tkn_h}_ℓ)
// from the consumeToken object. It returns the empty set (nil) when the
// swap succeeded — K[h] was {} and now holds b — and otherwise the value
// K[h] held, exactly as the paper's pseudo-code returns returned_value.
// This is the reduction behind Theorem 4.1 (CT with k = 1 has the power
// of CAS, hence consensus number ∞).
func CASFromCT(ct *CTk1, b *core.Block) []*core.Block {
	returned := ct.ConsumeToken(b)
	if len(returned) == 1 && returned[0].ID == b.ID {
		return nil // the old value {} — our block was installed
	}
	return returned
}

// SnapshotCT is Figure 12: the prodigal oracle's consumeToken implemented
// from an Atomic Snapshot object. Per object h there are n single-writer
// registers R_{h,1..n}, one per token; consumeToken_h(tkn_m) performs
// update(R_{h,m}, tkn_m) followed by scan(R_{h,1},...,R_{h,n}) and
// returns the scanned view. Because an update always succeeds, the
// number of tokens consumed per object is unbounded — this is Θ_P — and
// because snapshots have consensus number 1, so does Θ_P (Theorem 4.3).
type SnapshotCT struct {
	n    int
	mu   sync.Mutex
	objs map[core.BlockID]*Snapshot[*core.Block]
}

// NewSnapshotCT builds the object for n token-writer slots per object.
func NewSnapshotCT(n int) *SnapshotCT {
	return &SnapshotCT{n: n, objs: make(map[core.BlockID]*Snapshot[*core.Block])}
}

func (s *SnapshotCT) snapFor(h core.BlockID) *Snapshot[*core.Block] {
	s.mu.Lock()
	defer s.mu.Unlock()
	if snap, ok := s.objs[h]; ok {
		return snap
	}
	snap := NewSnapshot[*core.Block](s.n)
	s.objs[h] = snap
	return snap
}

// ConsumeToken implements Figure 12 for writer index m ∈ [0, n).
// It returns every token written for the object so far, including the
// one just written (the scan "includes the last written token").
func (s *SnapshotCT) ConsumeToken(m int, b *core.Block) []*core.Block {
	if b == nil || m < 0 || m >= s.n {
		return nil
	}
	snap := s.snapFor(b.Parent)
	snap.Update(m, b)
	view := snap.Scan()
	out := make([]*core.Block, 0, len(view))
	for _, blk := range view {
		if blk != nil {
			out = append(out, blk)
		}
	}
	return out
}

// K returns the consumed tokens for object h without writing.
func (s *SnapshotCT) K(h core.BlockID) []*core.Block {
	snap := s.snapFor(h)
	view := snap.Scan()
	out := make([]*core.Block, 0, len(view))
	for _, blk := range view {
		if blk != nil {
			out = append(out, blk)
		}
	}
	return out
}
