package concur

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/oracle"
	"repro/internal/tape"
)

// Consensus is the blockchain-flavoured consensus object of Definition
// 4.1: Termination, Integrity, Agreement, and the [11]-style Validity
// requiring the decided block to satisfy the predicate P.
type Consensus interface {
	// Propose submits process proc's proposal payload and returns the
	// decided block. It must be called at most once per process
	// (Integrity is the caller's obligation; the implementations
	// nevertheless tolerate repeats and return the same decision).
	Propose(proc int, payload []byte) (*core.Block, error)
}

// OracleConsensus is protocol A of Figure 11: consensus from the frugal
// oracle with k = 1 (Theorem 4.2). Each process loops getToken(b0, b)
// until the oracle validates a block, then consumes the token; for k = 1
// the set K[b0] permanently holds exactly one block — the decided value.
type OracleConsensus struct {
	o       oracle.Oracle
	genesis *core.Block
	merit   tape.Merit
}

// NewOracleConsensus builds protocol A over the given Θ_F,k=1 oracle.
// merit is the per-process α used when mining tokens (all processes are
// given the same merit; fairness is out of the paper's scope).
func NewOracleConsensus(o oracle.Oracle, merit tape.Merit) (*OracleConsensus, error) {
	if o.MaxForks() != 1 {
		return nil, fmt.Errorf("concur: protocol A requires ΘF with k=1, got %s", o.Name())
	}
	return &OracleConsensus{o: o, genesis: core.Genesis(), merit: merit}, nil
}

// Propose implements Figure 11:
//
//	(1) validBlock ← ⊥
//	(3) while validBlock = ⊥:
//	(4)     validBlock ← getToken(b0, b)
//	(5) validBlockSet ← consumeToken(validBlock)
//	(6) decide(validBlockSet)       // contains exactly one element
func (c *OracleConsensus) Propose(proc int, payload []byte) (*core.Block, error) {
	var validBlock *core.Block
	for validBlock == nil {
		if b, ok := c.o.GetToken(c.merit, c.genesis, proc, 0, payload); ok {
			validBlock = b
		}
	}
	validBlockSet, _ := c.o.ConsumeToken(validBlock)
	if len(validBlockSet) != 1 {
		return nil, fmt.Errorf("concur: k=1 oracle returned %d consumed tokens", len(validBlockSet))
	}
	return validBlockSet[0], nil
}

// CASConsensus is Herlihy's classical consensus from Compare&Swap, used
// as the reference object against which Figure 10's reduction is tested
// and benchmarked: the first process to swap its proposal in wins.
type CASConsensus struct {
	cas CAS[core.BlockID]
	// reg maps the winning ID back to the block (single assignment
	// per ID; stored before the CAS publishes the ID).
	blocks Register[map[core.BlockID]*core.Block]
	mu     chan struct{}
}

// NewCASConsensus builds the reference CAS-based consensus object.
func NewCASConsensus() *CASConsensus {
	c := &CASConsensus{mu: make(chan struct{}, 1)}
	c.mu <- struct{}{}
	c.blocks.Write(map[core.BlockID]*core.Block{})
	return c
}

// Propose decides the first proposal whose CAS on the empty ID succeeds.
func (c *CASConsensus) Propose(proc int, payload []byte) (*core.Block, error) {
	b := core.NewBlock(core.GenesisID, 1, proc, 0, payload)
	// Publish the block under its ID before attempting to win, so the
	// winner's block is readable by everyone afterwards.
	<-c.mu
	m := c.blocks.Read()
	nm := make(map[core.BlockID]*core.Block, len(m)+1)
	for k, v := range m {
		nm[k] = v
	}
	nm[b.ID] = b
	c.blocks.Write(nm)
	c.mu <- struct{}{}

	prev := c.cas.CompareAndSwap("", b.ID)
	winner := prev
	if prev == "" {
		winner = b.ID
	}
	wb := c.blocks.Read()[winner]
	if wb == nil {
		return nil, fmt.Errorf("concur: winner block %s not published", winner.Short())
	}
	return wb, nil
}

// CTConsensus composes Figure 10 and Figure 11 differently: consensus
// built directly on the CTk1 object through the CAS reduction, proving
// Theorem 4.1's reduction is strong enough to solve consensus without
// the oracle's getToken half (every process self-validates its block
// with the object's token format — the validation concern is separated,
// which is exactly the point of the oracle construction).
type CTConsensus struct {
	ct CTk1
}

// NewCTConsensus builds consensus over a fresh CTk1 object.
func NewCTConsensus() *CTConsensus { return &CTConsensus{} }

// Propose wins by CASFromCT on K[b0].
func (c *CTConsensus) Propose(proc int, payload []byte) (*core.Block, error) {
	b := core.NewBlock(core.GenesisID, 1, proc, 0, payload)
	b = b.WithToken(oracle.TokenName(core.GenesisID))
	if old := CASFromCT(&c.ct, b); old != nil {
		return old[0], nil
	}
	// Swap succeeded: our block is the decision.
	set := c.ct.K(core.GenesisID)
	if len(set) != 1 {
		return nil, fmt.Errorf("concur: K[b0] has %d elements after successful CAS", len(set))
	}
	return set[0], nil
}
