package concur

import "sync/atomic"

// Snapshot is a wait-free single-writer atomic snapshot object in the
// style of Afek, Attiya, Dolev, Gafni, Merritt and Shavit (the object
// the paper cites as [7], Aspnes & Herlihy's wait-free PRAM work uses
// the same construction): n single-writer registers supporting
//
//	Update(i, v): process i writes v to its register;
//	Scan():       returns an atomic view of all n registers.
//
// Wait-freedom is achieved by embedding a full view in every write: a
// scanner that observes some writer move twice can borrow that writer's
// embedded view, which is guaranteed to be a valid snapshot taken within
// the scanner's interval. The object has consensus number 1, which is
// the substance of Theorem 4.3.
type Snapshot[T any] struct {
	regs []atomic.Pointer[snapCell[T]]
}

type snapCell[T any] struct {
	val  T
	seq  uint64
	view []T // embedded snapshot taken by the writer
}

// NewSnapshot creates a snapshot object over n single-writer registers,
// all initially holding the zero value of T.
func NewSnapshot[T any](n int) *Snapshot[T] {
	return &Snapshot[T]{regs: make([]atomic.Pointer[snapCell[T]], n)}
}

// N returns the number of component registers.
func (s *Snapshot[T]) N() int { return len(s.regs) }

func (s *Snapshot[T]) collect() []*snapCell[T] {
	out := make([]*snapCell[T], len(s.regs))
	for i := range s.regs {
		out[i] = s.regs[i].Load()
	}
	return out
}

func seqOf[T any](c *snapCell[T]) uint64 {
	if c == nil {
		return 0
	}
	return c.seq
}

func valOf[T any](c *snapCell[T]) T {
	if c == nil {
		var zero T
		return zero
	}
	return c.val
}

// Scan returns an atomic view of the n registers.
func (s *Snapshot[T]) Scan() []T {
	moved := make([]int, len(s.regs))
	first := s.collect()
	for {
		second := s.collect()
		clean := true
		for i := range s.regs {
			if seqOf(first[i]) != seqOf(second[i]) {
				clean = false
				moved[i]++
				if moved[i] >= 2 && second[i] != nil && second[i].view != nil {
					// Writer i completed two updates within
					// our scan; its second embedded view was
					// taken entirely inside our interval.
					view := make([]T, len(second[i].view))
					copy(view, second[i].view)
					return view
				}
			}
		}
		if clean {
			out := make([]T, len(s.regs))
			for i, c := range second {
				out[i] = valOf(c)
			}
			return out
		}
		first = second
	}
}

// Update writes v into register i (single writer per index). The write
// embeds a fresh scan, which is what makes concurrent Scans wait-free.
func (s *Snapshot[T]) Update(i int, v T) {
	view := s.Scan()
	prev := s.regs[i].Load()
	s.regs[i].Store(&snapCell[T]{val: v, seq: seqOf(prev) + 1, view: view})
}
