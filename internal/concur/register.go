// Package concur implements the shared-memory substrate of Section 4.1
// and the paper's three wait-free constructions:
//
//   - Figure 9/10: consumeToken with k = 1 has the power of
//     Compare&Swap — a CAS object implemented *from* a consumeToken
//     object (Theorem 4.1);
//   - Figure 11: protocol A solving Consensus from the frugal oracle
//     with k = 1 (Theorem 4.2: consensus number ∞);
//   - Figure 12: the prodigal oracle's consumeToken implemented from an
//     Atomic Snapshot object (Theorem 4.3: consensus number 1).
//
// The substrate itself — atomic registers and a wait-free atomic
// snapshot in the style of Afek et al. — is built on sync/atomic only.
package concur

import "sync/atomic"

// Register is a multi-reader multi-writer atomic register holding values
// of type T. Reads and writes are linearizable (delegated to the
// machine's atomic pointer loads/stores). The zero Register holds the
// zero value of T.
type Register[T any] struct {
	p atomic.Pointer[T]
}

// Read returns the register's current value.
func (r *Register[T]) Read() T {
	if v := r.p.Load(); v != nil {
		return *v
	}
	var zero T
	return zero
}

// Write stores v.
func (r *Register[T]) Write(v T) {
	r.p.Store(&v)
}

// CAS is the Compare&Swap object of Figure 9: compare&swap(register,
// old_value, new_value) stores new_value iff the current value equals
// old_value, and in every case returns the value held at the start of
// the operation. Herlihy assigns it consensus number ∞.
type CAS[T comparable] struct {
	v atomic.Value
}

type casBox[T comparable] struct{ v T }

// CompareAndSwap implements Figure 9's pseudo-code atomically.
func (c *CAS[T]) CompareAndSwap(old, new T) (previous T) {
	for {
		cur := c.v.Load()
		var curV T
		if cur != nil {
			curV = cur.(casBox[T]).v
		}
		if curV != old {
			return curV
		}
		if cur == nil {
			// Initialize-and-swap: only one initializer wins.
			if c.v.CompareAndSwap(nil, casBox[T]{new}) {
				return curV
			}
			continue
		}
		if c.v.CompareAndSwap(cur, casBox[T]{new}) {
			return curV
		}
	}
}

// Read returns the current value without modifying it.
func (c *CAS[T]) Read() T {
	cur := c.v.Load()
	if cur == nil {
		var zero T
		return zero
	}
	return cur.(casBox[T]).v
}
