package consensus

import (
	"sort"

	"repro/internal/simnet"
)

// TOB is a sequencer-based total-order broadcast: clients submit
// payloads to a fixed sequencer (the ordering service of Hyperledger
// Fabric, Section 5.7); the sequencer assigns consecutive sequence
// numbers and broadcasts; every process delivers strictly in sequence
// order. With a correct sequencer and reliable channels this implements
// total order — which is all the Fabric mapping needs: a unique chain,
// i.e. the frugal oracle with k = 1.
type TOB struct {
	nw        *simnet.Network
	sequencer int
	nextSeq   int
	nodes     []*tobNode
	// OnDeliver runs at each process for each payload, in total order.
	OnDeliver func(proc, seq int, payload any)
}

type tobNode struct {
	t        *TOB
	id       int
	nextDlv  int
	buffered map[int]any
}

// submitMsg travels client → sequencer; orderMsg travels sequencer → all.
type (
	submitMsg struct{ Payload any }
	orderMsg  struct {
		Seq     int
		Payload any
	}
)

// NewTOB builds a total-order broadcast over nw with the given sequencer
// process.
func NewTOB(nw *simnet.Network, sequencer int) *TOB {
	t := &TOB{nw: nw, sequencer: sequencer}
	for i := 0; i < nw.N(); i++ {
		nd := &tobNode{t: t, id: i, buffered: make(map[int]any)}
		t.nodes = append(t.nodes, nd)
		id := i
		nw.AddHandler(i, func(m simnet.Message) { t.nodes[id].onMessage(m) })
	}
	return t
}

// Broadcast submits payload for total ordering on behalf of process from.
func (t *TOB) Broadcast(from int, payload any) {
	t.nw.Send(from, t.sequencer, submitMsg{Payload: payload})
}

// Sequencer returns the ordering process id.
func (t *TOB) Sequencer() int { return t.sequencer }

func (nd *tobNode) onMessage(m simnet.Message) {
	switch msg := m.Payload.(type) {
	case submitMsg:
		if nd.id != nd.t.sequencer {
			return
		}
		seq := nd.t.nextSeq
		nd.t.nextSeq++
		nd.t.nw.Broadcast(nd.id, orderMsg{Seq: seq, Payload: msg.Payload})
	case orderMsg:
		nd.buffered[msg.Seq] = msg.Payload
		nd.flush()
	}
}

func (nd *tobNode) flush() {
	for {
		p, ok := nd.buffered[nd.nextDlv]
		if !ok {
			return
		}
		delete(nd.buffered, nd.nextDlv)
		seq := nd.nextDlv
		nd.nextDlv++
		if cb := nd.t.OnDeliver; cb != nil {
			cb(nd.id, seq, p)
		}
	}
}

// Delivered reports how many payloads each process has delivered,
// sorted ascending (diagnostics for tests: all equal at quiescence).
func (t *TOB) Delivered() []int {
	out := make([]int, len(t.nodes))
	for i, nd := range t.nodes {
		out[i] = nd.nextDlv
	}
	sort.Ints(out)
	return out
}
