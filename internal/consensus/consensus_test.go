package consensus

import (
	"testing"

	"repro/internal/core"
	"repro/internal/simnet"
)

// harness runs one PBFT height over n processes and returns the decided
// blocks per process (nil where undecided).
func harness(t *testing.T, n int, behaviors map[int]Behavior, heights int) [][]*core.Block {
	t.Helper()
	sim := simnet.NewSim(42)
	nw := simnet.NewNetwork(sim, n, simnet.Synchronous{Delta: 2})
	decided := make([][]*core.Block, n)
	for i := range decided {
		decided[i] = make([]*core.Block, heights)
	}
	eng, err := NewEngine(nw, Config{
		N:         n,
		Timeout:   30,
		Behaviors: behaviors,
		Propose: func(proc, height int) *core.Block {
			return core.NewBlock(core.GenesisID, 1, proc, height, []byte{byte(proc), byte(height)})
		},
		OnDecide: func(proc, height int, b *core.Block) {
			decided[proc][height] = b
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	for h := 0; h < heights; h++ {
		eng.Start(h)
	}
	sim.RunUntilIdle()
	return decided
}

func TestPBFTAllHonestDecide(t *testing.T) {
	decided := harness(t, 4, nil, 1)
	for p := 0; p < 4; p++ {
		if decided[p][0] == nil {
			t.Fatalf("process %d undecided", p)
		}
		if decided[p][0].ID != decided[0][0].ID {
			t.Fatal("agreement violated")
		}
	}
	// Validity: the decided block is the height-0 leader's proposal.
	if decided[0][0].Creator != 0 {
		t.Fatalf("decided creator %d, want leader 0", decided[0][0].Creator)
	}
}

func TestPBFTMultipleHeights(t *testing.T) {
	decided := harness(t, 4, nil, 5)
	for h := 0; h < 5; h++ {
		for p := 0; p < 4; p++ {
			if decided[p][h] == nil {
				t.Fatalf("p%d h%d undecided", p, h)
			}
			if decided[p][h].ID != decided[0][h].ID {
				t.Fatalf("disagreement at height %d", h)
			}
		}
		// Round-robin leaders propose their own blocks.
		if decided[0][h].Creator != h%4 {
			t.Fatalf("height %d decided creator %d", h, decided[0][h].Creator)
		}
	}
}

func TestPBFTCrashedLeaderViewChange(t *testing.T) {
	// Leader of height 0 is process 0; crash it. The view change must
	// elect process 1, whose proposal gets decided by the correct
	// processes.
	decided := harness(t, 4, map[int]Behavior{0: Crashed}, 1)
	for p := 1; p < 4; p++ {
		if decided[p][0] == nil {
			t.Fatalf("process %d undecided after view change", p)
		}
		if decided[p][0].Creator != 1 {
			t.Fatalf("decided creator %d, want view-1 leader 1", decided[p][0].Creator)
		}
	}
}

func TestPBFTCrashedFollowerStillDecides(t *testing.T) {
	decided := harness(t, 4, map[int]Behavior{3: Crashed}, 2)
	for h := 0; h < 2; h++ {
		for p := 0; p < 3; p++ {
			if decided[p][h] == nil {
				t.Fatalf("p%d h%d undecided with one crashed follower", p, h)
			}
		}
	}
}

func TestPBFTEquivocatingLeaderSafety(t *testing.T) {
	// The height-0 leader equivocates. Whatever happens (a view change
	// or one proposal winning), no two correct processes may decide
	// different blocks.
	decided := harness(t, 4, map[int]Behavior{0: EquivocatingLeader}, 1)
	var ref *core.Block
	for p := 1; p < 4; p++ {
		if decided[p][0] == nil {
			continue
		}
		if ref == nil {
			ref = decided[p][0]
		} else if decided[p][0].ID != ref.ID {
			t.Fatalf("equivocation broke agreement: %s vs %s",
				decided[p][0].ID.Short(), ref.ID.Short())
		}
	}
	if ref == nil {
		t.Fatal("no correct process ever decided (liveness lost)")
	}
}

func TestPBFTTooManyFaults(t *testing.T) {
	// n=4 tolerates f=1; with 2 crashed processes the quorum of 3 is
	// unreachable: nobody must decide (safety preserved over liveness).
	decided := harness(t, 4, map[int]Behavior{2: Crashed, 3: Crashed}, 1)
	for p := 0; p < 2; p++ {
		if decided[p][0] != nil {
			t.Fatalf("process %d decided without a quorum", p)
		}
	}
}

func TestEngineConfigValidation(t *testing.T) {
	sim := simnet.NewSim(1)
	nw := simnet.NewNetwork(sim, 4, nil)
	if _, err := NewEngine(nw, Config{N: 3, Propose: func(int, int) *core.Block { return nil }}); err == nil {
		t.Fatal("size mismatch accepted")
	}
	if _, err := NewEngine(nw, Config{N: 4}); err == nil {
		t.Fatal("missing Propose accepted")
	}
}

func TestLeaderFnOverride(t *testing.T) {
	sim := simnet.NewSim(9)
	nw := simnet.NewNetwork(sim, 4, simnet.Synchronous{Delta: 2})
	decided := make([]*core.Block, 4)
	eng, err := NewEngine(nw, Config{
		N:        4,
		Timeout:  30,
		LeaderFn: func(h, v int) int { return 2 }, // fixed leader
		Propose: func(proc, height int) *core.Block {
			return core.NewBlock(core.GenesisID, 1, proc, height, []byte{byte(proc)})
		},
		OnDecide: func(proc, height int, b *core.Block) { decided[proc] = b },
	})
	if err != nil {
		t.Fatal(err)
	}
	eng.Start(0)
	sim.RunUntilIdle()
	for p, b := range decided {
		if b == nil || b.Creator != 2 {
			t.Fatalf("p%d decided %v, want proposal by fixed leader 2", p, b)
		}
	}
}

func TestQuorumAndF(t *testing.T) {
	sim := simnet.NewSim(1)
	nw := simnet.NewNetwork(sim, 7, nil)
	eng, err := NewEngine(nw, Config{N: 7, Propose: func(int, int) *core.Block { return nil }})
	if err != nil {
		t.Fatal(err)
	}
	if eng.F() != 2 || eng.Quorum() != 5 {
		t.Fatalf("f=%d quorum=%d for n=7", eng.F(), eng.Quorum())
	}
}

func TestTOBTotalOrder(t *testing.T) {
	sim := simnet.NewSim(17)
	nw := simnet.NewNetwork(sim, 4, simnet.Synchronous{Delta: 5})
	tob := NewTOB(nw, 0)
	delivered := make([][]any, 4)
	tob.OnDeliver = func(proc, seq int, payload any) {
		delivered[proc] = append(delivered[proc], payload)
	}
	for i := 0; i < 10; i++ {
		from := i % 4
		msg := i
		sim.Schedule(int64(i), func() { tob.Broadcast(from, msg) })
	}
	sim.RunUntilIdle()
	for p := 0; p < 4; p++ {
		if len(delivered[p]) != 10 {
			t.Fatalf("p%d delivered %d/10", p, len(delivered[p]))
		}
		for i := range delivered[p] {
			if delivered[p][i] != delivered[0][i] {
				t.Fatalf("total order violated at p%d index %d", p, i)
			}
		}
	}
	counts := tob.Delivered()
	if counts[0] != 10 || counts[3] != 10 {
		t.Fatalf("Delivered() = %v", counts)
	}
}

func TestTOBInOrderDespiteReordering(t *testing.T) {
	// Large delay spread: order messages arrive out of order, the
	// buffer must still deliver in sequence.
	sim := simnet.NewSim(23)
	nw := simnet.NewNetwork(sim, 3, simnet.Synchronous{Delta: 20})
	tob := NewTOB(nw, 0)
	var seqs []int
	tob.OnDeliver = func(proc, seq int, payload any) {
		if proc == 1 {
			seqs = append(seqs, seq)
		}
	}
	for i := 0; i < 20; i++ {
		msg := i
		tob.Broadcast(2, msg)
	}
	sim.RunUntilIdle()
	if len(seqs) != 20 {
		t.Fatalf("delivered %d", len(seqs))
	}
	for i, s := range seqs {
		if s != i {
			t.Fatalf("sequence gap: %v", seqs)
		}
	}
}

func TestTOBSequencerAccessor(t *testing.T) {
	sim := simnet.NewSim(1)
	nw := simnet.NewNetwork(sim, 2, nil)
	if NewTOB(nw, 1).Sequencer() != 1 {
		t.Fatal("sequencer accessor")
	}
}
