// Package consensus provides the agreement substrate used by the
// strong-prefix protocol family of Section 5 (ByzCoin, PeerCensus, Red
// Belly, Hyperledger Fabric): a PBFT-style three-phase Byzantine
// consensus engine (pre-prepare / prepare / commit, tolerating f < n/3
// Byzantine processes, with view change on leader timeout) and a
// sequencer-based total-order broadcast built on it, both running over
// the internal/simnet discrete-event network.
//
// In the paper's terms this substrate is what implements the frugal
// oracle with k = 1: exactly one proposed block per height has its token
// consumed — the decided one — so the replicated BlockTree never forks
// and Strong Prefix holds (Corollary 4.8.2: consensus is necessary for
// BT Strong Consistency, and this is the sufficient half in practice).
package consensus

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/simnet"
)

// Message kinds of the PBFT engine.
type (
	// PrePrepare is the leader's proposal for a height/view.
	PrePrepare struct {
		Height, View int
		Block        *core.Block
	}
	// Prepare echoes the proposal digest.
	Prepare struct {
		Height, View int
		ID           core.BlockID
	}
	// Commit votes to decide the digest.
	Commit struct {
		Height, View int
		ID           core.BlockID
	}
	// ViewChange asks to replace the current leader at a height.
	ViewChange struct {
		Height, NewView int
	}
)

// Behavior configures per-process fault injection.
type Behavior int

// The fault behaviors supported by the engine.
const (
	// Honest follows the protocol.
	Honest Behavior = iota
	// Crashed never sends anything.
	Crashed
	// EquivocatingLeader proposes two different blocks to the two
	// halves of the process set when it leads.
	EquivocatingLeader
)

// Config parameterizes an Engine.
type Config struct {
	// N is the number of processes; the engine tolerates f < N/3.
	N int
	// Timeout is the view-change timeout in virtual time units.
	Timeout int64
	// Behaviors maps process → fault behavior (nil: all honest).
	Behaviors map[int]Behavior
	// OnDecide runs at each process when it decides a height. The
	// engine guarantees agreement: all correct processes receive the
	// same block per height.
	OnDecide func(proc, height int, b *core.Block)
	// Propose supplies process p's proposal for a height when p leads
	// (required).
	Propose func(proc, height int) *core.Block
	// LeaderFn, if non-nil, overrides the round-robin leader policy:
	// it returns the leader of (height, view). ByzCoin uses the PoW
	// winner, PeerCensus the creator of the previous key block, Red
	// Belly a rotation within the consortium set M.
	LeaderFn func(height, view int) int
	// MaxViews bounds view changes per height (default 16): when a
	// quorum is unreachable (more than f faults) the processes stop
	// re-arming their timers after this many views, so a simulation
	// run always terminates. Safety is unaffected — the bound only
	// concedes liveness, which is unattainable in that regime anyway.
	MaxViews int
}

// Engine runs an unbounded sequence of PBFT instances (one per height)
// over a simnet network. Heights are started explicitly with Start.
type Engine struct {
	cfg   Config
	nw    *simnet.Network
	nodes []*node
	f     int
}

// node is the per-process PBFT state machine.
type node struct {
	eng  *Engine
	id   int
	beh  Behavior
	inst map[int]*instance // height → state
}

// instance is one height's state at one node.
type instance struct {
	view        int
	proposal    *core.Block
	prepares    map[int]map[core.BlockID]map[int]bool // view → id → senders
	commits     map[int]map[core.BlockID]map[int]bool
	viewchanges map[int]map[int]bool // newView → senders
	prepared    bool
	committed   bool
	committedID core.BlockID
	decided     bool
	timerView   int
	timeouts    int
	blocks      map[core.BlockID]*core.Block
}

func newInstance() *instance {
	return &instance{
		prepares:    make(map[int]map[core.BlockID]map[int]bool),
		commits:     make(map[int]map[core.BlockID]map[int]bool),
		viewchanges: make(map[int]map[int]bool),
		blocks:      make(map[core.BlockID]*core.Block),
	}
}

// NewEngine builds the engine over nw (which must have N processes).
func NewEngine(nw *simnet.Network, cfg Config) (*Engine, error) {
	if cfg.N != nw.N() {
		return nil, fmt.Errorf("consensus: config N=%d, network has %d", cfg.N, nw.N())
	}
	if cfg.Propose == nil {
		return nil, fmt.Errorf("consensus: Propose callback required")
	}
	if cfg.Timeout <= 0 {
		cfg.Timeout = 50
	}
	if cfg.MaxViews <= 0 {
		cfg.MaxViews = 16
	}
	e := &Engine{cfg: cfg, nw: nw, f: (cfg.N - 1) / 3}
	for i := 0; i < cfg.N; i++ {
		nd := &node{eng: e, id: i, beh: cfg.Behaviors[i], inst: make(map[int]*instance)}
		e.nodes = append(e.nodes, nd)
		id := i
		nw.AddHandler(i, func(m simnet.Message) { e.nodes[id].onMessage(m) })
	}
	return e, nil
}

// F returns the tolerated fault count.
func (e *Engine) F() int { return e.f }

// Leader returns the leader of (height, view): the configured policy, or
// round-robin by default.
func (e *Engine) Leader(height, view int) int {
	if e.cfg.LeaderFn != nil {
		return e.cfg.LeaderFn(height, view) % e.cfg.N
	}
	return (height + view) % e.cfg.N
}

// Quorum returns the 2f+1 quorum size.
func (e *Engine) Quorum() int { return 2*e.f + 1 }

// Start launches the instance for height at every process: the leader
// proposes, everyone arms its view-change timer.
func (e *Engine) Start(height int) {
	for _, nd := range e.nodes {
		nd.start(height)
	}
}

func (nd *node) get(h int) *instance {
	in, ok := nd.inst[h]
	if !ok {
		in = newInstance()
		nd.inst[h] = in
	}
	return in
}

func (nd *node) start(height int) {
	if nd.beh == Crashed {
		return
	}
	in := nd.get(height)
	nd.armTimer(height, in.view)
	leader := nd.eng.Leader(height, in.view)
	if leader == nd.id {
		nd.lead(height, in.view)
	}
}

func (nd *node) lead(height, view int) {
	b := nd.eng.cfg.Propose(nd.id, height)
	if b == nil {
		return
	}
	if nd.beh == EquivocatingLeader {
		// Two conflicting proposals, one per half. Safety must
		// still hold (no two correct processes decide differently);
		// liveness recovers via view change.
		alt := core.NewBlock(b.Parent, b.Height, nd.id, b.Round+1_000_000, b.Payload)
		alt = alt.WithToken(b.Token)
		for to := 0; to < nd.eng.cfg.N; to++ {
			prop := b
			if to%2 == 1 {
				prop = alt
			}
			nd.eng.nw.Send(nd.id, to, PrePrepare{Height: height, View: view, Block: prop})
		}
		return
	}
	nd.eng.nw.Broadcast(nd.id, PrePrepare{Height: height, View: view, Block: b})
}

func (nd *node) armTimer(height, view int) {
	in := nd.get(height)
	in.timerView = view
	nd.eng.nw.Sim().Schedule(nd.eng.cfg.Timeout, func() {
		nd.onTimeout(height, view)
	})
}

func (nd *node) onTimeout(height, view int) {
	if nd.beh == Crashed {
		return
	}
	in := nd.get(height)
	if in.decided || in.view != view {
		return
	}
	in.timeouts++
	if in.timeouts > nd.eng.cfg.MaxViews {
		return // give up on liveness for this height (quorum unreachable)
	}
	// Ask to move to view+1.
	nd.eng.nw.Broadcast(nd.id, ViewChange{Height: height, NewView: view + 1})
	nd.armTimer(height, view)
}

func (nd *node) onMessage(m simnet.Message) {
	if nd.beh == Crashed {
		return
	}
	switch msg := m.Payload.(type) {
	case PrePrepare:
		nd.onPrePrepare(m.From, msg)
	case Prepare:
		nd.onVote(m.From, msg.Height, msg.View, msg.ID, true)
	case Commit:
		nd.onVote(m.From, msg.Height, msg.View, msg.ID, false)
	case ViewChange:
		nd.onViewChange(m.From, msg)
	}
}

func (nd *node) onPrePrepare(from int, msg PrePrepare) {
	in := nd.get(msg.Height)
	if in.decided || msg.View != in.view || from != nd.eng.Leader(msg.Height, msg.View) {
		return
	}
	if msg.Block == nil {
		return
	}
	if in.proposal != nil && in.proposal.ID != msg.Block.ID {
		// Equivocation observed at this node: keep the first.
		return
	}
	in.proposal = msg.Block
	in.blocks[msg.Block.ID] = msg.Block
	// A commit quorum may have been reached before the proposal body
	// arrived here; complete the deferred decision now.
	if in.committed && !in.decided && in.committedID == msg.Block.ID {
		nd.decide(msg.Height, msg.Block.ID)
		return
	}
	nd.eng.nw.Broadcast(nd.id, Prepare{Height: msg.Height, View: msg.View, ID: msg.Block.ID})
}

func votes(m map[int]map[core.BlockID]map[int]bool, view int, id core.BlockID) map[int]bool {
	vm, ok := m[view]
	if !ok {
		vm = make(map[core.BlockID]map[int]bool)
		m[view] = vm
	}
	sm, ok := vm[id]
	if !ok {
		sm = make(map[int]bool)
		vm[id] = sm
	}
	return sm
}

func (nd *node) onVote(from, height, view int, id core.BlockID, prepare bool) {
	in := nd.get(height)
	if in.decided || view != in.view {
		return
	}
	if prepare {
		sm := votes(in.prepares, view, id)
		sm[from] = true
		if !in.prepared && len(sm) >= nd.eng.Quorum() {
			in.prepared = true
			nd.eng.nw.Broadcast(nd.id, Commit{Height: height, View: view, ID: id})
		}
		return
	}
	sm := votes(in.commits, view, id)
	sm[from] = true
	if !in.committed && len(sm) >= nd.eng.Quorum() {
		in.committed = true
		in.committedID = id
		nd.decide(height, id)
	}
}

func (nd *node) decide(height int, id core.BlockID) {
	in := nd.get(height)
	if in.decided {
		return
	}
	b := in.blocks[id]
	if b == nil && in.proposal != nil && in.proposal.ID == id {
		b = in.proposal
	}
	if b == nil {
		// Digest decided before the proposal arrived here; wait for
		// re-delivery. Buffer by deferring the decision: mark via
		// committed and retry on the proposal's arrival. For the
		// simulator's reliable channels the proposal always
		// precedes the quorum at the leader's recipients, so this
		// path is (deliberately) conservative.
		return
	}
	in.decided = true
	if cb := nd.eng.cfg.OnDecide; cb != nil {
		cb(nd.id, height, b)
	}
}

func (nd *node) onViewChange(from int, msg ViewChange) {
	in := nd.get(msg.Height)
	if in.decided || msg.NewView <= in.view {
		return
	}
	if in.viewchanges[msg.NewView] == nil {
		in.viewchanges[msg.NewView] = make(map[int]bool)
	}
	in.viewchanges[msg.NewView][from] = true
	if len(in.viewchanges[msg.NewView]) >= nd.eng.Quorum() {
		in.view = msg.NewView
		in.prepared = false
		in.committed = false
		in.proposal = nil
		nd.armTimer(msg.Height, in.view)
		if nd.eng.Leader(msg.Height, in.view) == nd.id {
			nd.lead(msg.Height, in.view)
		}
	}
}

// Decided reports whether process p decided height h, and the block.
func (e *Engine) Decided(p, h int) (*core.Block, bool) {
	in, ok := e.nodes[p].inst[h]
	if !ok || !in.decided {
		return nil, false
	}
	// The decided block is the proposal matching the committed digest.
	for _, sm := range in.commits {
		for id := range sm {
			if b := in.blocks[id]; b != nil && in.decided {
				return b, true
			}
		}
	}
	return in.proposal, in.decided
}
