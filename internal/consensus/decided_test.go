package consensus

import (
	"testing"

	"repro/internal/core"
	"repro/internal/simnet"
)

func TestDecidedAccessor(t *testing.T) {
	sim := simnet.NewSim(31)
	nw := simnet.NewNetwork(sim, 4, simnet.Synchronous{Delta: 2})
	eng, err := NewEngine(nw, Config{
		N:       4,
		Timeout: 30,
		Propose: func(proc, height int) *core.Block {
			return core.NewBlock(core.GenesisID, 1, proc, height, []byte{byte(height)})
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := eng.Decided(0, 0); ok {
		t.Fatal("decided before start")
	}
	eng.Start(0)
	sim.RunUntilIdle()
	var ref *core.Block
	for p := 0; p < 4; p++ {
		b, ok := eng.Decided(p, 0)
		if !ok || b == nil {
			t.Fatalf("process %d not decided", p)
		}
		if ref == nil {
			ref = b
		} else if b.ID != ref.ID {
			t.Fatal("Decided disagrees across processes")
		}
	}
	if _, ok := eng.Decided(0, 5); ok {
		t.Fatal("unknown height reported decided")
	}
}

func TestEngineDefaultTimeoutAndMaxViews(t *testing.T) {
	sim := simnet.NewSim(33)
	nw := simnet.NewNetwork(sim, 4, nil)
	eng, err := NewEngine(nw, Config{
		N:       4,
		Propose: func(int, int) *core.Block { return nil },
	})
	if err != nil {
		t.Fatal(err)
	}
	if eng.cfg.Timeout != 50 || eng.cfg.MaxViews != 16 {
		t.Fatalf("defaults %d/%d", eng.cfg.Timeout, eng.cfg.MaxViews)
	}
}

func TestNilProposalStallsSafely(t *testing.T) {
	// A leader whose Propose returns nil (e.g. outside the consortium)
	// must not decide anything; the view change rotates onward and the
	// run terminates (MaxViews bound).
	sim := simnet.NewSim(35)
	nw := simnet.NewNetwork(sim, 4, simnet.Synchronous{Delta: 2})
	decided := 0
	eng, err := NewEngine(nw, Config{
		N:        4,
		Timeout:  20,
		MaxViews: 3,
		Propose:  func(proc, height int) *core.Block { return nil },
		OnDecide: func(proc, height int, b *core.Block) { decided++ },
	})
	if err != nil {
		t.Fatal(err)
	}
	eng.Start(0)
	sim.RunUntilIdle() // must terminate despite never deciding
	if decided != 0 {
		t.Fatalf("decided %d with nil proposals", decided)
	}
}
