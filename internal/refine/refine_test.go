package refine

import (
	"sync"
	"testing"

	"repro/internal/consistency"
	"repro/internal/core"
	"repro/internal/history"
	"repro/internal/oracle"
)

func newBT(k int, seed uint64, rec *history.Recorder) *BT {
	return New(Config{
		Oracle:   oracle.NewFrugal(k, nil, core.WellFormed{}, seed),
		Recorder: rec,
	})
}

func TestReadInitial(t *testing.T) {
	bt := newBT(1, 1, nil)
	c := bt.Read(0)
	if c.Height() != 0 || !c.Head().IsGenesis() {
		t.Fatalf("initial read %v", c)
	}
}

func TestAppendExtendsSelectedChain(t *testing.T) {
	bt := newBT(1, 2, nil)
	var prev core.Chain = bt.Read(0)
	for i := 0; i < 5; i++ {
		b, ok := bt.Append(0, 0.9, i, []byte{byte(i)})
		if !ok || b == nil {
			t.Fatalf("append %d failed", i)
		}
		cur := bt.Read(0)
		if cur.Height() != i+1 {
			t.Fatalf("height %d after %d appends", cur.Height(), i+1)
		}
		if !prev.Prefix(cur) {
			t.Fatal("chain did not extend the previous read")
		}
		prev = cur
	}
	if bt.Tree().MaxForkDegree() != 1 {
		t.Fatal("sequential appends forked the tree")
	}
}

func TestAppendRecordsHistory(t *testing.T) {
	rec := history.NewRecorder(2, nil)
	bt := newBT(1, 3, rec)
	bt.Append(0, 0.9, 1, []byte("a"))
	bt.Read(1)
	h := rec.Snapshot()
	if len(h.SuccessfulAppends()) != 1 || len(h.Reads()) != 1 {
		t.Fatalf("recorded %d appends, %d reads", len(h.SuccessfulAppends()), len(h.Reads()))
	}
	ap := h.SuccessfulAppends()[0]
	if ap.Block == nil || ap.Block.ID == "pending" {
		t.Fatal("final validated block not recorded")
	}
	// Block Validity must hold on the recorded history.
	chk := consistency.NewChecker(nil, core.WellFormed{})
	if rep := chk.BlockValidity(h); !rep.OK {
		t.Fatalf("block validity: %v", rep.Violations)
	}
}

func TestAppendFailsWhenMiningBudgetExhausted(t *testing.T) {
	// Merit 0 never yields a token: the append must terminate with
	// false after MaxMine attempts.
	bt := New(Config{
		Oracle:  oracle.NewFrugal(1, nil, core.WellFormed{}, 4),
		MaxMine: 16,
	})
	b, ok := bt.Append(0, 0, 0, nil)
	if ok || b != nil {
		t.Fatal("merit-0 append succeeded")
	}
	if bt.Read(0).Height() != 0 {
		t.Fatal("failed append changed the tree")
	}
}

func TestConcurrentAppendsLinearChain(t *testing.T) {
	// With k=1 and the atomic refined append, concurrent appenders
	// always extend the selected head: the tree remains a chain.
	rec := history.NewRecorder(4, nil)
	bt := newBT(1, 5, rec)
	var wg sync.WaitGroup
	for p := 0; p < 4; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; i < 10; i++ {
				bt.Append(p, 0.9, i, []byte{byte(p), byte(i)})
				bt.Read(p)
			}
		}(p)
	}
	wg.Wait()
	tree := bt.Tree()
	if tree.MaxForkDegree() > 1 {
		t.Fatalf("fork degree %d with atomic appends", tree.MaxForkDegree())
	}
	h := rec.Snapshot()
	chk := consistency.NewChecker(nil, core.WellFormed{})
	sc, ec := chk.Classify(h)
	if !sc.OK || !ec.OK {
		t.Fatalf("shared-object history not SC/EC: %s %s", sc, ec)
	}
	if rep := chk.KForkCoherence(h, 1); !rep.OK {
		t.Fatalf("k=1 coherence: %v", rep.Violations)
	}
}

func TestNewPanicsWithoutOracle(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("nil oracle accepted")
		}
	}()
	New(Config{})
}

func TestAccessors(t *testing.T) {
	o := oracle.NewFrugal(1, nil, nil, 6)
	bt := New(Config{Oracle: o, Selector: core.GHOST{}})
	if bt.Oracle() != o {
		t.Fatal("oracle accessor")
	}
	if bt.Selector().Name() != "ghost" {
		t.Fatal("selector accessor")
	}
}

func TestHierarchyShape(t *testing.T) {
	nodes, edges := Hierarchy(3)
	if len(nodes) != 5 {
		t.Fatalf("%d nodes", len(nodes))
	}
	if len(edges) != 6 {
		t.Fatalf("%d edges", len(edges))
	}
	// Every edge endpoint is a node.
	nodeSet := map[string]bool{}
	feasible := 0
	for _, n := range nodes {
		nodeSet[n.Name()] = true
		if n.Feasible {
			feasible++
		}
	}
	if feasible != 3 {
		t.Fatalf("%d feasible nodes, want 3 (Figure 14)", feasible)
	}
	for _, e := range edges {
		if !nodeSet[e.From.Name()] || !nodeSet[e.To.Name()] {
			t.Fatalf("edge %s→%s has unknown endpoint", e.From.Name(), e.To.Name())
		}
		if e.Theorem == "" {
			t.Fatal("edge without justification")
		}
	}
	// SC edges flow into EC nodes, never the reverse.
	for _, e := range edges {
		if e.From.Criterion == "EC" && e.To.Criterion == "SC" {
			t.Fatal("EC ⊆ SC edge present")
		}
	}
}

func TestHierarchyDefaultK(t *testing.T) {
	nodes, _ := Hierarchy(0) // clamps to 2
	found := false
	for _, n := range nodes {
		if n.K == 2 {
			found = true
		}
	}
	if !found {
		t.Fatal("k>1 representative missing")
	}
}

func TestTypologyName(t *testing.T) {
	p := Typology{Criterion: "EC", K: oracle.Unbounded}
	if p.Name() != "R(BT-ADT_EC, ΘP)" {
		t.Fatalf("name %q", p.Name())
	}
	f := Typology{Criterion: "SC", K: 1}
	if f.Name() != "R(BT-ADT_SC, ΘF,k=1)" {
		t.Fatalf("name %q", f.Name())
	}
}
