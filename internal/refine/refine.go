// Package refine implements the oracle-based construction of Section 3.3:
// the refinement R(BT-ADT, Θ) in which the BT-ADT's append(b) operation
// is refined into a getToken* / consumeToken sequence against a token
// oracle, followed by the concatenation of the validated block to the
// selected chain — the three occurring atomically (Definition 3.7,
// Figure 7). It also encodes the hierarchy of refined types of Section
// 3.4 (Figures 8 and 14).
package refine

import (
	"fmt"
	"sync"

	"repro/internal/core"
	"repro/internal/history"
	"repro/internal/oracle"
	"repro/internal/tape"
)

// BT is a refined BlockTree object R(BT-ADT, Θ): a shared BlockTree whose
// append goes through the token oracle. It is safe for concurrent use;
// per Definition 3.7 the token acquisition, consumption and concatenation
// of one append are atomic with respect to each other and to reads.
type BT struct {
	mu   sync.Mutex
	tree *core.Tree
	f    core.Selector
	o    oracle.Oracle
	// rec, when non-nil, records every operation into a history.
	rec *history.Recorder
	// maxMine bounds the getToken* loop per append (finite runs).
	maxMine int
}

// Config parameterizes a refined BlockTree.
type Config struct {
	// Selector is f ∈ F (nil means longest chain).
	Selector core.Selector
	// Oracle is the Θ instance (required).
	Oracle oracle.Oracle
	// Recorder, if non-nil, receives invocation/response events.
	Recorder *history.Recorder
	// MaxMine bounds getToken attempts per append; 0 means 1<<16.
	MaxMine int
}

// New builds a refined BlockTree over a fresh tree containing b0.
func New(cfg Config) *BT {
	if cfg.Oracle == nil {
		panic("refine: nil oracle")
	}
	f := cfg.Selector
	if f == nil {
		f = core.LongestChain{}
	}
	mm := cfg.MaxMine
	if mm <= 0 {
		mm = 1 << 16
	}
	return &BT{tree: core.NewTree(), f: f, o: cfg.Oracle, rec: cfg.Recorder, maxMine: mm}
}

// Read implements the BT-ADT read(): it returns {b0}⌢f(bt).
func (bt *BT) Read(proc int) core.Chain {
	var op *history.Op
	if bt.rec != nil {
		op = bt.rec.InvokeRead(proc)
	}
	bt.mu.Lock()
	c := bt.f.Select(bt.tree)
	bt.mu.Unlock()
	if bt.rec != nil {
		bt.rec.RespondRead(op, c)
	}
	return c
}

// Append implements the refined append(b) of Definition 3.7 for a process
// with the given merit: select the chain head b_h = last_block(f(bt)),
// repeat getToken(b_h, b) until a token is granted (bounded by MaxMine),
// consume the token, and concatenate the validated block. It returns the
// final block and whether the append succeeded (δ′'s evaluate function:
// true iff the validated block ended up in K and in the tree).
func (bt *BT) Append(proc int, m tape.Merit, round int, payload []byte) (*core.Block, bool) {
	var op *history.Op
	if bt.rec != nil {
		// Record the invocation with a placeholder carrying the
		// payload; the final validated block replaces it at
		// response time.
		op = bt.rec.InvokeAppend(proc, &core.Block{ID: "pending", Payload: payload})
	}
	bt.mu.Lock()
	// Head-only fast path: mining needs the selected head, not the
	// materialized chain.
	parent := core.HeadOf(bt.f, bt.tree)
	var validated *core.Block
	for i := 0; i < bt.maxMine; i++ {
		if b, ok := bt.o.GetToken(m, parent, proc, round, payload); ok {
			validated = b
			break
		}
	}
	ok := false
	if validated != nil {
		if set, consumed := bt.o.ConsumeToken(validated); consumed {
			_ = set
			if err := bt.tree.Attach(validated); err == nil {
				ok = true
			}
		}
	}
	bt.mu.Unlock()
	if bt.rec != nil {
		bt.rec.RespondAppend(op, ok, validated)
	}
	return validated, ok
}

// Tree returns a snapshot clone of the underlying BlockTree.
func (bt *BT) Tree() *core.Tree {
	bt.mu.Lock()
	defer bt.mu.Unlock()
	return bt.tree.Clone()
}

// Oracle exposes the Θ instance (for stats).
func (bt *BT) Oracle() oracle.Oracle { return bt.o }

// Selector exposes f.
func (bt *BT) Selector() core.Selector { return bt.f }

// Typology names one node of the hierarchy of Section 3.4.
type Typology struct {
	// Criterion is "SC" or "EC".
	Criterion string
	// K is the frugal bound; oracle.Unbounded denotes Θ_P.
	K int
	// Feasible reports implementability in a message-passing system
	// (Figure 14: SC with forks is grayed out by Theorem 4.8).
	Feasible bool
}

// Name renders e.g. "R(BT-ADT_SC, ΘF,k=1)".
func (t Typology) Name() string {
	if t.K == oracle.Unbounded {
		return fmt.Sprintf("R(BT-ADT_%s, ΘP)", t.Criterion)
	}
	return fmt.Sprintf("R(BT-ADT_%s, ΘF,k=%d)", t.Criterion, t.K)
}

// Edge is one inclusion of the hierarchy: the history set of From is
// contained in that of To, justified by the named theorem.
type Edge struct {
	From, To Typology
	Theorem  string
}

// Hierarchy returns the nodes and inclusion edges of Figure 8 (kRepr > 1
// stands for the generic k > 1 node; the paper draws it with an
// unspecified k). Theorem 4.8 marks the message-passing-infeasible nodes
// removed in Figure 14.
func Hierarchy(kRepr int) (nodes []Typology, edges []Edge) {
	if kRepr <= 1 {
		kRepr = 2
	}
	scK1 := Typology{"SC", 1, true}
	scKn := Typology{"SC", kRepr, false}           // removed by Thm 4.8
	scP := Typology{"SC", oracle.Unbounded, false} // removed by Thm 4.8
	ecKn := Typology{"EC", kRepr, true}
	ecP := Typology{"EC", oracle.Unbounded, true}
	nodes = []Typology{scK1, scKn, scP, ecKn, ecP}
	edges = []Edge{
		{scK1, scKn, "Theorem 3.4"},           // k=1 ⊆ k>1 (frugal monotone in k)
		{scKn, scP, "Theorem 3.3"},            // frugal ⊆ prodigal
		{scK1, ecKn, "Corollary 3.4.1 + 3.4"}, // SC ⊆ EC
		{scKn, ecKn, "Corollary 3.4.1"},
		{scP, ecP, "Corollary 3.4.1"},
		{ecKn, ecP, "Theorem 3.3"},
	}
	return nodes, edges
}
