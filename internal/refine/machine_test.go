package refine

import (
	"testing"

	"repro/internal/adt"
	"repro/internal/core"
	"repro/internal/oracle"
)

func TestRefMachineAppendRead(t *testing.T) {
	m := NewMachine(1, nil, nil, 11)
	word := []adt.Input{
		RefReadInput{},
		RefAppendInput{Merit: 0.9, Creator: 0, Round: 1, Payload: []byte("a")},
		RefReadInput{},
		RefAppendInput{Merit: 0.9, Creator: 1, Round: 2, Payload: []byte("b")},
		RefReadInput{},
	}
	_, outs := m.Run(word)
	if c := outs[0].(adt.ChainOutput).Chain; c.Height() != 0 {
		t.Fatalf("initial read %v", c)
	}
	if outs[1].(adt.BoolOutput) != true || outs[3].(adt.BoolOutput) != true {
		t.Fatal("appends failed")
	}
	c1 := outs[2].(adt.ChainOutput).Chain
	c2 := outs[4].(adt.ChainOutput).Chain
	if c1.Height() != 1 || c2.Height() != 2 || !c1.Prefix(c2) {
		t.Fatalf("reads %v then %v", c1, c2)
	}
}

func TestRefMachineWordAdmissible(t *testing.T) {
	m := NewMachine(2, nil, nil, 13)
	word := []adt.Input{
		RefAppendInput{Merit: 0.8, Creator: 0, Round: 1, Payload: []byte("x")},
		RefReadInput{},
		RefAppendInput{Merit: 0.8, Creator: 1, Round: 2, Payload: []byte("y")},
		RefReadInput{},
	}
	_, outs := m.Run(word)
	var seq []adt.Operation[RefState]
	for i := range word {
		seq = append(seq, adt.Operation[RefState]{In: word[i], Out: outs[i]})
	}
	if ok, at, why := m.Admissible(seq); !ok {
		t.Fatalf("machine's own word inadmissible at %d: %s", at, why)
	}
	// Tampering with a recorded output must break admissibility.
	seq[1].Out = adt.ChainOutput{Chain: core.GenesisChain()}
	if ok, _, _ := m.Admissible(seq); ok {
		t.Fatal("tampered word accepted")
	}
}

func TestRefMachineMeritZeroAppendFails(t *testing.T) {
	m := NewMachine(1, nil, nil, 17)
	st := m.Initial()
	st, out := m.Step(st, RefAppendInput{Merit: 0, Creator: 0, Round: 0, MaxMine: 32})
	if out.(adt.BoolOutput) != false {
		t.Fatal("merit-0 append succeeded")
	}
	if st.Tree.Len() != 1 {
		t.Fatal("failed append grew the tree")
	}
	// The tape was still popped MaxMine times (the τ_a* applications
	// have the side effect of consuming cells).
	if st.Theta.Pos[0] != 32 {
		t.Fatalf("tape position %d, want 32", st.Theta.Pos[0])
	}
}

func TestRefMachineMatchesObject(t *testing.T) {
	// The machine and the concurrent BT object, driven with the same
	// seed and schedule, must produce identical chains.
	const seed = 19
	m := NewMachine(1, core.LongestChain{}, nil, seed)
	obj := New(Config{Oracle: oracle.NewFrugal(1, nil, core.WellFormed{}, seed)})

	st := m.Initial()
	for i := 0; i < 8; i++ {
		var mOut adt.Output
		st, mOut = m.Step(st, RefAppendInput{Merit: 0.6, Creator: i % 2, Round: i, Payload: []byte{byte(i)}})
		_, oOK := obj.Append(i%2, 0.6, i, []byte{byte(i)})
		if bool(mOut.(adt.BoolOutput)) != oOK {
			t.Fatalf("step %d: machine ok=%v object ok=%v", i, mOut, oOK)
		}
	}
	var mChain adt.Output
	_, mChain = m.Step(st, RefReadInput{})
	oChain := obj.Read(0)
	if !mChain.(adt.ChainOutput).Chain.Equal(oChain) {
		t.Fatalf("machine chain %v, object chain %v", mChain.(adt.ChainOutput).Chain, oChain)
	}
}

func TestRefMachineK1NeverForks(t *testing.T) {
	m := NewMachine(1, nil, nil, 23)
	st := m.Initial()
	for i := 0; i < 12; i++ {
		st, _ = m.Step(st, RefAppendInput{Merit: 0.7, Creator: i % 3, Round: i, Payload: []byte{byte(i)}})
	}
	if st.Tree.MaxForkDegree() > 1 {
		t.Fatalf("k=1 machine forked: %v", st.Tree)
	}
}

func TestRefMachineStepPure(t *testing.T) {
	m := NewMachine(1, nil, nil, 29)
	st := m.Initial()
	m.Step(st, RefAppendInput{Merit: 1, Creator: 0, Round: 0})
	if st.Tree.Len() != 1 || len(st.Theta.Pos) != 0 {
		t.Fatal("Step mutated its input state")
	}
}
