package refine

import (
	"fmt"

	"repro/internal/adt"
	"repro/internal/core"
	"repro/internal/oracle"
	"repro/internal/tape"
)

// This file instantiates the refinement R(BT-ADT, Θ_F) of Definition 3.7
// literally as an adt.Machine: the combined state ξ′ = ξ ∪ ξ_Θ holds
// both the BlockTree and the oracle state; the input alphabet is
// A′ = A ∪ A_Θ; and the refined append(b) input performs τ_b ∘ τ_a* —
// the repeated application of the getToken transition until a token is
// granted, followed by the consumeToken transition and the
// concatenation — in one machine step, exactly as the definition says
// the three occur atomically. The machine form exists alongside the
// concurrent object (BT in refine.go) so that recorded words can be
// replayed for L(R(BT-ADT, Θ)) membership, the same way the Figure 1
// and Figure 6 experiments replay their machines.

// RefState is the combined abstract state ξ′.
type RefState struct {
	Theta oracle.ThetaState
	Tree  *core.Tree
	F     core.Selector
}

// RefAppendInput is the refined append: the process's merit drives the
// getToken* loop; Creator/Round/Payload shape the validated block.
type RefAppendInput struct {
	Merit   tape.Merit
	Creator int
	Round   int
	Payload []byte
	// MaxMine bounds the τ_a* repetition for finite executions
	// (0 means 4096).
	MaxMine int
}

// Op returns "append".
func (r RefAppendInput) Op() string { return "append" }

// Key distinguishes refined append symbols.
func (r RefAppendInput) Key() string {
	return fmt.Sprintf("append(α=%g,p%d,r%d)", float64(r.Merit), r.Creator, r.Round)
}

// RefReadInput is the refined read().
type RefReadInput struct{}

// Op returns "read".
func (RefReadInput) Op() string { return "read" }

// Key returns "read()".
func (RefReadInput) Key() string { return "read()" }

// NewMachine builds R(BT-ADT, Θ_F,k) as a sequential machine over tapes
// seeded with seed. P defaults to WellFormed (modulo token stamping), f
// to the longest chain.
func NewMachine(k int, f core.Selector, p core.Predicate, seed uint64) *adt.Machine[RefState] {
	if f == nil {
		f = core.LongestChain{}
	}
	theta := oracle.NewThetaMachine(k, nil, orPredicate(p), seed)
	return &adt.Machine[RefState]{
		Name: fmt.Sprintf("R(BT-ADT, ΘF,k=%d)", k),
		Initial: func() RefState {
			return RefState{Theta: theta.Initial(), Tree: core.NewTree(), F: f}
		},
		Step: func(st RefState, in adt.Input) (RefState, adt.Output) {
			switch sym := in.(type) {
			case RefReadInput:
				return st, adt.ChainOutput{Chain: st.F.Select(st.Tree)}
			case RefAppendInput:
				maxMine := sym.MaxMine
				if maxMine <= 0 {
					maxMine = 4096
				}
				parent := st.F.Select(st.Tree).Head()
				// τ_a*: repeat getToken until δ_a yields a
				// validated block.
				ts := st.Theta
				var validated *core.Block
				for i := 0; i < maxMine; i++ {
					var out adt.Output
					ts, out = theta.Step(ts, oracle.GetTokenInput{
						Merit:   sym.Merit,
						Parent:  parent,
						Creator: sym.Creator,
						Round:   sym.Round,
						Payload: sym.Payload,
					})
					if tok := out.(oracle.TokenOutput); tok.Block != nil {
						validated = tok.Block
						break
					}
				}
				if validated == nil {
					return RefState{Theta: ts, Tree: st.Tree, F: st.F}, adt.BoolOutput(false)
				}
				// τ_b: consume the token; evaluate() is true iff
				// the validated block entered K.
				var out adt.Output
				ts, out = theta.Step(ts, oracle.ConsumeTokenInput{Block: validated})
				inK := false
				for _, b := range out.(oracle.KSetOutput).Set {
					if b.ID == validated.ID {
						inK = true
					}
				}
				if !inK {
					return RefState{Theta: ts, Tree: st.Tree, F: st.F}, adt.BoolOutput(false)
				}
				// Concatenation: {b0}⌢f(bt)|⌢h {b_ℓ}.
				nt := st.Tree.Clone()
				if err := nt.Attach(validated); err != nil {
					return RefState{Theta: ts, Tree: st.Tree, F: st.F}, adt.BoolOutput(false)
				}
				return RefState{Theta: ts, Tree: nt, F: st.F}, adt.BoolOutput(true)
			default:
				panic(fmt.Sprintf("refine: machine does not accept input %T", in))
			}
		},
		Equal: func(a, b RefState) bool {
			return a.F.Select(a.Tree).Equal(b.F.Select(b.Tree)) && a.Tree.Len() == b.Tree.Len()
		},
	}
}

func orPredicate(p core.Predicate) core.Predicate {
	if p == nil {
		return core.WellFormed{}
	}
	return p
}
