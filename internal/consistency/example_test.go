package consistency_test

import (
	"fmt"

	"repro/internal/consistency"
	"repro/internal/core"
	"repro/internal/history"
)

// Example_classify builds the Figure 3 shape by hand — two processes
// briefly on different branches, converging — and classifies it: Strong
// Consistency fails on the incomparable early reads, Eventual
// Consistency holds because the divergence resolves.
func Example_classify() {
	g := core.Genesis()
	a1 := core.NewBlock(g.ID, 1, 0, 1, []byte("a1"))
	a2 := core.NewBlock(a1.ID, 2, 0, 2, []byte("a2"))
	b1 := core.NewBlock(g.ID, 1, 1, 3, []byte("b1"))
	chainA := core.GenesisChain().Append(a1).Append(a2)
	chainB := core.GenesisChain().Append(b1)

	rec := history.NewRecorder(2, nil)
	for _, blk := range []*core.Block{a1, a2, b1} {
		rec.Append(blk.Creator, blk, true)
	}
	rec.Read(1, chainB)     // p1 on the losing branch
	rec.Read(0, chainA[:2]) // p0 on the winning branch — incomparable
	rec.Read(1, chainA[:2]) // p1 adopts the winner
	rec.Read(0, chainA)     // growth continues
	rec.Read(1, chainA)
	rec.Read(0, chainA)

	chk := consistency.NewChecker(core.LengthScore{}, nil)
	sc, ec := chk.Classify(rec.Snapshot())
	fmt.Println(sc)
	fmt.Println(ec)
	// Output:
	// SC: VIOLATED (StrongPrefix)
	// EC: HOLDS
}

// ExampleChecker_KForkCoherence shows Definition 3.9: two successful
// appends consuming the same token violate 1-fork coherence but not
// 2-fork coherence.
func ExampleChecker_KForkCoherence() {
	g := core.Genesis()
	tok := "tkn(b0)"
	rec := history.NewRecorder(2, nil)
	rec.Append(0, core.NewBlock(g.ID, 1, 0, 1, nil).WithToken(tok), true)
	rec.Append(1, core.NewBlock(g.ID, 1, 1, 2, nil).WithToken(tok), true)

	chk := consistency.NewChecker(nil, nil)
	h := rec.Snapshot()
	fmt.Println(chk.KForkCoherence(h, 1).OK)
	fmt.Println(chk.KForkCoherence(h, 2).OK)
	// Output:
	// false
	// true
}
