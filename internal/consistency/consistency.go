// Package consistency implements the paper's consistency criteria as
// executable checkers over recorded histories:
//
//   - the four properties of BT Strong Consistency (Definition 3.2):
//     Block Validity, Local Monotonic Read, Strong Prefix, Ever Growing
//     Tree;
//   - the Eventual Prefix property (Definition 3.3) and BT Eventual
//     Consistency (Definition 3.4);
//   - k-Fork Coherence (Definition 3.9);
//   - the Update Agreement properties R1–R3 (Definition 4.3) and the
//     Light Reliable Communication properties (Definition 4.4).
//
// The paper's liveness-flavoured properties quantify over infinite
// histories; a checker sees a finite prefix. The finitary readings used
// here are documented on each checker and in DESIGN.md: safety properties
// (Strong Prefix, Local Monotonic Read, Block Validity, k-Fork Coherence)
// are checked exactly, while Ever Growing Tree and Eventual Prefix
// exclude a configurable trailing "horizon" of reads for which the
// history contains no future.
//
// The checkers are single-pass over shared artifacts: one analysis of a
// history (the read list, one score per distinct returned chain, the
// earliest-append index per block, the liveness tail window) is computed
// once and reused by every property, and Classify shares the property
// reports common to both criteria instead of recomputing them per
// verdict.
package consistency

import (
	"fmt"
	"reflect"
	"sort"
	"strings"
	"sync"

	"repro/internal/core"
	"repro/internal/history"
)

// Witness is a structured counterexample backing one violation: the
// offending operations (a diverging read pair, the stale read, the >k
// appends) and block IDs (fork blocks, the invalid block), plus the
// rendered detail line. The violation matrix of internal/scenario and
// the cmd/historyviz renderer consume witnesses instead of re-parsing
// the human-readable Violations strings.
type Witness struct {
	// Property names the violated property.
	Property string
	// Ops are the operations that together exhibit the violation.
	Ops []*history.Op
	// Blocks are the block IDs at the heart of the violation (chain
	// heads of a diverging pair, fork siblings, the invalid block).
	Blocks []core.BlockID
	// Detail is the rendered counterexample (same text as the matching
	// Violations entry).
	Detail string
}

// String renders the witness as "property: detail".
func (w Witness) String() string {
	return w.Property + ": " + w.Detail
}

// Report is the outcome of checking one property on one history.
type Report struct {
	// Property names the property checked.
	Property string
	// OK reports whether the property holds (under the finitary
	// reading for liveness-flavoured properties).
	OK bool
	// Violations holds human-readable counterexamples, capped at
	// MaxViolations.
	Violations []string
	// Witnesses holds the structured counterexamples, parallel to
	// Violations (same cap, same order).
	Witnesses []Witness
	// Checked counts the atomic facts examined (pairs, reads, ...),
	// so reports can convey coverage.
	Checked int
}

// MaxViolations caps the counterexamples retained per report.
const MaxViolations = 16

func (r *Report) violate(format string, args ...any) {
	r.witness(nil, nil, format, args...)
}

// witness records a violation together with its structured counterexample
// (ops and blocks may be nil when the violation has no natural carrier,
// as for the plain violate() path — the Witness then carries only the
// detail line, keeping Witnesses parallel to Violations everywhere).
func (r *Report) witness(ops []*history.Op, blocks []core.BlockID, format string, args ...any) {
	r.OK = false
	if len(r.Violations) < MaxViolations {
		detail := fmt.Sprintf(format, args...)
		r.Violations = append(r.Violations, detail)
		r.Witnesses = append(r.Witnesses, Witness{Property: r.Property, Ops: ops, Blocks: blocks, Detail: detail})
	}
}

// String renders "property: OK (n facts)" or the first violation.
func (r *Report) String() string {
	if r.OK {
		return fmt.Sprintf("%s: OK (%d facts)", r.Property, r.Checked)
	}
	return fmt.Sprintf("%s: VIOLATED (%d facts, e.g. %s)", r.Property, r.Checked, r.Violations[0])
}

// Checker bundles the parameters shared by all criteria: the score
// function and the validity predicate P of the BT-ADT under scrutiny,
// plus the liveness tail window.
//
// Finitary reading of the liveness-flavoured properties. The paper's
// Ever Growing Tree and Eventual Prefix quantify over infinite suffixes;
// a checker sees a finite prefix. The reading used here treats the final
// window of reads (the last max(2, procs) read responses, overridable
// via Horizon) as the observable stand-in for "the suffix": a condition
// that still holds in that window is presumed persistent.
//
//   - Ever Growing Tree: read r with score s is violated iff the window
//     (restricted to reads after r) contains a read with score ≤ s while
//     the window's maximum score exceeds s — i.e. stagnation persists
//     even though the system demonstrably grew past s. Windows whose
//     maximum is not above s are the truncation frontier and exempt.
//   - Eventual Prefix: read r with score s is violated iff two window
//     reads after r structurally diverge below s: their maximal common
//     prefix scores below min(s, score(a), score(b)). Requiring the
//     bound on *both* chains' own scores distinguishes real branch
//     divergence from one chain simply being shorter; a shorter chain
//     that is a prefix of the longer is stagnation (an Ever Growing
//     Tree matter), not divergence. This makes Theorem 3.1 (every SC
//     history is an EC history) hold structurally: under Strong Prefix
//     every mcps equals min(score(a), score(b)) ≥ the bound.
type Checker struct {
	// Score is the monotonic score function (Definition 3.2 notation).
	Score core.Score
	// P is the validity predicate for Block Validity.
	P core.Predicate
	// Horizon overrides the liveness tail-window size; 0 means
	// max(2, procs).
	Horizon int

	// mu serializes the property checkers: they share a one-entry
	// analysis cache whose artifact maps and memoized reports are
	// filled in lazily, so concurrent checks on one Checker are safe
	// (they run one at a time; use separate Checkers for parallelism).
	mu    sync.Mutex
	lastA *analysis
}

// NewChecker returns a Checker with the given score and predicate
// (nil means length score / always-valid).
func NewChecker(sc core.Score, p core.Predicate) *Checker {
	if sc == nil {
		sc = core.LengthScore{}
	}
	if p == nil {
		p = core.AlwaysValid{}
	}
	return &Checker{Score: sc, P: p}
}

// window returns the liveness tail-window size.
func (c *Checker) window(h *history.History) int {
	if c.Horizon > 0 {
		return c.Horizon
	}
	w := h.Procs
	if w < 2 {
		w = 2
	}
	return w
}

// chainKey identifies a read's returned chain: in a tree the chain is
// determined by its head (and the length pins degenerate cases), so
// per-chain work — scores, validity scans, prefix tests — is shared
// between the many reads that return the same chain.
type chainKey struct {
	head core.BlockID
	n    int
}

func keyOf(op *history.Op) chainKey { return chainKey{op.Head, op.ChainLen} }

// chainFact caches the Block Validity scan of one distinct chain.
type chainFact struct {
	// clean is true when every non-genesis block satisfies P and was
	// the argument of some append().
	clean bool
	// maxAppendInv is the largest earliest-append invocation index
	// over the chain's blocks (valid only when clean).
	maxAppendInv int
	// nonGenesis counts the chain's non-genesis blocks.
	nonGenesis int
}

// analysis is the shared artifact set of one (history, window) pair:
// everything the property checkers need, computed in one pass and
// reused across properties and criteria.
type analysis struct {
	c *Checker
	h *history.History
	// reads is h.Reads() (completed reads of correct processes).
	reads []*history.Op
	// scores[i] is Score.Of(reads[i].Chain()), computed once per
	// distinct chain.
	scores []int
	// scoreByChain shares the score computation across reads returning
	// the same chain (and with per-process scans such as LMR).
	scoreByChain map[chainKey]int
	// tailStart indexes the liveness tail window: reads[tailStart:].
	tailStart int
	// score and pred snapshot the Checker parameters the artifacts
	// were computed under (cache invalidation).
	score core.Score
	pred  core.Predicate
	// appendInv maps block ID → the operation with the earliest
	// append(b) invocation (pending and failed appends included, as
	// Block Validity only needs the invocation).
	appendInv map[core.BlockID]*history.Op
	// facts caches the Block Validity scan per distinct chain.
	facts map[chainKey]*chainFact

	// Property reports, computed at most once per analysis and shared
	// between the SC and EC verdicts.
	repBV, repLMR, repSP, repEGT, repEP *Report
}

// sameParam compares two checker parameters (Score/Predicate interface
// values), treating non-comparable dynamic types as "changed" instead
// of letting == panic on them.
func sameParam(a, b any) bool {
	if a == nil || b == nil {
		return a == b
	}
	ta, tb := reflect.TypeOf(a), reflect.TypeOf(b)
	if ta != tb || !ta.Comparable() {
		return false
	}
	return a == b
}

// analyze computes (or returns the cached) artifact set for h. The
// caller must hold c.mu for the whole check, not just this lookup: the
// returned analysis memoizes lazily.
func (c *Checker) analyze(h *history.History) *analysis {
	w := c.window(h)
	if a := c.lastA; a != nil && a.h == h && sameParam(a.score, c.Score) && sameParam(a.pred, c.P) &&
		a.tailStart == max(0, len(a.reads)-w) {
		return a
	}
	a := &analysis{
		c:            c,
		h:            h,
		reads:        h.Reads(),
		score:        c.Score,
		pred:         c.P,
		scoreByChain: make(map[chainKey]int),
		appendInv:    make(map[core.BlockID]*history.Op),
		facts:        make(map[chainKey]*chainFact),
	}
	a.scores = make([]int, len(a.reads))
	for i, r := range a.reads {
		a.scores[i] = a.scoreOf(r)
	}
	for _, op := range h.Ops {
		if op.Kind == history.OpAppend && op.Block != nil {
			// The invocation suffices (einv(append(b)) ր ersp(r));
			// keep the earliest invocation per block.
			if prev, ok := a.appendInv[op.Block.ID]; !ok || op.InvIndex < prev.InvIndex {
				a.appendInv[op.Block.ID] = op
			}
		}
	}
	a.tailStart = max(0, len(a.reads)-w)
	c.lastA = a
	return a
}

// scoreOf returns the score of op's returned chain, shared per distinct
// chain.
func (a *analysis) scoreOf(op *history.Op) int {
	k := keyOf(op)
	if s, ok := a.scoreByChain[k]; ok {
		return s
	}
	s := a.c.Score.Of(op.Chain())
	a.scoreByChain[k] = s
	return s
}

// factOf returns the cached Block Validity scan of op's chain.
func (a *analysis) factOf(op *history.Op) *chainFact {
	k := keyOf(op)
	if f, ok := a.facts[k]; ok {
		return f
	}
	f := &chainFact{clean: true, maxAppendInv: -1}
	for _, b := range op.Chain() {
		if b.IsGenesis() {
			continue
		}
		f.nonGenesis++
		if !a.c.P.Valid(b) {
			f.clean = false
			continue
		}
		ap, ok := a.appendInv[b.ID]
		if !ok {
			f.clean = false
			continue
		}
		if ap.InvIndex > f.maxAppendInv {
			f.maxAppendInv = ap.InvIndex
		}
	}
	a.facts[k] = f
	return f
}

// BlockValidity checks Definition 3.2's first property: every non-genesis
// block of every chain returned by a read of a correct process satisfies
// P and was the argument of an append() whose invocation program-order
// precedes the read's response.
func (c *Checker) BlockValidity(h *history.History) *Report {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.analyze(h).blockValidity()
}

func (a *analysis) blockValidity() *Report {
	if a.repBV != nil {
		return a.repBV
	}
	rep := &Report{Property: "BlockValidity", OK: true}
	for _, r := range a.reads {
		f := a.factOf(r)
		if f.clean && f.maxAppendInv < r.RspIndex {
			// The chain scan is shared: only the per-read real-time
			// bound needs checking here.
			rep.Checked += f.nonGenesis
			continue
		}
		// Violating read: re-scan its chain to report the exact
		// offending blocks.
		for _, b := range r.Chain() {
			if b.IsGenesis() {
				continue
			}
			rep.Checked++
			if !a.c.P.Valid(b) {
				rep.witness([]*history.Op{r}, []core.BlockID{b.ID},
					"read %s returned block %s with P(b)=false", r, b.ID.Short())
				continue
			}
			ap, ok := a.appendInv[b.ID]
			if !ok {
				rep.witness([]*history.Op{r}, []core.BlockID{b.ID},
					"read %s returned block %s never passed to append()", r, b.ID.Short())
				continue
			}
			if ap.InvIndex >= r.RspIndex {
				rep.witness([]*history.Op{r, ap}, []core.BlockID{b.ID},
					"read %s returned block %s appended only later (inv %d ≥ rsp %d)",
					r, b.ID.Short(), ap.InvIndex, r.RspIndex)
			}
		}
	}
	a.repBV = rep
	return rep
}

// LocalMonotonicRead checks that along each correct process's sequence of
// reads the returned scores never decrease.
func (c *Checker) LocalMonotonicRead(h *history.History) *Report {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.analyze(h).localMonotonicRead()
}

func (a *analysis) localMonotonicRead() *Report {
	if a.repLMR != nil {
		return a.repLMR
	}
	rep := &Report{Property: "LocalMonotonicRead", OK: true}
	for p := 0; p < a.h.Procs; p++ {
		if !a.h.IsCorrect(p) {
			continue
		}
		var prev *history.Op
		prevScore := 0
		for _, op := range a.h.ByProcess(p) {
			if op.Kind != history.OpRead {
				continue
			}
			s := a.scoreOf(op)
			if prev != nil {
				rep.Checked++
				if prevScore > s {
					rep.witness([]*history.Op{prev, op}, []core.BlockID{prev.Head, op.Head},
						"process %d: score dropped %d → %d (%s then %s)",
						p, prevScore, s, prev, op)
				}
			}
			prev, prevScore = op, s
		}
	}
	a.repLMR = rep
	return rep
}

// StrongPrefix checks that for every pair of reads by correct processes
// one returned chain prefixes the other. This is the safety property that
// separates SC from EC.
//
// This is the exact pairwise O(r²) variant, kept for exactness of the
// reported pair; the criterion verdicts (StrongConsistency, Classify)
// use the sorted O(r log r) variant, whose verdict is provably the same
// (prefix order on comparable chains is total once sorted by a
// monotonic score) and pinned equivalent by tests.
func (c *Checker) StrongPrefix(h *history.History) *Report {
	c.mu.Lock()
	defer c.mu.Unlock()
	a := c.analyze(h)
	rep := &Report{Property: "StrongPrefix", OK: true}
	reads := a.reads
	for i := 0; i < len(reads); i++ {
		for j := i + 1; j < len(reads); j++ {
			rep.Checked++
			if keyOf(reads[i]) == keyOf(reads[j]) {
				continue // identical interned chains
			}
			if !reads[i].Chain().Comparable(reads[j].Chain()) {
				rep.witness([]*history.Op{reads[i], reads[j]}, []core.BlockID{reads[i].Head, reads[j].Head},
					"incomparable reads: %s vs %s", reads[i], reads[j])
				if len(rep.Violations) == MaxViolations {
					return rep
				}
			}
		}
	}
	return rep
}

// StrongPrefixFast is the O(r log r + r·h) variant used by the criterion
// verdicts: reads sorted with sort.Slice by chain length (recording
// order as the tiebreak), then each chain must prefix the next one.
// Verdict exactly equivalent to StrongPrefix for any score: a prefix is
// never longer than its extension, so if all pairs are comparable the
// length order is a total prefix order and every adjacent pair passes;
// conversely an adjacent pair that fails (shorter-or-equal yet not a
// prefix) is itself an incomparable pair.
func (c *Checker) StrongPrefixFast(h *history.History) *Report {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.analyze(h).strongPrefixSorted("StrongPrefix(fast)")
}

func (a *analysis) strongPrefixSorted(name string) *Report {
	rep := &Report{Property: name, OK: true}
	reads := a.reads
	if len(reads) < 2 {
		return rep
	}
	idx := make([]int, len(reads))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(x, y int) bool {
		ix, iy := idx[x], idx[y]
		if reads[ix].ChainLen != reads[iy].ChainLen {
			return reads[ix].ChainLen < reads[iy].ChainLen
		}
		return ix < iy
	})
	for k := 1; k < len(idx); k++ {
		rep.Checked++
		prev, cur := reads[idx[k-1]], reads[idx[k]]
		if keyOf(prev) == keyOf(cur) {
			continue // identical interned chains
		}
		if !prev.Chain().Prefix(cur.Chain()) {
			rep.witness([]*history.Op{prev, cur}, []core.BlockID{prev.Head, cur.Head},
				"incomparable reads: %s vs %s", prev, cur)
		}
	}
	return rep
}

// EverGrowingTree checks the finitary reading of Definition 3.2's last
// property ("the set of later reads with score ≤ s is finite"): a read r
// with score s is violated when the final window still contains a read
// with score ≤ s although the window's maximum score exceeds s — the
// stagnation persisted to the end of the recorded prefix while the tree
// demonstrably kept growing. See the Checker doc comment.
func (c *Checker) EverGrowingTree(h *history.History) *Report {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.analyze(h).everGrowingTree()
}

func (a *analysis) everGrowingTree() *Report {
	if a.repEGT != nil {
		return a.repEGT
	}
	rep := &Report{Property: "EverGrowingTree", OK: true}
	reads := a.reads
	for i, r := range reads {
		rep.Checked++
		s := a.scores[i]
		maxT := -1
		var stale *history.Op
		for j := a.tailStart; j < len(reads); j++ {
			t := reads[j]
			if !r.Before(t) {
				continue
			}
			st := a.scores[j]
			if st > maxT {
				maxT = st
			}
			if st <= s && stale == nil {
				stale = t
			}
		}
		if stale != nil && maxT > s {
			rep.witness([]*history.Op{r, stale}, []core.BlockID{r.Head, stale.Head},
				"stagnation persists after %s: final-window read %s has score ≤ %d while the window grew to %d",
				r, stale, s, maxT)
			if len(rep.Violations) == MaxViolations {
				a.repEGT = rep
				return rep
			}
		}
	}
	a.repEGT = rep
	return rep
}

// EventualPrefix checks the finitary reading of Definition 3.3 ("the set
// of read pairs whose maximal common prefix scores below s is finite"):
// a read r with score s is violated when two final-window reads after r
// structurally diverge below s, i.e. mcps(a, b) < min(s, score(a),
// score(b)). See the Checker doc comment for why the bound involves both
// chains' own scores.
//
// The pairwise MCPS over the window is computed once — O(w²·h) total,
// not per read: a pair (a, b) can trip some read iff mcps(a, b) <
// min(score(a), score(b)) (for any read r the bound min(s, score(a),
// score(b)) is at most min(score(a), score(b))). On a history with no
// such divergent window pair — the common case — the per-read loop
// degenerates to counting; otherwise the original exact enumeration
// replays to produce identical reports.
func (c *Checker) EventualPrefix(h *history.History) *Report {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.analyze(h).eventualPrefix()
}

func (a *analysis) eventualPrefix() *Report {
	if a.repEP != nil {
		return a.repEP
	}
	rep := &Report{Property: "EventualPrefix", OK: true}
	reads := a.reads
	tail := reads[a.tailStart:]

	// One pass over window pairs: mcps, and whether any pair diverges
	// below the scores of its own two chains.
	divergent := false
	mcps := make([][]int, len(tail))
	for x := range tail {
		mcps[x] = make([]int, len(tail))
	}
	for x := 0; x < len(tail); x++ {
		sx := a.scores[a.tailStart+x]
		for y := x + 1; y < len(tail); y++ {
			sy := a.scores[a.tailStart+y]
			var m int
			if keyOf(tail[x]) == keyOf(tail[y]) {
				m = sx // identical interned chains: mcps is the score itself
			} else {
				m = core.MCPS(a.c.Score, tail[x].Chain(), tail[y].Chain())
			}
			mcps[x][y] = m
			if m < sx && m < sy {
				divergent = true
			}
		}
	}

	if !divergent {
		// No window pair can trip any read: the enumeration can only
		// count facts.
		for _, r := range reads {
			k := 0
			for j := a.tailStart; j < len(reads); j++ {
				if r.Before(reads[j]) {
					k++
				}
			}
			rep.Checked += k * (k - 1) / 2
		}
		a.repEP = rep
		return rep
	}

	// Divergence in the window: replay the exact original enumeration
	// (reads in order, window pairs in order) for identical reports.
	for i, r := range reads {
		s := a.scores[i]
		var after []int // indices into tail
		for j := 0; j < len(tail); j++ {
			if r.Before(tail[j]) {
				after = append(after, j)
			}
		}
		for x := 0; x < len(after); x++ {
			for y := x + 1; y < len(after); y++ {
				rep.Checked++
				ax, ay := after[x], after[y]
				m := mcps[ax][ay]
				bound := s
				if sa := a.scores[a.tailStart+ax]; sa < bound {
					bound = sa
				}
				if sb := a.scores[a.tailStart+ay]; sb < bound {
					bound = sb
				}
				if m < bound {
					rep.witness([]*history.Op{r, tail[ax], tail[ay]},
						[]core.BlockID{tail[ax].Head, tail[ay].Head},
						"after %s (score %d) final-window reads still diverge: mcps(%s, %s)=%d < %d",
						r, s, tail[ax], tail[ay], m, bound)
					if len(rep.Violations) == MaxViolations {
						a.repEP = rep
						return rep
					}
				}
			}
		}
	}
	a.repEP = rep
	return rep
}

// KForkCoherence checks Definition 3.9: at most k successful append()
// operations return ⊤ for the same token. Blocks record the consumed
// token name; successful appends are grouped by it. Blocks with no token
// (histories not produced through an oracle refinement) are grouped by
// parent, which is the object the token was for.
func (c *Checker) KForkCoherence(h *history.History, k int) *Report {
	rep := &Report{Property: fmt.Sprintf("%d-ForkCoherence", k), OK: true}
	byToken := make(map[string][]*history.Op)
	for _, op := range h.SuccessfulAppends() {
		if op.Block == nil {
			continue
		}
		key := op.Block.Token
		if key == "" {
			key = "parent:" + string(op.Block.Parent)
		}
		byToken[key] = append(byToken[key], op)
	}
	toks := make([]string, 0, len(byToken))
	for tok := range byToken {
		toks = append(toks, tok)
	}
	sort.Strings(toks) // deterministic report order (map iteration is not)
	for _, tok := range toks {
		ops := byToken[tok]
		rep.Checked++
		if len(ops) > k {
			blocks := make([]core.BlockID, len(ops))
			for i, op := range ops {
				blocks[i] = op.Block.ID
			}
			rep.witness(ops, blocks,
				"token %q consumed by %d successful appends (k=%d): forks %s", tok, len(ops), k, shortIDs(blocks))
		}
	}
	return rep
}

// shortIDs renders block IDs compactly for witness details.
func shortIDs(ids []core.BlockID) string {
	out := make([]string, len(ids))
	for i, id := range ids {
		out[i] = id.Short()
	}
	return "[" + strings.Join(out, " ") + "]"
}

// Verdict aggregates the criterion-level outcome.
type Verdict struct {
	// Criterion is "SC" or "EC".
	Criterion string
	OK        bool
	Reports   []*Report
}

// String renders e.g. "SC: HOLDS" or "EC: VIOLATED (StrongPrefix)".
func (v *Verdict) String() string {
	if v.OK {
		return fmt.Sprintf("%s: HOLDS", v.Criterion)
	}
	for _, r := range v.Reports {
		if !r.OK {
			return fmt.Sprintf("%s: VIOLATED (%s)", v.Criterion, r.Property)
		}
	}
	return fmt.Sprintf("%s: VIOLATED", v.Criterion)
}

// Failing returns the names of the violated properties.
func (v *Verdict) Failing() []string {
	var out []string
	for _, r := range v.Reports {
		if !r.OK {
			out = append(out, r.Property)
		}
	}
	return out
}

// Witnesses returns the structured counterexamples of every violated
// property in the verdict, in report order.
func (v *Verdict) Witnesses() []Witness {
	var out []Witness
	for _, r := range v.Reports {
		out = append(out, r.Witnesses...)
	}
	return out
}

// FirstWitness returns the first counterexample, or a zero Witness when
// the verdict holds (check OK first).
func (v *Verdict) FirstWitness() Witness {
	for _, r := range v.Reports {
		if len(r.Witnesses) > 0 {
			return r.Witnesses[0]
		}
	}
	return Witness{}
}

// verdictOf bundles reports into a criterion verdict.
func verdictOf(criterion string, reports ...*Report) *Verdict {
	v := &Verdict{Criterion: criterion, OK: true, Reports: reports}
	for _, r := range reports {
		v.OK = v.OK && r.OK
	}
	return v
}

// StrongConsistency checks the BT Strong Consistency criterion
// (Definition 3.2): Block Validity ∧ Local Monotonic Read ∧ Strong
// Prefix ∧ Ever Growing Tree.
func (c *Checker) StrongConsistency(h *history.History) *Verdict {
	c.mu.Lock()
	defer c.mu.Unlock()
	a := c.analyze(h)
	return verdictOf("SC",
		a.blockValidity(),
		a.localMonotonicRead(),
		a.strongPrefix(),
		a.everGrowingTree(),
	)
}

// strongPrefix returns the cached criterion-level Strong Prefix report
// (sorted variant, reported under the canonical property name).
func (a *analysis) strongPrefix() *Report {
	if a.repSP == nil {
		a.repSP = a.strongPrefixSorted("StrongPrefix")
	}
	return a.repSP
}

// EventualConsistency checks the BT Eventual Consistency criterion
// (Definition 3.4): Block Validity ∧ Local Monotonic Read ∧ Ever Growing
// Tree ∧ Eventual Prefix.
func (c *Checker) EventualConsistency(h *history.History) *Verdict {
	c.mu.Lock()
	defer c.mu.Unlock()
	a := c.analyze(h)
	return verdictOf("EC",
		a.blockValidity(),
		a.localMonotonicRead(),
		a.everGrowingTree(),
		a.eventualPrefix(),
	)
}

// Classify returns both verdicts, the shape of Table 1's consistency
// column. The artifacts and the three properties shared by the two
// criteria are computed once.
func (c *Checker) Classify(h *history.History) (sc, ec *Verdict) {
	c.mu.Lock()
	defer c.mu.Unlock()
	a := c.analyze(h)
	bv := a.blockValidity()
	lmr := a.localMonotonicRead()
	egt := a.everGrowingTree()
	sc = verdictOf("SC", bv, lmr, a.strongPrefix(), egt)
	ec = verdictOf("EC", bv, lmr, egt, a.eventualPrefix())
	return sc, ec
}
