// Package consistency implements the paper's consistency criteria as
// executable checkers over recorded histories:
//
//   - the four properties of BT Strong Consistency (Definition 3.2):
//     Block Validity, Local Monotonic Read, Strong Prefix, Ever Growing
//     Tree;
//   - the Eventual Prefix property (Definition 3.3) and BT Eventual
//     Consistency (Definition 3.4);
//   - k-Fork Coherence (Definition 3.9);
//   - the Update Agreement properties R1–R3 (Definition 4.3) and the
//     Light Reliable Communication properties (Definition 4.4).
//
// The paper's liveness-flavoured properties quantify over infinite
// histories; a checker sees a finite prefix. The finitary readings used
// here are documented on each checker and in DESIGN.md: safety properties
// (Strong Prefix, Local Monotonic Read, Block Validity, k-Fork Coherence)
// are checked exactly, while Ever Growing Tree and Eventual Prefix
// exclude a configurable trailing "horizon" of reads for which the
// history contains no future.
package consistency

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/history"
)

// Report is the outcome of checking one property on one history.
type Report struct {
	// Property names the property checked.
	Property string
	// OK reports whether the property holds (under the finitary
	// reading for liveness-flavoured properties).
	OK bool
	// Violations holds human-readable counterexamples, capped at
	// MaxViolations.
	Violations []string
	// Checked counts the atomic facts examined (pairs, reads, ...),
	// so reports can convey coverage.
	Checked int
}

// MaxViolations caps the counterexamples retained per report.
const MaxViolations = 16

func (r *Report) violate(format string, args ...any) {
	r.OK = false
	if len(r.Violations) < MaxViolations {
		r.Violations = append(r.Violations, fmt.Sprintf(format, args...))
	}
}

// String renders "property: OK (n facts)" or the first violation.
func (r *Report) String() string {
	if r.OK {
		return fmt.Sprintf("%s: OK (%d facts)", r.Property, r.Checked)
	}
	return fmt.Sprintf("%s: VIOLATED (%d facts, e.g. %s)", r.Property, r.Checked, r.Violations[0])
}

// Checker bundles the parameters shared by all criteria: the score
// function and the validity predicate P of the BT-ADT under scrutiny,
// plus the liveness tail window.
//
// Finitary reading of the liveness-flavoured properties. The paper's
// Ever Growing Tree and Eventual Prefix quantify over infinite suffixes;
// a checker sees a finite prefix. The reading used here treats the final
// window of reads (the last max(2, procs) read responses, overridable
// via Horizon) as the observable stand-in for "the suffix": a condition
// that still holds in that window is presumed persistent.
//
//   - Ever Growing Tree: read r with score s is violated iff the window
//     (restricted to reads after r) contains a read with score ≤ s while
//     the window's maximum score exceeds s — i.e. stagnation persists
//     even though the system demonstrably grew past s. Windows whose
//     maximum is not above s are the truncation frontier and exempt.
//   - Eventual Prefix: read r with score s is violated iff two window
//     reads after r structurally diverge below s: their maximal common
//     prefix scores below min(s, score(a), score(b)). Requiring the
//     bound on *both* chains' own scores distinguishes real branch
//     divergence from one chain simply being shorter; a shorter chain
//     that is a prefix of the longer is stagnation (an Ever Growing
//     Tree matter), not divergence. This makes Theorem 3.1 (every SC
//     history is an EC history) hold structurally: under Strong Prefix
//     every mcps equals min(score(a), score(b)) ≥ the bound.
type Checker struct {
	// Score is the monotonic score function (Definition 3.2 notation).
	Score core.Score
	// P is the validity predicate for Block Validity.
	P core.Predicate
	// Horizon overrides the liveness tail-window size; 0 means
	// max(2, procs).
	Horizon int
}

// NewChecker returns a Checker with the given score and predicate
// (nil means length score / always-valid).
func NewChecker(sc core.Score, p core.Predicate) *Checker {
	if sc == nil {
		sc = core.LengthScore{}
	}
	if p == nil {
		p = core.AlwaysValid{}
	}
	return &Checker{Score: sc, P: p}
}

// window returns the liveness tail-window size.
func (c *Checker) window(h *history.History) int {
	if c.Horizon > 0 {
		return c.Horizon
	}
	w := h.Procs
	if w < 2 {
		w = 2
	}
	return w
}

// tail returns the last window reads of the history (response order).
func (c *Checker) tail(h *history.History, reads []*history.Op) []*history.Op {
	w := c.window(h)
	if w > len(reads) {
		w = len(reads)
	}
	return reads[len(reads)-w:]
}

// BlockValidity checks Definition 3.2's first property: every non-genesis
// block of every chain returned by a read of a correct process satisfies
// P and was the argument of an append() whose invocation program-order
// precedes the read's response.
func (c *Checker) BlockValidity(h *history.History) *Report {
	rep := &Report{Property: "BlockValidity", OK: true}
	appends := make(map[core.BlockID]*history.Op)
	for _, op := range h.Ops {
		if op.Kind == history.OpAppend && op.Block != nil {
			// The invocation suffices (einv(append(b)) ր ersp(r));
			// keep the earliest invocation per block.
			if prev, ok := appends[op.Block.ID]; !ok || op.InvIndex < prev.InvIndex {
				appends[op.Block.ID] = op
			}
		}
	}
	for _, r := range h.Reads() {
		for _, b := range r.Chain {
			if b.IsGenesis() {
				continue
			}
			rep.Checked++
			if !c.P.Valid(b) {
				rep.violate("read %s returned block %s with P(b)=false", r, b.ID.Short())
				continue
			}
			ap, ok := appends[b.ID]
			if !ok {
				rep.violate("read %s returned block %s never passed to append()", r, b.ID.Short())
				continue
			}
			if ap.InvIndex >= r.RspIndex {
				rep.violate("read %s returned block %s appended only later (inv %d ≥ rsp %d)",
					r, b.ID.Short(), ap.InvIndex, r.RspIndex)
			}
		}
	}
	return rep
}

// LocalMonotonicRead checks that along each correct process's sequence of
// reads the returned scores never decrease.
func (c *Checker) LocalMonotonicRead(h *history.History) *Report {
	rep := &Report{Property: "LocalMonotonicRead", OK: true}
	for p := 0; p < h.Procs; p++ {
		if !h.IsCorrect(p) {
			continue
		}
		var prev *history.Op
		for _, op := range h.ByProcess(p) {
			if op.Kind != history.OpRead {
				continue
			}
			if prev != nil {
				rep.Checked++
				if c.Score.Of(prev.Chain) > c.Score.Of(op.Chain) {
					rep.violate("process %d: score dropped %d → %d (%s then %s)",
						p, c.Score.Of(prev.Chain), c.Score.Of(op.Chain), prev, op)
				}
			}
			prev = op
		}
	}
	return rep
}

// StrongPrefix checks that for every pair of reads by correct processes
// one returned chain prefixes the other. This is the safety property that
// separates SC from EC.
func (c *Checker) StrongPrefix(h *history.History) *Report {
	rep := &Report{Property: "StrongPrefix", OK: true}
	reads := h.Reads()
	// Sorting by score would give O(n log n) comparisons against the
	// running maximum; the pairwise scan is kept for exactness of the
	// reported pair and is benchmarked against the sorted variant in
	// bench_test.go.
	for i := 0; i < len(reads); i++ {
		for j := i + 1; j < len(reads); j++ {
			rep.Checked++
			if !reads[i].Chain.Comparable(reads[j].Chain) {
				rep.violate("incomparable reads: %s vs %s", reads[i], reads[j])
				if len(rep.Violations) == MaxViolations {
					return rep
				}
			}
		}
	}
	return rep
}

// StrongPrefixFast is the O(n log n)-comparison variant: reads sorted by
// score; each chain must prefix the next longer one. Equivalent verdict
// to StrongPrefix (prefix order on comparable chains is total once sorted
// by a monotonic score); used by the ablation bench.
func (c *Checker) StrongPrefixFast(h *history.History) *Report {
	rep := &Report{Property: "StrongPrefix(fast)", OK: true}
	reads := h.Reads()
	if len(reads) < 2 {
		return rep
	}
	sorted := make([]*history.Op, len(reads))
	copy(sorted, reads)
	// Insertion sort by score keeps the checker dependency-free and is
	// fine for the history sizes we generate; replace with sort.Slice
	// if histories grow.
	for i := 1; i < len(sorted); i++ {
		for j := i; j > 0 && c.Score.Of(sorted[j].Chain) < c.Score.Of(sorted[j-1].Chain); j-- {
			sorted[j], sorted[j-1] = sorted[j-1], sorted[j]
		}
	}
	for i := 1; i < len(sorted); i++ {
		rep.Checked++
		if !sorted[i-1].Chain.Prefix(sorted[i].Chain) {
			rep.violate("incomparable reads: %s vs %s", sorted[i-1], sorted[i])
		}
	}
	return rep
}

// EverGrowingTree checks the finitary reading of Definition 3.2's last
// property ("the set of later reads with score ≤ s is finite"): a read r
// with score s is violated when the final window still contains a read
// with score ≤ s although the window's maximum score exceeds s — the
// stagnation persisted to the end of the recorded prefix while the tree
// demonstrably kept growing. See the Checker doc comment.
func (c *Checker) EverGrowingTree(h *history.History) *Report {
	rep := &Report{Property: "EverGrowingTree", OK: true}
	reads := h.Reads() // response order
	tail := c.tail(h, reads)
	for _, r := range reads {
		rep.Checked++
		s := c.Score.Of(r.Chain)
		maxT := -1
		var stale *history.Op
		for _, t := range tail {
			if !r.Before(t) {
				continue
			}
			st := c.Score.Of(t.Chain)
			if st > maxT {
				maxT = st
			}
			if st <= s && stale == nil {
				stale = t
			}
		}
		if stale != nil && maxT > s {
			rep.violate("stagnation persists after %s: final-window read %s has score ≤ %d while the window grew to %d",
				r, stale, s, maxT)
			if len(rep.Violations) == MaxViolations {
				return rep
			}
		}
	}
	return rep
}

// EventualPrefix checks the finitary reading of Definition 3.3 ("the set
// of read pairs whose maximal common prefix scores below s is finite"):
// a read r with score s is violated when two final-window reads after r
// structurally diverge below s, i.e. mcps(a, b) < min(s, score(a),
// score(b)). See the Checker doc comment for why the bound involves both
// chains' own scores.
func (c *Checker) EventualPrefix(h *history.History) *Report {
	rep := &Report{Property: "EventualPrefix", OK: true}
	reads := h.Reads()
	tail := c.tail(h, reads)
	for _, r := range reads {
		s := c.Score.Of(r.Chain)
		var after []*history.Op
		for _, t := range tail {
			if r.Before(t) {
				after = append(after, t)
			}
		}
		for a := 0; a < len(after); a++ {
			for b := a + 1; b < len(after); b++ {
				rep.Checked++
				m := core.MCPS(c.Score, after[a].Chain, after[b].Chain)
				bound := s
				if sa := c.Score.Of(after[a].Chain); sa < bound {
					bound = sa
				}
				if sb := c.Score.Of(after[b].Chain); sb < bound {
					bound = sb
				}
				if m < bound {
					rep.violate("after %s (score %d) final-window reads still diverge: mcps(%s, %s)=%d < %d",
						r, s, after[a], after[b], m, bound)
					if len(rep.Violations) == MaxViolations {
						return rep
					}
				}
			}
		}
	}
	return rep
}

// KForkCoherence checks Definition 3.9: at most k successful append()
// operations return ⊤ for the same token. Blocks record the consumed
// token name; successful appends are grouped by it. Blocks with no token
// (histories not produced through an oracle refinement) are grouped by
// parent, which is the object the token was for.
func (c *Checker) KForkCoherence(h *history.History, k int) *Report {
	rep := &Report{Property: fmt.Sprintf("%d-ForkCoherence", k), OK: true}
	byToken := make(map[string][]*history.Op)
	for _, op := range h.SuccessfulAppends() {
		if op.Block == nil {
			continue
		}
		key := op.Block.Token
		if key == "" {
			key = "parent:" + string(op.Block.Parent)
		}
		byToken[key] = append(byToken[key], op)
	}
	for tok, ops := range byToken {
		rep.Checked++
		if len(ops) > k {
			rep.violate("token %q consumed by %d successful appends (k=%d)", tok, len(ops), k)
		}
	}
	return rep
}

// Verdict aggregates the criterion-level outcome.
type Verdict struct {
	// Criterion is "SC" or "EC".
	Criterion string
	OK        bool
	Reports   []*Report
}

// String renders e.g. "SC: HOLDS" or "EC: VIOLATED (StrongPrefix)".
func (v *Verdict) String() string {
	if v.OK {
		return fmt.Sprintf("%s: HOLDS", v.Criterion)
	}
	for _, r := range v.Reports {
		if !r.OK {
			return fmt.Sprintf("%s: VIOLATED (%s)", v.Criterion, r.Property)
		}
	}
	return fmt.Sprintf("%s: VIOLATED", v.Criterion)
}

// Failing returns the names of the violated properties.
func (v *Verdict) Failing() []string {
	var out []string
	for _, r := range v.Reports {
		if !r.OK {
			out = append(out, r.Property)
		}
	}
	return out
}

// StrongConsistency checks the BT Strong Consistency criterion
// (Definition 3.2): Block Validity ∧ Local Monotonic Read ∧ Strong
// Prefix ∧ Ever Growing Tree.
func (c *Checker) StrongConsistency(h *history.History) *Verdict {
	reports := []*Report{
		c.BlockValidity(h),
		c.LocalMonotonicRead(h),
		c.StrongPrefix(h),
		c.EverGrowingTree(h),
	}
	v := &Verdict{Criterion: "SC", OK: true, Reports: reports}
	for _, r := range reports {
		v.OK = v.OK && r.OK
	}
	return v
}

// EventualConsistency checks the BT Eventual Consistency criterion
// (Definition 3.4): Block Validity ∧ Local Monotonic Read ∧ Ever Growing
// Tree ∧ Eventual Prefix.
func (c *Checker) EventualConsistency(h *history.History) *Verdict {
	reports := []*Report{
		c.BlockValidity(h),
		c.LocalMonotonicRead(h),
		c.EverGrowingTree(h),
		c.EventualPrefix(h),
	}
	v := &Verdict{Criterion: "EC", OK: true, Reports: reports}
	for _, r := range reports {
		v.OK = v.OK && r.OK
	}
	return v
}

// Classify returns both verdicts, the shape of Table 1's consistency
// column.
func (c *Checker) Classify(h *history.History) (sc, ec *Verdict) {
	return c.StrongConsistency(h), c.EventualConsistency(h)
}
