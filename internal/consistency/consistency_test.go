package consistency

import (
	"testing"
	"testing/quick"

	"repro/internal/core"
	"repro/internal/history"
)

// chainN builds a canonical chain of n blocks after genesis.
func chainN(n int) core.Chain {
	c := core.GenesisChain()
	for i := 1; i <= n; i++ {
		h := c.Head()
		c = c.Append(core.NewBlock(h.ID, h.Height+1, 0, i, []byte{byte(i)}))
	}
	return c
}

// forkN builds a chain diverging from base after `common` blocks with
// `extra` fresh blocks.
func forkN(base core.Chain, common, extra int) core.Chain {
	c := base[:common+1].Clone()
	for i := 0; i < extra; i++ {
		h := c.Head()
		c = c.Append(core.NewBlock(h.ID, h.Height+1, 7, 1000+i, []byte{0xBB, byte(i)}))
	}
	return c
}

// recordChain registers successful appends for every non-genesis block.
func recordChain(rec *history.Recorder, chains ...core.Chain) {
	seen := map[core.BlockID]bool{}
	for _, c := range chains {
		for _, b := range c {
			if !b.IsGenesis() && !seen[b.ID] {
				seen[b.ID] = true
				rec.Append(b.Creator, b, true)
			}
		}
	}
}

func TestBlockValidityHolds(t *testing.T) {
	rec := history.NewRecorder(1, nil)
	c := chainN(3)
	recordChain(rec, c)
	rec.Read(0, c)
	rep := NewChecker(nil, nil).BlockValidity(rec.Snapshot())
	if !rep.OK {
		t.Fatalf("violated: %v", rep.Violations)
	}
	if rep.Checked != 3 {
		t.Fatalf("checked %d blocks, want 3", rep.Checked)
	}
}

func TestBlockValidityMissingAppend(t *testing.T) {
	rec := history.NewRecorder(1, nil)
	c := chainN(2)
	// Only the first block is appended; the second appears from
	// nowhere.
	rec.Append(0, c[1], true)
	rec.Read(0, c)
	rep := NewChecker(nil, nil).BlockValidity(rec.Snapshot())
	if rep.OK {
		t.Fatal("missing append not detected")
	}
}

func TestBlockValidityAppendAfterRead(t *testing.T) {
	rec := history.NewRecorder(1, nil)
	c := chainN(1)
	rec.Read(0, c) // read before the append exists
	rec.Append(0, c[1], true)
	rep := NewChecker(nil, nil).BlockValidity(rec.Snapshot())
	if rep.OK {
		t.Fatal("read of future block not detected")
	}
}

func TestBlockValidityPredicate(t *testing.T) {
	rec := history.NewRecorder(1, nil)
	c := chainN(1)
	recordChain(rec, c)
	rec.Read(0, c)
	rep := NewChecker(nil, core.RejectAll{}).BlockValidity(rec.Snapshot())
	if rep.OK {
		t.Fatal("P(b)=false block accepted")
	}
}

func TestLocalMonotonicRead(t *testing.T) {
	rec := history.NewRecorder(2, nil)
	c := chainN(3)
	recordChain(rec, c)
	rec.Read(0, c[:3]) // score 2
	rec.Read(0, c)     // score 3: fine
	rec.Read(1, c)     // other process
	rec.Read(1, c[:2]) // score drops 3 → 1: violation
	rep := NewChecker(nil, nil).LocalMonotonicRead(rec.Snapshot())
	if rep.OK {
		t.Fatal("score drop not detected")
	}
	if rep.Checked != 2 {
		t.Fatalf("checked %d pairs, want 2", rep.Checked)
	}
}

func TestLocalMonotonicReadAllowsPlateau(t *testing.T) {
	rec := history.NewRecorder(1, nil)
	c := chainN(2)
	recordChain(rec, c)
	rec.Read(0, c)
	rec.Read(0, c) // same score: allowed (≤)
	rep := NewChecker(nil, nil).LocalMonotonicRead(rec.Snapshot())
	if !rep.OK {
		t.Fatal("plateau rejected")
	}
}

func TestLocalMonotonicReadAllowsBranchSwitchSameScore(t *testing.T) {
	rec := history.NewRecorder(1, nil)
	a := chainN(2)
	b := forkN(a, 0, 2)
	recordChain(rec, a, b)
	rec.Read(0, a)
	rec.Read(0, b) // different branch, same score
	rep := NewChecker(nil, nil).LocalMonotonicRead(rec.Snapshot())
	if !rep.OK {
		t.Fatalf("same-score branch switch rejected: %v", rep.Violations)
	}
}

func TestStrongPrefixDetectsDivergence(t *testing.T) {
	rec := history.NewRecorder(2, nil)
	a := chainN(3)
	b := forkN(a, 1, 2)
	recordChain(rec, a, b)
	rec.Read(0, a)
	rec.Read(1, b)
	chk := NewChecker(nil, nil)
	h := rec.Snapshot()
	if chk.StrongPrefix(h).OK {
		t.Fatal("divergence not detected")
	}
	if chk.StrongPrefixFast(h).OK {
		t.Fatal("fast variant missed divergence")
	}
}

func TestStrongPrefixHoldsOnPrefixes(t *testing.T) {
	rec := history.NewRecorder(2, nil)
	c := chainN(4)
	recordChain(rec, c)
	rec.Read(0, c[:2])
	rec.Read(1, c[:4])
	rec.Read(0, c)
	chk := NewChecker(nil, nil)
	h := rec.Snapshot()
	if !chk.StrongPrefix(h).OK || !chk.StrongPrefixFast(h).OK {
		t.Fatal("prefix-ordered reads rejected")
	}
}

func TestEverGrowingTree(t *testing.T) {
	rec := history.NewRecorder(1, nil)
	c := chainN(5)
	recordChain(rec, c)
	for i := 1; i <= 5; i++ {
		rec.Read(0, c[:i+1])
	}
	chk := NewChecker(nil, nil)
	if rep := chk.EverGrowingTree(rec.Snapshot()); !rep.OK {
		t.Fatalf("growing reads rejected: %v", rep.Violations)
	}
}

func TestEverGrowingTreeStuckProcess(t *testing.T) {
	// Process 1 keeps reading a stale *prefix* of the chain to the
	// very end while process 0's reads grow: that is persistent
	// stagnation (Ever Growing Tree violated), but NOT structural
	// divergence (the stale chain prefixes the long one, so Eventual
	// Prefix holds). Verify exactly that split.
	rec := history.NewRecorder(2, nil)
	full := chainN(6)
	recordChain(rec, full)
	rec.Read(1, full[:1]) // stuck at genesis
	rec.Read(0, full[:3])
	rec.Read(1, full[:1])
	rec.Read(0, full[:4])
	rec.Read(0, full)
	rec.Read(1, full[:1]) // still stuck in the final window
	chk := NewChecker(nil, nil)
	h := rec.Snapshot()
	if rep := chk.EverGrowingTree(h); rep.OK {
		t.Fatal("persistent stagnation not detected")
	}
	if rep := chk.EventualPrefix(h); !rep.OK {
		t.Fatalf("prefix-stuck process flagged as divergence: %v", rep.Violations)
	}
}

func TestEverGrowingTreeViolated(t *testing.T) {
	// Process 1's reads stagnate at score 1 into the final window
	// while process 0's reads grow past it.
	rec := history.NewRecorder(2, nil)
	c := chainN(4)
	recordChain(rec, c)
	rec.Read(1, c[:2]) // score 1
	rec.Read(0, c[:3]) // score 2
	rec.Read(1, c[:2]) // still 1
	rec.Read(0, c)     // score 4 — growth
	rec.Read(1, c[:2]) // stagnant in the final window
	if rep := NewChecker(nil, nil).EverGrowingTree(rec.Snapshot()); rep.OK {
		t.Fatal("stagnant reads accepted")
	}
}

func TestEverGrowingTreeFrontierExempt(t *testing.T) {
	// All final-window reads sit at the maximum score: that is the
	// truncation frontier, not stagnation.
	rec := history.NewRecorder(2, nil)
	c := chainN(3)
	recordChain(rec, c)
	rec.Read(0, c[:2])
	rec.Read(1, c[:3])
	rec.Read(0, c)
	rec.Read(1, c)
	if rep := NewChecker(nil, nil).EverGrowingTree(rec.Snapshot()); !rep.OK {
		t.Fatalf("frontier reads flagged: %v", rep.Violations)
	}
}

func TestEventualPrefixDivergenceDetected(t *testing.T) {
	// Two processes end on different branches of equal score.
	rec := history.NewRecorder(2, nil)
	a := chainN(4)
	b := forkN(a, 1, 3)
	recordChain(rec, a, b)
	rec.Read(0, a[:2])
	rec.Read(1, b[:3])
	rec.Read(0, a)
	rec.Read(1, b)
	if rep := NewChecker(nil, nil).EventualPrefix(rec.Snapshot()); rep.OK {
		t.Fatal("persistent branch divergence not detected")
	}
}

func TestEventualPrefixConvergence(t *testing.T) {
	rec := history.NewRecorder(2, nil)
	a := chainN(4)
	b := forkN(a, 1, 1)
	recordChain(rec, a, b)
	rec.Read(0, b) // diverged early read
	rec.Read(1, a[:3])
	rec.Read(0, a[:4])
	rec.Read(1, a[:4])
	rec.Read(0, a)
	rec.Read(1, a)
	rep := NewChecker(nil, nil).EventualPrefix(rec.Snapshot())
	if !rep.OK {
		t.Fatalf("converging history rejected: %v", rep.Violations)
	}
}

func TestKForkCoherence(t *testing.T) {
	rec := history.NewRecorder(2, nil)
	g := core.Genesis()
	tok := "tkn(b0)"
	b1 := core.NewBlock(g.ID, 1, 0, 1, nil).WithToken(tok)
	b2 := core.NewBlock(g.ID, 1, 1, 2, nil).WithToken(tok)
	rec.Append(0, b1, true)
	rec.Append(1, b2, true)
	chk := NewChecker(nil, nil)
	h := rec.Snapshot()
	if chk.KForkCoherence(h, 1).OK {
		t.Fatal("two tokens accepted at k=1")
	}
	if !chk.KForkCoherence(h, 2).OK {
		t.Fatal("two tokens rejected at k=2")
	}
}

func TestKForkCoherenceGroupsByParentWithoutToken(t *testing.T) {
	rec := history.NewRecorder(2, nil)
	g := core.Genesis()
	b1 := core.NewBlock(g.ID, 1, 0, 1, nil)
	b2 := core.NewBlock(g.ID, 1, 1, 2, nil)
	rec.Append(0, b1, true)
	rec.Append(1, b2, true)
	chk := NewChecker(nil, nil)
	if chk.KForkCoherence(rec.Snapshot(), 1).OK {
		t.Fatal("untokenized same-parent appends not grouped")
	}
}

func TestKForkCoherenceIgnoresFailedAppends(t *testing.T) {
	rec := history.NewRecorder(2, nil)
	g := core.Genesis()
	tok := "tkn(b0)"
	rec.Append(0, core.NewBlock(g.ID, 1, 0, 1, nil).WithToken(tok), true)
	rec.Append(1, core.NewBlock(g.ID, 1, 1, 2, nil).WithToken(tok), false)
	if !NewChecker(nil, nil).KForkCoherence(rec.Snapshot(), 1).OK {
		t.Fatal("failed append counted against k")
	}
}

func TestVerdictAggregation(t *testing.T) {
	rec := history.NewRecorder(2, nil)
	c := chainN(3)
	recordChain(rec, c)
	rec.Read(0, c[:2])
	rec.Read(1, c[:3])
	rec.Read(0, c)
	rec.Read(1, c)
	chk := NewChecker(nil, nil)
	sc, ec := chk.Classify(rec.Snapshot())
	if !sc.OK || !ec.OK {
		t.Fatalf("clean history rejected: %s / %s", sc, ec)
	}
	if sc.Criterion != "SC" || ec.Criterion != "EC" {
		t.Fatal("criterion labels wrong")
	}
	if len(sc.Failing()) != 0 {
		t.Fatal("Failing nonempty on OK verdict")
	}
}

func TestFaultyReadsExcluded(t *testing.T) {
	rec := history.NewRecorder(2, nil)
	a := chainN(3)
	b := forkN(a, 0, 3)
	recordChain(rec, a, b)
	rec.Read(0, a)
	rec.Read(1, b) // Byzantine process reads garbage
	rec.MarkFaulty(1)
	chk := NewChecker(nil, nil)
	if !chk.StrongPrefix(rec.Snapshot()).OK {
		t.Fatal("faulty process's read affected Strong Prefix")
	}
}

// Property (Theorem 3.1 sampled): on randomly generated prefix-ordered
// histories, SC ⇒ EC.
func TestQuickSCImpliesEC(t *testing.T) {
	f := func(lens []uint8, procsRaw uint8) bool {
		procs := int(procsRaw%3) + 1
		full := chainN(12)
		rec := history.NewRecorder(procs, nil)
		recordChain(rec, full)
		last := make([]int, procs)
		for i, l := range lens {
			p := i % procs
			n := int(l % 13)
			if n < last[p] {
				n = last[p] // keep local monotonicity
			}
			last[p] = n
			rec.Read(p, full[:n+1])
		}
		h := rec.Snapshot()
		chk := NewChecker(nil, nil)
		sc, ec := chk.Classify(h)
		if sc.OK && !ec.OK {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: the pairwise and sorted Strong Prefix checkers agree.
func TestQuickStrongPrefixVariantsAgree(t *testing.T) {
	full := chainN(10)
	alt := forkN(full, 3, 7)
	f := func(pick []bool) bool {
		rec := history.NewRecorder(2, nil)
		recordChain(rec, full, alt)
		for i, b := range pick {
			n := i%9 + 1
			if b {
				rec.Read(i%2, full[:n+1])
			} else {
				rec.Read(i%2, alt[:n+1])
			}
		}
		h := rec.Snapshot()
		chk := NewChecker(nil, nil)
		return chk.StrongPrefix(h).OK == chk.StrongPrefixFast(h).OK
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: k-fork coherence is monotone in k (Theorem 3.4's engine).
func TestQuickForkCoherenceMonotone(t *testing.T) {
	g := core.Genesis()
	f := func(count uint8, k1Raw, k2Raw uint8) bool {
		n := int(count%6) + 1
		rec := history.NewRecorder(1, nil)
		for i := 0; i < n; i++ {
			b := core.NewBlock(g.ID, 1, i, i, nil).WithToken("tkn(b0)")
			rec.Append(0, b, true)
		}
		k1 := int(k1Raw%8) + 1
		k2 := k1 + int(k2Raw%8)
		h := rec.Snapshot()
		chk := NewChecker(nil, nil)
		ok1 := chk.KForkCoherence(h, k1).OK
		ok2 := chk.KForkCoherence(h, k2).OK
		// k1 ≤ k2: coherence at k1 implies coherence at k2.
		if ok1 && !ok2 {
			return false
		}
		// Exact characterisation: coherent at k iff n ≤ k.
		return ok1 == (n <= k1) && ok2 == (n <= k2)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestCheckerDefaults(t *testing.T) {
	chk := NewChecker(nil, nil)
	if chk.Score.Name() != "length" || chk.P.Name() != "always" {
		t.Fatal("defaults wrong")
	}
}
