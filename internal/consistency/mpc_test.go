package consistency

import (
	"testing"

	"repro/internal/history"
)

func TestMPCHoldsOnExtendingReads(t *testing.T) {
	rec := history.NewRecorder(2, nil)
	c := chainN(4)
	recordChain(rec, c)
	rec.Read(0, c[:2])
	rec.Read(1, c[:3])
	rec.Read(0, c[:4])
	rec.Read(1, c)
	rep := NewChecker(nil, nil).MonotonicPrefix(rec.Snapshot())
	if !rep.OK {
		t.Fatalf("extending reads rejected: %v", rep.Violations)
	}
	if rep.Checked != 2 {
		t.Fatalf("checked %d pairs, want 2 (one per process)", rep.Checked)
	}
}

func TestMPCDetectsReorg(t *testing.T) {
	rec := history.NewRecorder(1, nil)
	a := chainN(3)
	b := forkN(a, 1, 2) // same length, different branch
	recordChain(rec, a, b)
	rec.Read(0, a)
	rec.Read(0, b) // same score: LMR passes, MPC must fail
	chk := NewChecker(nil, nil)
	h := rec.Snapshot()
	if rep := chk.LocalMonotonicRead(h); !rep.OK {
		t.Fatalf("LMR should tolerate the same-score switch: %v", rep.Violations)
	}
	if rep := chk.MonotonicPrefix(h); rep.OK {
		t.Fatal("reorg not detected by MPC")
	}
}

func TestMPCIgnoresCrossProcessLag(t *testing.T) {
	// A later read by a *different* process may lag behind (its
	// replica has not caught up): session MPC does not flag it.
	rec := history.NewRecorder(2, nil)
	c := chainN(3)
	recordChain(rec, c)
	rec.Read(0, c)     // p0 far ahead
	rec.Read(1, c[:2]) // p1 lagging — ordered after p0's read
	rep := NewChecker(nil, nil).MonotonicPrefix(rec.Snapshot())
	if !rep.OK {
		t.Fatalf("cross-process lag flagged: %v", rep.Violations)
	}
}

func TestMPCExcludesFaulty(t *testing.T) {
	rec := history.NewRecorder(2, nil)
	a := chainN(3)
	b := forkN(a, 0, 3)
	recordChain(rec, a, b)
	rec.Read(1, a)
	rec.Read(1, b) // Byzantine reorg
	rec.MarkFaulty(1)
	rep := NewChecker(nil, nil).MonotonicPrefix(rec.Snapshot())
	if !rep.OK == false && rep.Checked != 0 {
		t.Fatal("faulty process counted")
	}
	if !rep.OK {
		t.Fatalf("faulty process's reorg flagged: %v", rep.Violations)
	}
}

func TestMPCImpliedByStrongPrefixPlusGrowth(t *testing.T) {
	// On a single growing chain read in response order, SP and MPC
	// both hold — the k=1 consensus family's shape.
	rec := history.NewRecorder(3, nil)
	c := chainN(6)
	recordChain(rec, c)
	for i := 1; i <= 6; i++ {
		rec.Read(i%3, c[:i+1])
	}
	chk := NewChecker(nil, nil)
	h := rec.Snapshot()
	if !chk.StrongPrefix(h).OK || !chk.MonotonicPrefix(h).OK {
		t.Fatal("clean chain run rejected")
	}
}
