// The online Monitor family: the batch checkers of consistency.go
// refactored into incremental form. A Monitor implements history.Sink —
// operations are fed to it the moment their response is recorded — and
// maintains O(tree + window) state instead of the whole history:
//
//   - StrongPrefix: per-chain-length run-length structure over the
//     interned chain handles, plus a live comparability probe against
//     the longest chain read so far;
//   - 1-/k-ForkCoherence: per-token append groups, flagged live the
//     moment a token is consumed a (k+1)-th time;
//   - EverGrowingTree / EventualPrefix: a sliding window of the last w
//     reads (the finitary liveness tail) with bounded per-score-class
//     candidate retention, so the windowed MCPS state never grows with
//     the run;
//   - BlockValidity / LocalMonotonicRead: incremental per-chain facts
//     and per-process previous-read state.
//
// Violation Witnesses are emitted through OnWitness the moment they
// form (live channel, advisory for the window properties), and
// Finalize() reconstructs Verdicts equivalent to batch Classify: OK
// flags, Violations and Witnesses (details, op identities, blocks) are
// byte-identical. Report.Checked counts are reconstructed exactly for
// histories whose completed operations are atomic (invocation and
// response adjacent — every simulator run); they may differ from the
// batch count on histories with overlapping completed operations, which
// is documented as the one permitted divergence.
//
// Boundedness: retained state is O(#blocks + #distinct chains + w +
// (MaxViolations+procs)·#distinct scores + #successful appends) — all
// bounded by the block tree and the window, never by the number of
// reads, which dominate long runs.
//
// Soundness of the bounded candidate retention (the "staircase" bound):
// within one retention class (a score class for EGT/EP, a suspect chain
// for BV) the violation status is monotone in the response index — if a
// read is violated, any same-class read with an earlier-or-equal
// response is violated too. A read evicted from the first
// MaxViolations+procs (by invocation order) therefore has at least
// MaxViolations+procs earlier-invoked classmates, of which at most
// procs−1 can be non-violated when the evicted read is violated (a
// non-violated earlier-invoked classmate must respond after the evicted
// read responds, i.e. span it entirely; processes are sequential, so at
// most one op per other process spans any instant). That leaves ≥
// MaxViolations+1 violated reads strictly earlier in the batch checking
// order: the evicted read can never be among the MaxViolations reported
// witnesses.
package consistency

import (
	"fmt"
	"sort"

	"repro/internal/core"
	"repro/internal/history"
)

// MonitorConfig parameterizes a Monitor.
type MonitorConfig struct {
	// Procs is the process count of the monitored run (the recorder's).
	Procs int
	// Score and P mirror Checker.Score / Checker.P (nil means length
	// score / always-valid).
	Score core.Score
	P     core.Predicate
	// Horizon overrides the liveness tail-window size; 0 means
	// max(2, Procs) — the batch checker's default.
	Horizon int
	// K, when > 0, arms the live k-Fork Coherence probe: a witness is
	// emitted the moment a token is consumed a (K+1)-th time. Token
	// groups are tracked regardless, so KForkReport works for any k.
	K int
	// Table is the run's shared chain table; witness reconstruction and
	// incremental scoring materialize chains from it without growing
	// its memo cache. May be nil for histories recorded with explicit
	// chains (RespondRead), which the monitor retains on the few ops it
	// keeps.
	Table *history.ChainTable
	// OnWitness, when set, receives each violation witness the moment
	// it forms. It runs under the recorder's lock: keep it fast and do
	// not call back into the recorder. Live witnesses for the window
	// properties (EverGrowingTree, EventualPrefix) cannot exist — those
	// violations are defined over the final window and only form at
	// Finalize; live StrongPrefix witnesses are advisory incomparable
	// pairs (the exact batch witness set comes from Finalize).
	OnWitness func(Witness)
}

// opRec is the compact record of one operation the monitors retain:
// everything needed to rebuild the op for a witness, nothing that
// retains the history (the chain field is only set for reads recorded
// with an explicit chain; interned reads re-materialize from the table).
type opRec struct {
	id, proc    int
	kind        history.OpKind
	ok, pending bool
	head        core.BlockID
	chainLen    int
	inv, rsp    int
	invT, rspT  int64
	block       *core.Block
	chain       core.Chain
	score       int // read score (reads only)
	ord         int // position in the correct-read order (reads only)
}

func (r opRec) key() chainKey { return chainKey{r.head, r.chainLen} }

func recOf(op *history.Op) opRec {
	return opRec{
		id: op.ID, proc: op.Proc, kind: op.Kind, ok: op.OK, pending: op.Pending,
		head: op.Head, chainLen: op.ChainLen, inv: op.InvIndex, rsp: op.RspIndex,
		invT: op.InvTime, rspT: op.RspTime, block: op.Block, chain: op.EagerChain(),
	}
}

// recSet retains the first cap records by invocation index (the batch
// checking order) of one retention class.
type recSet struct {
	recs      []opRec
	truncated bool
}

func (s *recSet) insert(r opRec, cap int) {
	n := len(s.recs)
	if n == 0 || s.recs[n-1].inv < r.inv {
		s.recs = append(s.recs, r)
	} else {
		i := sort.Search(n, func(i int) bool { return s.recs[i].inv > r.inv })
		s.recs = append(s.recs, opRec{})
		copy(s.recs[i+1:], s.recs[i:])
		s.recs[i] = r
	}
	if len(s.recs) > cap {
		s.recs = s.recs[:cap]
		s.truncated = true
	}
}

// bvFact is the incremental Block Validity scan of one distinct chain.
// A fact computed at arrival time stays conclusive on the pass side:
// later appends only add blocks or lower earliest-invocation indices,
// so arrival-clean chains are final-clean and arrival-passing bounds
// keep passing. Reads that fail at arrival become suspects, re-resolved
// against the final append index at Finalize.
type bvFact struct {
	clean        bool
	maxAppendInv int
	nonGenesis   int
	firstInvalid core.BlockID
	hasInvalid   bool
}

// spRun is one maximal run of equal interned chains in the sorted-read
// order within one chain length.
type spRun struct {
	key         chainKey
	first, last opRec
	n           int
}

// spRunsCap bounds the runs retained per chain length: a truncated
// length has ≥ spRunsCap−1 adjacent-pair violations among its retained
// runs, which exceeds MaxViolations, so the report is always full
// before the truncated region is reached.
const spRunsCap = MaxViolations + 2

// spLen is the per-chain-length StrongPrefix state.
type spLen struct {
	runs      []spRun
	truncated bool
	last      opRec // true latest arrival of this length
	count     int
}

// lmrPair is one recorded Local Monotonic Read violation.
type lmrPair struct{ prev, cur opRec }

// Monitor is the online counterpart of Checker: feed it a history as it
// is recorded (it implements history.Sink), then Finalize for the batch
// verdicts. Not safe for concurrent use; the Recorder serializes sink
// calls under its own lock.
type Monitor struct {
	score   core.Score
	pred    core.Predicate
	table   *history.ChainTable
	procs   int
	window  int
	cap     int
	k       int
	onWitns func(Witness)

	faulty map[int]bool

	ops, nreads, nappends, ncomm int

	scoreByKey map[chainKey]int

	// win is the sliding liveness tail: the last `window` correct reads
	// by invocation index.
	win []opRec

	// LocalMonotonicRead per-process state.
	lmrPrev    []opRec
	lmrHas     []bool
	lmrViol    [][]lmrPair
	lmrChecked int

	// StrongPrefix state.
	spLens   map[int]*spLen
	spMax    opRec
	spHasMax bool
	spCmp    map[chainKey]bool

	// EverGrowingTree / EventualPrefix candidates per score class.
	classes map[int]*recSet

	// BlockValidity state.
	bvFacts    map[chainKey]*bvFact
	bvSuspects map[chainKey]*recSet
	bvChecked  int
	appendInv  map[core.BlockID]opRec

	// k-Fork Coherence token groups (successful appends per token).
	tokens map[string][]opRec

	// live emission caps per property.
	liveLMR, liveSP, liveBV, liveKF int
	liveTotal                       int

	finalized bool
	scV, ecV  *Verdict
}

// NewMonitor builds an online monitor. Attach it to a Recorder with
// SetSink (or feed it segments via ConsumeSegment) before the first
// operation is recorded; processes must be marked faulty before their
// first read for the exclusion semantics to match the batch checker.
func NewMonitor(cfg MonitorConfig) *Monitor {
	if cfg.Score == nil {
		cfg.Score = core.LengthScore{}
	}
	if cfg.P == nil {
		cfg.P = core.AlwaysValid{}
	}
	procs := cfg.Procs
	if procs < 1 {
		procs = 1
	}
	w := cfg.Horizon
	if w <= 0 {
		w = cfg.Procs
		if w < 2 {
			w = 2
		}
	}
	m := &Monitor{
		score:      cfg.Score,
		pred:       cfg.P,
		table:      cfg.Table,
		procs:      cfg.Procs,
		window:     w,
		cap:        MaxViolations + procs,
		k:          cfg.K,
		onWitns:    cfg.OnWitness,
		faulty:     make(map[int]bool),
		scoreByKey: make(map[chainKey]int),
		spLens:     make(map[int]*spLen),
		spCmp:      make(map[chainKey]bool),
		classes:    make(map[int]*recSet),
		bvFacts:    make(map[chainKey]*bvFact),
		bvSuspects: make(map[chainKey]*recSet),
		appendInv:  make(map[core.BlockID]opRec),
		tokens:     make(map[string][]opRec),
	}
	if cfg.Procs > 0 {
		m.lmrPrev = make([]opRec, cfg.Procs)
		m.lmrHas = make([]bool, cfg.Procs)
		m.lmrViol = make([][]lmrPair, cfg.Procs)
	}
	return m
}

// Faulty implements history.Sink: process p's reads are excluded from
// the criteria. Mark before p's first read (the adversary subsystem
// marks at wiring time, before the simulation starts).
func (m *Monitor) Faulty(p int) { m.faulty[p] = true }

// CommDone implements history.Sink. Communication events do not enter
// the consistency criteria; they are only counted.
func (m *Monitor) CommDone(history.CommEvent) { m.ncomm++ }

// OpDone implements history.Sink: consume one completed operation.
func (m *Monitor) OpDone(op *history.Op) {
	m.ops++
	switch op.Kind {
	case history.OpAppend:
		m.consumeAppend(op, false)
	case history.OpRead:
		m.consumeRead(op)
	}
}

// OpPending delivers an operation that never completed (fed by the
// finalizer from the recorder's pending set): Block Validity counts
// pending append invocations; pending reads carry no result.
func (m *Monitor) OpPending(op *history.Op) {
	if op.Kind == history.OpAppend {
		m.consumeAppend(op, true)
	}
}

// ConsumeSegment feeds one sealed history segment (see
// history.SegmentSink) to the monitor.
func (m *Monitor) ConsumeSegment(seg *history.Segment) {
	if seg == nil {
		return
	}
	for _, op := range seg.Ops {
		m.OpDone(op)
	}
	for _, e := range seg.Comm {
		m.CommDone(e)
	}
}

func (m *Monitor) consumeAppend(op *history.Op, pending bool) {
	if !pending {
		m.nappends++
	}
	if op.Block == nil {
		return
	}
	rec := recOf(op)
	if cur, ok := m.appendInv[op.Block.ID]; !ok || rec.inv < cur.inv {
		m.appendInv[op.Block.ID] = rec
	}
	if pending || !op.OK {
		return
	}
	key := op.Block.Token
	if key == "" {
		key = "parent:" + string(op.Block.Parent)
	}
	m.tokens[key] = append(m.tokens[key], rec)
	if m.k > 0 && len(m.tokens[key]) == m.k+1 && m.liveKF < MaxViolations {
		m.liveKF++
		group := m.tokens[key]
		blocks := make([]core.BlockID, len(group))
		ops := make([]*history.Op, len(group))
		for i, g := range group {
			blocks[i] = g.block.ID
			ops[i] = m.rebuild(g)
		}
		m.emit(Witness{
			Property: fmt.Sprintf("%d-ForkCoherence", m.k),
			Ops:      ops, Blocks: blocks,
			Detail: fmt.Sprintf("token %q consumed by %d successful appends (k=%d): forks %s",
				key, len(group), m.k, shortIDs(blocks)),
		})
	}
}

func (m *Monitor) consumeRead(op *history.Op) {
	if m.faulty[op.Proc] {
		return
	}
	rec := recOf(op)
	rec.score = m.scoreOfOp(op)
	rec.ord = m.nreads
	m.nreads++

	// LocalMonotonicRead: compare against the process's previous read.
	if p := rec.proc; p >= 0 && p < len(m.lmrPrev) {
		if m.lmrHas[p] {
			m.lmrChecked++
			if prev := m.lmrPrev[p]; prev.score > rec.score {
				if len(m.lmrViol[p]) < MaxViolations {
					m.lmrViol[p] = append(m.lmrViol[p], lmrPair{prev, rec})
				}
				if m.liveLMR < MaxViolations {
					m.liveLMR++
					prevOp := m.rebuild(prev)
					m.emit(Witness{
						Property: "LocalMonotonicRead",
						Ops:      []*history.Op{prevOp, op},
						Blocks:   []core.BlockID{prev.head, rec.head},
						Detail: fmt.Sprintf("process %d: score dropped %d → %d (%s then %s)",
							p, prev.score, rec.score, prevOp, op),
					})
				}
			}
		}
		m.lmrPrev[p], m.lmrHas[p] = rec, true
	}

	// BlockValidity: shared per-chain fact, arrival-conclusive on the
	// pass side; failures become suspects re-resolved at Finalize.
	fact := m.factOfOp(op)
	m.bvChecked += fact.nonGenesis
	if !(fact.clean && fact.maxAppendInv < rec.rsp) {
		set := m.bvSuspects[rec.key()]
		if set == nil {
			set = &recSet{}
			m.bvSuspects[rec.key()] = set
		}
		set.insert(rec, m.cap)
		if fact.hasInvalid && m.liveBV < MaxViolations {
			m.liveBV++
			m.emit(Witness{
				Property: "BlockValidity",
				Ops:      []*history.Op{op},
				Blocks:   []core.BlockID{fact.firstInvalid},
				Detail:   fmt.Sprintf("read %s returned block %s with P(b)=false", op, fact.firstInvalid.Short()),
			})
		}
	}

	// Liveness tail window: last `window` correct reads by invocation.
	m.winInsert(rec)

	// EverGrowingTree / EventualPrefix candidates per score class.
	cls := m.classes[rec.score]
	if cls == nil {
		cls = &recSet{}
		m.classes[rec.score] = cls
	}
	cls.insert(rec, m.cap)

	// StrongPrefix run-length structure + live comparability probe.
	m.spConsume(rec, op)
}

func (m *Monitor) winInsert(r opRec) {
	n := len(m.win)
	if n == 0 || m.win[n-1].inv < r.inv {
		m.win = append(m.win, r)
	} else {
		i := sort.Search(n, func(i int) bool { return m.win[i].inv > r.inv })
		m.win = append(m.win, opRec{})
		copy(m.win[i+1:], m.win[i:])
		m.win[i] = r
	}
	if len(m.win) > m.window {
		copy(m.win, m.win[1:])
		m.win = m.win[:len(m.win)-1]
	}
}

func (m *Monitor) spConsume(rec opRec, op *history.Op) {
	sl := m.spLens[rec.chainLen]
	if sl == nil {
		sl = &spLen{}
		m.spLens[rec.chainLen] = sl
	}
	k := rec.key()
	switch {
	case sl.truncated:
		// Beyond the retained runs: only the true last matters.
	case len(sl.runs) > 0 && sl.runs[len(sl.runs)-1].key == k:
		run := &sl.runs[len(sl.runs)-1]
		run.last = rec
		run.n++
	case len(sl.runs) < spRunsCap:
		sl.runs = append(sl.runs, spRun{key: k, first: rec, last: rec, n: 1})
	default:
		sl.truncated = true
	}
	sl.last = rec
	sl.count++

	// Live incomparability probe against the longest chain read so far.
	// Advisory: false negatives are possible after the anchor moves;
	// the exact batch witness set comes from Finalize.
	if !m.spHasMax {
		m.spMax, m.spHasMax = rec, true
		return
	}
	maxK := m.spMax.key()
	if k == maxK || m.spCmp[k] {
		if rec.chainLen > m.spMax.chainLen {
			m.spMax = rec
		}
		return
	}
	if m.comparable(k, maxK) {
		m.spCmp[k] = true
	} else if m.liveSP < MaxViolations {
		m.liveSP++
		maxOp := m.rebuild(m.spMax)
		m.emit(Witness{
			Property: "StrongPrefix",
			Ops:      []*history.Op{maxOp, op},
			Blocks:   []core.BlockID{m.spMax.head, rec.head},
			Detail:   fmt.Sprintf("incomparable reads: %s vs %s", maxOp, op),
		})
	}
	if rec.chainLen > m.spMax.chainLen {
		m.spMax = rec
	}
}

// comparable probes whether the chains behind two interned keys are
// prefix-comparable, by walking parent links in the table (O(Δheight),
// no materialization).
func (m *Monitor) comparable(a, b chainKey) bool {
	if a == b {
		return true
	}
	short, long := a, b
	if short.n > long.n {
		short, long = long, short
	}
	if m.table == nil {
		return false
	}
	anc := m.table.AncestorAt(long.head, short.n-1)
	return anc != nil && anc.ID == short.head
}

func (m *Monitor) scoreOfOp(op *history.Op) int {
	k := keyOf(op)
	if s, ok := m.scoreByKey[k]; ok {
		return s
	}
	s := m.score.Of(op.ChainUncached())
	m.scoreByKey[k] = s
	return s
}

func (m *Monitor) factOfOp(op *history.Op) *bvFact {
	k := keyOf(op)
	if f, ok := m.bvFacts[k]; ok {
		return f
	}
	f := m.scanFact(op.ChainUncached())
	m.bvFacts[k] = f
	return f
}

func (m *Monitor) scanFact(c core.Chain) *bvFact {
	f := &bvFact{clean: true, maxAppendInv: -1}
	for _, b := range c {
		if b.IsGenesis() {
			continue
		}
		f.nonGenesis++
		if !m.pred.Valid(b) {
			f.clean = false
			if !f.hasInvalid {
				f.hasInvalid, f.firstInvalid = true, b.ID
			}
			continue
		}
		ap, ok := m.appendInv[b.ID]
		if !ok {
			f.clean = false
			continue
		}
		if ap.inv > f.maxAppendInv {
			f.maxAppendInv = ap.inv
		}
	}
	return f
}

func (m *Monitor) emit(w Witness) {
	m.liveTotal++
	if m.onWitns != nil {
		m.onWitns(w)
	}
}

// LiveWitnesses reports how many live witnesses have been emitted.
func (m *Monitor) LiveWitnesses() int { return m.liveTotal }

// rebuild reconstructs a witness-grade *history.Op from a compact
// record; its String/Chain renderings equal the original op's.
func (m *Monitor) rebuild(r opRec) *history.Op {
	op := &history.Op{
		ID: r.id, Proc: r.proc, Kind: r.kind, Block: r.block, OK: r.ok,
		Head: r.head, ChainLen: r.chainLen, InvIndex: r.inv, RspIndex: r.rsp,
		InvTime: r.invT, RspTime: r.rspT, Pending: r.pending,
	}
	op.SetSource(m.table, r.chain)
	return op
}

// mergedByInv flattens the given sets and sorts by invocation index —
// the batch checking order.
func mergedByInv[K comparable](sets map[K]*recSet) []opRec {
	var out []opRec
	for _, s := range sets {
		out = append(out, s.recs...)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].inv < out[j].inv })
	return out
}

// Finalize closes the stream and returns the SC and EC verdicts,
// equivalent to batch Classify on the full history (see the package
// comment for the exact equivalence contract). Idempotent.
func (m *Monitor) Finalize() (sc, ec *Verdict) {
	if m.finalized {
		return m.scV, m.ecV
	}
	m.finalized = true
	bv := m.finalBV()
	lmr := m.finalLMR()
	sp := m.finalSP()
	egt := m.finalEGT()
	ep := m.finalEP()
	m.scV = verdictOf("SC", bv, lmr, sp, egt)
	m.ecV = verdictOf("EC", bv, lmr, egt, ep)
	return m.scV, m.ecV
}

func (m *Monitor) finalBV() *Report {
	rep := &Report{Property: "BlockValidity", OK: true, Checked: m.bvChecked}
	sus := mergedByInv(m.bvSuspects)
	finalFacts := make(map[chainKey]*bvFact, len(m.bvSuspects))
	for _, rec := range sus {
		f, ok := finalFacts[rec.key()]
		if !ok {
			f = m.scanFact(m.rebuild(rec).ChainUncached())
			finalFacts[rec.key()] = f
		}
		if f.clean && f.maxAppendInv < rec.rsp {
			continue // suspect resolved clean against the final appends
		}
		r := m.rebuild(rec)
		for _, b := range r.Chain() {
			if b.IsGenesis() {
				continue
			}
			if !m.pred.Valid(b) {
				rep.witness([]*history.Op{r}, []core.BlockID{b.ID},
					"read %s returned block %s with P(b)=false", r, b.ID.Short())
				continue
			}
			ap, ok := m.appendInv[b.ID]
			if !ok {
				rep.witness([]*history.Op{r}, []core.BlockID{b.ID},
					"read %s returned block %s never passed to append()", r, b.ID.Short())
				continue
			}
			if ap.inv >= rec.rsp {
				rep.witness([]*history.Op{r, m.rebuild(ap)}, []core.BlockID{b.ID},
					"read %s returned block %s appended only later (inv %d ≥ rsp %d)",
					r, b.ID.Short(), ap.inv, rec.rsp)
			}
		}
		if len(rep.Violations) == MaxViolations {
			break
		}
	}
	return rep
}

func (m *Monitor) finalLMR() *Report {
	rep := &Report{Property: "LocalMonotonicRead", OK: true, Checked: m.lmrChecked}
	for p := 0; p < len(m.lmrViol); p++ {
		if m.faulty[p] {
			continue
		}
		for _, pair := range m.lmrViol[p] {
			if len(rep.Violations) == MaxViolations {
				return rep
			}
			prevOp, curOp := m.rebuild(pair.prev), m.rebuild(pair.cur)
			rep.witness([]*history.Op{prevOp, curOp}, []core.BlockID{pair.prev.head, pair.cur.head},
				"process %d: score dropped %d → %d (%s then %s)",
				p, pair.prev.score, pair.cur.score, prevOp, curOp)
		}
	}
	return rep
}

func (m *Monitor) finalSP() *Report {
	rep := &Report{Property: "StrongPrefix", OK: true}
	if m.nreads < 2 {
		return rep
	}
	rep.Checked = m.nreads - 1
	lens := make([]int, 0, len(m.spLens))
	for l := range m.spLens {
		lens = append(lens, l)
	}
	sort.Ints(lens)
	var prev opRec
	havePrev := false
	for _, l := range lens {
		sl := m.spLens[l]
		for _, run := range sl.runs {
			if havePrev && prev.key() != run.first.key() {
				pOp, cOp := m.rebuild(prev), m.rebuild(run.first)
				if !pOp.Chain().Prefix(cOp.Chain()) {
					rep.witness([]*history.Op{pOp, cOp}, []core.BlockID{prev.head, run.first.head},
						"incomparable reads: %s vs %s", pOp, cOp)
					if len(rep.Violations) == MaxViolations {
						return rep
					}
				}
			}
			prev, havePrev = run.last, true
		}
		// Cross-length boundaries pair this length's true last read
		// with the next length's first (exact even when runs were
		// truncated — truncation implies the report filled above).
		prev, havePrev = sl.last, true
	}
	return rep
}

func (m *Monitor) finalEGT() *Report {
	rep := &Report{Property: "EverGrowingTree", OK: true, Checked: m.nreads}
	for _, r := range mergedByInv(m.classes) {
		maxT := -1
		stale := -1
		for j := range m.win {
			t := &m.win[j]
			if r.pending || r.rsp >= t.inv { // !r.Before(t)
				continue
			}
			if t.score > maxT {
				maxT = t.score
			}
			if t.score <= r.score && stale < 0 {
				stale = j
			}
		}
		if stale >= 0 && maxT > r.score {
			rOp, sOp := m.rebuild(r), m.rebuild(m.win[stale])
			rep.witness([]*history.Op{rOp, sOp}, []core.BlockID{r.head, m.win[stale].head},
				"stagnation persists after %s: final-window read %s has score ≤ %d while the window grew to %d",
				rOp, sOp, r.score, maxT)
			if len(rep.Violations) == MaxViolations {
				rep.Checked = r.ord + 1 // batch stops scanning here
				return rep
			}
		}
	}
	return rep
}

// epPairs returns the batch Checked contribution of the read at the
// given correct-read position, assuming atomic completed operations:
// every pre-window read sees all w window reads after it; the window
// member at position j sees the w−1−j later ones.
func (m *Monitor) epPairs(ord int) int {
	w := len(m.win)
	nonWin := m.nreads - w
	k := w
	if ord >= nonWin {
		k = w - 1 - (ord - nonWin)
	}
	return k * (k - 1) / 2
}

func (m *Monitor) finalEP() *Report {
	rep := &Report{Property: "EventualPrefix", OK: true}
	tail := m.win
	w := len(tail)

	chains := make([]core.Chain, w)
	for i := range tail {
		chains[i] = m.rebuild(tail[i]).Chain()
	}
	divergent := false
	mcps := make([][]int, w)
	for x := range mcps {
		mcps[x] = make([]int, w)
	}
	for x := 0; x < w; x++ {
		sx := tail[x].score
		for y := x + 1; y < w; y++ {
			sy := tail[y].score
			var mm int
			if tail[x].key() == tail[y].key() {
				mm = sx
			} else {
				mm = core.MCPS(m.score, chains[x], chains[y])
			}
			mcps[x][y] = mm
			if mm < sx && mm < sy {
				divergent = true
			}
		}
	}

	fullChecked := 0
	for ord := 0; ord < m.nreads; ord++ {
		fullChecked += m.epPairs(ord)
	}
	rep.Checked = fullChecked
	if !divergent {
		return rep
	}

	// Divergence in the window: replay the batch enumeration over the
	// retained candidates (provably a superset of the reported reads).
	for _, r := range mergedByInv(m.classes) {
		var after []int
		for j := range tail {
			if !r.pending && r.rsp < tail[j].inv { // r.Before(tail[j])
				after = append(after, j)
			}
		}
		pairs := 0
		for x := 0; x < len(after); x++ {
			for y := x + 1; y < len(after); y++ {
				pairs++
				ax, ay := after[x], after[y]
				mm := mcps[ax][ay]
				bound := r.score
				if sa := tail[ax].score; sa < bound {
					bound = sa
				}
				if sb := tail[ay].score; sb < bound {
					bound = sb
				}
				if mm < bound {
					rOp, aOp, bOp := m.rebuild(r), m.rebuild(tail[ax]), m.rebuild(tail[ay])
					rep.witness([]*history.Op{rOp, aOp, bOp},
						[]core.BlockID{tail[ax].head, tail[ay].head},
						"after %s (score %d) final-window reads still diverge: mcps(%s, %s)=%d < %d",
						rOp, r.score, aOp, bOp, mm, bound)
					if len(rep.Violations) == MaxViolations {
						// Batch stops mid-enumeration: pairs before
						// this read, plus the pairs it examined.
						checked := 0
						for ord := 0; ord < r.ord; ord++ {
							checked += m.epPairs(ord)
						}
						rep.Checked = checked + pairs
						return rep
					}
				}
			}
		}
	}
	return rep
}

// KForkReport builds the k-Fork Coherence report from the streamed
// token groups — equivalent to the batch KForkCoherence for any k.
// Callable before or after Finalize.
func (m *Monitor) KForkReport(k int) *Report {
	rep := &Report{Property: fmt.Sprintf("%d-ForkCoherence", k), OK: true}
	toks := make([]string, 0, len(m.tokens))
	for tok := range m.tokens {
		toks = append(toks, tok)
	}
	sort.Strings(toks)
	for _, tok := range toks {
		group := append([]opRec(nil), m.tokens[tok]...)
		sort.Slice(group, func(i, j int) bool { return group[i].inv < group[j].inv })
		rep.Checked++
		if len(group) > k {
			blocks := make([]core.BlockID, len(group))
			ops := make([]*history.Op, len(group))
			for i, g := range group {
				blocks[i] = g.block.ID
				ops[i] = m.rebuild(g)
			}
			rep.witness(ops, blocks,
				"token %q consumed by %d successful appends (k=%d): forks %s", tok, len(group), k, shortIDs(blocks))
		}
	}
	return rep
}

// MonitorStats summarizes a monitor's retained state — the observable
// side of the bounded-memory claim.
type MonitorStats struct {
	// Ops, Reads, Appends, Comm count the consumed stream.
	Ops, Reads, Appends, Comm int
	// Retained counts the compact op records currently held across all
	// monitors (window, candidates, suspects, LMR, SP runs, tokens).
	Retained int
	// ScoreClasses and SuspectKeys size the per-class structures.
	ScoreClasses, SuspectKeys int
	// WindowLen is the current liveness-window occupancy.
	WindowLen int
}

// Stats reports the monitor's consumption counters and retained-state
// sizes.
func (m *Monitor) Stats() MonitorStats {
	st := MonitorStats{
		Ops: m.ops, Reads: m.nreads, Appends: m.nappends, Comm: m.ncomm,
		ScoreClasses: len(m.classes), SuspectKeys: len(m.bvSuspects),
		WindowLen: len(m.win),
	}
	st.Retained = len(m.win)
	for _, s := range m.classes {
		st.Retained += len(s.recs)
	}
	for _, s := range m.bvSuspects {
		st.Retained += len(s.recs)
	}
	for _, v := range m.lmrViol {
		st.Retained += len(v)
	}
	for i := range m.lmrHas {
		if m.lmrHas[i] {
			st.Retained++
		}
	}
	for _, sl := range m.spLens {
		st.Retained += 2*len(sl.runs) + 1
	}
	for _, g := range m.tokens {
		st.Retained += len(g)
	}
	return st
}
