package consistency

import (
	"testing"

	"repro/internal/core"
	"repro/internal/history"
)

// fuzzBuild interprets a byte string as a deterministic op stream over
// `procs` sequential processes: chain extensions, forks, explicit and
// interned reads, stale reads, duplicate and failed appends, forged
// blocks, mid-stream fault declarations, and permanently-pending
// appends. Completed operations stay atomic (invoke+respond adjacent),
// which is the regime where the monitor's Checked counts are specified
// to match batch exactly.
func fuzzBuild(rec *history.Recorder, procs int, data []byte) {
	chains := make([]core.Chain, procs)
	for p := range chains {
		chains[p] = core.GenesisChain()
	}
	var all []*core.Block // every appended block, for stale/dup actions
	hasRead := make([]bool, procs)
	faulty := make([]bool, procs)
	seq := 0

	mint := func(parent *core.Block, creator int) *core.Block {
		seq++
		b := core.NewBlock(parent.ID, parent.Height+1, creator, seq, []byte{byte(seq), byte(seq >> 8)})
		if seq%5 == 0 {
			// Shared token: k-Fork groups beyond the same-parent rule.
			b = b.WithToken("tkn(shared)")
		}
		rec.InternBlock(b)
		return b
	}

	for _, a := range data {
		p := int(a>>3) % procs
		switch a % 8 {
		case 0, 1: // extend p's chain with a successful append
			b := mint(chains[p].Head(), p)
			chains[p] = chains[p].Append(b)
			rec.Append(p, b, true)
			all = append(all, b)
		case 2: // fork: branch p's chain at half height
			cut := len(chains[p])/2 + 1
			forked := chains[p][:cut].Clone()
			b := mint(forked.Head(), p)
			chains[p] = forked.Append(b)
			rec.Append(p, b, true)
			all = append(all, b)
		case 3: // explicit-chain read of p's current chain
			rec.Read(p, chains[p].Clone())
			hasRead[p] = true
		case 4: // interned read of p's current head
			rec.ReadHead(p, chains[p].Head())
			hasRead[p] = true
		case 5: // stale read or duplicate append of an old block
			if len(all) == 0 {
				rec.Read(p, core.GenesisChain())
				hasRead[p] = true
				break
			}
			old := all[int(a>>3)%len(all)]
			if a>>6 == 0 {
				rec.Append(p, old, true) // duplicate successful append
			} else {
				c := rec.Table().ChainTo(old.ID)
				rec.Read(p, c) // out-of-order (stale) read
				hasRead[p] = true
			}
		case 6: // forged block: interned, read, never appended — or a
			// failed append that likewise must not count
			b := mint(chains[p].Head(), p)
			if a>>6 == 0 {
				rec.Append(p, b, false) // failed append
			}
			rec.Read(p, chains[p].Clone().Append(b))
			hasRead[p] = true
		case 7: // mid-stream fault (only before p's first read, per the
			// sink contract) or a permanently-pending append
			if !hasRead[p] && !faulty[p] && a>>6 == 1 {
				faulty[p] = true
				rec.MarkFaulty(p)
				break
			}
			b := mint(chains[p].Head(), p)
			rec.InvokeAppend(p, b) // never responded
		}
	}
}

// FuzzMonitorEquivalence drives randomized op streams through both
// pipelines and requires the streaming Finalize to match batch Classify
// exactly — OK flags, Checked counts, violation strings, witness ops
// and blocks — both with the monitor as direct sink and with delivery
// through small sealed segments.
func FuzzMonitorEquivalence(f *testing.F) {
	f.Add([]byte{0, 3, 8, 11, 2, 3, 19, 4})
	f.Add([]byte{0, 0, 2, 3, 11, 3, 2, 11, 3, 5, 45, 5, 6, 70, 6, 3})
	f.Add([]byte{7, 71, 15, 0, 2, 3, 3, 3, 7, 7, 13, 5, 101, 6, 66, 4, 12, 20, 28})
	f.Add([]byte{1, 9, 17, 25, 33, 41, 49, 57, 3, 11, 19, 27, 2, 10, 18, 26, 4, 12})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 512 {
			data = data[:512]
		}
		const procs = 3
		horizon := 0
		if len(data) > 0 {
			horizon = int(data[0]) % 5 // 0 = batch default
		}
		for _, segSize := range []int{0, 7} {
			rec := history.NewRecorder(procs, nil)
			mon := NewMonitor(MonitorConfig{Procs: procs, Horizon: horizon, Table: rec.Table()})
			var seg *history.SegmentSink
			if segSize > 0 {
				seg = history.NewSegmentSink(segSize, mon.ConsumeSegment)
				seg.OnFaulty = mon.Faulty
				rec.SetSink(seg)
			} else {
				rec.SetSink(mon)
			}
			fuzzBuild(rec, procs, data)
			h := rec.Snapshot()
			if seg != nil {
				seg.Seal()
			}
			for _, op := range rec.PendingOps() {
				mon.OpPending(op)
			}
			msc, mec := mon.Finalize()

			chk := NewChecker(nil, nil)
			chk.Horizon = horizon
			bsc, bec := chk.Classify(h)

			if got, want := verdictDump(msc), verdictDump(bsc); got != want {
				t.Errorf("seg=%d SC mismatch:\n--- batch ---\n%s--- stream ---\n%s", segSize, want, got)
			}
			if got, want := verdictDump(mec), verdictDump(bec); got != want {
				t.Errorf("seg=%d EC mismatch:\n--- batch ---\n%s--- stream ---\n%s", segSize, want, got)
			}
			for _, k := range []int{1, 2} {
				if got, want := reportDump(mon.KForkReport(k)), reportDump(chk.KForkCoherence(h, k)); got != want {
					t.Errorf("seg=%d KFork(%d) mismatch:\n--- batch ---\n%s--- stream ---\n%s", segSize, k, want, got)
				}
			}
		}
	})
}
