package consistency

import (
	"repro/internal/history"
)

// MonotonicPrefix checks the session form of the Monotonic Prefix
// Consistency (MPC) criterion of Girault, Gößler, Guerraoui, Hamza and
// Seredinschi — the paper's reference [20], cited in the related work:
// along each process's sequence of reads, every returned chain must be a
// prefix of the next one. This strengthens Local Monotonic Read (which
// only forbids the *score* from dropping): a same-score branch switch —
// a chain reorganisation — violates MPC while passing Local Monotonic
// Read.
//
// Positioning on this repository's runs: the k = 1 consensus family
// (whose reads only ever extend a unique chain) satisfies MPC, while the
// proof-of-work family violates it whenever a read lands on an abandoned
// branch — so MPC sits strictly between the paper's two criteria on
// these systems. [20] proves nothing stronger than MPC is implementable
// in a partition-prone message-passing system, which is how the paper's
// Section 1 transfers the impossibility to Strong Prefix.
func (c *Checker) MonotonicPrefix(h *history.History) *Report {
	rep := &Report{Property: "MonotonicPrefix", OK: true}
	for p := 0; p < h.Procs; p++ {
		if !h.IsCorrect(p) {
			continue
		}
		var prev *history.Op
		for _, op := range h.ByProcess(p) {
			if op.Kind != history.OpRead {
				continue
			}
			if prev != nil {
				rep.Checked++
				if !prev.Chain().Prefix(op.Chain()) {
					rep.violate("process %d reorganised: %s then %s", p, prev, op)
					if len(rep.Violations) == MaxViolations {
						return rep
					}
				}
			}
			prev = op
		}
	}
	return rep
}
