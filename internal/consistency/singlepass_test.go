package consistency

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/history"
)

// refEventualPrefix is the pre-rewrite Eventual Prefix checker, kept
// verbatim (modulo the Chain() accessor) as the reference the one-pass
// variant is pinned against: same verdict, same fact count, same
// violation messages.
func refEventualPrefix(c *Checker, h *history.History) *Report {
	rep := &Report{Property: "EventualPrefix", OK: true}
	reads := h.Reads()
	w := c.window(h)
	if w > len(reads) {
		w = len(reads)
	}
	tail := reads[len(reads)-w:]
	for _, r := range reads {
		s := c.Score.Of(r.Chain())
		var after []*history.Op
		for _, t := range tail {
			if r.Before(t) {
				after = append(after, t)
			}
		}
		for a := 0; a < len(after); a++ {
			for b := a + 1; b < len(after); b++ {
				rep.Checked++
				m := core.MCPS(c.Score, after[a].Chain(), after[b].Chain())
				bound := s
				if sa := c.Score.Of(after[a].Chain()); sa < bound {
					bound = sa
				}
				if sb := c.Score.Of(after[b].Chain()); sb < bound {
					bound = sb
				}
				if m < bound {
					rep.violate("after %s (score %d) final-window reads still diverge: mcps(%s, %s)=%d < %d",
						r, s, after[a], after[b], m, bound)
					if len(rep.Violations) == MaxViolations {
						return rep
					}
				}
			}
		}
	}
	return rep
}

// randomHistory generates a history of reads over a two-branch tree:
// clean prefix-ordered runs and diverging runs both arise.
func randomHistory(rng *rand.Rand, procs, nReads int) *history.History {
	main := core.GenesisChain()
	for i := 1; i <= 10; i++ {
		h := main.Head()
		main = main.Append(core.NewBlock(h.ID, h.Height+1, 0, i, []byte{byte(i)}))
	}
	alt := main[:1+rng.Intn(4)].Clone()
	for i := 0; i < 8; i++ {
		h := alt.Head()
		alt = alt.Append(core.NewBlock(h.ID, h.Height+1, 1, 100+i, []byte{byte(i)}))
	}
	rec := history.NewRecorder(procs, nil)
	for _, b := range main[1:] {
		rec.Append(0, b, true)
	}
	for _, b := range alt[1:] {
		rec.Append(1, b, true)
	}
	for i := 0; i < nReads; i++ {
		src := main
		if rng.Intn(3) == 0 {
			src = alt
		}
		cut := 1 + rng.Intn(src.Len()-1)
		rec.Read(rng.Intn(procs), src[:cut+1])
	}
	return rec.Snapshot()
}

// TestEventualPrefixMatchesReference pins the one-pass Eventual Prefix
// (window MCPS computed once, slow-path replay on divergence) against
// the pre-rewrite enumeration on randomized histories.
func TestEventualPrefixMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 200; trial++ {
		h := randomHistory(rng, 2+rng.Intn(3), 3+rng.Intn(12))
		chk := NewChecker(nil, nil)
		got := chk.EventualPrefix(h)
		want := refEventualPrefix(NewChecker(nil, nil), h)
		if got.OK != want.OK || got.Checked != want.Checked {
			t.Fatalf("trial %d: (ok=%v checked=%d) vs reference (ok=%v checked=%d)",
				trial, got.OK, got.Checked, want.OK, want.Checked)
		}
		if fmt.Sprint(got.Violations) != fmt.Sprint(want.Violations) {
			t.Fatalf("trial %d: violations diverged:\n got %v\nwant %v", trial, got.Violations, want.Violations)
		}
	}
}

// TestSortedStrongPrefixMatchesPairwise pins the criterion-level sorted
// Strong Prefix verdict against the exact pairwise checker on the same
// randomized histories.
func TestSortedStrongPrefixMatchesPairwise(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 200; trial++ {
		h := randomHistory(rng, 2+rng.Intn(3), 3+rng.Intn(12))
		chk := NewChecker(nil, nil)
		pairwise := chk.StrongPrefix(h)
		sc := chk.StrongConsistency(h)
		var sorted *Report
		for _, r := range sc.Reports {
			if r.Property == "StrongPrefix" {
				sorted = r
			}
		}
		if sorted == nil {
			t.Fatal("SC verdict missing StrongPrefix report")
		}
		if sorted.OK != pairwise.OK {
			t.Fatalf("trial %d: sorted verdict %v, pairwise %v", trial, sorted.OK, pairwise.OK)
		}
	}
}

// zeroScore is a degenerate (non-strictly-monotonic) score: every chain
// scores 0. The criterion-level sorted Strong Prefix must still agree
// with the exact pairwise checker under it — the sort key is chain
// length, not score.
type zeroScore struct{}

func (zeroScore) Of(core.Chain) int { return 0 }
func (zeroScore) Name() string      { return "zero" }

func TestSortedStrongPrefixDegenerateScore(t *testing.T) {
	chain := core.GenesisChain()
	h := chain.Head()
	chain = chain.Append(core.NewBlock(h.ID, h.Height+1, 0, 1, []byte{1}))

	// Comparable reads (G prefixes G⌢X), recorded longer-first so a
	// recording-order tiebreak alone would mis-order them.
	rec := history.NewRecorder(2, nil)
	rec.Append(0, chain[1], true)
	rec.Read(0, chain)
	rec.Read(1, chain[:1])
	hist := rec.Snapshot()

	chk := NewChecker(zeroScore{}, nil)
	if !chk.StrongPrefix(hist).OK {
		t.Fatal("pairwise checker rejected comparable reads")
	}
	sc := chk.StrongConsistency(hist)
	for _, r := range sc.Reports {
		if r.Property == "StrongPrefix" && !r.OK {
			t.Fatalf("sorted StrongPrefix false violation under degenerate score: %v", r.Violations)
		}
	}
	if !chk.StrongPrefixFast(hist).OK {
		t.Fatal("StrongPrefixFast false violation under degenerate score")
	}
}

// TestClassifySharesReports checks single-pass Classify: the three
// properties common to SC and EC are computed once and shared by
// pointer between the two verdicts.
func TestClassifySharesReports(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	h := randomHistory(rng, 3, 8)
	chk := NewChecker(nil, nil)
	sc, ec := chk.Classify(h)
	if sc.Reports[0] != ec.Reports[0] { // BlockValidity
		t.Fatal("BlockValidity recomputed per criterion")
	}
	if sc.Reports[1] != ec.Reports[1] { // LocalMonotonicRead
		t.Fatal("LocalMonotonicRead recomputed per criterion")
	}
	if sc.Reports[3] != ec.Reports[2] { // EverGrowingTree
		t.Fatal("EverGrowingTree recomputed per criterion")
	}
}

// TestCheckerCacheInvalidation: changing Score, P or Horizon between
// calls on the same history must not reuse stale artifacts.
func TestCheckerCacheInvalidation(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	h := randomHistory(rng, 2, 6)
	chk := NewChecker(core.LengthScore{}, nil)
	wide := chk.EventualPrefix(h).Checked // default window (≥ 2 reads)
	chk.Horizon = 1                       // window of one read: no pairs at all
	if got := chk.EventualPrefix(h).Checked; got != 0 {
		t.Fatalf("horizon change not picked up: checked %d (default window had %d)", got, wide)
	}
	chk.Horizon = 0
	chk.Score = core.WeightScore{}
	// Must recompute with the new score without reusing stale score
	// caches; weights are all 1 so the fact count matches the first run.
	if got := chk.EventualPrefix(h).Checked; got != wide {
		t.Fatalf("score change not picked up: checked %d, want %d", got, wide)
	}
}
