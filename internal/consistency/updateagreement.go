package consistency

import (
	"repro/internal/core"
	"repro/internal/history"
)

// This file implements the communication-level properties of Section 4.3:
// Update Agreement (Definition 4.3, Figure 13) and Light Reliable
// Communication (Definition 4.4). Both are checked over the send /
// receive / update events recorded in a history (Definition 4.2).

type msgKey struct {
	parent core.BlockID
	block  core.BlockID
}

// UpdateAgreement checks R1–R3 on the history's communication events,
// quantifying over correct processes:
//
//	R1: ∀ update_i(bg, b_i) with b_i generated at i, ∃ send_i(bg, b_i);
//	R2: ∀ update_i(bg, b_j) with j ≠ i, ∃ receive_i(bg, b_j) ↦-before it;
//	R3: ∀ update_i(bg, b_j), ∀ correct k, ∃ receive_k(bg, b_j).
//
// The creator of a block is identified through the block registry passed
// in (ID → creator process); blocks whose creator is unknown are treated
// as remote for every updater, which is the conservative direction.
func UpdateAgreement(h *history.History, creator map[core.BlockID]int) *Report {
	rep := &Report{Property: "UpdateAgreement", OK: true}

	sends := make(map[int]map[msgKey]bool)    // proc → messages sent
	firstRecv := make(map[int]map[msgKey]int) // proc → message → first receive index
	recvAnywhere := make(map[msgKey][]int)    // message → receiving procs
	for _, e := range h.Comm {
		k := msgKey{e.Parent, e.Block}
		switch e.Kind {
		case history.EvSend:
			if sends[e.Proc] == nil {
				sends[e.Proc] = make(map[msgKey]bool)
			}
			sends[e.Proc][k] = true
		case history.EvReceive:
			if firstRecv[e.Proc] == nil {
				firstRecv[e.Proc] = make(map[msgKey]int)
			}
			if _, ok := firstRecv[e.Proc][k]; !ok {
				firstRecv[e.Proc][k] = e.Index
			}
			recvAnywhere[k] = append(recvAnywhere[k], e.Proc)
		}
	}

	for _, e := range h.Comm {
		if e.Kind != history.EvUpdate || !h.IsCorrect(e.Proc) {
			continue
		}
		k := msgKey{e.Parent, e.Block}
		local := false
		if c, ok := creator[e.Block]; ok && c == e.Proc {
			local = true
		}
		rep.Checked++
		if local {
			// R1: the locally generated update must be sent.
			if !sends[e.Proc][k] {
				rep.violate("R1: update_%d(%s,%s) has no matching send_%d",
					e.Proc, e.Parent.Short(), e.Block.Short(), e.Proc)
			}
		} else {
			// R2: a remote update must follow a receive at the
			// same process.
			idx, ok := firstRecv[e.Proc][k]
			if !ok {
				rep.violate("R2: update_%d(%s,%s) has no matching receive_%d",
					e.Proc, e.Parent.Short(), e.Block.Short(), e.Proc)
			} else if idx > e.Index {
				rep.violate("R2: receive_%d(%s,%s) at %d after update at %d",
					e.Proc, e.Parent.Short(), e.Block.Short(), idx, e.Index)
			}
		}
		// R3: every correct process eventually receives the update's
		// message.
		for p := 0; p < h.Procs; p++ {
			if !h.IsCorrect(p) {
				continue
			}
			if _, ok := firstRecv[p][k]; !ok {
				rep.violate("R3: update of (%s,%s) never received by process %d",
					e.Parent.Short(), e.Block.Short(), p)
				break
			}
		}
	}
	return rep
}

// LRC checks the Light Reliable Communication abstraction (Definition
// 4.4) over the recorded events:
//
//	Validity:  ∀ send_i(b, b_i), ∃ receive_i(b, b_i) at i itself;
//	Agreement: if any correct process receives (b, b_j), every correct
//	           process receives it.
func LRC(h *history.History) *Report {
	rep := &Report{Property: "LRC", OK: true}

	received := make(map[int]map[msgKey]bool)
	anyRecv := make(map[msgKey]bool)
	for _, e := range h.Comm {
		if e.Kind != history.EvReceive {
			continue
		}
		k := msgKey{e.Parent, e.Block}
		if received[e.Proc] == nil {
			received[e.Proc] = make(map[msgKey]bool)
		}
		received[e.Proc][k] = true
		if h.IsCorrect(e.Proc) {
			anyRecv[k] = true
		}
	}

	// Validity.
	for _, e := range h.Comm {
		if e.Kind != history.EvSend || !h.IsCorrect(e.Proc) {
			continue
		}
		rep.Checked++
		k := msgKey{e.Parent, e.Block}
		if !received[e.Proc][k] {
			rep.violate("Validity: send_%d(%s,%s) never received by sender itself",
				e.Proc, e.Parent.Short(), e.Block.Short())
		}
	}

	// Agreement.
	for k := range anyRecv {
		rep.Checked++
		for p := 0; p < h.Procs; p++ {
			if !h.IsCorrect(p) {
				continue
			}
			if !received[p][k] {
				rep.violate("Agreement: (%s,%s) received by some correct process but not by %d",
					k.parent.Short(), k.block.Short(), p)
				break
			}
		}
	}
	return rep
}
