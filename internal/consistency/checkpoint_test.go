package consistency

import (
	"bytes"
	"testing"

	"repro/internal/core"
	"repro/internal/history"
)

// ckptSink forwards the stream to a monitor and, after `at` completed
// operations, checkpoints it, restores a fresh monitor from the bytes,
// verifies the restored monitor re-checkpoints byte-identically, and
// continues feeding the restored one — the crash–recovery cut, injected
// mid-stream.
type ckptSink struct {
	t   *testing.T
	mon *Monitor
	cfg MonitorConfig
	at  int // cycle after this many OpDone calls (<0 = never)
	n   int
}

func (s *ckptSink) cycle() {
	s.t.Helper()
	data, err := s.mon.Checkpoint()
	if err != nil {
		s.t.Fatalf("checkpoint: %v", err)
	}
	m2, err := RestoreMonitor(data, s.cfg)
	if err != nil {
		s.t.Fatalf("restore: %v", err)
	}
	data2, err := m2.Checkpoint()
	if err != nil {
		s.t.Fatalf("re-checkpoint: %v", err)
	}
	if !bytes.Equal(data, data2) {
		s.t.Fatalf("restored monitor re-checkpoints differently (%d vs %d bytes)", len(data), len(data2))
	}
	s.mon = m2
}

func (s *ckptSink) OpDone(op *history.Op) {
	s.mon.OpDone(op)
	s.n++
	if s.n == s.at {
		s.cycle()
	}
}

func (s *ckptSink) CommDone(e history.CommEvent) { s.mon.CommDone(e) }
func (s *ckptSink) Faulty(p int)                 { s.mon.Faulty(p) }

// runCheckpointed records the build through a monitor that is
// checkpoint-cycled after `at` ops, delivers pending ops, and returns
// the surviving monitor plus the snapshot for batch comparison.
func runCheckpointed(t *testing.T, procs, horizon, k, at int, build func(rec *history.Recorder)) (*Monitor, *history.History) {
	t.Helper()
	rec := history.NewRecorder(procs, nil)
	cfg := MonitorConfig{Procs: procs, Horizon: horizon, K: k, Table: rec.Table()}
	sink := &ckptSink{t: t, mon: NewMonitor(cfg), cfg: cfg, at: at}
	rec.SetSink(sink)
	build(rec)
	h := rec.Snapshot()
	for _, op := range rec.PendingOps() {
		sink.mon.OpPending(op)
	}
	return sink.mon, h
}

// ckptBuild is the deterministic workload: forks (StrongPrefix +
// EventualPrefix violations), a backwards read (LocalMonotonicRead), a
// forged never-appended block (BlockValidity), a shared-token fork
// group (k-Fork), a faulty process, and a permanently-pending append —
// every retained structure of the monitor is populated.
func ckptBuild(rec *history.Recorder) {
	base := chainN(5)
	fork := forkN(base, 2, 4)
	recordChain(rec, base, fork)
	// Real pipelines intern every attached block (the Recorder.Table
	// contract) so interned reads can always materialize; the restore
	// path depends on that invariant too.
	for _, c := range []core.Chain{base, fork} {
		for _, b := range c {
			rec.InternBlock(b)
		}
	}
	rec.MarkFaulty(2)
	rec.Read(0, base)
	rec.Read(1, fork)
	rec.Read(2, base) // faulty: excluded
	rec.ReadHead(0, base.Head())
	rec.Read(0, base[:3].Clone()) // score drop: LMR violation
	forged := core.NewBlock(base.Head().ID, base.Head().Height+1, 1, 99, []byte("forged"))
	rec.InternBlock(forged)
	rec.Read(1, base.Clone().Append(forged)) // BlockValidity violation
	tok := core.NewBlock(base[2].ID, base[2].Height+1, 0, 50, nil).WithToken("tkn(x)")
	tok2 := core.NewBlock(base[2].ID, base[2].Height+1, 1, 51, []byte{1}).WithToken("tkn(x)")
	rec.Append(0, tok, true)
	rec.Append(1, tok2, true) // k=1 fork group
	rec.ReadHead(1, fork.Head())
	rec.InvokeAppend(0, core.NewBlock(fork.Head().ID, fork.Head().Height+1, 0, 60, nil)) // never responds
	rec.ReadHead(0, base.Head())
	rec.ReadHead(1, fork.Head())
}

// countOps counts the completed operations ckptBuild records, so the
// equivalence test can place the cut at every position.
func countOps(procs int, build func(rec *history.Recorder)) int {
	rec := history.NewRecorder(procs, nil)
	build(rec)
	n := 0
	for _, op := range rec.Snapshot().Ops {
		if !op.Pending {
			n++
		}
	}
	return n
}

// TestCheckpointEveryCutEquivalence injects the checkpoint/restore
// cycle after every possible prefix of the deterministic workload and
// requires Finalize (and KForkReport) to match both the uninterrupted
// monitor and batch Classify byte-for-byte.
func TestCheckpointEveryCutEquivalence(t *testing.T) {
	const procs, k = 3, 1
	total := countOps(procs, ckptBuild)
	if total < 10 {
		t.Fatalf("workload records only %d ops", total)
	}

	// Uninterrupted reference + batch reference.
	ref, h := runCheckpointed(t, procs, 0, k, -1, ckptBuild)
	rsc, rec := ref.Finalize()
	chk := NewChecker(nil, nil)
	bsc, bec := chk.Classify(h)
	if got, want := verdictDump(rsc), verdictDump(bsc); got != want {
		t.Fatalf("uninterrupted stream disagrees with batch:\n--- batch ---\n%s--- stream ---\n%s", want, got)
	}
	wantSC, wantEC := verdictDump(rsc), verdictDump(rec)
	wantKF := reportDump(ref.KForkReport(k))

	for cut := 1; cut <= total; cut++ {
		mon, _ := runCheckpointed(t, procs, 0, k, cut, ckptBuild)
		msc, mec := mon.Finalize()
		if got := verdictDump(msc); got != wantSC {
			t.Fatalf("cut=%d SC diverged:\n--- uninterrupted ---\n%s--- checkpointed ---\n%s", cut, wantSC, got)
		}
		if got := verdictDump(mec); got != wantEC {
			t.Fatalf("cut=%d EC diverged:\n--- uninterrupted ---\n%s--- checkpointed ---\n%s", cut, wantEC, got)
		}
		if got := reportDump(mon.KForkReport(k)); got != wantKF {
			t.Fatalf("cut=%d KFork diverged:\n--- uninterrupted ---\n%s--- checkpointed ---\n%s", cut, wantKF, got)
		}
	}
	if verdictDump(bec) != wantEC {
		t.Fatalf("EC batch/stream mismatch:\n--- batch ---\n%s--- stream ---\n%s", verdictDump(bec), wantEC)
	}
}

// TestCheckpointDeterministicBytes: two monitors fed the identical
// stream checkpoint to identical bytes (the pinnable-digest property).
func TestCheckpointDeterministicBytes(t *testing.T) {
	run := func() []byte {
		rec := history.NewRecorder(3, nil)
		mon := NewMonitor(MonitorConfig{Procs: 3, Table: rec.Table()})
		rec.SetSink(mon)
		ckptBuild(rec)
		data, err := mon.Checkpoint()
		if err != nil {
			t.Fatal(err)
		}
		return data
	}
	a, b := run(), run()
	if !bytes.Equal(a, b) {
		t.Fatalf("identical runs checkpoint differently (%d vs %d bytes)", len(a), len(b))
	}
}

// TestCheckpointTablelessRestore: a checkpoint taken at end-of-stream
// restores against a nil table (the recovered process lost its
// recorder) and still Finalizes byte-identically — the embedded block
// pool is self-contained.
func TestCheckpointTablelessRestore(t *testing.T) {
	rec := history.NewRecorder(3, nil)
	mon := NewMonitor(MonitorConfig{Procs: 3, K: 1, Table: rec.Table()})
	rec.SetSink(mon)
	ckptBuild(rec)
	for _, op := range rec.PendingOps() {
		mon.OpPending(op)
	}
	data, err := mon.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	wsc, wec := mon.Finalize()

	m2, err := RestoreMonitor(data, MonitorConfig{Procs: 3, K: 1})
	if err != nil {
		t.Fatal(err)
	}
	gsc, gec := m2.Finalize()
	if got, want := verdictDump(gsc), verdictDump(wsc); got != want {
		t.Fatalf("tableless SC diverged:\n--- with table ---\n%s--- tableless ---\n%s", want, got)
	}
	if got, want := verdictDump(gec), verdictDump(wec); got != want {
		t.Fatalf("tableless EC diverged:\n--- with table ---\n%s--- tableless ---\n%s", want, got)
	}
	if got, want := reportDump(m2.KForkReport(1)), reportDump(mon.KForkReport(1)); got != want {
		t.Fatalf("tableless KFork diverged:\n--- with table ---\n%s--- tableless ---\n%s", want, got)
	}
}

// TestCheckpointValidation pins the failure modes: corrupt bytes, a
// version from the future, and shape-mismatched configs all error.
func TestCheckpointValidation(t *testing.T) {
	mon := NewMonitor(MonitorConfig{Procs: 3})
	data, err := mon.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := RestoreMonitor([]byte("not json"), MonitorConfig{Procs: 3}); err == nil {
		t.Error("corrupt checkpoint accepted")
	}
	if _, err := RestoreMonitor(data, MonitorConfig{Procs: 4}); err == nil {
		t.Error("proc-count mismatch accepted")
	}
	if _, err := RestoreMonitor(data, MonitorConfig{Procs: 3, Horizon: 7}); err == nil {
		t.Error("horizon mismatch accepted")
	}
	if _, err := RestoreMonitor(data, MonitorConfig{Procs: 3, K: 2}); err == nil {
		t.Error("k mismatch accepted")
	}
	bad := bytes.Replace(data, []byte(`"Version":1`), []byte(`"Version":99`), 1)
	if _, err := RestoreMonitor(bad, MonitorConfig{Procs: 3}); err == nil {
		t.Error("future version accepted")
	}
	if _, err := RestoreMonitor(data, MonitorConfig{Procs: 3}); err != nil {
		t.Errorf("valid empty checkpoint rejected: %v", err)
	}
}

// FuzzMonitorCheckpoint drives the randomized fuzzBuild streams with a
// checkpoint/restore cycle injected at a fuzz-chosen position and
// requires the finalized verdicts (and both k-fork reports) to equal
// batch Classify on the full history — the cut must be invisible.
func FuzzMonitorCheckpoint(f *testing.F) {
	f.Add(uint8(3), []byte{0, 3, 8, 11, 2, 3, 19, 4})
	f.Add(uint8(9), []byte{0, 0, 2, 3, 11, 3, 2, 11, 3, 5, 45, 5, 6, 70, 6, 3})
	f.Add(uint8(1), []byte{7, 71, 15, 0, 2, 3, 3, 3, 7, 7, 13, 5, 101, 6, 66, 4, 12, 20, 28})
	f.Add(uint8(250), []byte{1, 9, 17, 25, 33, 41, 49, 57, 3, 11, 19, 27, 2, 10, 18, 26, 4, 12})
	f.Fuzz(func(t *testing.T, cutByte uint8, data []byte) {
		if len(data) > 512 {
			data = data[:512]
		}
		const procs = 3
		horizon := 0
		if len(data) > 0 {
			horizon = int(data[0]) % 5
		}
		build := func(rec *history.Recorder) { fuzzBuild(rec, procs, data) }
		total := countOps(procs, build)
		if total == 0 {
			return
		}
		cut := int(cutByte)%total + 1

		rec := history.NewRecorder(procs, nil)
		cfg := MonitorConfig{Procs: procs, Horizon: horizon, Table: rec.Table()}
		sink := &ckptSink{t: t, mon: NewMonitor(cfg), cfg: cfg, at: cut}
		rec.SetSink(sink)
		build(rec)
		h := rec.Snapshot()
		for _, op := range rec.PendingOps() {
			sink.mon.OpPending(op)
		}
		msc, mec := sink.mon.Finalize()

		chk := NewChecker(nil, nil)
		chk.Horizon = horizon
		bsc, bec := chk.Classify(h)
		if got, want := verdictDump(msc), verdictDump(bsc); got != want {
			t.Errorf("cut=%d/%d SC mismatch:\n--- batch ---\n%s--- checkpointed ---\n%s", cut, total, want, got)
		}
		if got, want := verdictDump(mec), verdictDump(bec); got != want {
			t.Errorf("cut=%d/%d EC mismatch:\n--- batch ---\n%s--- checkpointed ---\n%s", cut, total, want, got)
		}
		for _, k := range []int{1, 2} {
			if got, want := reportDump(sink.mon.KForkReport(k)), reportDump(chk.KForkCoherence(h, k)); got != want {
				t.Errorf("cut=%d/%d KFork(%d) mismatch:\n--- batch ---\n%s--- checkpointed ---\n%s", cut, total, k, want, got)
			}
		}
	})
}
