package consistency

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/history"
)

// reportDump flattens a report for equality checks: OK flag, Checked
// count, every violation string, and every witness (detail + op
// renderings + block IDs).
func reportDump(rep *Report) string {
	if rep == nil {
		return "<nil>"
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s ok=%v checked=%d\n", rep.Property, rep.OK, rep.Checked)
	for _, v := range rep.Violations {
		fmt.Fprintf(&b, "V %s\n", v)
	}
	for _, w := range rep.Witnesses {
		fmt.Fprintf(&b, "W %s | %s |", w.Property, w.Detail)
		for _, op := range w.Ops {
			fmt.Fprintf(&b, " op#%d:%s", op.ID, op)
		}
		for _, id := range w.Blocks {
			fmt.Fprintf(&b, " b:%s", id.Short())
		}
		b.WriteString("\n")
	}
	return b.String()
}

func verdictDump(v *Verdict) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s ok=%v failing=%v\n", v.Criterion, v.OK, v.Failing())
	for _, rep := range v.Reports {
		b.WriteString(reportDump(rep))
	}
	return b.String()
}

// monitorHarness runs one recorded history through both pipelines: the
// build function records into a Recorder whose sink is the Monitor
// (optionally via a SegmentSink), then batch Classify on the snapshot
// is compared against Monitor.Finalize.
type monitorHarness struct {
	horizon int
	segSize int // 0 = direct sink, >0 = route through a SegmentSink
	k       int // when >0, also compare KForkReport(k)
	// epCheckedLoose skips the EventualPrefix Checked comparison —
	// the one documented divergence under overlapping completed ops.
	epCheckedLoose bool
}

func (hn monitorHarness) run(t *testing.T, procs int, build func(rec *history.Recorder)) {
	t.Helper()
	rec := history.NewRecorder(procs, nil)
	mon := NewMonitor(MonitorConfig{Procs: procs, Horizon: hn.horizon, K: hn.k, Table: rec.Table()})
	var seg *history.SegmentSink
	if hn.segSize > 0 {
		seg = history.NewSegmentSink(hn.segSize, mon.ConsumeSegment)
		seg.OnFaulty = mon.Faulty
		rec.SetSink(seg)
	} else {
		rec.SetSink(mon)
	}
	build(rec)
	h := rec.Snapshot()

	if seg != nil {
		seg.Seal()
	}
	for _, op := range rec.PendingOps() {
		mon.OpPending(op)
	}
	msc, mec := mon.Finalize()

	chk := NewChecker(nil, nil)
	chk.Horizon = hn.horizon
	bsc, bec := chk.Classify(h)

	scWant, scGot := verdictDump(bsc), verdictDump(msc)
	ecWant, ecGot := verdictDump(bec), verdictDump(mec)
	if hn.epCheckedLoose {
		scWant, scGot = dropEPChecked(scWant), dropEPChecked(scGot)
		ecWant, ecGot = dropEPChecked(ecWant), dropEPChecked(ecGot)
	}
	if scGot != scWant {
		t.Errorf("SC verdict mismatch:\n--- batch ---\n%s--- stream ---\n%s", scWant, scGot)
	}
	if ecGot != ecWant {
		t.Errorf("EC verdict mismatch:\n--- batch ---\n%s--- stream ---\n%s", ecWant, ecGot)
	}
	for _, k := range []int{1, 2, hn.k} {
		if k <= 0 {
			continue
		}
		want := reportDump(chk.KForkCoherence(h, k))
		got := reportDump(mon.KForkReport(k))
		if got != want {
			t.Errorf("KFork(%d) mismatch:\n--- batch ---\n%s--- stream ---\n%s", k, want, got)
		}
	}
}

func dropEPChecked(dump string) string {
	lines := strings.Split(dump, "\n")
	for i, l := range lines {
		if strings.HasPrefix(l, "EventualPrefix ") {
			if j := strings.Index(l, " checked="); j >= 0 {
				lines[i] = l[:j]
			}
		}
	}
	return strings.Join(lines, "\n")
}

func TestMonitorBenignEquivalence(t *testing.T) {
	monitorHarness{}.run(t, 2, func(rec *history.Recorder) {
		c := chainN(5)
		recordChain(rec, c)
		for i := 1; i <= 5; i++ {
			rec.Read(0, c[:i+1])
			rec.Read(1, c[:i+1])
		}
	})
}

func TestMonitorStrongPrefixForkEquivalence(t *testing.T) {
	for _, seg := range []int{0, 3} {
		monitorHarness{segSize: seg, k: 1}.run(t, 2, func(rec *history.Recorder) {
			base := chainN(4)
			fork := forkN(base, 2, 3)
			recordChain(rec, base, fork)
			rec.Read(0, base)
			rec.Read(1, fork)
			rec.Read(0, base[:3])
			rec.Read(1, fork[:4])
			rec.Read(0, fork)
			rec.Read(1, base)
		})
	}
}

func TestMonitorLMRAndEGTEquivalence(t *testing.T) {
	monitorHarness{horizon: 3}.run(t, 2, func(rec *history.Recorder) {
		c := chainN(6)
		recordChain(rec, c)
		rec.Read(0, c)     // long first
		rec.Read(0, c[:3]) // score drop: LMR violation
		rec.Read(1, c[:2]) // stuck low
		rec.Read(0, c[:5]) // window grows past 2
		rec.Read(1, c[:2]) // still stuck: EGT stagnation
		rec.Read(0, c)
	})
}

func TestMonitorEventualPrefixDivergence(t *testing.T) {
	monitorHarness{horizon: 4}.run(t, 2, func(rec *history.Recorder) {
		base := chainN(5)
		fork := forkN(base, 1, 5)
		recordChain(rec, base, fork)
		rec.Read(0, base[:2])
		rec.Read(1, base[:2])
		rec.Read(0, base) // branch A in the final window
		rec.Read(1, fork) // branch B in the final window: diverge below both
		rec.Read(0, base)
		rec.Read(1, fork)
	})
}

func TestMonitorBlockValidityEquivalence(t *testing.T) {
	// Never-appended block, append-after-read, and a pending append.
	monitorHarness{}.run(t, 2, func(rec *history.Recorder) {
		c := chainN(3)
		recordChain(rec, c)
		forged := core.NewBlock(c.Head().ID, c.Head().Height+1, 9, 99, []byte("forged"))
		rec.InternBlock(forged)
		bad := c.Clone().Append(forged)
		rec.Read(0, bad) // forged never appended

		late := core.NewBlock(c.Head().ID, c.Head().Height+1, 1, 50, []byte("late"))
		rec.InternBlock(late)
		withLate := c.Clone().Append(late)
		rec.Read(1, withLate)     // read before its append
		rec.Append(1, late, true) // append only later
		rec.Read(1, withLate)     // now clean

		// Pending append: invoked, never responded. Its invocation
		// index still anchors Block Validity.
		pend := core.NewBlock(late.ID, late.Height+1, 0, 51, []byte("pend"))
		rec.InternBlock(pend)
		rec.InvokeAppend(0, pend)
		rec.Read(0, withLate.Clone().Append(pend))
	})
}

func TestMonitorFaultyProcessExcluded(t *testing.T) {
	monitorHarness{segSize: 2}.run(t, 3, func(rec *history.Recorder) {
		rec.MarkFaulty(2)
		c := chainN(4)
		fork := forkN(c, 0, 4)
		recordChain(rec, c, fork)
		rec.Read(0, c)
		rec.Read(1, c)
		rec.Read(2, fork) // faulty: must not count anywhere
		rec.Read(2, c[:1])
		rec.Read(0, c)
	})
}

func TestMonitorInternedReadsEquivalence(t *testing.T) {
	// ReadHead path: interned (head, length) handles, no explicit chains.
	monitorHarness{k: 1}.run(t, 2, func(rec *history.Recorder) {
		c := chainN(5)
		for _, b := range c {
			rec.InternBlock(b)
		}
		recordChain(rec, c)
		for i := 1; i <= 5; i++ {
			rec.ReadHead(0, c[i])
			rec.ReadHead(1, c[i-1])
		}
	})
}

func TestMonitorManyViolationsCap(t *testing.T) {
	// Force > MaxViolations violations per property to exercise the
	// retention caps and the early-stop Checked reconstruction.
	monitorHarness{horizon: 2, epCheckedLoose: false}.run(t, 2, func(rec *history.Recorder) {
		base := chainN(30)
		fork := forkN(base, 1, 30)
		recordChain(rec, base, fork)
		for i := 2; i <= 29; i++ {
			rec.Read(0, base[:i+1])
			rec.Read(1, fork[:i+1])
			rec.Read(0, base[:2]) // repeated LMR drops + EGT stagnation
		}
		rec.Read(0, base)
		rec.Read(1, fork)
	})
}

func TestMonitorSpanningReads(t *testing.T) {
	// Overlapping completed operations: a read that spans other ops.
	// Everything must match except the documented EventualPrefix
	// Checked divergence.
	monitorHarness{epCheckedLoose: true}.run(t, 2, func(rec *history.Recorder) {
		c := chainN(4)
		recordChain(rec, c)
		op := rec.InvokeRead(0) // spans the next reads
		rec.Read(1, c)
		rec.Read(1, c[:3])
		rec.RespondRead(op, c[:2])
		rec.Read(1, c)
		rec.Read(0, c)
	})
}

func TestMonitorDuplicateAppends(t *testing.T) {
	monitorHarness{k: 1}.run(t, 2, func(rec *history.Recorder) {
		c := chainN(3)
		recordChain(rec, c)
		rec.Append(1, c[2], true) // duplicate successful append
		rec.Append(0, c[3], true) // another duplicate
		rec.Read(0, c)
		rec.Read(1, c)
	})
}

func TestMonitorTokenForks(t *testing.T) {
	monitorHarness{k: 1}.run(t, 3, func(rec *history.Recorder) {
		g := core.Genesis()
		tok := "tkn(seed)"
		b1 := core.NewBlock(g.ID, 1, 0, 1, nil).WithToken(tok)
		b2 := core.NewBlock(g.ID, 1, 1, 2, nil).WithToken(tok)
		b3 := core.NewBlock(g.ID, 1, 2, 3, nil).WithToken(tok)
		for _, b := range []*core.Block{b1, b2, b3} {
			rec.InternBlock(b)
			rec.Append(b.Creator, b, true)
		}
		rec.Read(0, core.GenesisChain().Append(b1))
	})
}

func TestMonitorLiveWitnesses(t *testing.T) {
	rec := history.NewRecorder(2, nil)
	var live []Witness
	mon := NewMonitor(MonitorConfig{
		Procs: 2, K: 1, Table: rec.Table(),
		OnWitness: func(w Witness) { live = append(live, w) },
	})
	rec.SetSink(mon)

	base := chainN(4)
	fork := forkN(base, 1, 4)
	recordChain(rec, base, fork)
	rec.Read(0, base)
	rec.Read(0, base[:2]) // live LMR drop
	rec.Read(1, fork)     // live SP incomparability vs base
	mon.Finalize()

	props := map[string]int{}
	for _, w := range live {
		props[w.Property]++
	}
	if props["LocalMonotonicRead"] == 0 {
		t.Errorf("no live LocalMonotonicRead witness: %v", props)
	}
	if props["StrongPrefix"] == 0 {
		t.Errorf("no live StrongPrefix witness: %v", props)
	}
	if props["1-ForkCoherence"] == 0 {
		t.Errorf("no live 1-ForkCoherence witness: %v", props)
	}
	if mon.LiveWitnesses() != len(live) {
		t.Errorf("LiveWitnesses=%d, callback saw %d", mon.LiveWitnesses(), len(live))
	}
	for _, w := range live {
		if w.Detail == "" || len(w.Ops) == 0 {
			t.Errorf("malformed live witness: %+v", w)
		}
	}
}

func TestMonitorStatsBounded(t *testing.T) {
	// Retained compact records must stay bounded while reads grow 10x.
	retained := func(reads int) int {
		rec := history.NewRecorder(2, nil)
		mon := NewMonitor(MonitorConfig{Procs: 2, Table: rec.Table()})
		rec.SetSink(mon)
		rec.SetRetain(false)
		c := chainN(8)
		recordChain(rec, c)
		for i := 0; i < reads; i++ {
			rec.Read(i%2, c[:2+i%7])
		}
		st := mon.Stats()
		if st.Reads != reads {
			t.Fatalf("consumed %d reads, want %d", st.Reads, reads)
		}
		return st.Retained
	}
	small, big := retained(500), retained(5000)
	if big > small+8 {
		t.Errorf("retained state grew with read count: %d @500 reads vs %d @5000", small, big)
	}
}
