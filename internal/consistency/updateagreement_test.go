package consistency

import (
	"testing"

	"repro/internal/core"
	"repro/internal/history"
)

// scenario records the canonical Figure 13 pattern for three processes:
// 0 creates block b, updates, sends; 1 and 2 receive then update; 0
// receives its own send (loopback).
func scenario(skip func(kind history.CommKind, proc int) bool) (*history.History, map[core.BlockID]int) {
	rec := history.NewRecorder(3, nil)
	b := core.NewBlock(core.GenesisID, 1, 0, 1, []byte("ua"))
	creators := map[core.BlockID]int{b.ID: 0}
	emit := func(kind history.CommKind, proc int) {
		if skip != nil && skip(kind, proc) {
			return
		}
		rec.RecordComm(kind, proc, core.GenesisID, b.ID)
	}
	emit(history.EvUpdate, 0)
	emit(history.EvSend, 0)
	emit(history.EvReceive, 0)
	emit(history.EvReceive, 1)
	emit(history.EvUpdate, 1)
	emit(history.EvReceive, 2)
	emit(history.EvUpdate, 2)
	return rec.Snapshot(), creators
}

func TestUpdateAgreementHolds(t *testing.T) {
	h, creators := scenario(nil)
	rep := UpdateAgreement(h, creators)
	if !rep.OK {
		t.Fatalf("clean scenario violated: %v", rep.Violations)
	}
	if rep.Checked != 3 {
		t.Fatalf("checked %d updates, want 3", rep.Checked)
	}
}

func TestR1ViolatedWhenSendMissing(t *testing.T) {
	h, creators := scenario(func(kind history.CommKind, proc int) bool {
		return kind == history.EvSend
	})
	rep := UpdateAgreement(h, creators)
	if rep.OK {
		t.Fatal("missing send (R1) not detected")
	}
}

func TestR2ViolatedWhenReceiveMissing(t *testing.T) {
	h, creators := scenario(func(kind history.CommKind, proc int) bool {
		return kind == history.EvReceive && proc == 1
	})
	rep := UpdateAgreement(h, creators)
	if rep.OK {
		t.Fatal("update without receive (R2) not detected")
	}
}

func TestR2ViolatedWhenReceiveAfterUpdate(t *testing.T) {
	rec := history.NewRecorder(2, nil)
	b := core.NewBlock(core.GenesisID, 1, 0, 1, nil)
	creators := map[core.BlockID]int{b.ID: 0}
	rec.RecordComm(history.EvUpdate, 0, core.GenesisID, b.ID)
	rec.RecordComm(history.EvSend, 0, core.GenesisID, b.ID)
	rec.RecordComm(history.EvReceive, 0, core.GenesisID, b.ID)
	// Process 1 updates BEFORE its receive: R2 ordering violated.
	rec.RecordComm(history.EvUpdate, 1, core.GenesisID, b.ID)
	rec.RecordComm(history.EvReceive, 1, core.GenesisID, b.ID)
	rep := UpdateAgreement(rec.Snapshot(), creators)
	if rep.OK {
		t.Fatal("receive-after-update (R2 order) not detected")
	}
}

func TestR3ViolatedWhenOneProcessNeverReceives(t *testing.T) {
	h, creators := scenario(func(kind history.CommKind, proc int) bool {
		return proc == 2 // process 2 sees nothing
	})
	rep := UpdateAgreement(h, creators)
	if rep.OK {
		t.Fatal("missing receive at process 2 (R3) not detected")
	}
}

func TestR3IgnoresFaultyProcesses(t *testing.T) {
	rec := history.NewRecorder(3, nil)
	b := core.NewBlock(core.GenesisID, 1, 0, 1, nil)
	creators := map[core.BlockID]int{b.ID: 0}
	rec.RecordComm(history.EvUpdate, 0, core.GenesisID, b.ID)
	rec.RecordComm(history.EvSend, 0, core.GenesisID, b.ID)
	rec.RecordComm(history.EvReceive, 0, core.GenesisID, b.ID)
	rec.RecordComm(history.EvReceive, 1, core.GenesisID, b.ID)
	rec.RecordComm(history.EvUpdate, 1, core.GenesisID, b.ID)
	// Process 2 is Byzantine and receives nothing: no violation.
	rec.MarkFaulty(2)
	rep := UpdateAgreement(rec.Snapshot(), creators)
	if !rep.OK {
		t.Fatalf("faulty process counted: %v", rep.Violations)
	}
}

func TestUnknownCreatorTreatedAsRemote(t *testing.T) {
	rec := history.NewRecorder(1, nil)
	b := core.NewBlock(core.GenesisID, 1, 0, 1, nil)
	// No receive precedes the update and the creator map is empty:
	// R2 must flag it (conservative direction).
	rec.RecordComm(history.EvUpdate, 0, core.GenesisID, b.ID)
	rep := UpdateAgreement(rec.Snapshot(), map[core.BlockID]int{})
	if rep.OK {
		t.Fatal("unknown-creator update without receive accepted")
	}
}

func TestLRCHolds(t *testing.T) {
	h, _ := scenario(nil)
	rep := LRC(h)
	if !rep.OK {
		t.Fatalf("clean scenario violated LRC: %v", rep.Violations)
	}
}

func TestLRCValidityViolated(t *testing.T) {
	// Sender never receives its own message.
	h, _ := scenario(func(kind history.CommKind, proc int) bool {
		return kind == history.EvReceive && proc == 0
	})
	rep := LRC(h)
	if rep.OK {
		t.Fatal("missing loopback receive (Validity) not detected")
	}
}

func TestLRCAgreementViolated(t *testing.T) {
	h, _ := scenario(func(kind history.CommKind, proc int) bool {
		return kind == history.EvReceive && proc == 2
	})
	rep := LRC(h)
	if rep.OK {
		t.Fatal("partial delivery (Agreement) not detected")
	}
}

func TestLRCIgnoresFaultySenders(t *testing.T) {
	rec := history.NewRecorder(2, nil)
	b := core.NewBlock(core.GenesisID, 1, 0, 1, nil)
	// A Byzantine process sends but nobody receives: not a violation
	// (the properties quantify over correct processes).
	rec.RecordComm(history.EvSend, 1, core.GenesisID, b.ID)
	rec.MarkFaulty(1)
	rep := LRC(rec.Snapshot())
	if !rep.OK {
		t.Fatalf("faulty sender counted: %v", rep.Violations)
	}
}
