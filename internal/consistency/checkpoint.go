// Monitor checkpointing: Checkpoint serializes every piece of a
// Monitor's bounded retained state — counters, caches, windows,
// candidate sets, token groups and the live-emission budgets — into a
// deterministic byte string, and RestoreMonitor rebuilds a monitor from
// it that is observationally identical to the original: feeding the
// rest of the stream and calling Finalize yields byte-identical
// verdicts, witnesses and Checked counts, exactly as if the run had
// never been interrupted. This is what makes a crashed-and-recovered
// monitoring process equivalent to an uninterrupted one (the
// crash–recovery fault model's observer side).
//
// Two caches demand care because they are *arrival-conclusive*: the
// per-chain Block Validity facts and the per-chain scores are computed
// when a chain is first read, and the monitor's equivalence contract
// depends on reusing the arrival-time value, not a recomputation
// against a later append index. Both are therefore serialized verbatim
// and never recomputed on restore.
//
// Determinism of the bytes themselves: every map is flattened into a
// slice sorted by its key (chain keys by (head, length), block pools by
// ID, token groups by token), so the same monitor state always
// marshals to the same bytes — checkpoint digests can be pinned.
//
// Self-containment: the checkpoint embeds a block pool covering every
// block a retained record can reference — append arguments, eagerly
// recorded chains, and the interned chains behind retained read heads —
// so RestoreMonitor works with a fresh table (a recovered process that
// lost its recorder) as well as with the live run's table. Restoring
// interns the pool into whichever table is used; for histories honoring
// the Recorder invariant (every attached block is interned) this is a
// no-op, which is what keeps restored-monitor renderings byte-identical
// to the uninterrupted run's.
package consistency

import (
	"encoding/json"
	"fmt"
	"sort"

	"repro/internal/core"
	"repro/internal/history"
)

// checkpointVersion guards the wire format.
const checkpointVersion = 1

// ckKey is the serialized form of a chainKey.
type ckKey struct {
	Head core.BlockID
	N    int
}

func (k ckKey) less(o ckKey) bool {
	if k.Head != o.Head {
		return k.Head < o.Head
	}
	return k.N < o.N
}

// ckRec is the serialized form of an opRec. Block pointers are flattened
// to IDs against the checkpoint's block pool.
type ckRec struct {
	ID, Proc   int
	Kind       history.OpKind
	OK         bool `json:",omitempty"`
	Pending    bool `json:",omitempty"`
	Head       core.BlockID
	ChainLen   int
	Inv, Rsp   int
	InvT, RspT int64
	Block      core.BlockID   `json:",omitempty"`
	Chain      []core.BlockID `json:",omitempty"` // eager chain only
	HasChain   bool           `json:",omitempty"`
	Score, Ord int
}

type ckScore struct {
	Key   ckKey
	Score int
}

type ckFact struct {
	Key          ckKey
	Clean        bool
	MaxAppendInv int
	NonGenesis   int
	FirstInvalid core.BlockID
	HasInvalid   bool
}

type ckSet struct {
	Key       ckKey
	Recs      []ckRec
	Truncated bool
}

type ckClass struct {
	Score     int
	Recs      []ckRec
	Truncated bool
}

type ckRun struct {
	Key         ckKey
	First, Last ckRec
	N           int
}

type ckSPLen struct {
	Len       int
	Runs      []ckRun
	Truncated bool
	Last      ckRec
	Count     int
}

type ckLMRPair struct{ Prev, Cur ckRec }

type ckAppend struct {
	Block core.BlockID
	Rec   ckRec
}

type ckToken struct {
	Token string
	Recs  []ckRec
}

// ckpt is the full serialized monitor state.
type ckpt struct {
	Version int

	Procs, Window, K int

	Faulty []int

	Ops, NReads, NAppends, NComm int

	Scores []ckScore

	Win []ckRec

	LMRPrev    []ckRec
	LMRHas     []bool
	LMRViol    [][]ckLMRPair
	LMRChecked int

	SPLens   []ckSPLen
	SPMax    ckRec
	SPHasMax bool
	SPCmp    []ckKey

	Classes []ckClass

	BVFacts    []ckFact
	BVSuspects []ckSet
	BVChecked  int
	AppendInv  []ckAppend

	Tokens []ckToken

	LiveLMR, LiveSP, LiveBV, LiveKF, LiveTotal int

	Pool []*core.Block
}

// poolCollector gathers every block a retained record references.
type poolCollector struct {
	table  *history.ChainTable
	blocks map[core.BlockID]*core.Block
}

func (pc *poolCollector) addBlock(b *core.Block) {
	if b == nil {
		return
	}
	if _, ok := pc.blocks[b.ID]; !ok {
		pc.blocks[b.ID] = b
	}
}

func (pc *poolCollector) addRec(r opRec) {
	pc.addBlock(r.block)
	for _, b := range r.chain {
		pc.addBlock(b)
	}
	// Interned read: pull the chain behind the head from the table so
	// the checkpoint stays self-contained for table-less restores.
	if r.kind == history.OpRead && r.chain == nil && r.head != "" && pc.table != nil {
		for _, b := range pc.table.ChainToUncached(r.head) {
			pc.addBlock(b)
		}
	}
}

func ckOf(r opRec) ckRec {
	c := ckRec{
		ID: r.id, Proc: r.proc, Kind: r.kind, OK: r.ok, Pending: r.pending,
		Head: r.head, ChainLen: r.chainLen, Inv: r.inv, Rsp: r.rsp,
		InvT: r.invT, RspT: r.rspT, Score: r.score, Ord: r.ord,
	}
	if r.block != nil {
		c.Block = r.block.ID
	}
	if r.chain != nil {
		c.HasChain = true
		c.Chain = make([]core.BlockID, len(r.chain))
		for i, b := range r.chain {
			c.Chain[i] = b.ID
		}
	}
	return c
}

func ckRecs(rs []opRec) []ckRec {
	out := make([]ckRec, len(rs))
	for i, r := range rs {
		out[i] = ckOf(r)
	}
	return out
}

// Checkpoint serializes the monitor's retained state. The bytes are
// deterministic (identical state marshals identically) and
// self-contained (the embedded block pool covers every referenced
// block). Checkpointing is cheap relative to the run — O(retained
// state), which is bounded (see the Monitor package comment) — and does
// not perturb the monitor. A finalized monitor checkpoints its
// pre-finalization state; Finalize after restore recomputes the same
// verdicts (it only reads the retained structures).
func (m *Monitor) Checkpoint() ([]byte, error) {
	pc := &poolCollector{table: m.table, blocks: map[core.BlockID]*core.Block{}}

	ck := &ckpt{
		Version: checkpointVersion,
		Procs:   m.procs, Window: m.window, K: m.k,
		Ops: m.ops, NReads: m.nreads, NAppends: m.nappends, NComm: m.ncomm,
		LMRChecked: m.lmrChecked,
		SPHasMax:   m.spHasMax,
		BVChecked:  m.bvChecked,
		LiveLMR:    m.liveLMR, LiveSP: m.liveSP, LiveBV: m.liveBV, LiveKF: m.liveKF,
		LiveTotal: m.liveTotal,
	}

	for p := range m.faulty {
		if m.faulty[p] {
			ck.Faulty = append(ck.Faulty, p)
		}
	}
	sort.Ints(ck.Faulty)

	ck.Scores = make([]ckScore, 0, len(m.scoreByKey))
	for k, s := range m.scoreByKey {
		ck.Scores = append(ck.Scores, ckScore{Key: ckKey{k.head, k.n}, Score: s})
	}
	sort.Slice(ck.Scores, func(i, j int) bool { return ck.Scores[i].Key.less(ck.Scores[j].Key) })

	for _, r := range m.win {
		pc.addRec(r)
	}
	ck.Win = ckRecs(m.win)

	ck.LMRPrev = make([]ckRec, len(m.lmrPrev))
	ck.LMRHas = append([]bool(nil), m.lmrHas...)
	for p := range m.lmrPrev {
		if m.lmrHas[p] {
			pc.addRec(m.lmrPrev[p])
			ck.LMRPrev[p] = ckOf(m.lmrPrev[p])
		}
	}
	ck.LMRViol = make([][]ckLMRPair, len(m.lmrViol))
	for p, pairs := range m.lmrViol {
		for _, pr := range pairs {
			pc.addRec(pr.prev)
			pc.addRec(pr.cur)
			ck.LMRViol[p] = append(ck.LMRViol[p], ckLMRPair{Prev: ckOf(pr.prev), Cur: ckOf(pr.cur)})
		}
	}

	lens := make([]int, 0, len(m.spLens))
	for l := range m.spLens {
		lens = append(lens, l)
	}
	sort.Ints(lens)
	for _, l := range lens {
		sl := m.spLens[l]
		e := ckSPLen{Len: l, Truncated: sl.truncated, Count: sl.count, Last: ckOf(sl.last)}
		pc.addRec(sl.last)
		for _, run := range sl.runs {
			pc.addRec(run.first)
			pc.addRec(run.last)
			e.Runs = append(e.Runs, ckRun{
				Key: ckKey{run.key.head, run.key.n}, First: ckOf(run.first), Last: ckOf(run.last), N: run.n,
			})
		}
		ck.SPLens = append(ck.SPLens, e)
	}
	if m.spHasMax {
		pc.addRec(m.spMax)
		ck.SPMax = ckOf(m.spMax)
	}
	for k := range m.spCmp {
		if m.spCmp[k] {
			ck.SPCmp = append(ck.SPCmp, ckKey{k.head, k.n})
		}
	}
	sort.Slice(ck.SPCmp, func(i, j int) bool { return ck.SPCmp[i].less(ck.SPCmp[j]) })

	scores := make([]int, 0, len(m.classes))
	for s := range m.classes {
		scores = append(scores, s)
	}
	sort.Ints(scores)
	for _, s := range scores {
		cls := m.classes[s]
		for _, r := range cls.recs {
			pc.addRec(r)
		}
		ck.Classes = append(ck.Classes, ckClass{Score: s, Recs: ckRecs(cls.recs), Truncated: cls.truncated})
	}

	facts := make([]ckFact, 0, len(m.bvFacts))
	for k, f := range m.bvFacts {
		facts = append(facts, ckFact{
			Key: ckKey{k.head, k.n}, Clean: f.clean, MaxAppendInv: f.maxAppendInv,
			NonGenesis: f.nonGenesis, FirstInvalid: f.firstInvalid, HasInvalid: f.hasInvalid,
		})
	}
	sort.Slice(facts, func(i, j int) bool { return facts[i].Key.less(facts[j].Key) })
	ck.BVFacts = facts

	susKeys := make([]chainKey, 0, len(m.bvSuspects))
	for k := range m.bvSuspects {
		susKeys = append(susKeys, k)
	}
	sort.Slice(susKeys, func(i, j int) bool {
		return (ckKey{susKeys[i].head, susKeys[i].n}).less(ckKey{susKeys[j].head, susKeys[j].n})
	})
	for _, k := range susKeys {
		set := m.bvSuspects[k]
		for _, r := range set.recs {
			pc.addRec(r)
		}
		ck.BVSuspects = append(ck.BVSuspects, ckSet{
			Key: ckKey{k.head, k.n}, Recs: ckRecs(set.recs), Truncated: set.truncated,
		})
	}

	appIDs := make([]core.BlockID, 0, len(m.appendInv))
	for id := range m.appendInv {
		appIDs = append(appIDs, id)
	}
	sort.Slice(appIDs, func(i, j int) bool { return appIDs[i] < appIDs[j] })
	for _, id := range appIDs {
		r := m.appendInv[id]
		pc.addRec(r)
		ck.AppendInv = append(ck.AppendInv, ckAppend{Block: id, Rec: ckOf(r)})
	}

	toks := make([]string, 0, len(m.tokens))
	for tok := range m.tokens {
		toks = append(toks, tok)
	}
	sort.Strings(toks)
	for _, tok := range toks {
		group := m.tokens[tok]
		for _, r := range group {
			pc.addRec(r)
		}
		ck.Tokens = append(ck.Tokens, ckToken{Token: tok, Recs: ckRecs(group)})
	}

	ids := make([]core.BlockID, 0, len(pc.blocks))
	for id := range pc.blocks {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	ck.Pool = make([]*core.Block, len(ids))
	for i, id := range ids {
		ck.Pool[i] = pc.blocks[id]
	}

	return json.Marshal(ck)
}

// restoreCtx resolves serialized records back into live ones against
// the restored monitor's table.
type restoreCtx struct {
	table *history.ChainTable
}

func (rc *restoreCtx) rec(c ckRec) (opRec, error) {
	r := opRec{
		id: c.ID, proc: c.Proc, kind: c.Kind, ok: c.OK, pending: c.Pending,
		head: c.Head, chainLen: c.ChainLen, inv: c.Inv, rsp: c.Rsp,
		invT: c.InvT, rspT: c.RspT, score: c.Score, ord: c.Ord,
	}
	if c.Block != "" {
		b := rc.table.Block(c.Block)
		if b == nil {
			return r, fmt.Errorf("consistency: checkpoint references block %s missing from pool", c.Block.Short())
		}
		r.block = b
	}
	if c.HasChain {
		r.chain = make(core.Chain, len(c.Chain))
		for i, id := range c.Chain {
			b := rc.table.Block(id)
			if b == nil {
				return r, fmt.Errorf("consistency: checkpoint chain references block %s missing from pool", id.Short())
			}
			r.chain[i] = b
		}
	}
	return r, nil
}

func (rc *restoreCtx) recs(cs []ckRec) ([]opRec, error) {
	out := make([]opRec, len(cs))
	for i, c := range cs {
		r, err := rc.rec(c)
		if err != nil {
			return nil, err
		}
		out[i] = r
	}
	return out, nil
}

// RestoreMonitor rebuilds a monitor from a Checkpoint. cfg supplies the
// non-serializable parts — Score, P, Table, OnWitness — and must
// structurally match the checkpointed monitor (Procs, Horizon, K),
// which is validated. A nil cfg.Table gets a fresh table; either way
// the checkpoint's block pool is interned so retained records
// materialize. The restored monitor then consumes the remainder of the
// stream and Finalizes exactly as the original would have.
func RestoreMonitor(data []byte, cfg MonitorConfig) (*Monitor, error) {
	var ck ckpt
	if err := json.Unmarshal(data, &ck); err != nil {
		return nil, fmt.Errorf("consistency: corrupt checkpoint: %w", err)
	}
	if ck.Version != checkpointVersion {
		return nil, fmt.Errorf("consistency: checkpoint version %d, want %d", ck.Version, checkpointVersion)
	}
	m := NewMonitor(cfg)
	if m.procs != ck.Procs || m.window != ck.Window || m.k != ck.K {
		return nil, fmt.Errorf("consistency: checkpoint shape (procs=%d, window=%d, k=%d) does not match config (procs=%d, window=%d, k=%d)",
			ck.Procs, ck.Window, ck.K, m.procs, m.window, m.k)
	}
	if m.table == nil {
		m.table = history.NewChainTable()
	}
	for _, b := range ck.Pool {
		m.table.Intern(b)
	}
	rc := &restoreCtx{table: m.table}

	m.ops, m.nreads, m.nappends, m.ncomm = ck.Ops, ck.NReads, ck.NAppends, ck.NComm
	m.lmrChecked, m.bvChecked = ck.LMRChecked, ck.BVChecked
	m.liveLMR, m.liveSP, m.liveBV, m.liveKF = ck.LiveLMR, ck.LiveSP, ck.LiveBV, ck.LiveKF
	m.liveTotal = ck.LiveTotal

	for _, p := range ck.Faulty {
		m.faulty[p] = true
	}
	for _, s := range ck.Scores {
		m.scoreByKey[chainKey{s.Key.Head, s.Key.N}] = s.Score
	}

	var err error
	if m.win, err = rc.recs(ck.Win); err != nil {
		return nil, err
	}

	if len(ck.LMRHas) != len(m.lmrHas) {
		return nil, fmt.Errorf("consistency: checkpoint LMR state for %d procs, want %d", len(ck.LMRHas), len(m.lmrHas))
	}
	copy(m.lmrHas, ck.LMRHas)
	for p := range ck.LMRPrev {
		if !m.lmrHas[p] {
			continue
		}
		if m.lmrPrev[p], err = rc.rec(ck.LMRPrev[p]); err != nil {
			return nil, err
		}
	}
	for p, pairs := range ck.LMRViol {
		for _, pr := range pairs {
			prev, err := rc.rec(pr.Prev)
			if err != nil {
				return nil, err
			}
			cur, err := rc.rec(pr.Cur)
			if err != nil {
				return nil, err
			}
			m.lmrViol[p] = append(m.lmrViol[p], lmrPair{prev, cur})
		}
	}

	for _, e := range ck.SPLens {
		sl := &spLen{truncated: e.Truncated, count: e.Count}
		if sl.last, err = rc.rec(e.Last); err != nil {
			return nil, err
		}
		for _, run := range e.Runs {
			first, err := rc.rec(run.First)
			if err != nil {
				return nil, err
			}
			last, err := rc.rec(run.Last)
			if err != nil {
				return nil, err
			}
			sl.runs = append(sl.runs, spRun{
				key: chainKey{run.Key.Head, run.Key.N}, first: first, last: last, n: run.N,
			})
		}
		m.spLens[e.Len] = sl
	}
	m.spHasMax = ck.SPHasMax
	if ck.SPHasMax {
		if m.spMax, err = rc.rec(ck.SPMax); err != nil {
			return nil, err
		}
	}
	for _, k := range ck.SPCmp {
		m.spCmp[chainKey{k.Head, k.N}] = true
	}

	for _, e := range ck.Classes {
		recs, err := rc.recs(e.Recs)
		if err != nil {
			return nil, err
		}
		m.classes[e.Score] = &recSet{recs: recs, truncated: e.Truncated}
	}

	for _, f := range ck.BVFacts {
		m.bvFacts[chainKey{f.Key.Head, f.Key.N}] = &bvFact{
			clean: f.Clean, maxAppendInv: f.MaxAppendInv, nonGenesis: f.NonGenesis,
			firstInvalid: f.FirstInvalid, hasInvalid: f.HasInvalid,
		}
	}
	for _, e := range ck.BVSuspects {
		recs, err := rc.recs(e.Recs)
		if err != nil {
			return nil, err
		}
		m.bvSuspects[chainKey{e.Key.Head, e.Key.N}] = &recSet{recs: recs, truncated: e.Truncated}
	}
	for _, e := range ck.AppendInv {
		if m.appendInv[e.Block], err = rc.rec(e.Rec); err != nil {
			return nil, err
		}
	}
	for _, e := range ck.Tokens {
		if m.tokens[e.Token], err = rc.recs(e.Recs); err != nil {
			return nil, err
		}
	}
	return m, nil
}
