package core

import (
	"bytes"
	"fmt"
	"sort"
)

// Tree is the BlockTree bt = (V_bt, E_bt): a rooted tree of blocks with
// every edge pointing back toward the genesis block. The zero value is
// not usable; construct with NewTree.
//
// Tree offers two mutation layers:
//
//   - Attach(b): the replica-level update operation of Section 4.2 —
//     insert a block under an arbitrary existing parent (this is how
//     forks arise);
//   - the BT-ADT append()/read() of Definition 3.1 lives in the adt and
//     refine packages, built on top of Attach and a Selector.
//
// Tree maintains three incremental indices so that the selection
// function f (internal/core/select.go) never rescans the whole tree:
//
//   - leaves: the current leaf set, updated O(1) per Attach;
//   - maxHeight: the maximum block height, updated O(1) per Attach;
//   - chainWeight: per block, the cumulative weight of the root-to-block
//     chain excluding genesis (chainWeight[b] = chainWeight[parent] +
//     b.Weight, so chainWeight[leaf] = WeightScore of ChainTo(leaf)),
//     updated O(1) per Attach;
//
// alongside the subtreeWeight cache for GHOST, which is built lazily on
// first query and then maintained incrementally (O(depth) per Attach),
// so attach-heavy runs under the other selectors never pay for it. With
// them, LongestChain/HeaviestChain select in O(#leaves) and materialize
// only the winning chain.
//
// Tree is not safe for concurrent use; each simulated process owns its
// replica (internal/replica), and shared-memory experiments wrap it.
type Tree struct {
	blocks   map[BlockID]*Block
	children map[BlockID][]BlockID
	root     *Block
	// subtreeWeight caches, per block, the total weight of the subtree
	// rooted there, for GHOST. It is maintained lazily: the map is
	// built in one bottom-up pass on the first SubtreeWeight query and
	// kept incremental (O(depth) back-propagation per Attach) from
	// then on, so selectors that never consult it — longest, heaviest,
	// single — pay nothing for it on the attach hot path.
	subtreeWeight map[BlockID]int
	// ghostActive records whether subtreeWeight is being maintained.
	ghostActive bool
	// leaves is the maintained leaf set: blocks with no children.
	leaves map[BlockID]struct{}
	// maxHeight caches the maximum block height in the tree.
	maxHeight int
	// chainWeight caches, per block, the cumulative weight of the chain
	// from genesis to the block, genesis excluded (matching WeightScore).
	chainWeight map[BlockID]int
}

// NewTree returns a BlockTree containing only the genesis block b0.
func NewTree() *Tree {
	g := Genesis()
	t := &Tree{
		blocks:      map[BlockID]*Block{g.ID: g},
		children:    make(map[BlockID][]BlockID),
		root:        g,
		leaves:      map[BlockID]struct{}{g.ID: {}},
		chainWeight: map[BlockID]int{g.ID: 0},
	}
	return t
}

// Root returns the genesis block.
func (t *Tree) Root() *Block { return t.root }

// Len returns the number of blocks in the tree, genesis included.
func (t *Tree) Len() int { return len(t.blocks) }

// Block returns the block with the given ID, or nil if absent.
func (t *Tree) Block(id BlockID) *Block { return t.blocks[id] }

// Has reports whether the tree contains a block with the given ID.
func (t *Tree) Has(id BlockID) bool { _, ok := t.blocks[id]; return ok }

// Attach inserts block b under its parent. It returns an error if the
// parent is unknown, the height is inconsistent, or a different block
// with the same ID is already present — Parent, Height, Weight and
// Payload must all match the attached copy, so a re-weighted twin
// (Block.WithWeight keeps the ID) cannot silently corrupt the weight
// caches. Attaching an identical block twice is idempotent (duplicate
// delivery in the network simulator).
func (t *Tree) Attach(b *Block) error {
	if b == nil {
		return fmt.Errorf("core: attach nil block")
	}
	if b.IsGenesis() {
		return nil // genesis is always present
	}
	if existing, ok := t.blocks[b.ID]; ok {
		if existing.Parent != b.Parent || existing.Height != b.Height ||
			existing.Weight != b.Weight || !bytes.Equal(existing.Payload, b.Payload) {
			return fmt.Errorf("core: conflicting block %s already attached", b.ID.Short())
		}
		return nil
	}
	parent, ok := t.blocks[b.Parent]
	if !ok {
		return fmt.Errorf("core: parent %s of %s not in tree", b.Parent.Short(), b.ID.Short())
	}
	if b.Height != parent.Height+1 {
		return fmt.Errorf("core: block %s height %d, want %d", b.ID.Short(), b.Height, parent.Height+1)
	}
	t.blocks[b.ID] = b
	// Keep sibling order deterministic regardless of arrival order so
	// that tie-breaking selectors are reproducible: insert in place
	// (sibling lists are short; no per-attach sort or closure).
	kids := append(t.children[b.Parent], b.ID)
	for i := len(kids) - 1; i > 0 && kids[i-1] > b.ID; i-- {
		kids[i], kids[i-1] = kids[i-1], kids[i]
	}
	t.children[b.Parent] = kids
	delete(t.leaves, b.Parent)
	t.leaves[b.ID] = struct{}{}
	if b.Height > t.maxHeight {
		t.maxHeight = b.Height
	}
	t.chainWeight[b.ID] = t.chainWeight[b.Parent] + b.Weight
	if t.ghostActive {
		t.subtreeWeight[b.ID] = b.Weight
		for p := b.Parent; p != ""; {
			t.subtreeWeight[p] += b.Weight
			pb := t.blocks[p]
			p = pb.Parent
		}
	}
	return nil
}

// Children returns the IDs of the blocks chaining to id, in lexicographic
// order (deterministic). The returned slice must not be modified.
func (t *Tree) Children(id BlockID) []BlockID { return t.children[id] }

// ForkCount returns the number of children of id — the number of branches
// (forks) rooted at that block, the quantity bounded by the frugal oracle.
func (t *Tree) ForkCount(id BlockID) int { return len(t.children[id]) }

// MaxForkDegree returns the largest number of branches from any single
// block in the tree; 1 (or 0 for a bare genesis) means the tree is a
// chain. Used to verify k-Fork Coherence empirically.
func (t *Tree) MaxForkDegree() int {
	max := 0
	for _, ch := range t.children {
		if len(ch) > max {
			max = len(ch)
		}
	}
	return max
}

// SubtreeWeight returns the total weight of the subtree rooted at id
// (the block's own weight included). Used by the GHOST selector. The
// first query builds the whole index in one O(n log n) bottom-up pass
// and activates incremental maintenance.
func (t *Tree) SubtreeWeight(id BlockID) int {
	if !t.ghostActive {
		t.buildSubtreeWeights()
	}
	return t.subtreeWeight[id]
}

// buildSubtreeWeights computes every subtree weight bottom-up (blocks
// in descending height order fold into their parents).
func (t *Tree) buildSubtreeWeights() {
	t.subtreeWeight = make(map[BlockID]int, len(t.blocks))
	blocks := make([]*Block, 0, len(t.blocks))
	for _, b := range t.blocks {
		blocks = append(blocks, b)
	}
	sort.Slice(blocks, func(i, j int) bool { return blocks[i].Height > blocks[j].Height })
	for _, b := range blocks {
		t.subtreeWeight[b.ID] += b.Weight
		if !b.IsGenesis() {
			t.subtreeWeight[b.Parent] += t.subtreeWeight[b.ID]
		}
	}
	t.ghostActive = true
}

// ChainWeight returns the cumulative weight of the chain from genesis to
// id, genesis excluded — exactly WeightScore{}.Of(t.ChainTo(id)) without
// materializing the chain. Returns 0 for genesis or an absent block.
func (t *Tree) ChainWeight(id BlockID) int { return t.chainWeight[id] }

// LeafCount returns the number of leaves without allocating.
func (t *Tree) LeafCount() int { return len(t.leaves) }

// Leaves returns the IDs of all leaves, in lexicographic order. The cost
// is O(#leaves log #leaves), independent of the tree size.
func (t *Tree) Leaves() []BlockID {
	out := make([]BlockID, 0, len(t.leaves))
	for id := range t.leaves {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// ChainTo returns the blockchain {b0}⌢...⌢{b_id}, or nil if id is not in
// the tree. This is the path from the leaf back to the root, reversed to
// root-first order.
func (t *Tree) ChainTo(id BlockID) Chain {
	b, ok := t.blocks[id]
	if !ok {
		return nil
	}
	depth := b.Height + 1
	out := make(Chain, depth)
	for i := depth - 1; i >= 0; i-- {
		out[i] = b
		b = t.blocks[b.Parent]
	}
	return out
}

// Height returns the maximum block height present in the tree, O(1).
func (t *Tree) Height() int { return t.maxHeight }

// Blocks returns every block in the tree in (height, ID) order.
// The genesis block comes first.
func (t *Tree) Blocks() []*Block {
	out := make([]*Block, 0, len(t.blocks))
	for _, b := range t.blocks {
		out = append(out, b)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Height != out[j].Height {
			return out[i].Height < out[j].Height
		}
		return out[i].ID < out[j].ID
	})
	return out
}

// Clone returns a deep copy of the tree structure, indices included
// (block pointers are shared; blocks are immutable).
func (t *Tree) Clone() *Tree {
	nt := &Tree{
		blocks:      make(map[BlockID]*Block, len(t.blocks)),
		children:    make(map[BlockID][]BlockID, len(t.children)),
		root:        t.root,
		leaves:      make(map[BlockID]struct{}, len(t.leaves)),
		maxHeight:   t.maxHeight,
		chainWeight: make(map[BlockID]int, len(t.chainWeight)),
		ghostActive: t.ghostActive,
	}
	for id, b := range t.blocks {
		nt.blocks[id] = b
	}
	for id, ch := range t.children {
		cp := make([]BlockID, len(ch))
		copy(cp, ch)
		nt.children[id] = cp
	}
	if t.ghostActive {
		nt.subtreeWeight = make(map[BlockID]int, len(t.subtreeWeight))
		for id, w := range t.subtreeWeight {
			nt.subtreeWeight[id] = w
		}
	}
	for id := range t.leaves {
		nt.leaves[id] = struct{}{}
	}
	for id, w := range t.chainWeight {
		nt.chainWeight[id] = w
	}
	return nt
}

// String summarizes the tree, e.g. "tree(7 blocks, height 4, maxfork 2)".
func (t *Tree) String() string {
	return fmt.Sprintf("tree(%d blocks, height %d, maxfork %d)", t.Len(), t.Height(), t.MaxForkDegree())
}
