package core

// Selector is the paper's selection function f ∈ F : BT → BC. It picks
// one blockchain out of the BlockTree — the chain a read() returns and
// the chain whose head an append() extends. The paper leaves f generic;
// the three instances here cover the systems of Section 5:
//
//   - LongestChain: Bitcoin's rule (most blocks, lexicographic tiebreak —
//     the convention used in the paper's Figure 2);
//   - HeaviestChain: most cumulative work along a single path;
//   - GHOST: Ethereum's greedy heaviest-observed-subtree walk.
//
// All selectors are deterministic: given equal trees they return equal
// chains, as required for f to be a function.
//
// Every selector here runs off the Tree's incremental indices: picking
// the winning leaf costs O(#leaves) (or O(path) for GHOST's descent)
// and only the winning chain is materialized, O(height). The original
// full-rescan implementations are kept unexported in select_legacy_test.go
// and pinned equivalent by differential tests.
type Selector interface {
	// Select returns the selected blockchain including the genesis
	// block ({b0}⌢f(bt) in the paper's notation; per the paper's
	// Section 4.3 convention we fold b0 into the returned chain).
	Select(*Tree) Chain
	// Name identifies the selector for reports.
	Name() string
}

// HeadSelector is the head-only fast path: SelectHead returns the head
// block of the chain Select would return, without materializing it.
// Append paths (replica mining, refined append, BT-ADT append) only need
// the head to chain a new block under, so this turns every append-side
// selection from O(height) into O(#leaves) flat. All built-in selectors
// implement it; HeadOf falls back to Select(t).Head() for foreign ones.
type HeadSelector interface {
	SelectHead(*Tree) *Block
}

// HeadOf returns the head of f(t), using the selector's head-only fast
// path when available. On a degenerate (zero-value) tree it returns the
// genesis block, matching Select's genesis-chain fallback.
func HeadOf(f Selector, t *Tree) *Block {
	if hs, ok := f.(HeadSelector); ok {
		if h := hs.SelectHead(t); h != nil {
			return h
		}
		return Genesis()
	}
	return f.Select(t).Head()
}

// LongestChain selects the chain to the highest leaf; among equally high
// leaves it picks the one whose head has the lexicographically largest ID
// (Figure 2's convention: "in case of equality, selects the largest based
// on the lexicographical order").
type LongestChain struct{}

// SelectHead returns the highest leaf (lexicographic tiebreak) in
// O(#leaves) using the maintained leaf set.
func (LongestChain) SelectHead(t *Tree) *Block {
	var best BlockID
	bestH := -1
	for leaf := range t.leaves {
		h := t.blocks[leaf].Height
		if h > bestH || (h == bestH && leaf > best) {
			best, bestH = leaf, h
		}
	}
	if bestH < 0 {
		return t.Root()
	}
	return t.blocks[best]
}

// Select walks the leaf set and returns the longest chain, materializing
// only the winner.
func (f LongestChain) Select(t *Tree) Chain {
	head := f.SelectHead(t)
	if head == nil {
		return GenesisChain()
	}
	return t.ChainTo(head.ID)
}

// Name returns "longest".
func (LongestChain) Name() string { return "longest" }

// HeaviestChain selects the chain with the largest cumulative block
// weight (ties broken lexicographically by head ID). With unit weights it
// coincides with LongestChain.
type HeaviestChain struct{}

// SelectHead returns the leaf with the largest cumulative chain weight in
// O(#leaves), reading the maintained chainWeight index instead of
// re-walking and re-summing each root-to-leaf path.
func (HeaviestChain) SelectHead(t *Tree) *Block {
	var best BlockID
	bestW := -1
	found := false
	for leaf := range t.leaves {
		w := t.chainWeight[leaf]
		if w > bestW || (w == bestW && leaf > best) {
			best, bestW = leaf, w
			found = true
		}
	}
	if !found {
		return t.Root()
	}
	return t.blocks[best]
}

// Select returns the heaviest root-to-leaf path, materializing only the
// winner.
func (f HeaviestChain) Select(t *Tree) Chain {
	head := f.SelectHead(t)
	if head == nil {
		return GenesisChain()
	}
	return t.ChainTo(head.ID)
}

// Name returns "heaviest".
func (HeaviestChain) Name() string { return "heaviest" }

// GHOST implements the Greedy Heaviest-Observed SubTree rule used by
// Ethereum (Sompolinsky & Zohar): starting from genesis, repeatedly
// descend into the child whose subtree has the largest total weight
// (ties broken lexicographically) until reaching a leaf.
type GHOST struct{}

// SelectHead performs the greedy descent and returns only the final leaf.
func (GHOST) SelectHead(t *Tree) *Block {
	cur := t.Root()
	if cur == nil {
		return nil // degenerate zero-value tree; HeadOf falls back
	}
	for {
		ch := t.Children(cur.ID)
		if len(ch) == 0 {
			return cur
		}
		best := ch[0]
		bestW := t.SubtreeWeight(best)
		for _, c := range ch[1:] {
			w := t.SubtreeWeight(c)
			if w > bestW || (w == bestW && c > best) {
				best, bestW = c, w
			}
		}
		cur = t.Block(best)
	}
}

// Select performs the greedy heaviest-subtree descent.
func (GHOST) Select(t *Tree) Chain {
	cur := t.Root().ID
	chain := Chain{t.Root()}
	for {
		ch := t.Children(cur)
		if len(ch) == 0 {
			return chain
		}
		best := ch[0]
		bestW := t.SubtreeWeight(best)
		for _, c := range ch[1:] {
			w := t.SubtreeWeight(c)
			if w > bestW || (w == bestW && c > best) {
				best, bestW = c, w
			}
		}
		chain = append(chain, t.Block(best))
		cur = best
	}
}

// Name returns "ghost".
func (GHOST) Name() string { return "ghost" }

// SingleChain is the trivial projection used by consortium systems whose
// BlockTree contains a unique blockchain (Red Belly, Fabric): it asserts
// the tree is fork-free and returns its only maximal chain. If the tree
// does fork (a protocol bug), it degrades to LongestChain so that the
// consistency checkers can observe and report the anomaly.
type SingleChain struct{}

// SelectHead returns the head of the unique chain (or the longest-chain
// head if the tree forks).
func (SingleChain) SelectHead(t *Tree) *Block {
	if t.MaxForkDegree() <= 1 {
		for leaf := range t.leaves {
			return t.blocks[leaf] // fork-free: exactly one leaf
		}
		// Degenerate (zero-value) tree with no leaf set: fall through
		// to the genesis chain instead of indexing into nothing.
		return t.Root()
	}
	return LongestChain{}.SelectHead(t)
}

// Select returns the unique chain of a fork-free tree.
func (f SingleChain) Select(t *Tree) Chain {
	head := f.SelectHead(t)
	if head == nil {
		return GenesisChain()
	}
	return t.ChainTo(head.ID)
}

// Name returns "single".
func (SingleChain) Name() string { return "single" }
