package core

// Selector is the paper's selection function f ∈ F : BT → BC. It picks
// one blockchain out of the BlockTree — the chain a read() returns and
// the chain whose head an append() extends. The paper leaves f generic;
// the three instances here cover the systems of Section 5:
//
//   - LongestChain: Bitcoin's rule (most blocks, lexicographic tiebreak —
//     the convention used in the paper's Figure 2);
//   - HeaviestChain: most cumulative work along a single path;
//   - GHOST: Ethereum's greedy heaviest-observed-subtree walk.
//
// All selectors are deterministic: given equal trees they return equal
// chains, as required for f to be a function.
type Selector interface {
	// Select returns the selected blockchain including the genesis
	// block ({b0}⌢f(bt) in the paper's notation; per the paper's
	// Section 4.3 convention we fold b0 into the returned chain).
	Select(*Tree) Chain
	// Name identifies the selector for reports.
	Name() string
}

// LongestChain selects the chain to the highest leaf; among equally high
// leaves it picks the one whose head has the lexicographically largest ID
// (Figure 2's convention: "in case of equality, selects the largest based
// on the lexicographical order").
type LongestChain struct{}

// Select walks all leaves and returns the longest chain.
func (LongestChain) Select(t *Tree) Chain {
	var best BlockID
	bestH := -1
	for _, leaf := range t.Leaves() {
		b := t.Block(leaf)
		if b.Height > bestH || (b.Height == bestH && leaf > best) {
			best, bestH = leaf, b.Height
		}
	}
	if bestH < 0 {
		return GenesisChain()
	}
	return t.ChainTo(best)
}

// Name returns "longest".
func (LongestChain) Name() string { return "longest" }

// HeaviestChain selects the chain with the largest cumulative block
// weight (ties broken lexicographically by head ID). With unit weights it
// coincides with LongestChain.
type HeaviestChain struct{}

// Select returns the heaviest root-to-leaf path.
func (HeaviestChain) Select(t *Tree) Chain {
	var best BlockID
	bestW := -1
	sc := WeightScore{}
	for _, leaf := range t.Leaves() {
		w := sc.Of(t.ChainTo(leaf))
		if w > bestW || (w == bestW && leaf > best) {
			best, bestW = leaf, w
		}
	}
	if bestW < 0 {
		return GenesisChain()
	}
	return t.ChainTo(best)
}

// Name returns "heaviest".
func (HeaviestChain) Name() string { return "heaviest" }

// GHOST implements the Greedy Heaviest-Observed SubTree rule used by
// Ethereum (Sompolinsky & Zohar): starting from genesis, repeatedly
// descend into the child whose subtree has the largest total weight
// (ties broken lexicographically) until reaching a leaf.
type GHOST struct{}

// Select performs the greedy heaviest-subtree descent.
func (GHOST) Select(t *Tree) Chain {
	cur := t.Root().ID
	chain := Chain{t.Root()}
	for {
		ch := t.Children(cur)
		if len(ch) == 0 {
			return chain
		}
		best := ch[0]
		bestW := t.SubtreeWeight(best)
		for _, c := range ch[1:] {
			w := t.SubtreeWeight(c)
			if w > bestW || (w == bestW && c > best) {
				best, bestW = c, w
			}
		}
		chain = append(chain, t.Block(best))
		cur = best
	}
}

// Name returns "ghost".
func (GHOST) Name() string { return "ghost" }

// SingleChain is the trivial projection used by consortium systems whose
// BlockTree contains a unique blockchain (Red Belly, Fabric): it asserts
// the tree is fork-free and returns its only maximal chain. If the tree
// does fork (a protocol bug), it degrades to LongestChain so that the
// consistency checkers can observe and report the anomaly.
type SingleChain struct{}

// Select returns the unique chain of a fork-free tree.
func (SingleChain) Select(t *Tree) Chain {
	if t.MaxForkDegree() <= 1 {
		// Fork-free: exactly one leaf.
		leaves := t.Leaves()
		return t.ChainTo(leaves[0])
	}
	return LongestChain{}.Select(t)
}

// Name returns "single".
func (SingleChain) Name() string { return "single" }
