package core

import (
	"fmt"
	"math/rand"
	"testing"
)

// BenchmarkIndexedVsLegacySelect pits the indexed selectors against the
// preserved full-rescan originals on the same heavily-forked trees
// (randomTree with zero chain bias — every block under a uniformly
// random earlier block) — the measured form of the differential tests.
// The acceptance bar for the index work is heaviest/indexed ≥ 5× faster
// than heaviest/legacy at 10k blocks.
func BenchmarkIndexedVsLegacySelect(b *testing.B) {
	for _, n := range []int{1_000, 10_000} {
		tree := randomTree(b, rand.New(rand.NewSource(42)), n, 0)
		cases := []struct {
			name    string
			indexed func(*Tree) Chain
			legacy  func(*Tree) Chain
		}{
			{"longest", LongestChain{}.Select, legacySelectLongest},
			{"heaviest", HeaviestChain{}.Select, legacySelectHeaviest},
			{"single", SingleChain{}.Select, legacySelectSingle},
		}
		for _, c := range cases {
			b.Run(fmt.Sprintf("%dk/%s/indexed", n/1000, c.name), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					if ch := c.indexed(tree); ch.Len() == 0 {
						b.Fatal("empty selection")
					}
				}
			})
			b.Run(fmt.Sprintf("%dk/%s/legacy", n/1000, c.name), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					if ch := c.legacy(tree); ch.Len() == 0 {
						b.Fatal("empty selection")
					}
				}
			})
		}
	}
}
