package core

import "strings"

// Chain is a blockchain bc ∈ BC: a path from the genesis block b0 to a
// leaf of the BlockTree, stored root-first ({b0}⌢...⌢{b_k}). The zero
// value is the empty chain; a valid chain always starts with genesis.
type Chain []*Block

// GenesisChain returns the chain consisting only of b0, i.e. the value
// returned by read() on the initial state (Definition 3.1).
func GenesisChain() Chain { return Chain{Genesis()} }

// Len returns the number of blocks in the chain, genesis included.
func (c Chain) Len() int { return len(c) }

// Head returns the last (leaf-most) block of the chain, or nil if empty.
func (c Chain) Head() *Block {
	if len(c) == 0 {
		return nil
	}
	return c[len(c)-1]
}

// Height returns the height of the chain head: 0 for the genesis chain.
func (c Chain) Height() int {
	if len(c) == 0 {
		return -1
	}
	return c.Head().Height
}

// Append returns a new chain c⌢{b}. It does not validate linkage; the
// tree-level operations do.
func (c Chain) Append(b *Block) Chain {
	out := make(Chain, len(c), len(c)+1)
	copy(out, c)
	return append(out, b)
}

// Clone returns a copy sharing the block pointers (blocks are immutable).
func (c Chain) Clone() Chain {
	out := make(Chain, len(c))
	copy(out, c)
	return out
}

// Prefix reports whether c ⊑ other: every block of c appears at the same
// position in other. The empty chain prefixes everything.
func (c Chain) Prefix(other Chain) bool {
	if len(c) > len(other) {
		return false
	}
	for i, b := range c {
		if other[i].ID != b.ID {
			return false
		}
	}
	return true
}

// Comparable reports whether one of the two chains prefixes the other,
// i.e. the Strong Prefix test for a pair of reads (Definition 3.2).
func (c Chain) Comparable(other Chain) bool {
	return c.Prefix(other) || other.Prefix(c)
}

// CommonPrefix returns the maximal common prefix of c and other (never
// nil for two well-formed chains: both start at b0).
func (c Chain) CommonPrefix(other Chain) Chain {
	n := len(c)
	if len(other) < n {
		n = len(other)
	}
	i := 0
	for i < n && c[i].ID == other[i].ID {
		i++
	}
	return c[:i:i]
}

// Block returns the block at height h, or nil if the chain is shorter.
func (c Chain) Block(h int) *Block {
	if h < 0 || h >= len(c) {
		return nil
	}
	return c[h]
}

// WellFormed reports whether the chain starts at genesis and every block
// links to its predecessor with consecutive heights.
func (c Chain) WellFormed() bool {
	if len(c) == 0 {
		return false
	}
	if !c[0].IsGenesis() {
		return false
	}
	for i := 1; i < len(c); i++ {
		if c[i].Parent != c[i-1].ID || c[i].Height != c[i-1].Height+1 {
			return false
		}
	}
	return true
}

// Equal reports whether the two chains contain the same blocks in the
// same order.
func (c Chain) Equal(other Chain) bool {
	if len(c) != len(other) {
		return false
	}
	for i := range c {
		if c[i].ID != other[i].ID {
			return false
		}
	}
	return true
}

// IDs returns the chain's block IDs, root-first. Useful for tests.
func (c Chain) IDs() []BlockID {
	out := make([]BlockID, len(c))
	for i, b := range c {
		out[i] = b.ID
	}
	return out
}

// String renders the chain in the paper's concatenation notation,
// e.g. "b0⌢3f2a9c1d⌢77ab01cd".
func (c Chain) String() string {
	if len(c) == 0 {
		return "ε"
	}
	var sb strings.Builder
	for i, b := range c {
		if i > 0 {
			sb.WriteString("⌢")
		}
		if b.IsGenesis() {
			sb.WriteString("b0")
		} else {
			sb.WriteString(b.ID.Short())
		}
	}
	return sb.String()
}
