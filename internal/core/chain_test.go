package core

import (
	"testing"
	"testing/quick"
)

// mkChain builds a well-formed chain of n blocks after genesis, with
// block rounds derived from the seed so different seeds give different
// chains.
func mkChain(n int, seed int) Chain {
	c := GenesisChain()
	for i := 1; i <= n; i++ {
		head := c.Head()
		c = c.Append(NewBlock(head.ID, head.Height+1, 0, seed*1000+i, []byte{byte(i)}))
	}
	return c
}

// fork builds a chain sharing the first common blocks of base and then
// diverging for extra blocks.
func forkOf(base Chain, common, extra int, seed int) Chain {
	c := base[:common+1].Clone() // +1 for genesis
	for i := 0; i < extra; i++ {
		head := c.Head()
		c = c.Append(NewBlock(head.ID, head.Height+1, 9, seed*7777+i, []byte{0xAA, byte(i)}))
	}
	return c
}

func TestGenesisChain(t *testing.T) {
	gc := GenesisChain()
	if gc.Len() != 1 || !gc.Head().IsGenesis() || gc.Height() != 0 {
		t.Fatalf("bad genesis chain: %v", gc)
	}
	if !gc.WellFormed() {
		t.Fatal("genesis chain not well formed")
	}
}

func TestChainAppendDoesNotAlias(t *testing.T) {
	a := mkChain(3, 1)
	b := a.Append(NewBlock(a.Head().ID, 4, 0, 99, nil))
	if a.Len() != 4 || b.Len() != 5 {
		t.Fatalf("lengths %d/%d", a.Len(), b.Len())
	}
	// Appending to a again must not clobber b's extra element.
	c := a.Append(NewBlock(a.Head().ID, 4, 0, 100, nil))
	if b[4].ID == c[4].ID {
		t.Fatal("appends aliased the same backing array")
	}
}

func TestPrefixBasics(t *testing.T) {
	c := mkChain(5, 2)
	for i := 0; i <= 5; i++ {
		if !c[:i+1].Prefix(c) {
			t.Errorf("prefix of length %d not recognized", i)
		}
	}
	if c.Prefix(c[:3]) {
		t.Error("longer chain prefixes shorter")
	}
	other := forkOf(c, 2, 3, 3)
	if c.Prefix(other) || other.Prefix(c) {
		t.Error("diverged chains reported as prefixes")
	}
	if !c.Comparable(c[:4]) || c.Comparable(other) {
		t.Error("Comparable wrong")
	}
}

func TestCommonPrefix(t *testing.T) {
	c := mkChain(6, 4)
	f := forkOf(c, 3, 2, 5)
	cp := c.CommonPrefix(f)
	if cp.Height() != 3 {
		t.Fatalf("common prefix height %d, want 3", cp.Height())
	}
	if !cp.Prefix(c) || !cp.Prefix(f) {
		t.Fatal("common prefix does not prefix both")
	}
	// Identical chains: common prefix is the whole chain.
	if got := c.CommonPrefix(c.Clone()); got.Len() != c.Len() {
		t.Fatalf("self common prefix length %d", got.Len())
	}
}

func TestChainBlockAccess(t *testing.T) {
	c := mkChain(4, 6)
	if c.Block(0) == nil || !c.Block(0).IsGenesis() {
		t.Fatal("Block(0) not genesis")
	}
	if c.Block(4) != c.Head() {
		t.Fatal("Block(4) not head")
	}
	if c.Block(5) != nil || c.Block(-1) != nil {
		t.Fatal("out-of-range access not nil")
	}
}

func TestWellFormedRejects(t *testing.T) {
	c := mkChain(3, 7)
	// Broken link.
	bad := c.Clone()
	bad[2] = NewBlock("wrong-parent", 2, 0, 1, nil)
	if bad.WellFormed() {
		t.Error("broken link accepted")
	}
	// Wrong height.
	bad2 := c.Clone()
	blk := *bad2[2]
	blk.Height = 7
	bad2[2] = &blk
	if bad2.WellFormed() {
		t.Error("wrong height accepted")
	}
	// Missing genesis.
	if c[1:].WellFormed() {
		t.Error("chain without genesis accepted")
	}
	// Empty chain.
	if (Chain{}).WellFormed() {
		t.Error("empty chain accepted")
	}
}

func TestEqualAndIDs(t *testing.T) {
	c := mkChain(3, 8)
	if !c.Equal(c.Clone()) {
		t.Fatal("clone not equal")
	}
	if c.Equal(c[:3]) {
		t.Fatal("different lengths equal")
	}
	ids := c.IDs()
	if len(ids) != 4 || ids[0] != GenesisID {
		t.Fatalf("IDs wrong: %v", ids)
	}
}

func TestChainString(t *testing.T) {
	if (Chain{}).String() != "ε" {
		t.Errorf("empty chain string %q", (Chain{}).String())
	}
	s := mkChain(2, 9).String()
	if s == "" || s[0:2] != "b0" {
		t.Errorf("chain string %q", s)
	}
}

func TestScoreMonotonicity(t *testing.T) {
	for _, sc := range []Score{LengthScore{}, WeightScore{}} {
		c := GenesisChain()
		prev := sc.Of(c)
		for i := 1; i <= 10; i++ {
			head := c.Head()
			b := NewBlock(head.ID, head.Height+1, 0, i, nil).WithWeight(i%3 + 1)
			c = c.Append(b)
			cur := sc.Of(c)
			if cur <= prev {
				t.Fatalf("%s not strictly monotonic: %d then %d", sc.Name(), prev, cur)
			}
			prev = cur
		}
	}
}

func TestWeightScore(t *testing.T) {
	c := GenesisChain()
	head := c.Head()
	b1 := NewBlock(head.ID, 1, 0, 1, nil).WithWeight(3)
	c = c.Append(b1)
	b2 := NewBlock(b1.ID, 2, 0, 2, nil).WithWeight(4)
	c = c.Append(b2)
	if got := (WeightScore{}).Of(c); got != 7 {
		t.Fatalf("weight score %d, want 7", got)
	}
	if got := (LengthScore{}).Of(c); got != 2 {
		t.Fatalf("length score %d, want 2", got)
	}
}

func TestMCPS(t *testing.T) {
	c := mkChain(6, 10)
	f := forkOf(c, 2, 4, 11)
	if got := MCPS(LengthScore{}, c, f); got != 2 {
		t.Fatalf("mcps = %d, want 2", got)
	}
	if got := MCPS(LengthScore{}, c, c); got != 6 {
		t.Fatalf("self mcps = %d, want 6", got)
	}
	if got := MCPS(LengthScore{}, c, GenesisChain()); got != 0 {
		t.Fatalf("genesis mcps = %d, want 0", got)
	}
}

// Property: the prefix relation is a partial order on generated chains
// (reflexive, antisymmetric on distinct chains, transitive via prefixes
// of a common chain).
func TestQuickPrefixPartialOrder(t *testing.T) {
	f := func(nRaw, iRaw, jRaw uint8, seed uint8) bool {
		n := int(nRaw%10) + 2
		c := mkChain(n, int(seed))
		i := int(iRaw) % (n + 1)
		j := int(jRaw) % (n + 1)
		pi, pj := c[:i+1], c[:j+1]
		// Reflexivity.
		if !pi.Prefix(pi) {
			return false
		}
		// Prefixes of a chain are totally ordered.
		if !pi.Prefix(pj) && !pj.Prefix(pi) {
			return false
		}
		// Antisymmetry.
		if pi.Prefix(pj) && pj.Prefix(pi) && !pi.Equal(pj) {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: mcps is symmetric and bounded by both scores.
func TestQuickMCPSBounds(t *testing.T) {
	sc := LengthScore{}
	f := func(nRaw, commonRaw, extraRaw uint8, seed uint8) bool {
		n := int(nRaw%8) + 2
		common := int(commonRaw) % n
		extra := int(extraRaw%5) + 1
		a := mkChain(n, int(seed))
		b := forkOf(a, common, extra, int(seed)+1)
		m1, m2 := MCPS(sc, a, b), MCPS(sc, b, a)
		if m1 != m2 {
			return false
		}
		return m1 <= sc.Of(a) && m1 <= sc.Of(b) && m1 == common
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: CommonPrefix returns the longest chain that prefixes both.
func TestQuickCommonPrefixMaximal(t *testing.T) {
	f := func(nRaw, commonRaw uint8, seed uint8) bool {
		n := int(nRaw%8) + 2
		common := int(commonRaw) % n
		a := mkChain(n, int(seed))
		b := forkOf(a, common, 2, int(seed)+3)
		cp := a.CommonPrefix(b)
		if !cp.Prefix(a) || !cp.Prefix(b) {
			return false
		}
		// One block longer is no longer a common prefix.
		if cp.Len() < a.Len() && cp.Len() < b.Len() {
			longer := a[:cp.Len()+1]
			if longer.Prefix(b) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property of the merit-tape + score interplay used throughout: a chain
// extended by any block strictly increases both built-in scores (the
// paper's monotonicity requirement on score functions).
func TestQuickScoreStrictGrowth(t *testing.T) {
	f := func(nRaw uint8, w uint8, seed uint8) bool {
		n := int(nRaw % 10)
		c := mkChain(n, int(seed))
		head := c.Head()
		b := NewBlock(head.ID, head.Height+1, 1, 999, nil).WithWeight(int(w%9) + 1)
		c2 := c.Append(b)
		return LengthScore{}.Of(c2) > LengthScore{}.Of(c) &&
			WeightScore{}.Of(c2) > WeightScore{}.Of(c)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
