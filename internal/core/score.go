package core

// Score is the paper's score : BC → N, a deterministic monotonically
// increasing function over blockchains: score(bc⌢{b}) > score(bc) for
// every block b. The two canonical instances are chain length (Bitcoin's
// "longest chain") and cumulative weight (Ethereum's "most work").
type Score interface {
	// Of returns the score of the chain. The genesis chain's score is
	// s0 (0 for both built-in scores).
	Of(Chain) int
	// Name identifies the score for reports ("length", "weight").
	Name() string
}

// LengthScore scores a chain by its height: score({b0}) = 0 and each
// appended block adds exactly 1.
type LengthScore struct{}

// Of returns the chain height (number of non-genesis blocks).
func (LengthScore) Of(c Chain) int {
	if len(c) == 0 {
		return -1
	}
	return len(c) - 1
}

// Name returns "length".
func (LengthScore) Name() string { return "length" }

// WeightScore scores a chain by the sum of its non-genesis block weights.
// Since every block weight is >= 1, the score is strictly monotonic as
// Definition 3.2 requires.
type WeightScore struct{}

// Of returns the cumulative weight of the chain's non-genesis blocks.
func (WeightScore) Of(c Chain) int {
	s := 0
	for _, b := range c {
		if !b.IsGenesis() {
			s += b.Weight
		}
	}
	return s
}

// Name returns "weight".
func (WeightScore) Name() string { return "weight" }

// MCPS is the paper's mcps : BC × BC → N — the score, under sc, of the
// maximal common prefix of bc and bc′. It is the quantity bounded by the
// Eventual Prefix property (Definition 3.3).
func MCPS(sc Score, a, b Chain) int {
	return sc.Of(a.CommonPrefix(b))
}
