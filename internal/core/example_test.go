package core_test

import (
	"fmt"

	"repro/internal/core"
)

// ExampleChain_Prefix shows the prefix relation ⊑ that the Strong Prefix
// property quantifies over.
func ExampleChain_Prefix() {
	g := core.Genesis()
	b1 := core.NewBlock(g.ID, 1, 0, 1, []byte("b1"))
	b2 := core.NewBlock(b1.ID, 2, 0, 2, []byte("b2"))
	short := core.GenesisChain().Append(b1)
	long := short.Append(b2)

	fmt.Println(short.Prefix(long))
	fmt.Println(long.Prefix(short))
	fmt.Println(short.Comparable(long))
	// Output:
	// true
	// false
	// true
}

// ExampleMCPS shows the maximal-common-prefix score used by the Eventual
// Prefix property (Definition 3.3).
func ExampleMCPS() {
	g := core.Genesis()
	shared := core.NewBlock(g.ID, 1, 0, 1, []byte("shared"))
	left := core.NewBlock(shared.ID, 2, 1, 2, []byte("left"))
	right := core.NewBlock(shared.ID, 2, 2, 3, []byte("right"))

	a := core.GenesisChain().Append(shared).Append(left)
	b := core.GenesisChain().Append(shared).Append(right)

	fmt.Println(core.MCPS(core.LengthScore{}, a, b))
	fmt.Println(core.MCPS(core.LengthScore{}, a, a))
	// Output:
	// 1
	// 2
}

// ExampleGHOST shows the heaviest-observed-subtree selector diverging
// from the longest chain: three sibling blocks outweigh a longer path.
func ExampleGHOST() {
	tr := core.NewTree()
	g := core.Genesis()
	heavy := core.NewBlock(g.ID, 1, 0, 1, []byte("hub"))
	tr.Attach(heavy) //nolint:errcheck
	for i := 0; i < 3; i++ {
		tr.Attach(core.NewBlock(heavy.ID, 2, i, 10+i, []byte{byte(i)})) //nolint:errcheck
	}
	lone := core.NewBlock(g.ID, 1, 4, 20, []byte("lone"))
	tr.Attach(lone) //nolint:errcheck
	l2 := core.NewBlock(lone.ID, 2, 4, 21, []byte("l2"))
	tr.Attach(l2) //nolint:errcheck
	l3 := core.NewBlock(l2.ID, 3, 4, 22, []byte("l3"))
	tr.Attach(l3) //nolint:errcheck

	fmt.Println("longest goes through hub:", core.LongestChain{}.Select(tr).Block(1).ID == heavy.ID)
	fmt.Println("ghost goes through hub:", core.GHOST{}.Select(tr).Block(1).ID == heavy.ID)
	// Output:
	// longest goes through hub: false
	// ghost goes through hub: true
}

// ExampleReplay shows the toy ledger rejecting a double spend — the
// paper's example instantiation of the validity predicate P.
func ExampleReplay() {
	g := core.Genesis()
	mint := core.NewBlock(g.ID, 1, 0, 1, core.EncodeTxs([]core.Tx{{From: 0, To: 1, Amount: 10}}))
	spend := core.NewBlock(mint.ID, 2, 0, 2, core.EncodeTxs([]core.Tx{{From: 1, To: 2, Amount: 10}}))
	doubleSpend := core.NewBlock(spend.ID, 3, 0, 3, core.EncodeTxs([]core.Tx{{From: 1, To: 3, Amount: 10}}))

	if _, err := core.Replay(core.Chain{g, mint, spend}); err == nil {
		fmt.Println("honest chain: valid")
	}
	if _, err := core.Replay(core.Chain{g, mint, spend, doubleSpend}); err != nil {
		fmt.Println("double spend: rejected")
	}
	// Output:
	// honest chain: valid
	// double spend: rejected
}
