package core

import (
	"testing"
	"testing/quick"
)

// child makes a block under parent with a distinguishing round.
func child(parent *Block, creator, round int) *Block {
	return NewBlock(parent.ID, parent.Height+1, creator, round, []byte{byte(round)})
}

// buildTree attaches a set of blocks and fails the test on error.
func buildTree(t *testing.T, blocks ...*Block) *Tree {
	t.Helper()
	tr := NewTree()
	for _, b := range blocks {
		if err := tr.Attach(b); err != nil {
			t.Fatalf("attach %s: %v", b.ID.Short(), err)
		}
	}
	return tr
}

func TestNewTreeHasGenesis(t *testing.T) {
	tr := NewTree()
	if tr.Len() != 1 || !tr.Has(GenesisID) || tr.Root().ID != GenesisID {
		t.Fatalf("fresh tree wrong: %v", tr)
	}
	if tr.Height() != 0 || tr.MaxForkDegree() != 0 {
		t.Fatalf("fresh tree metrics wrong: %v", tr)
	}
}

func TestAttachChain(t *testing.T) {
	g := Genesis()
	b1 := child(g, 0, 1)
	b2 := child(b1, 0, 2)
	tr := buildTree(t, b1, b2)
	if tr.Len() != 3 || tr.Height() != 2 {
		t.Fatalf("tree %v", tr)
	}
	c := tr.ChainTo(b2.ID)
	if c.Height() != 2 || !c.WellFormed() {
		t.Fatalf("chain %v", c)
	}
}

func TestAttachErrors(t *testing.T) {
	tr := NewTree()
	if err := tr.Attach(nil); err == nil {
		t.Error("nil attach accepted")
	}
	orphan := NewBlock("nonexistent", 1, 0, 1, nil)
	if err := tr.Attach(orphan); err == nil {
		t.Error("orphan attach accepted")
	}
	wrongHeight := NewBlock(GenesisID, 5, 0, 1, nil)
	if err := tr.Attach(wrongHeight); err == nil {
		t.Error("wrong-height attach accepted")
	}
}

func TestAttachIdempotentAndConflict(t *testing.T) {
	g := Genesis()
	b1 := child(g, 0, 1)
	tr := buildTree(t, b1)
	if err := tr.Attach(b1); err != nil {
		t.Fatalf("duplicate attach rejected: %v", err)
	}
	if tr.Len() != 2 {
		t.Fatalf("duplicate attach changed size: %d", tr.Len())
	}
	// Same ID, different parent: conflict.
	evil := *b1
	evil.Parent = "elsewhere"
	if err := tr.Attach(&evil); err == nil {
		t.Error("conflicting attach accepted")
	}
	// Same ID, different weight (WithWeight keeps the ID): conflict —
	// accepting it as a duplicate would desynchronize the weight caches.
	if err := tr.Attach(b1.WithWeight(7)); err == nil {
		t.Error("re-weighted twin accepted as duplicate")
	}
	if got := tr.SubtreeWeight(GenesisID); got != 2 {
		t.Errorf("rejected twin perturbed weight cache: %d, want 2", got)
	}
	// Same ID, different payload: conflict.
	evil2 := *b1
	evil2.Payload = []byte("tampered")
	if err := tr.Attach(&evil2); err == nil {
		t.Error("payload-tampered twin accepted as duplicate")
	}
}

func TestChainWeightIndex(t *testing.T) {
	g := Genesis()
	a := child(g, 0, 1) // weight 1
	b := child(a, 0, 2).WithWeight(3)
	c := child(g, 1, 3).WithWeight(2)
	tr := buildTree(t, a, b, c)
	for id, want := range map[BlockID]int{
		GenesisID: 0, // genesis excluded, matching WeightScore
		a.ID:      1,
		b.ID:      4,
		c.ID:      2,
	} {
		if got := tr.ChainWeight(id); got != want {
			t.Errorf("ChainWeight(%s) = %d, want %d", id.Short(), got, want)
		}
		if got, want := tr.ChainWeight(id), (WeightScore{}).Of(tr.ChainTo(id)); got != want {
			t.Errorf("ChainWeight(%s) = %d, WeightScore gives %d", id.Short(), got, want)
		}
	}
	if tr.ChainWeight("missing") != 0 {
		t.Error("ChainWeight of missing block not 0")
	}
}

func TestLeafAndHeightIndices(t *testing.T) {
	tr := NewTree()
	if got := tr.Leaves(); len(got) != 1 || got[0] != GenesisID {
		t.Fatalf("fresh tree leaves %v", got)
	}
	g := Genesis()
	a := child(g, 0, 1)
	b := child(a, 0, 2)
	c := child(g, 1, 3)
	for i, blk := range []*Block{a, b, c} {
		if err := tr.Attach(blk); err != nil {
			t.Fatal(err)
		}
		if got, want := tr.Leaves(), scanLeaves(tr); len(got) != len(want) {
			t.Fatalf("after attach %d: leaf index %v, scan %v", i, got, want)
		}
		if got, want := tr.Height(), scanHeight(tr); got != want {
			t.Fatalf("after attach %d: cached height %d, scan %d", i, got, want)
		}
	}
	if tr.LeafCount() != 2 { // b and c
		t.Fatalf("LeafCount = %d, want 2", tr.LeafCount())
	}
	// Clone carries the indices independently.
	cl := tr.Clone()
	d := child(b, 0, 4)
	if err := tr.Attach(d); err != nil {
		t.Fatal(err)
	}
	if cl.Height() != 2 || cl.LeafCount() != 2 {
		t.Fatal("clone indices affected by original's attach")
	}
	if tr.Height() != 3 || tr.LeafCount() != 2 {
		t.Fatalf("indices after growth: height %d leaves %d", tr.Height(), tr.LeafCount())
	}
}

func TestAttachGenesisNoop(t *testing.T) {
	tr := NewTree()
	if err := tr.Attach(Genesis()); err != nil {
		t.Fatalf("genesis attach errored: %v", err)
	}
	if tr.Len() != 1 {
		t.Fatal("genesis attach changed size")
	}
}

func TestForkCounting(t *testing.T) {
	g := Genesis()
	a := child(g, 0, 1)
	b := child(g, 1, 2)
	c := child(g, 2, 3)
	tr := buildTree(t, a, b, c)
	if tr.ForkCount(GenesisID) != 3 || tr.MaxForkDegree() != 3 {
		t.Fatalf("fork counts wrong: %d / %d", tr.ForkCount(GenesisID), tr.MaxForkDegree())
	}
	if got := len(tr.Leaves()); got != 3 {
		t.Fatalf("leaves %d, want 3", got)
	}
}

func TestChildrenSortedDeterministically(t *testing.T) {
	g := Genesis()
	blocks := []*Block{child(g, 0, 1), child(g, 1, 2), child(g, 2, 3)}
	t1 := buildTree(t, blocks[0], blocks[1], blocks[2])
	t2 := buildTree(t, blocks[2], blocks[0], blocks[1])
	c1, c2 := t1.Children(GenesisID), t2.Children(GenesisID)
	for i := range c1 {
		if c1[i] != c2[i] {
			t.Fatal("children order depends on arrival order")
		}
	}
}

func TestSubtreeWeight(t *testing.T) {
	g := Genesis()
	a := child(g, 0, 1) // weight 1
	b := child(a, 0, 2).WithWeight(3)
	c := child(g, 1, 3).WithWeight(2)
	tr := buildTree(t, a, b, c)
	if got := tr.SubtreeWeight(a.ID); got != 4 {
		t.Errorf("subtree(a) = %d, want 4", got)
	}
	if got := tr.SubtreeWeight(c.ID); got != 2 {
		t.Errorf("subtree(c) = %d, want 2", got)
	}
	if got := tr.SubtreeWeight(GenesisID); got != 7 { // 1(g)+1(a)+3(b)+2(c)
		t.Errorf("subtree(g) = %d, want 7", got)
	}
}

func TestChainToMissing(t *testing.T) {
	tr := NewTree()
	if tr.ChainTo("missing") != nil {
		t.Fatal("ChainTo of missing block not nil")
	}
}

func TestBlocksOrdered(t *testing.T) {
	g := Genesis()
	a := child(g, 0, 1)
	b := child(a, 0, 2)
	c := child(g, 1, 3)
	tr := buildTree(t, a, b, c)
	bs := tr.Blocks()
	if len(bs) != 4 || !bs[0].IsGenesis() {
		t.Fatalf("Blocks() wrong: %v", bs)
	}
	for i := 1; i < len(bs); i++ {
		if bs[i].Height < bs[i-1].Height {
			t.Fatal("Blocks() not height ordered")
		}
	}
}

func TestCloneIsDeep(t *testing.T) {
	g := Genesis()
	a := child(g, 0, 1)
	tr := buildTree(t, a)
	cl := tr.Clone()
	b := child(a, 0, 2)
	if err := tr.Attach(b); err != nil {
		t.Fatal(err)
	}
	if cl.Has(b.ID) {
		t.Fatal("clone sees later attach")
	}
	if cl.SubtreeWeight(GenesisID) == tr.SubtreeWeight(GenesisID) {
		t.Fatal("clone weight cache shared")
	}
}

func TestSelectorsOnChain(t *testing.T) {
	g := Genesis()
	a := child(g, 0, 1)
	b := child(a, 0, 2)
	tr := buildTree(t, a, b)
	for _, f := range []Selector{LongestChain{}, HeaviestChain{}, GHOST{}, SingleChain{}} {
		got := f.Select(tr)
		if got.Height() != 2 || got.Head().ID != b.ID {
			t.Errorf("%s on a chain selected %v", f.Name(), got)
		}
	}
}

func TestLongestChainTieBreak(t *testing.T) {
	g := Genesis()
	a := child(g, 0, 1)
	b := child(g, 1, 2)
	tr := buildTree(t, a, b)
	got := LongestChain{}.Select(tr)
	want := a.ID
	if b.ID > a.ID {
		want = b.ID
	}
	if got.Head().ID != want {
		t.Fatalf("tie break selected %s, want lexicographically largest %s",
			got.Head().ID.Short(), want.Short())
	}
	// Determinism.
	if got2 := (LongestChain{}).Select(tr); !got.Equal(got2) {
		t.Fatal("selector not deterministic")
	}
}

func TestHeaviestVsLongest(t *testing.T) {
	g := Genesis()
	// Short heavy branch vs long light branch.
	heavy := child(g, 0, 1).WithWeight(10)
	l1 := child(g, 1, 2)
	l2 := child(l1, 1, 3)
	l3 := child(l2, 1, 4)
	tr := buildTree(t, heavy, l1, l2, l3)
	if got := (LongestChain{}).Select(tr); got.Head().ID != l3.ID {
		t.Fatalf("longest selected %v", got)
	}
	if got := (HeaviestChain{}).Select(tr); got.Head().ID != heavy.ID {
		t.Fatalf("heaviest selected %v", got)
	}
}

// TestGHOSTDiffersFromLongest reproduces the classical GHOST example: a
// heavily-forked subtree outweighs a longer single chain.
func TestGHOSTDiffersFromLongest(t *testing.T) {
	g := Genesis()
	// Subtree under a: 1 block + 3 forked children (total weight 4).
	a := child(g, 0, 1)
	a1 := child(a, 1, 2)
	a2 := child(a, 2, 3)
	a3 := child(a, 3, 4)
	// Chain under b: length 3 (weight 3) — longer path, lighter tree.
	b := child(g, 4, 5)
	b1 := child(b, 4, 6)
	b2 := child(b1, 4, 7)
	tr := buildTree(t, a, a1, a2, a3, b, b1, b2)

	long := LongestChain{}.Select(tr)
	if long.Head().ID != b2.ID {
		t.Fatalf("longest selected %v, want the b-chain", long)
	}
	gh := GHOST{}.Select(tr)
	if gh.Block(1).ID != a.ID {
		t.Fatalf("GHOST first step selected %s, want the heavy subtree root %s",
			gh.Block(1).ID.Short(), a.ID.Short())
	}
	if gh.Height() != 2 {
		t.Fatalf("GHOST chain height %d, want 2", gh.Height())
	}
}

func TestSingleChainFallsBackOnFork(t *testing.T) {
	g := Genesis()
	a := child(g, 0, 1)
	b := child(g, 1, 2)
	tr := buildTree(t, a, b)
	got := SingleChain{}.Select(tr)
	want := LongestChain{}.Select(tr)
	if !got.Equal(want) {
		t.Fatal("SingleChain fallback differs from LongestChain")
	}
}

// Property: any sequence of valid attaches keeps every selector's chain
// well-formed and rooted at genesis, and subtree weights consistent.
func TestQuickTreeInvariants(t *testing.T) {
	f := func(ops []uint8) bool {
		tr := NewTree()
		parents := []*Block{Genesis()}
		for i, op := range ops {
			p := parents[int(op)%len(parents)]
			b := child(p, int(op)%3, i)
			if err := tr.Attach(b); err != nil {
				return false
			}
			parents = append(parents, b)
		}
		for _, f := range []Selector{LongestChain{}, HeaviestChain{}, GHOST{}} {
			c := f.Select(tr)
			if !c.WellFormed() {
				return false
			}
		}
		// Root subtree weight equals total block count (unit weights).
		return tr.SubtreeWeight(GenesisID) == tr.Len()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: GHOST and HeaviestChain agree on fork-free trees.
func TestQuickSelectorsAgreeOnChains(t *testing.T) {
	f := func(nRaw uint8, seed uint8) bool {
		n := int(nRaw % 12)
		tr := NewTree()
		p := Genesis()
		for i := 0; i < n; i++ {
			b := child(p, int(seed), i)
			if tr.Attach(b) != nil {
				return false
			}
			p = b
		}
		a := GHOST{}.Select(tr)
		b := HeaviestChain{}.Select(tr)
		c := LongestChain{}.Select(tr)
		return a.Equal(b) && b.Equal(c)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
