package core

import (
	"encoding/binary"
	"fmt"
)

// Predicate is the paper's application-dependent validity predicate P:
// B → {true, false}. A block b belongs to B′ (the valid blocks) iff
// P(b) = ⊤. The BT-ADT only ever appends blocks satisfying P, and the
// Block Validity consistency property checks every read against it.
type Predicate interface {
	Valid(*Block) bool
	Name() string
}

// PredicateFunc adapts a plain function to the Predicate interface.
func PredicateFunc(name string, fn func(*Block) bool) Predicate {
	return funcPredicate{name: name, fn: fn}
}

type funcPredicate struct {
	name string
	fn   func(*Block) bool
}

// Valid applies the wrapped function.
func (p funcPredicate) Valid(b *Block) bool { return p.fn(b) }

// Name returns the name given at construction.
func (p funcPredicate) Name() string { return p.name }

// AlwaysValid accepts every block — the weakest useful P, letting
// experiments exercise the pure data-structure behaviour.
type AlwaysValid struct{}

// Valid returns true for every block.
func (AlwaysValid) Valid(*Block) bool { return true }

// Name returns "always".
func (AlwaysValid) Name() string { return "always" }

// WellFormed accepts blocks whose ID matches the content hash of their
// fields — the structural half of real-chain validity (a block commits to
// its parent and payload). Genesis is valid by assumption.
type WellFormed struct{}

// Valid recomputes the content hash and compares (allocation-free: the
// digest and hex encoding stay on the stack).
func (WellFormed) Valid(b *Block) bool {
	if b == nil {
		return false
	}
	if b.IsGenesis() {
		return true
	}
	return hashMatches(b.ID, b.Parent, b.Creator, b.Round, b.Payload)
}

// Name returns "wellformed".
func (WellFormed) Name() string { return "wellformed" }

// Tx is one transfer in the toy ledger payload: From pays To the Amount.
// Account 0 is the mint: transfers from it create money (coinbase).
type Tx struct {
	From, To uint32
	Amount   uint32
}

// EncodeTxs serializes transactions into a block payload (little-endian
// From, To, Amount per record — the same wire format binary.Write
// produced, without its per-call reflection allocations).
func EncodeTxs(txs []Tx) []byte {
	out := make([]byte, 0, len(txs)*12)
	var rec [12]byte
	for _, tx := range txs {
		binary.LittleEndian.PutUint32(rec[0:4], tx.From)
		binary.LittleEndian.PutUint32(rec[4:8], tx.To)
		binary.LittleEndian.PutUint32(rec[8:12], tx.Amount)
		out = append(out, rec[:]...)
	}
	return out
}

// DecodeTxs parses a block payload back into transactions. A malformed
// payload (length not a multiple of the record size) yields an error,
// which the ledger predicate turns into "invalid block".
func DecodeTxs(payload []byte) ([]Tx, error) {
	const rec = 12 // 3 × uint32
	if len(payload)%rec != 0 {
		return nil, fmt.Errorf("core: payload length %d not a multiple of %d", len(payload), rec)
	}
	out := make([]Tx, len(payload)/rec)
	for i := range out {
		off := i * rec
		out[i] = Tx{
			From:   binary.LittleEndian.Uint32(payload[off : off+4]),
			To:     binary.LittleEndian.Uint32(payload[off+4 : off+8]),
			Amount: binary.LittleEndian.Uint32(payload[off+8 : off+12]),
		}
	}
	return out, nil
}

// LedgerPredicate is the "no double spend" example the paper gives for
// Bitcoin's P: a block is valid iff it is well-formed and its payload
// parses into transactions. (Whether the transactions are *spendable*
// depends on the chain the block extends, which is context the paper's
// P does not see; the chain-contextual check lives in LedgerState and is
// exercised by the protocol simulators when they build blocks.)
type LedgerPredicate struct{}

// Valid checks structural hash validity plus payload parseability.
func (LedgerPredicate) Valid(b *Block) bool {
	if !(WellFormed{}).Valid(b) {
		return false
	}
	if b.IsGenesis() {
		return true
	}
	_, err := DecodeTxs(b.Payload)
	return err == nil
}

// Name returns "ledger".
func (LedgerPredicate) Name() string { return "ledger" }

// RejectAll accepts nothing (except genesis, which is valid by
// assumption). Used by tests to check that append() of invalid blocks
// leaves the abstract state unchanged and returns false, as in Figure 1.
type RejectAll struct{}

// Valid returns true only for genesis.
func (RejectAll) Valid(b *Block) bool { return b != nil && b.IsGenesis() }

// Name returns "rejectall".
func (RejectAll) Name() string { return "rejectall" }

// LedgerState replays a chain's transactions to compute account balances,
// rejecting double spends. It provides the chain-contextual validity the
// protocol simulators use when *creating* blocks (the oracle only ever
// validates blocks that pass it).
type LedgerState struct {
	balances map[uint32]uint64
}

// NewLedgerState returns an empty ledger (all balances zero; account 0 is
// the mint and may always pay).
func NewLedgerState() *LedgerState {
	return &LedgerState{balances: make(map[uint32]uint64)}
}

// Balance returns the balance of an account.
func (l *LedgerState) Balance(acct uint32) uint64 { return l.balances[acct] }

// ApplyTx applies one transaction, failing on an overdraft.
func (l *LedgerState) ApplyTx(tx Tx) error {
	if tx.From != 0 {
		if l.balances[tx.From] < uint64(tx.Amount) {
			return fmt.Errorf("core: account %d overdraft: has %d, spends %d",
				tx.From, l.balances[tx.From], tx.Amount)
		}
		l.balances[tx.From] -= uint64(tx.Amount)
	}
	l.balances[tx.To] += uint64(tx.Amount)
	return nil
}

// ApplyBlock applies every transaction of the block, failing on the first
// invalid one (the block is then a double spend w.r.t. this state).
func (l *LedgerState) ApplyBlock(b *Block) error {
	if b.IsGenesis() {
		return nil
	}
	txs, err := DecodeTxs(b.Payload)
	if err != nil {
		return err
	}
	for _, tx := range txs {
		if err := l.ApplyTx(tx); err != nil {
			return err
		}
	}
	return nil
}

// Replay computes the ledger state at the head of the chain, or an error
// if any block double-spends.
func Replay(c Chain) (*LedgerState, error) {
	l := NewLedgerState()
	for _, b := range c {
		if err := l.ApplyBlock(b); err != nil {
			return nil, fmt.Errorf("core: replay %s: %w", b.ID.Short(), err)
		}
	}
	return l, nil
}
