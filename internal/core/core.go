// Package core implements the BlockTree data structure of Section 3.1 of
// "Blockchain Abstract Data Type" (Anceaume et al., SPAA 2019): a directed
// rooted tree bt = (V_bt, E_bt) whose vertices are blocks, whose edges
// point backward to the genesis block b0, together with the selection
// functions f ∈ F (longest chain, heaviest chain, GHOST), the monotonic
// score functions over blockchains, the validity predicate P, and the
// prefix relation ⊑ used by the consistency criteria.
//
// The package is purely sequential; concurrency appears only in the
// layers above (internal/replica, internal/concur, internal/simnet).
package core
