package core

import "sort"

// This file preserves the original full-rescan selector implementations
// exactly as they were before the incremental indices landed. They are
// unexported and exist only as differential-test oracles
// (select_diff_test.go): randomized trees assert that the indexed
// selectors in select.go return byte-identical chains. Do not "optimize"
// these — their value is being the slow, obviously-correct spec.

// scanLeaves recomputes the leaf set by scanning every block, the way
// Tree.Leaves worked before the maintained leaf set.
func scanLeaves(t *Tree) []BlockID {
	var out []BlockID
	for id := range t.blocks {
		if len(t.children[id]) == 0 {
			out = append(out, id)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// scanHeight recomputes the maximum height by scanning every block, the
// way Tree.Height worked before the cached maxHeight.
func scanHeight(t *Tree) int {
	h := 0
	for _, b := range t.blocks {
		if b.Height > h {
			h = b.Height
		}
	}
	return h
}

// legacySelectLongest is the original LongestChain.Select: rescan all
// leaves, compare heights.
func legacySelectLongest(t *Tree) Chain {
	var best BlockID
	bestH := -1
	for _, leaf := range scanLeaves(t) {
		b := t.Block(leaf)
		if b.Height > bestH || (b.Height == bestH && leaf > best) {
			best, bestH = leaf, b.Height
		}
	}
	if bestH < 0 {
		return GenesisChain()
	}
	return t.ChainTo(best)
}

// legacySelectHeaviest is the original HeaviestChain.Select: materialize
// the full root-to-leaf chain of every leaf and score it (O(n·h)).
func legacySelectHeaviest(t *Tree) Chain {
	var best BlockID
	bestW := -1
	sc := WeightScore{}
	for _, leaf := range scanLeaves(t) {
		w := sc.Of(t.ChainTo(leaf))
		if w > bestW || (w == bestW && leaf > best) {
			best, bestW = leaf, w
		}
	}
	if bestW < 0 {
		return GenesisChain()
	}
	return t.ChainTo(best)
}

// legacySelectSingle is the original SingleChain.Select (minus its
// unguarded leaves[0] panic on degenerate trees, fixed in the indexed
// version; with a genesis block present the two never diverge).
func legacySelectSingle(t *Tree) Chain {
	if t.MaxForkDegree() <= 1 {
		leaves := scanLeaves(t)
		if len(leaves) == 0 {
			return GenesisChain()
		}
		return t.ChainTo(leaves[0])
	}
	return legacySelectLongest(t)
}
