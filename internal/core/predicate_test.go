package core

import (
	"testing"
	"testing/quick"
)

func TestAlwaysAndRejectAll(t *testing.T) {
	b := NewBlock(GenesisID, 1, 0, 0, nil)
	if !(AlwaysValid{}).Valid(b) || !(AlwaysValid{}).Valid(nil) {
		t.Error("AlwaysValid rejected something")
	}
	if (RejectAll{}).Valid(b) {
		t.Error("RejectAll accepted a block")
	}
	if !(RejectAll{}).Valid(Genesis()) {
		t.Error("RejectAll rejected genesis (b0 ∈ B′ by assumption)")
	}
}

func TestWellFormed(t *testing.T) {
	b := NewBlock(GenesisID, 1, 3, 4, []byte("ok"))
	if !(WellFormed{}).Valid(b) {
		t.Fatal("well-formed block rejected")
	}
	tampered := *b
	tampered.Payload = []byte("evil")
	if (WellFormed{}).Valid(&tampered) {
		t.Fatal("tampered payload accepted")
	}
	reparented := *b
	reparented.Parent = "other"
	if (WellFormed{}).Valid(&reparented) {
		t.Fatal("reparented block accepted")
	}
	if (WellFormed{}).Valid(nil) {
		t.Fatal("nil accepted")
	}
	if !(WellFormed{}).Valid(Genesis()) {
		t.Fatal("genesis rejected")
	}
}

func TestPredicateFunc(t *testing.T) {
	p := PredicateFunc("even-rounds", func(b *Block) bool { return b.Round%2 == 0 })
	if p.Name() != "even-rounds" {
		t.Errorf("name %q", p.Name())
	}
	if !p.Valid(NewBlock(GenesisID, 1, 0, 2, nil)) || p.Valid(NewBlock(GenesisID, 1, 0, 3, nil)) {
		t.Error("wrapped predicate misbehaves")
	}
}

func TestTxRoundTrip(t *testing.T) {
	txs := []Tx{{From: 0, To: 1, Amount: 50}, {From: 1, To: 2, Amount: 20}}
	payload := EncodeTxs(txs)
	got, err := DecodeTxs(payload)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0] != txs[0] || got[1] != txs[1] {
		t.Fatalf("round trip mismatch: %v", got)
	}
}

func TestDecodeTxsMalformed(t *testing.T) {
	if _, err := DecodeTxs([]byte{1, 2, 3}); err == nil {
		t.Fatal("malformed payload decoded")
	}
	got, err := DecodeTxs(nil)
	if err != nil || len(got) != 0 {
		t.Fatalf("empty payload: %v %v", got, err)
	}
}

func TestLedgerPredicate(t *testing.T) {
	p := LedgerPredicate{}
	good := NewBlock(GenesisID, 1, 0, 1, EncodeTxs([]Tx{{From: 0, To: 1, Amount: 5}}))
	if !p.Valid(good) {
		t.Fatal("valid ledger block rejected")
	}
	bad := NewBlock(GenesisID, 1, 0, 1, []byte{1, 2, 3})
	if p.Valid(bad) {
		t.Fatal("unparseable payload accepted")
	}
	if !p.Valid(Genesis()) {
		t.Fatal("genesis rejected")
	}
}

func TestLedgerStateOverdraft(t *testing.T) {
	l := NewLedgerState()
	if err := l.ApplyTx(Tx{From: 0, To: 1, Amount: 10}); err != nil {
		t.Fatal(err)
	}
	if err := l.ApplyTx(Tx{From: 1, To: 2, Amount: 4}); err != nil {
		t.Fatal(err)
	}
	if l.Balance(1) != 6 || l.Balance(2) != 4 {
		t.Fatalf("balances %d/%d", l.Balance(1), l.Balance(2))
	}
	if err := l.ApplyTx(Tx{From: 1, To: 2, Amount: 100}); err == nil {
		t.Fatal("overdraft accepted")
	}
}

func TestReplayDetectsDoubleSpend(t *testing.T) {
	g := Genesis()
	mint := NewBlock(g.ID, 1, 0, 1, EncodeTxs([]Tx{{From: 0, To: 1, Amount: 10}}))
	spend := NewBlock(mint.ID, 2, 0, 2, EncodeTxs([]Tx{{From: 1, To: 2, Amount: 10}}))
	doubleSpend := NewBlock(spend.ID, 3, 0, 3, EncodeTxs([]Tx{{From: 1, To: 3, Amount: 10}}))

	ok := Chain{g, mint, spend}
	if _, err := Replay(ok); err != nil {
		t.Fatalf("valid chain rejected: %v", err)
	}
	bad := Chain{g, mint, spend, doubleSpend}
	if _, err := Replay(bad); err == nil {
		t.Fatal("double spend not detected")
	}
}

func TestReplayBalances(t *testing.T) {
	g := Genesis()
	b1 := NewBlock(g.ID, 1, 0, 1, EncodeTxs([]Tx{{From: 0, To: 1, Amount: 50}}))
	b2 := NewBlock(b1.ID, 2, 0, 2, EncodeTxs([]Tx{{From: 1, To: 2, Amount: 30}}))
	st, err := Replay(Chain{g, b1, b2})
	if err != nil {
		t.Fatal(err)
	}
	if st.Balance(1) != 20 || st.Balance(2) != 30 {
		t.Fatalf("balances %d/%d", st.Balance(1), st.Balance(2))
	}
}

// Property: encode/decode is the identity on arbitrary tx vectors.
func TestQuickTxRoundTrip(t *testing.T) {
	f := func(raw []uint32) bool {
		var txs []Tx
		for i := 0; i+2 < len(raw); i += 3 {
			txs = append(txs, Tx{From: raw[i], To: raw[i+1], Amount: raw[i+2]})
		}
		got, err := DecodeTxs(EncodeTxs(txs))
		if err != nil {
			return false
		}
		if len(got) != len(txs) {
			return false
		}
		for i := range txs {
			if got[i] != txs[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: a mint-then-spend-within-balance chain always replays.
func TestQuickReplayWithinBalance(t *testing.T) {
	f := func(mintRaw, spendRaw uint16) bool {
		mintAmt := uint32(mintRaw) + 1
		spendAmt := uint32(spendRaw) % (mintAmt + 1) // ≤ mint
		g := Genesis()
		b1 := NewBlock(g.ID, 1, 0, 1, EncodeTxs([]Tx{{From: 0, To: 1, Amount: mintAmt}}))
		b2 := NewBlock(b1.ID, 2, 0, 2, EncodeTxs([]Tx{{From: 1, To: 2, Amount: spendAmt}}))
		st, err := Replay(Chain{g, b1, b2})
		if err != nil {
			return false
		}
		return st.Balance(1) == uint64(mintAmt-spendAmt) && st.Balance(2) == uint64(spendAmt)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
