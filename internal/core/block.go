package core

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
)

// BlockID identifies a block by the hex encoding of a content hash. Using
// a content hash (rather than an arbitrary label) gives the simulators the
// same structural property real blockchains rely on: a block commits to
// its parent, so a chain is self-certifying.
type BlockID string

// GenesisID is the identifier of the genesis block b0. It is the only
// block whose parent is the empty ID.
const GenesisID BlockID = "b0"

// Short returns an 8-character prefix of the ID for compact rendering in
// history visualizations.
func (id BlockID) Short() string {
	if len(id) <= 8 {
		return string(id)
	}
	return string(id[:8])
}

// Block is one vertex of the BlockTree. Blocks are immutable once
// created; all mutation happens at the tree level.
type Block struct {
	// ID is the content hash of the block (or "b0" for genesis).
	ID BlockID
	// Parent is the ID of the block this one chains to; empty for b0.
	Parent BlockID
	// Height is the distance to the root: genesis has height 0, a
	// block b_k appended to b_{k-1} has height k.
	Height int
	// Creator is the identifier of the process that produced the
	// block (the miner / proposer in protocol simulations).
	Creator int
	// Round is the protocol round or virtual time at which the block
	// was produced. Purely informational; used by visualizers.
	Round int
	// Weight is the block's own weight under weighted scores (e.g.
	// total difficulty contribution in an Ethereum-style chain).
	// Length-based scores ignore it. Must be >= 1 so that every
	// weighted score is strictly monotonic, as Definition 3.2's score
	// functions require.
	Weight int
	// Payload is opaque application data; the validity predicate P may
	// inspect it (e.g. the toy ledger predicate).
	Payload []byte
	// Token, when non-empty, names the oracle token consumed to
	// validate this block (b^{tkn_h}_ℓ in the paper). The k-fork
	// coherence checker groups blocks by this field.
	Token string
}

// Genesis returns the genesis block b0. By assumption in the paper,
// b0 ∈ B′ (it is valid) and it belongs to every BlockTree.
func Genesis() *Block {
	return &Block{ID: GenesisID, Height: 0, Creator: -1, Weight: 1}
}

// hashBlockSum computes the content hash preimage and digest on the
// stack: parent ID bytes, then creator and round as little-endian
// uint64s, then the payload — exactly the byte stream the original
// streaming implementation hashed, so IDs are unchanged.
func hashBlockSum(parent BlockID, creator, round int, payload []byte) [32]byte {
	var stack [192]byte
	buf := append(stack[:0], parent...)
	var hdr [16]byte
	binary.LittleEndian.PutUint64(hdr[:8], uint64(int64(creator)))
	binary.LittleEndian.PutUint64(hdr[8:], uint64(int64(round)))
	buf = append(buf, hdr[:]...)
	buf = append(buf, payload...)
	return sha256.Sum256(buf)
}

// HashBlock computes the content ID for a block chaining to parent with
// the given creator, round and payload. The hash commits to every field
// that determines the block's identity. One allocation: the ID string
// itself.
func HashBlock(parent BlockID, creator, round int, payload []byte) BlockID {
	sum := hashBlockSum(parent, creator, round, payload)
	var dst [64]byte
	hex.Encode(dst[:], sum[:])
	return BlockID(dst[:])
}

// hashMatches reports whether id equals the content hash of the given
// fields without materializing the hex string — the allocation-free
// comparison WellFormed runs once per block per replica delivery.
func hashMatches(id BlockID, parent BlockID, creator, round int, payload []byte) bool {
	if len(id) != 64 {
		return false
	}
	sum := hashBlockSum(parent, creator, round, payload)
	var dst [64]byte
	hex.Encode(dst[:], sum[:])
	return string(dst[:]) == string(id)
}

// NewBlock builds a block chaining to parent, computing its content ID.
// The height must be supplied by the caller (parent height + 1); the tree
// re-checks it on insertion.
func NewBlock(parent BlockID, height, creator, round int, payload []byte) *Block {
	return &Block{
		ID:      HashBlock(parent, creator, round, payload),
		Parent:  parent,
		Height:  height,
		Creator: creator,
		Round:   round,
		Weight:  1,
		Payload: payload,
	}
}

// WithWeight returns a copy of b with the given weight. Weight does not
// participate in the ID so that the same logical block can be re-weighted
// by fork-choice experiments without changing its identity.
func (b *Block) WithWeight(w int) *Block {
	nb := *b
	nb.Weight = w
	return &nb
}

// WithToken returns a copy of b carrying the consumed oracle token name.
func (b *Block) WithToken(tok string) *Block {
	nb := *b
	nb.Token = tok
	return &nb
}

// IsGenesis reports whether b is the genesis block.
func (b *Block) IsGenesis() bool { return b.ID == GenesisID }

// String renders the block compactly, e.g. "blk(3f2a9c1d h=4 by p2)".
func (b *Block) String() string {
	if b.IsGenesis() {
		return "b0"
	}
	return fmt.Sprintf("blk(%s h=%d by p%d)", b.ID.Short(), b.Height, b.Creator)
}
