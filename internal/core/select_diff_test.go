package core

import (
	"math/rand"
	"testing"
)

// randomTree grows an n-block tree with the given fork bias: prob is the
// probability that a new block extends the current selected tip rather
// than a uniformly random earlier block. Weights are random in [1, 9] so
// that heaviest- and longest-chain genuinely disagree.
func randomTree(t testing.TB, rng *rand.Rand, n int, chainProb float64) *Tree {
	t.Helper()
	tr := NewTree()
	attached := []*Block{Genesis()}
	tip := Genesis()
	for i := 0; i < n; i++ {
		parent := tip
		if rng.Float64() >= chainProb {
			parent = attached[rng.Intn(len(attached))]
		}
		b := NewBlock(parent.ID, parent.Height+1, rng.Intn(8), i, []byte{byte(i), byte(i >> 8)}).
			WithWeight(1 + rng.Intn(9))
		if err := tr.Attach(b); err != nil {
			t.Fatalf("attach: %v", err)
		}
		attached = append(attached, b)
		if b.Height > tip.Height {
			tip = b
		}
	}
	return tr
}

// TestSelectorsMatchLegacy pins the indexed selectors to the original
// scan-based implementations on randomized trees of several shapes: the
// selected chains must be identical block-for-block on every seed.
func TestSelectorsMatchLegacy(t *testing.T) {
	shapes := []struct {
		name      string
		chainProb float64
	}{
		{"chainlike", 0.95},
		{"mixed", 0.6},
		{"forked", 0.1},
	}
	for _, shape := range shapes {
		t.Run(shape.name, func(t *testing.T) {
			for seed := int64(0); seed < 25; seed++ {
				rng := rand.New(rand.NewSource(seed))
				tr := randomTree(t, rng, 50+rng.Intn(300), shape.chainProb)
				cases := []struct {
					sel    Selector
					legacy func(*Tree) Chain
				}{
					{LongestChain{}, legacySelectLongest},
					{HeaviestChain{}, legacySelectHeaviest},
					{SingleChain{}, legacySelectSingle},
				}
				for _, c := range cases {
					got, want := c.sel.Select(tr), c.legacy(tr)
					if !got.Equal(want) {
						t.Fatalf("seed %d: %s diverged from legacy:\n got %v\nwant %v",
							seed, c.sel.Name(), got, want)
					}
				}
			}
		})
	}
}

// TestSelectHeadMatchesSelect pins every selector's head-only fast path
// (the HeadSelector interface used by append paths) to the head of the
// full Select on randomized trees.
func TestSelectHeadMatchesSelect(t *testing.T) {
	sels := []Selector{LongestChain{}, HeaviestChain{}, GHOST{}, SingleChain{}}
	for seed := int64(0); seed < 25; seed++ {
		rng := rand.New(rand.NewSource(1000 + seed))
		tr := randomTree(t, rng, 20+rng.Intn(200), rng.Float64())
		for _, sel := range sels {
			want := sel.Select(tr).Head()
			got := HeadOf(sel, tr)
			if got == nil || want == nil || got.ID != want.ID {
				t.Fatalf("seed %d: %s SelectHead %v, Select head %v", seed, sel.Name(), got, want)
			}
		}
	}
}

// TestSelectorsMatchLegacyAfterClone checks the indices survive Clone:
// selection on a clone (and on a clone grown further) still matches the
// legacy scan.
func TestSelectorsMatchLegacyAfterClone(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	tr := randomTree(t, rng, 200, 0.5)
	cl := tr.Clone()
	leaves := cl.Leaves()
	for i := 0; i < 50; i++ {
		parent := cl.Block(leaves[rng.Intn(len(leaves))])
		b := NewBlock(parent.ID, parent.Height+1, 3, 1000+i, []byte{byte(i)}).WithWeight(1 + rng.Intn(5))
		if err := cl.Attach(b); err != nil {
			t.Fatalf("attach on clone: %v", err)
		}
	}
	for _, c := range []struct {
		sel    Selector
		legacy func(*Tree) Chain
	}{
		{LongestChain{}, legacySelectLongest},
		{HeaviestChain{}, legacySelectHeaviest},
		{SingleChain{}, legacySelectSingle},
	} {
		if got, want := c.sel.Select(cl), c.legacy(cl); !got.Equal(want) {
			t.Fatalf("%s on grown clone diverged from legacy", c.sel.Name())
		}
		// The original tree must be untouched by growth of the clone.
		if got, want := c.sel.Select(tr), c.legacy(tr); !got.Equal(want) {
			t.Fatalf("%s on original after clone growth diverged from legacy", c.sel.Name())
		}
	}
}

// TestSingleChainDegenerate pins the empty-case handling: a zero-value
// Tree (no genesis, no leaf set) must select the genesis chain instead of
// panicking on leaves[0], and HeadOf must return the genesis block (not
// nil) so append paths never dereference a nil head.
func TestSingleChainDegenerate(t *testing.T) {
	var tr Tree
	for _, sel := range []Selector{SingleChain{}, LongestChain{}, HeaviestChain{}} {
		got := sel.Select(&tr)
		if !got.Equal(GenesisChain()) {
			t.Fatalf("%s on degenerate tree = %v, want genesis chain", sel.Name(), got)
		}
	}
	for _, sel := range []Selector{SingleChain{}, LongestChain{}, HeaviestChain{}, GHOST{}} {
		head := HeadOf(sel, &tr)
		if head == nil || !head.IsGenesis() {
			t.Fatalf("HeadOf(%s) on degenerate tree = %v, want genesis", sel.Name(), head)
		}
	}
}
