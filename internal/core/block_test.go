package core

import (
	"testing"
	"testing/quick"
)

func TestGenesisProperties(t *testing.T) {
	g := Genesis()
	if !g.IsGenesis() {
		t.Fatal("Genesis() not genesis")
	}
	if g.ID != GenesisID || g.Height != 0 || g.Parent != "" {
		t.Fatalf("unexpected genesis: %+v", g)
	}
	if g.Weight != 1 {
		t.Fatalf("genesis weight %d, want 1", g.Weight)
	}
}

func TestHashBlockDeterministic(t *testing.T) {
	a := HashBlock(GenesisID, 1, 2, []byte("x"))
	b := HashBlock(GenesisID, 1, 2, []byte("x"))
	if a != b {
		t.Fatal("same inputs hashed differently")
	}
}

func TestHashBlockSensitivity(t *testing.T) {
	base := HashBlock(GenesisID, 1, 2, []byte("x"))
	variants := []BlockID{
		HashBlock("other", 1, 2, []byte("x")),
		HashBlock(GenesisID, 9, 2, []byte("x")),
		HashBlock(GenesisID, 1, 9, []byte("x")),
		HashBlock(GenesisID, 1, 2, []byte("y")),
	}
	for i, v := range variants {
		if v == base {
			t.Errorf("variant %d collided with base", i)
		}
	}
}

func TestNewBlockFields(t *testing.T) {
	b := NewBlock(GenesisID, 1, 3, 7, []byte("p"))
	if b.Parent != GenesisID || b.Height != 1 || b.Creator != 3 || b.Round != 7 {
		t.Fatalf("fields wrong: %+v", b)
	}
	if b.Weight != 1 {
		t.Fatalf("default weight %d, want 1", b.Weight)
	}
	if b.ID != HashBlock(GenesisID, 3, 7, []byte("p")) {
		t.Fatal("ID does not match content hash")
	}
}

func TestWithWeightAndTokenDoNotMutate(t *testing.T) {
	b := NewBlock(GenesisID, 1, 0, 0, nil)
	w := b.WithWeight(5)
	tk := b.WithToken("tkn(b0)")
	if b.Weight != 1 || b.Token != "" {
		t.Fatal("original block mutated")
	}
	if w.Weight != 5 || w.ID != b.ID {
		t.Fatal("WithWeight wrong")
	}
	if tk.Token != "tkn(b0)" || tk.ID != b.ID {
		t.Fatal("WithToken wrong")
	}
}

func TestBlockIDShort(t *testing.T) {
	if GenesisID.Short() != "b0" {
		t.Errorf("short of b0 = %q", GenesisID.Short())
	}
	long := BlockID("0123456789abcdef")
	if long.Short() != "01234567" {
		t.Errorf("short = %q", long.Short())
	}
}

func TestBlockString(t *testing.T) {
	if Genesis().String() != "b0" {
		t.Errorf("genesis String = %q", Genesis().String())
	}
	b := NewBlock(GenesisID, 1, 2, 0, nil)
	if s := b.String(); s == "" || s == "b0" {
		t.Errorf("block String = %q", s)
	}
}

// Property: distinct (creator, round, payload) triples never collide
// (SHA-256 collision would be required).
func TestQuickHashInjective(t *testing.T) {
	f := func(c1, c2 uint8, r1, r2 uint8, p1, p2 []byte) bool {
		if c1 == c2 && r1 == r2 && string(p1) == string(p2) {
			return true // identical inputs may (must) collide
		}
		a := HashBlock(GenesisID, int(c1), int(r1), p1)
		b := HashBlock(GenesisID, int(c2), int(r2), p2)
		return a != b
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}
