package core

import (
	"bytes"
	"testing"
)

// FuzzDecodeTxs checks that the payload parser never panics and that
// decode ∘ encode is the identity whenever decoding succeeds.
func FuzzDecodeTxs(f *testing.F) {
	f.Add([]byte{})
	f.Add(EncodeTxs([]Tx{{From: 0, To: 1, Amount: 50}}))
	f.Add([]byte{1, 2, 3})
	f.Add(bytes.Repeat([]byte{0xFF}, 36))
	f.Fuzz(func(t *testing.T, payload []byte) {
		txs, err := DecodeTxs(payload)
		if err != nil {
			return
		}
		re := EncodeTxs(txs)
		if !bytes.Equal(re, payload) {
			t.Fatalf("decode/encode not inverse: %x → %x", payload, re)
		}
	})
}

// FuzzChainPrefix checks the prefix/common-prefix algebra on arbitrary
// cut points of a fixed chain and its fork: CommonPrefix prefixes both
// inputs and Comparable is symmetric.
func FuzzChainPrefix(f *testing.F) {
	base := GenesisChain()
	for i := 1; i <= 12; i++ {
		h := base.Head()
		base = base.Append(NewBlock(h.ID, h.Height+1, 0, i, []byte{byte(i)}))
	}
	alt := base[:5].Clone()
	for i := 0; i < 8; i++ {
		h := alt.Head()
		alt = alt.Append(NewBlock(h.ID, h.Height+1, 9, 100+i, []byte{byte(i)}))
	}
	f.Add(uint8(3), uint8(7), true, false)
	f.Add(uint8(12), uint8(12), false, true)
	f.Fuzz(func(t *testing.T, aCut, bCut uint8, aAlt, bAlt bool) {
		pick := func(cut uint8, useAlt bool) Chain {
			c := base
			if useAlt {
				c = alt
			}
			n := int(cut) % c.Len()
			return c[:n+1]
		}
		a, b := pick(aCut, aAlt), pick(bCut, bAlt)
		cp := a.CommonPrefix(b)
		if !cp.Prefix(a) || !cp.Prefix(b) {
			t.Fatal("CommonPrefix does not prefix both")
		}
		if a.Comparable(b) != b.Comparable(a) {
			t.Fatal("Comparable not symmetric")
		}
		if MCPS(LengthScore{}, a, b) != cp.Height() {
			t.Fatal("MCPS disagrees with CommonPrefix height")
		}
	})
}

// checkTreeIndices asserts every incremental index of the tree — leaf
// set, cached max height, per-block chain weight, per-block subtree
// weight — equals a from-scratch recomputation over the blocks/children
// maps. It is the shared invariant check for the attach fuzzers.
func checkTreeIndices(t *testing.T, tr *Tree) {
	t.Helper()
	// Leaf set == scan of all blocks with no children.
	wantLeaves := scanLeaves(tr)
	gotLeaves := tr.Leaves()
	if len(gotLeaves) != len(wantLeaves) {
		t.Fatalf("leaf index has %d leaves, scan finds %d", len(gotLeaves), len(wantLeaves))
	}
	for i := range wantLeaves {
		if gotLeaves[i] != wantLeaves[i] {
			t.Fatalf("leaf index %v != scan %v", gotLeaves, wantLeaves)
		}
	}
	if tr.LeafCount() != len(wantLeaves) {
		t.Fatalf("LeafCount %d, scan finds %d", tr.LeafCount(), len(wantLeaves))
	}
	// Cached height == scan.
	if got, want := tr.Height(), scanHeight(tr); got != want {
		t.Fatalf("cached height %d, scan %d", got, want)
	}
	// chainWeight[b] == WeightScore of the materialized chain;
	// subtreeWeight[b] == recomputed weight sum over the subtree.
	sc := WeightScore{}
	var subtree func(id BlockID) int
	subtree = func(id BlockID) int {
		w := tr.Block(id).Weight
		for _, c := range tr.Children(id) {
			w += subtree(c)
		}
		return w
	}
	for _, b := range tr.Blocks() {
		if got, want := tr.ChainWeight(b.ID), sc.Of(tr.ChainTo(b.ID)); got != want {
			t.Fatalf("chainWeight[%s] = %d, recompute %d", b.ID.Short(), got, want)
		}
		if got, want := tr.SubtreeWeight(b.ID), subtree(b.ID); got != want {
			t.Fatalf("subtreeWeight[%s] = %d, recompute %d", b.ID.Short(), got, want)
		}
	}
}

// FuzzTreeAttach feeds arbitrary attach schedules (parent picks drawn
// from already-attached blocks, plus occasional garbage) and checks the
// tree invariants are never violated and garbage is always rejected.
func FuzzTreeAttach(f *testing.F) {
	f.Add([]byte{0, 1, 2, 3})
	f.Add([]byte{0, 0, 0, 0, 0})
	f.Fuzz(func(t *testing.T, schedule []byte) {
		tr := NewTree()
		attached := []*Block{Genesis()}
		for i, op := range schedule {
			if op%7 == 6 {
				// Garbage: unknown parent must be rejected.
				if err := tr.Attach(NewBlock("nowhere", 1, 0, i, nil)); err == nil {
					t.Fatal("orphan accepted")
				}
				continue
			}
			parent := attached[int(op)%len(attached)]
			b := NewBlock(parent.ID, parent.Height+1, int(op)%4, i, []byte{op})
			if err := tr.Attach(b); err != nil {
				t.Fatalf("valid attach rejected: %v", err)
			}
			attached = append(attached, b)
		}
		if tr.Len() != len(attached) {
			t.Fatalf("tree size %d, attached %d", tr.Len(), len(attached))
		}
		for _, sel := range []Selector{LongestChain{}, GHOST{}, HeaviestChain{}} {
			if c := sel.Select(tr); !c.WellFormed() {
				t.Fatalf("%s selected malformed chain", sel.Name())
			}
		}
		if tr.SubtreeWeight(GenesisID) != tr.Len() {
			t.Fatal("subtree weight out of sync")
		}
		checkTreeIndices(t, tr)
	})
}

// FuzzTreeIndices stresses the incremental indices directly: arbitrary
// attach schedules with random weights, duplicate deliveries (the same
// block attached again must be idempotent), conflicting re-weighted
// twins (same ID, different weight — must be rejected without touching
// any cache), and out-of-order delivery (a child offered before its
// parent must be rejected, then accepted once the parent lands). After
// the schedule, every cache must equal a recompute from scratch, both on
// the tree and on a clone.
func FuzzTreeIndices(f *testing.F) {
	f.Add([]byte{0, 1, 2, 3, 4, 5, 6, 7})
	f.Add([]byte{9, 9, 9, 9})
	f.Add([]byte{0, 20, 0, 20, 41, 62})
	f.Fuzz(func(t *testing.T, schedule []byte) {
		tr := NewTree()
		attached := []*Block{Genesis()}
		for i, op := range schedule {
			switch op % 5 {
			case 0, 1: // ordinary attach under a random existing parent
				parent := attached[int(op/5)%len(attached)]
				b := NewBlock(parent.ID, parent.Height+1, int(op)%3, i, []byte{op, byte(i)}).
					WithWeight(int(op)%4 + 1)
				if err := tr.Attach(b); err != nil {
					t.Fatalf("valid attach rejected: %v", err)
				}
				attached = append(attached, b)
			case 2: // duplicate delivery: idempotent, caches untouched
				dup := attached[int(op/5)%len(attached)]
				before := tr.Len()
				if err := tr.Attach(dup); err != nil {
					t.Fatalf("duplicate attach rejected: %v", err)
				}
				if tr.Len() != before {
					t.Fatal("duplicate attach changed tree size")
				}
			case 3: // conflicting twin: same ID, different weight
				orig := attached[int(op/5)%len(attached)]
				if orig.IsGenesis() {
					continue // genesis attach is always a no-op
				}
				twin := orig.WithWeight(orig.Weight + 1)
				if err := tr.Attach(twin); err == nil {
					t.Fatal("conflicting re-weighted twin accepted")
				}
			case 4: // out-of-order delivery: child before parent
				parent := attached[int(op/5)%len(attached)]
				future := NewBlock(parent.ID, parent.Height+1, 7, 1000+i, []byte{op})
				child := NewBlock(future.ID, future.Height+1, 7, 2000+i, []byte{op})
				if err := tr.Attach(child); err == nil {
					t.Fatal("orphan child accepted before its parent")
				}
				if err := tr.Attach(future); err != nil {
					t.Fatalf("parent attach rejected: %v", err)
				}
				if err := tr.Attach(child); err != nil {
					t.Fatalf("child attach rejected after parent arrived: %v", err)
				}
				attached = append(attached, future, child)
			}
			// Per-step recompute is quadratic; keep it for short
			// schedules and fall back to end-of-run checks on long
			// fuzz-generated ones.
			if len(schedule) <= 32 {
				checkTreeIndices(t, tr)
			}
		}
		checkTreeIndices(t, tr)
		checkTreeIndices(t, tr.Clone())
	})
}
