package core

import (
	"bytes"
	"testing"
)

// FuzzDecodeTxs checks that the payload parser never panics and that
// decode ∘ encode is the identity whenever decoding succeeds.
func FuzzDecodeTxs(f *testing.F) {
	f.Add([]byte{})
	f.Add(EncodeTxs([]Tx{{From: 0, To: 1, Amount: 50}}))
	f.Add([]byte{1, 2, 3})
	f.Add(bytes.Repeat([]byte{0xFF}, 36))
	f.Fuzz(func(t *testing.T, payload []byte) {
		txs, err := DecodeTxs(payload)
		if err != nil {
			return
		}
		re := EncodeTxs(txs)
		if !bytes.Equal(re, payload) {
			t.Fatalf("decode/encode not inverse: %x → %x", payload, re)
		}
	})
}

// FuzzChainPrefix checks the prefix/common-prefix algebra on arbitrary
// cut points of a fixed chain and its fork: CommonPrefix prefixes both
// inputs and Comparable is symmetric.
func FuzzChainPrefix(f *testing.F) {
	base := GenesisChain()
	for i := 1; i <= 12; i++ {
		h := base.Head()
		base = base.Append(NewBlock(h.ID, h.Height+1, 0, i, []byte{byte(i)}))
	}
	alt := base[:5].Clone()
	for i := 0; i < 8; i++ {
		h := alt.Head()
		alt = alt.Append(NewBlock(h.ID, h.Height+1, 9, 100+i, []byte{byte(i)}))
	}
	f.Add(uint8(3), uint8(7), true, false)
	f.Add(uint8(12), uint8(12), false, true)
	f.Fuzz(func(t *testing.T, aCut, bCut uint8, aAlt, bAlt bool) {
		pick := func(cut uint8, useAlt bool) Chain {
			c := base
			if useAlt {
				c = alt
			}
			n := int(cut) % c.Len()
			return c[:n+1]
		}
		a, b := pick(aCut, aAlt), pick(bCut, bAlt)
		cp := a.CommonPrefix(b)
		if !cp.Prefix(a) || !cp.Prefix(b) {
			t.Fatal("CommonPrefix does not prefix both")
		}
		if a.Comparable(b) != b.Comparable(a) {
			t.Fatal("Comparable not symmetric")
		}
		if MCPS(LengthScore{}, a, b) != cp.Height() {
			t.Fatal("MCPS disagrees with CommonPrefix height")
		}
	})
}

// FuzzTreeAttach feeds arbitrary attach schedules (parent picks drawn
// from already-attached blocks, plus occasional garbage) and checks the
// tree invariants are never violated and garbage is always rejected.
func FuzzTreeAttach(f *testing.F) {
	f.Add([]byte{0, 1, 2, 3})
	f.Add([]byte{0, 0, 0, 0, 0})
	f.Fuzz(func(t *testing.T, schedule []byte) {
		tr := NewTree()
		attached := []*Block{Genesis()}
		for i, op := range schedule {
			if op%7 == 6 {
				// Garbage: unknown parent must be rejected.
				if err := tr.Attach(NewBlock("nowhere", 1, 0, i, nil)); err == nil {
					t.Fatal("orphan accepted")
				}
				continue
			}
			parent := attached[int(op)%len(attached)]
			b := NewBlock(parent.ID, parent.Height+1, int(op)%4, i, []byte{op})
			if err := tr.Attach(b); err != nil {
				t.Fatalf("valid attach rejected: %v", err)
			}
			attached = append(attached, b)
		}
		if tr.Len() != len(attached) {
			t.Fatalf("tree size %d, attached %d", tr.Len(), len(attached))
		}
		for _, sel := range []Selector{LongestChain{}, GHOST{}, HeaviestChain{}} {
			if c := sel.Select(tr); !c.WellFormed() {
				t.Fatalf("%s selected malformed chain", sel.Name())
			}
		}
		if tr.SubtreeWeight(GenesisID) != tr.Len() {
			t.Fatal("subtree weight out of sync")
		}
	})
}
