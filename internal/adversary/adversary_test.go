package adversary

import (
	"testing"

	"repro/internal/consistency"
	"repro/internal/core"
	"repro/internal/oracle"
	"repro/internal/replica"
	"repro/internal/simnet"
)

// mintOn builds a deterministic valid block chained to parent.
func mintOn(parent *core.Block, creator, round int) *core.Block {
	return core.NewBlock(parent.ID, parent.Height+1, creator, round, []byte{byte(round)})
}

func TestSelfishWithholdsUntilHonestProgress(t *testing.T) {
	sim := simnet.NewSim(1)
	g := replica.NewGroup(sim, 3, simnet.Synchronous{Delta: 1}, core.LongestChain{})
	s := NewSelfishMiner(g.Procs[2], g.Net, Config{Strategy: Selfish, Lead: 1})

	// Adversary mines privately: no other replica may see the block.
	s.Step(func(parent *core.Block) *core.Block { return mintOn(parent, 2, 0) })
	sim.RunUntilIdle()
	if s.Withheld != 1 || len(s.withheld) != 1 {
		t.Fatalf("withheld = %d (buffer %d), want 1", s.Withheld, len(s.withheld))
	}
	if g.Procs[0].Tree().Len() != 1 {
		t.Fatalf("private block leaked to replica 0 (tree len %d)", g.Procs[0].Tree().Len())
	}
	if g.Procs[2].Tree().Len() != 2 {
		t.Fatalf("private block not applied locally (tree len %d)", g.Procs[2].Tree().Len())
	}

	// Honest progress to the same height triggers the release.
	g.Procs[0].AppendLocal(mintOn(core.Genesis(), 0, 1))
	sim.RunUntilIdle()
	if s.Releases != 1 {
		t.Fatalf("releases = %d, want 1 (honest height reached tip-lead)", s.Releases)
	}
	if !g.Procs[1].Tree().Has(s.P.Tree().Block(g.Procs[2].SelectedHead().ID).ID) {
		t.Fatal("released branch did not reach replica 1")
	}
	// Replica 1 now holds both h=1 blocks: a fork.
	if got := g.Procs[1].Tree().Len(); got != 3 {
		t.Fatalf("replica 1 tree len = %d, want 3 (genesis + honest + released)", got)
	}
}

func TestSelfishAbandonsWhenOvertaken(t *testing.T) {
	sim := simnet.NewSim(1)
	g := replica.NewGroup(sim, 3, simnet.Synchronous{Delta: 1}, core.LongestChain{})
	s := NewSelfishMiner(g.Procs[2], g.Net, Config{Strategy: Selfish, Lead: 0})
	// Lead 0 normalizes to 1; use a taller honest jump to force abandon
	// before any release can fire: private tip at h=1, honest goes to 2.
	s.Step(func(parent *core.Block) *core.Block { return mintOn(parent, 2, 0) })
	b1 := mintOn(core.Genesis(), 0, 1)
	g.Procs[0].AppendLocal(b1)
	// The release fires at honest h=1 (tie). Re-withhold on the new
	// tip, then let honest overtake by two to hit the abandon path.
	sim.RunUntilIdle()
	s.Step(func(parent *core.Block) *core.Block { return mintOn(parent, 2, 2) })
	prevTip := s.withheld[len(s.withheld)-1]
	b2 := mintOn(b1, 0, 3)
	g.Procs[0].AppendLocal(b2)
	g.Procs[0].AppendLocal(mintOn(b2, 0, 4))
	sim.RunUntilIdle()
	if s.Abandoned == 0 && len(s.withheld) > 0 {
		t.Fatalf("private branch neither abandoned nor released after honest overtake (tip %s)", prevTip.ID.Short())
	}
}

func TestWithholderFlushesAtEnd(t *testing.T) {
	sim := simnet.NewSim(1)
	g := replica.NewGroup(sim, 3, simnet.Synchronous{Delta: 1}, core.LongestChain{})
	s := NewSelfishMiner(g.Procs[2], g.Net, Config{Strategy: Withhold})

	var parent *core.Block
	s.Step(func(p *core.Block) *core.Block { parent = p; return mintOn(p, 2, 0) })
	s.Step(func(p *core.Block) *core.Block { return mintOn(p, 2, 1) })
	// Honest progress must NOT trigger a release for a committed
	// withholder (HoldToEnd).
	g.Procs[0].AppendLocal(mintOn(core.Genesis(), 0, 2))
	sim.RunUntilIdle()
	if s.Releases != 0 || len(s.withheld) != 2 {
		t.Fatalf("withholder released early: releases=%d withheld=%d", s.Releases, len(s.withheld))
	}
	if parent == nil || !parent.IsGenesis() {
		t.Fatalf("first private block should chain to genesis, got %v", parent)
	}
	s.Flush()
	sim.RunUntilIdle()
	if s.Releases != 1 {
		t.Fatalf("flush did not release (releases=%d)", s.Releases)
	}
	if got := g.Procs[0].Tree().Height(); got != 2 {
		t.Fatalf("released branch should give replica 0 height 2, got %d", got)
	}
}

func TestEquivocatorBreaksKForkCoherence(t *testing.T) {
	sim := simnet.NewSim(1)
	g := replica.NewGroup(sim, 3, simnet.Synchronous{Delta: 1}, core.LongestChain{})
	e := NewEquivocator(g.Procs[2], g.Net, Config{Strategy: Equivocate, Forks: 3})

	gen := core.Genesis()
	b := mintOn(gen, 2, 0).WithToken(oracle.TokenName(gen.ID))
	flooded := e.FloodSiblings(b)
	sim.RunUntilIdle()

	if len(flooded) != 3 || e.Forged != 2 {
		t.Fatalf("flooded %d blocks, forged %d; want 3 and 2", len(flooded), e.Forged)
	}
	for _, sib := range flooded {
		if sib.Token != b.Token {
			t.Fatalf("sibling %s does not reuse the token (%q vs %q)", sib.ID.Short(), sib.Token, b.Token)
		}
		if !g.Procs[0].Tree().Has(sib.ID) {
			t.Fatalf("sibling %s did not reach replica 0", sib.ID.Short())
		}
	}

	h := g.History()
	chk := consistency.NewChecker(core.LengthScore{}, nil)
	rep := chk.KForkCoherence(h, 1)
	if rep.OK {
		t.Fatal("1-fork coherence should be violated by a 3-way equivocation")
	}
	if len(rep.Witnesses) == 0 || len(rep.Witnesses[0].Blocks) != 3 {
		t.Fatalf("k-fork witness should carry the 3 fork blocks, got %+v", rep.Witnesses)
	}
	if ok := chk.KForkCoherence(h, 3); !ok.OK {
		t.Fatal("3-fork coherence should hold for a 3-way equivocation")
	}
}

func TestConfigResolution(t *testing.T) {
	if got := (Config{}).ProcID(4); got != 3 {
		t.Fatalf("zero-value Proc should resolve to N-1, got %d", got)
	}
	if got := (Config{Proc: 2}).ProcID(4); got != 2 {
		t.Fatalf("explicit Proc should win, got %d", got)
	}
	if got := (Config{Proc: 9}).ProcID(4); got != 3 {
		t.Fatalf("out-of-range Proc should fall back to N-1, got %d", got)
	}
	if (Config{}).Active() {
		t.Fatal("zero config must be benign")
	}
	if name := (Config{Strategy: Selfish}).Name(); name != "selfish(lead=1)" {
		t.Fatalf("Name() = %q", name)
	}
}
