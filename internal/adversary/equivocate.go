package adversary

import (
	"encoding/binary"
	"fmt"

	"repro/internal/core"
	"repro/internal/replica"
	"repro/internal/simnet"
)

// Equivocator implements fork flooding / token reuse: every time the
// adversarial process produces a block b, it forges Forks-1 sibling
// blocks under the same parent — stamped with the *same oracle token
// name* — and floods them all. Correct replicas accept the siblings
// (they are well-formed: the content hash commits to parent, creator,
// round and payload, and replicas cannot see the oracle's bookkeeping),
// so:
//
//   - under a frugal oracle Θ_F,k the history now contains more than k
//     successful append() operations for one token — a measured k-Fork
//     Coherence violation whose witness is the fork-block set;
//   - under the prodigal oracle the flood widens the fork window, and
//     with a subtree-weight selector (GHOST) it can drag correct
//     replicas onto a shorter branch, which the Local Monotonic Read /
//     prefix checkers observe.
type Equivocator struct {
	P   *replica.Process
	Net *simnet.Network
	// Forks is the total number of sibling blocks per opportunity.
	Forks int

	// Forged counts the forged (non-oracle) siblings flooded.
	Forged int
}

// NewEquivocator wires the strategy onto process p.
func NewEquivocator(p *replica.Process, nw *simnet.Network, cfg Config) *Equivocator {
	markFaulty(p)
	return &Equivocator{P: p, Net: nw, Forks: cfg.forks()}
}

// forgedPayload derives the variant payload of forged sibling v from the
// original block's payload, so each sibling has a distinct content hash.
func forgedPayload(orig []byte, v int) []byte {
	out := make([]byte, len(orig)+4)
	copy(out, orig)
	binary.LittleEndian.PutUint32(out[len(orig):], uint32(v))
	return out
}

// FloodSiblings appends and floods b, then forges and floods Forks-1
// siblings under b's parent carrying b's token name. It returns every
// block flooded (b first).
func (e *Equivocator) FloodSiblings(b *core.Block) []*core.Block {
	out := []*core.Block{b}
	e.P.AppendLocal(b)
	for v := 1; v < e.Forks; v++ {
		sib := core.NewBlock(b.Parent, b.Height, e.P.ID, b.Round, forgedPayload(b.Payload, v))
		if b.Token != "" {
			sib = sib.WithToken(b.Token)
		}
		e.P.AppendLocal(sib)
		e.Forged++
		out = append(out, sib)
		note(e.Net, "equivocate", e.P.ID,
			fmt.Sprintf("forged sibling %s of %s under %s", sib.ID.Short(), b.ID.Short(), b.Parent.Short()))
	}
	return out
}
