package adversary

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/replica"
	"repro/internal/simnet"
)

// SelfishMiner implements withhold-and-release mining (Eyal & Sirer's
// selfish-mining shape, simplified to the deterministic policy below).
// The adversary mines on a private branch, applying every block to its
// own replica with the network send suppressed (replica.Process.Mute).
// The policy per tick:
//
//   - mine on the private tip (the adversary's selected head, which
//     includes the withheld blocks);
//   - if the honest chain has overtaken the private tip, abandon the
//     private branch (the withheld blocks stay orphaned in the local
//     tree; the selector walks back onto the honest branch);
//   - if the honest chain has come within Lead of the private tip,
//     publish the whole private branch — the release that forces every
//     honest replica into a reorg, the Strong Prefix counterexample.
//
// With ReleaseAtEnd (the Withhold strategy), the branch is only
// published by Flush at the end of the run: one maximal late reorg.
type SelfishMiner struct {
	P   *replica.Process
	Net *simnet.Network

	// Lead is the release threshold (see Config.Lead).
	Lead int
	// HoldToEnd disables the threshold release; only Flush publishes.
	HoldToEnd bool

	withheld     []*core.Block
	honestHeight int

	// Stats: blocks withheld, release events, branches abandoned.
	Withheld, Releases, Abandoned int
}

// NewSelfishMiner wires the strategy onto process p: mutes its sends and
// chains an OnCommit hook to track the honest chain height.
func NewSelfishMiner(p *replica.Process, nw *simnet.Network, cfg Config) *SelfishMiner {
	s := &SelfishMiner{P: p, Net: nw, Lead: cfg.lead(), HoldToEnd: cfg.Strategy == Withhold}
	p.Mute = true
	markFaulty(p)
	prev := p.OnCommit
	p.OnCommit = func(b *core.Block) {
		if b.Creator != p.ID && b.Height > s.honestHeight {
			s.honestHeight = b.Height
			// The release policy triggers on honest progress (the
			// moment the honest chain threatens the private lead), not
			// on the adversary's own mining.
			s.react()
		}
		if prev != nil {
			prev(b)
		}
	}
	return s
}

// tip returns the private tip the adversary mines on: the last withheld
// block, or the replica's selected head when nothing is withheld (the
// adversary rides the honest chain until its next token).
func (s *SelfishMiner) tip() *core.Block {
	if n := len(s.withheld); n > 0 {
		return s.withheld[n-1]
	}
	return s.P.SelectedHead()
}

// Step performs one adversary tick: try to extend the private branch via
// mint. It is called once per protocol round in place of the process's
// honest mining step; releases are triggered by honest progress (the
// OnCommit hook), not by the adversary's own blocks.
func (s *SelfishMiner) Step(mint Mint) {
	parent := s.tip()
	if b := mint(parent); b != nil {
		s.P.AppendLocal(b) // muted: applied + recorded, not flooded
		s.withheld = append(s.withheld, b)
		s.Withheld++
		note(s.Net, "withhold", s.P.ID, fmt.Sprintf("block %s h=%d (private lead %d)", b.ID.Short(), b.Height, s.lead()))
	}
}

// lead returns the private branch's height advantage over the honest
// chain (negative when honest is ahead).
func (s *SelfishMiner) lead() int {
	if len(s.withheld) == 0 {
		return 0
	}
	return s.withheld[len(s.withheld)-1].Height - s.honestHeight
}

// react applies the abandon/release policy after each tick.
func (s *SelfishMiner) react() {
	if len(s.withheld) == 0 {
		return
	}
	if s.HoldToEnd {
		// A committed withholder rides its branch to the end-of-run
		// Flush, win or lose — the maximal-late-reorg variant.
		return
	}
	tipH := s.withheld[len(s.withheld)-1].Height
	if s.honestHeight > tipH {
		// Honest overtook: the private branch lost the race.
		s.withheld = s.withheld[:0]
		s.Abandoned++
		note(s.Net, "abandon", s.P.ID, fmt.Sprintf("honest chain reached h=%d", s.honestHeight))
		return
	}
	if s.honestHeight >= tipH-s.Lead {
		s.publish("lead threatened")
	}
}

// Flush publishes any still-withheld branch (the ReleaseAtEnd path).
func (s *SelfishMiner) Flush() {
	if len(s.withheld) > 0 {
		s.publish("end of run")
	}
}

// publish floods the withheld branch oldest-first (parents first, so
// FIFO links deliver the branch in attachable order) and resets it.
func (s *SelfishMiner) publish(why string) {
	note(s.Net, "release", s.P.ID,
		fmt.Sprintf("%d withheld blocks (%s), tip h=%d vs honest h=%d", len(s.withheld), why,
			s.withheld[len(s.withheld)-1].Height, s.honestHeight))
	for _, b := range s.withheld {
		s.P.Publish(b)
	}
	s.Releases++
	s.withheld = s.withheld[:0]
}
