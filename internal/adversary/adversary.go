// Package adversary implements the adversarial strategies that turn the
// consistency checkers into a two-sided instrument. Every simulation the
// repository ran before this package was benign, so the checkers had only
// ever said "holds"; the strategies here drive the existing
// simnet/replica substrate into the executions the paper's hierarchy
// predicts are *impossible* to keep consistent, and the checkers measure
// the violation with a concrete counterexample witness:
//
//   - SelfishMiner: the withhold-and-release attack. A miner keeps its
//     blocks private (replica.Process.Mute) and floods the private chain
//     only when the honest chain threatens to catch up, forcing reorgs —
//     Strong Prefix violations observed by honest reads.
//   - Equivocator: fork flooding / token reuse. A Byzantine process
//     chains several sibling blocks under one parent (reusing the same
//     oracle token name) and floods them all — under a frugal oracle
//     Θ_F,k this is exactly a k-Fork Coherence violation, and under the
//     prodigal oracle it widens the fork window the Eventual/Strong
//     Prefix checkers watch.
//
// Network-level faults (partitions, eclipses, GST shifts) are not
// strategies of a process but of the environment: they live in
// internal/simnet's fault schedules (simnet.Schedule) and compose freely
// with the process-level strategies here via internal/scenario.
package adversary

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/replica"
	"repro/internal/simnet"
)

// Strategy names the process-level adversarial behaviours.
type Strategy string

// The built-in strategies. None is the benign zero value.
const (
	None Strategy = ""
	// Selfish is withhold-and-release selfish mining: mine privately,
	// publish when the honest chain gets within Lead of the private tip.
	Selfish Strategy = "selfish"
	// Withhold is pure block withholding: mine privately and publish
	// only at the end of the run (ReleaseAtEnd), the maximal-reorg
	// variant of Selfish.
	Withhold Strategy = "withhold"
	// Equivocate is fork flooding: every block the adversary produces
	// is accompanied by Forks-1 forged siblings under the same parent
	// carrying the same token name.
	Equivocate Strategy = "equivocate"
)

// Config declares an adversarial strategy for one process of a run. The
// zero value is benign. Protocol simulators that support adversaries
// embed it in their configs; internal/scenario builds it declaratively.
type Config struct {
	Strategy Strategy
	// Proc is the adversarial process id; 0 (the zero value) or an
	// out-of-range id means the last process, N-1. Protocols with a
	// distinguished process-0 role (fabric's orderer) pin the id
	// themselves.
	Proc int
	// Lead is the selfish-mining release threshold: publish the private
	// chain when the honest height reaches privateTip - Lead. 0 means 1
	// (the classic "honest is one behind" trigger).
	Lead int
	// Forks is the equivocation width: total sibling blocks flooded per
	// block-production opportunity. 0 means 2.
	Forks int
	// ReleaseAtEnd flushes any still-withheld private chain after the
	// last round (before the final read batch), turning withholding
	// into a maximal late reorg.
	ReleaseAtEnd bool
}

// Active reports whether an adversarial strategy is configured.
func (c Config) Active() bool { return c.Strategy != None }

// ProcID resolves the adversarial process id for an n-process run.
func (c Config) ProcID(n int) int {
	if c.Proc > 0 && c.Proc < n {
		return c.Proc
	}
	return n - 1
}

// Name renders the strategy for scenario matrices, e.g. "selfish(lead=1)".
func (c Config) Name() string {
	switch c.Strategy {
	case None:
		return "—"
	case Selfish:
		return fmt.Sprintf("selfish(lead=%d)", c.lead())
	case Withhold:
		return "withhold(release-at-end)"
	case Equivocate:
		return fmt.Sprintf("equivocate(forks=%d)", c.forks())
	default:
		return string(c.Strategy)
	}
}

func (c Config) lead() int {
	if c.Lead <= 0 {
		return 1
	}
	return c.Lead
}

func (c Config) forks() int {
	if c.Forks < 2 {
		return 2
	}
	return c.Forks
}

// Mint is the one protocol hook a strategy needs: attempt to produce a
// validated block chained to parent (the oracle lottery — getToken +
// consumeToken), returning nil when the attempt fails. The protocol
// keeps full control of merits, oracles and payloads.
type Mint func(parent *core.Block) *core.Block

// note records a strategy decision on the network's fault log (shown by
// cmd/historyviz and scenario reports).
func note(nw *simnet.Network, kind string, proc int, detail string) {
	nw.NoteFault(simnet.FaultEvent{Time: nw.Sim().Now(), Kind: kind, From: proc, To: -1, Detail: detail})
}

// markFaulty is shared wiring: the adversarial process is Byzantine, so
// its own reads are excluded from the criteria (Definition 4.2) — the
// violations the checkers measure are those inflicted on *correct*
// processes.
func markFaulty(p *replica.Process) {
	p.Rec.MarkFaulty(p.ID)
}
