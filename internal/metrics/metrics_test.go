package metrics

import "testing"

func TestCounterAndVec(t *testing.T) {
	r := New(10)
	c := r.Counter("sends")
	cv := r.CounterVec("orphans", 4)
	c.Inc()
	c.Add(4)
	cv.Inc(0)
	cv.Add(2, 7)
	cv.Inc(2)
	if c.Value() != 5 {
		t.Fatalf("counter = %d, want 5", c.Value())
	}
	if cv.Total() != 9 || cv.Max() != 8 || cv.Value(2) != 8 {
		t.Fatalf("vec total=%d max=%d v2=%d", cv.Total(), cv.Max(), cv.Value(2))
	}
}

func TestHotPathZeroAlloc(t *testing.T) {
	r := New(10)
	c := r.Counter("c")
	cv := r.CounterVec("v", 8)
	if n := testing.AllocsPerRun(1000, func() { c.Inc(); c.Add(3) }); n != 0 {
		t.Fatalf("Counter.Inc/Add allocates: %v allocs/op", n)
	}
	if n := testing.AllocsPerRun(1000, func() { cv.Inc(3); cv.Add(5, 2) }); n != 0 {
		t.Fatalf("CounterVec.Inc/Add allocates: %v allocs/op", n)
	}
	if n := testing.AllocsPerRun(1000, func() { r.Tick(5) }); n != 0 {
		t.Fatalf("Tick with no boundary crossed allocates: %v allocs/op", n)
	}
}

func TestHistogramBuckets(t *testing.T) {
	r := New(10)
	h := r.Histogram("lat", 1, 4, 16)
	for _, v := range []int64{0, 1, 2, 4, 5, 16, 17, 100} {
		h.Observe(v)
	}
	snap := r.Snapshot()
	hs := snap.Hists[0]
	want := []int64{2, 2, 2, 2} // ≤1, ≤4, ≤16, +Inf
	for i, w := range want {
		if hs.Counts[i] != w {
			t.Fatalf("bucket %d = %d, want %d (%v)", i, hs.Counts[i], w, hs.Counts)
		}
	}
	if hs.N != 8 || hs.Sum != 145 {
		t.Fatalf("n=%d sum=%d", hs.N, hs.Sum)
	}
}

func TestTickSamplesBoundaries(t *testing.T) {
	r := New(10)
	depth := int64(0)
	r.Probe("depth", func() int64 { return depth })
	r.Tick(3) // no boundary
	depth = 5
	r.Tick(10) // boundary 10: sampled before the t=10 event runs, sees depth=5
	depth = 9
	r.Tick(35) // boundaries 20 and 30
	rows := r.Rows()
	if len(rows) != 3 {
		t.Fatalf("rows = %d, want 3", len(rows))
	}
	if rows[0].VT != 10 || rows[0].Vals[0] != 5 {
		t.Fatalf("row0 = %+v", rows[0])
	}
	if rows[1].VT != 20 || rows[2].VT != 30 || rows[2].Vals[0] != 9 {
		t.Fatalf("rows = %+v", rows)
	}
}

func TestSnapshotDigestDeterministicAndSectioned(t *testing.T) {
	build := func(timing int64) *Snapshot {
		r := New(5)
		c := r.Counter("a")
		c.Add(3)
		r.CounterVec("b", 2).Inc(1)
		g := int64(7)
		r.Probe("g", func() int64 { return g })
		r.Tick(12)
		r.AddTiming("stallns", timing)
		r.OnSnapshot(func(s *Snapshot) { s.Sharding = &ShardInfo{Shards: int(timing % 7)} })
		return r.Snapshot()
	}
	s1, s2 := build(111), build(99999)
	if s1.Digest() != s2.Digest() {
		t.Fatalf("digest covers Timing/Sharding: %s vs %s", s1.Digest(), s2.Digest())
	}
	// A change in a core counter must change the digest.
	r := New(5)
	r.Counter("a").Add(4)
	if r.Snapshot().Digest() == s1.Digest() {
		t.Fatal("digest insensitive to counter values")
	}
}

func TestSnapshotFinalSampleAndValues(t *testing.T) {
	r := New(10)
	d := int64(2)
	r.Probe("d", func() int64 { return d })
	r.Tick(10)
	d = 6
	now := int64(14)
	r.SetClock(func() int64 { return now })
	s := r.Snapshot()
	if len(s.Series.Rows) != 2 || s.Series.Rows[1].VT != 14 || s.Series.Rows[1].Vals[0] != 6 {
		t.Fatalf("rows = %+v", s.Series.Rows)
	}
	if v, ok := s.Value("d.peak"); !ok || v != 6 {
		t.Fatalf("d.peak = %d ok=%v", v, ok)
	}
	if v, ok := s.Value("d.last"); !ok || v != 6 {
		t.Fatalf("d.last = %d ok=%v", v, ok)
	}
	// No duplicate final row when the clock equals the last boundary.
	s2func := func() *Snapshot {
		r := New(10)
		r.Probe("x", func() int64 { return 1 })
		r.Tick(10)
		r.SetClock(func() int64 { return 10 })
		return r.Snapshot()
	}
	if got := len(s2func().Series.Rows); got != 1 {
		t.Fatalf("duplicate final row: %d", got)
	}
}

func TestFoldStatsAndSummary(t *testing.T) {
	r := New(10)
	r.Counter("x").Add(2)
	s := r.Snapshot()
	s.FoldStats(map[string]int{"zz": 1, "aa": 9})
	if s.Stats[0].Name != "aa" || s.Stats[1].Name != "zz" {
		t.Fatalf("stats not sorted: %+v", s.Stats)
	}
	sum := s.Summary()
	if sum["x"] != 2 || sum["stat:aa"] != 9 {
		t.Fatalf("summary = %+v", sum)
	}
	if v, ok := s.Value("zz"); !ok || v != 1 {
		t.Fatalf("Value(zz) = %d ok=%v", v, ok)
	}
}
