// Package metrics is the deterministic observability layer: counters,
// gauges and histograms sampled against *virtual time*, so that for a
// fixed configuration and seed the full metric stream — every sampled
// series row, every final counter value — is byte-identical across
// runs AND across scheduler shard counts. It is the instrument panel
// of the whole pipeline (simnet, replica, history, consistency,
// btsim), and its hard correctness requirement is digest-neutrality:
// attaching a Registry must not change a single scheduled event, RNG
// draw or recorded history byte.
//
// The determinism argument, instrument by instrument:
//
//   - Counters (and per-process CounterVec slots) are commutative sums.
//     Under the sharded scheduler a slot is mutated only by its owner
//     process (the shard-safety contract of simnet.AddShardSafeHandler),
//     so increments race with nothing and totals are independent of
//     worker interleaving.
//   - Gauges are probe *functions*, evaluated only at sample points.
//     Sample points sit at virtual-time boundaries — "just before the
//     first event with time ≥ boundary executes" — which the serial
//     and sharded schedulers cross at identical event-set states: all
//     events strictly earlier have executed, and every staged side
//     effect of theirs has committed at the merge barrier.
//   - Histograms accumulate bucket counts (commutative sums again); a
//     small mutex makes rare cross-goroutine observations safe without
//     affecting determinism.
//
// Wall-clock measurements (merge-barrier stall time, async queue
// high-water marks) are inherently non-deterministic; they live in the
// Snapshot's Timing section, which — like the shard-count-specific
// Sharding section — is excluded from Snapshot.Digest.
package metrics

import "sync"

// Counter is a monotone (or at least sum-semantics) int64 counter.
// Inc/Add perform one integer addition: no allocation, no lock — safe
// on the hottest paths. Mutate it only from the serial scheduler
// context or from a single owning process (see the package comment).
type Counter struct {
	name string
	v    int64
}

// Inc adds 1.
func (c *Counter) Inc() { c.v++ }

// Add adds d.
func (c *Counter) Add(d int64) { c.v += d }

// Value returns the current value.
func (c *Counter) Value() int64 { return c.v }

// Name returns the registered name.
func (c *Counter) Name() string { return c.name }

// CounterVec is a counter with one slot per process. Under the sharded
// scheduler each slot is mutated only by its owner process's handler,
// so no synchronization is needed and the Total is independent of how
// workers interleaved — the per-process layout is exactly what makes a
// counter shard-safe.
type CounterVec struct {
	name  string
	slots []int64
}

// Inc adds 1 to process p's slot.
func (cv *CounterVec) Inc(p int) { cv.slots[p]++ }

// Add adds d to process p's slot.
func (cv *CounterVec) Add(p int, d int64) { cv.slots[p] += d }

// Total sums every slot.
func (cv *CounterVec) Total() int64 {
	var t int64
	for _, v := range cv.slots {
		t += v
	}
	return t
}

// Max returns the largest slot value.
func (cv *CounterVec) Max() int64 {
	var m int64
	for _, v := range cv.slots {
		if v > m {
			m = v
		}
	}
	return m
}

// Value returns process p's slot.
func (cv *CounterVec) Value(p int) int64 { return cv.slots[p] }

// Histogram counts observations into fixed buckets (upper bounds,
// ascending; one implicit +Inf bucket). Observations are rare events
// (witness latencies, batch sizes), so a mutex is affordable; bucket
// sums commute, keeping the final counts deterministic regardless of
// observation interleaving.
type Histogram struct {
	mu     sync.Mutex
	name   string
	bounds []int64
	counts []int64 // len(bounds)+1; last is +Inf
	n, sum int64
}

// Observe files v into its bucket.
func (h *Histogram) Observe(v int64) {
	h.mu.Lock()
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i]++
	h.n++
	h.sum += v
	h.mu.Unlock()
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.n
}

// probe is one registered gauge: a named function evaluated at sample
// points (serial coordinator context only).
type probe struct {
	name string
	fn   func() int64
}

// Row is one sampled series row: the probe values at virtual time VT.
type Row struct {
	VT   int64   `json:"vt"`
	Vals []int64 `json:"vals"`
}

// Registry is one run's instrument registry plus its virtual-time
// sampler. Create it with New, hand it to the layers to register their
// instruments (registration order is fixed by the wiring code, so the
// series schema is deterministic), let the scheduler drive Tick, and
// call Snapshot once after the run.
type Registry struct {
	every      int64
	nextSample int64
	counters   []*Counter
	vecs       []*CounterVec
	hists      []*Histogram
	probes     []probe
	rows       []Row
	clock      func() int64
	timing     []NamedValue
	onSnap     []func(*Snapshot)
}

// DefaultSampleEvery is the sampling interval used when none is given.
const DefaultSampleEvery = 16

// New creates a registry sampling every `every` virtual-time units
// (≤ 0 means DefaultSampleEvery). The first sample boundary is at
// virtual time `every` — time 0 would sample all-zero state.
func New(every int64) *Registry {
	if every <= 0 {
		every = DefaultSampleEvery
	}
	return &Registry{every: every, nextSample: every}
}

// SampleEvery reports the sampling interval.
func (r *Registry) SampleEvery() int64 { return r.every }

// Counter registers a named counter.
func (r *Registry) Counter(name string) *Counter {
	c := &Counter{name: name}
	r.counters = append(r.counters, c)
	return c
}

// CounterVec registers a named per-process counter with n slots.
func (r *Registry) CounterVec(name string, n int) *CounterVec {
	cv := &CounterVec{name: name, slots: make([]int64, n)}
	r.vecs = append(r.vecs, cv)
	return cv
}

// Histogram registers a named histogram with the given ascending
// bucket upper bounds (an implicit +Inf bucket is appended).
func (r *Registry) Histogram(name string, bounds ...int64) *Histogram {
	h := &Histogram{name: name, bounds: bounds, counts: make([]int64, len(bounds)+1)}
	r.hists = append(r.hists, h)
	return h
}

// Probe registers a named gauge: fn is evaluated at every sample point
// (serial scheduler context — it may read state the parallel phase
// owns, because no worker runs at a sample point) and its final value
// is folded into the snapshot's Counters section. Registration order
// defines the series column order, so wire probes in a fixed order.
func (r *Registry) Probe(name string, fn func() int64) {
	r.probes = append(r.probes, probe{name: name, fn: fn})
}

// SetClock attaches the virtual clock used to stamp the final sample
// at Snapshot time (simnet.Sim.SetMetrics wires Sim.Now).
func (r *Registry) SetClock(clock func() int64) { r.clock = clock }

// Tick advances the sampler: next is the virtual time of the next
// event about to execute. Every boundary ≤ next that has not been
// sampled yet is sampled now — i.e. with the state "after all events
// strictly before the boundary's crossing event", which is the same
// state in serial and sharded execution. The common case (no boundary
// crossed) is a single comparison, keeping the hot loop unharmed.
func (r *Registry) Tick(next int64) {
	for r.nextSample <= next {
		r.sampleRow(r.nextSample)
		r.nextSample += r.every
	}
}

// Sample forces a sample row at the given virtual time (the final
// partial-interval sample Snapshot takes).
func (r *Registry) Sample(vt int64) { r.sampleRow(vt) }

func (r *Registry) sampleRow(vt int64) {
	if len(r.probes) == 0 {
		return
	}
	vals := make([]int64, len(r.probes))
	for i := range r.probes {
		vals[i] = r.probes[i].fn()
	}
	r.rows = append(r.rows, Row{VT: vt, Vals: vals})
}

// Rows returns the sampled series rows so far.
func (r *Registry) Rows() []Row { return r.rows }

// AddTiming accumulates a named wall-clock measurement (nanoseconds,
// queue depths — anything non-deterministic). Timing entries land in
// the snapshot's Timing section, excluded from the digest.
func (r *Registry) AddTiming(name string, v int64) {
	for i := range r.timing {
		if r.timing[i].Name == name {
			r.timing[i].Value += v
			return
		}
	}
	r.timing = append(r.timing, NamedValue{Name: name, Value: v})
}

// SetTiming sets a named wall-clock measurement, replacing any
// accumulated value.
func (r *Registry) SetTiming(name string, v int64) {
	for i := range r.timing {
		if r.timing[i].Name == name {
			r.timing[i].Value = v
			return
		}
	}
	r.timing = append(r.timing, NamedValue{Name: name, Value: v})
}

// OnSnapshot registers a hook run while Snapshot assembles (the sharded
// scheduler fills the Sharding section here).
func (r *Registry) OnSnapshot(fn func(*Snapshot)) {
	r.onSnap = append(r.onSnap, fn)
}
