package metrics

import (
	"fmt"
	"hash"
	"hash/fnv"
	"math"
	"sort"
)

// NamedValue is one (name, value) pair in a snapshot section.
type NamedValue struct {
	Name  string `json:"name"`
	Value int64  `json:"value"`
}

// HistSnapshot is a histogram's frozen state: cumulative-style bucket
// counts per upper bound, plus an implicit +Inf bucket at the end.
type HistSnapshot struct {
	Name   string  `json:"name"`
	Bounds []int64 `json:"bounds"`
	Counts []int64 `json:"counts"` // len(Bounds)+1
	N      int64   `json:"n"`
	Sum    int64   `json:"sum"`
}

// Quantile estimates the q-th quantile at bucket resolution: the upper
// bound of the first bucket at which the cumulative count reaches
// q·N. Observations in the +Inf overflow bucket report the largest
// finite bound (the best available lower estimate). q is clamped to
// [0, 1]; an empty histogram reports 0.
func (hs *HistSnapshot) Quantile(q float64) int64 {
	if hs.N == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := int64(math.Ceil(q * float64(hs.N)))
	if rank < 1 {
		rank = 1
	}
	var cum int64
	for i, c := range hs.Counts {
		cum += c
		if cum >= rank {
			if i < len(hs.Bounds) {
				return hs.Bounds[i]
			}
			break
		}
	}
	if len(hs.Bounds) > 0 {
		return hs.Bounds[len(hs.Bounds)-1]
	}
	return hs.Sum / hs.N
}

// Mean returns the average observation (0 when empty).
func (hs *HistSnapshot) Mean() int64 {
	if hs.N == 0 {
		return 0
	}
	return hs.Sum / hs.N
}

// Series is the sampled gauge table: one column per probe, one row per
// virtual-time sample boundary.
type Series struct {
	SampleEvery int64    `json:"sampleEvery"`
	Cols        []string `json:"cols"`
	Rows        []Row    `json:"rows"`
}

// ShardInfo describes the sharded scheduler's run shape. It is
// k-specific by nature, so it is excluded from the snapshot digest.
type ShardInfo struct {
	Shards    int     `json:"shards"`
	Batches   int64   `json:"batches"`
	Delivered []int64 `json:"delivered"` // per-shard staged deliveries
}

// Snapshot is a run's frozen metric state, split into a deterministic
// core (Counters, Hists, Series, Stats — identical across runs and
// shard counts; covered by Digest) and two excluded sections: Sharding
// (shape of the k-way split) and Timing (wall-clock measurements).
type Snapshot struct {
	Counters []NamedValue   `json:"counters"`
	Hists    []HistSnapshot `json:"hists,omitempty"`
	Series   Series         `json:"series"`
	Stats    []NamedValue   `json:"stats,omitempty"`
	Sharding *ShardInfo     `json:"sharding,omitempty"`
	Timing   []NamedValue   `json:"timing,omitempty"`
}

// Snapshot freezes the registry: takes a final sample at the current
// virtual time (if a clock is attached and the last row is older),
// folds counters, vec totals/maxima and final probe values into the
// Counters section sorted by name, and runs OnSnapshot hooks.
func (r *Registry) Snapshot() *Snapshot {
	if r.clock != nil {
		now := r.clock()
		if n := len(r.rows); n == 0 || r.rows[n-1].VT < now {
			r.sampleRow(now)
		}
	}
	s := &Snapshot{Timing: r.timing}
	for _, c := range r.counters {
		s.Counters = append(s.Counters, NamedValue{Name: c.name, Value: c.v})
	}
	for _, cv := range r.vecs {
		s.Counters = append(s.Counters,
			NamedValue{Name: cv.name, Value: cv.Total()},
			NamedValue{Name: cv.name + ".max", Value: cv.Max()})
	}
	for i := range r.probes {
		var last int64
		if n := len(r.rows); n > 0 {
			last = r.rows[n-1].Vals[i]
		} else {
			last = r.probes[i].fn()
		}
		s.Counters = append(s.Counters, NamedValue{Name: r.probes[i].name + ".last", Value: last})
		var peak int64
		for _, row := range r.rows {
			if row.Vals[i] > peak {
				peak = row.Vals[i]
			}
		}
		s.Counters = append(s.Counters, NamedValue{Name: r.probes[i].name + ".peak", Value: peak})
	}
	sort.Slice(s.Counters, func(i, j int) bool { return s.Counters[i].Name < s.Counters[j].Name })
	for _, h := range r.hists {
		h.mu.Lock()
		hs := HistSnapshot{
			Name:   h.name,
			Bounds: append([]int64(nil), h.bounds...),
			Counts: append([]int64(nil), h.counts...),
			N:      h.n,
			Sum:    h.sum,
		}
		h.mu.Unlock()
		s.Hists = append(s.Hists, hs)
	}
	sort.Slice(s.Hists, func(i, j int) bool { return s.Hists[i].Name < s.Hists[j].Name })
	s.Series.SampleEvery = r.every
	for _, p := range r.probes {
		s.Series.Cols = append(s.Series.Cols, p.name)
	}
	s.Series.Rows = r.rows
	for _, fn := range r.onSnap {
		fn(s)
	}
	return s
}

// FoldStats merges a legacy string→int stats map into the Stats
// section, sorted by key so the fold is deterministic.
func (s *Snapshot) FoldStats(stats map[string]int) {
	keys := make([]string, 0, len(stats))
	for k := range stats {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		s.Stats = append(s.Stats, NamedValue{Name: k, Value: int64(stats[k])})
	}
}

// Value looks up a counter (or stats entry) by name; ok reports
// whether it exists.
func (s *Snapshot) Value(name string) (int64, bool) {
	for _, nv := range s.Counters {
		if nv.Name == name {
			return nv.Value, true
		}
	}
	for _, nv := range s.Stats {
		if nv.Name == name {
			return nv.Value, true
		}
	}
	return 0, false
}

// DigestInto folds the deterministic core sections — Counters, Hists,
// Series, Stats — into h. Sharding and Timing are deliberately
// excluded: the former differs across shard counts, the latter across
// machines. Everything folded here must be byte-identical for the same
// (config, seed) regardless of k.
func (s *Snapshot) DigestInto(h hash.Hash) {
	for _, nv := range s.Counters {
		fmt.Fprintf(h, "C%s=%d;", nv.Name, nv.Value)
	}
	for _, hs := range s.Hists {
		fmt.Fprintf(h, "H%s b=%v c=%v n=%d s=%d;", hs.Name, hs.Bounds, hs.Counts, hs.N, hs.Sum)
	}
	fmt.Fprintf(h, "S every=%d cols=%v;", s.Series.SampleEvery, s.Series.Cols)
	for _, row := range s.Series.Rows {
		fmt.Fprintf(h, "R%d=%v;", row.VT, row.Vals)
	}
	for _, nv := range s.Stats {
		fmt.Fprintf(h, "T%s=%d;", nv.Name, nv.Value)
	}
}

// Digest returns the fnv64a digest of the deterministic core.
func (s *Snapshot) Digest() string {
	h := fnv.New64a()
	s.DigestInto(h)
	return fmt.Sprintf("%016x", h.Sum64())
}

// Summary flattens the snapshot into a map for embedding in bench
// JSON: counters and stats by name, series peaks as "peak:<col>", and
// timing entries as "timing:<name>".
func (s *Snapshot) Summary() map[string]int64 {
	out := make(map[string]int64, len(s.Counters)+len(s.Stats)+len(s.Timing))
	for _, nv := range s.Counters {
		out[nv.Name] = nv.Value
	}
	for _, nv := range s.Stats {
		out["stat:"+nv.Name] = nv.Value
	}
	for _, nv := range s.Timing {
		out["timing:"+nv.Name] = nv.Value
	}
	for _, hs := range s.Hists {
		out["hist:"+hs.Name+".n"] = hs.N
		out["hist:"+hs.Name+".sum"] = hs.Sum
	}
	return out
}
