// The streaming side of the tracked suite: the same workloads as the
// batch cases, checked by the online consistency monitor instead of a
// post-hoc Classify. Paired batch/-stream entries let cmd/bench report
// the record→check refactor's trade on identical executions — wall time
// and peak resident memory — and the LongRun pair is the ≥1M-operation
// workload behind DESIGN.md ablation #10: at that scale the batch path
// must hold the entire history, while the streaming path's resident
// state is bounded by the block tree and the monitor's window.
package benchsuite

import (
	"fmt"
	"testing"

	"repro/btsim"
	_ "repro/btsim/systems" // register "fabric" for the LongRun cases
	"repro/internal/consistency"
	"repro/internal/core"
	"repro/internal/history"
)

// RunSimScaleStream executes the benign SimScale workload through the
// streaming path: a segmented sink feeds the online monitor, the
// recorder runs in drop mode (no retained history), and the verdicts
// come from Finalize. The segment/monitor work runs off the recording
// hot loop through an AsyncSink — the recorder's critical section ends
// at the enqueue, and the single consumer goroutine preserves recording
// order, so the verdicts are identical to synchronous delivery. For a
// fixed config the ScaleStats equal RunSimScale's exactly — the
// determinism suite pins this.
func RunSimScaleStream(cfg ScaleConfig) ScaleStats {
	cfg.normalize()
	sim, g := benignGroup(cfg)

	mon := consistency.NewMonitor(consistency.MonitorConfig{
		Procs: cfg.N,
		Score: core.LengthScore{},
		P:     core.WellFormed{},
		Table: g.Rec.Table(),
	})
	seg := history.NewSegmentSink(0, mon.ConsumeSegment)
	seg.OnFaulty = mon.Faulty
	async := history.NewAsyncSink(seg, 0)
	g.Rec.SetSink(async)
	g.Rec.SetRetain(false)

	runBenignWorkload(sim, g, cfg)

	if err := async.Drain(); err != nil {
		panic(err) // a panicking monitor invalidates the whole streamed run
	}
	seg.Seal()
	for _, op := range g.Rec.PendingOps() {
		mon.OpPending(op)
	}
	sc, ec := mon.Finalize()
	st := mon.Stats()

	return ScaleStats{
		Blocks:    g.Procs[0].Tree().Len() - 1,
		Reads:     st.Reads,
		CommEvts:  st.Comm,
		MaxHeight: g.Procs[0].Tree().Height(),
		SCOK:      sc.OK,
		ECOK:      ec.OK,
	}
}

// scaleStreamCase wraps one streaming SimScale config. Like scaleCase
// it must satisfy EC and attach every block; additionally the recorder
// retained nothing, so passing at all means the monitor alone carried
// the verdict.
func scaleStreamCase(cfg ScaleConfig) Case {
	name := fmt.Sprintf("SimScale/N%d-b%d-stream", cfg.N, cfg.Blocks)
	run := func() error {
		st := RunSimScaleStream(cfg)
		if !st.ECOK {
			return fmt.Errorf("%s: EC violated on a lossless synchronous run", name)
		}
		if st.Blocks != cfg.Blocks {
			return fmt.Errorf("%s: %d blocks attached, want %d", name, st.Blocks, cfg.Blocks)
		}
		return nil
	}
	return Case{Name: name, Run: run, Bench: func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if err := run(); err != nil {
				b.Fatal(err)
			}
		}
	}}
}

// longRunN/longRunRounds pin the ≥1M-op workload: fabric at N=48 with
// reads every virtual-time unit records ~1.16M operations in 8000
// rounds (op count scales with N × virtual time; simulator wall time is
// superlinear in rounds, so the scale lives in N).
const (
	longRunN      = 48
	longRunRounds = 8000
	longRunSeed   = 2026
	longRunMinOps = 1_000_000
)

// RunLongRun executes the fabric long-run workload through either
// path. Batch retains the full history and classifies it post hoc;
// stream checks online in drop mode. Ops counts the recorded
// operations, Segments the sealed segments (0 for batch).
func RunLongRun(stream bool) (ops, segments int, scOK, ecOK bool, err error) {
	opts := []btsim.Option{
		btsim.WithN(longRunN),
		btsim.WithRounds(longRunRounds),
		btsim.WithSeed(longRunSeed),
		btsim.WithReadEvery(1),
	}
	if stream {
		opts = append(opts, btsim.WithStreaming(0))
	}
	res, err := btsim.Run("fabric", opts...)
	if err != nil {
		return 0, 0, false, false, err
	}
	if stream {
		st := res.Stream
		return st.Ops, st.Segments, st.SC.OK, st.EC.OK, nil
	}
	sc, ec := res.Check()
	return len(res.History.Ops), 0, sc.OK, ec.OK, nil
}

// longRunCase wraps one side of the long-run pair. Both sides are
// benign fabric, so both criteria must hold, and the run must actually
// reach the ≥1M-op scale the ablation claims.
func longRunCase(stream bool) Case {
	name := fmt.Sprintf("LongRun/fabric-n%d-r%d", longRunN, longRunRounds)
	if stream {
		name += "-stream"
	}
	run := func() error {
		ops, segments, scOK, ecOK, err := RunLongRun(stream)
		if err != nil {
			return fmt.Errorf("%s: %w", name, err)
		}
		if !scOK || !ecOK {
			return fmt.Errorf("%s: verdicts SC=%v EC=%v on a benign fabric run", name, scOK, ecOK)
		}
		if ops < longRunMinOps {
			return fmt.Errorf("%s: only %d ops recorded, want ≥ %d", name, ops, longRunMinOps)
		}
		if stream && segments < 2 {
			return fmt.Errorf("%s: only %d segments sealed", name, segments)
		}
		return nil
	}
	return Case{Name: name, Run: run, Bench: func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if err := run(); err != nil {
				b.Fatal(err)
			}
		}
	}}
}
