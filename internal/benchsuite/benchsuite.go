// Package benchsuite defines the repository's tracked benchmark suite:
// the large-scale simulation→history→checker pipeline workloads whose
// trajectory is recorded in BENCH_<date>.json snapshots (see cmd/bench)
// and wrapped as ordinary testing benchmarks in the root bench_test.go.
//
// The headline workload, SimScale, drives the whole pipeline the way the
// protocol simulators do: N replicas over a FIFO synchronous simnet,
// one mined block per tick flooded to every replica, periodic read()
// batches at every process, and a full consistency Classify over the
// recorded history. It is the workload behind DESIGN.md ablations #6
// (closure-heap vs. flat-heap scheduler), #7 (copied vs. interned
// chain reads) and #12 (single-heap vs. sharded scheduler: the -s<k>
// cases run the identical workload — digest-pinned — on the sharded
// engine; see SCALING.md).
package benchsuite

import (
	"fmt"
	"testing"

	"repro/internal/adversary"
	"repro/internal/consistency"
	"repro/internal/core"
	"repro/internal/protocols"
	"repro/internal/replica"
	"repro/internal/simnet"
)

// ScaleConfig parameterizes one SimScale pipeline run.
type ScaleConfig struct {
	// N is the number of replicas.
	N int
	// Blocks is the number of mined blocks (one per virtual tick,
	// miner chosen round-robin; each block floods to all N replicas).
	Blocks int
	// ReadEvery schedules a read() at every process each ReadEvery
	// ticks; 0 means Blocks/8 (eight read batches per run).
	ReadEvery int64
	// Seed drives the delivery-delay randomness.
	Seed uint64
	// Shards runs the workload on the sharded deterministic scheduler
	// (0 or 1 = serial). Stats are shard-count-independent by the
	// determinism spec; the -s<k> suite entries and the CI smoke pin
	// that at scale.
	Shards int
}

// ScaleStats summarizes one SimScale run (used by sanity checks and the
// determinism pinning test).
type ScaleStats struct {
	Blocks    int  // blocks attached at replica 0
	Reads     int  // completed reads of correct processes
	CommEvts  int  // recorded send/receive/update events
	MaxHeight int  // height of replica 0's tree
	SCOK      bool // Strong Consistency verdict
	ECOK      bool // Eventual Consistency verdict
}

// normalize fills the config defaults in place.
func (cfg *ScaleConfig) normalize() {
	if cfg.ReadEvery <= 0 {
		cfg.ReadEvery = int64(cfg.Blocks / 8)
		if cfg.ReadEvery < 1 {
			cfg.ReadEvery = 1
		}
	}
}

// benignGroup builds the simulator and replica group every SimScale
// variant shares: FIFO synchronous flooding, longest-chain selection,
// well-formedness predicate.
func benignGroup(cfg ScaleConfig) (*simnet.Sim, *replica.Group) {
	sim := simnet.NewSim(cfg.Seed)
	g := replica.NewGroup(sim, cfg.N, simnet.Synchronous{Delta: 3}, core.LongestChain{})
	g.Net.SetFIFO(true)
	g.SetPredicate(core.WellFormed{})
	if cfg.Shards > 1 {
		g.EnableSharding(cfg.Shards)
	}
	return sim, g
}

// runBenignWorkload schedules and runs the benign SimScale workload:
// mining one block per tick (miner round-robin, extending its local
// selected head — which can lag in-flight deliveries by up to δ ticks,
// giving natural short-lived forks as in the PoW simulators), periodic
// read batches at every process, and a post-convergence read batch (the
// liveness tail window).
func runBenignWorkload(sim *simnet.Sim, g *replica.Group, cfg ScaleConfig) {
	for r := 0; r < cfg.Blocks; r++ {
		r := r
		p := g.Procs[r%cfg.N]
		sim.Schedule(int64(r+1), func() {
			head := p.SelectedHead()
			blk := core.NewBlock(head.ID, head.Height+1, p.ID, r, protocols.CoinbasePayload(p.ID, r))
			p.AppendLocal(blk)
		})
	}
	for t := cfg.ReadEvery; t <= int64(cfg.Blocks); t += cfg.ReadEvery {
		tt := t
		sim.Schedule(tt, func() {
			for _, pr := range g.Procs {
				pr.Read()
			}
		})
	}
	sim.RunUntilIdle()
	for _, pr := range g.Procs {
		pr.Read()
	}
}

// collectStats classifies the recorded history and summarizes the run.
func collectStats(g *replica.Group) ScaleStats {
	h := g.History()
	chk := consistency.NewChecker(core.LengthScore{}, core.WellFormed{})
	sc, ec := chk.Classify(h)
	return ScaleStats{
		Blocks:    g.Procs[0].Tree().Len() - 1,
		Reads:     len(h.Reads()),
		CommEvts:  len(h.Comm),
		MaxHeight: g.Procs[0].Tree().Height(),
		SCOK:      sc.OK,
		ECOK:      ec.OK,
	}
}

// RunSimScale executes the full pipeline once: simulate, record, check.
// The workload is deterministic for a fixed config.
func RunSimScale(cfg ScaleConfig) ScaleStats {
	cfg.normalize()
	sim, g := benignGroup(cfg)
	runBenignWorkload(sim, g, cfg)
	return collectStats(g)
}

// RunSimScaleAdversarial executes the attack-scenario variant of the
// pipeline workload: the same mining/flooding/reading shape as
// RunSimScale plus two healed partition windows (messages queue across
// the cut and flush on heal) and an equivocating replica that floods a
// forged sibling for every block it mines. It prices the adversarial
// pipeline — fault-schedule routing on every send, fork-heavy trees,
// violation-bearing checker runs — against the benign baseline
// (DESIGN.md ablation #8).
func RunSimScaleAdversarial(cfg ScaleConfig) ScaleStats {
	cfg.normalize()
	sim, g := benignGroup(cfg)

	// Two split-brain windows, each a quarter of the run long, both
	// healed well before the end so the final reads can converge.
	quarter := int64(cfg.Blocks / 4)
	if quarter < 8 {
		quarter = 8
	}
	var left []int
	for p := 0; p < cfg.N/2; p++ {
		left = append(left, p)
	}
	g.Net.SetSchedule(simnet.NewSchedule(
		simnet.SplitWindow(quarter/2, quarter, cfg.N, left),
		simnet.SplitWindow(2*quarter, 2*quarter+quarter/2, cfg.N, left),
	))
	adv := adversary.NewEquivocator(g.Procs[cfg.N-1], g.Net, adversary.Config{Strategy: adversary.Equivocate, Forks: 2})

	for r := 0; r < cfg.Blocks; r++ {
		r := r
		p := g.Procs[r%cfg.N]
		sim.Schedule(int64(r+1), func() {
			head := p.SelectedHead()
			blk := core.NewBlock(head.ID, head.Height+1, p.ID, r, protocols.CoinbasePayload(p.ID, r))
			if p == adv.P {
				adv.FloodSiblings(blk)
			} else {
				p.AppendLocal(blk)
			}
		})
	}
	for t := cfg.ReadEvery; t <= int64(cfg.Blocks); t += cfg.ReadEvery {
		tt := t
		sim.Schedule(tt, func() {
			for _, pr := range g.Procs {
				pr.Read()
			}
		})
	}
	sim.RunUntilIdle()
	// Two post-convergence read batches (as the protocol runs do): the
	// equivocator's reads are excluded as faulty, so a single batch
	// would leave room in the liveness tail window for a pre-heal read.
	for _, pr := range g.Procs {
		pr.Read()
	}
	for _, pr := range g.Procs {
		pr.Read()
	}
	return collectStats(g)
}

// Case is one tracked benchmark: Run executes one self-verifying
// iteration (cmd/bench times it directly), Bench is the testing.B
// wrapper for `go test -bench`.
type Case struct {
	Name  string
	Run   func() error
	Bench func(b *testing.B)
	// Shards is the scheduler shard count the case runs under (0 or 1 =
	// serial); cmd/bench stamps it into the BENCH_<date>.json entries.
	Shards int
	// Metrics, on instrumented (-met) cases, returns the last run's
	// metric summary (counters, stats, timings) for cmd/bench to embed
	// in the snapshot entry. Nil on bare cases.
	Metrics func() map[string]int64
}

// benchWrap lifts a self-verifying Run into a testing.B loop.
func benchWrap(run func() error) func(b *testing.B) {
	return func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if err := run(); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// scaleCase wraps one SimScale config as a benchmark case. A lossless
// synchronous flood with post-convergence reads must satisfy EC; the
// case fails if it does not, so the suite doubles as a correctness
// check at scale.
func scaleCase(cfg ScaleConfig) Case {
	name := fmt.Sprintf("SimScale/N%d-b%d", cfg.N, cfg.Blocks)
	if cfg.Shards > 1 {
		name += fmt.Sprintf("-s%d", cfg.Shards)
	}
	run := func() error {
		st := RunSimScale(cfg)
		if !st.ECOK {
			return fmt.Errorf("%s: EC violated on a lossless synchronous run", name)
		}
		if st.Blocks != cfg.Blocks {
			return fmt.Errorf("%s: %d blocks attached, want %d", name, st.Blocks, cfg.Blocks)
		}
		return nil
	}
	return Case{Name: name, Shards: cfg.Shards, Run: run, Bench: benchWrap(run)}
}

// scaleAdvCase wraps one adversarial SimScale config. The partitions
// and the equivocator guarantee measured Strong Prefix violations (the
// case fails if the checker still says SC holds — the adversarial
// pipeline must witness the attack), while the healed cuts and the
// post-convergence reads keep EC intact.
func scaleAdvCase(cfg ScaleConfig) Case {
	name := fmt.Sprintf("SimScale/N%d-b%d-adv", cfg.N, cfg.Blocks)
	if cfg.Shards > 1 {
		name += fmt.Sprintf("-s%d", cfg.Shards)
	}
	run := func() error {
		st := RunSimScaleAdversarial(cfg)
		if st.SCOK {
			return fmt.Errorf("%s: SC held — the attack went unmeasured", name)
		}
		if !st.ECOK {
			return fmt.Errorf("%s: EC violated despite healed partitions", name)
		}
		if st.Blocks < cfg.Blocks {
			return fmt.Errorf("%s: only %d blocks attached at replica 0, want ≥ %d", name, st.Blocks, cfg.Blocks)
		}
		return nil
	}
	return Case{Name: name, Shards: cfg.Shards, Run: run, Bench: benchWrap(run)}
}

// Cases returns the tracked suite, smallest first. All entries are
// deterministic and self-verifying; the -adv entries track the
// attack-scenario pipeline cost alongside the benign runs, and the
// -stream entries run the identical workload through the online monitor
// (segmented, drop mode) so cmd/bench can price batch vs. streaming —
// wall time and peak memory — on the same executions. The LongRun pair
// is the ≥1M-op workload of DESIGN.md ablation #10.
func Cases() []Case {
	return []Case{
		scaleCase(ScaleConfig{N: 16, Blocks: 5_000, Seed: 42}),
		scaleAdvCase(ScaleConfig{N: 16, Blocks: 5_000, Seed: 42}),
		scaleCase(ScaleConfig{N: 64, Blocks: 5_000, Seed: 42}),
		scaleMetCase(ScaleConfig{N: 64, Blocks: 5_000, Seed: 42}),
		scaleAdvCase(ScaleConfig{N: 64, Blocks: 5_000, Seed: 42}),
		scaleCase(ScaleConfig{N: 128, Blocks: 5_000, Seed: 42}),
		scaleCase(ScaleConfig{N: 128, Blocks: 5_000, Seed: 42, Shards: 4}),
		scaleCase(ScaleConfig{N: 64, Blocks: 20_000, Seed: 42}),
		scaleStreamCase(ScaleConfig{N: 64, Blocks: 20_000, Seed: 42}),
		scaleCase(ScaleConfig{N: 256, Blocks: 2_500, Seed: 42}),
		scaleAdvCase(ScaleConfig{N: 256, Blocks: 2_500, Seed: 42}),
		scaleCase(ScaleConfig{N: 256, Blocks: 2_500, Seed: 42, Shards: 4}),
		scaleMetCase(ScaleConfig{N: 256, Blocks: 2_500, Seed: 42, Shards: 4}),
		scaleCase(ScaleConfig{N: 1024, Blocks: 1_200, Seed: 42}),
		scaleAdvCase(ScaleConfig{N: 1024, Blocks: 1_200, Seed: 42}),
		scaleCase(ScaleConfig{N: 1024, Blocks: 1_200, Seed: 42, Shards: 8}),
		scaleAdvCase(ScaleConfig{N: 1024, Blocks: 1_200, Seed: 42, Shards: 8}),
		longRunCase(false),
		longRunCase(true),
	}
}
