package benchsuite

import (
	"fmt"

	"repro/internal/metrics"
)

// RunSimScaleMetered executes the benign SimScale pipeline with the
// deterministic metrics layer attached — the instrumented twin of
// RunSimScale. The returned stats must be identical to the bare run's
// (metrics are read-only with respect to the simulation; DESIGN.md
// ablation #13 prices the difference in wall time), and the snapshot
// carries the sampled scheduler/network/replica/history series.
func RunSimScaleMetered(cfg ScaleConfig) (ScaleStats, *metrics.Snapshot) {
	cfg.normalize()
	sim, g := benignGroup(cfg)

	// ~64 sample rows per run regardless of horizon, so snapshot size
	// does not scale with Blocks.
	every := int64(cfg.Blocks) / 64
	if every < 1 {
		every = 1
	}
	reg := metrics.New(every)
	sim.SetMetrics(reg)
	g.Net.RegisterMetrics(reg)
	g.RegisterMetrics(reg)
	g.Rec.RegisterMetrics(reg)

	runBenignWorkload(sim, g, cfg)
	st := collectStats(g)
	return st, reg.Snapshot()
}

// scaleMetCase wraps one metered SimScale config: the workload and the
// self-checks of scaleCase, plus a metric snapshot cmd/bench embeds in
// the BENCH_<date>.json entry. The bare sibling of the same config
// gives the instrumented-vs-bare overhead pair -compare renders.
func scaleMetCase(cfg ScaleConfig) Case {
	name := fmt.Sprintf("SimScale/N%d-b%d", cfg.N, cfg.Blocks)
	if cfg.Shards > 1 {
		name += fmt.Sprintf("-s%d", cfg.Shards)
	}
	name += "-met"
	var last *metrics.Snapshot
	run := func() error {
		st, snap := RunSimScaleMetered(cfg)
		last = snap
		if !st.ECOK {
			return fmt.Errorf("%s: EC violated on a lossless synchronous run", name)
		}
		if st.Blocks != cfg.Blocks {
			return fmt.Errorf("%s: %d blocks attached, want %d", name, st.Blocks, cfg.Blocks)
		}
		// Metered == bare stats is pinned by the root determinism test,
		// not re-verified here: the -met entry's wall time must price
		// only the instrumented run for the overhead comparison.
		return nil
	}
	return Case{
		Name: name, Shards: cfg.Shards, Run: run,
		Metrics: func() map[string]int64 {
			if last == nil {
				return nil
			}
			return last.Summary()
		},
		Bench: benchWrap(run),
	}
}
