package scenario

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/consistency"
)

// outcomeText flattens everything an Outcome derives from the verdicts:
// digest, violated set, and the full per-report detail including
// witness op renderings — the byte-equivalence surface of the
// streaming-vs-batch acceptance criterion.
func outcomeText(o *Outcome) string {
	var b strings.Builder
	fmt.Fprintf(&b, "digest=%s violated=%v\n", o.Digest, o.Violated)
	dump := func(v *consistency.Verdict) {
		fmt.Fprintf(&b, "%s ok=%v failing=%v\n", v.Criterion, v.OK, v.Failing())
		for _, rep := range v.Reports {
			fmt.Fprintf(&b, "%s ok=%v checked=%d\n", rep.Property, rep.OK, rep.Checked)
			for _, viol := range rep.Violations {
				fmt.Fprintf(&b, "V %s\n", viol)
			}
			for _, w := range rep.Witnesses {
				fmt.Fprintf(&b, "W %s |", w.Detail)
				for _, op := range w.Ops {
					fmt.Fprintf(&b, " %s", op)
				}
				for _, id := range w.Blocks {
					fmt.Fprintf(&b, " %s", id.Short())
				}
				b.WriteString("\n")
			}
		}
	}
	dump(o.SC)
	dump(o.EC)
	if o.KFork != nil {
		fmt.Fprintf(&b, "kfork ok=%v checked=%d viol=%v\n", o.KFork.OK, o.KFork.Checked, o.KFork.Violations)
	}
	return b.String()
}

// TestStreamingMatchesBatchCatalogue is the acceptance diff test: every
// pinned scenario run twice — batch Classify vs. online monitor — must
// produce byte-identical outcomes (digest, verdicts, violations,
// witnesses).
func TestStreamingMatchesBatchCatalogue(t *testing.T) {
	for _, spec := range Catalogue() {
		spec := spec
		t.Run(spec.Name, func(t *testing.T) {
			t.Parallel()
			batch, err := spec.Run(0)
			if err != nil {
				t.Fatal(err)
			}
			stream, err := spec.RunStream(0)
			if err != nil {
				t.Fatal(err)
			}
			want, got := outcomeText(batch), outcomeText(stream)
			if got != want {
				t.Errorf("streaming outcome differs from batch:\n--- batch ---\n%s--- stream ---\n%s", want, got)
			}
		})
	}
}

// TestCheckpointedStreamingMatchesBatchCatalogue is the restart-safety
// acceptance diff: every pinned scenario re-run with the online monitor
// checkpoint-cycled every 64 operations (serialize → restore →
// continue) must still produce the byte-identical outcome — digest,
// verdicts, violations, witnesses — proving a crashed-and-recovered
// monitor is indistinguishable from one that never went down.
func TestCheckpointedStreamingMatchesBatchCatalogue(t *testing.T) {
	for _, spec := range Catalogue() {
		spec := spec
		t.Run(spec.Name, func(t *testing.T) {
			t.Parallel()
			batch, err := spec.Run(0)
			if err != nil {
				t.Fatal(err)
			}
			spec.CheckpointEvery = 64
			stream, err := spec.RunStream(0)
			if err != nil {
				t.Fatal(err)
			}
			so := stream.Res.Stream
			if so.CheckpointErr != nil {
				t.Fatalf("checkpoint cycle failed: %v", so.CheckpointErr)
			}
			if so.Checkpoints == 0 {
				t.Fatalf("run consumed %d ops but never cycled the monitor", so.Ops)
			}
			want, got := outcomeText(batch), outcomeText(stream)
			if got != want {
				t.Errorf("checkpointed streaming outcome differs from batch (%d cycles):\n--- batch ---\n%s--- checkpointed ---\n%s",
					so.Checkpoints, want, got)
			}
		})
	}
}

// TestLongRunStreamingSmoke runs the scaled-down long-run scenario —
// the same streaming/drop-mode shape CI exercises under -race — and
// checks the bounded-memory bookkeeping is alive.
func TestLongRunStreamingSmoke(t *testing.T) {
	o, err := SmokeLongRun().Run()
	if err != nil {
		t.Fatal(err)
	}
	if o.Ops < 10_000 {
		t.Errorf("smoke long run recorded only %d ops", o.Ops)
	}
	if o.Segments < 2 {
		t.Errorf("smoke long run sealed only %d segments", o.Segments)
	}
	if o.SC == nil || o.EC == nil {
		t.Fatal("missing streaming verdicts")
	}
	if len(o.Violated) != 0 {
		t.Errorf("benign long run violated %v", o.Violated)
	}
	if o.Stats.Retained > 10_000 {
		t.Errorf("monitor retained %d records — not bounded", o.Stats.Retained)
	}
	if o.PeakHeap == 0 {
		t.Error("no heap samples taken")
	}
}
