package scenario

import (
	"strings"
	"testing"
)

// TestCatalogueMeasuresPredictedViolations is the acceptance criterion
// of the adversary subsystem as a test: every scenario measures each
// violation the paper predicts for it (with a structured witness), the
// benign baselines violate nothing beyond the inherent PoW fork window,
// and at least three distinct properties are broken across the
// catalogue.
func TestCatalogueMeasuresPredictedViolations(t *testing.T) {
	distinct := map[string]bool{}
	for _, spec := range Catalogue() {
		spec := spec
		t.Run(spec.Name, func(t *testing.T) {
			o := spec.MustRun(0)
			if missing := o.MissingExpected(); len(missing) > 0 {
				t.Fatalf("predicted violations unmeasured: %v (got %v)", missing, o.Violated)
			}
			for _, name := range o.Violated {
				distinct[name] = true
				w, ok := o.Witnesses[name]
				if !ok {
					t.Fatalf("violated %s without a structured witness", name)
				}
				if w.Detail == "" || (len(w.Ops) == 0 && len(w.Blocks) == 0) {
					t.Fatalf("witness for %s carries no counterexample: %+v", name, w)
				}
			}
			// Every benign non-PoW baseline must hold outright (the
			// bitcoin baseline keeps its inherent transient-fork SC
			// violation, which is the paper's point).
			switch spec.Name {
			case "fabric/benign", "byzcoin/benign", "algorand/benign",
				"peercensus/benign", "redbelly/benign":
				if !o.OK() {
					t.Fatalf("benign %s run violated %v", spec.System, o.Violated)
				}
			}
			// EC must survive every healed scenario and fall in the
			// permanent-cut ones.
			switch spec.Name {
			case "bitcoin/partition-noheal", "bitcoin/eclipse":
				if o.EC.OK {
					t.Fatal("EC should be violated under a permanent cut")
				}
			case "bitcoin/partition-heal", "bitcoin/churn", "bitcoin/selfish":
				if !o.EC.OK {
					t.Fatalf("EC should survive %s, violated %v", spec.Name, o.Violated)
				}
			}
		})
	}
	if len(distinct) < 3 {
		t.Fatalf("catalogue breaks only %d distinct properties %v, want ≥ 3", len(distinct), distinct)
	}
}

// TestUnknownSystemErrorListsOptions pins the registry-dispatch error
// path: an unregistered system name must produce an error naming the
// registered options, never a silent zero outcome — from Run and from
// Sweep alike.
func TestUnknownSystemErrorListsOptions(t *testing.T) {
	spec := Spec{Name: "typo", System: "dogecoin", N: 4, Rounds: 10, Seed: 1}
	o, err := spec.Run(0)
	if err == nil {
		t.Fatalf("Run of unknown system returned outcome %+v", o)
	}
	for _, want := range []string{"dogecoin", "bitcoin", "fabric", "redbelly"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("error %q does not mention %q", err, want)
		}
	}
	if _, err := Sweep(spec, []uint64{1, 2}, 2); err == nil {
		t.Fatal("Sweep accepted an unknown system")
	}
	if err := spec.Validate(); err == nil {
		t.Fatal("Validate accepted an unknown system")
	}
}

// TestCatalogueCoversAllRegisteredSystems pins the api_redesign
// acceptance criterion: every one of the seven registered systems is
// reachable from the curated catalogue.
func TestCatalogueCoversAllRegisteredSystems(t *testing.T) {
	covered := map[string]bool{}
	for _, s := range Catalogue() {
		covered[s.System] = true
	}
	for _, want := range []string{
		"bitcoin", "ethereum", "byzcoin", "algorand", "peercensus", "redbelly", "fabric",
	} {
		if !covered[want] {
			t.Errorf("registered system %q has no catalogue entry", want)
		}
	}
}

// TestRunIsDeterministic replays one adversarial scenario twice and a
// third time at another seed: identical (spec, seed) must produce the
// identical digest, and the digest must depend on the seed.
func TestRunIsDeterministic(t *testing.T) {
	spec := *ByName("bitcoin/selfish")
	a, b := spec.MustRun(0), spec.MustRun(0)
	if a.Digest != b.Digest {
		t.Fatalf("same spec+seed diverged: %s vs %s", a.Digest, b.Digest)
	}
	c := spec.MustRun(7)
	if c.Digest == a.Digest {
		t.Fatalf("different seeds collided on digest %s", a.Digest)
	}
}

// TestSweepMatchesSerialRuns checks the parallel sweep runner against
// serial execution: same outcomes, same order, regardless of workers.
func TestSweepMatchesSerialRuns(t *testing.T) {
	spec := *ByName("bitcoin/partition-heal")
	spec.Rounds = 120 // keep the sweep cheap
	seeds := []uint64{3, 5, 8, 13, 21}

	var serial []string
	for _, s := range seeds {
		serial = append(serial, spec.MustRun(s).Digest)
	}
	par, err := Sweep(spec, seeds, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(par) != len(seeds) {
		t.Fatalf("sweep returned %d outcomes, want %d", len(par), len(seeds))
	}
	for i, o := range par {
		if o.Seed != seeds[i] {
			t.Fatalf("outcome %d has seed %d, want %d (order must be seed order)", i, o.Seed, seeds[i])
		}
		if o.Digest != serial[i] {
			t.Fatalf("parallel digest %s != serial %s at seed %d", o.Digest, serial[i], seeds[i])
		}
	}
	if got := SweepSummary(par); !strings.Contains(got, "/5") {
		t.Fatalf("summary should aggregate over 5 seeds: %q", got)
	}
}

// TestMatrixRendersWitness smoke-checks the violation matrix rendering.
func TestMatrixRendersWitness(t *testing.T) {
	o := ByName("fabric/equivocate").MustRun(0)
	m := Matrix([]*Outcome{o})
	for _, want := range []string{"fabric/equivocate", "1-ForkCoherence", "✗", "└"} {
		if !strings.Contains(m, want) {
			t.Fatalf("matrix missing %q:\n%s", want, m)
		}
	}
}
