package scenario

import (
	"strings"
	"testing"
)

// TestCatalogueMeasuresPredictedViolations is the acceptance criterion
// of the adversary subsystem as a test: every scenario measures each
// violation the paper predicts for it (with a structured witness), the
// benign baselines violate nothing beyond the inherent PoW fork window,
// and at least three distinct properties are broken across the
// catalogue.
func TestCatalogueMeasuresPredictedViolations(t *testing.T) {
	distinct := map[string]bool{}
	for _, spec := range Catalogue() {
		spec := spec
		t.Run(spec.Name, func(t *testing.T) {
			o := spec.Run(0)
			if missing := o.MissingExpected(); len(missing) > 0 {
				t.Fatalf("predicted violations unmeasured: %v (got %v)", missing, o.Violated)
			}
			for _, name := range o.Violated {
				distinct[name] = true
				w, ok := o.Witnesses[name]
				if !ok {
					t.Fatalf("violated %s without a structured witness", name)
				}
				if w.Detail == "" || (len(w.Ops) == 0 && len(w.Blocks) == 0) {
					t.Fatalf("witness for %s carries no counterexample: %+v", name, w)
				}
			}
			if spec.Name == "fabric/benign" && !o.OK() {
				t.Fatalf("benign fabric run violated %v", o.Violated)
			}
			// EC must survive every healed scenario and fall in the
			// permanent-cut ones.
			switch spec.Name {
			case "bitcoin/partition-noheal", "bitcoin/eclipse":
				if o.EC.OK {
					t.Fatal("EC should be violated under a permanent cut")
				}
			case "bitcoin/partition-heal", "bitcoin/churn", "bitcoin/selfish":
				if !o.EC.OK {
					t.Fatalf("EC should survive %s, violated %v", spec.Name, o.Violated)
				}
			}
		})
	}
	if len(distinct) < 3 {
		t.Fatalf("catalogue breaks only %d distinct properties %v, want ≥ 3", len(distinct), distinct)
	}
}

// TestRunIsDeterministic replays one adversarial scenario twice and a
// third time at another seed: identical (spec, seed) must produce the
// identical digest, and the digest must depend on the seed.
func TestRunIsDeterministic(t *testing.T) {
	spec := *ByName("bitcoin/selfish")
	a, b := spec.Run(0), spec.Run(0)
	if a.Digest != b.Digest {
		t.Fatalf("same spec+seed diverged: %s vs %s", a.Digest, b.Digest)
	}
	c := spec.Run(7)
	if c.Digest == a.Digest {
		t.Fatalf("different seeds collided on digest %s", a.Digest)
	}
}

// TestSweepMatchesSerialRuns checks the parallel sweep runner against
// serial execution: same outcomes, same order, regardless of workers.
func TestSweepMatchesSerialRuns(t *testing.T) {
	spec := *ByName("bitcoin/partition-heal")
	spec.Rounds = 120 // keep the sweep cheap
	seeds := []uint64{3, 5, 8, 13, 21}

	var serial []string
	for _, s := range seeds {
		serial = append(serial, spec.Run(s).Digest)
	}
	par := Sweep(spec, seeds, 4)
	if len(par) != len(seeds) {
		t.Fatalf("sweep returned %d outcomes, want %d", len(par), len(seeds))
	}
	for i, o := range par {
		if o.Seed != seeds[i] {
			t.Fatalf("outcome %d has seed %d, want %d (order must be seed order)", i, o.Seed, seeds[i])
		}
		if o.Digest != serial[i] {
			t.Fatalf("parallel digest %s != serial %s at seed %d", o.Digest, serial[i], seeds[i])
		}
	}
	if got := SweepSummary(par); !strings.Contains(got, "/5") {
		t.Fatalf("summary should aggregate over 5 seeds: %q", got)
	}
}

// TestMatrixRendersWitness smoke-checks the violation matrix rendering.
func TestMatrixRendersWitness(t *testing.T) {
	o := ByName("fabric/equivocate").Run(0)
	m := Matrix([]*Outcome{o})
	for _, want := range []string{"fabric/equivocate", "1-ForkCoherence", "✗", "└"} {
		if !strings.Contains(m, want) {
			t.Fatalf("matrix missing %q:\n%s", want, m)
		}
	}
}
