package scenario

import (
	"bytes"
	"encoding/json"
	"io"
	"strings"
	"testing"

	"repro/btsim"
)

// TestMetricsDigestNeutralityCatalogue runs every catalogue scenario
// twice — bare, and with the full metrics + trace layer attached — and
// requires byte-identical replay digests. This is the catalogue-wide
// observability contract: instrumentation observes the run, it never
// participates in it. CI runs this under -race as the
// metrics-conformance job.
func TestMetricsDigestNeutralityCatalogue(t *testing.T) {
	for _, spec := range Catalogue() {
		spec := spec
		t.Run(spec.Name, func(t *testing.T) {
			sys, err := btsim.Get(spec.System)
			if err != nil {
				t.Fatal(err)
			}
			bare, err := sys.Run(btsim.NewConfig(spec.options(spec.Seed)...))
			if err != nil {
				t.Fatal(err)
			}
			inst, err := sys.Run(btsim.NewConfig(append(spec.options(spec.Seed),
				btsim.WithMetrics(),
				btsim.WithTrace(io.Discard, btsim.TraceOptions{SampleEvery: 8}))...))
			if err != nil {
				t.Fatal(err)
			}
			if bare.Digest() != inst.Digest() {
				t.Fatalf("metrics+trace changed the replay digest: bare %s, instrumented %s",
					bare.Digest(), inst.Digest())
			}
			if inst.Metrics == nil {
				t.Fatal("instrumented run carries no metric snapshot")
			}
		})
	}
}

// TestTraceSmoke validates the Chrome trace-event export end to end on
// one adversarial scenario: the emitted JSON must parse and carry the
// event phases a trace viewer renders (complete events, instants,
// metadata, counter samples).
func TestTraceSmoke(t *testing.T) {
	spec := Catalogue()[0]
	for _, s := range Catalogue() {
		if s.Name == "bitcoin/partition-heal" {
			spec = s
		}
	}
	sys, err := btsim.Get(spec.System)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := sys.Run(btsim.NewConfig(append(spec.options(spec.Seed),
		btsim.WithTrace(&buf, btsim.TraceOptions{SampleEvery: 2}))...)); err != nil {
		t.Fatal(err)
	}
	var parsed struct {
		TraceEvents []struct {
			Name string `json:"name"`
			Ph   string `json:"ph"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &parsed); err != nil {
		t.Fatalf("Chrome trace does not parse: %v", err)
	}
	phases := map[string]int{}
	faults := 0
	for _, ev := range parsed.TraceEvents {
		phases[ev.Ph]++
		if strings.HasPrefix(ev.Name, "fault") {
			faults++
		}
	}
	for _, ph := range []string{"X", "i", "M", "C"} {
		if phases[ph] == 0 {
			t.Fatalf("trace has no %q events (phases: %v)", ph, phases)
		}
	}
	if faults == 0 {
		t.Fatalf("partition scenario traced no fault events (phases: %v)", phases)
	}
}
