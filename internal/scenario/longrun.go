// The long-run scenario: a ≥1M-operation execution that only the
// streaming path can check. It deliberately lives outside Catalogue()
// — the catalogue is the pinned 14-scenario replay matrix, while this
// one exists to exercise the bounded-memory property: the run records
// in drop mode (history streamed through sealed segments into the
// online monitor and released), so resident memory is governed by the
// block tree and the monitor's window, not by the operation count. A
// batch Classify of the same run would have to hold every operation —
// at ~1.2M ops that is two orders of magnitude more resident heap (the
// measured gap is ablation #10 in DESIGN.md).
package scenario

import (
	"fmt"
	"runtime"

	"repro/btsim"
	"repro/internal/consistency"
)

// LongRunSpec configures the streaming long-run scenario.
type LongRunSpec struct {
	// Name labels the run in tool output.
	Name string
	// System, N, Rounds, Seed are the usual run knobs; reads fire every
	// virtual-time unit (the densest schedule), so the op count scales
	// with N × virtual time.
	System    string
	N, Rounds int
	Seed      uint64
	// Segment is the streaming segment size in ops (0 = default).
	Segment int
	// SampleEvery is the heap-sampling period in protocol rounds.
	SampleEvery int
}

// DefaultLongRun is the ≥1M-op configuration: fabric at N=48 records
// ~1.16M operations in ~8000 rounds.
func DefaultLongRun() LongRunSpec {
	return LongRunSpec{
		Name:   "longrun/fabric-48x8000",
		System: "fabric", N: 48, Rounds: 8000, Seed: 2026,
		Segment: 4096, SampleEvery: 256,
	}
}

// SmokeLongRun is the scaled-down variant CI runs under -race: the same
// shape (streaming, drop mode, heap sampling), two orders of magnitude
// fewer ops.
func SmokeLongRun() LongRunSpec {
	s := DefaultLongRun()
	s.Name = "longrun/smoke-8x800"
	s.N, s.Rounds = 8, 800
	return s
}

// LongOutcome is one checked long run.
type LongOutcome struct {
	Spec LongRunSpec
	// SC and EC are the streaming verdicts (there is no batch verdict:
	// the run retained no history).
	SC, EC *consistency.Verdict
	// Violated lists the violated property names in checking order.
	Violated []string
	// Ops and Segments describe the streamed history.
	Ops, Segments int
	// PeakHeap is the maximum live-heap sample (bytes) observed during
	// the run — the memory high-water mark of ablation #10.
	PeakHeap uint64
	// Stats is the monitor's retained-state summary at finalization.
	Stats consistency.MonitorStats
}

// Run executes the long-run scenario. The observer samples the heap
// every SampleEvery rounds; the peak is the run's high-water mark.
func (s LongRunSpec) Run() (*LongOutcome, error) {
	every := s.SampleEvery
	if every <= 0 {
		every = 256
	}
	var peak uint64
	sample := func() {
		var ms runtime.MemStats
		runtime.ReadMemStats(&ms)
		if ms.HeapAlloc > peak {
			peak = ms.HeapAlloc
		}
	}
	res, err := btsim.Run(s.System,
		btsim.WithN(s.N),
		btsim.WithRounds(s.Rounds),
		btsim.WithSeed(s.Seed),
		btsim.WithReadEvery(1),
		btsim.WithStreaming(s.Segment),
		btsim.WithObserver(func(p btsim.Progress) bool {
			if p.Round%every == 0 {
				sample()
			}
			return true
		}),
	)
	if err != nil {
		return nil, fmt.Errorf("long run %q: %w", s.Name, err)
	}
	sample()
	o := &LongOutcome{
		Spec: s,
		SC:   res.Stream.SC, EC: res.Stream.EC,
		Ops: res.Stream.Ops, Segments: res.Stream.Segments,
		PeakHeap: peak,
		Stats:    res.Stream.Stats,
	}
	seen := map[string]bool{}
	for _, v := range [...]*consistency.Verdict{o.SC, o.EC} {
		for _, rep := range v.Reports {
			if !rep.OK && !seen[rep.Property] {
				seen[rep.Property] = true
				o.Violated = append(o.Violated, rep.Property)
			}
		}
	}
	return o, nil
}

// String renders the outcome for tool output.
func (o *LongOutcome) String() string {
	verdict := "all properties hold"
	if len(o.Violated) > 0 {
		verdict = fmt.Sprintf("violated: %v", o.Violated)
	}
	return fmt.Sprintf("%s: %d ops in %d segments, peak heap %.1f MB, %d records retained — %s",
		o.Spec.Name, o.Ops, o.Segments, float64(o.PeakHeap)/1e6, o.Stats.Retained, verdict)
}
