// Package scenario is the declarative layer over the adversary and
// fault-injection subsystem: a Spec names one execution — registered
// system × synchrony knob × adversary strategy × fault schedule × churn
// windows × seed — and Run turns it into a fully checked Outcome (both
// criterion verdicts, optional k-Fork Coherence, the distinct violated
// properties with their structured witnesses, and a replay digest).
//
// Dispatch goes through the public btsim registry, so every registered
// system — all seven of the paper's Section 5, plus anything a future
// package registers — is scenario-able; nothing in this package names a
// protocol package. The curated Catalogue pairs benign baselines with
// the attacks the paper's hierarchy predicts must break each criterion;
// Matrix renders the resulting violation matrix (cmd/scenarios), and
// Sweep runs one spec across many seeds in parallel — the first
// concurrent code in the repository, which is why CI runs this package
// under -race.
package scenario

import (
	"fmt"
	"hash/fnv"
	"sort"

	"repro/btsim"
	_ "repro/btsim/systems" // register the built-in seven systems
	"repro/internal/consistency"
)

// FaultSpec declares one partition window without committing to a
// process count (the window is resolved against N at run time). It is
// the public btsim fault declaration: "split" cuts Left off from the
// rest, "eclipse" cuts Left[0] off alone, End == btsim.NoHeal makes the
// cut permanent.
type FaultSpec = btsim.Fault

// Spec is one declarative scenario.
type Spec struct {
	// Name identifies the scenario in the catalogue and the matrix.
	Name string
	// System picks the protocol simulator by its registered btsim name
	// — any entry of btsim.Names() works ("bitcoin", "ethereum",
	// "byzcoin", "algorand", "peercensus", "redbelly", "fabric", plus
	// whatever else has been registered). Unknown names make Run
	// return an error listing the registered options.
	System string
	// N, Rounds, Seed, ReadEvery are the common run knobs.
	N, Rounds int
	Seed      uint64
	ReadEvery int64
	// Delta is the synchrony bound δ (0 = the system's default).
	Delta int64
	// Difficulty is the PoW difficulty knob (0 = the system's default).
	Difficulty float64
	// Merits skews hashing power / stake (nil = uniform); adversarial
	// mining power lives here.
	Merits []float64
	// Adversary is the process-level strategy (zero value = benign).
	Adversary btsim.Adversary
	// Faults are the network-level partition/eclipse windows. Churn is
	// modeled as temporary eclipse windows: a process leaving and
	// rejoining is exactly a cut that heals (deferred updates flush).
	Faults []FaultSpec
	// Crashes are the process-level crash–recovery windows (End ==
	// btsim.NoHeal is a crash-stop); Durable picks snapshot/restore
	// recovery over amnesia rejoin-from-genesis.
	Crashes []btsim.Crash
	Durable bool
	// CheckK, when > 0, additionally checks k-Fork Coherence with this
	// bound (set it to the frugal oracle's k).
	CheckK int
	// CheckpointEvery, when > 0, checkpoint-cycles the online monitor
	// every that many consumed operations during RunStream (Run ignores
	// it): the monitor's bounded state is serialized and a fresh
	// monitor restored from the bytes mid-run. The cycles are specified
	// to be invisible — the stream_test pins byte-identical outcomes
	// across the whole catalogue.
	CheckpointEvery int
	// Shards runs the scenario on the sharded deterministic scheduler
	// with that many worker shards (0 or 1 = serial). Digests are
	// specified to be shard-count-independent, so catalogue entries
	// leave it 0 and the shard digest-diff test overrides it.
	Shards int
	// ExpectBroken names the properties the paper predicts this
	// scenario must break (empty for benign baselines). cmd/scenarios
	// -check and the tests fail when a predicted break goes unmeasured.
	ExpectBroken []string
	// Note is the one-line rationale shown with the catalogue.
	Note string
}

// Outcome is one fully checked scenario run.
type Outcome struct {
	Spec Spec
	// Seed is the seed actually used (sweeps override Spec.Seed).
	Seed uint64
	Res  *btsim.Result
	// SC and EC are the two criterion verdicts; KFork is the optional
	// k-Fork Coherence report (nil when Spec.CheckK == 0).
	SC, EC *consistency.Verdict
	KFork  *consistency.Report
	// Violated lists the distinct violated property names, in checking
	// order; Witnesses maps each to its first structured counterexample.
	Violated  []string
	Witnesses map[string]consistency.Witness
	// Digest is the replay digest: identical for identical (spec, seed).
	Digest string
}

// OK reports whether nothing was violated.
func (o *Outcome) OK() bool { return len(o.Violated) == 0 }

// MissingExpected returns the predicted-broken properties this run did
// not measure as broken.
func (o *Outcome) MissingExpected() []string {
	var out []string
	for _, want := range o.Spec.ExpectBroken {
		found := false
		for _, got := range o.Violated {
			if got == want {
				found = true
				break
			}
		}
		if !found {
			out = append(out, want)
		}
	}
	return out
}

// options lowers the spec onto the public run options.
func (s Spec) options(seed uint64) []btsim.Option {
	return []btsim.Option{
		btsim.WithN(s.N),
		btsim.WithRounds(s.Rounds),
		btsim.WithSeed(seed),
		btsim.WithReadEvery(s.ReadEvery),
		btsim.WithDelta(s.Delta),
		btsim.WithDifficulty(s.Difficulty),
		btsim.WithMerits(s.Merits...),
		btsim.WithFaults(s.Faults...),
		btsim.WithCrashes(s.Crashes...),
		btsim.WithDurability(s.Durable),
		btsim.WithAdversary(s.Adversary),
		btsim.WithFaultLog(true),
		btsim.WithShards(s.Shards),
	}
}

// Validate reports whether the spec can run at all: the system must be
// registered and the adversary strategy known. Sweep validates once up
// front so its workers cannot fail individually.
func (s Spec) Validate() error {
	if _, err := btsim.Get(s.System); err != nil {
		return fmt.Errorf("scenario %q: %w", s.Name, err)
	}
	switch s.Adversary.Strategy {
	case "", btsim.Selfish, btsim.Withhold, btsim.Equivocate:
	default:
		return fmt.Errorf("scenario %q: unknown adversary strategy %q", s.Name, s.Adversary.Strategy)
	}
	return nil
}

// Run executes the scenario with the given seed (0 means Spec.Seed) and
// checks it. An unregistered System (or any other invalid knob) returns
// an error naming the registered options — never a silent zero outcome.
func (s Spec) Run(seed uint64) (*Outcome, error) { return s.run(seed, false) }

// RunStream executes the scenario with the online consistency monitor
// attached and builds the Outcome from the streaming verdicts instead
// of batch Classify. The history is still retained (tee mode), so the
// replay Digest folds the same run content — a scenario's RunStream
// digest equals its Run digest exactly; the determinism suite pins this
// for the whole catalogue.
func (s Spec) RunStream(seed uint64) (*Outcome, error) { return s.run(seed, true) }

func (s Spec) run(seed uint64, stream bool) (*Outcome, error) {
	if seed == 0 {
		seed = s.Seed
	}
	sys, err := btsim.Get(s.System)
	if err != nil {
		return nil, fmt.Errorf("scenario %q: %w", s.Name, err)
	}
	opts := s.options(seed)
	if stream {
		opts = append(opts, btsim.WithMonitor(nil))
		if s.CheckK > 0 {
			opts = append(opts, btsim.WithMonitorK(s.CheckK))
		}
		if s.CheckpointEvery > 0 {
			opts = append(opts, btsim.WithMonitorCheckpoint(s.CheckpointEvery))
		}
	}
	res, err := sys.Run(btsim.NewConfig(opts...))
	if err != nil {
		return nil, fmt.Errorf("scenario %q: %w", s.Name, err)
	}

	var sc, ec *consistency.Verdict
	o := &Outcome{Spec: s, Seed: seed, Res: res, Witnesses: map[string]consistency.Witness{}}
	if stream {
		sc, ec = res.Stream.SC, res.Stream.EC
		o.KFork = res.Stream.KFork
	} else {
		sc, ec = res.Check()
		if s.CheckK > 0 {
			o.KFork = res.KFork(s.CheckK)
		}
	}
	o.SC, o.EC = sc, ec

	reports := map[string]*consistency.Report{}
	order := []string{}
	record := func(rep *consistency.Report) {
		if rep == nil {
			return
		}
		if _, ok := reports[rep.Property]; !ok {
			reports[rep.Property] = rep
			order = append(order, rep.Property)
		}
	}
	for _, rep := range sc.Reports {
		record(rep)
	}
	for _, rep := range ec.Reports {
		record(rep)
	}
	record(o.KFork)
	for _, name := range order {
		rep := reports[name]
		if rep.OK {
			continue
		}
		o.Violated = append(o.Violated, name)
		if len(rep.Witnesses) > 0 {
			o.Witnesses[name] = rep.Witnesses[0]
		}
	}
	o.Digest = Digest(o)
	return o, nil
}

// MustRun is Run for specs known to be valid — the static catalogue,
// tests, pinned-digest replays. It panics on error.
func (s Spec) MustRun(seed uint64) *Outcome {
	o, err := s.Run(seed)
	if err != nil {
		panic(err)
	}
	return o
}

// Digest folds the run — every recorded operation and communication
// event, every replica tree, the fault log, and all verdicts — into one
// hash: the byte-identical-replay check of the acceptance criteria. The
// run content comes from btsim's shared replay fold (Result.DigestInto,
// which also mirrors the root determinism test's pipelineDigest); the
// scenario digest extends it with the criterion verdicts.
func Digest(o *Outcome) string {
	h := fnv.New64a()
	o.Res.DigestInto(h)
	fmt.Fprintf(h, "SC=%v%v EC=%v%v", o.SC.OK, o.SC.Failing(), o.EC.OK, o.EC.Failing())
	if o.KFork != nil {
		fmt.Fprintf(h, " kFC=%v", o.KFork.OK)
	}
	return fmt.Sprintf("%016x", h.Sum64())
}

// Sweep runs the spec across the given seeds with at most workers
// concurrent runs (workers <= 0 means 4). Outcomes are returned in seed
// order regardless of completion order, so a sweep is as deterministic
// as a single run. The spec is validated once up front; an invalid spec
// returns the error before any run starts.
func Sweep(spec Spec, seeds []uint64, workers int) ([]*Outcome, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	if workers <= 0 {
		workers = 4
	}
	if workers > len(seeds) {
		workers = len(seeds)
	}
	out := make([]*Outcome, len(seeds))
	errs := make([]error, len(seeds))
	type job struct {
		i    int
		seed uint64
	}
	jobs := make(chan job)
	done := make(chan struct{})
	for w := 0; w < workers; w++ {
		go func() {
			for j := range jobs {
				func() {
					// One panicking seed (a diverging run, a checker
					// bug) must not take down the whole grid: recover
					// it into that seed's error slot.
					defer func() {
						if r := recover(); r != nil {
							out[j.i], errs[j.i] = nil, fmt.Errorf("scenario %q seed %d: panic: %v", spec.Name, j.seed, r)
						}
					}()
					out[j.i], errs[j.i] = spec.Run(j.seed)
				}()
			}
			done <- struct{}{}
		}()
	}
	for i, seed := range seeds {
		jobs <- job{i, seed}
	}
	close(jobs)
	for w := 0; w < workers; w++ {
		<-done
	}
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

// SweepSummary aggregates a sweep: how often each property broke.
func SweepSummary(outs []*Outcome) string {
	counts := map[string]int{}
	for _, o := range outs {
		for _, v := range o.Violated {
			counts[v]++
		}
	}
	if len(counts) == 0 {
		return fmt.Sprintf("%d/%d seeds: no property violated", len(outs), len(outs))
	}
	props := make([]string, 0, len(counts))
	for p := range counts {
		props = append(props, p)
	}
	sort.Strings(props)
	s := ""
	for i, p := range props {
		if i > 0 {
			s += ", "
		}
		s += fmt.Sprintf("%s %d/%d", p, counts[p], len(outs))
	}
	return s
}
