// Package scenario is the declarative layer over the adversary and
// fault-injection subsystem: a Spec names one execution — protocol ×
// synchrony knob × adversary strategy × fault schedule × churn windows ×
// seed — and Run turns it into a fully checked Outcome (both criterion
// verdicts, optional k-Fork Coherence, the distinct violated properties
// with their structured witnesses, and a replay digest).
//
// The curated Catalogue pairs benign baselines with the attacks the
// paper's hierarchy predicts must break each criterion; Matrix renders
// the resulting violation matrix (cmd/scenarios), and Sweep runs one
// spec across many seeds in parallel — the first concurrent code in the
// repository, which is why CI runs this package under -race.
package scenario

import (
	"fmt"
	"hash/fnv"
	"io"
	"sort"

	"repro/internal/adversary"
	"repro/internal/consistency"
	"repro/internal/core"
	"repro/internal/protocols"
	"repro/internal/protocols/bitcoin"
	"repro/internal/protocols/ethereum"
	"repro/internal/protocols/fabric"
	"repro/internal/simnet"
	"repro/internal/tape"
)

// FaultSpec declares one partition window without committing to a
// process count (the window is resolved against N at run time).
type FaultSpec struct {
	// Kind is "split" (Left vs. the rest) or "eclipse" (Left[0] alone).
	Kind string
	// Start and End bound the window; End == simnet.NoHeal (-1) makes
	// the cut permanent.
	Start, End int64
	// Left is the cut-off side: the split's side-0 members, or the
	// eclipse victim as Left[0].
	Left []int
}

// Window resolves the spec for an n-process run.
func (f FaultSpec) Window(n int) simnet.Window {
	switch f.Kind {
	case "eclipse":
		victim := 0
		if len(f.Left) > 0 {
			victim = f.Left[0]
		}
		return simnet.EclipseWindow(f.Start, f.End, n, victim)
	default:
		return simnet.SplitWindow(f.Start, f.End, n, f.Left)
	}
}

// String renders e.g. "split{0 1}[50,200)" or "eclipse{2}[100,∞)".
func (f FaultSpec) String() string {
	end := fmt.Sprint(f.End)
	if f.End == simnet.NoHeal {
		end = "∞"
	}
	return fmt.Sprintf("%s%v[%d,%s)", f.Kind, f.Left, f.Start, end)
}

// Spec is one declarative scenario.
type Spec struct {
	// Name identifies the scenario in the catalogue and the matrix.
	Name string
	// System picks the protocol simulator: "bitcoin", "ethereum" or
	// "fabric" (the prodigal PoW family and the frugal k=1 family).
	System string
	// N, Rounds, Seed, ReadEvery are the common run knobs.
	N, Rounds int
	Seed      uint64
	ReadEvery int64
	// Delta is the synchrony bound δ (0 = the system's default).
	Delta int64
	// Difficulty is the PoW difficulty knob (0 = the system's default).
	Difficulty float64
	// Merits skews hashing power / stake (nil = uniform); adversarial
	// mining power lives here.
	Merits []tape.Merit
	// Adversary is the process-level strategy (zero value = benign).
	Adversary adversary.Config
	// Faults are the network-level partition/eclipse windows. Churn is
	// modeled as temporary eclipse windows: a process leaving and
	// rejoining is exactly a cut that heals (deferred updates flush).
	Faults []FaultSpec
	// CheckK, when > 0, additionally checks k-Fork Coherence with this
	// bound (set it to the frugal oracle's k).
	CheckK int
	// ExpectBroken names the properties the paper predicts this
	// scenario must break (empty for benign baselines). cmd/scenarios
	// -check and the tests fail when a predicted break goes unmeasured.
	ExpectBroken []string
	// Note is the one-line rationale shown with the catalogue.
	Note string
}

// Outcome is one fully checked scenario run.
type Outcome struct {
	Spec Spec
	// Seed is the seed actually used (sweeps override Spec.Seed).
	Seed uint64
	Res  *protocols.Result
	// SC and EC are the two criterion verdicts; KFork is the optional
	// k-Fork Coherence report (nil when Spec.CheckK == 0).
	SC, EC *consistency.Verdict
	KFork  *consistency.Report
	// Violated lists the distinct violated property names, in checking
	// order; Witnesses maps each to its first structured counterexample.
	Violated  []string
	Witnesses map[string]consistency.Witness
	// Digest is the replay digest: identical for identical (spec, seed).
	Digest string
}

// OK reports whether nothing was violated.
func (o *Outcome) OK() bool { return len(o.Violated) == 0 }

// MissingExpected returns the predicted-broken properties this run did
// not measure as broken.
func (o *Outcome) MissingExpected() []string {
	var out []string
	for _, want := range o.Spec.ExpectBroken {
		found := false
		for _, got := range o.Violated {
			if got == want {
				found = true
				break
			}
		}
		if !found {
			out = append(out, want)
		}
	}
	return out
}

// buildFaults resolves the fault specs into a schedule (nil when none).
func (s Spec) buildFaults() *simnet.Schedule {
	if len(s.Faults) == 0 {
		return nil
	}
	sched := &simnet.Schedule{}
	for _, f := range s.Faults {
		sched.Windows = append(sched.Windows, f.Window(s.N))
	}
	return sched
}

// common assembles the shared protocol config.
func (s Spec) common(seed uint64) protocols.Config {
	return protocols.Config{
		N:            s.N,
		Rounds:       s.Rounds,
		Seed:         seed,
		ReadEvery:    s.ReadEvery,
		Merits:       s.Merits,
		Faults:       s.buildFaults(),
		RecordFaults: true,
		Adversary:    s.Adversary,
	}
}

// Run executes the scenario with the given seed (0 means Spec.Seed) and
// checks it. It panics on an unknown System — the catalogue is static
// and a typo should fail loudly.
func (s Spec) Run(seed uint64) *Outcome {
	if seed == 0 {
		seed = s.Seed
	}
	var res *protocols.Result
	switch s.System {
	case "bitcoin":
		cfg := bitcoin.Config{Difficulty: s.Difficulty, Delta: s.Delta}
		cfg.Config = s.common(seed)
		res = bitcoin.Run(cfg)
	case "ethereum":
		cfg := ethereum.Config{Difficulty: s.Difficulty, Delta: s.Delta}
		cfg.Config = s.common(seed)
		res = ethereum.Run(cfg)
	case "fabric":
		cfg := fabric.Config{Delta: s.Delta}
		cfg.Config = s.common(seed)
		res = fabric.Run(cfg)
	default:
		panic(fmt.Sprintf("scenario: unknown system %q", s.System))
	}

	chk := consistency.NewChecker(res.Score, core.WellFormed{})
	sc, ec := chk.Classify(res.History)
	o := &Outcome{Spec: s, Seed: seed, Res: res, SC: sc, EC: ec, Witnesses: map[string]consistency.Witness{}}
	if s.CheckK > 0 {
		o.KFork = chk.KForkCoherence(res.History, s.CheckK)
	}

	reports := map[string]*consistency.Report{}
	order := []string{}
	record := func(rep *consistency.Report) {
		if rep == nil {
			return
		}
		if _, ok := reports[rep.Property]; !ok {
			reports[rep.Property] = rep
			order = append(order, rep.Property)
		}
	}
	for _, rep := range sc.Reports {
		record(rep)
	}
	for _, rep := range ec.Reports {
		record(rep)
	}
	record(o.KFork)
	for _, name := range order {
		rep := reports[name]
		if rep.OK {
			continue
		}
		o.Violated = append(o.Violated, name)
		if len(rep.Witnesses) > 0 {
			o.Witnesses[name] = rep.Witnesses[0]
		}
	}
	o.Digest = Digest(o)
	return o
}

// Digest folds the run — every recorded operation and communication
// event, every replica tree, the fault log, and all verdicts — into one
// hash: the byte-identical-replay check of the acceptance criteria. It
// deliberately mirrors the root determinism test's pipelineDigest and
// extends it with the fault log.
func Digest(o *Outcome) string {
	h := fnv.New64a()
	io.WriteString(h, o.Res.History.String())
	for _, op := range o.Res.History.Ops {
		io.WriteString(h, op.String())
	}
	for _, e := range o.Res.History.Comm {
		io.WriteString(h, e.String())
	}
	for _, t := range o.Res.Trees {
		for _, b := range t.Blocks() {
			io.WriteString(h, string(b.ID))
			io.WriteString(h, string(b.Parent))
		}
	}
	for _, e := range o.Res.FaultEvents {
		io.WriteString(h, e.String())
	}
	fmt.Fprintf(h, "SC=%v%v EC=%v%v", o.SC.OK, o.SC.Failing(), o.EC.OK, o.EC.Failing())
	if o.KFork != nil {
		fmt.Fprintf(h, " kFC=%v", o.KFork.OK)
	}
	return fmt.Sprintf("%016x", h.Sum64())
}

// Sweep runs the spec across the given seeds with at most workers
// concurrent runs (workers <= 0 means 4). Outcomes are returned in seed
// order regardless of completion order, so a sweep is as deterministic
// as a single run.
func Sweep(spec Spec, seeds []uint64, workers int) []*Outcome {
	if workers <= 0 {
		workers = 4
	}
	if workers > len(seeds) {
		workers = len(seeds)
	}
	out := make([]*Outcome, len(seeds))
	type job struct {
		i    int
		seed uint64
	}
	jobs := make(chan job)
	done := make(chan struct{})
	for w := 0; w < workers; w++ {
		go func() {
			for j := range jobs {
				out[j.i] = spec.Run(j.seed)
			}
			done <- struct{}{}
		}()
	}
	for i, seed := range seeds {
		jobs <- job{i, seed}
	}
	close(jobs)
	for w := 0; w < workers; w++ {
		<-done
	}
	return out
}

// SweepSummary aggregates a sweep: how often each property broke.
func SweepSummary(outs []*Outcome) string {
	counts := map[string]int{}
	for _, o := range outs {
		for _, v := range o.Violated {
			counts[v]++
		}
	}
	if len(counts) == 0 {
		return fmt.Sprintf("%d/%d seeds: no property violated", len(outs), len(outs))
	}
	props := make([]string, 0, len(counts))
	for p := range counts {
		props = append(props, p)
	}
	sort.Strings(props)
	s := ""
	for i, p := range props {
		if i > 0 {
			s += ", "
		}
		s += fmt.Sprintf("%s %d/%d", p, counts[p], len(outs))
	}
	return s
}
