package scenario

import (
	"strings"

	"repro/btsim"
)

// Catalogue is the curated scenario set behind cmd/scenarios: benign
// baselines first (the checkers' "holds" side — one per registered
// system family, so every one of the paper's seven systems is
// scenario-able and measured), then one attack per criterion the
// paper's hierarchy predicts breakable, each with a pinned seed at
// which the violation is actually measured. The pinned digests in the
// root determinism test replay every entry byte-identically.
func Catalogue() []Spec {
	// Adversarial PoW runs give the attacker ~1/3 hashing power — below
	// one half (no trivial majority takeover) and above the share where
	// withholding is hopeless.
	advMerits := []float64{1, 1, 1, 1.5}
	return []Spec{
		{
			Name: "bitcoin/benign", System: "bitcoin",
			N: 4, Rounds: 300, Seed: 42, ReadEvery: 6, Difficulty: 10,
			Note: "baseline: lossless synchronous PoW — EC holds, transient forks only",
		},
		{
			Name: "fabric/benign", System: "fabric",
			N: 4, Rounds: 60, Seed: 42, ReadEvery: 12, CheckK: 1,
			Note: "baseline: frugal k=1 ordering service — SC and 1-fork coherence hold",
		},
		{
			Name: "byzcoin/benign", System: "byzcoin",
			N: 4, Rounds: 30, Seed: 42, ReadEvery: 12, CheckK: 1,
			Note: "baseline: PoW-elected leader + PBFT key blocks — SC holds, no forks",
		},
		{
			Name: "algorand/benign", System: "algorand",
			N: 4, Rounds: 30, Seed: 42, ReadEvery: 12, CheckK: 1,
			Note: "baseline: sortition + BA* committee — SC w.h.p., fork-free at default",
		},
		{
			Name: "peercensus/benign", System: "peercensus",
			N: 4, Rounds: 30, Seed: 42, ReadEvery: 12, CheckK: 1,
			Note: "baseline: PoW identities + committee consensus — SC holds",
		},
		{
			Name: "redbelly/benign", System: "redbelly",
			N: 6, Rounds: 15, Seed: 42, ReadEvery: 10, CheckK: 1,
			Note: "baseline: consortium proposers, one decided block per height — SC holds",
		},
		{
			Name: "bitcoin/selfish", System: "bitcoin",
			N: 4, Rounds: 300, Seed: 42, ReadEvery: 6, Difficulty: 8,
			Merits:       advMerits,
			Adversary:    btsim.Adversary{Strategy: btsim.Selfish, Lead: 1},
			ExpectBroken: []string{"StrongPrefix"},
			Note:         "withhold-and-release mining forces reorgs: incomparable honest reads",
		},
		{
			Name: "bitcoin/withhold-release", System: "bitcoin",
			N: 4, Rounds: 300, Seed: 42, ReadEvery: 6, Difficulty: 8,
			// A pure withholder needs majority hashing power to keep its
			// private branch ahead until the end-of-run release.
			Merits:       []float64{1, 1, 1, 4},
			Adversary:    btsim.Adversary{Strategy: btsim.Withhold, ReleaseAtEnd: true},
			ExpectBroken: []string{"StrongPrefix"},
			Note:         "private chain released only at the end: one maximal late reorg",
		},
		{
			Name: "bitcoin/partition-heal", System: "bitcoin",
			N: 4, Rounds: 300, Seed: 42, ReadEvery: 6, Difficulty: 6,
			Faults:       []FaultSpec{{Kind: "split", Start: 50, End: 220, Left: []int{0, 1}}},
			ExpectBroken: []string{"StrongPrefix"},
			Note:         "split brain mines two chains; Strong Prefix dies, EC survives the heal",
		},
		{
			Name: "bitcoin/partition-noheal", System: "bitcoin",
			N: 4, Rounds: 300, Seed: 42, ReadEvery: 6, Difficulty: 6,
			Faults:       []FaultSpec{{Kind: "split", Start: 50, End: btsim.NoHeal, Left: []int{0, 1}}},
			ExpectBroken: []string{"StrongPrefix", "EventualPrefix"},
			Note:         "permanent cut: divergence persists into the final window — even EC dies",
		},
		{
			Name: "bitcoin/eclipse", System: "bitcoin",
			N: 4, Rounds: 300, Seed: 42, ReadEvery: 6, Difficulty: 6,
			Faults:       []FaultSpec{{Kind: "eclipse", Start: 100, End: btsim.NoHeal, Left: []int{2}}},
			ExpectBroken: []string{"EverGrowingTree"},
			Note:         "eclipsed correct process stagnates while the tree demonstrably grows",
		},
		{
			Name: "bitcoin/churn", System: "bitcoin",
			N: 4, Rounds: 300, Seed: 42, ReadEvery: 6, Difficulty: 6,
			Faults: []FaultSpec{
				{Kind: "eclipse", Start: 40, End: 90, Left: []int{1}},
				{Kind: "eclipse", Start: 120, End: 170, Left: []int{3}},
				{Kind: "eclipse", Start: 200, End: 250, Left: []int{0}},
			},
			Note: "churn as heal-flushed eclipses: processes drop out and rejoin — EC must survive",
		},
		{
			Name: "bitcoin/crashstop", System: "bitcoin",
			N: 4, Rounds: 300, Seed: 42, ReadEvery: 6, Difficulty: 6,
			Crashes:      []btsim.Crash{{Proc: 2, Start: 150, End: btsim.NoHeal}},
			Durable:      true,
			ExpectBroken: []string{"StrongPrefix"},
			Note:         "one replica crash-stops mid-run: survivors keep EC, the dead tree just freezes",
		},
		{
			Name: "bitcoin/crash-durable", System: "bitcoin",
			N: 4, Rounds: 300, Seed: 42, ReadEvery: 6, Difficulty: 6,
			Crashes: []btsim.Crash{
				{Proc: 1, Start: 40, End: 90},
				{Proc: 3, Start: 120, End: 170},
				{Proc: 0, Start: 200, End: 250},
			},
			Durable:      true,
			ExpectBroken: []string{"StrongPrefix"},
			Note:         "crash churn with snapshot/restore: restarts resume from the saved tree — EC holds",
		},
		{
			Name: "bitcoin/crash-amnesia", System: "bitcoin",
			N: 4, Rounds: 300, Seed: 42, ReadEvery: 6, Difficulty: 6,
			// The exact crash windows of crash-durable — only Durable
			// differs, so the pair isolates what durability buys.
			Crashes: []btsim.Crash{
				{Proc: 1, Start: 40, End: 90},
				{Proc: 3, Start: 120, End: 170},
				{Proc: 0, Start: 200, End: 250},
			},
			Durable:      false,
			ExpectBroken: []string{"StrongPrefix", "LocalMonotonicRead"},
			Note:         "same churn, rejoin from genesis: post-restart reads jump backwards — LMR dies",
		},
		{
			Name: "ethereum/forkflood", System: "ethereum",
			N: 4, Rounds: 120, Seed: 42, ReadEvery: 4, Difficulty: 4,
			Merits:       advMerits,
			Adversary:    btsim.Adversary{Strategy: btsim.Equivocate, Forks: 3},
			ExpectBroken: []string{"StrongPrefix"},
			Note:         "fork flooding under ΘP: forged siblings shake GHOST between subtrees",
		},
		{
			Name: "fabric/equivocate", System: "fabric",
			N: 4, Rounds: 60, Seed: 42, ReadEvery: 12, CheckK: 1,
			// Strong Prefix survives this attack (the selector is a
			// deterministic function, so replicas sharing the forked
			// tree still read the same chain) — exactly why k-Fork
			// Coherence is a separate criterion in the hierarchy.
			Adversary:    btsim.Adversary{Strategy: btsim.Equivocate, Proc: 0, Forks: 2},
			ExpectBroken: []string{"1-ForkCoherence"},
			Note:         "Byzantine orderer signs two blocks per height token: measured k-fork violation",
		},
	}
}

// ByName returns the catalogue entry with the given name (nil if none).
func ByName(name string) *Spec {
	for _, s := range Catalogue() {
		if s.Name == name {
			s := s
			return &s
		}
	}
	return nil
}

// Matrix renders the violation matrix: one row per outcome with the
// criterion verdicts and the first counterexample witness.
func Matrix(outs []*Outcome) string {
	var sb strings.Builder
	row := func(name, system, adv, sc, ec, kfc, viol string) {
		// Pad by rune count, not bytes: the ✓/✗/— marks are multi-byte.
		sb.WriteString(pad(name, 26) + " " + pad(system, 10) + " " + pad(adv, 24) + " " +
			pad(sc, 4) + " " + pad(ec, 4) + " " + pad(kfc, 4) + " " + viol + "\n")
	}
	row("scenario", "system", "adversary", "SC", "EC", "kFC", "violated (first witness)")
	sb.WriteString(strings.Repeat("─", 118) + "\n")
	for _, o := range outs {
		kfc := "—"
		if o.KFork != nil {
			kfc = mark(o.KFork.OK)
		}
		viol := "none"
		if len(o.Violated) > 0 {
			viol = strings.Join(o.Violated, ",")
			if w, ok := o.Witnesses[o.Violated[0]]; ok {
				viol += "\n" + strings.Repeat(" ", 28) + "└ " + truncate(w.Detail, 100)
			}
		}
		row(o.Spec.Name, o.Spec.System, o.Res.AdversaryName, mark(o.SC.OK), mark(o.EC.OK), kfc, viol)
	}
	return sb.String()
}

func mark(ok bool) string {
	if ok {
		return "✓"
	}
	return "✗"
}

// pad right-pads s with spaces to n visible runes.
func pad(s string, n int) string {
	if k := len([]rune(s)); k < n {
		return s + strings.Repeat(" ", n-k)
	}
	return s
}

func truncate(s string, n int) string {
	r := []rune(s)
	if len(r) <= n {
		return s
	}
	return string(r[:n-1]) + "…"
}
