package scenario

import (
	"testing"
)

// TestShardDigestEquivalenceCatalogue pins the sharded scheduler's
// determinism claim across the entire curated catalogue: every scenario
// — benign, adversarial, partitioned, crashing — run with shards=4 must
// produce the byte-identical replay digest (operations, communication
// events, replica trees, fault log, verdicts) as its serial run. This
// is the diff test behind the "sharding is purely a wall-clock knob"
// specification; with the serial digests pinned in the root
// determinism test, it transitively pins the sharded ones too.
func TestShardDigestEquivalenceCatalogue(t *testing.T) {
	for _, spec := range Catalogue() {
		spec := spec
		t.Run(spec.Name, func(t *testing.T) {
			serial := spec.MustRun(spec.Seed)
			sharded := spec
			sharded.Shards = 4
			got := sharded.MustRun(spec.Seed)
			if got.Digest != serial.Digest {
				t.Fatalf("shards=4 digest %s != serial digest %s", got.Digest, serial.Digest)
			}
			if len(got.Violated) != len(serial.Violated) {
				t.Fatalf("shards=4 violated %v != serial %v", got.Violated, serial.Violated)
			}
			for i := range serial.Violated {
				if got.Violated[i] != serial.Violated[i] {
					t.Fatalf("shards=4 violated %v != serial %v", got.Violated, serial.Violated)
				}
			}
		})
	}
}

// TestShardCountIndependence spot-checks that the digest is independent
// of the exact shard count, not merely equal between 1 and 4, on the
// scenario exercising the most machinery (crash recovery + flooding).
func TestShardCountIndependence(t *testing.T) {
	spec := *ByName("bitcoin/crash-durable")
	base := spec.MustRun(spec.Seed)
	for _, k := range []int{2, 3, 5, 8} {
		s := spec
		s.Shards = k
		if got := s.MustRun(spec.Seed); got.Digest != base.Digest {
			t.Fatalf("shards=%d digest %s != serial digest %s", k, got.Digest, base.Digest)
		}
	}
}
