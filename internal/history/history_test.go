package history

import (
	"sync"
	"testing"

	"repro/internal/core"
)

func chainOf(n int) core.Chain {
	c := core.GenesisChain()
	for i := 1; i <= n; i++ {
		h := c.Head()
		c = c.Append(core.NewBlock(h.ID, h.Height+1, 0, i, []byte{byte(i)}))
	}
	return c
}

func TestRecorderSequentialOps(t *testing.T) {
	rec := NewRecorder(2, nil)
	a := rec.Append(0, chainOf(1).Head(), true)
	r := rec.Read(1, chainOf(1))
	h := rec.Snapshot()
	if len(h.Ops) != 2 {
		t.Fatalf("ops %d", len(h.Ops))
	}
	if !a.Before(r) {
		t.Fatal("append not before read")
	}
	if r.Before(a) {
		t.Fatal("read before append")
	}
}

func TestPendingOps(t *testing.T) {
	rec := NewRecorder(1, nil)
	op := rec.InvokeRead(0)
	h := rec.Snapshot()
	if len(h.Reads()) != 0 {
		t.Fatal("pending read counted as completed")
	}
	rec.RespondRead(op, chainOf(0))
	h = rec.Snapshot()
	if len(h.Reads()) != 1 {
		t.Fatal("completed read missing")
	}
}

func TestConcurrencyRelation(t *testing.T) {
	rec := NewRecorder(2, nil)
	// Two overlapping reads: inv0, inv1, rsp0, rsp1.
	op0 := rec.InvokeRead(0)
	op1 := rec.InvokeRead(1)
	rec.RespondRead(op0, chainOf(0))
	rec.RespondRead(op1, chainOf(0))
	if !op0.Concurrent(op1) || !op1.Concurrent(op0) {
		t.Fatal("overlapping ops not concurrent")
	}
	op2 := rec.Read(0, chainOf(1))
	if !op0.Before(op2) || !op1.Before(op2) {
		t.Fatal("later op not after both")
	}
}

func TestByProcessOrder(t *testing.T) {
	rec := NewRecorder(2, nil)
	rec.Read(0, chainOf(0))
	rec.Read(1, chainOf(0))
	rec.Read(0, chainOf(1))
	h := rec.Snapshot()
	ops := h.ByProcess(0)
	if len(ops) != 2 {
		t.Fatalf("process 0 has %d ops", len(ops))
	}
	if !ops[0].Before(ops[1]) {
		t.Fatal("process order violated")
	}
}

func TestFaultyExclusion(t *testing.T) {
	rec := NewRecorder(2, nil)
	rec.Read(0, chainOf(1))
	rec.Read(1, chainOf(2))
	rec.MarkFaulty(1)
	h := rec.Snapshot()
	if !h.IsCorrect(0) || h.IsCorrect(1) {
		t.Fatal("correctness flags wrong")
	}
	reads := h.Reads()
	if len(reads) != 1 || reads[0].Proc != 0 {
		t.Fatalf("faulty process reads not excluded: %v", reads)
	}
}

func TestAppendsAndPurge(t *testing.T) {
	rec := NewRecorder(1, nil)
	b1 := chainOf(1).Head()
	b2 := chainOf(2).Head()
	rec.Append(0, b1, true)
	rec.Append(0, b2, false)
	h := rec.Snapshot()
	if len(h.Appends()) != 2 || len(h.SuccessfulAppends()) != 1 {
		t.Fatal("append counting wrong")
	}
	purged := h.Purged()
	if len(purged.Ops) != 1 {
		t.Fatalf("purged has %d ops, want 1", len(purged.Ops))
	}
	blocks := h.AppendedBlocks()
	if len(blocks) != 1 {
		t.Fatalf("appended blocks %d, want 1", len(blocks))
	}
	if _, ok := blocks[b1.ID]; !ok {
		t.Fatal("successful append missing from AppendedBlocks")
	}
}

func TestCommEvents(t *testing.T) {
	rec := NewRecorder(3, func() int64 { return 42 })
	rec.RecordComm(EvSend, 0, core.GenesisID, "b1")
	rec.RecordComm(EvReceive, 1, core.GenesisID, "b1")
	rec.RecordComm(EvUpdate, 1, core.GenesisID, "b1")
	h := rec.Snapshot()
	if len(h.Comm) != 3 {
		t.Fatalf("comm events %d", len(h.Comm))
	}
	if len(h.CommOf(EvSend)) != 1 || len(h.CommOf(EvReceive)) != 1 || len(h.CommOf(EvUpdate)) != 1 {
		t.Fatal("CommOf filters wrong")
	}
	if h.Comm[0].Index >= h.Comm[1].Index || h.Comm[1].Index >= h.Comm[2].Index {
		t.Fatal("comm indices not increasing")
	}
	if h.Comm[0].Time != 42 {
		t.Fatal("clock not consulted")
	}
}

func TestRespondAppendReplacesBlock(t *testing.T) {
	rec := NewRecorder(1, nil)
	placeholder := &core.Block{ID: "pending"}
	op := rec.InvokeAppend(0, placeholder)
	final := chainOf(1).Head()
	rec.RespondAppend(op, true, final)
	if op.Block.ID != final.ID {
		t.Fatal("final block not recorded")
	}
}

// TestRecorderConcurrentSafety hammers the recorder from many goroutines;
// run with -race to verify the locking.
func TestRecorderConcurrentSafety(t *testing.T) {
	rec := NewRecorder(8, nil)
	var wg sync.WaitGroup
	for p := 0; p < 8; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				op := rec.InvokeRead(p)
				rec.RespondRead(op, chainOf(i%3))
				rec.RecordComm(EvSend, p, core.GenesisID, core.BlockID("x"))
			}
		}(p)
	}
	wg.Wait()
	h := rec.Snapshot()
	if len(h.Ops) != 800 || len(h.Comm) != 800 {
		t.Fatalf("recorded %d ops, %d comm", len(h.Ops), len(h.Comm))
	}
	// Indices are unique and each op's invocation precedes its response.
	seen := make(map[int]bool)
	for _, op := range h.Ops {
		if op.InvIndex >= op.RspIndex {
			t.Fatal("invocation not before response")
		}
		if seen[op.InvIndex] || seen[op.RspIndex] {
			t.Fatal("duplicate event index")
		}
		seen[op.InvIndex] = true
		seen[op.RspIndex] = true
	}
}

func TestOpString(t *testing.T) {
	rec := NewRecorder(1, nil)
	r := rec.Read(0, chainOf(1))
	if r.String() == "" {
		t.Fatal("empty op string")
	}
	pending := rec.InvokeRead(0)
	if pending.String() == "" {
		t.Fatal("empty pending string")
	}
	a := rec.Append(0, chainOf(1).Head(), true)
	if a.String() == "" {
		t.Fatal("empty append string")
	}
}

func TestIsCorrectBounds(t *testing.T) {
	h := &History{Procs: 2, Correct: []bool{true, false}}
	if !h.IsCorrect(0) || h.IsCorrect(1) {
		t.Fatal("IsCorrect wrong")
	}
	if !h.IsCorrect(-1) || !h.IsCorrect(99) {
		t.Fatal("out-of-range processes should default to correct")
	}
}
