// Package history implements the concurrent-history model of Definition
// 2.4: a history H = ⟨Σ, E, Λ, ↦, ≺, ↗⟩ where E contains operation
// invocation and response events, ↦ is the process order, ≺ the
// (real-time) operation order, and ↗ the program order (their union).
// For the message-passing model of Section 4.2 the event set is extended
// with send, receive and update events (Definition 4.2).
//
// Events carry a global sequence index assigned at recording time; the
// index is a linearization of real time (virtual simulation time or a
// shared atomic counter for true shared-memory runs), so e ≺ e′ holds
// iff the response index of e precedes the invocation index of e′.
//
// Read results are interned: in a tree, the chain a read returns is
// determined by its head block, so a read records only a compact
// (head, length) handle against a shared ChainTable instead of copying
// an O(height) slice per read. Op.Chain() materializes lazily — and
// memoized per head — when a checker or renderer actually needs the
// blocks.
package history

import (
	"fmt"
	"sync"

	"repro/internal/core"
)

// ChainTable interns the blocks of a run and memoizes materialized
// chains by head block. It is shared by all replicas recording into one
// Recorder; because blocks are immutable and block IDs are content
// hashes, the chain from genesis to a given head is unique, so one
// table serves every replica's reads.
type ChainTable struct {
	mu     sync.RWMutex
	blocks map[core.BlockID]*core.Block
	chains map[core.BlockID]core.Chain
}

// NewChainTable returns a table holding only the genesis block.
func NewChainTable() *ChainTable {
	g := core.Genesis()
	return &ChainTable{
		blocks: map[core.BlockID]*core.Block{g.ID: g},
		chains: map[core.BlockID]core.Chain{g.ID: {g}},
	}
}

// Intern registers a block (first writer wins; blocks are immutable and
// content-addressed, so later copies are identical). The read-locked
// fast path handles the common case — flooding re-interns every block
// once per replica, so all but the first call find it present — and
// keeps concurrent shard workers from serializing on the write lock.
func (t *ChainTable) Intern(b *core.Block) {
	if b == nil {
		return
	}
	t.mu.RLock()
	_, ok := t.blocks[b.ID]
	t.mu.RUnlock()
	if ok {
		return
	}
	t.mu.Lock()
	if _, ok := t.blocks[b.ID]; !ok {
		t.blocks[b.ID] = b
	}
	t.mu.Unlock()
}

// ChainTo materializes the chain from genesis to head, memoized per
// head. It returns nil if head or one of its ancestors was never
// interned.
func (t *ChainTable) ChainTo(head core.BlockID) core.Chain {
	t.mu.Lock()
	defer t.mu.Unlock()
	if c, ok := t.chains[head]; ok {
		return c
	}
	b, ok := t.blocks[head]
	if !ok {
		return nil
	}
	out := make(core.Chain, b.Height+1)
	for i := b.Height; ; i-- {
		out[i] = b
		if b.IsGenesis() {
			break
		}
		b, ok = t.blocks[b.Parent]
		if !ok || b.Height != i-1 {
			return nil
		}
	}
	t.chains[head] = out
	return out
}

// ChainToUncached materializes the chain from genesis to head without
// growing the memo cache: an existing memo entry is reused, but a fresh
// materialization is returned to the caller alone. The streaming
// monitors use it so that checking an unbounded run does not accumulate
// one cached chain per distinct read head.
func (t *ChainTable) ChainToUncached(head core.BlockID) core.Chain {
	t.mu.Lock()
	defer t.mu.Unlock()
	if c, ok := t.chains[head]; ok {
		return c
	}
	b, ok := t.blocks[head]
	if !ok {
		return nil
	}
	out := make(core.Chain, b.Height+1)
	for i := b.Height; ; i-- {
		out[i] = b
		if b.IsGenesis() {
			break
		}
		b, ok = t.blocks[b.Parent]
		if !ok || b.Height != i-1 {
			return nil
		}
	}
	return out
}

// Block returns the interned block with the given ID (nil if unknown).
func (t *ChainTable) Block(id core.BlockID) *core.Block {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.blocks[id]
}

// AncestorAt returns head's ancestor at the given height (nil when head
// is unknown, the height is out of range, or an ancestor was never
// interned). It walks parent links without materializing a chain — the
// monitors' O(Δh) comparability probe.
func (t *ChainTable) AncestorAt(head core.BlockID, height int) *core.Block {
	t.mu.Lock()
	defer t.mu.Unlock()
	b, ok := t.blocks[head]
	if !ok || height < 0 || height > b.Height {
		return nil
	}
	for b.Height > height {
		b, ok = t.blocks[b.Parent]
		if !ok {
			return nil
		}
	}
	if b.Height != height {
		return nil
	}
	return b
}

// MemoLen reports how many chains the table has memoized (observability
// for the streaming memory-bound tests).
func (t *ChainTable) MemoLen() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.chains)
}

// BlocksLen reports how many blocks the table has interned.
func (t *ChainTable) BlocksLen() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.blocks)
}

// OpKind distinguishes the two BT-ADT operations.
type OpKind uint8

// The operation kinds recorded in histories.
const (
	OpAppend OpKind = iota
	OpRead
)

// String returns "append" or "read".
func (k OpKind) String() string {
	if k == OpAppend {
		return "append"
	}
	return "read"
}

// Op is one completed (or pending) BT-ADT operation: an invocation event
// and, once present, its response event. Indices are global sequence
// numbers; times are virtual clock readings (informational).
type Op struct {
	ID   int
	Proc int
	Kind OpKind

	// Block is the argument of append(b); nil for read().
	Block *core.Block
	// OK is the boolean response of append().
	OK bool

	// Head and ChainLen are the interned result of read(): the head
	// block's ID and the chain length including genesis. The full chain
	// is available via Chain().
	Head     core.BlockID
	ChainLen int

	// chain is the materialized read result: set eagerly when the read
	// was recorded with an explicit chain, lazily from src otherwise.
	chain core.Chain
	src   *ChainTable

	InvIndex, RspIndex int
	InvTime, RspTime   int64
	// Pending marks an operation whose response has not been recorded
	// (the process crashed or the run was truncated).
	Pending bool
}

// Chain returns the blockchain returned by read(), materializing from
// the chain table (memoized there, shared per head) when the read was
// recorded as an interned handle. It must not be called concurrently
// with recording; after recording has stopped it is safe for concurrent
// use (the op itself is never written, and the table is locked).
func (o *Op) Chain() core.Chain {
	if o.chain != nil {
		return o.chain
	}
	if o.src != nil {
		return o.src.ChainTo(o.Head)
	}
	return nil
}

// ChainUncached materializes the read's chain like Chain, but without
// growing the table's memo cache — the streaming monitors' accessor
// (they process reads whose chains must not accumulate in the table).
func (o *Op) ChainUncached() core.Chain {
	if o.chain != nil {
		return o.chain
	}
	if o.src != nil {
		return o.src.ChainToUncached(o.Head)
	}
	return nil
}

// EagerChain returns the explicitly recorded chain (RespondRead path),
// nil for interned reads. The monitors retain it on the few ops they
// keep, so witness reconstruction works for histories recorded without
// a chain table.
func (o *Op) EagerChain() core.Chain { return o.chain }

// SetSource attaches the chain table (and optional eagerly recorded
// chain) a rebuilt operation materializes its read result from. The
// streaming monitors use it to reconstruct witness operations from
// compact records after the original ops were released.
func (o *Op) SetSource(t *ChainTable, chain core.Chain) {
	o.src, o.chain = t, chain
}

// Before reports the program order ր: op ր other iff op's response event
// precedes other's invocation event. Because processes are sequential,
// this single test covers both the process order ↦ and the real-time
// operation order ≺ of Definition 2.4.
func (o *Op) Before(other *Op) bool {
	if o.Pending || other == nil {
		return false
	}
	return o.RspIndex < other.InvIndex
}

// Concurrent reports whether neither operation program-order-precedes the
// other.
func (o *Op) Concurrent(other *Op) bool {
	return !o.Before(other) && !other.Before(o)
}

// String renders the operation like "p1.read()/b0⌢ab12cd34 [5,9]".
func (o *Op) String() string {
	switch o.Kind {
	case OpRead:
		if o.Pending {
			return fmt.Sprintf("p%d.read()… [%d,-]", o.Proc, o.InvIndex)
		}
		return fmt.Sprintf("p%d.read()/%s [%d,%d]", o.Proc, o.Chain(), o.InvIndex, o.RspIndex)
	default:
		if o.Pending {
			return fmt.Sprintf("p%d.append(%s)… [%d,-]", o.Proc, o.Block.ID.Short(), o.InvIndex)
		}
		return fmt.Sprintf("p%d.append(%s)/%v [%d,%d]", o.Proc, o.Block.ID.Short(), o.OK, o.InvIndex, o.RspIndex)
	}
}

// CommKind distinguishes the message-passing events of Definition 4.2.
type CommKind uint8

// The communication event kinds of Section 4.2.
const (
	EvSend CommKind = iota
	EvReceive
	EvUpdate
)

// String returns "send", "receive" or "update".
func (k CommKind) String() string {
	switch k {
	case EvSend:
		return "send"
	case EvReceive:
		return "receive"
	default:
		return "update"
	}
}

// CommEvent is a send_i(bg, b), receive_i(bg, b) or update_i(bg, b) event:
// process Proc communicates/applies block Block under predecessor Parent.
type CommEvent struct {
	Kind   CommKind
	Proc   int
	Parent core.BlockID
	Block  core.BlockID
	Index  int
	Time   int64
}

// String renders e.g. "update_2(b0, ab12cd34) @7".
func (e CommEvent) String() string {
	return fmt.Sprintf("%s_%d(%s, %s) @%d", e.Kind, e.Proc, e.Parent.Short(), e.Block.Short(), e.Index)
}

// History is a finite recorded prefix of a concurrent history. It is
// immutable once built; use Recorder to construct one.
//
// The operation accessors (Reads, Appends, SuccessfulAppends,
// AppendedBlocks, ByProcess) are memoized on first use — checkers call
// them repeatedly — so the returned slices and maps are shared: callers
// must treat them as read-only, and must not call them before recording
// has stopped (the same contract the checkers already have).
type History struct {
	Ops  []*Op
	Comm []CommEvent
	// Procs is the number of processes (ids 0..Procs-1).
	Procs int
	// Correct[i] reports whether process i is correct (non-faulty).
	// Consistency criteria quantify over correct processes only
	// (Definition 4.2). A nil slice means all processes are correct.
	Correct []bool

	memoOnce sync.Once
	memo     struct {
		reads      []*Op
		appends    []*Op
		successful []*Op
		appended   map[core.BlockID]*Op
		byProc     [][]*Op
	}
}

// index builds every memoized view in one pass over Ops.
func (h *History) index() {
	h.memoOnce.Do(func() {
		h.memo.appended = make(map[core.BlockID]*Op)
		h.memo.byProc = make([][]*Op, h.Procs)
		for _, op := range h.Ops {
			if op.Pending {
				continue
			}
			if op.Proc >= 0 && op.Proc < h.Procs {
				h.memo.byProc[op.Proc] = append(h.memo.byProc[op.Proc], op)
			}
			switch op.Kind {
			case OpRead:
				if h.IsCorrect(op.Proc) {
					h.memo.reads = append(h.memo.reads, op)
				}
			case OpAppend:
				h.memo.appends = append(h.memo.appends, op)
				if op.OK {
					h.memo.successful = append(h.memo.successful, op)
					if op.Block != nil {
						h.memo.appended[op.Block.ID] = op
					}
				}
			}
		}
	})
}

// IsCorrect reports whether process p is correct in this history.
func (h *History) IsCorrect(p int) bool {
	if h.Correct == nil || p < 0 || p >= len(h.Correct) {
		return true
	}
	return h.Correct[p]
}

// Reads returns the completed read operations of correct processes, in
// recording order. The slice is memoized and shared — read-only.
func (h *History) Reads() []*Op {
	h.index()
	return h.memo.reads
}

// Appends returns the completed append operations (of all processes —
// Block Validity must hold for any appended block a correct process
// reads), in recording order. The slice is memoized and shared.
func (h *History) Appends() []*Op {
	h.index()
	return h.memo.appends
}

// SuccessfulAppends returns appends whose response was true. The
// hierarchy theorems (3.3, 3.4) compare histories "purged of the
// unsuccessful append() response events". The slice is memoized and
// shared.
func (h *History) SuccessfulAppends() []*Op {
	h.index()
	return h.memo.successful
}

// AppendedBlocks returns the set of block IDs successfully appended.
// The map is memoized and shared — read-only.
func (h *History) AppendedBlocks() map[core.BlockID]*Op {
	h.index()
	return h.memo.appended
}

// ByProcess returns the completed operations of process p in program
// order. The slice is memoized and shared — read-only.
func (h *History) ByProcess(p int) []*Op {
	if p < 0 || p >= h.Procs {
		return nil
	}
	h.index()
	return h.memo.byProc[p]
}

// CommOf returns the communication events of the given kind, in index
// order.
func (h *History) CommOf(kind CommKind) []CommEvent {
	var out []CommEvent
	for _, e := range h.Comm {
		if e.Kind == kind {
			out = append(out, e)
		}
	}
	return out
}

// Purged returns a copy of the history without unsuccessful append
// operations (the Ĥ of Section 3.4).
func (h *History) Purged() *History {
	nh := &History{Procs: h.Procs, Correct: h.Correct, Comm: h.Comm}
	for _, op := range h.Ops {
		if op.Kind == OpAppend && !op.Pending && !op.OK {
			continue
		}
		nh.Ops = append(nh.Ops, op)
	}
	return nh
}

// String summarizes the history.
func (h *History) String() string {
	return fmt.Sprintf("history(%d procs, %d ops, %d comm events)", h.Procs, len(h.Ops), len(h.Comm))
}

// Recorder builds a History from concurrent processes. All methods are
// safe for concurrent use; the global index is a single atomic sequence,
// which makes the recorded ≺ a legal linearization of real time.
type Recorder struct {
	mu     sync.Mutex
	seq    int
	nextID int
	ops    []*Op
	comm   []CommEvent
	ncomm  int // comm events recorded (valid in drop mode, unlike len(comm))
	procs  int
	faulty map[int]bool
	clock  func() int64
	table  *ChainTable

	// sink, when set, receives every completed op and comm event as it
	// is recorded (see stream.go); drop releases completed ops instead
	// of retaining them for Snapshot; pending indexes invoked-but-
	// unresponded ops when a sink or drop mode needs them.
	sink    Sink
	drop    bool
	pending map[int]*Op

	// slab is the pooled Op allocator: ops are appended into fixed-
	// capacity chunks (pointers into a chunk stay valid because a full
	// chunk is replaced, never regrown), replacing one heap allocation
	// per operation on the hot path. Drop-mode runs bypass it so
	// released ops remain individually collectable.
	slab []Op

	// shardCtx/staged/stagedPos support sharded-scheduler runs: comm
	// events recorded during a parallel phase are staged per shard and
	// flushed in global order at the barrier (see shard.go).
	shardCtx  ShardContext
	staged    [][]stagedComm
	stagedPos []int
}

// opSlabChunk is the pooled Op allocator's chunk capacity.
const opSlabChunk = 256

// newOp returns a pooled zero Op (callers hold r.mu). In drop mode the
// pool is bypassed: the slab would pin released ops in memory, and the
// whole point of drop mode is that completed ops are collectable.
func (r *Recorder) newOp() *Op {
	if r.drop {
		return &Op{}
	}
	if len(r.slab) == cap(r.slab) {
		r.slab = make([]Op, 0, opSlabChunk)
	}
	r.slab = append(r.slab, Op{})
	return &r.slab[len(r.slab)-1]
}

// NewRecorder creates a recorder for procs processes. clock supplies
// virtual timestamps; nil means "always 0" (pure shared-memory runs where
// only the order matters).
func NewRecorder(procs int, clock func() int64) *Recorder {
	if clock == nil {
		clock = func() int64 { return 0 }
	}
	return &Recorder{procs: procs, faulty: make(map[int]bool), clock: clock, table: NewChainTable()}
}

// Table returns the recorder's shared chain table. Replicas intern
// every block they attach, so interned reads can always materialize.
func (r *Recorder) Table() *ChainTable { return r.table }

// InternBlock registers a block in the shared chain table.
func (r *Recorder) InternBlock(b *core.Block) { r.table.Intern(b) }

// MarkFaulty declares process p Byzantine/crashed; its reads are excluded
// from criteria checks per Definition 4.2.
func (r *Recorder) MarkFaulty(p int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.faulty[p] = true
	if r.sink != nil {
		r.sink.Faulty(p)
	}
}

// InvokeRead records the invocation event of a read() by process p and
// returns the pending operation handle.
func (r *Recorder) InvokeRead(p int) *Op {
	r.mu.Lock()
	defer r.mu.Unlock()
	op := r.newOp()
	op.ID, op.Proc, op.Kind = r.nextID, p, OpRead
	op.InvIndex, op.InvTime, op.Pending = r.seq, r.clock(), true
	r.nextID++
	r.seq++
	r.opInvoked(op)
	return op
}

// RespondRead records the response event of a pending read with an
// explicitly materialized blockchain (sequential generators and tests;
// the simulator hot path uses RespondReadHead).
func (r *Recorder) RespondRead(op *Op, c core.Chain) {
	r.mu.Lock()
	defer r.mu.Unlock()
	op.chain = c
	if head := c.Head(); head != nil {
		op.Head = head.ID
		op.ChainLen = len(c)
	}
	op.RspIndex = r.seq
	op.RspTime = r.clock()
	op.Pending = false
	r.seq++
	r.opCompleted(op)
}

// RespondReadHead records the response event of a pending read as an
// interned (head, length) handle — O(1), no chain copy. The head block
// and its ancestors must be interned in the recorder's table (replicas
// intern on attach), so Op.Chain() can materialize on demand.
func (r *Recorder) RespondReadHead(op *Op, head *core.Block) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.table.Intern(head)
	op.Head = head.ID
	op.ChainLen = head.Height + 1
	op.src = r.table
	op.RspIndex = r.seq
	op.RspTime = r.clock()
	op.Pending = false
	r.seq++
	r.opCompleted(op)
}

// InvokeAppend records the invocation event of append(b) by process p.
func (r *Recorder) InvokeAppend(p int, b *core.Block) *Op {
	r.mu.Lock()
	defer r.mu.Unlock()
	op := r.newOp()
	op.ID, op.Proc, op.Kind, op.Block = r.nextID, p, OpAppend, b
	op.InvIndex, op.InvTime, op.Pending = r.seq, r.clock(), true
	r.nextID++
	r.seq++
	r.opInvoked(op)
	return op
}

// RespondAppend records the boolean response of a pending append. If the
// refined append re-chained the block (the oracle granted a token for a
// different parent), the caller passes the final block.
func (r *Recorder) RespondAppend(op *Op, ok bool, final *core.Block) {
	r.mu.Lock()
	defer r.mu.Unlock()
	op.OK = ok
	if final != nil {
		op.Block = final
	}
	op.RspIndex = r.seq
	op.RspTime = r.clock()
	op.Pending = false
	r.seq++
	r.opCompleted(op)
}

// Read records a complete read (invocation immediately followed by
// response) — convenient for sequential generators.
func (r *Recorder) Read(p int, c core.Chain) *Op {
	op := r.InvokeRead(p)
	r.RespondRead(op, c)
	return op
}

// ReadHead records a complete read as an interned handle.
func (r *Recorder) ReadHead(p int, head *core.Block) *Op {
	op := r.InvokeRead(p)
	r.RespondReadHead(op, head)
	return op
}

// Append records a complete append.
func (r *Recorder) Append(p int, b *core.Block, ok bool) *Op {
	op := r.InvokeAppend(p, b)
	r.RespondAppend(op, ok, nil)
	return op
}

// RecordComm records a send/receive/update event. During a sharded
// parallel phase (SetShardContext installed and the context reports an
// active phase) the event is staged and committed at the scheduler's
// barrier in global order; the returned CommEvent then carries no
// Index/Time yet — the replica layer discards the return value, and no
// other caller records from a parallel phase.
func (r *Recorder) RecordComm(kind CommKind, p int, parent, block core.BlockID) CommEvent {
	if ctx := r.shardCtx; ctx != nil {
		if sh, tag, ok := ctx(p); ok {
			// Single writer per shard buffer (the shard's worker), so
			// staging is lock-free by construction.
			r.staged[sh] = append(r.staged[sh], stagedComm{tag: tag, kind: kind, proc: p, parent: parent, block: block})
			return CommEvent{Kind: kind, Proc: p, Parent: parent, Block: block}
		}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	e := CommEvent{Kind: kind, Proc: p, Parent: parent, Block: block, Index: r.seq, Time: r.clock()}
	r.seq++
	r.ncomm++
	if !r.drop {
		r.comm = append(r.comm, e)
	}
	if r.sink != nil {
		r.sink.CommDone(e)
	}
	return e
}

// Snapshot returns the history recorded so far. The returned History
// shares Op pointers with the recorder; callers must stop recording
// before checking criteria (the checkers are read-only). In drop mode
// (SetRetain(false)) completed ops belong to the sink alone, so the
// snapshot contains only the still-pending operations.
func (r *Recorder) Snapshot() *History {
	r.mu.Lock()
	defer r.mu.Unlock()
	h := &History{Procs: r.procs}
	if r.drop {
		h.Ops = r.pendingLocked()
	} else {
		h.Ops = make([]*Op, len(r.ops))
		copy(h.Ops, r.ops)
	}
	h.Comm = make([]CommEvent, len(r.comm))
	copy(h.Comm, r.comm)
	if len(r.faulty) > 0 {
		h.Correct = make([]bool, r.procs)
		for i := range h.Correct {
			h.Correct[i] = !r.faulty[i]
		}
	}
	return h
}
