package history

import (
	"sort"

	"repro/internal/core"
)

// Sharded-scheduler support: when the simulation runs on a sharded
// event loop (simnet.EnableSharding), delivery handlers of different
// shards record communication events concurrently. To keep the global
// sequence index — and with it every pinned replay digest — identical
// to a serial run, RecordComm stages events into per-shard buffers
// during a parallel phase and the scheduler's barrier flushes them in
// global event order via CommitStagedComms. Each per-shard buffer has
// exactly one writer (that shard's worker goroutine), so staging takes
// no lock at all; only the barrier flush touches the recorder's mutex.

// ShardContext reports, for a process recording right now, whether a
// parallel phase is active and under which (shard, tag) the event must
// be staged. The tag is the global sequence number of the delivery
// event being handled; staged events are committed in tag order. The
// wiring layer passes simnet's Network.ShardContext — the history
// package keeps only the function type, so no import cycle forms.
type ShardContext func(p int) (shard int, tag int64, ok bool)

// stagedComm is one communication event awaiting its barrier commit.
type stagedComm struct {
	tag    int64
	kind   CommKind
	proc   int
	parent core.BlockID
	block  core.BlockID
}

// SetShardContext installs the staging router for a sharded run with
// the given shard count. Call it before recording starts (the wiring
// layer does, right after enabling sharding on the network) and
// register CommitStagedComms as the scheduler's barrier hook.
func (r *Recorder) SetShardContext(shards int, ctx ShardContext) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.shardCtx = ctx
	r.staged = make([][]stagedComm, shards)
	r.stagedPos = make([]int, shards)
}

// CommitStagedComms flushes every staged communication event in global
// order — a k-way merge of the per-shard buffers by tag (within one
// buffer, events are already tag-then-program ordered). The scheduler
// calls it at each batch barrier, before any later event records, so
// sequence indices come out exactly as a serial run would assign them.
func (r *Recorder) CommitStagedComms() {
	total := 0
	for i := range r.staged {
		total += len(r.staged[i])
	}
	if total == 0 {
		return
	}
	r.mu.Lock()
	for {
		best, bestTag := -1, int64(0)
		for sh := range r.staged {
			if p := r.stagedPos[sh]; p < len(r.staged[sh]) {
				if tag := r.staged[sh][p].tag; best < 0 || tag < bestTag {
					best, bestTag = sh, tag
				}
			}
		}
		if best < 0 {
			break
		}
		sc := &r.staged[best][r.stagedPos[best]]
		r.stagedPos[best]++
		e := CommEvent{Kind: sc.kind, Proc: sc.proc, Parent: sc.parent, Block: sc.block, Index: r.seq, Time: r.clock()}
		r.seq++
		r.ncomm++
		if !r.drop {
			r.comm = append(r.comm, e)
		}
		if r.sink != nil {
			r.sink.CommDone(e)
		}
	}
	for sh := range r.staged {
		r.staged[sh] = r.staged[sh][:0]
		r.stagedPos[sh] = 0
	}
	r.mu.Unlock()
}

// StagedComms reports how many events are currently staged (test
// observability; 0 outside a parallel phase once the barrier ran).
func (r *Recorder) StagedComms() int {
	n := 0
	for i := range r.staged {
		n += len(r.staged[i])
	}
	return n
}

// SortedByIndex returns the comm events sorted by global index — a
// helper for tests asserting the single-sequence invariant.
func SortedByIndex(events []CommEvent) []CommEvent {
	out := make([]CommEvent, len(events))
	copy(out, events)
	sort.Slice(out, func(i, j int) bool { return out[i].Index < out[j].Index })
	return out
}
