package history

import "fmt"

// AsyncSink decouples sink consumption from the recording hot loop: the
// Recorder invokes sinks under its lock, so an expensive consumer (a
// segmenting monitor checking consistency online) stretches every
// recorded operation's critical section. AsyncSink enqueues each event
// on a bounded channel and a single consumer goroutine replays them —
// in recording order, because there is exactly one producer (the
// recorder's lock serializes producers) and one consumer. The verdicts
// a downstream monitor produces are therefore identical to synchronous
// delivery; only the wall-clock interleaving changes.
//
// The channel is bounded: a consumer slower than the simulation applies
// backpressure instead of growing an unbounded queue, preserving the
// streaming path's bounded-memory property. Call Drain after the run
// (before reading any downstream state) to flush and stop the consumer.
type AsyncSink struct {
	inner Sink
	ch    chan asyncEvent
	done  chan struct{}

	// highWater/blocked are producer-side backpressure diagnostics:
	// the deepest queue observed at enqueue time and how many enqueues
	// found the queue full (and therefore blocked on the consumer).
	// Only the producer writes them (the recorder's lock serializes
	// producers), and they depend on wall-clock consumer progress, so
	// they surface in the metrics Timing section — never the digest.
	highWater int
	blocked   int64

	// err records the first consumer panic. Written only by the
	// consumer goroutine; the done-channel close orders it before any
	// read in Drain.
	err error
}

// asyncEvent is one queued sink invocation (a tagged union, smallest
// footprint wins: the queue holds up to the buffer size of these).
type asyncEvent struct {
	op   *Op
	comm CommEvent
	p    int
	kind uint8 // 0 = OpDone, 1 = CommDone, 2 = Faulty
}

// DefaultAsyncBuffer is the queue bound used when none is given.
const DefaultAsyncBuffer = 4096

// NewAsyncSink wraps inner and starts the consumer goroutine. buf ≤ 0
// means DefaultAsyncBuffer.
func NewAsyncSink(inner Sink, buf int) *AsyncSink {
	if buf <= 0 {
		buf = DefaultAsyncBuffer
	}
	s := &AsyncSink{inner: inner, ch: make(chan asyncEvent, buf), done: make(chan struct{})}
	go s.consume()
	return s
}

func (s *AsyncSink) consume() {
	defer close(s.done)
	for e := range s.ch {
		if s.err != nil {
			continue // consumer failed: keep draining so producers never block
		}
		s.deliver(e)
	}
}

// deliver replays one event into the inner sink, converting a panic into
// the sink's error state instead of killing the consumer goroutine — a
// dead consumer would leave every later producer blocked on a full
// queue, which live (wall-clock concurrent) recording cannot tolerate.
func (s *AsyncSink) deliver(e asyncEvent) {
	defer func() {
		if r := recover(); r != nil {
			s.err = fmt.Errorf("history: async sink consumer panicked: %v", r)
		}
	}()
	switch e.kind {
	case 0:
		s.inner.OpDone(e.op)
	case 1:
		s.inner.CommDone(e.comm)
	default:
		s.inner.Faulty(e.p)
	}
}

// track samples the queue depth before an enqueue (producer side only).
func (s *AsyncSink) track() {
	if n := len(s.ch); n > s.highWater {
		s.highWater = n
	}
	if len(s.ch) == cap(s.ch) {
		s.blocked++
	}
}

// OpDone implements Sink.
func (s *AsyncSink) OpDone(op *Op) { s.track(); s.ch <- asyncEvent{kind: 0, op: op} }

// CommDone implements Sink.
func (s *AsyncSink) CommDone(e CommEvent) { s.track(); s.ch <- asyncEvent{kind: 1, comm: e} }

// Faulty implements Sink.
func (s *AsyncSink) Faulty(p int) { s.track(); s.ch <- asyncEvent{kind: 2, p: p} }

// QueueStats reports (deepest queue depth observed, enqueues that
// blocked on a full queue, queue capacity). Read after Drain, or from
// the producer side only.
func (s *AsyncSink) QueueStats() (highWater int, blocked int64, capacity int) {
	return s.highWater, s.blocked, cap(s.ch)
}

// Drain flushes the queue and stops the consumer. It must be called
// exactly once, after recording has stopped and before any downstream
// state (monitor verdicts, sealed segments) is read. It returns the
// first error the consumer hit (a recovered panic in the inner sink);
// on error the remaining queued events were discarded, so downstream
// state is incomplete and must not be trusted.
func (s *AsyncSink) Drain() error {
	close(s.ch)
	<-s.done
	return s.err
}
