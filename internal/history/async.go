package history

// AsyncSink decouples sink consumption from the recording hot loop: the
// Recorder invokes sinks under its lock, so an expensive consumer (a
// segmenting monitor checking consistency online) stretches every
// recorded operation's critical section. AsyncSink enqueues each event
// on a bounded channel and a single consumer goroutine replays them —
// in recording order, because there is exactly one producer (the
// recorder's lock serializes producers) and one consumer. The verdicts
// a downstream monitor produces are therefore identical to synchronous
// delivery; only the wall-clock interleaving changes.
//
// The channel is bounded: a consumer slower than the simulation applies
// backpressure instead of growing an unbounded queue, preserving the
// streaming path's bounded-memory property. Call Drain after the run
// (before reading any downstream state) to flush and stop the consumer.
type AsyncSink struct {
	inner Sink
	ch    chan asyncEvent
	done  chan struct{}

	// highWater/blocked are producer-side backpressure diagnostics:
	// the deepest queue observed at enqueue time and how many enqueues
	// found the queue full (and therefore blocked on the consumer).
	// Only the producer writes them (the recorder's lock serializes
	// producers), and they depend on wall-clock consumer progress, so
	// they surface in the metrics Timing section — never the digest.
	highWater int
	blocked   int64
}

// asyncEvent is one queued sink invocation (a tagged union, smallest
// footprint wins: the queue holds up to the buffer size of these).
type asyncEvent struct {
	op   *Op
	comm CommEvent
	p    int
	kind uint8 // 0 = OpDone, 1 = CommDone, 2 = Faulty
}

// DefaultAsyncBuffer is the queue bound used when none is given.
const DefaultAsyncBuffer = 4096

// NewAsyncSink wraps inner and starts the consumer goroutine. buf ≤ 0
// means DefaultAsyncBuffer.
func NewAsyncSink(inner Sink, buf int) *AsyncSink {
	if buf <= 0 {
		buf = DefaultAsyncBuffer
	}
	s := &AsyncSink{inner: inner, ch: make(chan asyncEvent, buf), done: make(chan struct{})}
	go s.consume()
	return s
}

func (s *AsyncSink) consume() {
	defer close(s.done)
	for e := range s.ch {
		switch e.kind {
		case 0:
			s.inner.OpDone(e.op)
		case 1:
			s.inner.CommDone(e.comm)
		default:
			s.inner.Faulty(e.p)
		}
	}
}

// track samples the queue depth before an enqueue (producer side only).
func (s *AsyncSink) track() {
	if n := len(s.ch); n > s.highWater {
		s.highWater = n
	}
	if len(s.ch) == cap(s.ch) {
		s.blocked++
	}
}

// OpDone implements Sink.
func (s *AsyncSink) OpDone(op *Op) { s.track(); s.ch <- asyncEvent{kind: 0, op: op} }

// CommDone implements Sink.
func (s *AsyncSink) CommDone(e CommEvent) { s.track(); s.ch <- asyncEvent{kind: 1, comm: e} }

// Faulty implements Sink.
func (s *AsyncSink) Faulty(p int) { s.track(); s.ch <- asyncEvent{kind: 2, p: p} }

// QueueStats reports (deepest queue depth observed, enqueues that
// blocked on a full queue, queue capacity). Read after Drain, or from
// the producer side only.
func (s *AsyncSink) QueueStats() (highWater int, blocked int64, capacity int) {
	return s.highWater, s.blocked, cap(s.ch)
}

// Drain flushes the queue and stops the consumer. It must be called
// exactly once, after recording has stopped and before any downstream
// state (monitor verdicts, sealed segments) is read.
func (s *AsyncSink) Drain() {
	close(s.ch)
	<-s.done
}
