package history

import (
	"testing"

	"repro/internal/core"
)

// buildChain returns a straight chain of n non-genesis blocks.
func buildChain(n int) core.Chain {
	c := core.GenesisChain()
	for i := 1; i <= n; i++ {
		h := c.Head()
		c = c.Append(core.NewBlock(h.ID, h.Height+1, 0, i, []byte{byte(i)}))
	}
	return c
}

func TestInternedReadMaterializes(t *testing.T) {
	rec := NewRecorder(2, nil)
	chain := buildChain(5)
	for _, b := range chain {
		rec.InternBlock(b)
	}
	op := rec.ReadHead(1, chain.Head())
	if op.Head != chain.Head().ID || op.ChainLen != 6 {
		t.Fatalf("handle (%s, %d), want (%s, 6)", op.Head.Short(), op.ChainLen, chain.Head().ID.Short())
	}
	got := op.Chain()
	if !got.Equal(chain) {
		t.Fatalf("materialized %s, want %s", got, chain)
	}
	// A second read at the same head shares the memoized chain.
	op2 := rec.ReadHead(0, chain.Head())
	if &op2.Chain()[0] != &got[0] {
		t.Fatal("same-head reads did not share the interned chain")
	}
}

func TestInternedReadAtIntermediateHead(t *testing.T) {
	rec := NewRecorder(1, nil)
	chain := buildChain(8)
	for _, b := range chain {
		rec.InternBlock(b)
	}
	op := rec.ReadHead(0, chain[4])
	if got := op.Chain(); !got.Equal(chain[:5]) {
		t.Fatalf("intermediate-head chain %s, want %s", got, chain[:5])
	}
}

func TestChainTableMissingAncestor(t *testing.T) {
	tab := NewChainTable()
	chain := buildChain(3)
	// Intern the head but not its ancestors.
	tab.Intern(chain.Head())
	if c := tab.ChainTo(chain.Head().ID); c != nil {
		t.Fatalf("materialized a chain with missing ancestors: %s", c)
	}
	// ChainTo of a never-interned head is nil, genesis always works.
	if c := tab.ChainTo("nowhere"); c != nil {
		t.Fatal("unknown head materialized")
	}
	if c := tab.ChainTo(core.GenesisID); c.Len() != 1 {
		t.Fatalf("genesis chain %v", c)
	}
}

func TestExplicitChainReadStillWorks(t *testing.T) {
	rec := NewRecorder(1, nil)
	chain := buildChain(4)
	op := rec.Read(0, chain[:3])
	if op.Head != chain[2].ID || op.ChainLen != 3 {
		t.Fatalf("explicit read handle (%s, %d)", op.Head.Short(), op.ChainLen)
	}
	if !op.Chain().Equal(chain[:3]) {
		t.Fatal("explicit chain lost")
	}
}

func TestMemoizedAccessorsShared(t *testing.T) {
	rec := NewRecorder(2, nil)
	chain := buildChain(3)
	for _, b := range chain[1:] {
		rec.Append(0, b, true)
	}
	rec.Append(1, chain[3], false)
	rec.Read(0, chain[:2])
	rec.Read(1, chain)
	h := rec.Snapshot()

	r1, r2 := h.Reads(), h.Reads()
	if len(r1) != 2 || &r1[0] != &r2[0] {
		t.Fatalf("Reads() not memoized: %d reads", len(r1))
	}
	if len(h.Appends()) != 4 || len(h.SuccessfulAppends()) != 3 {
		t.Fatalf("appends %d / successful %d", len(h.Appends()), len(h.SuccessfulAppends()))
	}
	if len(h.AppendedBlocks()) != 3 {
		t.Fatalf("appended blocks %d", len(h.AppendedBlocks()))
	}
	if got := len(h.ByProcess(0)); got != 4 {
		t.Fatalf("ByProcess(0) %d ops, want 4", got)
	}
	if h.ByProcess(-1) != nil || h.ByProcess(2) != nil {
		t.Fatal("out-of-range ByProcess not nil")
	}
}
