package history

import "repro/internal/metrics"

// Now returns the recorder's current virtual-clock reading. The
// witness-latency instrumentation subtracts operation response times
// from it to measure how long a violation stayed undetected.
func (r *Recorder) Now() int64 { return r.clock() }

// RegisterMetrics registers the recorder's gauges: operations recorded,
// communication events recorded, and currently pending (invoked but
// unresponded) operations. Probes run at serial sample points, where no
// recording is in flight; the mutex is taken anyway so the race
// detector can see the discipline.
func (r *Recorder) RegisterMetrics(reg *metrics.Registry) {
	reg.Probe("hist.ops", func() int64 {
		r.mu.Lock()
		defer r.mu.Unlock()
		return int64(r.nextID)
	})
	reg.Probe("hist.comm", func() int64 {
		r.mu.Lock()
		defer r.mu.Unlock()
		return int64(r.ncomm)
	})
	reg.Probe("hist.pendingOps", func() int64 {
		r.mu.Lock()
		defer r.mu.Unlock()
		if r.pending != nil {
			return int64(len(r.pending))
		}
		n := int64(0)
		for _, op := range r.ops {
			if op.Pending {
				n++
			}
		}
		return n
	})
}

// RegisterMetrics registers the segment sink's gauges: segments sealed
// and operations streamed through — the segment-throughput view of a
// streaming run.
func (s *SegmentSink) RegisterMetrics(reg *metrics.Registry) {
	reg.Probe("seg.sealed", func() int64 { return int64(s.next) })
	reg.Probe("seg.ops", func() int64 { return int64(s.nops) })
}
