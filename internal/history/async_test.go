package history

import (
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
)

// orderSink records the exact interleaved event sequence it receives,
// under a lock so a concurrent consumer goroutine can feed it.
type orderSink struct {
	mu     sync.Mutex
	events []string
}

func (s *orderSink) OpDone(op *Op) {
	s.mu.Lock()
	s.events = append(s.events, "op")
	s.mu.Unlock()
}
func (s *orderSink) CommDone(e CommEvent) {
	s.mu.Lock()
	s.events = append(s.events, "comm")
	s.mu.Unlock()
}
func (s *orderSink) Faulty(p int) {
	s.mu.Lock()
	s.events = append(s.events, "faulty")
	s.mu.Unlock()
}

// TestAsyncSinkPreservesOrder pins the AsyncSink contract: the wrapped
// sink sees the exact event sequence, in recording order, that a
// synchronous sink would — one producer, one consumer, one queue.
func TestAsyncSinkPreservesOrder(t *testing.T) {
	record := func(rec *Recorder) {
		c := streamChain(rec, 4)
		rec.MarkFaulty(1)
		for _, b := range c[1:] {
			rec.Append(0, b, true)
			rec.RecordComm(EvSend, 0, b.Parent, b.ID)
		}
		rec.ReadHead(0, c.Head())
	}

	sync1 := &orderSink{}
	rec := NewRecorder(2, nil)
	rec.SetSink(sync1)
	record(rec)

	async := &orderSink{}
	rec2 := NewRecorder(2, nil)
	as := NewAsyncSink(async, 8) // small buffer: exercise backpressure
	rec2.SetSink(as)
	record(rec2)
	as.Drain()

	if len(sync1.events) != len(async.events) {
		t.Fatalf("async sink saw %d events, sync saw %d", len(async.events), len(sync1.events))
	}
	for i := range sync1.events {
		if sync1.events[i] != async.events[i] {
			t.Fatalf("event %d: async %q != sync %q\nasync: %v\nsync: %v",
				i, async.events[i], sync1.events[i], async.events, sync1.events)
		}
	}
}

// TestAsyncSinkSegmentedEquivalence runs the segmented builder behind
// an AsyncSink and checks the assembled history matches the directly
// sunk one — segment boundaries and op order included.
func TestAsyncSinkSegmentedEquivalence(t *testing.T) {
	build := func(wrap func(Sink) (Sink, func())) *History {
		rec := NewRecorder(1, nil)
		seg := NewSegmentSink(4, nil)
		seg.Keep(true)
		sink, drain := wrap(seg)
		rec.SetSink(sink)
		rec.SetRetain(false)
		c := streamChain(rec, 10)
		for _, b := range c[1:] {
			rec.Append(0, b, true)
		}
		rec.ReadHead(0, c.Head())
		drain()
		seg.Seal()
		return seg.History(1)
	}

	direct := build(func(s Sink) (Sink, func()) { return s, func() {} })
	async := build(func(s Sink) (Sink, func()) {
		as := NewAsyncSink(s, 0)
		return as, func() {
			if err := as.Drain(); err != nil {
				t.Fatalf("Drain: %v", err)
			}
		}
	})

	if len(direct.Ops) != len(async.Ops) {
		t.Fatalf("async history has %d ops, direct %d", len(async.Ops), len(direct.Ops))
	}
	for i := range direct.Ops {
		if direct.Ops[i].ID != async.Ops[i].ID || direct.Ops[i].Kind != async.Ops[i].Kind {
			t.Fatalf("op %d diverged: async %+v, direct %+v", i, async.Ops[i], direct.Ops[i])
		}
	}
}

// slowSink simulates a consumer slower than the producer, so the
// bounded queue fills and enqueues block — the sustained-backpressure
// regime AsyncSink is specified to survive without losing or
// reordering anything.
type slowSink struct {
	orderSink
	delay time.Duration
}

func (s *slowSink) OpDone(op *Op) {
	time.Sleep(s.delay)
	s.orderSink.OpDone(op)
}

// TestAsyncSinkSustainedBackpressure saturates a tiny queue with a
// deliberately slow consumer: every event must still arrive, in order,
// and the producer-side QueueStats must show the queue ran full.
func TestAsyncSinkSustainedBackpressure(t *testing.T) {
	inner := &slowSink{delay: 100 * time.Microsecond}
	as := NewAsyncSink(inner, 2)
	rec := NewRecorder(1, nil)
	rec.SetSink(as)
	rec.SetRetain(false)

	const n = 200
	c := streamChain(rec, n)
	for _, b := range c[1:] {
		rec.Append(0, b, true)
	}
	as.Drain()

	if got := len(inner.events); got != n {
		t.Fatalf("consumer saw %d events, want %d (backpressure must not drop)", got, n)
	}
	high, blocked, capacity := as.QueueStats()
	if capacity != 2 {
		t.Fatalf("queue capacity %d, want 2", capacity)
	}
	if high < capacity {
		t.Fatalf("high water %d never reached the %d-slot capacity under a slow consumer", high, capacity)
	}
	if blocked == 0 {
		t.Fatal("no enqueue ever blocked under sustained backpressure")
	}
}

// TestAsyncSinkDrainAfterCrashWindow records through a mid-run crash
// window — operations, a fault mark, more operations — and drains:
// the flush must deliver everything already enqueued, with the fault
// mark at exactly the position a synchronous sink would have seen it.
func TestAsyncSinkDrainAfterCrashWindow(t *testing.T) {
	inner := &orderSink{}
	as := NewAsyncSink(inner, 4)
	rec := NewRecorder(2, nil)
	rec.SetSink(as)

	c := streamChain(rec, 7)
	for i, b := range c[1:] {
		rec.Append(0, b, true)
		if i == 2 {
			rec.MarkFaulty(1) // the crash window opens mid-run
		}
	}
	rec.ReadHead(0, c.Head())
	as.Drain()

	want := []string{"op", "op", "op", "faulty", "op", "op", "op", "op", "op"}
	if len(inner.events) != len(want) {
		t.Fatalf("drained %d events, want %d: %v", len(inner.events), len(want), inner.events)
	}
	for i := range want {
		if inner.events[i] != want[i] {
			t.Fatalf("event %d is %q, want %q (full stream: %v)", i, inner.events[i], want[i], inner.events)
		}
	}
	// Drain is terminal: the stats are stable and readable afterwards.
	if high, _, _ := as.QueueStats(); high < 0 {
		t.Fatalf("queue stats unreadable after Drain (high=%d)", high)
	}
}

// panicSink panics on the nth OpDone it receives; everything before
// that is recorded normally.
type panicSink struct {
	orderSink
	panicAt int
	n       int
}

func (s *panicSink) OpDone(op *Op) {
	s.n++
	if s.n == s.panicAt {
		panic("consumer exploded mid-drain")
	}
	s.orderSink.OpDone(op)
}

// TestAsyncSinkConsumerPanic pins the error path live recording made
// reachable: a consumer that panics mid-drain must not kill the
// consumer goroutine (producers would deadlock on a full queue) and
// must not stay silent — Drain surfaces the recovered panic, and the
// events queued after the failure are discarded, not delivered.
func TestAsyncSinkConsumerPanic(t *testing.T) {
	inner := &panicSink{panicAt: 3}
	as := NewAsyncSink(inner, 2) // tiny queue: producers outrun the failure point
	rec := NewRecorder(1, nil)
	rec.SetSink(as)
	rec.SetRetain(false)

	c := streamChain(rec, 10)
	for _, b := range c[1:] {
		rec.Append(0, b, true) // must never block forever on the dead consumer
	}
	err := as.Drain()
	if err == nil {
		t.Fatal("Drain returned nil after the consumer panicked")
	}
	if want := "consumer exploded mid-drain"; !strings.Contains(err.Error(), want) {
		t.Fatalf("Drain error %q does not carry the panic value %q", err, want)
	}
	if got := len(inner.events); got != inner.panicAt-1 {
		t.Fatalf("consumer saw %d events after the panic, want the %d pre-panic ones only", got, inner.panicAt-1)
	}
}

// TestRecorderSlabPointerStability pins the pooled-Op allocator
// contract: *Op pointers handed out (and retained by histories and
// sinks) stay valid and distinct as the slab grows through many chunk
// replacements.
func TestRecorderSlabPointerStability(t *testing.T) {
	rec := NewRecorder(1, nil)
	g := core.Genesis()
	var ptrs []*Op
	for i := 0; i < 3*opSlabChunk+7; i++ {
		op := rec.InvokeRead(0)
		rec.RespondReadHead(op, g)
		ptrs = append(ptrs, op)
	}
	seen := map[*Op]bool{}
	for i, op := range ptrs {
		if op.ID != i {
			t.Fatalf("op %d has ID %d after slab growth — pointer invalidated?", i, op.ID)
		}
		if seen[op] {
			t.Fatalf("op %d shares a pointer with an earlier op", i)
		}
		seen[op] = true
	}
	h := rec.Snapshot()
	if len(h.Ops) != len(ptrs) {
		t.Fatalf("snapshot has %d ops, want %d", len(h.Ops), len(ptrs))
	}
}
