// Streaming histories: instead of accumulating every operation in the
// Recorder and snapshotting one immutable History at the end, a run can
// attach a Sink and have each operation handed off the moment its
// response event is recorded. The SegmentSink batches the stream into
// sealed segments that are released after their handler returns, so a
// run's resident history is bounded by the segment size (plus the ops
// still pending), not by the run length — the shape the online
// consistency monitors (internal/consistency.Monitor) consume.
package history

import "sort"

// Sink consumes a recorded history as it grows. The Recorder invokes it
// under its own lock, in response order:
//
//   - OpDone delivers each operation exactly once, at the moment its
//     response event is recorded (so the op is complete and immutable).
//   - CommDone delivers each send/receive/update event as it is recorded.
//   - Faulty delivers MarkFaulty declarations; for the monitors' exclusion
//     semantics to match the batch checkers, a process must be marked
//     before its first read is recorded (adversary wiring marks at
//     construction time, so protocol runs satisfy this by design).
//
// Sink implementations must not call back into the Recorder.
type Sink interface {
	OpDone(op *Op)
	CommDone(e CommEvent)
	Faulty(p int)
}

// SetSink attaches a streaming consumer. Attach before the first
// operation is recorded: ops recorded earlier are never replayed.
func (r *Recorder) SetSink(s Sink) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.sink = s
	if r.pending == nil {
		r.pending = make(map[int]*Op)
	}
}

// SetRetain controls whether the Recorder keeps completed operations and
// communication events for Snapshot. The default (true) preserves the
// batch pipeline; with retain=false every completed op is owned by the
// sink alone and Snapshot returns only the still-pending operations —
// the bounded-memory mode behind ≥1M-op streaming runs.
func (r *Recorder) SetRetain(keep bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.drop = !keep
	if r.drop && r.pending == nil {
		r.pending = make(map[int]*Op)
	}
}

// Procs returns the number of processes the recorder was created for.
func (r *Recorder) Procs() int { return r.procs }

// tracksPending reports whether the recorder must index pending ops
// (needed to deliver them at Finalize time and to snapshot in drop
// mode). Callers hold r.mu.
func (r *Recorder) tracksPending() bool { return r.pending != nil }

// opInvoked files a freshly invoked (pending) operation. Callers hold r.mu.
func (r *Recorder) opInvoked(op *Op) {
	if !r.drop {
		r.ops = append(r.ops, op)
	}
	if r.tracksPending() {
		r.pending[op.ID] = op
	}
}

// opCompleted forwards a completed operation to the sink. Callers hold
// r.mu; the sink contract forbids re-entry, so invoking it under the
// lock is safe and keeps delivery in response order.
func (r *Recorder) opCompleted(op *Op) {
	if r.tracksPending() {
		delete(r.pending, op.ID)
	}
	if r.sink != nil {
		r.sink.OpDone(op)
	}
}

// PendingOps returns the operations invoked but not yet responded, in
// invocation order. In drop mode this is the entire recorder-resident
// history; the streaming finalizer feeds them to the monitor (Block
// Validity counts pending append invocations).
func (r *Recorder) PendingOps() []*Op {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.pendingLocked()
}

func (r *Recorder) pendingLocked() []*Op {
	if r.pending == nil {
		// Without pending tracking, scan the retained ops.
		var out []*Op
		for _, op := range r.ops {
			if op.Pending {
				out = append(out, op)
			}
		}
		return out
	}
	out := make([]*Op, 0, len(r.pending))
	for _, op := range r.pending {
		out = append(out, op)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].InvIndex < out[j].InvIndex })
	return out
}

// Segment is one sealed slice of a streamed history: operations in
// response order and communication events in recording order. Once the
// seal handler returns, the SegmentSink holds no reference to it (unless
// keep mode is on), so its backing arrays are reclaimable.
type Segment struct {
	// Index numbers segments from 0 in seal order.
	Index int
	Ops   []*Op
	Comm  []CommEvent
}

// SegmentSink batches a streamed history into fixed-size segments. It is
// the segmented builder between the Recorder and a downstream consumer:
// ops are appended through the Sink interface, and every time `size`
// operations accumulate the current segment is sealed and handed to
// OnSeal. With Keep(true) sealed segments are also retained so History()
// can still assemble the full batch view — the compatibility path.
type SegmentSink struct {
	// OnSeal receives each sealed segment (may be nil: pure builder).
	OnSeal func(*Segment)
	// OnFaulty forwards MarkFaulty declarations downstream (may be nil).
	OnFaulty func(int)

	size   int
	cur    *Segment
	next   int
	keep   bool
	kept   []*Segment
	faulty map[int]bool
	nops   int
}

// DefaultSegmentSize is the segment size used when none is given.
const DefaultSegmentSize = 4096

// NewSegmentSink returns a segmented builder sealing every size ops
// (size <= 0 means DefaultSegmentSize) into onSeal.
func NewSegmentSink(size int, onSeal func(*Segment)) *SegmentSink {
	if size <= 0 {
		size = DefaultSegmentSize
	}
	return &SegmentSink{OnSeal: onSeal, size: size, faulty: make(map[int]bool)}
}

// Keep retains sealed segments for History() — the compatibility path
// that trades the bounded-memory property for the full batch view.
func (s *SegmentSink) Keep(keep bool) { s.keep = keep }

// OpDone implements Sink.
func (s *SegmentSink) OpDone(op *Op) {
	if s.cur == nil {
		s.cur = &Segment{Index: s.next}
	}
	s.cur.Ops = append(s.cur.Ops, op)
	s.nops++
	if len(s.cur.Ops) >= s.size {
		s.Seal()
	}
}

// CommDone implements Sink.
func (s *SegmentSink) CommDone(e CommEvent) {
	if s.cur == nil {
		s.cur = &Segment{Index: s.next}
	}
	s.cur.Comm = append(s.cur.Comm, e)
}

// Faulty implements Sink.
func (s *SegmentSink) Faulty(p int) {
	s.faulty[p] = true
	if s.OnFaulty != nil {
		s.OnFaulty(p)
	}
}

// Seal closes the current partial segment (no-op when empty) and hands
// it to OnSeal. The run's finalizer calls it once after the last op.
func (s *SegmentSink) Seal() {
	if s.cur == nil || (len(s.cur.Ops) == 0 && len(s.cur.Comm) == 0) {
		return
	}
	seg := s.cur
	s.cur = nil
	s.next++
	if s.keep {
		s.kept = append(s.kept, seg)
	}
	if s.OnSeal != nil {
		s.OnSeal(seg)
	}
}

// Sealed reports how many segments have been sealed so far.
func (s *SegmentSink) Sealed() int { return s.next }

// Ops reports how many operations have streamed through the sink.
func (s *SegmentSink) Ops() int { return s.nops }

// History assembles the full batch history from the kept segments — the
// compatibility path for consumers that still want the immutable
// History. It requires Keep(true); without it only the unsealed tail is
// visible and History returns nil to make the misuse loud.
func (s *SegmentSink) History(procs int) *History {
	if !s.keep {
		return nil
	}
	s.Seal()
	h := &History{Procs: procs}
	for _, seg := range s.kept {
		h.Ops = append(h.Ops, seg.Ops...)
		h.Comm = append(h.Comm, seg.Comm...)
	}
	// Segments hold ops in response order; the batch History contract
	// is invocation order.
	sort.Slice(h.Ops, func(i, j int) bool { return h.Ops[i].InvIndex < h.Ops[j].InvIndex })
	if len(s.faulty) > 0 {
		h.Correct = make([]bool, procs)
		for i := range h.Correct {
			h.Correct[i] = !s.faulty[i]
		}
	}
	return h
}
